package cliquemap

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestResizeGrowUnderLoad grows a live cell 4→6 shards while mixed
// SET/GET load runs against it, then verifies that every write acked
// before or during the transition is readable afterwards — the
// tentpole's zero-lost-acked-writes claim.
func TestResizeGrowUnderLoad(t *testing.T) {
	c := newCell(t, Options{Shards: 4, Spares: 2, Mode: R32})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()

	// Seed a corpus before the resize.
	const keys = 200
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("pre-%03d", i))
		if err := cl.Set(ctx, k, []byte(fmt.Sprintf("v0-%03d", i))); err != nil {
			t.Fatalf("seed set %s: %v", k, err)
		}
	}

	// Mixed load concurrent with the resize: each worker's acked writes
	// are recorded; indeterminate ops (errors) are not counted.
	const workers = 4
	acked := make([]map[string]string, workers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		acked[w] = make(map[string]string)
		wcl := c.NewClient(ClientOptions{})
		wg.Add(1)
		go func(w int, wcl *Client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("live-%d-%03d", w, i%50)
				v := fmt.Sprintf("w%d-i%d", w, i)
				if err := wcl.Set(ctx, []byte(k), []byte(v)); err == nil {
					acked[w][k] = v
				}
				if i%3 == 0 {
					wcl.Get(ctx, []byte(k))
				}
			}
		}(w, wcl)
	}

	if err := c.Resize(ctx, 6); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("resize 4→6: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := c.Shards(); got != 6 {
		t.Fatalf("shards after resize = %d, want 6", got)
	}

	// Every pre-resize write and every acked mid-resize write must be
	// readable through a fresh client in the new epoch.
	check := c.NewClient(ClientOptions{})
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("pre-%03d", i)
		v, ok, err := check.Get(ctx, []byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("v0-%03d", i) {
			t.Errorf("pre-resize key %s lost: %q %v %v", k, v, ok, err)
		}
	}
	lost := 0
	for w := 0; w < workers; w++ {
		for k, want := range acked[w] {
			v, ok, err := check.Get(ctx, []byte(k))
			if err != nil || !ok || string(v) != want {
				lost++
				if lost <= 5 {
					t.Errorf("acked write %s=%q lost: got %q ok=%v err=%v", k, want, v, ok, err)
				}
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d acked writes lost across %d workers", lost, workers)
	}
}

// TestResizeShrinkAndRegrow shrinks 4→3 (dropping a task back to spare
// duty) and then grows 3→5 reusing it, verifying the corpus survives
// both directions.
func TestResizeShrinkAndRegrow(t *testing.T) {
	c := newCell(t, Options{Shards: 4, Spares: 1, Mode: R32})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()

	const keys = 120
	for i := 0; i < keys; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatalf("set: %v", err)
		}
	}

	if err := c.Resize(ctx, 3); err != nil {
		t.Fatalf("shrink 4→3: %v", err)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, ok, err := cl.Get(ctx, []byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("after shrink, %s: %q %v %v", k, v, ok, err)
		}
	}

	// The dropped task and the original spare both count as capacity now.
	if err := c.Resize(ctx, 5); err != nil {
		t.Fatalf("grow 3→5: %v", err)
	}
	if got := c.Shards(); got != 5 {
		t.Fatalf("shards = %d, want 5", got)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, ok, err := cl.Get(ctx, []byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("after regrow, %s: %q %v %v", k, v, ok, err)
		}
	}
}

// TestResizeErasesSurvive checks the tombstone path: keys erased before
// and during a resize stay erased afterwards (no resurrection through
// the migration stream).
func TestResizeErasesSurvive(t *testing.T) {
	c := newCell(t, Options{Shards: 4, Spares: 2, Mode: R32})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()

	const keys = 80
	for i := 0; i < keys; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("e%03d", i)), []byte("doomed")); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	for i := 0; i < keys; i += 2 {
		if err := cl.Erase(ctx, []byte(fmt.Sprintf("e%03d", i))); err != nil {
			t.Fatalf("erase: %v", err)
		}
	}

	if err := c.Resize(ctx, 6); err != nil {
		t.Fatalf("resize: %v", err)
	}

	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("e%03d", i)
		_, ok, err := cl.Get(ctx, []byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if i%2 == 0 && ok {
			t.Errorf("erased key %s resurrected by resize", k)
		}
		if i%2 == 1 && !ok {
			t.Errorf("surviving key %s lost by resize", k)
		}
	}
}

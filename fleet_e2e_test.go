package cliquemap

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"cliquemap/internal/fleet"
	"cliquemap/internal/health"
)

// TestFleetAggregatorMergesLiveTier is the scrape-and-merge end-to-end
// check: a live 3-cell federation tier under a skewed workload, scraped
// by the fleet aggregator over the same additive methods cmstat -fleet
// uses, must yield merged latency percentiles spanning all cells, an
// evaluated fleet SLO verdict, a global hot-key ranking surfacing the
// skew, and a per-cell routing-skew report against ring ownership.
func TestFleetAggregatorMergesLiveTier(t *testing.T) {
	small := Options{Shards: 2, Spares: 0, Mode: R32, Health: health.Config{
		FastWindowNs: uint64(10 * time.Second),
		SlowWindowNs: uint64(100 * time.Second),
		BucketNs:     uint64(50 * time.Millisecond),
	}}
	tr, err := NewTier(TierOptions{Cells: []TierCellOptions{
		{Name: "us", Options: small},
		{Name: "eu", Options: small},
		{Name: "asia", Options: small},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl, err := tr.NewClient(TierClientOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// A spread workload plus one scorching key: the global ranking must
	// surface it no matter which cell owns it.
	hot := []byte("fleet-hot-key")
	if err := cl.Set(ctx, hot, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("fleet-key-%04d", i))
		if err := cl.Set(ctx, key, []byte("v")); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if _, _, err := cl.Get(ctx, key); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	for i := 0; i < 400; i++ {
		if _, _, err := cl.Get(ctx, hot); err != nil {
			t.Fatal(err)
		}
	}
	// Health: a few canary prober rounds per cell evaluate the SLOs.
	for i := 0; i < 3; i++ {
		tr.ProbeRound(ctx)
	}

	targets := make([]fleet.Target, 0, 3)
	for _, name := range tr.Cells() {
		targets = append(targets, fleet.Target{
			Name:   name,
			Caller: tr.Cell(name).Internal().Net.Client(0, "fleet-aggregator"),
		})
	}
	agg := fleet.New(targets, fleet.Options{})
	v := agg.ScrapeOnce(ctx)

	// Merged latency: the GET distribution must combine all three cells.
	var got *fleet.MergedHist
	for i := range v.Hists {
		if v.Hists[i].Kind == "GET" && v.Hists[i].Cells == 3 {
			got = &v.Hists[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("no 3-cell merged GET histogram: %+v", v.Hists)
	}
	if got.Count == 0 || got.P99Ns < got.P50Ns || got.MaxNs < got.P99Ns {
		t.Errorf("degenerate merged GET hist: %+v", got)
	}

	// Fleet SLO verdict: health scraped from every cell, nothing paging.
	if v.Verdict != "ok" {
		t.Errorf("fleet verdict %q, want ok (classes: %+v)", v.Verdict, v.Classes)
	}
	if len(v.Classes) == 0 {
		t.Error("no SLO classes merged")
	}

	// Global heat: the scorching key leads the union.
	if len(v.HotKeys) == 0 || v.HotKeys[0].Key != string(hot) {
		t.Errorf("global hot ranking misses %q: %+v", hot, truncHot(v))
	}

	// Routing skew: all three cells live, each with ring ownership.
	if len(v.Skew) != 3 {
		t.Fatalf("skew rows: %+v", v.Skew)
	}
	for _, s := range v.Skew {
		if s.OwnedPpm == 0 {
			t.Errorf("cell %s has no ring share: %+v", s.Name, s)
		}
	}
	if !v.RingOK {
		t.Error("no ring snapshot scraped")
	}

	// The Prometheus exposition of the merged view names fleet series.
	var sb strings.Builder
	v.WriteProm(&sb)
	for _, want := range []string{"cliquemap_fleet_cells 3", "cliquemap_fleet_op_latency_ns", "cliquemap_fleet_route_skew"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// A second round computes interval deltas; with no new traffic the
	// observed shares go quiet but every cell stays live.
	v2 := agg.ScrapeOnce(ctx)
	if len(v2.Skew) != 3 || v2.Round != 2 {
		t.Errorf("second round: round=%d skew=%+v", v2.Round, v2.Skew)
	}
	for _, c := range v2.Cells {
		if c.Stale || c.Err != "" {
			t.Errorf("cell %s unhealthy on round 2: %+v", c.Name, c)
		}
	}
}

func truncHot(v *fleet.View) []string {
	n := len(v.HotKeys)
	if n > 5 {
		n = 5
	}
	out := make([]string, 0, n)
	for _, hk := range v.HotKeys[:n] {
		out = append(out, fmt.Sprintf("%s=%d", hk.Key, hk.Count))
	}
	return out
}

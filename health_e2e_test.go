package cliquemap

// End-to-end checks of the fleet health plane: a chaos brownout must
// deterministically trip a burn-rate page within the fast window, healing
// must clear it well inside one slow window, and a skewed workload's hot
// keys must surface through the Debug RPC's heavy-hitter sketch. All
// timing runs on the fabric's virtual clock, so the scenario replays
// byte-for-byte under a fixed seed.

import (
	"context"
	"strings"
	"testing"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/health"
	"cliquemap/internal/rpc"
	"cliquemap/internal/workload"
)

// healthTestConfig shrinks the SLO windows to virtual-millisecond scale:
// one prober round advances the fabric clock by roughly a virtual
// millisecond (4 targets × 8 keys × 4 ops), so the fast window spans a
// handful of rounds and the whole incident fits in a CI-friendly run.
func healthTestConfig() health.Config {
	return health.Config{
		FastWindowNs: uint64(20 * time.Millisecond),
		SlowWindowNs: uint64(200 * time.Millisecond),
		BucketNs:     uint64(1 * time.Millisecond),
	}
}

// runBrownoutScenario drives the canonical incident — healthy baseline,
// cell-wide GET brownout, heal — and reports the virtual nanoseconds the
// plane took to page after injection and to return to ok after the heal,
// plus the per-round worst-state trace for determinism checks.
func runBrownoutScenario(t *testing.T) (pageAfterNs, clearAfterNs uint64, states []string) {
	t.Helper()
	c := newCell(t, Options{Shards: 3, Spares: 1, Mode: R32, Health: healthTestConfig()})
	prober := c.Prober()
	ctx := context.Background()
	cfg := c.Health().Config()

	// Baseline: a few healthy rounds must leave every class Ok.
	for i := 0; i < 3; i++ {
		snap := prober.Round(ctx)
		states = append(states, snap.Worst().String())
		if snap.Worst() != health.Ok {
			t.Fatalf("healthy baseline round %d: worst=%s", i, snap.Worst())
		}
	}

	// Brownout every shard: 2ms of engine service delay pushes every GET
	// past its 1ms SLO threshold (mutations fan out concurrently and stay
	// under their 5ms threshold, so the page isolates to GET).
	ch := c.Chaos()
	for s := 0; s < 3; s++ {
		ch.Brownout(s, uint64(2*time.Millisecond))
	}
	injected := c.Internal().Fabric.NowNs()
	paged := false
	for c.Internal().Fabric.NowNs()-injected <= cfg.FastWindowNs {
		snap := prober.Round(ctx)
		states = append(states, snap.Worst().String())
		if gc, ok := snap.Class("GET"); ok && gc.State == health.Page {
			paged = true
			pageAfterNs = c.Internal().Fabric.NowNs() - injected
			break
		}
	}
	if !paged {
		t.Fatalf("brownout did not page GET within the fast window (%v virtual)",
			time.Duration(cfg.FastWindowNs))
	}

	// Heal. The fast window drains within FastWindowNs of good probes,
	// breaking the both-windows page condition, so the alert must clear
	// well inside one slow window.
	for s := 0; s < 3; s++ {
		ch.Brownout(s, 0)
	}
	healed := c.Internal().Fabric.NowNs()
	cleared := false
	for c.Internal().Fabric.NowNs()-healed <= cfg.SlowWindowNs {
		snap := prober.Round(ctx)
		states = append(states, snap.Worst().String())
		if snap.Worst() == health.Ok {
			cleared = true
			clearAfterNs = c.Internal().Fabric.NowNs() - healed
			break
		}
	}
	if !cleared {
		t.Fatalf("page did not clear within one slow window (%v virtual) of the heal",
			time.Duration(cfg.SlowWindowNs))
	}

	// The prober's probe keys live in the reserved namespace and must
	// never leak into user-visible heat telemetry.
	for _, b := range c.Internal().Nodes() {
		for _, hk := range b.Heat().TopN(0) {
			t.Fatalf("probe key leaked into heat sketch: %q", hk.Key)
		}
	}
	return pageAfterNs, clearAfterNs, states
}

func TestHealthBrownoutPagesAndClears(t *testing.T) {
	pageNs, clearNs, _ := runBrownoutScenario(t)
	t.Logf("paged %v after injection, cleared %v after heal (virtual)",
		time.Duration(pageNs), time.Duration(clearNs))
}

// transitions collapses a per-round state trace to its distinct
// transitions ("ok ok page page ok" → "ok page ok").
func transitions(states []string) []string {
	var out []string
	for _, s := range states {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// TestHealthScenarioDeterministic replays the same incident twice on
// fresh cells. The fabric's arrival clock is wall time (1 real second ≡
// 1 virtual second), so round counts jitter by scheduling — but the
// alert trajectory must be identical: ok → page → ok, with both runs
// paging inside the fast window and clearing inside the slow window
// (asserted by runBrownoutScenario). Exact window algebra under a fully
// fake clock is covered by the internal/health unit tests.
func TestHealthScenarioDeterministic(t *testing.T) {
	_, _, s1 := runBrownoutScenario(t)
	_, _, s2 := runBrownoutScenario(t)
	for run, tr := range [][]string{transitions(s1), transitions(s2)} {
		// Legal recoveries: straight to ok once the fast window drains, or
		// stepping down through warn if a round lands mid-drain.
		got := strings.Join(tr, " ")
		if got != "ok page ok" && got != "ok page warn ok" {
			t.Fatalf("run %d trajectory %q, want ok → page → (warn →) ok", run+1, got)
		}
	}
}

// TestHealthServedOverRPC checks the MethodHealth wire path end to end:
// the evaluated snapshot — including a live page — must be readable
// through the TCP gateway exactly as cmstat reads it.
func TestHealthServedOverRPC(t *testing.T) {
	// Wide windows: this test only needs the page to fire and still be
	// visible over the wire after the TCP gateway spins up, so the windows
	// must comfortably outlast brownout-slowed prober rounds plus the
	// dial — unlike the incident tests above, nothing here waits for a
	// clear.
	c := newCell(t, Options{Shards: 3, Spares: 0, Mode: R32, Health: health.Config{
		FastWindowNs: uint64(10 * time.Second),
		SlowWindowNs: uint64(100 * time.Second),
		BucketNs:     uint64(50 * time.Millisecond),
	}})
	prober := c.Prober()
	ctx := context.Background()

	ch := c.Chaos()
	for s := 0; s < 3; s++ {
		ch.Brownout(s, uint64(2*time.Millisecond))
	}
	for i := 0; i < 5; i++ {
		prober.Round(ctx)
	}

	g, err := c.Internal().ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote, err := rpc.DialTCP(g.Addr(), "observer")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	raw, _, err := remote.Call(ctx, "backend-0", proto.MethodHealth, proto.HealthReq{}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	hl, err := proto.UnmarshalHealthResp(raw)
	if err != nil {
		t.Fatal(err)
	}
	if hl.Rounds != 5 {
		t.Errorf("rounds over RPC = %d, want 5", hl.Rounds)
	}
	var get *proto.HealthClass
	for i := range hl.Classes {
		if hl.Classes[i].Class == "GET" {
			get = &hl.Classes[i]
		}
	}
	if get == nil {
		t.Fatalf("no GET class in %+v", hl.Classes)
	}
	if get.State != "page" {
		t.Errorf("GET state over RPC = %q, want \"page\"", get.State)
	}
	if get.FastBurnMilli == 0 || get.SlowBurnMilli == 0 {
		t.Errorf("burn rates not populated: %+v", get)
	}
	if get.AvailabilityPpm != 999000 {
		t.Errorf("availability objective = %d ppm, want 999000", get.AvailabilityPpm)
	}
	if len(hl.Targets) == 0 {
		t.Error("no probe targets in health snapshot")
	}
}

// TestHotKeyTelemetryE2E plants a Zipf-skewed workload (s=1.2, the
// acceptance shape) and checks the hottest key surfaces through the
// Debug RPC's heavy-hitter sketch with its error bound, and that the
// Stats RPC carries the sketch occupancy gauges.
func TestHotKeyTelemetryE2E(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Spares: 0, Mode: R32})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR, TouchBatch: 32})
	ctx := context.Background()

	const keys = 512
	for i := 0; i < keys; i++ {
		if err := cl.Set(ctx, []byte(workload.Key(uint64(i))), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	kg := workload.NewZipfKeys(keys, 1.2, 1)
	for i := 0; i < 20000; i++ {
		k := []byte(workload.Key(kg.Next()))
		if _, _, err := cl.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	cl.FlushTouches(ctx)

	g, err := c.Internal().ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote, err := rpc.DialTCP(g.Addr(), "observer")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// The sketch is per-backend; under Zipf 1.2 the head key dominates,
	// so the backend owning it must rank it first. Scan all shards.
	hot := string(workload.Key(0))
	foundHot := false
	for _, addr := range []string{"backend-0", "backend-1", "backend-2"} {
		raw, _, err := remote.Call(ctx, addr, proto.MethodDebug, proto.DebugReq{}.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		dbg, derr := proto.UnmarshalDebugResp(raw)
		if derr != nil {
			t.Fatal(derr)
		}
		if len(dbg.StripeHeat) == 0 {
			t.Errorf("%s: no stripe heat", addr)
		}
		for i, hk := range dbg.HotKeys {
			if hk.Key == hot && i == 0 {
				foundHot = true
				if hk.Count == 0 {
					t.Errorf("hot key has zero count: %+v", hk)
				}
			}
		}
		sraw, _, serr := remote.Call(ctx, addr, proto.MethodStats, nil)
		if serr != nil {
			t.Fatal(serr)
		}
		st, uerr := proto.UnmarshalStatsResp(sraw)
		if uerr != nil {
			t.Fatal(uerr)
		}
		if st.HeatTracked == 0 || st.HeatTotal == 0 {
			t.Errorf("%s: heat gauges empty: tracked=%d total=%d", addr, st.HeatTracked, st.HeatTotal)
		}
	}
	if !foundHot {
		t.Errorf("planted hot key %q not ranked first on any shard", hot)
	}
}

package cliquemap_test

import (
	"context"
	"fmt"
	"log"

	"cliquemap"
)

// The basic lifecycle: build a replicated cell, write over RPC, read over
// RMA with a client-side quorum.
func Example() {
	cell, err := cliquemap.NewCell(cliquemap.Options{Shards: 3, Spares: 1})
	if err != nil {
		log.Fatal(err)
	}
	client := cell.NewClient(cliquemap.ClientOptions{Strategy: cliquemap.LookupSCAR})
	ctx := context.Background()

	client.Set(ctx, []byte("city"), []byte("lenoir"))
	v, ok, _ := client.Get(ctx, []byte("city"))
	fmt.Println(ok, string(v))
	// Output: true lenoir
}

// Conditional updates: CAS succeeds only against the version a previous
// mutation nominated (§5.2).
func ExampleClient_Cas() {
	cell, _ := cliquemap.NewCell(cliquemap.Options{})
	client := cell.NewClient(cliquemap.ClientOptions{})
	ctx := context.Background()

	v1, _ := client.SetVersioned(ctx, []byte("leader"), []byte("task-1"))
	swapped, _ := client.Cas(ctx, []byte("leader"), []byte("task-2"), v1)
	fmt.Println("first cas:", swapped)
	swapped, _ = client.Cas(ctx, []byte("leader"), []byte("task-3"), v1) // stale
	fmt.Println("stale cas:", swapped)
	// Output:
	// first cas: true
	// stale cas: false
}

// Erase tombstones the version (§5.2): the key is gone and stale writers
// cannot resurrect it.
func ExampleClient_Erase() {
	cell, _ := cliquemap.NewCell(cliquemap.Options{})
	client := cell.NewClient(cliquemap.ClientOptions{})
	ctx := context.Background()

	client.Set(ctx, []byte("session"), []byte("token"))
	client.Erase(ctx, []byte("session"))
	_, ok, _ := client.Get(ctx, []byte("session"))
	fmt.Println("after erase:", ok)
	// Output: after erase: false
}

// R=3.2 serves reads and writes with any single backend down (§5.1).
func ExampleCell_Crash() {
	cell, _ := cliquemap.NewCell(cliquemap.Options{Shards: 3})
	client := cell.NewClient(cliquemap.ClientOptions{})
	ctx := context.Background()

	client.Set(ctx, []byte("k"), []byte("v"))
	cell.Crash(0)
	v, ok, _ := client.Get(ctx, []byte("k"))
	fmt.Println(ok, string(v))

	cell.Restart(ctx, 0) // repairs re-fill the restarted task
	fmt.Println("repaired:", cell.Stats().RepairsIssued > 0)
	// Output:
	// true v
	// repaired: true
}

// Planned maintenance hides behind a warm spare (§6.1).
func ExampleCell_PlannedMaintenance() {
	cell, _ := cliquemap.NewCell(cliquemap.Options{Shards: 3, Spares: 1})
	client := cell.NewClient(cliquemap.ClientOptions{})
	ctx := context.Background()
	client.Set(ctx, []byte("k"), []byte("v"))

	primary := "backend-0"
	spare, _ := cell.PlannedMaintenance(ctx, 0)
	_, ok, _ := client.Get(ctx, []byte("k"))
	fmt.Println("during rollout:", ok, spare != primary)
	cell.CompleteMaintenance(ctx, 0, primary)
	// Output: during rollout: true true
}

// An immutable corpus (§6.4): bulk-loaded, sealed, served from a single
// replica.
func ExampleCell_LoadImmutable() {
	cell, _ := cliquemap.NewCell(cliquemap.Options{Mode: cliquemap.R2Immutable})
	ctx := context.Background()
	cell.LoadImmutable(ctx, map[string][]byte{"model": []byte("weights")})

	client := cell.NewClient(cliquemap.ClientOptions{})
	v, ok, _ := client.Get(ctx, []byte("model"))
	fmt.Println(ok, string(v))
	fmt.Println("mutable:", client.Set(ctx, []byte("model"), []byte("x")) == nil)
	// Output:
	// true weights
	// mutable: false
}

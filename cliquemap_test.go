package cliquemap

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func newCell(t *testing.T, opt Options) *Cell {
	t.Helper()
	c, err := NewCell(opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicAPIQuickstart(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Spares: 1, Mode: R32})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()

	if err := cl.Set(ctx, []byte("greeting"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get(ctx, []byte("greeting"))
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := cl.Erase(ctx, []byte("greeting")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get(ctx, []byte("greeting")); ok {
		t.Error("erased key still visible")
	}
	st := cl.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("client stats: %+v", st)
	}
}

func TestPublicCas(t *testing.T) {
	c := newCell(t, Options{})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()
	v1, err := cl.SetVersioned(ctx, []byte("counter"), []byte("1"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cl.Cas(ctx, []byte("counter"), []byte("2"), v1)
	if err != nil || !ok {
		t.Fatalf("cas: %v %v", ok, err)
	}
	ok, _ = cl.Cas(ctx, []byte("counter"), []byte("3"), v1)
	if ok {
		t.Error("stale cas applied")
	}
}

func TestPublicBatch(t *testing.T) {
	c := newCell(t, Options{})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()
	var keys [][]byte
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("b%d", i))
		keys = append(keys, k)
		cl.Set(ctx, k, k)
	}
	vals, found, err := cl.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !found[i] || string(vals[i]) != string(keys[i]) {
			t.Errorf("batch[%d]: %q %v", i, vals[i], found[i])
		}
	}
}

func TestPublicMaintenanceFlow(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Spares: 1})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	primary := c.Internal().Store.Get().AddrFor(1)
	if _, err := c.PlannedMaintenance(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.Get(ctx, []byte("k3")); err != nil || !ok {
		t.Fatalf("get during maintenance: %v %v", ok, err)
	}
	if err := c.CompleteMaintenance(ctx, 1, primary); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCrashRestart(t *testing.T) {
	c := newCell(t, Options{})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	c.Crash(0)
	if _, ok, err := cl.Get(ctx, []byte("k1")); err != nil || !ok {
		t.Fatalf("get with shard down: %v %v", ok, err)
	}
	if err := c.Restart(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RepairsIssued == 0 {
		t.Error("restart did not repair")
	}
}

func TestPublicModesAndTransports(t *testing.T) {
	for _, mode := range []Mode{R1, R2Immutable, R32} {
		for _, tp := range []Transport{PonyExpress, OneRMA} {
			t.Run(fmt.Sprintf("%v-%d", mode, tp), func(t *testing.T) {
				c := newCell(t, Options{Mode: mode, Transport: tp})
				cl := c.NewClient(ClientOptions{})
				ctx := context.Background()
				if err := cl.Set(ctx, []byte("k"), []byte("v")); err != nil {
					t.Fatal(err)
				}
				v, ok, err := cl.Get(ctx, []byte("k"))
				if err != nil || !ok || string(v) != "v" {
					t.Fatalf("get: %q %v %v", v, ok, err)
				}
			})
		}
	}
}

func TestPublicEvictionPolicies(t *testing.T) {
	for _, pol := range []string{"lru", "arc", "clock", "slfu"} {
		t.Run(pol, func(t *testing.T) {
			c := newCell(t, Options{Eviction: pol})
			cl := c.NewClient(ClientOptions{TouchBatch: 8})
			ctx := context.Background()
			for i := 0; i < 20; i++ {
				cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
				cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
			}
			cl.FlushTouches(ctx)
		})
	}
	if _, err := NewCell(Options{Eviction: "bogus"}); err == nil {
		t.Error("bogus eviction policy accepted")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Sets: 1, MemoryBytes: 5 << 20}
	if s.String() == "" {
		t.Error("empty stats string")
	}
	for _, n := range []int{512, 4 << 10, 4 << 20, 4 << 30} {
		if fmtBytes(n) == "" {
			t.Error("fmtBytes empty")
		}
	}
}

func TestRepairLoopLifecycle(t *testing.T) {
	c := newCell(t, Options{})
	c.StartRepairLoop(10 * time.Millisecond)
	c.StartRepairLoop(10 * time.Millisecond) // idempotent
	time.Sleep(30 * time.Millisecond)
	c.StopRepairLoop()
	c.StopRepairLoop() // idempotent
}

func TestPublicWANClient(t *testing.T) {
	c := newCell(t, Options{ClientHosts: 2})
	local := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	wan := c.NewWANClient(ClientOptions{}, 20*time.Millisecond)
	ctx := context.Background()
	if err := local.Set(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := wan.Get(ctx, []byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("wan get: %q %v %v", v, ok, err)
	}
	if wan.Stats().GetP50 < 18*time.Millisecond {
		t.Errorf("wan p50 = %v, want ~>=20ms", wan.Stats().GetP50)
	}
}

func TestPublicImmutable(t *testing.T) {
	c := newCell(t, Options{Mode: R2Immutable})
	ctx := context.Background()
	if err := c.LoadImmutable(ctx, map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientOptions{})
	v, ok, err := cl.Get(ctx, []byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := cl.Set(ctx, []byte("a"), []byte("x")); err == nil {
		t.Error("sealed cell accepted a SET")
	}
}

func TestPublicCompression(t *testing.T) {
	c := newCell(t, Options{CompressThreshold: 128})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()
	val := make([]byte, 8192) // zeros: maximally compressible
	if err := cl.Set(ctx, []byte("z"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get(ctx, []byte("z"))
	if err != nil || !ok || len(got) != len(val) {
		t.Fatalf("get: len=%d ok=%v err=%v", len(got), ok, err)
	}
}

// TestPublicCustomHash: a cell-wide custom hash (§6.5) controls placement
// while all operations keep working, including against the default hash's
// reserved zero value.
func TestPublicCustomHash(t *testing.T) {
	c := newCell(t, Options{
		Hash: func(key []byte) (hi, lo uint64) {
			h := DefaultHash(key)
			return h.Hi ^ 0x1234, h.Lo // different placement than default
		},
	})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("ch%d", i))
		if err := cl.Set(ctx, k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("ch%d", i))
		v, ok, err := cl.Get(ctx, k)
		if err != nil || !ok || string(v) != string(k) {
			t.Fatalf("%s: %q %v %v", k, v, ok, err)
		}
	}
	if err := cl.Erase(ctx, []byte("ch0")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get(ctx, []byte("ch0")); ok {
		t.Error("erase under custom hash failed")
	}
	// A degenerate hash returning zero must be remapped, not break the
	// empty-slot sentinel.
	z := newCell(t, Options{Hash: func([]byte) (uint64, uint64) { return 0, 0 }})
	zcl := z.NewClient(ClientOptions{})
	if err := zcl.Set(ctx, []byte("zk"), []byte("zv")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := zcl.Get(ctx, []byte("zk")); err != nil || !ok || string(v) != "zv" {
		t.Fatalf("zero-hash cell: %q %v %v", v, ok, err)
	}
}

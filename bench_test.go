package cliquemap

// One benchmark per evaluation table/figure. Each exercises the figure's
// core operation under the figure's configuration so `go test -bench=.`
// sweeps the whole evaluation surface; cmd/cmbench regenerates the full
// series (rows, time series, CDFs) and EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/shim"
	"cliquemap/internal/truetime"
	"cliquemap/internal/workload"
)

func benchCell(b *testing.B, opt Options) *Cell {
	b.Helper()
	c, err := NewCell(opt)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchPreload(b *testing.B, cl *Client, n, valSize int) [][]byte {
	b.Helper()
	keys := make([][]byte, n)
	ctx := context.Background()
	for i := range keys {
		keys[i] = []byte(workload.Key(uint64(i)))
		if err := cl.Set(ctx, keys[i], workload.ValueGen(uint64(i), valSize)); err != nil {
			b.Fatal(err)
		}
	}
	return keys
}

// BenchmarkMutationThroughput drives the backend mutation path — the full
// RPC dispatch plus SET/CAS handler work — from many goroutines at once
// over disjoint key ranges. With one global backend lock this serializes;
// with bucket-stripe locking it should scale with -cpu. Run with e.g.
// `go test -bench MutationThroughput -cpu 1,8`.
func BenchmarkMutationThroughput(b *testing.B) {
	c := benchCell(b, Options{
		Shards: 1, Mode: R1,
		Buckets: 8192, Ways: 14,
		DataBytes: 64 << 20, DataMaxBytes: 64 << 20,
	})
	cc := c.Internal()
	ctx := context.Background()
	clientHost := cc.Fabric.NumHosts() - 1
	val := workload.ValueGen(1, 128)
	var gid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := gid.Add(1)
		rpcc := cc.Net.Client(clientHost, fmt.Sprintf("bench-%d", id))
		gen := truetime.NewGenerator(cc.Clock, 10_000+id)
		const span = 512 // keys owned by this goroutine
		lastVer := make([]truetime.Version, span)
		i := 0
		for pb.Next() {
			slot := i % span
			key := []byte(fmt.Sprintf("mt-%d-%d", id, slot))
			if i%4 == 3 && !lastVer[slot].Zero() {
				v := gen.Next()
				req := proto.CasReq{Key: key, Value: val, Expected: lastVer[slot], Version: v}
				resp, _, err := rpcc.Call(ctx, "backend-0", proto.MethodCas, req.Marshal())
				if err != nil {
					b.Fatal(err)
				}
				if mr, merr := proto.UnmarshalMutateResp(resp); merr == nil && mr.Applied {
					lastVer[slot] = v
				}
			} else {
				v := gen.Next()
				req := proto.SetReq{Key: key, Value: val, Version: v}
				resp, _, err := rpcc.Call(ctx, "backend-0", proto.MethodSet, req.Marshal())
				if err != nil {
					b.Fatal(err)
				}
				if mr, merr := proto.UnmarshalMutateResp(resp); merr == nil && mr.Applied {
					lastVer[slot] = v
				}
			}
			i++
		}
	})
}

// BenchmarkFig03Reshaping measures the mutation path with on-demand data
// region growth enabled — the reshaping machinery Figure 3 credits with
// the DRAM savings.
func BenchmarkFig03Reshaping(b *testing.B) {
	c := benchCell(b, Options{Shards: 3, DataBytes: 1 << 20, DataMaxBytes: 256 << 20})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()
	val := workload.ValueGen(1, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Set(ctx, []byte(workload.Key(uint64(i))), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Stats().DataGrows), "region-grows")
}

// BenchmarkFig03PreallocBaseline is the ablation: the pre-allocate-for-
// peak world the paper launched from.
func BenchmarkFig03PreallocBaseline(b *testing.B) {
	c := benchCell(b, Options{Shards: 3, DataBytes: 1 << 20, DataMaxBytes: 256 << 20, DisableReshaping: true})
	cl := c.NewClient(ClientOptions{})
	ctx := context.Background()
	val := workload.ValueGen(1, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Set(ctx, []byte(workload.Key(uint64(i))), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.MemoryBytes())/(1<<20), "MiB-resident")
}

// BenchmarkFig06Languages benchmarks one GET per language binding: native
// versus through the pipe shim.
func BenchmarkFig06Languages(b *testing.B) {
	for _, prof := range shim.Profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			c := benchCell(b, Options{})
			cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
			keys := benchPreload(b, cl, 64, 64)
			ctx := context.Background()
			if !prof.PipeHop {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			ip, err := shim.NewInProcess(ctx, benchStore{cl}, prof, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer ip.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := ip.Client.Get(keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type benchStore struct{ cl *Client }

func (s benchStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return s.cl.Get(ctx, key)
}
func (s benchStore) Set(ctx context.Context, key, value []byte) error {
	return s.cl.Set(ctx, key, value)
}
func (s benchStore) Erase(ctx context.Context, key []byte) error { return s.cl.Erase(ctx, key) }

// BenchmarkFig07LookupCPU benchmarks a GET per lookup strategy and reports
// the modelled client+pony CPU per op — Figure 7's comparison.
func BenchmarkFig07LookupCPU(b *testing.B) {
	for _, strat := range []Strategy{Lookup2xR, LookupSCAR, LookupMSG} {
		name := []string{"2xR", "SCAR", "MSG", "RPC"}[int(strat)]
		b.Run(name, func(b *testing.B) {
			c := benchCell(b, Options{Mode: R1})
			cl := c.NewClient(ClientOptions{Strategy: strat})
			keys := benchPreload(b, cl, 64, 64)
			ctx := context.Background()
			acct := c.Internal().Acct
			startC, startP := acct.TotalNanos("client"), acct.TotalNanos("pony")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(acct.TotalNanos("client")-startC)/n, "client-cpu-ns/op")
			b.ReportMetric(float64(acct.TotalNanos("pony")-startP)/n, "pony-cpu-ns/op")
		})
	}
}

// BenchmarkFig08AdsBatch benchmarks one Ads-style batched GET.
func BenchmarkFig08AdsBatch(b *testing.B) {
	c := benchCell(b, Options{Shards: 5})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	sizes := workload.AdsSizes(1)
	ctx := context.Background()
	for i := uint64(0); i < 500; i++ {
		cl.Set(ctx, []byte(workload.Key(i)), workload.ValueGen(i, sizes.Next()))
	}
	batches := workload.AdsBatches(2)
	kg := workload.NewZipfKeys(500, 1.2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := batches.Next()
		keys := make([][]byte, bs)
		for j := range keys {
			keys[j] = []byte(workload.Key(kg.Next()))
		}
		if _, _, err := cl.GetBatch(ctx, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09GeoMix benchmarks the Geo pattern: a batched GET plus a
// background segment update.
func BenchmarkFig09GeoMix(b *testing.B) {
	c := benchCell(b, Options{Shards: 4, Eviction: "arc"})
	reader := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	updater := c.NewClient(ClientOptions{})
	sizes := workload.GeoSizes(7)
	ctx := context.Background()
	for i := uint64(0); i < 500; i++ {
		updater.Set(ctx, []byte(workload.Key(i)), workload.ValueGen(i, sizes.Next()))
	}
	batches := workload.GeoBatches(9)
	kg := workload.NewZipfKeys(500, 1.05, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := batches.Next()
		keys := make([][]byte, bs)
		for j := range keys {
			keys[j] = []byte(workload.Key(kg.Next()))
		}
		if _, _, err := reader.GetBatch(ctx, keys); err != nil {
			b.Fatal(err)
		}
		seg := kg.Next()
		updater.Set(ctx, []byte(workload.Key(seg)), workload.ValueGen(seg, sizes.Next()))
	}
}

// BenchmarkFig10SizeGen benchmarks the object-size generators behind the
// Figure 10 CDFs.
func BenchmarkFig10SizeGen(b *testing.B) {
	ads, geo := workload.AdsSizes(1), workload.GeoSizes(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ads.Next()
		_ = geo.Next()
	}
}

// BenchmarkFig11Preferred benchmarks an R=3.2 GET with one replica's host
// under a 95% antagonist — the quorum's preferred-backend path.
func BenchmarkFig11Preferred(b *testing.B) {
	c := benchCell(b, Options{})
	cl := c.NewClient(ClientOptions{Strategy: Lookup2xR})
	keys := benchPreload(b, cl, 1, 4096)
	c.SetAntagonist(0, 0.95)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, keys[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cl.Stats().GetP99.Nanoseconds())/1000, "modelled-p99-us")
}

// BenchmarkFig12Incast benchmarks SCAR and 2×R GETs of 64KB values — the
// incast comparison.
func BenchmarkFig12Incast(b *testing.B) {
	for _, strat := range []Strategy{Lookup2xR, LookupSCAR} {
		name := []string{"2xR", "SCAR"}[int(strat)]
		b.Run(name, func(b *testing.B) {
			c := benchCell(b, Options{})
			cl := c.NewClient(ClientOptions{Strategy: strat})
			keys := benchPreload(b, cl, 4, 64<<10)
			ctx := context.Background()
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cl.Stats().GetP50.Nanoseconds())/1000, "modelled-p50-us")
		})
	}
}

// BenchmarkFig13PlannedMaintenance benchmarks the full migrate-to-spare /
// migrate-back cycle.
func BenchmarkFig13PlannedMaintenance(b *testing.B) {
	c := benchCell(b, Options{Shards: 3, Spares: 1})
	cl := c.NewClient(ClientOptions{})
	benchPreload(b, cl, 200, 1024)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		primary := c.Internal().Store.Get().AddrFor(0)
		if _, err := c.PlannedMaintenance(ctx, 0); err != nil {
			b.Fatal(err)
		}
		if err := c.CompleteMaintenance(ctx, 0, primary); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14CrashRepair benchmarks the crash → restart → repair cycle.
func BenchmarkFig14CrashRepair(b *testing.B) {
	c := benchCell(b, Options{Shards: 3})
	cl := c.NewClient(ClientOptions{})
	benchPreload(b, cl, 100, 512)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Crash(1)
		if err := c.Restart(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15PonyMaxRate benchmarks GETs at maximum offered rate over
// Pony Express — the op the Figure 15 ramp saturates with.
func BenchmarkFig15PonyMaxRate(b *testing.B) {
	cc, err := cell.New(cell.Options{
		Shards: 5, Mode: config.R1, Transport: cell.TransportPony,
	})
	if err != nil {
		b.Fatal(err)
	}
	cl := cc.NewClient(client.Options{Strategy: client.StrategySCAR})
	ctx := context.Background()
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(workload.Key(uint64(i)))
		cl.Set(ctx, keys[i], workload.ValueGen(uint64(i), 4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	engines := cc.PonyEngines()
	sum := 0
	for _, e := range engines {
		sum += e
	}
	b.ReportMetric(float64(sum)/float64(len(engines)), "engines/host")
}

// BenchmarkFig16_17OneRMA benchmarks 2×R GETs over the 1RMA hardware model
// and reports the hardware (fabric+PCIe) median — Figures 16 and 17.
func BenchmarkFig16_17OneRMA(b *testing.B) {
	cc, err := cell.New(cell.Options{
		Shards: 5, Mode: config.R1, Transport: cell.Transport1RMA,
	})
	if err != nil {
		b.Fatal(err)
	}
	cl := cc.NewClient(client.Options{Strategy: client.Strategy2xR})
	ctx := context.Background()
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(workload.Key(uint64(i)))
		cl.Set(ctx, keys[i], workload.ValueGen(uint64(i), 4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cc.HWHist.Percentile(50))/1000, "hw-p50-us")
}

// BenchmarkFig18Mix benchmarks the 5/50/95% GET mixes at 4KB values.
func BenchmarkFig18Mix(b *testing.B) {
	for _, frac := range []float64{0.05, 0.50, 0.95} {
		b.Run(fmt.Sprintf("get%d", int(frac*100)), func(b *testing.B) {
			c := benchCell(b, Options{})
			cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
			keys := benchPreload(b, cl, 100, 4096)
			mix := workload.NewMix(frac, 42)
			val := workload.ValueGen(9, 4096)
			ctx := context.Background()
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				if mix.NextIsGet() {
					if _, _, err := cl.Get(ctx, k); err != nil {
						b.Fatal(err)
					}
				} else if err := cl.Set(ctx, k, val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig19MixCPU benchmarks the 50% mix and reports modelled backend
// CPU per op — Figure 19's cost axis.
func BenchmarkFig19MixCPU(b *testing.B) {
	c := benchCell(b, Options{})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	keys := benchPreload(b, cl, 100, 4096)
	mix := workload.NewMix(0.50, 42)
	val := workload.ValueGen(9, 4096)
	ctx := context.Background()
	acct := c.Internal().Acct
	start := acct.TotalNanos("rpc-server") + acct.TotalNanos("handler") + acct.TotalNanos("pony")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if mix.NextIsGet() {
			cl.Get(ctx, k)
		} else {
			cl.Set(ctx, k, val)
		}
	}
	b.StopTimer()
	end := acct.TotalNanos("rpc-server") + acct.TotalNanos("handler") + acct.TotalNanos("pony")
	b.ReportMetric(float64(end-start)/float64(b.N), "backend-cpu-ns/op")
}

// BenchmarkFig20ValueSize sweeps the Figure 20 value sizes.
func BenchmarkFig20ValueSize(b *testing.B) {
	for _, sz := range []int{32, 256, 2048, 16384} {
		b.Run(fmt.Sprintf("%dB", sz), func(b *testing.B) {
			c := benchCell(b, Options{})
			cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
			keys := benchPreload(b, cl, 100, sz)
			ctx := context.Background()
			b.SetBytes(int64(sz))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1RPCBaseline quantifies Table 1/§2.1's premise: the cost
// of a full-framework RPC lookup versus the RMA path it motivates.
func BenchmarkTable1RPCBaseline(b *testing.B) {
	for _, strat := range []Strategy{LookupRPC, LookupSCAR} {
		name := map[Strategy]string{LookupRPC: "rpc", LookupSCAR: "rma-scar"}[strat]
		b.Run(name, func(b *testing.B) {
			c := benchCell(b, Options{})
			cl := c.NewClient(ClientOptions{Strategy: strat})
			keys := benchPreload(b, cl, 64, 64)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cl.Stats().GetP50.Nanoseconds())/1000, "modelled-p50-us")
		})
	}
}

// BenchmarkAblationEvictionPolicies compares the §4.2 replacement policies
// under churn.
func BenchmarkAblationEvictionPolicies(b *testing.B) {
	for _, pol := range []string{"lru", "arc", "clock", "slfu"} {
		b.Run(pol, func(b *testing.B) {
			c := benchCell(b, Options{
				Eviction: pol, DataBytes: 2 << 20, DataMaxBytes: 2 << 20,
			})
			cl := c.NewClient(ClientOptions{TouchBatch: 32})
			ctx := context.Background()
			val := workload.ValueGen(1, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Set(ctx, []byte(workload.Key(uint64(i%5000))), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWANGet measures the Table 1 WAN-access path: remote-region
// lookups over RPC with added WAN latency.
func BenchmarkWANGet(b *testing.B) {
	c := benchCell(b, Options{ClientHosts: 2})
	local := c.NewClient(ClientOptions{})
	keys := benchPreload(b, local, 64, 1024)
	wan := c.NewWANClient(ClientOptions{}, 20_000_000) // 20ms one-way
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wan.Get(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(wan.Stats().GetP50.Microseconds()), "modelled-p50-us")
}

// BenchmarkCompressionSet compares SET cost with and without the §9
// compression feature on compressible values.
func BenchmarkCompressionSet(b *testing.B) {
	val := make([]byte, 8192) // zeros: maximally compressible
	for _, threshold := range []int{0, 256} {
		name := "off"
		if threshold > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			c := benchCell(b, Options{CompressThreshold: threshold})
			cl := c.NewClient(ClientOptions{})
			ctx := context.Background()
			b.SetBytes(int64(len(val)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Set(ctx, []byte(workload.Key(uint64(i%512))), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkImmutableGet measures the §6.4 single-replica read path.
func BenchmarkImmutableGet(b *testing.B) {
	c := benchCell(b, Options{Mode: R2Immutable})
	corpus := map[string][]byte{}
	keys := make([][]byte, 128)
	for i := range keys {
		k := workload.Key(uint64(i))
		keys[i] = []byte(k)
		corpus[k] = workload.ValueGen(uint64(i), 1024)
	}
	ctx := context.Background()
	if err := c.LoadImmutable(ctx, corpus); err != nil {
		b.Fatal(err)
	}
	cl := c.NewClient(ClientOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

package cliquemap

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/fleet"
	"cliquemap/internal/rpc"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
)

// TestSlowGetVisibleOverDebugRPC is the end-to-end observability check:
// a degraded engine on the serving backend must surface as a retained
// slow GET in the Debug RPC, with its span timeline attributing the
// latency to engine service rather than quorum assembly.
func TestSlowGetVisibleOverDebugRPC(t *testing.T) {
	c := newCell(t, Options{Shards: 1, Spares: 0, Mode: R1})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()

	if err := cl.Set(ctx, []byte("slow-key"), []byte("payload")); err != nil {
		t.Fatal(err)
	}

	const delay = 10 * time.Millisecond
	c.Tracer().SetSlowThreshold(uint64(2 * time.Millisecond))
	c.SetEngineDelay(0, delay)
	if _, ok, err := cl.Get(ctx, []byte("slow-key")); err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	c.SetEngineDelay(0, 0)

	g, err := c.Internal().ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote, err := rpc.DialTCP(g.Addr(), "observer")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	raw, _, err := remote.Call(ctx, "backend-0", proto.MethodDebug, proto.DebugReq{MaxSlow: 8}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dbg, err := proto.UnmarshalDebugResp(raw)
	if err != nil {
		t.Fatal(err)
	}
	if dbg.SlowTotal == 0 || len(dbg.SlowOps) == 0 {
		t.Fatalf("no slow ops retained: %+v", dbg)
	}

	var slow *proto.DebugOp
	for i := range dbg.SlowOps {
		if dbg.SlowOps[i].Kind == "GET" {
			slow = &dbg.SlowOps[i]
			break
		}
	}
	if slow == nil {
		t.Fatalf("no slow GET in %+v", dbg.SlowOps)
	}
	if slow.Ns < uint64(delay) {
		t.Errorf("slow GET latency %v, want >= %v", time.Duration(slow.Ns), delay)
	}
	if slow.WallNs == 0 {
		t.Error("slow GET missing wall-clock stamp")
	}

	var engineNs, quorumNs uint64
	for _, sp := range slow.Spans {
		switch sp.Code {
		case trace.SpanEngineService:
			engineNs += sp.Dur
		case trace.SpanQuorumWait:
			quorumNs += sp.Dur
		}
	}
	if engineNs < uint64(delay) {
		t.Errorf("engine-service spans account for %v, want >= %v (spans: %+v)",
			time.Duration(engineNs), delay, slow.Spans)
	}
	if engineNs < slow.Ns/2 {
		t.Errorf("engine service %v should dominate op latency %v",
			time.Duration(engineNs), time.Duration(slow.Ns))
	}
	if quorumNs > 0 {
		t.Errorf("R1 GET reported quorum wait %v", time.Duration(quorumNs))
	}

	// The latency summary for GETs must have absorbed the slow op.
	var sawGet bool
	for _, h := range dbg.Hists {
		if h.Kind == "GET" && h.Count > 0 {
			sawGet = true
			if h.MaxNs < uint64(delay) {
				t.Errorf("GET hist max %v, want >= %v", time.Duration(h.MaxNs), delay)
			}
		}
	}
	if !sawGet {
		t.Errorf("no GET histogram in %+v", dbg.Hists)
	}
}

// TestSlowMutationAttributesQuorumWait degrades two of the three cohort
// members, so every mutation quorum must include a slow leg: the retained
// trace should blame SpanQuorumWait, not the local engine.
func TestSlowMutationAttributesQuorumWait(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Spares: 0, Mode: R32})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()

	const delay = 10 * time.Millisecond
	c.Tracer().SetSlowThreshold(uint64(2 * time.Millisecond))
	c.SetEngineDelay(1, delay)
	c.SetEngineDelay(2, delay)
	if err := cl.Set(ctx, []byte("quorum-key"), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c.SetEngineDelay(1, 0)
	c.SetEngineDelay(2, 0)

	snap := c.Tracer().Snapshot(8)
	var slow *trace.OpRecord
	for i := range snap.Slow {
		if snap.Slow[i].Kind == trace.KindSet {
			slow = &snap.Slow[i]
			break
		}
	}
	if slow == nil {
		t.Fatalf("no slow SET retained: %+v", snap.Slow)
	}
	var quorumNs uint64
	for _, sp := range slow.Spans {
		if sp.Code == trace.SpanQuorumWait {
			quorumNs += sp.Dur
		}
	}
	// The quorum spread is (second leg - first leg): one fast cohort
	// member and one degraded, so roughly the injected delay.
	if quorumNs < uint64(delay)/2 {
		t.Errorf("quorum wait %v, want >= %v (spans: %+v)",
			time.Duration(quorumNs), delay/2, slow.Spans)
	}
}

// TestFollowerGetTraceSpansBothCells is the cross-cell observability
// check: one follower GET through the federation tier must yield ONE
// trace — recorded in the follower cell's tracer under a single op id —
// whose span timeline covers the tier routing decision, the follower
// cell's local lookup, and the owner cell's revalidation legs. The same
// record must then be readable over the Debug RPC, exactly as
// cmstat -trace reads it.
func TestFollowerGetTraceSpansBothCells(t *testing.T) {
	small := Options{Shards: 2, Spares: 0, Mode: R32}
	tr, err := NewTier(TierOptions{Cells: []TierCellOptions{
		{Name: "us", Options: small},
		{Name: "eu", Options: small},
		{Name: "asia", Options: small},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	writer, err := tr.NewClient(TierClientOptions{Local: "us"})
	if err != nil {
		t.Fatal(err)
	}
	const staleBound = 500 * time.Millisecond
	reader, err := tr.NewClient(TierClientOptions{
		Local: "us", FollowerReads: true, StaleBound: staleBound,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A key owned by eu, read from us: every read crosses cells.
	var key []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("xcell-key-%05d", i))
		if tr.Owner(k) == "eu" {
			key = k
			break
		}
	}
	if err := writer.Set(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Follower miss → owner fetch, then a fresh hit, then (after the
	// bound, against a moved value) a revalidation that refreshes.
	if _, found, err := reader.Get(ctx, key); err != nil || !found {
		t.Fatalf("miss-path read: %v %v", found, err)
	}
	if _, found, err := reader.Get(ctx, key); err != nil || !found {
		t.Fatalf("hit-path read: %v %v", found, err)
	}
	if err := writer.Set(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(staleBound + 100*time.Millisecond)
	val, found, err := reader.Get(ctx, key)
	if err != nil || !found || string(val) != "v2" {
		t.Fatalf("revalidation read: %q %v %v", val, found, err)
	}

	// The tier edge records into the follower (us) cell's tracer, so the
	// co-located cell's debug plane shows the federated op end to end.
	hasSpan := func(spans []fabric.Span, code uint16) bool {
		for _, sp := range spans {
			if sp.Code == code {
				return true
			}
		}
		return false
	}
	countSpan := func(spans []fabric.Span, code uint16) int {
		n := 0
		for _, sp := range spans {
			if sp.Code == code {
				n++
			}
		}
		return n
	}
	var missRec, hitRec, revalRec *trace.OpRecord
	for _, r := range tr.Cell("us").Tracer().Recent(0) {
		r := r
		if r.Kind != trace.KindGet {
			continue
		}
		switch {
		case hasSpan(r.Spans, trace.SpanFollowerReval) && revalRec == nil:
			revalRec = &r
		case hasSpan(r.Spans, trace.SpanFollowerHit) && hitRec == nil:
			hitRec = &r
		case hasSpan(r.Spans, trace.SpanTierForward) && missRec == nil:
			missRec = &r
		}
	}
	if missRec == nil || hitRec == nil || revalRec == nil {
		t.Fatalf("missing tier GET records: miss=%v hit=%v reval=%v", missRec, hitRec, revalRec)
	}
	for name, r := range map[string]*trace.OpRecord{"miss": missRec, "hit": hitRec, "reval": revalRec} {
		if !hasSpan(r.Spans, trace.SpanTierRoute) || !hasSpan(r.Spans, trace.SpanRingLookup) {
			t.Errorf("%s record lacks tier routing spans: %+v", name, r.Spans)
		}
	}
	// The miss and revalidation paths touch BOTH cells under one op id:
	// the follower cell contributes its one-sided index lookup
	// (SpanIndexFetch), the owner cell its RPC-served fetch
	// (SpanRPCServer), in the same span list.
	for name, r := range map[string]*trace.OpRecord{"miss": missRec, "reval": revalRec} {
		if countSpan(r.Spans, trace.SpanIndexFetch) < 1 {
			t.Errorf("%s record lacks the follower cell's index lookup: %+v", name, r.Spans)
		}
		if countSpan(r.Spans, trace.SpanRPCServer) < 1 {
			t.Errorf("%s record lacks the owner cell's RPC fetch: %+v", name, r.Spans)
		}
	}
	// The fresh hit never left the follower cell.
	if hasSpan(hitRec.Spans, trace.SpanTierForward) {
		t.Errorf("follower hit shows a tier forward: %+v", hitRec.Spans)
	}
	// The tier edge classifies outcomes into per-class histograms.
	outcomes := map[string]bool{}
	for _, os := range reader.Internal().OutcomeStats() {
		outcomes[os.Outcome.String()] = true
	}
	if !outcomes["follower-hit"] || !outcomes["revalidate-miss"] {
		t.Errorf("outcome classes %v, want follower-hit and revalidate-miss", outcomes)
	}

	// Wire path: the same op id, with its cross-cell spans, is readable
	// over MethodDebug from the follower cell — the cmstat -trace view.
	g, err := tr.Cell("us").Internal().ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote, err := rpc.DialTCP(g.Addr(), "observer")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	raw, _, err := remote.Call(ctx, "backend-0", proto.MethodDebug, proto.DebugReq{MaxSlow: 8}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dbg, err := proto.UnmarshalDebugResp(raw)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, op := range append(append([]proto.DebugOp{}, dbg.Exemplars...), dbg.SlowOps...) {
		if op.ID != revalRec.ID {
			continue
		}
		found = true
		if !hasSpan(op.Spans, trace.SpanFollowerReval) || !hasSpan(op.Spans, trace.SpanTierRoute) {
			t.Errorf("wire copy of op %d lost tier spans: %+v", op.ID, op.Spans)
		}
		if countSpan(op.Spans, trace.SpanIndexFetch) < 1 || countSpan(op.Spans, trace.SpanRPCServer) < 1 {
			t.Errorf("wire copy of op %d lost a cell's spans: %+v", op.ID, op.Spans)
		}
	}
	if !found {
		t.Errorf("revalidation op %d not visible over Debug RPC", revalRec.ID)
	}
}

// TestHeatMergeRecallProperty checks the fleet heat-union property the
// global hot-key ranking rests on: unioning per-cell space-saving
// sketches over DISJOINT key populations (each cell owns its keys, so no
// key is counted twice) must (a) preserve the space-saving over-estimate
// bound per key and (b) recall nearly all of the true global top-k under
// a Zipf workload.
func TestHeatMergeRecallProperty(t *testing.T) {
	const (
		cells   = 3
		sketchK = 32
		topN    = 10
		keys    = 600
		draws   = 60000
	)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.3, 1, keys-1)

		truth := make(map[string]uint64)
		sketches := make([]*stats.TopK, cells)
		for i := range sketches {
			sketches[i] = stats.NewTopK(sketchK)
		}
		for i := 0; i < draws; i++ {
			id := zipf.Uint64()
			key := fmt.Sprintf("key-%04d", id)
			truth[key]++
			// Disjoint ownership: a key's accesses all land on one cell.
			sketches[id%cells].TouchString(key)
		}

		perCell := make([][]proto.DebugHotKey, cells)
		for i, sk := range sketches {
			for _, hk := range sk.TopN(sketchK) {
				perCell[i] = append(perCell[i], proto.DebugHotKey{Key: hk.Key, Count: hk.Count, Err: hk.Err})
			}
		}
		merged := fleet.MergeHotKeys(perCell...)
		if len(merged) == 0 {
			t.Fatalf("seed %d: empty merge", seed)
		}

		// (a) Over-estimate bound: for every merged key, the true count
		// lies in [Count-Err, Count].
		for _, hk := range merged {
			tc := truth[hk.Key]
			if tc > hk.Count || hk.Count-hk.Err > tc {
				t.Errorf("seed %d: key %s bound violated: true=%d count=%d err=%d",
					seed, hk.Key, tc, hk.Count, hk.Err)
			}
		}

		// (b) Recall of the true global top-N.
		type kc struct {
			k string
			c uint64
		}
		var all []kc
		for k, c := range truth {
			all = append(all, kc{k, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].k < all[j].k
		})
		want := make(map[string]bool, topN)
		for _, e := range all[:topN] {
			want[e.k] = true
		}
		n := topN
		if n > len(merged) {
			n = len(merged)
		}
		recalled := 0
		for _, hk := range merged[:n] {
			if want[hk.Key] {
				recalled++
			}
		}
		if recalled < topN-2 {
			t.Errorf("seed %d: recall %d/%d of true top-%d", seed, recalled, topN, topN)
		}
		// The single hottest key globally must rank first in the merge.
		if merged[0].Key != all[0].k {
			t.Errorf("seed %d: merged hottest %q, true hottest %q", seed, merged[0].Key, all[0].k)
		}
	}
}

package cliquemap

import (
	"context"
	"testing"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/rpc"
	"cliquemap/internal/trace"
)

// TestSlowGetVisibleOverDebugRPC is the end-to-end observability check:
// a degraded engine on the serving backend must surface as a retained
// slow GET in the Debug RPC, with its span timeline attributing the
// latency to engine service rather than quorum assembly.
func TestSlowGetVisibleOverDebugRPC(t *testing.T) {
	c := newCell(t, Options{Shards: 1, Spares: 0, Mode: R1})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()

	if err := cl.Set(ctx, []byte("slow-key"), []byte("payload")); err != nil {
		t.Fatal(err)
	}

	const delay = 10 * time.Millisecond
	c.Tracer().SetSlowThreshold(uint64(2 * time.Millisecond))
	c.SetEngineDelay(0, delay)
	if _, ok, err := cl.Get(ctx, []byte("slow-key")); err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	c.SetEngineDelay(0, 0)

	g, err := c.Internal().ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote, err := rpc.DialTCP(g.Addr(), "observer")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	raw, _, err := remote.Call(ctx, "backend-0", proto.MethodDebug, proto.DebugReq{MaxSlow: 8}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dbg, err := proto.UnmarshalDebugResp(raw)
	if err != nil {
		t.Fatal(err)
	}
	if dbg.SlowTotal == 0 || len(dbg.SlowOps) == 0 {
		t.Fatalf("no slow ops retained: %+v", dbg)
	}

	var slow *proto.DebugOp
	for i := range dbg.SlowOps {
		if dbg.SlowOps[i].Kind == "GET" {
			slow = &dbg.SlowOps[i]
			break
		}
	}
	if slow == nil {
		t.Fatalf("no slow GET in %+v", dbg.SlowOps)
	}
	if slow.Ns < uint64(delay) {
		t.Errorf("slow GET latency %v, want >= %v", time.Duration(slow.Ns), delay)
	}
	if slow.WallNs == 0 {
		t.Error("slow GET missing wall-clock stamp")
	}

	var engineNs, quorumNs uint64
	for _, sp := range slow.Spans {
		switch sp.Code {
		case trace.SpanEngineService:
			engineNs += sp.Dur
		case trace.SpanQuorumWait:
			quorumNs += sp.Dur
		}
	}
	if engineNs < uint64(delay) {
		t.Errorf("engine-service spans account for %v, want >= %v (spans: %+v)",
			time.Duration(engineNs), delay, slow.Spans)
	}
	if engineNs < slow.Ns/2 {
		t.Errorf("engine service %v should dominate op latency %v",
			time.Duration(engineNs), time.Duration(slow.Ns))
	}
	if quorumNs > 0 {
		t.Errorf("R1 GET reported quorum wait %v", time.Duration(quorumNs))
	}

	// The latency summary for GETs must have absorbed the slow op.
	var sawGet bool
	for _, h := range dbg.Hists {
		if h.Kind == "GET" && h.Count > 0 {
			sawGet = true
			if h.MaxNs < uint64(delay) {
				t.Errorf("GET hist max %v, want >= %v", time.Duration(h.MaxNs), delay)
			}
		}
	}
	if !sawGet {
		t.Errorf("no GET histogram in %+v", dbg.Hists)
	}
}

// TestSlowMutationAttributesQuorumWait degrades two of the three cohort
// members, so every mutation quorum must include a slow leg: the retained
// trace should blame SpanQuorumWait, not the local engine.
func TestSlowMutationAttributesQuorumWait(t *testing.T) {
	c := newCell(t, Options{Shards: 3, Spares: 0, Mode: R32})
	cl := c.NewClient(ClientOptions{Strategy: LookupSCAR})
	ctx := context.Background()

	const delay = 10 * time.Millisecond
	c.Tracer().SetSlowThreshold(uint64(2 * time.Millisecond))
	c.SetEngineDelay(1, delay)
	c.SetEngineDelay(2, delay)
	if err := cl.Set(ctx, []byte("quorum-key"), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c.SetEngineDelay(1, 0)
	c.SetEngineDelay(2, 0)

	snap := c.Tracer().Snapshot(8)
	var slow *trace.OpRecord
	for i := range snap.Slow {
		if snap.Slow[i].Kind == trace.KindSet {
			slow = &snap.Slow[i]
			break
		}
	}
	if slow == nil {
		t.Fatalf("no slow SET retained: %+v", snap.Slow)
	}
	var quorumNs uint64
	for _, sp := range slow.Spans {
		if sp.Code == trace.SpanQuorumWait {
			quorumNs += sp.Dur
		}
	}
	// The quorum spread is (second leg - first leg): one fast cohort
	// member and one degraded, so roughly the injected delay.
	if quorumNs < uint64(delay)/2 {
		t.Errorf("quorum wait %v, want >= %v (spans: %+v)",
			time.Duration(quorumNs), delay/2, slow.Spans)
	}
}

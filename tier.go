package cliquemap

// The federation tier is the unit of scale above a Cell: the paper's
// production fleet runs O(10²) independent cells (§2, §7), and NewTier
// reproduces that shape in-process — N cells behind a weighted
// consistent-hash router that demotes paged cells with hysteresis and
// routes around dead ones, moving only ~1/N of the key range per event.

import (
	"context"
	"time"

	"cliquemap/internal/core/client"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/tier"
	"cliquemap/internal/truetime"
)

// TierCellOptions names one member cell of a tier.
type TierCellOptions struct {
	// Name labels the cell ("us", "eu", ...). Required, unique.
	Name string
	// Weight is the cell's relative routing capacity (0 means 1).
	Weight float64
	// Options builds the cell, exactly as NewCell would.
	Options Options
}

// TierOptions configures NewTier.
type TierOptions struct {
	// Cells lists the member cells (at least one).
	Cells []TierCellOptions
	// Vnodes is the ring's virtual-node count per unit weight (0 takes
	// the default, 128).
	Vnodes int
	// DemotedFactor is the weight multiplier applied to a health-paged
	// cell (0 means 0.25).
	DemotedFactor float64
	// HealHold is how many consecutive clean health observations restore
	// a demoted cell to full weight (0 means 3).
	HealHold int
	// FailThreshold is how many consecutive failed ops mark a cell dead
	// and route around it (0 means 3).
	FailThreshold int
}

// Tier is a running federation of cells behind one router.
type Tier struct {
	t     *tier.Tier
	cells map[string]*Cell
}

// NewTier builds every member cell and the router above them.
func NewTier(opt TierOptions) (*Tier, error) {
	refs := make([]tier.CellRef, 0, len(opt.Cells))
	cells := make(map[string]*Cell, len(opt.Cells))
	for _, co := range opt.Cells {
		c, err := NewCell(co.Options)
		if err != nil {
			return nil, err
		}
		refs = append(refs, tier.CellRef{Name: co.Name, Cell: c.c, Weight: co.Weight})
		cells[co.Name] = c
	}
	t, err := tier.New(tier.Options{
		Cells:         refs,
		Vnodes:        opt.Vnodes,
		DemotedFactor: opt.DemotedFactor,
		HealHold:      opt.HealHold,
		FailThreshold: opt.FailThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &Tier{t: t, cells: cells}, nil
}

// Cells returns the member names in configuration order.
func (t *Tier) Cells() []string { return t.t.Cells() }

// Cell returns a member cell by name (nil if unknown).
func (t *Tier) Cell(name string) *Cell { return t.cells[name] }

// Owner returns the cell currently owning key ("" if none routable).
func (t *Tier) Owner(key []byte) string { return t.t.Owner(key) }

// Observe feeds each live cell's current health evaluation into the
// router (demote on page, restore after HealHold clean looks).
func (t *Tier) Observe() { t.t.Observe() }

// ProbeRound drives one canary prober round per live cell and applies
// the resulting health states to the router.
func (t *Tier) ProbeRound(ctx context.Context) { t.t.ProbeRound(ctx) }

// Revive returns a dead or demoted cell to full weight (the operator's
// lever after repairing it).
func (t *Tier) Revive(name string) { t.t.Router().Revive(name) }

// SetWeight changes a cell's configured routing weight — e.g. after a
// Resize grew its capacity.
func (t *Tier) SetWeight(name string, w float64) { t.t.Router().SetWeight(name, w) }

// RingVersion returns the routing ring's version, bumped on every
// rebuild (demotion, death, re-weight).
func (t *Tier) RingVersion() uint64 { return t.t.Router().Version() }

// Snapshot returns the router's current state in its MethodTier wire
// shape: per-cell live/base weights, health-driven demotion state, and
// exact keyspace ownership shares.
func (t *Tier) Snapshot() proto.TierResp { return t.t.Router().Snapshot() }

// Internal exposes the underlying tier for tests and tooling.
func (t *Tier) Internal() *tier.Tier { return t.t }

// TierClientOptions configures a tier client.
type TierClientOptions struct {
	// Local names the cell this client is co-located with ("" takes the
	// first cell). Follower reads cache remotely-owned keys there.
	Local string
	// FollowerReads serves GETs for remotely-owned keys from the local
	// cell within StaleBound, revalidating older entries by version
	// against the owner.
	FollowerReads bool
	// StaleBound is the follower-cache freshness bound on the local
	// cell's virtual clock (0 means 50ms).
	StaleBound time.Duration
	// Retries is the tier-level re-route budget per op (0 means
	// FailThreshold+1).
	Retries int
	// Client templates the per-cell clients.
	Client ClientOptions
}

// TierClient routes ops across the tier's cells.
type TierClient struct {
	c *tier.Client
}

// NewClient builds a tier client (one per-cell client per member).
func (t *Tier) NewClient(opt TierClientOptions) (*TierClient, error) {
	c, err := t.t.NewClient(tier.ClientOptions{
		Local:         opt.Local,
		FollowerReads: opt.FollowerReads,
		StaleBoundNs:  uint64(opt.StaleBound.Nanoseconds()),
		Retries:       opt.Retries,
		PerCell: client.Options{
			Strategy:   opt.Client.Strategy.internal(),
			Retries:    opt.Client.Retries,
			TouchBatch: opt.Client.TouchBatch,
		},
	})
	if err != nil {
		return nil, err
	}
	return &TierClient{c: c}, nil
}

// Get looks up key on its owning cell (or the local follower cache).
func (c *TierClient) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return c.c.Get(ctx, key)
}

// Set stores key=value on the owning cell.
func (c *TierClient) Set(ctx context.Context, key, value []byte) error {
	return c.c.Set(ctx, key, value)
}

// SetVersioned stores key=value and returns the owner-assigned version.
func (c *TierClient) SetVersioned(ctx context.Context, key, value []byte) (Version, error) {
	return c.c.SetVersioned(ctx, key, value)
}

// Erase removes key from its owning cell.
func (c *TierClient) Erase(ctx context.Context, key []byte) error {
	return c.c.Erase(ctx, key)
}

// Cas compare-and-swaps key on its owning cell.
func (c *TierClient) Cas(ctx context.Context, key, value []byte, expected truetime.Version) (bool, error) {
	return c.c.Cas(ctx, key, value, expected)
}

// TierClientStats snapshots a tier client's routing counters.
type TierClientStats struct {
	Ops               uint64 // tier-level ops attempted
	Reroutes          uint64 // retries after a failed cell op
	DeadFailovers     uint64 // retries that followed a cell-death rebuild
	FollowerHits      uint64 // GETs served fresh from the local follower cache
	FollowerRevalids  uint64 // stale entries confirmed current by owner version
	FollowerRefreshes uint64 // stale entries replaced by a newer owner value
	FollowerMisses    uint64 // follower-cache misses fetched from the owner
}

// Stats returns the client's routing counters.
func (c *TierClient) Stats() TierClientStats {
	m := c.c.Metrics()
	return TierClientStats{
		Ops:               m.Ops.Load(),
		Reroutes:          m.Reroutes.Load(),
		DeadFailovers:     m.DeadFailovers.Load(),
		FollowerHits:      m.FollowerHits.Load(),
		FollowerRevalids:  m.FollowerRevalids.Load(),
		FollowerRefreshes: m.FollowerRefreshes.Load(),
		FollowerMisses:    m.FollowerMisses.Load(),
	}
}

// Internal exposes the underlying tier client.
func (c *TierClient) Internal() *tier.Client { return c.c }

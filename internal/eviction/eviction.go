// Package eviction implements the configurable cache replacement policies
// CliqueMap backends run (§4.2).
//
// Because GETs are RMAs, backends never see reads directly; clients report
// touches in batched background RPCs and backends "ingest access records
// en masse" into one of these policies. Every policy is plain single-node
// code behind one interface — the paper's point about RPC-side mutations
// keeping rich replacement logic easy to write.
//
// Provided policies: LRU, ARC (Megiddo & Modha), CLOCK, and SampledLFU.
package eviction

import (
	"container/list"
	"fmt"
)

// Policy tracks resident keys and nominates eviction victims.
// Implementations are not goroutine-safe; the backend serializes access
// under its own lock (all calls already happen inside RPC handlers).
type Policy interface {
	// Add registers a newly inserted key.
	Add(key string)
	// Touch records an access (from ingested client access records).
	Touch(key string)
	// Remove drops a key (erased or evicted by the caller).
	Remove(key string)
	// AddBytes, TouchBytes and RemoveBytes are the byte-keyed forms of
	// Add/Touch/Remove. The backend's hot mutation path holds keys as
	// []byte; these variants let implementations use the allocation-free
	// m[string(b)] map-access form so the already-resident case (the
	// common one under a steady working set) costs no string conversion.
	AddBytes(key []byte)
	TouchBytes(key []byte)
	RemoveBytes(key []byte)
	// Victim nominates the next key to evict, without removing it.
	Victim() (string, bool)
	// Len returns the tracked key count.
	Len() int
	// Name identifies the policy.
	Name() string
}

// New constructs a policy by name: "lru", "arc", "clock", "slfu".
func New(name string, capacityHint int) (Policy, error) {
	switch name {
	case "lru", "":
		return NewLRU(), nil
	case "arc":
		return NewARC(capacityHint), nil
	case "clock":
		return NewClock(), nil
	case "slfu":
		return NewSampledLFU(), nil
	default:
		return nil, fmt.Errorf("eviction: unknown policy %q", name)
	}
}

// ---------------------------------------------------------------- LRU --

// LRU evicts the least recently used key.
type LRU struct {
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{ll: list.New(), items: make(map[string]*list.Element)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Len implements Policy.
func (p *LRU) Len() int { return len(p.items) }

// Add implements Policy.
func (p *LRU) Add(key string) {
	if el, ok := p.items[key]; ok {
		p.ll.MoveToFront(el)
		return
	}
	p.items[key] = p.ll.PushFront(key)
}

// Touch implements Policy.
func (p *LRU) Touch(key string) {
	if el, ok := p.items[key]; ok {
		p.ll.MoveToFront(el)
	}
}

// Remove implements Policy.
func (p *LRU) Remove(key string) {
	if el, ok := p.items[key]; ok {
		p.ll.Remove(el)
		delete(p.items, key)
	}
}

// AddBytes implements Policy; resident keys re-rank without allocating.
func (p *LRU) AddBytes(key []byte) {
	if el, ok := p.items[string(key)]; ok {
		p.ll.MoveToFront(el)
		return
	}
	k := string(key)
	p.items[k] = p.ll.PushFront(k)
}

// TouchBytes implements Policy.
func (p *LRU) TouchBytes(key []byte) {
	if el, ok := p.items[string(key)]; ok {
		p.ll.MoveToFront(el)
	}
}

// RemoveBytes implements Policy.
func (p *LRU) RemoveBytes(key []byte) {
	if el, ok := p.items[string(key)]; ok {
		p.ll.Remove(el)
		delete(p.items, string(key))
	}
}

// Victim implements Policy.
func (p *LRU) Victim() (string, bool) {
	el := p.ll.Back()
	if el == nil {
		return "", false
	}
	return el.Value.(string), true
}

// ---------------------------------------------------------------- ARC --

// ARC is the self-tuning Adaptive Replacement Cache: two resident lists
// (t1 recency, t2 frequency) plus two ghost lists (b1, b2) steering the
// adaptation parameter.
type ARC struct {
	c          int // target resident capacity for adaptation
	p          int // adaptation: target size of t1
	t1, t2     *list.List
	b1, b2     *list.List
	where      map[string]*arcEntry
	ghostLimit int
}

type arcEntry struct {
	el   *list.Element
	list *list.List
}

// NewARC returns an ARC policy adapting around capacityHint resident keys.
func NewARC(capacityHint int) *ARC {
	if capacityHint <= 0 {
		capacityHint = 1024
	}
	return &ARC{
		c: capacityHint, t1: list.New(), t2: list.New(), b1: list.New(), b2: list.New(),
		where: make(map[string]*arcEntry), ghostLimit: capacityHint,
	}
}

// Name implements Policy.
func (p *ARC) Name() string { return "arc" }

// Len implements Policy.
func (p *ARC) Len() int { return p.t1.Len() + p.t2.Len() }

func (p *ARC) trimGhost(l *list.List) {
	for l.Len() > p.ghostLimit {
		el := l.Back()
		delete(p.where, el.Value.(string))
		l.Remove(el)
	}
}

// Add implements Policy.
func (p *ARC) Add(key string) {
	if e, ok := p.where[key]; ok {
		switch e.list {
		case p.t1, p.t2:
			p.promote(key, e)
			return
		case p.b1:
			// Ghost hit in recency list: grow p.
			p.p = min(p.p+max(1, p.b2.Len()/max(1, p.b1.Len())), p.c)
			p.b1.Remove(e.el)
			p.where[key] = &arcEntry{el: p.t2.PushFront(key), list: p.t2}
			return
		case p.b2:
			// Ghost hit in frequency list: shrink p.
			p.p = max(p.p-max(1, p.b1.Len()/max(1, p.b2.Len())), 0)
			p.b2.Remove(e.el)
			p.where[key] = &arcEntry{el: p.t2.PushFront(key), list: p.t2}
			return
		}
	}
	p.where[key] = &arcEntry{el: p.t1.PushFront(key), list: p.t1}
}

func (p *ARC) promote(key string, e *arcEntry) {
	e.list.Remove(e.el)
	p.where[key] = &arcEntry{el: p.t2.PushFront(key), list: p.t2}
}

// Touch implements Policy.
func (p *ARC) Touch(key string) {
	if e, ok := p.where[key]; ok && (e.list == p.t1 || e.list == p.t2) {
		p.promote(key, e)
	}
}

// Remove implements Policy.
func (p *ARC) Remove(key string) {
	e, ok := p.where[key]
	if !ok {
		return
	}
	if e.list == p.t1 || e.list == p.t2 {
		// Evicted/erased resident keys leave a ghost trace.
		e.list.Remove(e.el)
		var ghost *list.List
		if e.list == p.t1 {
			ghost = p.b1
		} else {
			ghost = p.b2
		}
		p.where[key] = &arcEntry{el: ghost.PushFront(key), list: ghost}
		p.trimGhost(ghost)
		return
	}
	e.list.Remove(e.el)
	delete(p.where, key)
}

// AddBytes implements Policy. Every ARC add path re-links the key into a
// list, which stores a string, so this cannot avoid the conversion.
func (p *ARC) AddBytes(key []byte) { p.Add(string(key)) }

// TouchBytes implements Policy.
func (p *ARC) TouchBytes(key []byte) {
	if e, ok := p.where[string(key)]; ok && (e.list == p.t1 || e.list == p.t2) {
		p.promote(string(key), e)
	}
}

// RemoveBytes implements Policy.
func (p *ARC) RemoveBytes(key []byte) {
	if _, ok := p.where[string(key)]; ok {
		p.Remove(string(key))
	}
}

// Victim implements Policy: evict from t1 if it exceeds the adaptive
// target p, else from t2.
func (p *ARC) Victim() (string, bool) {
	if p.t1.Len() > 0 && (p.t1.Len() >= p.p || p.t2.Len() == 0) {
		return p.t1.Back().Value.(string), true
	}
	if p.t2.Len() > 0 {
		return p.t2.Back().Value.(string), true
	}
	return "", false
}

// -------------------------------------------------------------- CLOCK --

// Clock approximates LRU with a reference bit and a sweeping hand.
type Clock struct {
	ll    *list.List // ring order
	items map[string]*clockEntry
	hand  *list.Element
}

type clockEntry struct {
	el  *list.Element
	ref bool
}

// NewClock returns an empty CLOCK policy.
func NewClock() *Clock {
	return &Clock{ll: list.New(), items: make(map[string]*clockEntry)}
}

// Name implements Policy.
func (p *Clock) Name() string { return "clock" }

// Len implements Policy.
func (p *Clock) Len() int { return len(p.items) }

// Add implements Policy.
func (p *Clock) Add(key string) {
	if e, ok := p.items[key]; ok {
		e.ref = true
		return
	}
	p.items[key] = &clockEntry{el: p.ll.PushBack(key)}
}

// Touch implements Policy.
func (p *Clock) Touch(key string) {
	if e, ok := p.items[key]; ok {
		e.ref = true
	}
}

// Remove implements Policy.
func (p *Clock) Remove(key string) {
	if e, ok := p.items[key]; ok {
		if p.hand == e.el {
			p.hand = e.el.Next()
		}
		p.ll.Remove(e.el)
		delete(p.items, key)
	}
}

// AddBytes implements Policy; resident keys just set the reference bit.
func (p *Clock) AddBytes(key []byte) {
	if e, ok := p.items[string(key)]; ok {
		e.ref = true
		return
	}
	k := string(key)
	p.items[k] = &clockEntry{el: p.ll.PushBack(k)}
}

// TouchBytes implements Policy.
func (p *Clock) TouchBytes(key []byte) {
	if e, ok := p.items[string(key)]; ok {
		e.ref = true
	}
}

// RemoveBytes implements Policy.
func (p *Clock) RemoveBytes(key []byte) {
	if e, ok := p.items[string(key)]; ok {
		if p.hand == e.el {
			p.hand = e.el.Next()
		}
		p.ll.Remove(e.el)
		delete(p.items, string(key))
	}
}

// Victim implements Policy: sweep, clearing reference bits, until an
// unreferenced key is found.
func (p *Clock) Victim() (string, bool) {
	if p.ll.Len() == 0 {
		return "", false
	}
	for sweeps := 0; sweeps < 2*p.ll.Len()+1; sweeps++ {
		if p.hand == nil {
			p.hand = p.ll.Front()
		}
		key := p.hand.Value.(string)
		e := p.items[key]
		if !e.ref {
			return key, true
		}
		e.ref = false
		p.hand = p.hand.Next()
	}
	return p.ll.Front().Value.(string), true
}

// --------------------------------------------------------- SampledLFU --

// SampledLFU keeps per-key access counts and nominates the
// lowest-frequency key among a deterministic sample — the cheap LFU
// approximation used by several production caches.
type SampledLFU struct {
	counts map[string]uint64
	keys   []string
	pos    map[string]int
	cursor int
	sample int
}

// NewSampledLFU returns an empty sampled-LFU policy.
func NewSampledLFU() *SampledLFU {
	return &SampledLFU{counts: make(map[string]uint64), pos: make(map[string]int), sample: 8}
}

// Name implements Policy.
func (p *SampledLFU) Name() string { return "slfu" }

// Len implements Policy.
func (p *SampledLFU) Len() int { return len(p.keys) }

// Add implements Policy.
func (p *SampledLFU) Add(key string) {
	if _, ok := p.pos[key]; !ok {
		p.pos[key] = len(p.keys)
		p.keys = append(p.keys, key)
	}
	p.counts[key]++
}

// Touch implements Policy.
func (p *SampledLFU) Touch(key string) {
	if _, ok := p.pos[key]; ok {
		p.counts[key]++
	}
}

// Remove implements Policy.
func (p *SampledLFU) Remove(key string) {
	i, ok := p.pos[key]
	if !ok {
		return
	}
	last := len(p.keys) - 1
	p.keys[i] = p.keys[last]
	p.pos[p.keys[i]] = i
	p.keys = p.keys[:last]
	delete(p.pos, key)
	delete(p.counts, key)
}

// AddBytes implements Policy; known keys bump their count allocation-free.
func (p *SampledLFU) AddBytes(key []byte) {
	if i, ok := p.pos[string(key)]; ok {
		p.counts[p.keys[i]]++
		return
	}
	k := string(key)
	p.pos[k] = len(p.keys)
	p.keys = append(p.keys, k)
	p.counts[k]++
}

// TouchBytes implements Policy.
func (p *SampledLFU) TouchBytes(key []byte) {
	if i, ok := p.pos[string(key)]; ok {
		p.counts[p.keys[i]]++
	}
}

// RemoveBytes implements Policy.
func (p *SampledLFU) RemoveBytes(key []byte) {
	if _, ok := p.pos[string(key)]; ok {
		p.Remove(string(key))
	}
}

// Victim implements Policy: scan a rotating sample window for the
// lowest-count key.
func (p *SampledLFU) Victim() (string, bool) {
	n := len(p.keys)
	if n == 0 {
		return "", false
	}
	best := ""
	var bestCount uint64
	for i := 0; i < p.sample && i < n; i++ {
		k := p.keys[(p.cursor+i)%n]
		if best == "" || p.counts[k] < bestCount {
			best, bestCount = k, p.counts[k]
		}
	}
	p.cursor = (p.cursor + p.sample) % n
	return best, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package eviction

import (
	"fmt"
	"testing"
)

func allPolicies() []Policy {
	return []Policy{NewLRU(), NewARC(64), NewClock(), NewSampledLFU()}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"lru", "arc", "clock", "slfu", ""} {
		p, err := New(name, 16)
		if err != nil || p == nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	if _, err := New("mru", 16); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestPolicyContract checks the invariants every policy must satisfy.
func TestPolicyContract(t *testing.T) {
	for _, p := range allPolicies() {
		t.Run(p.Name(), func(t *testing.T) {
			if _, ok := p.Victim(); ok {
				t.Error("empty policy nominated a victim")
			}
			if p.Len() != 0 {
				t.Error("empty policy has nonzero Len")
			}
			for i := 0; i < 10; i++ {
				p.Add(fmt.Sprintf("k%d", i))
			}
			if p.Len() != 10 {
				t.Errorf("Len = %d, want 10", p.Len())
			}
			p.Add("k3") // duplicate add must not grow
			if p.Len() != 10 {
				t.Errorf("duplicate add grew Len to %d", p.Len())
			}
			v, ok := p.Victim()
			if !ok {
				t.Fatal("no victim")
			}
			p.Remove(v)
			if p.Len() != 9 {
				t.Errorf("Len after remove = %d", p.Len())
			}
			p.Remove("absent") // must be a no-op
			if p.Len() != 9 {
				t.Error("removing absent key changed Len")
			}
			p.Touch("absent") // must not insert
			if p.Len() != 9 {
				t.Error("touching absent key changed Len")
			}
			// Drain completely.
			for p.Len() > 0 {
				v, ok := p.Victim()
				if !ok {
					t.Fatal("victim disappeared with items resident")
				}
				p.Remove(v)
			}
			if _, ok := p.Victim(); ok {
				t.Error("drained policy nominated a victim")
			}
		})
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewLRU()
	p.Add("a")
	p.Add("b")
	p.Add("c")
	if v, _ := p.Victim(); v != "a" {
		t.Errorf("victim = %q, want a", v)
	}
	p.Touch("a") // a becomes most recent
	if v, _ := p.Victim(); v != "b" {
		t.Errorf("after touch, victim = %q, want b", v)
	}
	p.Remove("b")
	if v, _ := p.Victim(); v != "c" {
		t.Errorf("after remove, victim = %q, want c", v)
	}
}

func TestClockSecondChance(t *testing.T) {
	p := NewClock()
	p.Add("a")
	p.Add("b")
	p.Touch("a")
	// a is referenced: the sweep must clear it and pick b.
	if v, _ := p.Victim(); v != "b" {
		t.Errorf("victim = %q, want b (a had its reference bit set)", v)
	}
	// After the sweep cleared a's bit, a is now evictable.
	p.Remove("b")
	if v, _ := p.Victim(); v != "a" {
		t.Errorf("second victim = %q, want a", v)
	}
}

func TestSampledLFUPrefersCold(t *testing.T) {
	p := NewSampledLFU()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		p.Add(k)
		for j := 0; j < i; j++ {
			p.Touch(k) // k0 coldest, k7 hottest
		}
	}
	if v, _ := p.Victim(); v != "k0" {
		t.Errorf("victim = %q, want coldest k0", v)
	}
}

// TestARCAdaptsToFrequency: keys re-added after ghost eviction from the
// recency side move to the frequency side and survive over one-hit
// wonders.
func TestARCAdaptsToFrequency(t *testing.T) {
	p := NewARC(4)
	p.Add("hot")
	p.Add("hot") // second hit: promoted to t2
	for i := 0; i < 4; i++ {
		p.Add(fmt.Sprintf("scan%d", i)) // recency pollution
	}
	// Victim should come from the scan keys (t1), not the hot key (t2).
	v, ok := p.Victim()
	if !ok {
		t.Fatal("no victim")
	}
	if v == "hot" {
		t.Error("ARC evicted the frequent key under scan pollution")
	}
}

func TestARCGhostResurrection(t *testing.T) {
	p := NewARC(4)
	p.Add("x")
	p.Remove("x") // leaves a ghost in b1
	if p.Len() != 0 {
		t.Fatalf("resident len = %d", p.Len())
	}
	p.Add("x") // ghost hit: straight into t2
	if p.Len() != 1 {
		t.Fatalf("after resurrection len = %d", p.Len())
	}
	p.Add("y")
	// x lives in t2; victim should be the one-hit y from t1.
	if v, _ := p.Victim(); v != "y" {
		t.Errorf("victim = %q, want y", v)
	}
}

func TestARCGhostListsBounded(t *testing.T) {
	p := NewARC(8)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i)
		p.Add(k)
		p.Remove(k)
	}
	if p.b1.Len() > 8 || p.b2.Len() > 8 {
		t.Errorf("ghost lists unbounded: b1=%d b2=%d", p.b1.Len(), p.b2.Len())
	}
}

// TestLRUBeatsFIFOOnLoop is a behavioural sanity check: under a loop
// with one hot key, LRU must keep the hot key resident.
func TestLRUHotKeySurvives(t *testing.T) {
	p := NewLRU()
	p.Add("hot")
	for round := 0; round < 50; round++ {
		p.Add(fmt.Sprintf("cold%d", round))
		p.Touch("hot")
		// Evict one per round to stay near capacity 2.
		if p.Len() > 2 {
			v, _ := p.Victim()
			if v == "hot" {
				t.Fatal("LRU evicted the constantly touched key")
			}
			p.Remove(v)
		}
	}
}

func BenchmarkLRUTouch(b *testing.B) {
	p := NewLRU()
	for i := 0; i < 10000; i++ {
		p.Add(fmt.Sprintf("k%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(fmt.Sprintf("k%d", i%10000))
	}
}

func BenchmarkARCAdd(b *testing.B) {
	p := NewARC(10000)
	keys := make([]string, 16384)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(keys[i%len(keys)])
		if p.Len() > 10000 {
			v, _ := p.Victim()
			p.Remove(v)
		}
	}
}

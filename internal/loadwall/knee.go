package loadwall

import (
	"fmt"
	"math"
	"sort"

	"cliquemap/internal/health"
)

// Probe snapshots saturation scores at a step boundary: resource name →
// dimensionless load (queue-seconds accrued per wall-second, or a rho-like
// utilization). The knee search records the scores at each failing step
// and names the argmax as the limiting resource — the thing that actually
// clipped. Scores must be comparable across resources; "fraction of one
// resource-second consumed per second" is the intended semantic.
type Probe func() map[string]float64

// Config drives FindKnee.
type Config struct {
	StartQPS float64 // first ramp step (default 1000)
	MaxQPS   float64 // give up above this (default 1<<20)
	Grow     float64 // ramp factor between coarse steps (default 2)
	Bisect   int     // bisection iterations after the coarse bracket (default 3)

	StepDurationNs uint64  // settle window per step (default 250ms)
	Arrival        Arrival // arrival law (default Poisson)
	Seed           uint64
	Workers        int

	// WarmupNs, when non-zero, runs one discarded step at StartQPS before
	// the ramp. Load-dependent state in the system under test (rate EWMAs,
	// admission-control utilization estimates) otherwise still reflects
	// whatever traffic preceded the search — e.g. a tight preload loop —
	// and mis-prices the first steps.
	WarmupNs uint64

	// Class and Objective gate a step on the health plane: a fresh plane
	// (windows scaled to the step) records every op, and a step fails if
	// the class pages. Zero Objective means latency/availability gating is
	// disabled and only MaxErrorRate and backlog apply.
	Class     string
	Objective health.Objective

	// MaxErrorRate fails a step whose error fraction (ErrExhausted,
	// unavailability, …) exceeds it. Default 0.01.
	MaxErrorRate float64

	// MaxBacklogFrac fails a step whose worst issue backlog exceeds this
	// fraction of the step duration — offered load the generator could not
	// even issue on time is unsustainable by definition. Default 0.5.
	MaxBacklogFrac float64
}

func (c Config) withDefaults() Config {
	if c.StartQPS <= 0 {
		c.StartQPS = 1000
	}
	if c.MaxQPS <= 0 {
		c.MaxQPS = 1 << 20
	}
	if c.Grow <= 1 {
		c.Grow = 2
	}
	if c.Bisect == 0 {
		c.Bisect = 3
	}
	if c.StepDurationNs == 0 {
		c.StepDurationNs = 250e6
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.01
	}
	if c.MaxBacklogFrac <= 0 {
		c.MaxBacklogFrac = 0.5
	}
	if c.Class == "" {
		c.Class = "GET"
	}
	return c
}

// StepOutcome is one ramp step plus its verdict.
type StepOutcome struct {
	StepResult
	Passed     bool
	Reason     string             // why the step failed ("" when passed)
	Saturation map[string]float64 // probe snapshot at step end
}

// Report is the full load-wall result: the curve, the knee, and the
// resource that clipped.
type Report struct {
	Steps   []StepOutcome
	KneeQPS float64 // highest offered QPS that passed (0: even StartQPS failed)
	// Limiting names the saturation score that dominated at the failing
	// step closest to the knee — the resource that hit the wall.
	Limiting string
	// LimitingScore is that resource's score at the same step.
	LimitingScore float64
}

// FindKnee ramps offered load geometrically until a step fails its SLO,
// then bisects (geometric midpoints) between the last pass and the first
// fail. op is the system under test; probe (optional) supplies saturation
// scores so the report can name the wall.
func FindKnee(clock Clock, cfg Config, op Op, probe Probe) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{}

	runStep := func(qps float64) StepOutcome {
		ops := int(qps * float64(cfg.StepDurationNs) / 1e9)
		if ops < 16 {
			ops = 16
		}
		// A fresh plane per step: the knee question is "does THIS offered
		// load page", not "has the whole ramp paged yet". Windows scale to
		// the step so the burn thresholds act within the settle window.
		var plane *health.Plane
		if cfg.Objective != (health.Objective{}) {
			hcfg := health.Config{
				FastWindowNs: cfg.StepDurationNs / 2,
				SlowWindowNs: cfg.StepDurationNs,
				BucketNs:     cfg.StepDurationNs / 16,
				Objectives:   []health.Objective{{Class: cfg.Class, Availability: cfg.Objective.Availability, LatencyNs: cfg.Objective.LatencyNs}},
			}
			plane = health.NewPlane(hcfg, clock.NowNs)
		}
		sc := StepConfig{
			QPS: qps, Ops: ops, Arrival: cfg.Arrival,
			Seed: cfg.Seed ^ math.Float64bits(qps), Workers: cfg.Workers,
		}
		if plane != nil {
			sc.OnResult = func(latNs uint64, err error) {
				plane.Record(cfg.Class, latNs, err != nil)
			}
		}
		out := StepOutcome{StepResult: RunStep(clock, sc, op), Passed: true}
		if probe != nil {
			out.Saturation = probe()
		}
		total := out.Completed + out.Errors
		if total > 0 {
			if errRate := float64(out.Errors) / float64(total); errRate > cfg.MaxErrorRate {
				out.Passed = false
				out.Reason = fmt.Sprintf("error-rate %.1f%%", errRate*100)
			}
		}
		if out.Passed && plane != nil {
			if snap := plane.Evaluate(); snap.Worst() >= health.Page {
				cs, _ := snap.Class(cfg.Class)
				out.Passed = false
				out.Reason = fmt.Sprintf("slo-page (burn %.1f, p99 %s)", cs.FastBurn, fmtNs(cs.ProbeP99Ns))
			}
		}
		if out.Passed && float64(out.MaxLagNs) > cfg.MaxBacklogFrac*float64(cfg.StepDurationNs) {
			out.Passed = false
			out.Reason = fmt.Sprintf("backlog %s", fmtNs(out.MaxLagNs))
		}
		rep.Steps = append(rep.Steps, out)
		return out
	}

	// A failing step is re-run once and the confirmation's verdict
	// stands. A genuinely saturated step fails both times (the system's
	// queues are the same ones), but a one-off environmental stall — a
	// GC pause, a scheduler hiccup on a busy box — fails only the run it
	// landed in, and without confirmation it would bias the knee down or
	// declare no sustainable load at all. Both runs stay in Steps so the
	// curve shows the discarded verdict.
	step := func(qps float64) StepOutcome {
		out := runStep(qps)
		if !out.Passed {
			out = runStep(qps)
		}
		return out
	}

	if cfg.WarmupNs > 0 {
		n := int(cfg.StartQPS * float64(cfg.WarmupNs) / 1e9)
		if n < 16 {
			n = 16
		}
		RunStep(clock, StepConfig{
			QPS: cfg.StartQPS, Ops: n, Arrival: cfg.Arrival,
			Seed: cfg.Seed ^ 0x77a7, Workers: cfg.Workers,
		}, op)
		if probe != nil {
			probe() // discard warmup deltas so step scores start clean
		}
	}

	// Coarse geometric ramp.
	lo, hi := 0.0, 0.0
	var firstFail *StepOutcome
	for qps := cfg.StartQPS; qps <= cfg.MaxQPS; qps *= cfg.Grow {
		out := step(qps)
		if out.Passed {
			lo = qps
		} else {
			hi = qps
			firstFail = &rep.Steps[len(rep.Steps)-1]
			break
		}
	}
	if hi == 0 {
		// Never failed up to MaxQPS: the wall is beyond the probe range.
		rep.KneeQPS = lo
		return rep
	}

	// Bisect the bracket at geometric midpoints.
	for i := 0; i < cfg.Bisect && lo > 0; i++ {
		mid := math.Sqrt(lo * hi)
		out := step(mid)
		if out.Passed {
			lo = mid
		} else {
			hi = mid
			firstFail = &rep.Steps[len(rep.Steps)-1]
		}
	}
	rep.KneeQPS = lo

	// Name the wall from the failing step closest to the knee.
	if firstFail != nil && len(firstFail.Saturation) > 0 {
		names := make([]string, 0, len(firstFail.Saturation))
		for k := range firstFail.Saturation {
			names = append(names, k)
		}
		sort.Strings(names) // deterministic tie-break
		for _, k := range names {
			if v := firstFail.Saturation[k]; v > rep.LimitingScore {
				rep.Limiting, rep.LimitingScore = k, v
			}
		}
	}
	return rep
}

// KneeStep returns the highest passing step (the measured curve point at
// the knee), or ok=false if every step failed.
func (r *Report) KneeStep() (StepOutcome, bool) {
	var best StepOutcome
	ok := false
	for _, s := range r.Steps {
		if s.Passed && (!ok || s.OfferedQPS > best.OfferedQPS) {
			best, ok = s, true
		}
	}
	return best, ok
}

func fmtNs(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

package loadwall

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"cliquemap/internal/health"
)

// TestScheduleDeterministic: same seed → identical arrival sequence;
// different seed → different sequence.
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(ArrivalPoisson, 10000, 1000, 42)
	b := Schedule(ArrivalPoisson, 10000, 1000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different Poisson schedules")
	}
	c := Schedule(ArrivalPoisson, 10000, 1000, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical Poisson schedules")
	}
}

// TestScheduleUniform: exact 1/QPS spacing.
func TestScheduleUniform(t *testing.T) {
	s := Schedule(ArrivalUniform, 10000, 5, 1)
	want := []uint64{0, 100000, 200000, 300000, 400000}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("uniform schedule = %v, want %v", s, want)
	}
}

// TestSchedulePoissonMean: the mean inter-arrival gap converges to 1/QPS.
func TestSchedulePoissonMean(t *testing.T) {
	const qps, n = 10000.0, 20000
	s := Schedule(ArrivalPoisson, qps, n, 7)
	meanGap := float64(s[n-1]) / float64(n-1)
	want := 1e9 / qps
	if math.Abs(meanGap-want)/want > 0.05 {
		t.Fatalf("Poisson mean gap = %.0fns, want ~%.0fns", meanGap, want)
	}
}

// TestCoordinatedOmission is the measurement-correctness core: a 50ms
// server stall at 10k offered QPS must surface as ~500 ops of queued
// scheduled-time latency — NOT one slow op and silently reduced
// throughput, which is what a closed-loop driver would report.
func TestCoordinatedOmission(t *testing.T) {
	clock := &FakeClock{}
	const (
		qps       = 10000.0
		serviceNs = 10_000      // 10µs modelled service
		stallNs   = 50_000_000  // one 50ms server stall
		stallAt   = 100         // op index that hits the stalled server
	)
	var queued int
	res := RunStep(clock, StepConfig{
		QPS: qps, Ops: 2000, Arrival: ArrivalUniform, Workers: 1,
		OnResult: func(latNs uint64, err error) {
			if latNs >= 1_000_000 { // >1ms ⇒ dominated by queueing, not service
				queued++
			}
		},
	}, func(seq uint64) (uint64, error) {
		if seq == stallAt {
			clock.Advance(stallNs) // the server stalls the issuing worker
		}
		return serviceNs, nil
	})

	if res.Completed != 2000 {
		t.Fatalf("completed %d of 2000", res.Completed)
	}
	// 50ms backlog drains at one 100µs arrival per tick ⇒ ~500 ops above
	// 1ms of queued latency (the last ~10 fall back under 1ms).
	if queued < 450 || queued > 510 {
		t.Fatalf("queued-latency ops = %d, want ~500 (coordinated omission lost)", queued)
	}
	// The worst op saw (almost) the whole stall, not service time.
	if res.MaxLagNs < stallNs-200_000 {
		t.Fatalf("MaxLagNs = %d, want ≈%d (stall not charged to schedule)", res.MaxLagNs, stallNs)
	}
	if res.Latency.Percentile(99) < 1_000_000 {
		t.Fatalf("p99 = %dns, want >1ms: backlog must surface in the tail", res.Latency.Percentile(99))
	}
}

// TestRunStepNoStall: an unloaded run keeps latency at service time and
// accrues no backlog.
func TestRunStepNoStall(t *testing.T) {
	clock := &FakeClock{}
	res := RunStep(clock, StepConfig{QPS: 10000, Ops: 500, Arrival: ArrivalUniform, Workers: 1},
		func(seq uint64) (uint64, error) { return 10_000, nil })
	if res.MaxLagNs != 0 {
		t.Fatalf("MaxLagNs = %d, want 0", res.MaxLagNs)
	}
	if p99 := res.Latency.Percentile(99); p99 > 20_000 {
		t.Fatalf("p99 = %d, want ~service time", p99)
	}
}

// TestRunStepErrors: failures count as errors, not completions.
func TestRunStepErrors(t *testing.T) {
	clock := &FakeClock{}
	boom := errors.New("boom")
	res := RunStep(clock, StepConfig{QPS: 10000, Ops: 100, Arrival: ArrivalUniform, Workers: 1},
		func(seq uint64) (uint64, error) {
			if seq%4 == 0 {
				return 0, boom
			}
			return 10_000, nil
		})
	if res.Errors != 25 || res.Completed != 75 {
		t.Fatalf("errors=%d completed=%d, want 25/75", res.Errors, res.Completed)
	}
}

// TestFindKnee models a server with a hard 10k-QPS capacity (100µs serial
// service): the knee search must land in [6k, 10k] and name the probed
// resource that tracked utilization.
func TestFindKnee(t *testing.T) {
	clock := &FakeClock{}
	var nextFree, busyNs uint64 // the fake server's drain clock + busy time
	op := func(seq uint64) (uint64, error) {
		const svc = 100_000 // 100µs serial service ⇒ 10k QPS capacity
		now := clock.NowNs()
		var wait uint64
		if nextFree > now {
			wait = nextFree - now
			nextFree += svc
		} else {
			nextFree = now + svc
		}
		busyNs += svc
		return wait + svc, nil
	}
	// Probe scores are "resource-seconds consumed per wall-second": the
	// fake server's utilization since the previous probe, plus a constant
	// low score for a second resource to prove argmax selection.
	var lastNow, lastBusy uint64
	probe := func() map[string]float64 {
		now := clock.NowNs()
		var score float64
		if now > lastNow {
			score = float64(busyNs-lastBusy) / float64(now-lastNow)
		}
		lastNow, lastBusy = now, busyNs
		return map[string]float64{"fake-server": score, "idle-thing": 0.01}
	}
	cfg := Config{
		StartQPS: 2000, MaxQPS: 64000, Grow: 2, Bisect: 3,
		StepDurationNs: 250e6, Arrival: ArrivalUniform, Workers: 1,
		Class:     "GET",
		Objective: health.Objective{Class: "GET", Availability: 0.999, LatencyNs: 1_000_000},
	}
	rep := FindKnee(clock, cfg, op, probe)
	if rep.KneeQPS < 6000 || rep.KneeQPS > 10000 {
		t.Fatalf("KneeQPS = %.0f, want in [6000, 10000]", rep.KneeQPS)
	}
	if len(rep.Steps) < 3 {
		t.Fatalf("too few steps: %d", len(rep.Steps))
	}
	if _, ok := rep.KneeStep(); !ok {
		t.Fatal("no passing step at the knee")
	}
	if rep.Limiting != "fake-server" {
		t.Fatalf("Limiting = %q, want fake-server", rep.Limiting)
	}
}

// TestFindKneeAllPass: a system faster than MaxQPS reports the last step
// as the knee with no limiting resource.
func TestFindKneeAllPass(t *testing.T) {
	clock := &FakeClock{}
	rep := FindKnee(clock, Config{
		StartQPS: 1000, MaxQPS: 4000, Grow: 2, Bisect: 2,
		StepDurationNs: 50e6, Arrival: ArrivalUniform, Workers: 1,
	}, func(seq uint64) (uint64, error) { return 1000, nil }, nil)
	if rep.KneeQPS != 4000 {
		t.Fatalf("KneeQPS = %.0f, want 4000 (never failed)", rep.KneeQPS)
	}
	if rep.Limiting != "" {
		t.Fatalf("Limiting = %q, want empty", rep.Limiting)
	}
}

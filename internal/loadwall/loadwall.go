// Package loadwall is the open-loop capacity harness: it offers load on a
// fixed arrival clock, measures latency from each op's *scheduled* send
// time, and searches for the knee — the maximum offered QPS a
// configuration sustains while meeting its SLO.
//
// The crucial property is coordinated-omission correctness. A closed-loop
// driver that waits for each response before sending the next op lets a
// stalled server silently throttle the generator: one 50ms stall shows up
// as one slow op and a dip in throughput. Here arrivals are pre-scheduled
// (Poisson or uniform spacing, seeded, so runs are reproducible), and an
// op that is issued late — because every worker was stuck behind the stall
// — is charged the backlog it actually suffered: latency = (issue instant
// − scheduled instant) + the op's own service time. A 50ms stall at 10k
// offered QPS therefore surfaces as ~500 ops of queued latency, which is
// what the paper's open-loop figures (Figs 8–10 run at fixed offered
// loads) and any honest tail percentile require.
package loadwall

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cliquemap/internal/stats"
)

// Clock abstracts time so the generator is unit-testable with a fake
// clock. NowNs is monotonic from an arbitrary origin; SleepNs blocks the
// caller for (at least) the given duration.
type Clock interface {
	NowNs() uint64
	SleepNs(ns uint64)
}

// wallClock is the production clock: monotonic wall time. Virtual time in
// this repo runs at wall speed (fabric.nowNs is time.Since(start)), so
// offered QPS against the simulated cell is also real wall QPS.
type wallClock struct{ start time.Time }

// NewWallClock returns a Clock backed by monotonic wall time.
func NewWallClock() Clock { return &wallClock{start: time.Now()} }

func (c *wallClock) NowNs() uint64 { return uint64(time.Since(c.start)) }

func (c *wallClock) SleepNs(ns uint64) {
	// time.Sleep undershoot is harmless (the issue loop re-checks), but
	// oversleep inflates measured lag, so sleep slightly short and spin the
	// remainder in the caller's re-check loop.
	if ns > 100_000 {
		time.Sleep(time.Duration(ns - 50_000))
		return
	}
	if ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// FakeClock is a deterministic test clock: SleepNs advances time
// immediately, and Advance models work stalling the caller.
type FakeClock struct{ now atomic.Uint64 }

func (c *FakeClock) NowNs() uint64     { return c.now.Load() }
func (c *FakeClock) SleepNs(ns uint64) { c.now.Add(ns) }

// Advance moves time forward without an op yielding — a server stall.
func (c *FakeClock) Advance(ns uint64) { c.now.Add(ns) }

// Arrival selects the inter-arrival law for a step.
type Arrival int

const (
	// ArrivalPoisson spaces ops with exponential gaps (memoryless open
	// loop — the default, matching how independent frontends offer load).
	ArrivalPoisson Arrival = iota
	// ArrivalUniform spaces ops exactly 1/QPS apart (a paced generator).
	ArrivalUniform
)

// splitmix64 is the seeded generator behind arrival schedules — tiny,
// deterministic, and stdlib-free so the same seed yields the same
// schedule on every platform.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Schedule precomputes the arrival instants (ns offsets from step start)
// for n ops offered at qps. The whole schedule is materialized up front so
// issuing an op is a lock-free index fetch — the generator never does rng
// or float math while it is supposed to be keeping the arrival clock.
func Schedule(kind Arrival, qps float64, n int, seed uint64) []uint64 {
	if n <= 0 || qps <= 0 {
		return nil
	}
	out := make([]uint64, n)
	gapNs := 1e9 / qps
	switch kind {
	case ArrivalUniform:
		for i := range out {
			out[i] = uint64(float64(i) * gapNs)
		}
	default: // Poisson
		state := seed ^ 0xc1f651c67c62c6e0
		var t float64
		for i := range out {
			// U in (0,1]: map the top 53 bits, never zero.
			u := float64(splitmix64(&state)>>11+1) / (1 << 53)
			t += -math.Log(u) * gapNs
			out[i] = uint64(t)
		}
	}
	return out
}

// Op executes one operation against the system under test and returns its
// service latency in ns (for this repo, the modelled OpTrace latency).
// seq is the op's index in the arrival schedule, usable for key choice.
type Op func(seq uint64) (serviceNs uint64, err error)

// StepConfig describes one fixed-offered-load step.
type StepConfig struct {
	QPS     float64
	Ops     int     // arrivals in the step (duration ≈ Ops/QPS)
	Arrival Arrival
	Seed    uint64
	Workers int // concurrent issuers; default 32

	// OnResult, when set, observes every op's scheduled-time latency —
	// the knee search uses it to feed the health plane.
	OnResult func(latNs uint64, err error)
}

// StepResult is one step's measurement.
type StepResult struct {
	OfferedQPS  float64
	Scheduled   int
	Completed   uint64
	Errors      uint64
	ElapsedNs   uint64
	AchievedQPS float64
	// Latency measures from scheduled send time: issue lag (backlog) plus
	// the op's own service time. This is the coordinated-omission-correct
	// number; percentiles come from here.
	Latency *stats.Histogram
	// LagNs totals the issue-after-schedule backlog across ops, and
	// MaxLagNs is the worst single backlog — the generator's own
	// saturation signal (a backlogged generator means offered > capacity
	// regardless of what the SLO says).
	LagNs    uint64
	MaxLagNs uint64
}

// RunStep offers cfg.Ops operations at cfg.QPS on clock and measures them.
// Workers pull arrivals from a shared index: an op is issued no earlier
// than its scheduled instant, and if all workers are busy when it comes
// due, the lateness is charged to its latency.
func RunStep(clock Clock, cfg StepConfig, op Op) StepResult {
	sched := Schedule(cfg.Arrival, cfg.QPS, cfg.Ops, cfg.Seed)
	res := StepResult{OfferedQPS: cfg.QPS, Scheduled: len(sched), Latency: &stats.Histogram{}}
	if len(sched) == 0 {
		return res
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 32
	}
	if workers > len(sched) {
		workers = len(sched)
	}

	var next atomic.Uint64
	var completed, errors, lagNs, maxLag atomic.Uint64
	start := clock.NowNs()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= uint64(len(sched)) {
					return
				}
				due := start + sched[i]
				now := clock.NowNs()
				for now < due {
					clock.SleepNs(due - now)
					now = clock.NowNs()
				}
				lag := now - due
				ns, err := op(i)
				lat := lag + ns
				res.Latency.Record(lat)
				if lag > 0 {
					lagNs.Add(lag)
					for {
						m := maxLag.Load()
						if lag <= m || maxLag.CompareAndSwap(m, lag) {
							break
						}
					}
				}
				if err != nil {
					errors.Add(1)
				} else {
					completed.Add(1)
				}
				if cfg.OnResult != nil {
					cfg.OnResult(lat, err)
				}
			}
		}()
	}
	wg.Wait()

	res.Completed = completed.Load()
	res.Errors = errors.Load()
	res.LagNs = lagNs.Load()
	res.MaxLagNs = maxLag.Load()
	res.ElapsedNs = clock.NowNs() - start
	if res.ElapsedNs > 0 {
		res.AchievedQPS = float64(res.Completed+res.Errors) / (float64(res.ElapsedNs) / 1e9)
	}
	return res
}

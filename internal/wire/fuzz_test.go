package wire

import "testing"

// The decoder faces bytes from the network; it must never panic or loop,
// regardless of input.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder()
	e.Uint(1, 42)
	e.Bytes(2, []byte("payload"))
	e.Fixed64(3, 7)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Trace-context frame shapes: an op id + kind string + attempt count
	// (RPC request tags 6-8) and nested span messages (code/arg/start/dur),
	// including one with a truncated varint and one with a wide span id.
	tc := NewEncoder()
	tc.Uint(6, 0xDEADBEEF)
	tc.String(7, "GET")
	tc.Uint(8, 2)
	span := NewRawEncoder()
	span.Uint(1, 3)
	span.Uint(2, 1)
	span.Uint(3, 4200)
	span.Uint(4, 900)
	tc.Message(6, span)
	f.Add(tc.Encoded())
	bad := NewEncoder()
	bad.Bytes(6, []byte{0x08}) // span message: tag 1 varint with no value
	wide := NewRawEncoder()
	wide.Uint(1, 0xFFFFF) // span id wider than 16 bits
	wide.Uint(4, 12)
	bad.Message(6, wide)
	f.Add(bad.Encoded())
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			return
		}
		fields := 0
		for d.Next() {
			_ = d.Tag()
			_ = d.Uint()
			_ = d.Bytes()
			fields++
			if fields > len(data)+2 {
				t.Fatal("decoder yielded more fields than input bytes; loop suspected")
			}
		}
	})
}

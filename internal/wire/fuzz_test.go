package wire

import "testing"

// The decoder faces bytes from the network; it must never panic or loop,
// regardless of input.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder()
	e.Uint(1, 42)
	e.Bytes(2, []byte("payload"))
	e.Fixed64(3, 7)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			return
		}
		fields := 0
		for d.Next() {
			_ = d.Tag()
			_ = d.Uint()
			_ = d.Bytes()
			fields++
			if fields > len(data)+2 {
				t.Fatal("decoder yielded more fields than input bytes; loop suspected")
			}
		}
	})
}

package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<32 - 1, 1 << 45, math.MaxUint64}
	for _, v := range cases {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v || n != len(b) {
			t.Errorf("Uvarint(%d) = %d (n=%d, len=%d)", v, got, n, len(b))
		}
	}
}

func TestUvarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		got, n, err := Uvarint(AppendUvarint(nil, v))
		return err == nil && got == v && n == len(AppendUvarint(nil, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	b := AppendUvarint(nil, 1<<40)
	for i := 0; i < len(b); i++ {
		if _, _, err := Uvarint(b[:i]); err == nil {
			t.Errorf("Uvarint of %d/%d bytes: want error", i, len(b))
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 11 continuation bytes cannot be a valid uint64.
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := Uvarint(b); err != ErrOverflow {
		t.Errorf("overflow varint: got %v, want ErrOverflow", err)
	}
	// 10 bytes with high final byte also overflows.
	b = append(bytes.Repeat([]byte{0xff}, 9), 0x7f)
	if _, _, err := Uvarint(b); err != ErrOverflow {
		t.Errorf("10-byte high varint: got %v, want ErrOverflow", err)
	}
}

func TestEncodeDecodeAllTypes(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 42)
	e.Int(2, -7)
	e.Bool(3, true)
	e.Fixed64(4, 0xdeadbeefcafef00d)
	e.Float(5, 3.5)
	e.Bytes(6, []byte{9, 8, 7})
	e.String(7, "hello")
	nested := NewRawEncoder()
	nested.Uint(1, 99)
	e.Message(8, nested)

	d, err := NewDecoder(e.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	maj, min := d.Version()
	if maj != FormatMajor || min != FormatMinor {
		t.Errorf("version = %d.%d", maj, min)
	}
	seen := map[uint64]bool{}
	for d.Next() {
		seen[d.Tag()] = true
		switch d.Tag() {
		case 1:
			if d.Uint() != 42 {
				t.Errorf("tag1 = %d", d.Uint())
			}
		case 2:
			if d.Int() != -7 {
				t.Errorf("tag2 = %d", d.Int())
			}
		case 3:
			if !d.Bool() {
				t.Error("tag3 = false")
			}
		case 4:
			if d.Uint() != 0xdeadbeefcafef00d {
				t.Errorf("tag4 = %x", d.Uint())
			}
		case 5:
			if d.Float() != 3.5 {
				t.Errorf("tag5 = %v", d.Float())
			}
		case 6:
			if !bytes.Equal(d.Bytes(), []byte{9, 8, 7}) {
				t.Errorf("tag6 = %v", d.Bytes())
			}
		case 7:
			if d.String() != "hello" {
				t.Errorf("tag7 = %q", d.String())
			}
		case 8:
			nd := NewRawDecoder(d.Bytes())
			if !nd.Next() || nd.Uint() != 99 {
				t.Errorf("nested decode failed")
			}
		}
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	for tag := uint64(1); tag <= 8; tag++ {
		if !seen[tag] {
			t.Errorf("tag %d not decoded", tag)
		}
	}
}

// TestUnknownFieldSkip is the forward-compatibility property: a decoder
// must silently pass over tags it does not understand, of every wire type.
func TestUnknownFieldSkip(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 10)
	e.Uint(1000, 5)                  // unknown varint
	e.Fixed64(1001, 7)               // unknown fixed
	e.Bytes(1002, make([]byte, 300)) // unknown bytes
	e.Uint(2, 20)

	d, err := NewDecoder(e.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for d.Next() {
		if d.Tag() == 1 || d.Tag() == 2 {
			got = append(got, d.Uint())
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("known fields = %v, want [10 20]", got)
	}
}

func TestVersionMismatch(t *testing.T) {
	b := AppendUvarint(nil, FormatMajor+1)
	b = AppendUvarint(b, 0)
	if _, err := NewDecoder(b); err == nil {
		t.Error("major version mismatch not detected")
	}
}

func TestTruncatedMessage(t *testing.T) {
	e := NewEncoder()
	e.Bytes(1, make([]byte, 100))
	e.Fixed64(2, 1)
	full := e.Encoded()
	for i := 3; i < len(full); i++ {
		d, err := NewDecoder(full[:i])
		if err != nil {
			continue // header itself truncated: acceptable failure point
		}
		for d.Next() {
		}
		// Must either consume cleanly (if cut at a field boundary) or error;
		// it must never panic or loop. Reaching here is the assertion.
		_ = d.Err()
	}
}

func TestDecoderTypeConfusion(t *testing.T) {
	e := NewEncoder()
	e.Bytes(1, []byte("abc"))
	e.Uint(2, 5)
	d, err := NewDecoder(e.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	d.Next()
	if d.Uint() != 0 {
		t.Error("Uint on bytes field should return 0")
	}
	d.Next()
	if d.Bytes() != nil {
		t.Error("Bytes on varint field should return nil")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 1)
	e.Reset(true)
	e.Uint(2, 2)
	d, err := NewDecoder(e.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Next() || d.Tag() != 2 {
		t.Error("reset encoder retained old fields")
	}
}

func TestIntZigzagProperty(t *testing.T) {
	f := func(v int64) bool {
		e := NewRawEncoder()
		e.Int(1, v)
		d := NewRawDecoder(e.Encoded())
		return d.Next() && d.Int() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(p []byte) bool {
		e := NewRawEncoder()
		e.Bytes(3, p)
		d := NewRawDecoder(e.Encoded())
		return d.Next() && bytes.Equal(d.Bytes(), p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSmallMessage(b *testing.B) {
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.Uint(1, uint64(i))
		e.Bytes(2, payload)
		_ = e.Encoded()
	}
}

func BenchmarkDecodeSmallMessage(b *testing.B) {
	e := NewEncoder()
	e.Uint(1, 7)
	e.Bytes(2, make([]byte, 64))
	msg := e.Encoded()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := NewDecoder(msg)
		for d.Next() {
		}
	}
}

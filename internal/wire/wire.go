// Package wire implements a compact, self-describing tag-length-value
// encoding used by every CliqueMap protocol message.
//
// The encoding is deliberately protobuf-like: each field is identified by a
// numeric tag and a wire type, and decoders skip fields they do not know.
// That unknown-field tolerance is what lets clients and backends be upgraded
// independently (§6 of the paper: "over a hundred changes to CliqueMap's
// protocol definitions" were shipped against live traffic). Messages are
// always prefixed by a format version; decoders accept any version whose
// major component matches and surface the rest to the caller so responses
// can self-validate.
package wire

import (
	"errors"
	"fmt"
	"math"
)

// Wire types. A field header is (tag<<3 | type) encoded as a uvarint.
const (
	typeVarint  = 0 // uint64, bool, enums
	typeFixed64 = 1 // uint64 little-endian, float64
	typeBytes   = 2 // length-delimited: bytes, string, nested message
)

// Format versions carried on every message. Bump Minor for additive changes
// (old decoders skip the new fields); bump Major only for incompatible
// layout changes, which force clients onto the RPC fallback path until they
// refresh (§3, self-validating responses).
const (
	FormatMajor = 1
	FormatMinor = 4
)

var (
	// ErrTruncated reports a message that ended mid-field.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrVersion reports a major-version mismatch.
	ErrVersion = errors.New("wire: incompatible format version")
	// ErrOverflow reports a varint wider than 64 bits.
	ErrOverflow = errors.New("wire: varint overflows uint64")
)

// AppendUvarint appends v in LEB128 form.
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Uvarint decodes a LEB128 value, returning it and the bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, c := range b {
		if i == 10 {
			return 0, 0, ErrOverflow
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, 0, ErrOverflow
			}
			return v | uint64(c)<<shift, i + 1, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// Encoder builds a message. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder whose output begins with the current format
// version header.
func NewEncoder() *Encoder {
	e := &Encoder{buf: make([]byte, 0, 128)}
	e.buf = AppendUvarint(e.buf, FormatMajor)
	e.buf = AppendUvarint(e.buf, FormatMinor)
	return e
}

// NewEncoderSized is NewEncoder with a capacity hint, so hot-path
// marshalers holding payloads larger than the default 128 bytes encode
// without re-growing the buffer.
func NewEncoderSized(capacity int) *Encoder {
	e := &Encoder{}
	e.InitSized(capacity)
	return e
}

// InitSized readies a (typically stack-allocated) encoder with a sized
// buffer and the version header. Hot-path marshalers use a value Encoder
// with InitSized so only the returned buffer escapes to the heap.
func (e *Encoder) InitSized(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	e.buf = make([]byte, 0, capacity)
	e.buf = AppendUvarint(e.buf, FormatMajor)
	e.buf = AppendUvarint(e.buf, FormatMinor)
}

// NewRawEncoder returns an encoder with no version header, for nested
// messages.
func NewRawEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 64)} }

func (e *Encoder) header(tag uint64, wt byte) {
	e.buf = AppendUvarint(e.buf, tag<<3|uint64(wt))
}

// Uint encodes an unsigned field.
func (e *Encoder) Uint(tag uint64, v uint64) {
	e.header(tag, typeVarint)
	e.buf = AppendUvarint(e.buf, v)
}

// Int encodes a signed field with zigzag.
func (e *Encoder) Int(tag uint64, v int64) {
	e.Uint(tag, uint64(v<<1)^uint64(v>>63))
}

// Bool encodes a boolean field.
func (e *Encoder) Bool(tag uint64, v bool) {
	var u uint64
	if v {
		u = 1
	}
	e.Uint(tag, u)
}

// Fixed64 encodes a fixed-width 64-bit field.
func (e *Encoder) Fixed64(tag uint64, v uint64) {
	e.header(tag, typeFixed64)
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Float encodes a float64 field.
func (e *Encoder) Float(tag uint64, v float64) { e.Fixed64(tag, math.Float64bits(v)) }

// Bytes encodes a length-delimited field.
func (e *Encoder) Bytes(tag uint64, v []byte) {
	e.header(tag, typeBytes)
	e.buf = AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String encodes a string field.
func (e *Encoder) String(tag uint64, v string) {
	e.header(tag, typeBytes)
	e.buf = AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Message encodes a nested raw-encoded message.
func (e *Encoder) Message(tag uint64, m *Encoder) { e.Bytes(tag, m.buf) }

// Encoded returns the encoded message. The slice aliases internal storage.
func (e *Encoder) Encoded() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse, re-emitting the version header if the
// encoder was created with one.
func (e *Encoder) Reset(withHeader bool) {
	e.buf = e.buf[:0]
	if withHeader {
		e.buf = AppendUvarint(e.buf, FormatMajor)
		e.buf = AppendUvarint(e.buf, FormatMinor)
	}
}

// Decoder iterates fields of an encoded message.
type Decoder struct {
	buf   []byte
	pos   int
	major uint64
	minor uint64

	tag uint64
	wt  byte
	err error

	uval  uint64
	bval  []byte
	isVal bool
}

// NewDecoder parses the version header and positions the decoder at the
// first field. It fails with ErrVersion if the major version differs.
func NewDecoder(b []byte) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Init(b); err != nil {
		return nil, err
	}
	return d, nil
}

// Init readies a (typically stack-allocated) decoder over b, parsing the
// version header. Hot paths use a value Decoder with Init to keep message
// decoding allocation-free.
func (d *Decoder) Init(b []byte) error {
	*d = Decoder{buf: b}
	maj, n, err := Uvarint(b)
	if err != nil {
		return err
	}
	d.pos += n
	min, n, err := Uvarint(b[d.pos:])
	if err != nil {
		return err
	}
	d.pos += n
	d.major, d.minor = maj, min
	if maj != FormatMajor {
		return fmt.Errorf("%w: got %d.%d, want major %d", ErrVersion, maj, min, FormatMajor)
	}
	return nil
}

// NewRawDecoder decodes a nested message (no version header).
func NewRawDecoder(b []byte) *Decoder {
	return &Decoder{buf: b, major: FormatMajor, minor: FormatMinor}
}

// Version reports the message's format version.
func (d *Decoder) Version() (major, minor uint64) { return d.major, d.minor }

// Next advances to the next field, returning false at end of message or on
// error; check Err afterwards.
func (d *Decoder) Next() bool {
	d.isVal = false
	if d.err != nil || d.pos >= len(d.buf) {
		return false
	}
	h, n, err := Uvarint(d.buf[d.pos:])
	if err != nil {
		d.err = err
		return false
	}
	d.pos += n
	d.tag = h >> 3
	d.wt = byte(h & 7)
	switch d.wt {
	case typeVarint:
		v, n, err := Uvarint(d.buf[d.pos:])
		if err != nil {
			d.err = err
			return false
		}
		d.pos += n
		d.uval = v
	case typeFixed64:
		if d.pos+8 > len(d.buf) {
			d.err = ErrTruncated
			return false
		}
		b := d.buf[d.pos:]
		d.uval = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		d.pos += 8
	case typeBytes:
		l, n, err := Uvarint(d.buf[d.pos:])
		if err != nil {
			d.err = err
			return false
		}
		d.pos += n
		if uint64(len(d.buf)-d.pos) < l {
			d.err = ErrTruncated
			return false
		}
		d.bval = d.buf[d.pos : d.pos+int(l)]
		d.pos += int(l)
	default:
		d.err = fmt.Errorf("wire: unknown wire type %d for tag %d", d.wt, d.tag)
		return false
	}
	d.isVal = true
	return true
}

// Err returns the first decoding error encountered.
func (d *Decoder) Err() error { return d.err }

// Tag returns the current field's tag.
func (d *Decoder) Tag() uint64 { return d.tag }

// Uint returns the current field as an unsigned integer.
func (d *Decoder) Uint() uint64 {
	if !d.isVal || d.wt == typeBytes {
		return 0
	}
	return d.uval
}

// Int returns the current field zigzag-decoded.
func (d *Decoder) Int() int64 {
	u := d.Uint()
	return int64(u>>1) ^ -int64(u&1)
}

// Bool returns the current field as a boolean.
func (d *Decoder) Bool() bool { return d.Uint() != 0 }

// Float returns the current field as a float64.
func (d *Decoder) Float() float64 { return math.Float64frombits(d.Uint()) }

// Bytes returns the current length-delimited field. The slice aliases the
// input buffer.
func (d *Decoder) Bytes() []byte {
	if !d.isVal || d.wt != typeBytes {
		return nil
	}
	return d.bval
}

// String returns the current field as a string (copies).
func (d *Decoder) String() string { return string(d.Bytes()) }

// Skip is a no-op provided for readability at call sites that intentionally
// ignore a field; Next already consumed the value.
func (d *Decoder) Skip() {}

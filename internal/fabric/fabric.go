// Package fabric models the datacenter network underneath CliqueMap.
//
// The paper's controlled experiments (§7.2) ran on a 950-host testbed with
// 50 Gbps sustained / 100 Gbps burst per host. That hardware is substituted
// by a virtual-time model: correctness traffic flows instantly between
// goroutines, while every message is billed an analytically computed
// delivery latency —
//
//	latency = propagation + serialization (bytes/bandwidth)
//	        + downlink queueing (backlog + antagonist load) + jitter
//
// Per-host downlink backlog is tracked against a monotonic arrival clock,
// which is what reproduces the incast effects of §6.3/§7.2.2: when SCAR
// solicits three full copies of a 64KB value, the copies serialize on the
// client's downlink and the op's critical path inflates. An "antagonist"
// (§7.2.1) is modelled as a fractional reduction of a host's usable
// bandwidth plus added queue residency.
//
// Latencies are virtual nanoseconds; callers accumulate them on an OpTrace
// and record the critical-path sum. Absolute constants are calibrated to
// the paper's reported magnitudes (Table/figure shapes, not silicon).
package fabric

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Params configures the fabric. Zero fields take defaults from
// DefaultParams.
type Params struct {
	// BaseRTTNs is the unloaded fabric round-trip (propagation + switch
	// hops), ~4µs for an in-cluster RMA fabric.
	BaseRTTNs uint64
	// HostGbps is per-host sustained NIC bandwidth in Gbit/s.
	HostGbps float64
	// MTU is the maximum frame payload; CliqueMap's testbed used a 5KB MTU
	// so a 4KB GET response fits in one frame (§7.2.4).
	MTU int
	// FrameOverhead is per-frame header bytes.
	FrameOverhead int
	// JitterFrac is the relative magnitude of per-message latency jitter.
	JitterFrac float64
	// Seed makes jitter reproducible.
	Seed uint64
}

// DefaultParams matches the §7.2.4 testbed: 50 Gbps hosts, 5KB MTU, ~4µs
// base RTT.
func DefaultParams() Params {
	return Params{
		BaseRTTNs:     4000,
		HostGbps:      50,
		MTU:           5000,
		FrameOverhead: 60,
		JitterFrac:    0.15,
		Seed:          1,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.BaseRTTNs == 0 {
		p.BaseRTTNs = d.BaseRTTNs
	}
	if p.HostGbps == 0 {
		p.HostGbps = d.HostGbps
	}
	if p.MTU == 0 {
		p.MTU = d.MTU
	}
	if p.FrameOverhead == 0 {
		p.FrameOverhead = d.FrameOverhead
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = d.JitterFrac
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Host is one machine on the fabric. Its downlink-queue state is all
// atomic: Deliver sits on the critical path of every RPC and RMA in the
// cell, so concurrent arrivals advance the drain clock with a CAS rather
// than serializing on a lock.
type Host struct {
	id int
	f  *Fabric

	extLoad  atomic.Uint64 // antagonist downlink fraction 0..1, as Float64bits
	extraNs  atomic.Uint64 // fixed extra one-way latency (WAN distance)
	nextFree atomic.Uint64 // virtual ns at which the downlink drains
	rngState atomic.Uint64
}

// Fabric is the set of hosts plus the shared latency model.
type Fabric struct {
	params Params
	hosts  []*Host
	start  time.Time

	// Link-level fault state (partitions, asymmetric loss). The rule
	// table is consulted on every delivery, so the healthy path is gated
	// by a single atomic counter: with zero rules installed, Linked
	// returns immediately without touching the map or its lock.
	linkRules atomic.Int32
	linkRng   atomic.Uint64
	linkMu    sync.Mutex
	linkLoss  map[uint64]float64 // src<<32|dst -> drop probability
}

// New builds a fabric of n hosts.
func New(n int, p Params) *Fabric {
	if n <= 0 {
		panic("fabric: need at least one host")
	}
	f := &Fabric{params: p.withDefaults(), start: time.Now()}
	f.hosts = make([]*Host, n)
	for i := range f.hosts {
		h := &Host{id: i, f: f}
		h.rngState.Store(f.params.Seed*0x9e3779b97f4a7c15 + uint64(i) + 1)
		f.hosts[i] = h
	}
	return f
}

// Params returns the effective parameters.
func (f *Fabric) Params() Params { return f.params }

// NumHosts returns the host count.
func (f *Fabric) NumHosts() int { return len(f.hosts) }

// Host returns host i.
func (f *Fabric) Host(i int) *Host {
	if i < 0 || i >= len(f.hosts) {
		panic(fmt.Sprintf("fabric: host %d out of range [0,%d)", i, len(f.hosts)))
	}
	return f.hosts[i]
}

// nowNs is the arrival clock: monotonic real time doubles as virtual time
// (1 real second ≡ 1 virtual second), so offered op rates translate
// directly into modelled link utilization.
func (f *Fabric) nowNs() uint64 {
	return uint64(time.Since(f.start).Nanoseconds())
}

// NowNs exposes the arrival clock so op initiators can pin a common
// virtual start instant across an op's parallel legs.
func (f *Fabric) NowNs() uint64 { return f.nowNs() }

// ID returns the host's index.
func (h *Host) ID() int { return h.id }

func linkKey(src, dst int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// SetLinkLoss installs a one-directional drop probability on the src→dst
// link: 1.0 is a hard partition, fractions model asymmetric packet loss.
// loss <= 0 removes the rule. Directionality matters — an RPC whose
// request crosses a healthy direction but whose response crosses a lossy
// one fails after the server has executed it, which is exactly the
// indeterminate-outcome hazard the §5 client retry policy must absorb.
func (f *Fabric) SetLinkLoss(src, dst int, loss float64) {
	f.linkMu.Lock()
	defer f.linkMu.Unlock()
	if f.linkLoss == nil {
		f.linkLoss = make(map[uint64]float64)
	}
	if loss <= 0 {
		delete(f.linkLoss, linkKey(src, dst))
	} else {
		if loss > 1 {
			loss = 1
		}
		f.linkLoss[linkKey(src, dst)] = loss
	}
	f.linkRules.Store(int32(len(f.linkLoss)))
}

// SetHostLoss applies loss symmetrically between host h and every other
// host; loss >= 1 fully isolates h from the rest of the cell.
func (f *Fabric) SetHostLoss(h int, loss float64) {
	for i := range f.hosts {
		if i == h {
			continue
		}
		f.SetLinkLoss(h, i, loss)
		f.SetLinkLoss(i, h, loss)
	}
}

// IsolateHost hard-partitions host h from every other host.
func (f *Fabric) IsolateHost(h int) { f.SetHostLoss(h, 1) }

// HealLinks removes every partition and loss rule.
func (f *Fabric) HealLinks() {
	f.linkMu.Lock()
	defer f.linkMu.Unlock()
	f.linkLoss = nil
	f.linkRules.Store(0)
}

// Linked reports whether a message from src to dst gets through right
// now. With no rules installed (the steady state) this is a single atomic
// load; under chaos, fractional-loss links are sampled with a seeded
// xorshift so schedules replay deterministically given a serial caller.
func (f *Fabric) Linked(src, dst int) bool {
	if f.linkRules.Load() == 0 {
		return true
	}
	f.linkMu.Lock()
	loss, ok := f.linkLoss[linkKey(src, dst)]
	f.linkMu.Unlock()
	if !ok || loss <= 0 {
		return true
	}
	if loss >= 1 {
		return false
	}
	return f.linkRand() >= loss
}

// linkRand draws from the fabric-wide loss-sampling stream (CAS-advanced
// xorshift, same recurrence as Host.rand).
func (f *Fabric) linkRand() float64 {
	for {
		x := f.linkRng.Load()
		n := x
		if n == 0 {
			n = f.params.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		}
		n ^= n << 13
		n ^= n >> 7
		n ^= n << 17
		if f.linkRng.CompareAndSwap(x, n) {
			return float64(n>>11) / float64(1<<53)
		}
	}
}

// SetExternalLoad installs an antagonist consuming frac (0..1) of the
// host's downlink, as in §7.2.1's ~95Gbps competing demand.
func (h *Host) SetExternalLoad(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 0.98 {
		frac = 0.98
	}
	h.extLoad.Store(math.Float64bits(frac))
}

// ExternalLoad returns the current antagonist fraction.
func (h *Host) ExternalLoad() float64 {
	return math.Float64frombits(h.extLoad.Load())
}

// SetExtraLatency adds a fixed one-way latency to every delivery at this
// host — the WAN distance of a remote-region client (Table 1: CliqueMap
// "provides WAN access via RPC").
func (h *Host) SetExtraLatency(ns uint64) {
	h.extraNs.Store(ns)
}

// ExtraLatency returns the host's fixed extra one-way latency.
func (h *Host) ExtraLatency() uint64 {
	return h.extraNs.Load()
}

// xorshift for cheap reproducible jitter. The CAS keeps the sequence a
// permutation under concurrency (no two arrivals consume the same state).
func (h *Host) rand() float64 {
	for {
		x := h.rngState.Load()
		n := x
		n ^= n << 13
		n ^= n >> 7
		n ^= n << 17
		if h.rngState.CompareAndSwap(x, n) {
			return float64(n>>11) / float64(1<<53)
		}
	}
}

// bytesPerNs returns the host's usable downlink rate given antagonist load.
func (h *Host) bytesPerNs() float64 {
	gbps := h.f.params.HostGbps * (1 - h.ExternalLoad())
	return gbps * 1e9 / 8 / 1e9 // Gbit/s → bytes/ns
}

// frameBytes returns on-wire bytes for a payload of sz, including per-MTU
// framing.
func (f *Fabric) frameBytes(sz int) int {
	if sz <= 0 {
		return f.params.FrameOverhead
	}
	frames := (sz + f.params.MTU - 1) / f.params.MTU
	return sz + frames*f.params.FrameOverhead
}

// Deliver bills one message of sz payload bytes arriving at h and returns
// its modelled one-way latency in virtual ns: half the base RTT, plus
// serialization, plus any downlink queueing behind earlier arrivals and
// the antagonist, plus jitter.
func (h *Host) Deliver(sz int) uint64 { return h.DeliverAt(0, sz) }

// DeliverAt is Deliver with an explicit virtual arrival instant. Parallel
// legs of one operation pass the operation's start time so they queue
// behind each other on the shared downlink — the incast effect of §6.3 —
// even though the simulation executes them sequentially in real time.
// at == 0 means "now".
func (h *Host) DeliverAt(at uint64, sz int) uint64 {
	wire := float64(h.f.frameBytes(sz))
	now := h.f.nowNs()
	if at != 0 && at < now {
		now = at
	}

	extLoad := h.ExternalLoad()
	rate := h.f.params.HostGbps * (1 - extLoad) * 1e9 / 8 / 1e9
	ser := uint64(wire / rate)
	// Advance the drain clock with a CAS loop: backlog must accumulate
	// monotonically across concurrent arrivals, and each arrival must
	// observe the queue exactly once.
	var queue uint64
	for {
		nf := h.nextFree.Load()
		start := nf
		if start < now {
			start = now
		}
		if h.nextFree.CompareAndSwap(nf, start+ser) {
			queue = start - now
			break
		}
	}
	// The antagonist also adds queue residency beyond pure bandwidth
	// subtraction: competing frames interleave with ours.
	var antQueue uint64
	if extLoad > 0 {
		antQueue = uint64(float64(ser) * extLoad / (1 - extLoad) * h.rand() * 2)
	}
	jit := uint64(float64(h.f.params.BaseRTTNs/2) * h.f.params.JitterFrac * h.rand())

	return h.f.params.BaseRTTNs/2 + ser + queue + antQueue + jit + h.extraNs.Load()
}

// Backlog reports the downlink's queued drain time in ns — how long a
// frame arriving now would wait behind already-billed traffic. It is a
// saturation gauge: near zero below capacity, growing without bound once
// offered load exceeds the drain rate.
func (h *Host) Backlog() uint64 {
	now := h.f.nowNs()
	if nf := h.nextFree.Load(); nf > now {
		return nf - now
	}
	return 0
}

// RTT models a request of reqBytes to dst followed by a response of
// respBytes back to src, returning the round-trip latency.
func (f *Fabric) RTT(src, dst int, reqBytes, respBytes int) uint64 {
	return f.Host(dst).Deliver(reqBytes) + f.Host(src).Deliver(respBytes)
}

// Span is one attributed slice of an operation's timeline: which layer
// the time went to (engine service, quorum wait, stripe lock, …) and how
// long it took. Start is the ns offset from the owning trace's origin.
// Codes are plain integers here so every transport can record spans
// without importing the tracing package; the code namespace and names
// live in internal/trace.
type Span struct {
	Code  uint16
	Arg   uint32 // code-specific detail: shard, attempt #, byte count…
	Start uint64
	Dur   uint64
}

// OpTrace accumulates an operation's critical-path virtual latency, wire
// bytes, and the spans attributing that latency to layers. It is carried
// by value through transports; not safe for concurrent mutation (each
// in-flight leg gets its own and the client merges).
type OpTrace struct {
	Ns    uint64
	Bytes uint64
	Spans []Span
}

// Add extends the critical path.
func (t *OpTrace) Add(ns uint64) { t.Ns += ns }

// AddSpan extends the critical path by ns and records a span attributing
// that slice of the timeline to code.
func (t *OpTrace) AddSpan(code uint16, arg uint32, ns uint64) {
	t.Spans = append(t.Spans, Span{Code: code, Arg: arg, Start: t.Ns, Dur: ns})
	t.Ns += ns
}

// Annotate records a span without extending the critical path — used for
// derived attributions (quorum wait, retries) and measured wall-clock
// costs (stripe lock contention) that are not part of the modeled
// latency.
func (t *OpTrace) Annotate(code uint16, arg uint32, start, dur uint64) {
	t.Spans = append(t.Spans, Span{Code: code, Arg: arg, Start: start, Dur: dur})
}

// AddBytes accounts payload bytes moved.
func (t *OpTrace) AddBytes(b int) {
	if b > 0 {
		t.Bytes += uint64(b)
	}
}

// Merge folds a parallel leg into the trace: latency is the max (the legs
// overlapped), bytes sum. The legs are assumed to share this trace's
// origin, so spans carry over with their offsets unchanged.
func (t *OpTrace) Merge(o OpTrace) {
	if o.Ns > t.Ns {
		t.Ns = o.Ns
	}
	t.Bytes += o.Bytes
	t.Spans = append(t.Spans, o.Spans...)
}

// Sequence folds a dependent leg: latency adds, bytes sum. The leg began
// where this trace currently ends, so its spans shift by the current
// critical-path length.
func (t *OpTrace) Sequence(o OpTrace) {
	if len(o.Spans) > 0 {
		base := t.Ns
		for _, s := range o.Spans {
			s.Start += base
			t.Spans = append(t.Spans, s)
		}
	}
	t.Ns += o.Ns
	t.Bytes += o.Bytes
}

// Duration converts the trace to a time.Duration.
func (t OpTrace) Duration() time.Duration { return time.Duration(t.Ns) * time.Nanosecond }

// QueueModel exposes a utilization → waiting-time helper shared by the NIC
// engine models: an M/M/1-flavoured wait of service×ρ/(1-ρ), clamped.
func QueueModel(serviceNs float64, rho float64) uint64 {
	if rho <= 0 {
		return 0
	}
	if rho > 0.98 {
		rho = 0.98
	}
	return uint64(serviceNs * rho / (1 - rho))
}

// Clamp01 clips v to [0,1]; exported for the NIC models sharing the
// utilization convention.
func Clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}

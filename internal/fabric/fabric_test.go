package fabric

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultsApplied(t *testing.T) {
	f := New(2, Params{})
	p := f.Params()
	if p.BaseRTTNs == 0 || p.HostGbps == 0 || p.MTU == 0 {
		t.Errorf("defaults not applied: %+v", p)
	}
	if f.NumHosts() != 2 {
		t.Errorf("NumHosts = %d", f.NumHosts())
	}
}

func TestHostOutOfRangePanics(t *testing.T) {
	f := New(1, Params{})
	defer func() {
		if recover() == nil {
			t.Error("Host(5) did not panic")
		}
	}()
	f.Host(5)
}

func TestDeliverLatencyComponents(t *testing.T) {
	f := New(2, Params{JitterFrac: 1e-9}) // effectively no jitter
	h := f.Host(0)

	small := h.Deliver(64)
	if small < f.Params().BaseRTTNs/2 {
		t.Errorf("latency %d below propagation floor", small)
	}
	// A 64KB transfer at 50Gbps ≈ 10.5µs serialization; must dominate.
	big := f.Host(1).Deliver(64 * 1024)
	if big < 10000 {
		t.Errorf("64KB delivery only %dns; serialization missing", big)
	}
	if big <= small {
		t.Error("larger transfer not slower")
	}
}

func TestAntagonistInflatesLatency(t *testing.T) {
	// Two fabrics, same seed: identical jitter streams, so the comparison
	// isolates the antagonist term.
	base, loaded := New(1, Params{}), New(1, Params{})
	loaded.Host(0).SetExternalLoad(0.95)
	var sumBase, sumLoaded uint64
	for i := 0; i < 200; i++ {
		sumBase += base.Host(0).Deliver(4096)
		sumLoaded += loaded.Host(0).Deliver(4096)
	}
	if sumLoaded < sumBase*3 {
		t.Errorf("95%% antagonist inflated latency only %dx/100", sumLoaded*100/sumBase)
	}
}

func TestExternalLoadClamped(t *testing.T) {
	f := New(1, Params{})
	f.Host(0).SetExternalLoad(2.0)
	if got := f.Host(0).ExternalLoad(); got > 0.99 {
		t.Errorf("load not clamped: %v", got)
	}
	f.Host(0).SetExternalLoad(-1)
	if got := f.Host(0).ExternalLoad(); got != 0 {
		t.Errorf("negative load not clamped: %v", got)
	}
}

// TestIncastQueueing reproduces the §6.3 incast mechanism: several large
// responses arriving at one host back-to-back must queue behind each other,
// so the last arrival sees much higher latency than the first.
func TestIncastQueueing(t *testing.T) {
	f := New(1, Params{JitterFrac: 1e-9})
	h := f.Host(0)
	const sz = 64 * 1024
	first := h.Deliver(sz)
	var last uint64
	for i := 0; i < 9; i++ {
		last = h.Deliver(sz)
	}
	if last < first*5 {
		t.Errorf("10-way incast: first %dns, last %dns — queueing too weak", first, last)
	}
}

func TestBacklogDrainsOverTime(t *testing.T) {
	f := New(1, Params{JitterFrac: 1e-9})
	h := f.Host(0)
	for i := 0; i < 20; i++ {
		h.Deliver(64 * 1024)
	}
	congested := h.Deliver(1024)
	time.Sleep(5 * time.Millisecond) // real time drains virtual backlog
	drained := h.Deliver(1024)
	if drained >= congested {
		t.Errorf("backlog did not drain: %d then %d", congested, drained)
	}
}

func TestRTTSumsBothLegs(t *testing.T) {
	f := New(2, Params{JitterFrac: 1e-9})
	rtt := f.RTT(0, 1, 100, 4096)
	if rtt < f.Params().BaseRTTNs {
		t.Errorf("RTT %d below one base RTT", rtt)
	}
}

func TestFrameOverheadPerMTU(t *testing.T) {
	f := New(1, Params{MTU: 1000, FrameOverhead: 100})
	if got := f.frameBytes(2500); got != 2500+3*100 {
		t.Errorf("frameBytes(2500) = %d, want 2800", got)
	}
	if got := f.frameBytes(0); got != 100 {
		t.Errorf("frameBytes(0) = %d, want 100", got)
	}
}

func TestOpTrace(t *testing.T) {
	var tr OpTrace
	tr.Add(100)
	tr.AddBytes(50)
	tr.AddBytes(-5) // ignored
	leg := OpTrace{Ns: 300, Bytes: 10}
	tr.Merge(leg) // parallel: max latency
	if tr.Ns != 300 || tr.Bytes != 60 {
		t.Errorf("after merge: %+v", tr)
	}
	tr.Sequence(OpTrace{Ns: 50, Bytes: 1})
	if tr.Ns != 350 || tr.Bytes != 61 {
		t.Errorf("after sequence: %+v", tr)
	}
	if tr.Duration() != 350*time.Nanosecond {
		t.Errorf("duration = %v", tr.Duration())
	}
}

func TestOpTraceMergeProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		t1 := OpTrace{Ns: a}
		t1.Merge(OpTrace{Ns: b})
		want := a
		if b > a {
			want = b
		}
		return t1.Ns == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueModel(t *testing.T) {
	if QueueModel(1000, 0) != 0 {
		t.Error("zero utilization must not queue")
	}
	lo, hi := QueueModel(1000, 0.3), QueueModel(1000, 0.9)
	if hi <= lo {
		t.Error("queue wait must grow with utilization")
	}
	// Saturation is clamped, not infinite.
	if QueueModel(1000, 5.0) == 0 || QueueModel(1000, 5.0) > 1000*100 {
		t.Errorf("saturated queue = %d", QueueModel(1000, 5.0))
	}
}

func TestJitterReproducible(t *testing.T) {
	a, b := New(3, Params{Seed: 42}), New(3, Params{Seed: 42})
	for i := 0; i < 100; i++ {
		if a.Host(i%3).Deliver(1000) != b.Host(i%3).Deliver(1000) {
			// Arrival clocks differ between fabrics, so exact equality can
			// break only via the `now` term; with an empty queue both see
			// queue=0, so latencies must match exactly.
			t.Fatal("same seed produced different latencies")
		}
	}
}

func TestConcurrentDeliverSafe(t *testing.T) {
	f := New(4, Params{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Host(g % 4).Deliver(1024)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkDeliver(b *testing.B) {
	f := New(1, Params{})
	h := f.Host(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Deliver(4096)
	}
}

// TestDeliverAtPinsArrival is the incast mechanism: parallel legs of one op
// pass a common virtual start instant so their responses queue behind each
// other on the downlink even when the simulation issues them sequentially
// in real time.
func TestDeliverAtPinsArrival(t *testing.T) {
	f := New(1, Params{JitterFrac: 1e-9})
	h := f.Host(0)
	at := f.NowNs()
	const sz = 64 * 1024
	first := h.DeliverAt(at, sz)
	time.Sleep(2 * time.Millisecond) // real time passes; backlog would drain
	second := h.DeliverAt(at, sz)    // but the pinned arrival still queues
	if second < first+first/2 {
		t.Errorf("pinned second leg %dns did not queue behind first %dns", second, first)
	}
	// An unpinned delivery after the sleep sees a drained queue.
	time.Sleep(2 * time.Millisecond)
	third := h.Deliver(sz)
	if third >= second {
		t.Errorf("unpinned delivery %dns should be faster than pinned-queued %dns", third, second)
	}
}

func TestDeliverAtZeroMeansNow(t *testing.T) {
	f := New(1, Params{JitterFrac: 1e-9})
	a := f.Host(0).DeliverAt(0, 1024)
	b := f.Host(0).Deliver(1024)
	// Both are "now" deliveries of the same size on an idle link: within
	// a serialization quantum of each other.
	diff := int64(a) - int64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(a) {
		t.Errorf("DeliverAt(0) = %d vs Deliver = %d", a, b)
	}
}

// Package rpc is the Stubby-like RPC framework CliqueMap leans on for
// everything that is not a common-case GET: mutations, eviction feedback,
// repairs, migration, configuration, and the WAN/RPC lookup fallback.
//
// The paper's framing (§1, §2.1): a production RPC framework buys
// authentication, versioning, ACLs, and multi-language interoperability at
// a cost of >50 CPU-µs per op across client and server — which is why the
// GET path bypasses it. This package reproduces both sides of that trade:
// it carries an authentication principal and version-tolerant payloads
// (internal/wire), and it bills a calibrated ~50µs of framework CPU per
// call so the efficiency comparisons (Figures 7, 18, 19 and the §3 claim)
// come out of measurement rather than assertion.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
)

var (
	// ErrUnavailable reports a stopped/crashed server.
	ErrUnavailable = errors.New("rpc: server unavailable")
	// ErrNoSuchMethod reports an unregistered method.
	ErrNoSuchMethod = errors.New("rpc: no such method")
	// ErrUnauthenticated reports an ACL rejection.
	ErrUnauthenticated = errors.New("rpc: unauthenticated")
	// ErrDeadlineExceeded reports a call whose modelled latency exceeds
	// the context deadline budget.
	ErrDeadlineExceeded = errors.New("rpc: deadline exceeded")
)

// CostModel calibrates framework overheads.
type CostModel struct {
	ClientCPUNs uint64 // marshal, auth, channel management on the caller
	ServerCPUNs uint64 // dispatch, auth check, thread wakeup on the callee
	LatencyNs   uint64 // fixed framework latency beyond CPU and fabric RTT
}

// DefaultCostModel makes an empty RPC cost just over 50 CPU-µs across
// client and server — the paper's Stubby figure.
func DefaultCostModel() CostModel {
	return CostModel{ClientCPUNs: 23000, ServerCPUNs: 29000, LatencyNs: 18000}
}

// Handler serves one method. The request and response are opaque payloads
// (conventionally internal/wire messages).
type Handler func(ctx context.Context, principal string, req []byte) ([]byte, error)

// Authenticator decides whether principal may invoke method — the per-RPC
// ACL layer (ALTS analogue).
type Authenticator func(principal, method string) error

// Network binds servers and clients to fabric hosts.
type Network struct {
	f    *fabric.Fabric
	cost CostModel
	acct *stats.CPUAccount

	mu      sync.Mutex
	servers map[string]*Server

	bytesSent stats.Counter
	calls     stats.Counter
}

// NewNetwork creates an RPC network over f. acct may be nil.
func NewNetwork(f *fabric.Fabric, cost CostModel, acct *stats.CPUAccount) *Network {
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	return &Network{f: f, cost: cost, acct: acct, servers: make(map[string]*Server)}
}

// BytesSent returns cumulative RPC payload bytes (request + response) —
// the metric plotted in Figures 13/14.
func (n *Network) BytesSent() uint64 { return n.bytesSent.Value() }

// Calls returns the cumulative RPC count.
func (n *Network) Calls() uint64 { return n.calls.Value() }

// Server is one RPC endpoint bound to a fabric host.
type Server struct {
	n      *Network
	addr   string
	hostID int

	mu       sync.Mutex
	handlers map[string]Handler
	costs    map[string]uint64 // extra modelled handler CPU by method
	auth     Authenticator
	stopped  bool
	failRate float64
	failRng  *rand.Rand
}

// Serve registers a server at addr on host hostID. Re-serving an address
// replaces the previous server (a restarted task).
func (n *Network) Serve(addr string, hostID int) *Server {
	s := &Server{n: n, addr: addr, hostID: hostID, handlers: make(map[string]Handler), costs: make(map[string]uint64)}
	n.mu.Lock()
	n.servers[addr] = s
	n.mu.Unlock()
	return s
}

// Lookup returns the live server at addr, if any.
func (n *Network) lookup(addr string) (*Server, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.servers[addr]
	return s, ok
}

// Handle registers h for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// SetMethodCost attaches a modelled CPU cost (ns) billed per invocation of
// method, on top of the framework cost.
func (s *Server) SetMethodCost(method string, ns uint64) {
	s.mu.Lock()
	s.costs[method] = ns
	s.mu.Unlock()
}

// SetAuthenticator installs an ACL check.
func (s *Server) SetAuthenticator(a Authenticator) {
	s.mu.Lock()
	s.auth = a
	s.mu.Unlock()
}

// SetFailRate makes the server spuriously fail the given fraction of
// calls with ErrUnavailable — the transient RPC failures §5.4 lists among
// the sources of dirty quorums. seed makes the drops reproducible.
func (s *Server) SetFailRate(rate float64, seed int64) {
	s.mu.Lock()
	s.failRate = rate
	s.failRng = rand.New(rand.NewSource(seed))
	s.mu.Unlock()
}

// Stop simulates a crash or planned shutdown: in-flight and future calls
// fail with ErrUnavailable.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Start brings a stopped server back (restarted task).
func (s *Server) Start() {
	s.mu.Lock()
	s.stopped = false
	s.mu.Unlock()
}

// Stopped reports whether the server is down.
func (s *Server) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.addr }

// Caller is the client-side calling surface — satisfied by the in-process
// Client and by the TCP gateway's remote client, so higher layers work
// over either.
type Caller interface {
	Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error)
}

// Client issues calls from a particular fabric host under a principal.
type Client struct {
	n         *Network
	hostID    int
	principal string
}

// Client binds a caller to host hostID with the given identity.
func (n *Network) Client(hostID int, principal string) *Client {
	return &Client{n: n, hostID: hostID, principal: principal}
}

// Call invokes method at addr. The returned OpTrace carries the modelled
// latency: framework fixed costs + fabric RTT (request and response sized
// by the payloads) + any per-method handler cost. If ctx carries a
// deadline whose remaining budget is below the modelled latency, Call
// fails with ErrDeadlineExceeded (the handler is not run).
func (c *Client) Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error) {
	var tr fabric.OpTrace
	n := c.n

	if err := ctx.Err(); err != nil {
		return nil, tr, ErrDeadlineExceeded
	}

	// Client-side framework CPU.
	if n.acct != nil {
		n.acct.Charge("rpc-client", n.cost.ClientCPUNs)
	}
	tr.Add(n.cost.ClientCPUNs + n.cost.LatencyNs/2)

	s, ok := n.lookup(addr)
	if !ok {
		return nil, tr, fmt.Errorf("%w: %s", ErrUnavailable, addr)
	}

	s.mu.Lock()
	stopped := s.stopped
	h := s.handlers[method]
	extra := s.costs[method]
	auth := s.auth
	hostID := s.hostID
	dropped := s.failRate > 0 && s.failRng != nil && s.failRng.Float64() < s.failRate
	s.mu.Unlock()

	// Request crosses the fabric.
	tr.Add(n.f.Host(hostID).Deliver(len(req) + 128))
	tr.AddBytes(len(req) + 128)
	n.bytesSent.Add(uint64(len(req) + 128))
	n.calls.Inc()

	if stopped {
		return nil, tr, fmt.Errorf("%w: %s", ErrUnavailable, addr)
	}
	if dropped {
		return nil, tr, fmt.Errorf("%w: %s (transient)", ErrUnavailable, addr)
	}
	if auth != nil {
		if err := auth(c.principal, method); err != nil {
			return nil, tr, fmt.Errorf("%w: %v", ErrUnauthenticated, err)
		}
	}
	if h == nil {
		return nil, tr, fmt.Errorf("%w: %s %s", ErrNoSuchMethod, addr, method)
	}

	// Server-side framework + handler CPU.
	if n.acct != nil {
		n.acct.Charge("rpc-server", n.cost.ServerCPUNs)
		if extra > 0 {
			n.acct.ChargeOnly("handler", extra)
		}
	}
	tr.Add(n.cost.ServerCPUNs + n.cost.LatencyNs/2 + extra)

	resp, err := h(ctx, c.principal, req)
	if err != nil {
		tr.Add(n.f.Host(c.hostID).Deliver(128))
		n.bytesSent.Add(128)
		return nil, tr, err
	}

	// Response returns.
	tr.Add(n.f.Host(c.hostID).Deliver(len(resp) + 128))
	tr.AddBytes(len(resp) + 128)
	n.bytesSent.Add(uint64(len(resp) + 128))

	if ctx.Err() != nil {
		return nil, tr, ErrDeadlineExceeded
	}
	return resp, tr, nil
}

// Package rpc is the Stubby-like RPC framework CliqueMap leans on for
// everything that is not a common-case GET: mutations, eviction feedback,
// repairs, migration, configuration, and the WAN/RPC lookup fallback.
//
// The paper's framing (§1, §2.1): a production RPC framework buys
// authentication, versioning, ACLs, and multi-language interoperability at
// a cost of >50 CPU-µs per op across client and server — which is why the
// GET path bypasses it. This package reproduces both sides of that trade:
// it carries an authentication principal and version-tolerant payloads
// (internal/wire), and it bills a calibrated ~50µs of framework CPU per
// call so the efficiency comparisons (Figures 7, 18, 19 and the §3 claim)
// come out of measurement rather than assertion.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
)

// DefaultWorkerLimit bounds concurrent handler executions per server — the
// modelled size of a production server's request-processing thread pool.
const DefaultWorkerLimit = 64

var (
	// ErrUnavailable reports a stopped/crashed server.
	ErrUnavailable = errors.New("rpc: server unavailable")
	// ErrNoSuchMethod reports an unregistered method.
	ErrNoSuchMethod = errors.New("rpc: no such method")
	// ErrUnauthenticated reports an ACL rejection.
	ErrUnauthenticated = errors.New("rpc: unauthenticated")
	// ErrDeadlineExceeded reports a call whose modelled latency exceeds
	// the context deadline budget.
	ErrDeadlineExceeded = errors.New("rpc: deadline exceeded")
)

// CostModel calibrates framework overheads.
type CostModel struct {
	ClientCPUNs uint64 // marshal, auth, channel management on the caller
	ServerCPUNs uint64 // dispatch, auth check, thread wakeup on the callee
	LatencyNs   uint64 // fixed framework latency beyond CPU and fabric RTT
}

// DefaultCostModel makes an empty RPC cost just over 50 CPU-µs across
// client and server — the paper's Stubby figure.
func DefaultCostModel() CostModel {
	return CostModel{ClientCPUNs: 23000, ServerCPUNs: 29000, LatencyNs: 18000}
}

// Handler serves one method. The request and response are opaque payloads
// (conventionally internal/wire messages).
type Handler func(ctx context.Context, principal string, req []byte) ([]byte, error)

// Authenticator decides whether principal may invoke method — the per-RPC
// ACL layer (ALTS analogue).
type Authenticator func(principal, method string) error

// Network binds servers and clients to fabric hosts.
type Network struct {
	f    *fabric.Fabric
	cost CostModel
	acct *stats.CPUAccount

	// Pre-resolved charging handles: Call bills these on every RPC, and
	// the zero Meter discards, so no nil-account branch on the hot path.
	clientMeter  stats.Meter
	serverMeter  stats.Meter
	handlerMeter stats.Meter

	mu      sync.Mutex
	servers map[string]*Server

	// tracer, when set, records ops that enter this network from outside
	// the cell (the TCP gateway) so remote traffic shows up in the cell's
	// telemetry plane alongside in-process clients.
	tracer atomic.Pointer[trace.Tracer]

	bytesSent stats.Counter
	calls     stats.Counter
}

// SetTracer installs the cell tracer used for remotely originated calls.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// Tracer returns the installed cell tracer, or nil.
func (n *Network) Tracer() *trace.Tracer { return n.tracer.Load() }

// NewNetwork creates an RPC network over f. acct may be nil.
func NewNetwork(f *fabric.Fabric, cost CostModel, acct *stats.CPUAccount) *Network {
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	n := &Network{f: f, cost: cost, acct: acct, servers: make(map[string]*Server)}
	if acct != nil {
		n.clientMeter = acct.Meter("rpc-client")
		n.serverMeter = acct.Meter("rpc-server")
		n.handlerMeter = acct.Meter("handler")
	}
	return n
}

// BytesSent returns cumulative RPC payload bytes (request + response) —
// the metric plotted in Figures 13/14.
func (n *Network) BytesSent() uint64 { return n.bytesSent.Value() }

// Calls returns the cumulative RPC count.
func (n *Network) Calls() uint64 { return n.calls.Value() }

// Server is one RPC endpoint bound to a fabric host.
type Server struct {
	n      *Network
	addr   string
	hostID int

	mu       sync.Mutex
	handlers map[string]Handler
	costs    map[string]uint64 // extra modelled handler CPU by method
	auth     Authenticator
	stopped  bool
	failRate float64
	failRng  *rand.Rand
	pool     *workerPool // bounded handler-execution pool

	sat satCounters // admission-queue saturation telemetry
}

// satCounters is the server's modelled admission-queue state: utilization
// is estimated from sampled arrival timing (one virtual-clock read per
// rhoSampleEvery calls) so per-call cost stays at one atomic add, and the
// M/M/c-ish queue wait derived from it is billed into each call's modelled
// latency. These counters survive SetWorkerLimit pool swaps.
type satCounters struct {
	arrivals    atomic.Uint64 // calls that reached dispatch
	sampleAtNs  atomic.Uint64 // virtual instant of the previous rho sample
	rhoMilli    atomic.Uint64 // smoothed modelled utilization, ×1000 (gauge)
	queueNs     atomic.Uint64 // cumulative modelled admission-queue ns billed
	queuedCalls atomic.Uint64 // calls billed a nonzero modelled queue wait
}

// rhoSampleEvery sets how many arrivals share one utilization sample.
const rhoSampleEvery = 64

// admit returns the modelled admission-queue wait for one call whose
// handler occupies serviceNs of one of limit workers. Every
// rhoSampleEvery-th arrival refreshes the utilization estimate from the
// window's arrival rate (taking the sampling call's service time as
// representative) with 3:1 smoothing; QueueModel's 0.98 clamp bounds the
// worst-case billed wait at 49× the per-worker service share, so an
// unloaded server bills ~0 and existing latency figures are undisturbed.
func (s *Server) admit(now func() uint64, serviceNs uint64, limit int32) uint64 {
	c := &s.sat
	if c.arrivals.Add(1)%rhoSampleEvery == 0 {
		t := now()
		prev := c.sampleAtNs.Swap(t)
		if prev > 0 && t > prev {
			rate := float64(rhoSampleEvery) * 1e9 / float64(t-prev)
			inst := rate * float64(serviceNs) / 1e9 / float64(limit)
			old := float64(c.rhoMilli.Load()) / 1000
			c.rhoMilli.Store(uint64(fabric.Clamp01((3*old+inst)/4) * 1000))
		}
	}
	rho := float64(c.rhoMilli.Load()) / 1000
	if rho <= 0 {
		return 0
	}
	q := fabric.QueueModel(float64(serviceNs)/float64(limit), rho)
	if q > 0 {
		c.queueNs.Add(q)
		c.queuedCalls.Add(1)
	}
	return q
}

// workerPool runs handlers on a bounded set of persistent worker
// goroutines — the request-processing thread pool of a production server.
// Workers are spawned lazily up to limit and then parked between requests,
// so steady-state dispatch costs two channel handoffs and no goroutine
// creation (a fresh goroutine per call would re-grow its stack on every
// request — measurably dominant on the mutation hot path).
type workerPool struct {
	tasks   chan task
	limit   int32
	running atomic.Int32
	busy    atomic.Int32 // workers currently executing a handler (gauge)

	// Occupancy telemetry for the wall side of the admission queue: both
	// are touched only on the at-limit path, so the uncontended fast path
	// pays nothing.
	queuedSubmits atomic.Uint64 // submits that waited for a worker at the pool limit
	submitWaitNs  atomic.Uint64 // cumulative measured wall-ns those submits waited
}

type task struct {
	ctx       context.Context
	h         Handler
	principal string
	req       []byte
	done      chan taskResult
}

type taskResult struct {
	resp []byte
	err  error
}

func newWorkerPool(limit int) *workerPool {
	if limit < 1 {
		limit = 1
	}
	return &workerPool{tasks: make(chan task), limit: int32(limit)}
}

// doneChans recycles single-use result channels across submits: a worker
// sends exactly one result and submit always receives it, so a channel is
// provably empty when returned to the pool.
var doneChans = sync.Pool{New: func() any { return make(chan taskResult, 1) }}

// submit hands t to a worker and waits for the result. When every worker
// is busy and the pool is at its limit, submit blocks — the worker pool is
// the server's admission semaphore. A context that expires while queued
// fails without running the handler; once admitted, handlers run to
// completion (a server does not abandon work mid-mutation).
func (p *workerPool) submit(ctx context.Context, h Handler, principal string, req []byte) ([]byte, error) {
	done := doneChans.Get().(chan taskResult)
	t := task{ctx: ctx, h: h, principal: principal, req: req, done: done}
	select {
	case p.tasks <- t: // an idle worker took it
	default:
		if n := p.running.Add(1); n <= p.limit {
			go p.worker()
			select {
			case p.tasks <- t:
			case <-ctx.Done():
				doneChans.Put(done)
				return nil, ErrDeadlineExceeded
			}
		} else {
			// At the pool limit with every worker busy: this submit is
			// genuinely queued, so the clock reads live only here.
			p.running.Add(-1)
			p.queuedSubmits.Add(1)
			t0 := time.Now()
			select {
			case p.tasks <- t:
				p.submitWaitNs.Add(uint64(time.Since(t0)))
			case <-ctx.Done():
				doneChans.Put(done)
				return nil, ErrDeadlineExceeded
			}
		}
	}
	r := <-done
	doneChans.Put(done)
	return r.resp, r.err
}

// worker serves tasks for the life of the pool, keeping its grown stack
// warm across requests.
func (p *workerPool) worker() {
	for t := range p.tasks {
		p.busy.Add(1)
		resp, err := t.h(t.ctx, t.principal, t.req)
		p.busy.Add(-1)
		t.done <- taskResult{resp: resp, err: err}
	}
}

// Serve registers a server at addr on host hostID. Re-serving an address
// replaces the previous server (a restarted task).
func (n *Network) Serve(addr string, hostID int) *Server {
	s := &Server{
		n: n, addr: addr, hostID: hostID,
		handlers: make(map[string]Handler),
		costs:    make(map[string]uint64),
		pool:     newWorkerPool(DefaultWorkerLimit),
	}
	n.mu.Lock()
	n.servers[addr] = s
	n.mu.Unlock()
	return s
}

// Lookup returns the live server at addr, if any.
func (n *Network) lookup(addr string) (*Server, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.servers[addr]
	return s, ok
}

// Handle registers h for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// SetMethodCost attaches a modelled CPU cost (ns) billed per invocation of
// method, on top of the framework cost.
func (s *Server) SetMethodCost(method string, ns uint64) {
	s.mu.Lock()
	s.costs[method] = ns
	s.mu.Unlock()
}

// SetWorkerLimit resizes the server's handler-concurrency bound by
// installing a fresh worker pool. Calls in flight under the old pool drain
// independently; new calls use the new one.
func (s *Server) SetWorkerLimit(limit int) {
	s.mu.Lock()
	s.pool = newWorkerPool(limit)
	s.mu.Unlock()
}

// SetAuthenticator installs an ACL check.
func (s *Server) SetAuthenticator(a Authenticator) {
	s.mu.Lock()
	s.auth = a
	s.mu.Unlock()
}

// SetFailRate makes the server spuriously fail the given fraction of
// calls with ErrUnavailable — the transient RPC failures §5.4 lists among
// the sources of dirty quorums. seed makes the drops reproducible.
//
// This is the leaf actuator behind the internal/chaos plane's RPCFailRate
// hazard; prefer driving it through the plane so every injection shares
// one master seed and shows up in the hazard counters.
func (s *Server) SetFailRate(rate float64, seed int64) {
	s.mu.Lock()
	s.failRate = rate
	s.failRng = rand.New(rand.NewSource(seed))
	s.mu.Unlock()
}

// Stop simulates a crash or planned shutdown: in-flight and future calls
// fail with ErrUnavailable.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Start brings a stopped server back (restarted task).
func (s *Server) Start() {
	s.mu.Lock()
	s.stopped = false
	s.mu.Unlock()
}

// Stopped reports whether the server is down.
func (s *Server) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Addr returns the server's address.
func (s *Server) Addr() string { return s.addr }

// Saturation is a point-in-time snapshot of one server's admission-side
// saturation telemetry: how full the worker pool is (wall side) and how
// hard the modelled admission queue is pushing back (model side).
type Saturation struct {
	WorkerLimit   uint64 // pool size (gauge)
	WorkersBusy   uint64 // workers executing a handler right now (gauge)
	QueuedSubmits uint64 // submits that waited for a worker at the pool limit
	SubmitWaitNs  uint64 // cumulative measured wall-ns those submits waited
	Calls         uint64 // calls that reached dispatch on this server
	QueuedCalls   uint64 // calls billed a modelled admission-queue wait
	QueueNs       uint64 // cumulative modelled admission-queue ns billed
	RhoMilli      uint64 // smoothed modelled utilization ×1000 (gauge)
}

// Saturation snapshots the server's saturation counters. Pool-side
// counters reset when SetWorkerLimit installs a fresh pool; consumers
// (cmstat -watch) clamp deltas on restart.
func (s *Server) Saturation() Saturation {
	s.mu.Lock()
	pool := s.pool
	s.mu.Unlock()
	busy := pool.busy.Load()
	if busy < 0 {
		busy = 0
	}
	return Saturation{
		WorkerLimit:   uint64(pool.limit),
		WorkersBusy:   uint64(busy),
		QueuedSubmits: pool.queuedSubmits.Load(),
		SubmitWaitNs:  pool.submitWaitNs.Load(),
		Calls:         s.sat.arrivals.Load(),
		QueuedCalls:   s.sat.queuedCalls.Load(),
		QueueNs:       s.sat.queueNs.Load(),
		RhoMilli:      s.sat.rhoMilli.Load(),
	}
}

// Caller is the client-side calling surface — satisfied by the in-process
// Client and by the TCP gateway's remote client, so higher layers work
// over either.
type Caller interface {
	Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error)
}

// Client issues calls from a particular fabric host under a principal.
type Client struct {
	n         *Network
	hostID    int
	principal string
}

// Client binds a caller to host hostID with the given identity.
func (n *Network) Client(hostID int, principal string) *Client {
	return &Client{n: n, hostID: hostID, principal: principal}
}

// Call invokes method at addr. The returned OpTrace carries the modelled
// latency: framework fixed costs + fabric RTT (request and response sized
// by the payloads) + any per-method handler cost. If ctx carries a
// deadline whose remaining budget is below the modelled latency, Call
// fails with ErrDeadlineExceeded (the handler is not run).
func (c *Client) Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error) {
	var tr fabric.OpTrace
	n := c.n

	if err := ctx.Err(); err != nil {
		return nil, tr, ErrDeadlineExceeded
	}

	// Span capture is armed only when the caller carries an op identity;
	// internal traffic (repairs, handshakes, touch batches) records no
	// spans and allocates nothing. Armed calls buffer spans on the stack
	// and materialize them in one exact-size allocation at exit.
	sb := spanBuf{on: trace.FromContext(ctx) != nil}

	// Client-side framework CPU.
	n.clientMeter.Charge(n.cost.ClientCPUNs)
	sb.add(&tr, trace.SpanRPCClient, 0, n.cost.ClientCPUNs+n.cost.LatencyNs/2)

	s, ok := n.lookup(addr)
	if !ok {
		return nil, tr, fmt.Errorf("%w: %s", ErrUnavailable, addr)
	}

	s.mu.Lock()
	stopped := s.stopped
	h := s.handlers[method]
	extra := s.costs[method]
	auth := s.auth
	hostID := s.hostID
	pool := s.pool
	dropped := s.failRate > 0 && s.failRng != nil && s.failRng.Float64() < s.failRate
	s.mu.Unlock()

	// Request crosses the fabric.
	sb.add(&tr, trace.SpanFabric, uint32(len(req)+128), n.f.Host(hostID).Deliver(len(req)+128))
	tr.AddBytes(len(req) + 128)
	n.bytesSent.Add(uint64(len(req) + 128))
	n.calls.Inc()

	if stopped {
		return nil, tr, fmt.Errorf("%w: %s", ErrUnavailable, addr)
	}
	if dropped {
		return nil, tr, fmt.Errorf("%w: %s (transient)", ErrUnavailable, addr)
	}
	// A partitioned (or lossy) request link drops the call before the
	// handler runs; the response direction is checked separately below, so
	// an asymmetric cut can fail a call whose side effects persisted.
	if !n.f.Linked(c.hostID, hostID) {
		return nil, tr, fmt.Errorf("%w: %s (partitioned)", ErrUnavailable, addr)
	}
	if auth != nil {
		if err := auth(c.principal, method); err != nil {
			return nil, tr, fmt.Errorf("%w: %v", ErrUnauthenticated, err)
		}
	}
	if h == nil {
		return nil, tr, fmt.Errorf("%w: %s %s", ErrNoSuchMethod, addr, method)
	}

	// Server-side framework + handler CPU.
	n.serverMeter.Charge(n.cost.ServerCPUNs)
	if extra > 0 {
		n.handlerMeter.ChargeOnly(extra)
	}
	sb.add(&tr, trace.SpanRPCServer, uint32(extra), n.cost.ServerCPUNs+n.cost.LatencyNs/2+extra)

	// Modelled admission queue: as offered load approaches the worker
	// pool's capacity, calls wait for a worker before the handler runs.
	if qns := s.admit(n.f.NowNs, n.cost.ServerCPUNs+extra, pool.limit); qns > 0 {
		sb.add(&tr, trace.SpanRPCQueue, uint32(s.sat.rhoMilli.Load()), qns)
	}

	// Traced calls get a span sink so the handler can deposit measured
	// costs (stripe lock waits) back into this call's trace. Untraced
	// callers skip the context allocation entirely.
	hctx := ctx
	var sink *trace.SpanSink
	if sb.on {
		sink = trace.GetSink()
		hctx = trace.WithSink(ctx, sink)
	}

	// Dispatch the handler to the server's bounded worker pool. The caller
	// blocks for the response (RPCs are synchronous) but handlers for
	// different calls run on distinct worker goroutines, so mutations
	// against different lock stripes overlap inside one backend.
	resp, err := pool.submit(hctx, h, c.principal, req)
	var deposited []fabric.Span
	depositedAt := tr.Ns
	if sink != nil {
		deposited = sink.Take()
	}
	if err != nil {
		tr.Add(n.f.Host(c.hostID).Deliver(128))
		n.bytesSent.Add(128)
		sb.attach(&tr, deposited, depositedAt)
		if sink != nil {
			trace.PutSink(sink)
		}
		return nil, tr, err
	}

	// Response direction: the handler has already executed, so a cut here
	// yields the indeterminate outcome of §5 — the mutation may have
	// applied even though the caller sees a failure.
	if !n.f.Linked(hostID, c.hostID) {
		tr.Add(n.f.Host(c.hostID).Deliver(128))
		n.bytesSent.Add(128)
		sb.attach(&tr, deposited, depositedAt)
		if sink != nil {
			trace.PutSink(sink)
		}
		return nil, tr, fmt.Errorf("%w: %s (partitioned)", ErrUnavailable, addr)
	}

	// Response returns.
	sb.add(&tr, trace.SpanFabric, uint32(len(resp)+128), n.f.Host(c.hostID).Deliver(len(resp)+128))
	tr.AddBytes(len(resp) + 128)
	n.bytesSent.Add(uint64(len(resp) + 128))
	sb.attach(&tr, deposited, depositedAt)
	if sink != nil {
		trace.PutSink(sink)
	}

	if ctx.Err() != nil {
		return nil, tr, ErrDeadlineExceeded
	}
	return resp, tr, nil
}

// spanBuf stages a Call's framework spans on the stack so an armed call
// pays a single exact-size allocation and an unarmed call pays none.
type spanBuf struct {
	on  bool
	n   int
	buf [4]fabric.Span
}

func (b *spanBuf) add(tr *fabric.OpTrace, code uint16, arg uint32, ns uint64) {
	if b.on && b.n < len(b.buf) {
		b.buf[b.n] = fabric.Span{Code: code, Arg: arg, Start: tr.Ns, Dur: ns}
		b.n++
	}
	tr.Add(ns)
}

// attach materializes the staged spans plus any handler-deposited spans
// (which annotate at the dispatch point rather than extending the path).
func (b *spanBuf) attach(tr *fabric.OpTrace, deposited []fabric.Span, at uint64) {
	if !b.on || b.n+len(deposited) == 0 {
		return
	}
	s := make([]fabric.Span, b.n, b.n+len(deposited))
	copy(s, b.buf[:b.n])
	for _, sp := range deposited {
		s = append(s, fabric.Span{Code: sp.Code, Arg: sp.Arg, Start: at, Dur: sp.Dur})
	}
	tr.Spans = s
}

package rpc

import (
	"testing"

	"cliquemap/internal/fabric"
	"cliquemap/internal/wire"
)

// The TCP gateway decodes frames straight off the socket; malformed trace
// context — bogus span ids, truncated span messages, absurd lengths —
// must never panic the decoder, only degrade to zero values or an error.
func FuzzTCPRequestFrame(f *testing.F) {
	f.Add(tcpRequest{ID: 1, Addr: "backend-0", Method: "CliqueMap.Get",
		Principal: "p", Payload: []byte("x")}.marshal())
	f.Add(tcpRequest{ID: 2, Addr: "backend-1", Method: "CliqueMap.Set",
		Principal: "p", TraceID: 99, Kind: "SET", Attempt: 3}.marshal())
	// Trace context with a garbage kind string and overflowing attempt.
	e := wire.NewEncoder()
	e.Uint(1, ^uint64(0))
	e.Uint(6, ^uint64(0))
	e.String(7, "\xff\xfe not-a-kind")
	e.Uint(8, ^uint64(0))
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := unmarshalTCPRequest(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-marshal without panicking.
		_ = r.marshal()
	})
}

func FuzzTCPResponseFrame(f *testing.F) {
	f.Add(tcpResponse{ID: 1, OK: true, Payload: []byte("v"), TraceNs: 5000,
		Spans: []fabric.Span{{Code: 3, Arg: 1, Start: 0, Dur: 4000}}}.marshal())
	f.Add(tcpResponse{ID: 2, Err: "no such key"}.marshal())
	// Span list where one entry is a truncated varint and another has a
	// code wider than 16 bits.
	e := wire.NewEncoder()
	e.Uint(1, 3)
	e.Bytes(6, []byte{0x08})
	bad := wire.NewRawEncoder()
	bad.Uint(1, 0xFFFFF)
	bad.Uint(4, 12)
	e.Message(6, bad)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := unmarshalTCPResponse(data)
		if err != nil {
			return
		}
		if len(r.Spans) > 1<<20 {
			t.Fatalf("decoder fabricated %d spans from %d input bytes", len(r.Spans), len(data))
		}
		_ = r.marshal()
	})
}

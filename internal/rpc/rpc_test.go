package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
)

func newNet(acct *stats.CPUAccount) *Network {
	return NewNetwork(fabric.New(4, fabric.Params{}), CostModel{}, acct)
}

func TestCallRoundTrip(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("backend-0", 1)
	s.Handle("Echo", func(_ context.Context, _ string, req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	c := n.Client(0, "tester")
	resp, tr, err := c.Call(context.Background(), "backend-0", "Echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Errorf("resp = %q", resp)
	}
	if tr.Ns == 0 || tr.Bytes == 0 {
		t.Error("trace empty")
	}
}

func TestNoSuchMethodAndAddr(t *testing.T) {
	n := newNet(nil)
	n.Serve("b", 1)
	c := n.Client(0, "p")
	if _, _, err := c.Call(context.Background(), "b", "Nope", nil); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method: %v", err)
	}
	if _, _, err := c.Call(context.Background(), "absent", "M", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("missing addr: %v", err)
	}
}

func TestStopStart(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return []byte("ok"), nil })
	c := n.Client(0, "p")

	s.Stop()
	if !s.Stopped() {
		t.Error("Stopped() false after Stop")
	}
	if _, _, err := c.Call(context.Background(), "b", "M", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("stopped server: %v", err)
	}
	s.Start()
	if _, _, err := c.Call(context.Background(), "b", "M", nil); err != nil {
		t.Errorf("restarted server: %v", err)
	}
}

func TestReServeReplacesCrashedTask(t *testing.T) {
	n := newNet(nil)
	old := n.Serve("b", 1)
	old.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return []byte("old"), nil })
	old.Stop()

	replacement := n.Serve("b", 2) // restarted on another host (§7.2.3)
	replacement.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return []byte("new"), nil })

	c := n.Client(0, "p")
	resp, _, err := c.Call(context.Background(), "b", "M", nil)
	if err != nil || string(resp) != "new" {
		t.Errorf("resp=%q err=%v", resp, err)
	}
}

func TestAuthenticator(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	s.SetAuthenticator(func(principal, method string) error {
		if principal != "alice" {
			return fmt.Errorf("denied %s", principal)
		}
		return nil
	})
	if _, _, err := n.Client(0, "mallory").Call(context.Background(), "b", "M", nil); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("mallory: %v", err)
	}
	if _, _, err := n.Client(0, "alice").Call(context.Background(), "b", "M", nil); err != nil {
		t.Errorf("alice: %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	sentinel := errors.New("handler boom")
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, sentinel })
	if _, _, err := n.Client(0, "p").Call(context.Background(), "b", "M", nil); !errors.Is(err, sentinel) {
		t.Errorf("got %v", err)
	}
}

func TestDeadline(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := n.Client(0, "p").Call(ctx, "b", "M", nil); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("cancelled ctx: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	if _, _, err := n.Client(0, "p").Call(ctx2, "b", "M", nil); err != nil {
		t.Errorf("live ctx: %v", err)
	}
}

// TestEmptyRPCCostsOver50Micros verifies the §1/§2.1 claim driving the
// entire design: even an empty RPC costs >50 CPU-µs across client and
// server framework code.
func TestEmptyRPCCostsOver50Micros(t *testing.T) {
	acct := stats.NewCPUAccount()
	n := newNet(acct)
	s := n.Serve("b", 1)
	s.Handle("Empty", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	c := n.Client(0, "p")
	const calls = 100
	for i := 0; i < calls; i++ {
		if _, _, err := c.Call(context.Background(), "b", "Empty", nil); err != nil {
			t.Fatal(err)
		}
	}
	perOp := (acct.TotalNanos("rpc-client") + acct.TotalNanos("rpc-server")) / calls
	if perOp <= 50000 {
		t.Errorf("empty RPC = %d CPU-ns/op, paper claims >50µs", perOp)
	}
}

func TestMethodCostBilled(t *testing.T) {
	acct := stats.NewCPUAccount()
	n := newNet(acct)
	s := n.Serve("b", 1)
	s.Handle("Heavy", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	s.SetMethodCost("Heavy", 12345)
	n.Client(0, "p").Call(context.Background(), "b", "Heavy", nil)
	if acct.TotalNanos("handler") != 12345 {
		t.Errorf("handler CPU = %d", acct.TotalNanos("handler"))
	}
}

func TestBytesAndCallsCounted(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(_ context.Context, _ string, req []byte) ([]byte, error) {
		return make([]byte, 1000), nil
	})
	c := n.Client(0, "p")
	before := n.BytesSent()
	c.Call(context.Background(), "b", "M", make([]byte, 500))
	delta := n.BytesSent() - before
	if delta < 1500 {
		t.Errorf("bytes delta = %d, want >= 1500", delta)
	}
	if n.Calls() != 1 {
		t.Errorf("calls = %d", n.Calls())
	}
}

func TestRPCLatencyFarAboveRMA(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	_, tr, err := n.Client(0, "p").Call(context.Background(), "b", "M", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Framework latency ~70µs dwarfs the ~4µs fabric RTT.
	if tr.Ns < 50000 {
		t.Errorf("RPC latency %dns implausibly low", tr.Ns)
	}
}

func BenchmarkRPCCall(b *testing.B) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(_ context.Context, _ string, req []byte) ([]byte, error) { return req, nil })
	c := n.Client(0, "p")
	req := make([]byte, 256)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Call(ctx, "b", "M", req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConcurrentCalls hammers one server from many goroutines: the
// framework must stay consistent under contention (counters exact, no
// lost responses).
func TestConcurrentCalls(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("Echo", func(_ context.Context, _ string, req []byte) ([]byte, error) {
		return req, nil
	})
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := n.Client(0, fmt.Sprintf("g%d", g))
			for i := 0; i < per; i++ {
				req := []byte(fmt.Sprintf("%d-%d", g, i))
				resp, _, err := c.Call(context.Background(), "b", "Echo", req)
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != string(req) {
					errs <- fmt.Errorf("mismatched echo: %q vs %q", resp, req)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := n.Calls(); got != goroutines*per {
		t.Errorf("calls = %d, want %d", got, goroutines*per)
	}
}

// TestStopDuringTraffic: stopping a server mid-traffic yields clean
// ErrUnavailable failures, never hangs or panics.
func TestStopDuringTraffic(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	c := n.Client(0, "p")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			_, _, err := c.Call(context.Background(), "b", "M", nil)
			if err != nil && !errors.Is(err, ErrUnavailable) {
				t.Errorf("unexpected error: %v", err)
				return
			}
		}
	}()
	s.Stop()
	<-done
}

func TestFailRateInjection(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	s.SetFailRate(0.5, 7)
	c := n.Client(0, "p")
	failures := 0
	const calls = 400
	for i := 0; i < calls; i++ {
		if _, _, err := c.Call(context.Background(), "b", "M", nil); err != nil {
			if !errors.Is(err, ErrUnavailable) {
				t.Fatalf("wrong error class: %v", err)
			}
			failures++
		}
	}
	if failures < calls/4 || failures > 3*calls/4 {
		t.Errorf("50%% fail rate produced %d/%d failures", failures, calls)
	}
	s.SetFailRate(0, 0)
	if _, _, err := c.Call(context.Background(), "b", "M", nil); err != nil {
		t.Errorf("after clearing fail rate: %v", err)
	}
}

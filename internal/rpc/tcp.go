package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"cliquemap/internal/fabric"
	"cliquemap/internal/trace"
	"cliquemap/internal/wire"
)

// This file puts the RPC network on real sockets: a TCPGateway accepts
// connections and proxies framed calls into the in-process Network, and a
// TCPClient implements Caller over such a connection. This is how
// processes outside the cell's address space — remote tools, other
// services, the WAN path of Table 1 — reach CliqueMap's RPC surface.
//
// Frame format (both directions): a 4-byte little-endian length prefix
// followed by a wire-encoded message. Requests carry {id, target addr,
// method, principal, payload}; responses carry {id, ok, payload|error}.
// Responses may arrive out of order; the id correlates them, so one
// connection multiplexes concurrent calls.

// maxTCPFrame bounds a frame (fail-closed against corrupt prefixes).
const maxTCPFrame = 64 << 20

type tcpRequest struct {
	ID        uint64
	Addr      string
	Method    string
	Principal string
	Payload   []byte
	// Trace context (tags 6-8, additive): lets a remote caller's op
	// identity cross the socket so spans recorded inside the cell
	// attribute to it.
	TraceID uint64
	Kind    string
	Attempt uint64
}

func (r tcpRequest) marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.ID)
	e.String(2, r.Addr)
	e.String(3, r.Method)
	e.String(4, r.Principal)
	e.Bytes(5, r.Payload)
	if r.TraceID != 0 {
		e.Uint(6, r.TraceID)
		e.String(7, r.Kind)
		e.Uint(8, r.Attempt)
	}
	return e.Encoded()
}

func unmarshalTCPRequest(b []byte) (tcpRequest, error) {
	var r tcpRequest
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.ID = d.Uint()
		case 2:
			r.Addr = d.String()
		case 3:
			r.Method = d.String()
		case 4:
			r.Principal = d.String()
		case 5:
			r.Payload = append([]byte(nil), d.Bytes()...)
		case 6:
			r.TraceID = d.Uint()
		case 7:
			r.Kind = d.String()
		case 8:
			r.Attempt = d.Uint()
		}
	}
	return r, d.Err()
}

type tcpResponse struct {
	ID      uint64
	OK      bool
	Payload []byte
	Err     string
	TraceNs uint64
	// Spans (tag 6, additive) carry the call's per-layer attribution back
	// to the remote caller.
	Spans []fabric.Span
}

func (r tcpResponse) marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.ID)
	e.Bool(2, r.OK)
	e.Bytes(3, r.Payload)
	e.String(4, r.Err)
	e.Uint(5, r.TraceNs)
	trace.EncodeSpans(e, 6, r.Spans)
	return e.Encoded()
}

func unmarshalTCPResponse(b []byte) (tcpResponse, error) {
	var r tcpResponse
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.ID = d.Uint()
		case 2:
			r.OK = d.Bool()
		case 3:
			r.Payload = append([]byte(nil), d.Bytes()...)
		case 4:
			r.Err = d.String()
		case 5:
			r.TraceNs = d.Uint()
		case 6:
			if len(r.Spans) < trace.MaxWireSpans {
				r.Spans = append(r.Spans, trace.DecodeSpan(d.Bytes()))
			}
		}
	}
	return r, d.Err()
}

func writeTCPFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readTCPFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxTCPFrame {
		return nil, fmt.Errorf("rpc: tcp frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TCPGateway proxies socket connections into an in-process Network.
type TCPGateway struct {
	n       *Network
	ln      net.Listener
	hostID  int
	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	accepts sync.WaitGroup
}

// ServeTCP listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves remote callers against n. Calls enter the fabric at hostID (the
// gateway's position in the cell).
func ServeTCP(n *Network, addr string, hostID int) (*TCPGateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g := &TCPGateway{n: n, ln: ln, hostID: hostID, conns: make(map[net.Conn]struct{})}
	g.accepts.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the gateway's listen address.
func (g *TCPGateway) Addr() string { return g.ln.Addr().String() }

// Close stops accepting and tears down live connections.
func (g *TCPGateway) Close() error {
	g.mu.Lock()
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	err := g.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	g.accepts.Wait()
	g.wg.Wait()
	return err
}

func (g *TCPGateway) acceptLoop() {
	defer g.accepts.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.wg.Add(1)
		g.mu.Unlock()
		go g.serveConn(conn)
	}
}

func (g *TCPGateway) serveConn(conn net.Conn) {
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		conn.Close()
		g.wg.Done()
	}()
	br := bufio.NewReader(conn)
	var wmu sync.Mutex // responses from concurrent handlers interleave
	for {
		frame, err := readTCPFrame(br)
		if err != nil {
			return
		}
		req, err := unmarshalTCPRequest(frame)
		if err != nil {
			return
		}
		// Each call runs in its own goroutine so one slow handler does
		// not head-of-line-block the connection.
		g.wg.Add(1)
		go func(req tcpRequest) {
			defer g.wg.Done()
			caller := g.n.Client(g.hostID, req.Principal)
			resp := tcpResponse{ID: req.ID}
			ctx := context.Background()
			var sc *trace.SpanContext
			if req.TraceID != 0 {
				// The remote caller's op identity crosses into the cell, so
				// in-cell layers (stripe locks, handlers) deposit spans
				// against it and the cell tracer sees remote traffic.
				sc = &trace.SpanContext{
					OpID:    req.TraceID,
					Kind:    trace.KindOf(req.Kind),
					Attempt: uint32(req.Attempt),
				}
				ctx = trace.NewContext(ctx, sc)
			}
			payload, tr, cerr := caller.Call(ctx, req.Addr, req.Method, req.Payload)
			resp.TraceNs = tr.Ns
			resp.Spans = tr.Spans
			if cerr != nil {
				resp.Err = cerr.Error()
			} else {
				resp.OK = true
				resp.Payload = payload
			}
			if sc != nil && cerr == nil {
				if t := g.n.Tracer(); t != nil {
					t.Record(sc.OpID, sc.Kind, trace.TransportRPC, sc.Attempt+1, tr)
				}
			}
			wmu.Lock()
			defer wmu.Unlock()
			writeTCPFrame(conn, resp.marshal())
		}(req)
	}
}

// TCPClient implements Caller over a gateway connection. Safe for
// concurrent use: calls are multiplexed by id.
type TCPClient struct {
	principal string

	conn net.Conn
	wmu  sync.Mutex // serializes frame writes
	bw   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpResponse
	closed  error
}

// DialTCP connects to a gateway.
func DialTCP(gatewayAddr, principal string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", gatewayAddr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{
		principal: principal,
		conn:      conn,
		bw:        bufio.NewWriter(conn),
		pending:   make(map[uint64]chan tcpResponse),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		frame, err := readTCPFrame(br)
		if err != nil {
			c.failAll(fmt.Errorf("rpc: tcp connection lost: %w", err))
			return
		}
		resp, err := unmarshalTCPResponse(frame)
		if err != nil {
			c.failAll(fmt.Errorf("rpc: tcp protocol error: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *TCPClient) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = err
	for id, ch := range c.pending {
		ch <- tcpResponse{ID: id, Err: err.Error()}
		delete(c.pending, id)
	}
}

// Call implements Caller across the socket.
func (c *TCPClient) Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error) {
	c.mu.Lock()
	if c.closed != nil {
		err := c.closed
		c.mu.Unlock()
		return nil, fabric.OpTrace{}, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan tcpResponse, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	r := tcpRequest{ID: id, Addr: addr, Method: method, Principal: c.principal, Payload: req}
	if sc := trace.FromContext(ctx); sc != nil {
		r.TraceID = sc.OpID
		r.Kind = sc.Kind.String()
		r.Attempt = uint64(sc.Attempt)
	} else {
		// Every frame carries a trace identity so ad-hoc remote calls
		// (cmstat, scripts) are attributable inside the cell too.
		r.TraceID = id
		r.Kind = methodKind(method).String()
	}
	c.wmu.Lock()
	err := writeTCPFrame(c.bw, r.marshal())
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fabric.OpTrace{}, err
	}

	select {
	case resp := <-ch:
		tr := fabric.OpTrace{Ns: resp.TraceNs, Spans: resp.Spans}
		if !resp.OK {
			return nil, tr, mapTCPError(resp.Err)
		}
		return resp.Payload, tr, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fabric.OpTrace{}, ErrDeadlineExceeded
	}
}

// methodKind maps an RPC method name ("CliqueMap.Get") onto an op kind
// for trace attribution of ad-hoc remote calls.
func methodKind(method string) trace.Kind {
	if i := strings.LastIndexByte(method, '.'); i >= 0 {
		method = method[i+1:]
	}
	switch method {
	case "Get", "GetBatch":
		return trace.KindGet
	case "Set":
		return trace.KindSet
	case "Erase":
		return trace.KindErase
	case "Cas":
		return trace.KindCas
	}
	return trace.KindOther
}

// mapTCPError restores the framework error classes that crossed the wire
// as strings, so remote callers can errors.Is them like local ones.
func mapTCPError(msg string) error {
	for _, known := range []error{ErrUnavailable, ErrNoSuchMethod, ErrUnauthenticated, ErrDeadlineExceeded} {
		if len(msg) >= len(known.Error()) && msg[:len(known.Error())] == known.Error() {
			return fmt.Errorf("%w (remote: %s)", known, msg)
		}
	}
	return errors.New(msg)
}

package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTCPRig(t *testing.T) (*Network, *TCPGateway, *TCPClient) {
	t.Helper()
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("Echo", func(_ context.Context, _ string, req []byte) ([]byte, error) {
		return req, nil
	})
	s.Handle("Who", func(_ context.Context, principal string, _ []byte) ([]byte, error) {
		return []byte(principal), nil
	})
	g, err := ServeTCP(n, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	c, err := DialTCP(g.Addr(), "remote-user")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return n, g, c
}

func TestTCPRoundTrip(t *testing.T) {
	_, _, c := newTCPRig(t)
	resp, tr, err := c.Call(context.Background(), "b", "Echo", []byte("over-the-wire"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "over-the-wire" {
		t.Errorf("resp = %q", resp)
	}
	if tr.Ns == 0 {
		t.Error("modelled trace not propagated across the socket")
	}
}

func TestTCPPrincipalPropagates(t *testing.T) {
	_, _, c := newTCPRig(t)
	resp, _, err := c.Call(context.Background(), "b", "Who", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "remote-user" {
		t.Errorf("principal = %q", resp)
	}
}

func TestTCPErrorClassesCrossTheWire(t *testing.T) {
	_, _, c := newTCPRig(t)
	_, _, err := c.Call(context.Background(), "b", "Nope", nil)
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method over tcp: %v", err)
	}
	_, _, err = c.Call(context.Background(), "absent", "Echo", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("missing addr over tcp: %v", err)
	}
}

func TestTCPConcurrentMultiplexing(t *testing.T) {
	_, _, c := newTCPRig(t)
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := []byte(fmt.Sprintf("%d-%d", g, i))
				resp, _, err := c.Call(context.Background(), "b", "Echo", req)
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != string(req) {
					errs <- fmt.Errorf("cross-talk: sent %q got %q", req, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPAuthOverWire(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("M", func(context.Context, string, []byte) ([]byte, error) { return nil, nil })
	s.SetAuthenticator(func(principal, method string) error {
		if principal != "alice" {
			return fmt.Errorf("no")
		}
		return nil
	})
	g, err := ServeTCP(n, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	mallory, err := DialTCP(g.Addr(), "mallory")
	if err != nil {
		t.Fatal(err)
	}
	defer mallory.Close()
	if _, _, err := mallory.Call(context.Background(), "b", "M", nil); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("mallory over tcp: %v", err)
	}
	alice, err := DialTCP(g.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if _, _, err := alice.Call(context.Background(), "b", "M", nil); err != nil {
		t.Errorf("alice over tcp: %v", err)
	}
}

func TestTCPGatewayCloseFailsInflight(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	block := make(chan struct{})
	s.Handle("Slow", func(context.Context, string, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	g, err := ServeTCP(n, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(g.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Call(context.Background(), "b", "Slow", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the handler
	c.Close()                         // client-side teardown
	close(block)                      // unblock the handler so Close can reap
	g.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("in-flight call survived teardown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after teardown")
	}
}

func TestTCPContextCancel(t *testing.T) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	block := make(chan struct{})
	s.Handle("Slow", func(context.Context, string, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	g, err := ServeTCP(n, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(g.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := c.Call(ctx, "b", "Slow", nil); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("cancelled call: %v", err)
	}
	// Unblock the abandoned handler before Close, which waits for it.
	close(block)
	g.Close()
}

func BenchmarkTCPCall(b *testing.B) {
	n := newNet(nil)
	s := n.Serve("b", 1)
	s.Handle("Echo", func(_ context.Context, _ string, req []byte) ([]byte, error) { return req, nil })
	g, err := ServeTCP(n, "127.0.0.1:0", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	c, err := DialTCP(g.Addr(), "p")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := make([]byte, 256)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Call(ctx, "b", "Echo", req); err != nil {
			b.Fatal(err)
		}
	}
}

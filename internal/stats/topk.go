package stats

import (
	"sort"
	"sync"
)

// TopK is a concurrent space-saving (Metwally et al.) heavy-hitter sketch:
// the key-heat telemetry behind the health plane's hot-key detection. The
// key space is split across power-of-two shards by the caller-supplied
// hash (the backend passes the key hash it already computed on the hot
// path, so feeding the sketch costs no extra hashing); each shard is an
// independent space-saving summary of capacity k guarded by its own
// mutex, so concurrent writers only contend when they touch keys that
// hash to the same shard.
//
// Guarantees (standard space-saving, per shard, hence globally since each
// key lives in exactly one shard): every stored count over-estimates the
// key's true count by at most its Err field, and Err ≤ N/k where N is the
// total number of increments. Any key whose true count exceeds N/k is
// guaranteed to be present. Entries are identified by the caller's 64-bit
// hash, so two distinct keys that collide on all 64 bits would merge into
// one entry — counts only inflate, which space-saving already permits.
type TopK struct {
	shards []topkShard
	mask   uint64
	k      int
}

// topkShard is a flat-array space-saving summary tuned for the backend's
// mutation hot path rather than asymptotics: a hit is a hash-keyed map
// lookup plus one increment (no heap, so hits pay nothing to keep an
// ordering current), and an eviction finds the exact minimum by scanning
// the contiguous counts array, stopping at the cached floor — the
// per-shard minimum only ever grows, so in the steady churn state most
// slots sit within one increment of it and the scan ends after a couple
// of probes. Key bytes live in reusable per-slot buffers, so steady-state
// evictions allocate nothing.
type topkShard struct {
	mu     sync.Mutex
	n      uint64
	floor  uint64           // lower bound on min(counts); mins only ever grow
	idx    map[uint64]int32 // key hash -> slot
	counts []uint64         // estimated count per slot (scanned for min)
	items  []topkItem
}

type topkItem struct {
	key  []byte // reused across evictions; copied out on read
	hash uint64
	err  uint64
}

const topkShardCount = 8 // power of two

// NewTopK returns a sketch tracking up to k keys per shard. k ≤ 0 selects
// a default sized for hot-key detection.
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = 48
	}
	t := &TopK{
		shards: make([]topkShard, topkShardCount),
		mask:   topkShardCount - 1,
		k:      k,
	}
	for i := range t.shards {
		t.shards[i].idx = make(map[uint64]int32, k)
		t.shards[i].counts = make([]uint64, 0, k)
		t.shards[i].items = make([]topkItem, 0, k)
	}
	return t
}

// K returns the per-shard capacity.
func (t *TopK) K() int { return t.k }

// Touch records one access to key. h is any well-mixed hash of key — the
// same key must always arrive with the same h. The byte slice is copied
// when the key enters the summary; it is never retained.
func (t *TopK) Touch(key []byte, h uint64) {
	s := &t.shards[h&t.mask]
	s.mu.Lock()
	s.n++
	if slot, ok := s.idx[h]; ok {
		s.counts[slot]++
	} else if len(s.counts) < t.k {
		s.idx[h] = int32(len(s.counts))
		s.counts = append(s.counts, 1)
		s.items = append(s.items, topkItem{key: append([]byte(nil), key...), hash: h})
	} else {
		// Space-saving eviction: the minimum-count key yields its slot and
		// its count becomes the newcomer's over-estimate bound. The min
		// scan stops at the first slot sitting on the cached floor — in
		// the steady churn state most slots hover within one increment of
		// it, so the scan usually ends after a couple of probes.
		m, mc := 0, s.counts[0]
		for j := 0; j < len(s.counts); j++ {
			if c := s.counts[j]; c < mc || c == s.floor {
				m, mc = j, c
				if c == s.floor {
					break
				}
			}
		}
		s.floor = mc
		it := &s.items[m]
		delete(s.idx, it.hash)
		it.key = append(it.key[:0], key...)
		it.hash = h
		it.err = mc
		s.idx[h] = int32(m)
		s.counts[m] = mc + 1
	}
	s.mu.Unlock()
}

// TouchString is Touch for callers without a precomputed hash; it uses
// FNV-1a so results are deterministic across runs.
func (t *TopK) TouchString(key string) {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	t.Touch([]byte(key), h)
}

// HotKey is one tracked key with its (over-)estimated count and the bound
// on the over-estimate.
type HotKey struct {
	Key   string
	Count uint64
	Err   uint64
}

// TopN returns up to n tracked keys, hottest first. Ties break by key for
// deterministic output.
func (t *TopK) TopN(n int) []HotKey {
	var out []HotKey
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for j := range s.items {
			out = append(out, HotKey{Key: string(s.items[j].key), Count: s.counts[j], Err: s.items[j].err})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Total returns the total number of increments N the sketch has absorbed.
func (t *TopK) Total() uint64 {
	var n uint64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.n
		s.mu.Unlock()
	}
	return n
}

// Tracked returns the number of keys currently in the summary.
func (t *TopK) Tracked() int {
	var n int
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Reset empties the sketch.
func (t *TopK) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.n = 0
		s.floor = 0
		s.counts = s.counts[:0]
		s.items = s.items[:0]
		for k := range s.idx {
			delete(s.idx, k)
		}
		s.mu.Unlock()
	}
}

package stats

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestTopKErrorBound drives adversarial (uniform, high-cardinality)
// streams through the sketch and checks the space-saving guarantees
// deterministically: every reported count over-estimates the true count
// by at most its Err field, and Err ≤ N/k.
func TestTopKErrorBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		keys int
		ops  int
		k    int
		s    float64 // zipf skew; 0 = uniform
	}{
		{"uniform-small", 64, 2_000, 8, 0},
		{"uniform-large", 4096, 50_000, 32, 0},
		{"zipf-1.2", 4096, 50_000, 16, 1.2},
		{"zipf-heavy", 1024, 30_000, 8, 2.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var zipf *rand.Zipf
			if tc.s > 0 {
				zipf = rand.NewZipf(rng, tc.s, 1, uint64(tc.keys-1))
			}
			sk := NewTopK(tc.k)
			truth := make(map[string]uint64)
			for i := 0; i < tc.ops; i++ {
				var id uint64
				if zipf != nil {
					id = zipf.Uint64()
				} else {
					id = uint64(rng.Intn(tc.keys))
				}
				key := fmt.Sprintf("key-%016x", id)
				sk.TouchString(key)
				truth[key]++
			}
			if got, want := sk.Total(), uint64(tc.ops); got != want {
				t.Fatalf("Total = %d, want %d", got, want)
			}
			bound := uint64(tc.ops) / uint64(tc.k)
			for _, hk := range sk.TopN(0) {
				tr := truth[hk.Key]
				if hk.Count < tr {
					t.Errorf("key %s: count %d under-estimates true %d", hk.Key, hk.Count, tr)
				}
				if hk.Count-tr > hk.Err {
					t.Errorf("key %s: over-estimate %d exceeds Err %d", hk.Key, hk.Count-tr, hk.Err)
				}
				if hk.Err > bound {
					t.Errorf("key %s: Err %d exceeds N/k = %d", hk.Key, hk.Err, bound)
				}
			}
		})
	}
}

// TestTopKZipfRecall plants a Zipfian workload (s = 1.2, the acceptance
// skew) and asserts the true hottest keys are recalled by TopN.
func TestTopKZipfRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	sk := NewTopK(64)
	truth := make(map[string]uint64)
	const ops = 200_000
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%016x", zipf.Uint64())
		sk.TouchString(key)
		truth[key]++
	}
	// The hottest true key must rank first, and the true top-5 must all be
	// tracked with counts within the error bound.
	var hottest string
	var hotN uint64
	for k, n := range truth {
		if n > hotN || (n == hotN && k < hottest) {
			hottest, hotN = k, n
		}
	}
	top := sk.TopN(10)
	if len(top) == 0 || top[0].Key != hottest {
		t.Fatalf("TopN[0] = %+v, want hottest true key %s (count %d)", top, hottest, hotN)
	}
	tracked := make(map[string]HotKey)
	for _, hk := range sk.TopN(0) {
		tracked[hk.Key] = hk
	}
	type kv struct {
		k string
		n uint64
	}
	var all []kv
	for k, n := range truth {
		all = append(all, kv{k, n})
	}
	// Partial selection of the true top 5.
	for i := 0; i < 5; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[best].n {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		hk, ok := tracked[all[i].k]
		if !ok {
			t.Fatalf("true top-%d key %s (count %d) not tracked", i+1, all[i].k, all[i].n)
		}
		if hk.Count < all[i].n {
			t.Errorf("key %s: tracked count %d < true %d", all[i].k, hk.Count, all[i].n)
		}
	}
}

// TestTopKConcurrent hammers the sketch from many goroutines under -race
// and checks the total and bound invariants still hold.
func TestTopKConcurrent(t *testing.T) {
	sk := NewTopK(32)
	const workers = 8
	const perWorker = 20_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.3, 1, 4096)
			for i := 0; i < perWorker; i++ {
				sk.TouchString(fmt.Sprintf("key-%016x", zipf.Uint64()))
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if got, want := sk.Total(), uint64(workers*perWorker); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	bound := sk.Total() / uint64(sk.K())
	for _, hk := range sk.TopN(0) {
		if hk.Err > bound {
			t.Errorf("key %s: Err %d exceeds N/k = %d", hk.Key, hk.Err, bound)
		}
	}
	sk.Reset()
	if sk.Total() != 0 || sk.Tracked() != 0 {
		t.Fatalf("Reset left Total=%d Tracked=%d", sk.Total(), sk.Tracked())
	}
}

// Package stats provides the measurement machinery behind every figure in
// the evaluation: log-bucketed latency histograms with percentile
// extraction, monotonic counters and rates, CPU-cost accounting (the paper
// reports CPU-µs/op and CPU-ns/op extensively), and a time-series recorder
// for the longitudinal plots (Figures 8, 9, 13–17).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent log-linear histogram of non-negative values
// (typically nanoseconds). Each power-of-two range is split into 16 linear
// sub-buckets, giving ≤6.25% relative error on percentile reads — plenty
// for latency distributions spanning 1µs to 10s.
type Histogram struct {
	counts [64 * 16]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

func bucketOf(v uint64) int {
	if v < 16 {
		return int(v) // first 16 values are exact
	}
	exp := 63 - bits.LeadingZeros64(v)
	frac := (v >> (uint(exp) - 4)) & 0xf
	return exp*16 + int(frac)
}

func bucketLower(b int) uint64 {
	if b < 16 {
		return uint64(b)
	}
	exp := b / 16
	frac := uint64(b % 16)
	return (1 << uint(exp)) | (frac << (uint(exp) - 4))
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// RecordDuration adds one latency observation.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(uint64(max64(0, d.Nanoseconds()))) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Percentile returns the approximate p-th percentile (0 < p ≤ 100).
func (h *Histogram) Percentile(p float64) uint64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b].Load()
		if cum >= rank {
			return bucketLower(b)
		}
	}
	return h.max.Load()
}

// Quantiles returns several percentiles at once.
func (h *Histogram) Quantiles(ps ...float64) []uint64 {
	out := make([]uint64, len(ps))
	for i, p := range ps {
		out[i] = h.Percentile(p)
	}
	return out
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot returns a point-in-time copy for consistent multi-percentile
// reads.
func (h *Histogram) Snapshot() *Histogram {
	s := &Histogram{}
	var tot, sum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i].Store(c)
		tot += c
		sum += c * bucketLower(i)
	}
	s.total.Store(tot)
	s.sum.Store(h.sum.Load())
	s.max.Store(h.max.Load())
	return s
}

// NumBuckets is the bucket-array size of Histogram; wire consumers use it
// to bound decoded bucket indices.
const NumBuckets = 64 * 16

// HistBucket is one occupied bucket of a Histogram — the sparse form a
// histogram travels in on the wire, so remote aggregators can merge true
// distributions instead of averaging quantiles.
type HistBucket struct {
	Index uint32
	Count uint64
}

// Buckets returns the occupied buckets in index order. Latency
// distributions occupy a few dozen of the 1024 buckets, so the sparse
// form is what the wire wants.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			out = append(out, HistBucket{Index: uint32(i), Count: c})
		}
	}
	return out
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// AddBuckets folds pre-bucketed counts into h — the receive side of the
// wire form. sum and max carry the exact aggregates alongside (bucket
// lower bounds alone would bias the mean down and lose the true max).
// Out-of-range indices are dropped.
func (h *Histogram) AddBuckets(bs []HistBucket, sum, max uint64) {
	var n uint64
	for _, b := range bs {
		if int(b.Index) >= len(h.counts) {
			continue
		}
		h.counts[b.Index].Add(b.Count)
		n += b.Count
	}
	h.total.Add(n)
	h.sum.Add(sum)
	for {
		m := h.max.Load()
		if max <= m || h.max.CompareAndSwap(m, max) {
			break
		}
	}
}

// Merge adds every observation in o into h. Percentile reads of the
// merged histogram equal those over the union of both observation sets
// (within bucket resolution). o should be a quiescent snapshot; h may be
// live.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		m := h.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			break
		}
	}
}

// Counter is a monotonic event counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CPUAccount accumulates simulated CPU time per named component, matching
// the paper's CPU-cost reporting (e.g. Figure 7's per-component CPU-ns/op
// and Figure 19's backend CPU*s/s). Charging is lock-free: every RPC
// handler bills CPU here, so a mutex would re-serialize the concurrent
// dispatch path.
type CPUAccount struct {
	accounts sync.Map // component name -> *cpuBucket
}

type cpuBucket struct {
	nanos atomic.Uint64
	ops   atomic.Uint64
}

// NewCPUAccount returns an empty account.
func NewCPUAccount() *CPUAccount {
	return &CPUAccount{}
}

func (a *CPUAccount) bucket(component string) *cpuBucket {
	if b, ok := a.accounts.Load(component); ok {
		return b.(*cpuBucket)
	}
	b, _ := a.accounts.LoadOrStore(component, &cpuBucket{})
	return b.(*cpuBucket)
}

// Charge bills ns nanoseconds of CPU to component for one op.
func (a *CPUAccount) Charge(component string, ns uint64) {
	b := a.bucket(component)
	b.nanos.Add(ns)
	b.ops.Add(1)
}

// ChargeOnly bills CPU without counting an op (for per-byte costs folded
// into an op already counted).
func (a *CPUAccount) ChargeOnly(component string, ns uint64) {
	a.bucket(component).nanos.Add(ns)
}

// Meter is a pre-resolved charging handle for one component. The RPC
// framework bills two components on every call; holding a Meter skips the
// per-call name lookup. The zero Meter discards charges, so callers with an
// optional account can charge unconditionally.
type Meter struct {
	b *cpuBucket
}

// Meter returns a charging handle for component.
func (a *CPUAccount) Meter(component string) Meter {
	return Meter{b: a.bucket(component)}
}

// Charge bills ns nanoseconds of CPU for one op.
func (m Meter) Charge(ns uint64) {
	if m.b != nil {
		m.b.nanos.Add(ns)
		m.b.ops.Add(1)
	}
}

// ChargeOnly bills CPU without counting an op.
func (m Meter) ChargeOnly(ns uint64) {
	if m.b != nil {
		m.b.nanos.Add(ns)
	}
}

// TotalNanos returns total CPU-ns billed to component.
func (a *CPUAccount) TotalNanos(component string) uint64 {
	if b, ok := a.accounts.Load(component); ok {
		return b.(*cpuBucket).nanos.Load()
	}
	return 0
}

// OpCount returns the ops billed to component via Charge.
func (a *CPUAccount) OpCount(component string) uint64 {
	if b, ok := a.accounts.Load(component); ok {
		return b.(*cpuBucket).ops.Load()
	}
	return 0
}

// PerOpNanos returns mean CPU-ns per op for component.
func (a *CPUAccount) PerOpNanos(component string) float64 {
	b, ok := a.accounts.Load(component)
	if !ok {
		return 0
	}
	cb := b.(*cpuBucket)
	ops := cb.ops.Load()
	if ops == 0 {
		return 0
	}
	return float64(cb.nanos.Load()) / float64(ops)
}

// Components lists billed components in sorted order.
func (a *CPUAccount) Components() []string {
	var out []string
	a.accounts.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// GrandTotalNanos sums CPU across all components.
func (a *CPUAccount) GrandTotalNanos() uint64 {
	var t uint64
	a.accounts.Range(func(_, v any) bool {
		t += v.(*cpuBucket).nanos.Load()
		return true
	})
	return t
}

// Point is one sample in a time series.
type Point struct {
	T time.Duration // offset from series start (simulated)
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// TimeSeries records multiple named series, used to regenerate the
// longitudinal figures.
type TimeSeries struct {
	mu     sync.Mutex
	series map[string]*Series
	order  []string
}

// NewTimeSeries returns an empty recorder.
func NewTimeSeries() *TimeSeries {
	return &TimeSeries{series: make(map[string]*Series)}
}

// Record appends a sample to the named series.
func (ts *TimeSeries) Record(name string, t time.Duration, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s, ok := ts.series[name]
	if !ok {
		s = &Series{Name: name}
		ts.series[name] = s
		ts.order = append(ts.order, name)
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Get returns the named series, or nil.
func (ts *TimeSeries) Get(name string) *Series {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.series[name]
}

// Names returns series names in insertion order.
func (ts *TimeSeries) Names() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]string(nil), ts.order...)
}

// FormatNanos renders a nanosecond quantity the way the paper labels its
// axes (µs for latencies).
func FormatNanos(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(100); got != 15 {
		t.Errorf("p100 = %d, want 15", got)
	}
	if got := h.Percentile(1); got != 0 {
		t.Errorf("p1 = %d, want 0", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 100000)
	for i := range vals {
		v := uint64(rng.ExpFloat64() * 50000) // exponential latencies ~50µs
		vals[i] = v
		h.Record(v)
	}
	// Compare against exact percentiles.
	sorted := append([]uint64(nil), vals...)
	sortU64(sorted)
	for _, p := range []float64{50, 90, 99, 99.9} {
		idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
		exact := sorted[idx]
		got := h.Percentile(p)
		if exact == 0 {
			continue
		}
		rel := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if rel > 0.10 {
			t.Errorf("p%g = %d, exact %d (rel err %.1f%%)", p, got, exact, rel*100)
		}
	}
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		var h Histogram
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			h.Record(uint64(rng.Intn(1 << 20)))
		}
		prev := uint64(0)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const g, per = 8, 10000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Record(uint64(i*per + j))
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != g*per {
		t.Errorf("count = %d, want %d", h.Count(), g*per)
	}
	if h.Max() != g*per-1 {
		t.Errorf("max = %d", h.Max())
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30} {
		h.Record(v)
	}
	if got := h.Mean(); got != 20 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramResetAndSnapshot(t *testing.T) {
	var h Histogram
	h.Record(100)
	snap := h.Snapshot()
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset did not clear")
	}
	if snap.Count() != 1 {
		t.Error("snapshot affected by reset")
	}
	if snap.Percentile(50) == 0 {
		t.Error("snapshot lost data")
	}
}

func TestHistogramEmptyPercentile(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must read 0")
	}
}

func TestRecordDurationNegativeClamped(t *testing.T) {
	var h Histogram
	h.RecordDuration(-5 * time.Second)
	if h.Max() != 0 {
		t.Error("negative duration not clamped")
	}
}

func TestBucketBoundsProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := bucketOf(v)
		lo := bucketLower(b)
		if v < 16 {
			return lo == v
		}
		// Bucket lower bound must not exceed v, and must be within 6.25%.
		return lo <= v && float64(v-lo)/float64(v) <= 0.0625+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 4005 {
		t.Errorf("counter = %d", c.Value())
	}
}

func TestCPUAccount(t *testing.T) {
	a := NewCPUAccount()
	a.Charge("client", 1000)
	a.Charge("client", 3000)
	a.Charge("pony", 500)
	a.ChargeOnly("pony", 100)
	if got := a.PerOpNanos("client"); got != 2000 {
		t.Errorf("client per-op = %v", got)
	}
	if got := a.TotalNanos("pony"); got != 600 {
		t.Errorf("pony total = %v", got)
	}
	if got := a.PerOpNanos("pony"); got != 600 {
		t.Errorf("pony per-op = %v (ChargeOnly must not add an op)", got)
	}
	comps := a.Components()
	if len(comps) != 2 || comps[0] != "client" || comps[1] != "pony" {
		t.Errorf("components = %v", comps)
	}
	if a.GrandTotalNanos() != 4600 {
		t.Errorf("grand total = %d", a.GrandTotalNanos())
	}
	if a.PerOpNanos("absent") != 0 {
		t.Error("absent component should read 0")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries()
	ts.Record("p50", time.Second, 10)
	ts.Record("p99", time.Second, 50)
	ts.Record("p50", 2*time.Second, 12)
	if names := ts.Names(); len(names) != 2 || names[0] != "p50" {
		t.Errorf("names = %v", names)
	}
	s := ts.Get("p50")
	if len(s.Points) != 2 || s.Points[1].V != 12 {
		t.Errorf("p50 series = %+v", s)
	}
	if ts.Get("nope") != nil {
		t.Error("missing series should be nil")
	}
}

func TestFormatNanos(t *testing.T) {
	cases := map[uint64]string{
		500:        "500ns",
		1500:       "1.5us",
		2500000:    "2.5ms",
		3000000000: "3.00s",
	}
	for in, want := range cases {
		if got := FormatNanos(in); got != want {
			t.Errorf("FormatNanos(%d) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(12345)
		for pb.Next() {
			h.Record(v)
			v = v*1103515245 + 12345
		}
	})
}

// The histogram's contract: ≤6.25% relative error on percentile reads
// (16 linear sub-buckets per octave), over the full latency range the
// system produces — sub-µs RMA legs to multi-second stalls.
func TestHistogramPercentileErrorBoundOverLatencyRange(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) uint64{
		"exp-10us":  func(r *rand.Rand) uint64 { return uint64(r.ExpFloat64() * 10_000) },
		"exp-100ms": func(r *rand.Rand) uint64 { return uint64(r.ExpFloat64() * 100_000_000) },
		"log-uniform-1us-10s": func(r *rand.Rand) uint64 {
			// 10^3 .. 10^10 ns, uniform in log space.
			return uint64(math.Pow(10, 3+7*r.Float64()))
		},
		"bimodal-1us-10s": func(r *rand.Rand) uint64 {
			if r.Intn(100) < 99 {
				return 1_000 + uint64(r.Intn(500))
			}
			return 10_000_000_000 + uint64(r.Intn(1_000_000))
		},
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			rng := rand.New(rand.NewSource(42))
			vals := make([]uint64, 50_000)
			for i := range vals {
				vals[i] = gen(rng)
				h.Record(vals[i])
			}
			sorted := append([]uint64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, p := range []float64{10, 50, 90, 99, 99.9, 100} {
				idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
				exact := sorted[idx]
				got := h.Percentile(p)
				if exact == 0 {
					continue
				}
				if got > exact {
					t.Errorf("p%g = %d > exact %d: bucket lower bound must not exceed the value", p, got, exact)
				}
				rel := (float64(exact) - float64(got)) / float64(exact)
				if rel > 0.0625+1e-9 {
					t.Errorf("p%g = %d, exact %d: rel err %.2f%% > 6.25%%", p, got, exact, rel*100)
				}
			}
		})
	}
}

// Sharded histograms merged into one must read identically to a single
// histogram fed the same observations — the Debug RPC aggregates per-cell
// histograms this way.
func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ref Histogram
	shards := make([]Histogram, 4)
	for i := 0; i < 20_000; i++ {
		v := uint64(rng.ExpFloat64() * 75_000)
		ref.Record(v)
		shards[i%len(shards)].Record(v)
	}
	var merged Histogram
	for i := range shards {
		merged.Merge(shards[i].Snapshot())
	}
	if merged.Count() != ref.Count() {
		t.Fatalf("merged count = %d, ref %d", merged.Count(), ref.Count())
	}
	if merged.Max() != ref.Max() {
		t.Fatalf("merged max = %d, ref %d", merged.Max(), ref.Max())
	}
	for _, p := range []float64{1, 25, 50, 75, 90, 99, 99.9, 100} {
		if m, r := merged.Percentile(p), ref.Percentile(p); m != r {
			t.Errorf("p%g: merged %d != ref %d", p, m, r)
		}
	}
}

// Snapshot and Merge against a live, concurrently-written histogram must
// stay internally consistent: monotone non-decreasing counts, percentiles
// within observed bounds, and no torn totals.
func TestHistogramSnapshotMergeUnderConcurrentRecord(t *testing.T) {
	var h Histogram
	const writers, per = 4, 50_000
	const maxVal = 1 << 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < per; j++ {
				h.Record(uint64(rng.Intn(maxVal)))
			}
		}(int64(i))
	}

	readerErrs := make(chan error, 1)
	go func() {
		defer close(readerErrs)
		var prevCount uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			// Snapshot totals are recomputed from bucket counts, so the
			// snapshot is self-consistent even while writers race.
			var sum uint64
			for b := range snap.counts {
				sum += snap.counts[b].Load()
			}
			if sum != snap.Count() {
				readerErrs <- fmt.Errorf("torn snapshot: bucket sum %d != count %d", sum, snap.Count())
				return
			}
			if snap.Count() < prevCount {
				readerErrs <- fmt.Errorf("count went backwards: %d -> %d", prevCount, snap.Count())
				return
			}
			prevCount = snap.Count()
			var agg Histogram
			agg.Merge(snap)
			if agg.Count() != snap.Count() {
				readerErrs <- fmt.Errorf("merge changed count: %d != %d", agg.Count(), snap.Count())
				return
			}
			if p := agg.Percentile(99); p > maxVal {
				readerErrs <- fmt.Errorf("p99 %d beyond any recorded value", p)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-readerErrs; err != nil {
		t.Fatal(err)
	}
	if h.Count() != writers*per {
		t.Fatalf("final count = %d, want %d", h.Count(), writers*per)
	}
}

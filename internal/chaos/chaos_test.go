package chaos

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// fakeSurface is an in-memory Surface that records every injection so
// tests can assert the engine heals exactly what it fires.
type fakeSurface struct {
	mu       sync.Mutex
	shards   int
	crashed      map[int]bool
	restarts     int
	warmRestarts int
	failRate map[int]float64
	delay    map[int]uint64
	isolated  map[int]bool
	linkLoss  map[int]float64
	stale     bool
	corrupts  int
	maintains int
}

func newFakeSurface(shards int) *fakeSurface {
	return &fakeSurface{
		shards:   shards,
		crashed:  make(map[int]bool),
		failRate: make(map[int]float64),
		delay:    make(map[int]uint64),
		isolated: make(map[int]bool),
		linkLoss: make(map[int]float64),
	}
}

func (f *fakeSurface) Shards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards
}

func (f *fakeSurface) Crash(shard int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed[shard] = true
}

func (f *fakeSurface) Restart(_ context.Context, shard int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed[shard] {
		return fmt.Errorf("restart of shard %d that is not crashed", shard)
	}
	delete(f.crashed, shard)
	f.restarts++
	return nil
}

func (f *fakeSurface) RestartWarm(_ context.Context, shard int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed[shard] {
		return fmt.Errorf("warm restart of shard %d that is not crashed", shard)
	}
	delete(f.crashed, shard)
	f.warmRestarts++
	return nil
}

func (f *fakeSurface) SetRPCFailRate(shard int, rate float64, _ int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rate == 0 {
		delete(f.failRate, shard)
		return
	}
	f.failRate[shard] = rate
}

func (f *fakeSurface) SetEngineDelay(shard int, ns uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ns == 0 {
		delete(f.delay, shard)
		return
	}
	f.delay[shard] = ns
}

func (f *fakeSurface) PartitionShard(shard int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.isolated[shard] = true
}

func (f *fakeSurface) SetShardLinkLoss(shard int, loss float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if loss == 0 {
		delete(f.linkLoss, shard)
		return
	}
	f.linkLoss[shard] = loss
}

func (f *fakeSurface) HealPartitions() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.isolated = make(map[int]bool)
	f.linkLoss = make(map[int]float64)
}

func (f *fakeSurface) CorruptData(_ int, n int, _ uint64) [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupts += n
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("fake-%d", i))
	}
	return keys
}

func (f *fakeSurface) SetConfigStale(stale bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stale = stale
}

func (f *fakeSurface) MaintainShard(_ context.Context, shard int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed[shard] {
		return fmt.Errorf("maintenance on crashed shard %d", shard)
	}
	f.maintains++
	return nil
}

func (f *fakeSurface) ResizeTo(_ context.Context, shards int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if shards < 1 {
		return fmt.Errorf("resize to %d shards", shards)
	}
	f.shards = shards
	return nil
}

// healedExcept reports the first residual injection, ignoring the named
// hazards (corruption has no heal, by design).
func (f *fakeSurface) residual() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.crashed) > 0 {
		return fmt.Sprintf("crashed shards: %v", f.crashed)
	}
	if len(f.failRate) > 0 {
		return fmt.Sprintf("rpc fail rates: %v", f.failRate)
	}
	if len(f.delay) > 0 {
		return fmt.Sprintf("engine delays: %v", f.delay)
	}
	if len(f.isolated) > 0 {
		return fmt.Sprintf("partitions: %v", f.isolated)
	}
	if len(f.linkLoss) > 0 {
		return fmt.Sprintf("link loss: %v", f.linkLoss)
	}
	if f.stale {
		return "config store still stale"
	}
	return ""
}

var _ Surface = (*fakeSurface)(nil)

// TestPresetDeterminism: a schedule is a pure function of (preset, seed,
// shards). Same inputs produce byte-identical schedules; a different seed
// produces a different one (asserted on corruption-soak, whose events
// embed per-event seeds, so distinct seeds cannot collide).
func TestPresetDeterminism(t *testing.T) {
	for _, name := range Presets() {
		for _, shards := range []int{1, 3, 5} {
			a, err := Preset(name, 42, shards)
			if err != nil {
				t.Fatalf("Preset(%q, 42, %d): %v", name, shards, err)
			}
			b, err := Preset(name, 42, shards)
			if err != nil {
				t.Fatalf("Preset(%q, 42, %d) second call: %v", name, shards, err)
			}
			if a.String() != b.String() {
				t.Errorf("%s/%d: same seed produced different schedules:\n%s\nvs\n%s",
					name, shards, a.String(), b.String())
			}
		}
	}
	a, _ := Preset("corruption-soak", 1, 3)
	b, _ := Preset("corruption-soak", 2, 3)
	if a.String() == b.String() {
		t.Errorf("corruption-soak: seeds 1 and 2 produced identical schedules:\n%s", a.String())
	}
}

// TestPresetValidity: every preset builds well-formed schedules — events
// land inside the step window, targets are in range, heals come after
// fires — and bad inputs are rejected.
func TestPresetValidity(t *testing.T) {
	for _, name := range Presets() {
		for _, shards := range []int{1, 2, 3, 7} {
			s, err := Preset(name, 7, shards)
			if err != nil {
				t.Fatalf("Preset(%q, 7, %d): %v", name, shards, err)
			}
			if len(s.Events) == 0 {
				t.Errorf("%s/%d: empty schedule", name, shards)
			}
			for _, ev := range s.Events {
				if ev.Step < 0 || ev.Step >= s.Steps {
					t.Errorf("%s/%d: event %s outside step window [0,%d)", name, shards, ev, s.Steps)
				}
				if ev.Shard < -1 || ev.Shard >= shards {
					t.Errorf("%s/%d: event %s targets shard out of range", name, shards, ev)
				}
				if ev.Heal != -1 && ev.Heal <= ev.Step {
					t.Errorf("%s/%d: event %s heals at or before its fire step", name, shards, ev)
				}
			}
		}
	}
	if _, err := Preset("no-such-preset", 1, 3); err == nil {
		t.Error("unknown preset did not error")
	}
	if _, err := Preset("brownout", 1, 0); err == nil {
		t.Error("zero shards did not error")
	}
}

// TestEngineRunAllHeals: for every preset, running the schedule to
// completion leaves the surface fully healed — every injection the engine
// fired was paired with its heal (corruption aside: bit flips have no
// heal; repair is the client/backend's job and is asserted in the root
// package's soak tests).
func TestEngineRunAllHeals(t *testing.T) {
	for _, name := range Presets() {
		for _, shards := range []int{1, 3} {
			sched, err := Preset(name, 11, shards)
			if err != nil {
				t.Fatalf("Preset(%q): %v", name, err)
			}
			sur := newFakeSurface(shards)
			eng := NewEngine(sched, sur)
			if err := eng.RunAll(context.Background()); err != nil {
				t.Fatalf("%s/%d: RunAll: %v", name, shards, err)
			}
			if !eng.Done() {
				t.Errorf("%s/%d: engine not Done after RunAll", name, shards)
			}
			if res := sur.residual(); res != "" {
				t.Errorf("%s/%d: surface not healed after RunAll: %s", name, shards, res)
			}
		}
	}
}

// TestEngineRollingCrashRestarts: the rolling-crash preset must crash
// every shard exactly once and restart each before the next crash (the
// fake errors on restarting a live shard, so ordering bugs surface as
// RunAll errors).
func TestEngineRollingCrashRestarts(t *testing.T) {
	const shards = 4
	sched, err := Preset("rolling-crash", 3, shards)
	if err != nil {
		t.Fatal(err)
	}
	sur := newFakeSurface(shards)
	eng := NewEngine(sched, sur)
	if err := eng.RunAll(context.Background()); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if sur.restarts != shards {
		t.Errorf("restarts = %d, want %d (one per shard)", sur.restarts, shards)
	}
	c := eng.Counters()
	if c[HazardCrash.String()] != shards {
		t.Errorf("crash counter = %d, want %d", c[HazardCrash.String()], shards)
	}
	if c[HazardRestart.String()] != shards {
		t.Errorf("restart counter = %d, want %d", c[HazardRestart.String()], shards)
	}
}

// TestEngineMaintenanceStorm: the maintenance-storm preset must run
// several full maintenance cycles, grow the cell, and shrink it back to
// its original shard count — control-plane churn is a round trip, not a
// leftover fault.
func TestEngineMaintenanceStorm(t *testing.T) {
	const shards = 3
	sched, err := Preset("maintenance-storm", 17, shards)
	if err != nil {
		t.Fatal(err)
	}
	sur := newFakeSurface(shards)
	eng := NewEngine(sched, sur)
	if err := eng.RunAll(context.Background()); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if sur.Shards() != shards {
		t.Errorf("shard count = %d after storm, want %d (shrink-back missing)", sur.Shards(), shards)
	}
	if sur.maintains < 3 {
		t.Errorf("maintains = %d, want >= 3", sur.maintains)
	}
	c := eng.Counters()
	if c[HazardResize.String()] != 2 {
		t.Errorf("resize counter = %d, want 2 (grow + shrink)", c[HazardResize.String()])
	}
	if res := sur.residual(); res != "" {
		t.Errorf("residual fault after storm: %s", res)
	}
}

// TestEngineStepwise drives the brownout preset one step at a time and
// checks the fire/heal lifecycle: injections appear at their scheduled
// step, persist until their heal step, then vanish; Done flips only after
// the last step with no pending heals.
func TestEngineStepwise(t *testing.T) {
	const shards = 3
	sched, err := Preset("brownout", 9, shards)
	if err != nil {
		t.Fatal(err)
	}
	// The brownout preset fires an RPC fail-rate (cell-wide) and one
	// shard's engine delay at step 1, healing both at step 6.
	sur := newFakeSurface(shards)
	eng := NewEngine(sched, sur)
	ctx := context.Background()

	injected := false
	for !eng.Done() {
		if _, err := eng.Step(ctx); err != nil {
			t.Fatalf("step %d: %v", eng.StepN(), err)
		}
		step := eng.StepN()
		sur.mu.Lock()
		haveFail := len(sur.failRate) > 0
		haveDelay := len(sur.delay) > 0
		sur.mu.Unlock()
		switch {
		case step >= 1 && step < 6:
			if !haveFail || !haveDelay {
				t.Fatalf("step %d: brownout not in effect (failRate=%v delay=%v)", step, haveFail, haveDelay)
			}
			injected = true
		case step >= 6:
			if haveFail || haveDelay {
				t.Fatalf("step %d: brownout not healed (failRate=%v delay=%v)", step, haveFail, haveDelay)
			}
		}
	}
	if !injected {
		t.Fatal("schedule never injected the brownout")
	}
	if res := sur.residual(); res != "" {
		t.Fatalf("surface not healed at Done: %s", res)
	}
	// Idempotent: stepping a Done engine is a no-op, and HealAll on a
	// healed surface changes nothing.
	if _, err := eng.Step(ctx); err != nil {
		t.Fatalf("step after Done: %v", err)
	}
	if err := eng.HealAll(ctx); err != nil {
		t.Fatalf("HealAll after Done: %v", err)
	}
	if res := sur.residual(); res != "" {
		t.Fatalf("HealAll disturbed a healed surface: %s", res)
	}
}

// TestEngineHealAllMidFault: abandoning a schedule mid-fault (the cmcell
// path when the workload ends early) must still heal everything pending.
func TestEngineHealAllMidFault(t *testing.T) {
	const shards = 3
	for _, name := range Presets() {
		sched, err := Preset(name, 5, shards)
		if err != nil {
			t.Fatal(err)
		}
		sur := newFakeSurface(shards)
		eng := NewEngine(sched, sur)
		ctx := context.Background()
		// Step just past the first fire, then bail out.
		for i := 0; i < 2 && !eng.Done(); i++ {
			if _, err := eng.Step(ctx); err != nil {
				t.Fatalf("%s: step: %v", name, err)
			}
		}
		if err := eng.HealAll(ctx); err != nil {
			t.Fatalf("%s: HealAll: %v", name, err)
		}
		if res := sur.residual(); res != "" {
			t.Errorf("%s: residual fault after HealAll: %s", name, res)
		}
	}
}

// TestPlaneCounters: every injection routed through the plane increments
// exactly its hazard counter, and Counters omits hazards never fired.
func TestPlaneCounters(t *testing.T) {
	sur := newFakeSurface(3)
	p := NewPlane(sur, 1)
	ctx := context.Background()

	p.Crash(0)
	if err := p.Restart(ctx, 0); err != nil {
		t.Fatal(err)
	}
	p.RPCFailRate(1, 0.5)
	p.RPCFailRate(1, 0) // heal — counts as heal, not rpc-fail
	p.Brownout(2, 1000)
	p.Brownout(2, 0)
	p.Partition(1)
	p.LinkLoss(2, 0.25)
	p.HealPartitions()
	p.Corrupt(0, 3)
	p.ConfigStale(true)
	p.ConfigStale(false)

	got := p.Counters()
	want := map[string]uint64{
		HazardCrash.String():       1,
		HazardRestart.String():     1,
		HazardRPCFail.String():     1,
		HazardBrownout.String():    1,
		HazardPartition.String():   1,
		HazardLinkLoss.String():    1,
		HazardCorruption.String():  1,
		HazardConfigStale.String(): 1,
		HazardHeal.String():        5, // rpc heal, brownout heal, partitions, stale unpin... and restart path heals
	}
	// Heal accounting differs by implementation detail; assert presence
	// and exact counts for the unambiguous hazards, and that heal > 0.
	for name, n := range want {
		if name == HazardHeal.String() {
			continue
		}
		if got[name] != n {
			t.Errorf("counter %s = %d, want %d (all: %v)", name, got[name], n, got)
		}
	}
	if got[HazardHeal.String()] == 0 {
		t.Errorf("no heal events counted: %v", got)
	}
	if res := sur.residual(); res != "" {
		t.Errorf("surface not healed: %s", res)
	}
}

// TestScheduleString: the human-readable schedule dump is the determinism
// witness used by tests and ops — it must mention the preset name, seed,
// and every event's hazard.
func TestScheduleString(t *testing.T) {
	s, err := Preset("partition-heal", 123, 3)
	if err != nil {
		t.Fatal(err)
	}
	dump := s.String()
	for _, want := range []string{"partition-heal", "123", HazardPartition.String()} {
		if !contains(dump, want) {
			t.Errorf("schedule dump missing %q:\n%s", want, dump)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Package chaos is CliqueMap's unified fault-injection plane: one seeded
// registry through which every hazard class the system defends against is
// injected, scheduled, counted, and healed.
//
// The paper's §5.4 catalogues the hazards production surfaced — transient
// RPC failures, dirty quorums from crashed or migrating backends, torn and
// corrupt reads caught by checksum self-validation (§3) — and leans on
// client-side retries as the universal handler. Besta & Hoefler's fault-
// tolerance work for RMA programming models argues such systems need an
// explicit, systematic fault model precisely because one-sided reads
// bypass the server software that would otherwise detect failure; Aguilera
// et al. show correctness under RDMA failures hinges on adversarially
// scheduled partitions and crashes. This package is that fault model made
// executable:
//
//   - Hazard taxonomy: crash/restart, network partition, asymmetric
//     packet loss, transient RPC failure rates, NIC-engine brownouts,
//     registered-memory bit corruption, config-store staleness, and
//     control-plane churn (planned-maintenance handoffs, online resize).
//   - Plane: the single front door that applies any hazard through a
//     Surface (implemented by the cell), deriving every actuator's seed
//     from one master seed and tallying injections into hazard counters
//     (mirrored to the cell tracer for cmstat / Prometheus).
//   - Schedule: a deterministic event list — a pure function of
//     (preset, seed, shards) — with per-event auto-heal steps.
//   - Engine: applies a schedule step by step from a test or cmcell's
//     workload loop, and can force-heal everything outstanding so soak
//     oracles can assert post-fault convergence.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"cliquemap/internal/trace"
)

// Hazard enumerates the injectable fault classes.
type Hazard uint8

const (
	HazardCrash Hazard = iota
	HazardRestart
	HazardPartition
	HazardLinkLoss
	HazardRPCFail
	HazardBrownout
	HazardCorruption
	HazardConfigStale
	HazardMaintain
	HazardResize
	HazardHeal
	HazardRestartWarm
	numHazards
)

// String names the hazard for counters and schedule dumps.
func (h Hazard) String() string {
	switch h {
	case HazardCrash:
		return "crash"
	case HazardRestart:
		return "restart"
	case HazardPartition:
		return "partition"
	case HazardLinkLoss:
		return "link-loss"
	case HazardRPCFail:
		return "rpc-fail"
	case HazardBrownout:
		return "brownout"
	case HazardCorruption:
		return "corruption"
	case HazardConfigStale:
		return "config-stale"
	case HazardMaintain:
		return "maintain"
	case HazardResize:
		return "resize"
	case HazardHeal:
		return "heal"
	case HazardRestartWarm:
		return "restart-warm"
	}
	return fmt.Sprintf("hazard-%d", uint8(h))
}

// Surface is what the plane drives — implemented by the cell. Methods use
// only basic types so the plane stays import-cycle-free of core packages.
type Surface interface {
	// Shards returns the logical shard count (targets are 0..Shards-1).
	Shards() int
	// Crash kills shard's backend task (server stops, NICs down).
	Crash(shard int)
	// Restart brings shard's backend back empty and kicks off repair.
	Restart(ctx context.Context, shard int) error
	// RestartWarm brings shard's backend back recovered from its durable
	// checkpoint + journal (falling back to a cold start when the cell
	// has no data directory) and runs the self-validation rejoin.
	RestartWarm(ctx context.Context, shard int) error
	// SetRPCFailRate makes shard's server fail the given fraction of calls
	// transiently; rate 0 heals.
	SetRPCFailRate(shard int, rate float64, seed int64)
	// SetEngineDelay injects ns of NIC-engine service delay on shard's
	// host (pony + 1RMA + RPC handler cost); 0 heals.
	SetEngineDelay(shard int, ns uint64)
	// PartitionShard cuts shard's host off from every other host.
	PartitionShard(shard int)
	// SetShardLinkLoss applies fractional symmetric packet loss between
	// shard's host and the rest of the cell; 0 heals that shard's links.
	SetShardLinkLoss(shard int, loss float64)
	// HealPartitions removes every partition and loss rule.
	HealPartitions()
	// CorruptData flips one bit in up to n live entries on shard's
	// backend, returning the damaged keys.
	CorruptData(shard int, n int, seed uint64) [][]byte
	// SetConfigStale pins (true) or unpins (false) the config store's
	// read snapshot.
	SetConfigStale(stale bool)
	// MaintainShard runs one full planned-maintenance cycle on shard —
	// migrate to a warm spare, then hand back — the §6.1 control-plane
	// churn that opens handoff windows.
	MaintainShard(ctx context.Context, shard int) error
	// ResizeTo changes the cell's logical shard count online (two-epoch
	// handoff). Unlike the fault hazards it is a deliberate state change:
	// there is no heal, a later event resizes back instead.
	ResizeTo(ctx context.Context, shards int) error
}

// Plane is the unified fault-injection front door. Every injection —
// scheduled by an Engine or invoked directly — goes through one of its
// methods, which derive per-actuator seeds from the master seed, count
// the hazard, and mirror the count into the cell tracer when attached.
type Plane struct {
	sur    Surface
	seed   uint64
	subSeq atomic.Uint64
	tracer atomic.Pointer[trace.Tracer]

	counters [numHazards]atomic.Uint64
}

// NewPlane binds a plane to a surface under one master seed.
func NewPlane(sur Surface, seed uint64) *Plane {
	if seed == 0 {
		seed = 1
	}
	return &Plane{sur: sur, seed: seed}
}

// SetTracer mirrors hazard counts into t (for cmstat / Prometheus).
func (p *Plane) SetTracer(t *trace.Tracer) { p.tracer.Store(t) }

// Seed returns the master seed.
func (p *Plane) Seed() uint64 { return p.seed }

// subSeed derives a fresh deterministic actuator seed from the master
// seed (splitmix64 over an injection sequence number).
func (p *Plane) subSeed() uint64 {
	z := p.seed + p.subSeq.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *Plane) note(h Hazard) {
	p.counters[h].Add(1)
	if t := p.tracer.Load(); t != nil {
		t.HazardInc(h.String(), 1)
	}
}

// Counters returns the cumulative injection count per hazard name.
func (p *Plane) Counters() map[string]uint64 {
	out := make(map[string]uint64, numHazards)
	for h := Hazard(0); h < numHazards; h++ {
		if n := p.counters[h].Load(); n > 0 {
			out[h.String()] = n
		}
	}
	return out
}

// Crash kills shard's backend.
func (p *Plane) Crash(shard int) {
	p.note(HazardCrash)
	p.sur.Crash(shard)
}

// Restart revives shard's backend and triggers cohort repair.
func (p *Plane) Restart(ctx context.Context, shard int) error {
	p.note(HazardRestart)
	return p.sur.Restart(ctx, shard)
}

// RestartWarm revives shard's backend from its durable state (cold when
// none) and triggers the self-validation rejoin.
func (p *Plane) RestartWarm(ctx context.Context, shard int) error {
	p.note(HazardRestartWarm)
	return p.sur.RestartWarm(ctx, shard)
}

// RPCFailRate injects transient call failures at shard; rate 0 heals.
func (p *Plane) RPCFailRate(shard int, rate float64) {
	if rate > 0 {
		p.note(HazardRPCFail)
		p.sur.SetRPCFailRate(shard, rate, int64(p.subSeed()))
		return
	}
	p.note(HazardHeal)
	p.sur.SetRPCFailRate(shard, 0, 0)
}

// Brownout injects ns of engine service delay at shard; 0 heals.
func (p *Plane) Brownout(shard int, ns uint64) {
	if ns > 0 {
		p.note(HazardBrownout)
	} else {
		p.note(HazardHeal)
	}
	p.sur.SetEngineDelay(shard, ns)
}

// Partition isolates shard's host from the cell.
func (p *Plane) Partition(shard int) {
	p.note(HazardPartition)
	p.sur.PartitionShard(shard)
}

// LinkLoss applies fractional packet loss on shard's links; 0 heals them.
func (p *Plane) LinkLoss(shard int, loss float64) {
	if loss > 0 {
		p.note(HazardLinkLoss)
	} else {
		p.note(HazardHeal)
	}
	p.sur.SetShardLinkLoss(shard, loss)
}

// HealPartitions removes every partition and loss rule.
func (p *Plane) HealPartitions() {
	p.note(HazardHeal)
	p.sur.HealPartitions()
}

// Corrupt flips one bit in up to n live entries on shard's backend with a
// derived seed, returning the damaged keys.
func (p *Plane) Corrupt(shard int, n int) [][]byte {
	return p.CorruptSeeded(shard, n, p.subSeed())
}

// CorruptSeeded is Corrupt with an explicit seed (scheduled events carry
// their own so replays are exact).
func (p *Plane) CorruptSeeded(shard int, n int, seed uint64) [][]byte {
	p.note(HazardCorruption)
	return p.sur.CorruptData(shard, n, seed)
}

// Maintain runs one full planned-maintenance cycle on shard (out to a
// spare and back) through the surface.
func (p *Plane) Maintain(ctx context.Context, shard int) error {
	p.note(HazardMaintain)
	return p.sur.MaintainShard(ctx, shard)
}

// ResizeCell changes the cell's logical shard count online.
func (p *Plane) ResizeCell(ctx context.Context, shards int) error {
	p.note(HazardResize)
	return p.sur.ResizeTo(ctx, shards)
}

// ConfigStale pins or unpins the config store's read snapshot.
func (p *Plane) ConfigStale(stale bool) {
	if stale {
		p.note(HazardConfigStale)
	} else {
		p.note(HazardHeal)
	}
	p.sur.SetConfigStale(stale)
}

// Event is one scheduled injection: fire when the engine reaches Step,
// auto-revert when it reaches HealStep (<0 = never auto-heal; corruption
// has no revert — repair and overwrites are the only cure).
type Event struct {
	Step   int
	Hazard Hazard
	Shard  int     // target shard; -1 = cell-wide
	Rate   float64 // rpc-fail fraction or link-loss fraction
	Delay  uint64  // brownout engine delay ns
	Count  int     // corruption flips, or resize target shard count
	Seed   uint64  // per-event actuator seed
	Heal   int     // step at which the effect reverts; -1 = never
	Warm   bool    // crash heals via RestartWarm instead of cold Restart
}

// String renders the event for schedule dumps and determinism checks.
func (e Event) String() string {
	s := fmt.Sprintf("step=%d %s shard=%d rate=%.3f delay=%d count=%d seed=%d heal=%d",
		e.Step, e.Hazard, e.Shard, e.Rate, e.Delay, e.Count, e.Seed, e.Heal)
	if e.Warm {
		s += " warm=true"
	}
	return s
}

// Schedule is a deterministic fault plan: Events sorted by Step, all
// fired by Steps steps. Identical (Name, Seed, shards) inputs produce
// identical schedules.
type Schedule struct {
	Name   string
	Seed   uint64
	Steps  int
	Events []Event
}

// String renders the whole schedule (the determinism-test witness).
func (s Schedule) String() string {
	out := fmt.Sprintf("schedule %s seed=%d steps=%d\n", s.Name, s.Seed, s.Steps)
	for _, e := range s.Events {
		out += "  " + e.String() + "\n"
	}
	return out
}

// Presets names the built-in scenario schedules.
func Presets() []string {
	return []string{"brownout", "partition-heal", "corruption-soak", "rolling-crash", "rolling-crash-warm", "maintenance-storm"}
}

// Preset builds a named scenario schedule for a cell of the given shard
// count. The schedule is a pure function of (name, seed, shards): the
// same inputs yield byte-identical plans, which is what makes soak
// failures replayable.
func Preset(name string, seed uint64, shards int) (Schedule, error) {
	if shards < 1 {
		return Schedule{}, fmt.Errorf("chaos: preset needs at least one shard, got %d", shards)
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	s := Schedule{Name: name, Seed: seed}
	victim := rng.Intn(shards)
	switch name {
	case "brownout":
		// Cell-wide transient RPC failures plus one shard's engines running
		// hot — the retry-storm scenario the token-bucket budget must shed.
		s.Steps = 10
		s.Events = append(s.Events,
			Event{Step: 1, Hazard: HazardRPCFail, Shard: -1, Rate: 0.3, Seed: rng.Uint64(), Heal: 6},
			Event{Step: 1, Hazard: HazardBrownout, Shard: victim, Delay: 2_000_000, Heal: 6},
		)
	case "partition-heal":
		// One shard's host drops off the fabric, then rejoins; while it is
		// gone the config store also lags, so refresh-based repair reads a
		// stale placement.
		s.Steps = 10
		s.Events = append(s.Events,
			Event{Step: 1, Hazard: HazardPartition, Shard: victim, Heal: 6},
			Event{Step: 2, Hazard: HazardConfigStale, Shard: -1, Heal: 5},
		)
	case "corruption-soak":
		// Repeated bit flips in live registered memory across shards —
		// checksum self-validation is the only defense. No auto-heal:
		// repair and overwrites are the cure.
		s.Steps = 12
		for step := 2; step <= 8; step += 2 {
			s.Events = append(s.Events, Event{
				Step: step, Hazard: HazardCorruption, Shard: rng.Intn(shards),
				Count: 4 + rng.Intn(5), Seed: rng.Uint64(), Heal: -1,
			})
		}
	case "rolling-crash":
		// Crash each shard in a random order, restarting one before the
		// next falls — the rolling-maintenance worst case of §6.1.
		s.Steps = 2 + 2*shards
		for i, shard := range rng.Perm(shards) {
			s.Events = append(s.Events, Event{
				Step: 1 + 2*i, Hazard: HazardCrash, Shard: shard, Heal: 2 + 2*i,
			})
		}
	case "rolling-crash-warm":
		// The same rolling worst case, but every victim rejoins via the
		// durability plane: checkpoint + journal replay instead of an
		// empty corpus. The oracle's lost-write check is the payoff — a
		// warm rejoin must never surface an agreed miss for an acked key.
		s.Steps = 2 + 2*shards
		for i, shard := range rng.Perm(shards) {
			s.Events = append(s.Events, Event{
				Step: 1 + 2*i, Hazard: HazardCrash, Shard: shard, Heal: 2 + 2*i, Warm: true,
			})
		}
	case "maintenance-storm":
		// Back-to-back shard handoffs: planned-maintenance cycles
		// interleaved with an online grow and the shrink back — every
		// seal/drain/flip window the control plane can open, repeatedly,
		// under load. Deliberately no RPC-failure or partition events ride
		// along: a failed handoff RPC mid-resize leaves the pending epoch
		// parked for the operator by design, which is not a convergence
		// failure this preset should manufacture.
		s.Steps = 10
		s.Events = append(s.Events,
			Event{Step: 1, Hazard: HazardMaintain, Shard: victim, Heal: -1},
			Event{Step: 2, Hazard: HazardResize, Shard: -1, Count: shards + 2, Heal: -1},
			Event{Step: 4, Hazard: HazardMaintain, Shard: rng.Intn(shards), Heal: -1},
			Event{Step: 6, Hazard: HazardResize, Shard: -1, Count: shards, Heal: -1},
			Event{Step: 8, Hazard: HazardMaintain, Shard: rng.Intn(shards), Heal: -1},
		)
	default:
		return Schedule{}, fmt.Errorf("chaos: unknown preset %q (have %v)", name, Presets())
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Step < s.Events[j].Step })
	return s, nil
}

// Engine walks a Schedule over a Plane. Callers drive it synchronously —
// Step from a workload loop or test — so event application interleaves
// deterministically with offered load. Not safe for concurrent Step
// calls; the hazards it applies are themselves thread-safe.
type Engine struct {
	plane *Plane
	sched Schedule

	mu      sync.Mutex
	step    int
	pending []Event // fired events awaiting their Heal step
	firstEE error   // first apply error, kept for RunAll's return
}

// NewEngine binds sched to a fresh plane over sur, seeded by the
// schedule's seed.
func NewEngine(sched Schedule, sur Surface) *Engine {
	return &Engine{plane: NewPlane(sur, sched.Seed), sched: sched}
}

// Plane exposes the engine's plane (for tracer attachment or ad-hoc
// injections between steps).
func (e *Engine) Plane() *Plane { return e.plane }

// SetTracer mirrors hazard counts into t.
func (e *Engine) SetTracer(t *trace.Tracer) { e.plane.SetTracer(t) }

// Steps returns the schedule length.
func (e *Engine) Steps() int { return e.sched.Steps }

// StepN returns how many steps have been applied.
func (e *Engine) StepN() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.step
}

// Done reports whether the schedule has fully run and healed.
func (e *Engine) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.step >= e.sched.Steps && len(e.pending) == 0
}

// Step advances one schedule step: heals whose time has come are applied
// first (a fault window closes before a new one opens), then this step's
// events fire. Returns the number of events applied.
func (e *Engine) Step(ctx context.Context) (int, error) {
	e.mu.Lock()
	e.step++
	step := e.step
	var heals, fires []Event
	keep := e.pending[:0]
	for _, ev := range e.pending {
		if ev.Heal >= 0 && ev.Heal <= step {
			heals = append(heals, ev)
		} else {
			keep = append(keep, ev)
		}
	}
	e.pending = keep
	for _, ev := range e.sched.Events {
		if ev.Step == step {
			fires = append(fires, ev)
			if ev.Heal > step {
				e.pending = append(e.pending, ev)
			}
		}
	}
	e.mu.Unlock()

	var firstErr error
	n := 0
	for _, ev := range heals {
		if err := e.heal(ctx, ev); err != nil && firstErr == nil {
			firstErr = err
		}
		n++
	}
	for _, ev := range fires {
		if err := e.apply(ctx, ev); err != nil && firstErr == nil {
			firstErr = err
		}
		n++
	}
	if firstErr != nil {
		e.mu.Lock()
		if e.firstEE == nil {
			e.firstEE = firstErr
		}
		e.mu.Unlock()
	}
	return n, firstErr
}

// RunAll drives the schedule to completion (no pacing) and heals
// everything outstanding.
func (e *Engine) RunAll(ctx context.Context) error {
	for e.StepN() < e.sched.Steps {
		if _, err := e.Step(ctx); err != nil {
			return err
		}
	}
	if err := e.HealAll(ctx); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstEE
}

// HealAll force-reverts every outstanding effect — the end of the fault
// window, after which soak oracles assert convergence.
func (e *Engine) HealAll(ctx context.Context) error {
	e.mu.Lock()
	pending := e.pending
	e.pending = nil
	e.mu.Unlock()
	var firstErr error
	for _, ev := range pending {
		if err := e.heal(ctx, ev); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// targets expands an event's shard field (-1 = every shard).
func (e *Engine) targets(ev Event) []int {
	if ev.Shard >= 0 {
		return []int{ev.Shard}
	}
	n := e.plane.sur.Shards()
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (e *Engine) apply(ctx context.Context, ev Event) error {
	switch ev.Hazard {
	case HazardCrash:
		for _, s := range e.targets(ev) {
			e.plane.Crash(s)
		}
	case HazardRestart:
		for _, s := range e.targets(ev) {
			if err := e.plane.Restart(ctx, s); err != nil {
				return err
			}
		}
	case HazardPartition:
		for _, s := range e.targets(ev) {
			e.plane.Partition(s)
		}
	case HazardLinkLoss:
		for _, s := range e.targets(ev) {
			e.plane.LinkLoss(s, ev.Rate)
		}
	case HazardRPCFail:
		for _, s := range e.targets(ev) {
			e.plane.RPCFailRate(s, ev.Rate)
		}
	case HazardBrownout:
		for _, s := range e.targets(ev) {
			e.plane.Brownout(s, ev.Delay)
		}
	case HazardCorruption:
		for _, s := range e.targets(ev) {
			e.plane.CorruptSeeded(s, ev.Count, ev.Seed)
		}
	case HazardConfigStale:
		e.plane.ConfigStale(true)
	case HazardMaintain:
		for _, s := range e.targets(ev) {
			if err := e.plane.Maintain(ctx, s); err != nil {
				return err
			}
		}
	case HazardResize:
		if err := e.plane.ResizeCell(ctx, ev.Count); err != nil {
			return err
		}
	}
	return nil
}

// heal reverts one fired event.
func (e *Engine) heal(ctx context.Context, ev Event) error {
	switch ev.Hazard {
	case HazardCrash:
		for _, s := range e.targets(ev) {
			var err error
			if ev.Warm {
				err = e.plane.RestartWarm(ctx, s)
			} else {
				err = e.plane.Restart(ctx, s)
			}
			if err != nil {
				return err
			}
		}
	case HazardPartition, HazardLinkLoss:
		e.plane.HealPartitions()
	case HazardRPCFail:
		for _, s := range e.targets(ev) {
			e.plane.RPCFailRate(s, 0)
		}
	case HazardBrownout:
		for _, s := range e.targets(ev) {
			e.plane.Brownout(s, 0)
		}
	case HazardConfigStale:
		e.plane.ConfigStale(false)
	}
	return nil
}

// Counters returns the engine's cumulative injections per hazard name.
func (e *Engine) Counters() map[string]uint64 { return e.plane.Counters() }

// Package shim implements CliqueMap's multi-language access path (§6.2):
// Java, Go, and Python programs reach CliqueMap through a lightweight
// language shim that launches the primary (C++, here Go) client library in
// a subprocess and speaks to it over named pipes.
//
// The paper's rationale is reproduced: no per-language reimplementation of
// the client protocol (the shim only frames requests), one debugging
// surface, and a measurable cost — the pipe hop plus serialization — that
// Figure 6 quantifies per language. The wire format is length-prefixed
// frames carrying internal/wire messages, and the host side can serve any
// Store (normally a cliquemap client).
package shim

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"cliquemap/internal/stats"
	"cliquemap/internal/wire"
)

// MaxFrame bounds a single frame (16 MiB), fail-closed against corrupt
// length prefixes.
const MaxFrame = 16 << 20

// Op identifies the requested operation.
type Op uint8

// Operations supported across the pipe.
const (
	OpPing Op = iota
	OpGet
	OpSet
	OpErase
)

// Request is one shim call.
type Request struct {
	ID    uint64
	Op    Op
	Key   []byte
	Value []byte
}

// Response answers one Request (matched by ID).
type Response struct {
	ID    uint64
	Found bool
	Value []byte
	Err   string
}

// Marshal encodes a request.
func (r Request) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.ID)
	e.Uint(2, uint64(r.Op))
	e.Bytes(3, r.Key)
	e.Bytes(4, r.Value)
	return e.Encoded()
}

// UnmarshalRequest decodes a request.
func UnmarshalRequest(b []byte) (Request, error) {
	var r Request
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.ID = d.Uint()
		case 2:
			r.Op = Op(d.Uint())
		case 3:
			r.Key = append([]byte(nil), d.Bytes()...)
		case 4:
			r.Value = append([]byte(nil), d.Bytes()...)
		}
	}
	return r, d.Err()
}

// Marshal encodes a response.
func (r Response) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.ID)
	e.Bool(2, r.Found)
	e.Bytes(3, r.Value)
	e.String(4, r.Err)
	return e.Encoded()
}

// UnmarshalResponse decodes a response.
func UnmarshalResponse(b []byte) (Response, error) {
	var r Response
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.ID = d.Uint()
		case 2:
			r.Found = d.Bool()
		case 3:
			r.Value = append([]byte(nil), d.Bytes()...)
		case 4:
			r.Err = d.String()
		}
	}
	return r, d.Err()
}

// WriteFrame writes a length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("shim: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Store is what the host side serves — normally the primary CliqueMap
// client.
type Store interface {
	Get(ctx context.Context, key []byte) ([]byte, bool, error)
	Set(ctx context.Context, key, value []byte) error
	Erase(ctx context.Context, key []byte) error
}

// Serve runs the host loop: read framed requests from r, execute against
// store, write framed responses to w. Returns on EOF or unrecoverable I/O
// error.
func Serve(ctx context.Context, r io.Reader, w io.Writer, store Store) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		frame, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		req, err := UnmarshalRequest(frame)
		if err != nil {
			return err
		}
		resp := Response{ID: req.ID}
		switch req.Op {
		case OpPing:
			resp.Found = true
		case OpGet:
			v, ok, gerr := store.Get(ctx, req.Key)
			resp.Value, resp.Found = v, ok
			if gerr != nil {
				resp.Err = gerr.Error()
			}
		case OpSet:
			if serr := store.Set(ctx, req.Key, req.Value); serr != nil {
				resp.Err = serr.Error()
			}
		case OpErase:
			if eerr := store.Erase(ctx, req.Key); eerr != nil {
				resp.Err = eerr.Error()
			}
		default:
			resp.Err = fmt.Sprintf("shim: unknown op %d", req.Op)
		}
		if err := WriteFrame(bw, resp.Marshal()); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// Profile calibrates one language binding's overheads for Figure 6. The
// native profile has no pipe hop; shim profiles pay per-op pipe and
// runtime costs plus a per-KB copy penalty.
type Profile struct {
	Name string
	// PipeHop marks the subprocess boundary (all non-native languages).
	PipeHop bool
	// ShimCPUNs is the language-side CPU per op: serialization, syscalls,
	// runtime overhead.
	ShimCPUNs uint64
	// ShimLatencyNs is added op latency from the pipe round trip and
	// scheduler handoffs.
	ShimLatencyNs uint64
	// PerKBNs is the per-KB copy cost across the pipe.
	PerKBNs uint64
}

// Profiles returns the Figure 6 language set in the paper's order.
func Profiles() []Profile {
	return []Profile{
		{Name: "cpp", PipeHop: false, ShimCPUNs: 0, ShimLatencyNs: 0, PerKBNs: 0},
		{Name: "java", PipeHop: true, ShimCPUNs: 6200, ShimLatencyNs: 9000, PerKBNs: 240},
		{Name: "go", PipeHop: true, ShimCPUNs: 4100, ShimLatencyNs: 7000, PerKBNs: 180},
		{Name: "py", PipeHop: true, ShimCPUNs: 52000, ShimLatencyNs: 60000, PerKBNs: 2100},
	}
}

// ProfileFor looks up a language profile by name.
func ProfileFor(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("shim: unknown language %q", name)
}

// Client is the language-shim side: it frames ops over the pipe pair and
// bills the profile's costs. Calls are serialized (one outstanding op per
// pipe, like the production shim's synchronous API).
type Client struct {
	profile Profile
	acct    *stats.CPUAccount

	mu     sync.Mutex
	w      *bufio.Writer
	r      *bufio.Reader
	nextID uint64
	// SimLatencyNs accumulates the modelled extra latency per op; the
	// harness reads and resets it.
	simNs stats.Counter
	ops   stats.Counter
}

// NewClient wraps a pipe pair with a language profile. acct may be nil.
func NewClient(r io.Reader, w io.Writer, profile Profile, acct *stats.CPUAccount) *Client {
	return &Client{
		profile: profile,
		acct:    acct,
		w:       bufio.NewWriter(w),
		r:       bufio.NewReader(r),
	}
}

// Profile returns the client's language profile.
func (c *Client) Profile() Profile { return c.profile }

// OpsDone returns completed ops.
func (c *Client) OpsDone() uint64 { return c.ops.Value() }

// SimLatencyNs returns accumulated modelled shim latency.
func (c *Client) SimLatencyNs() uint64 { return c.simNs.Value() }

func (c *Client) bill(bytes int) uint64 {
	cost := c.profile.ShimCPUNs + uint64(bytes)*c.profile.PerKBNs/1024
	if c.acct != nil && cost > 0 {
		c.acct.Charge("shim-"+c.profile.Name, cost)
	}
	lat := c.profile.ShimLatencyNs + uint64(bytes)*c.profile.PerKBNs/1024
	c.simNs.Add(lat)
	return lat
}

// roundTrip sends req and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID
	if err := WriteFrame(c.w, req.Marshal()); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	frame, err := ReadFrame(c.r)
	if err != nil {
		return Response{}, err
	}
	resp, err := UnmarshalResponse(frame)
	if err != nil {
		return Response{}, err
	}
	if resp.ID != req.ID {
		return Response{}, fmt.Errorf("shim: response id %d for request %d", resp.ID, req.ID)
	}
	c.ops.Inc()
	return resp, nil
}

// Ping checks liveness of the subprocess.
func (c *Client) Ping() error {
	c.bill(0)
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Get looks up key through the shim, returning the modelled extra latency.
func (c *Client) Get(key []byte) (value []byte, found bool, shimNs uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, 0, err
	}
	shimNs = c.bill(len(key) + len(resp.Value))
	if resp.Err != "" {
		return nil, false, shimNs, errors.New(resp.Err)
	}
	return resp.Value, resp.Found, shimNs, nil
}

// Set installs key=value through the shim.
func (c *Client) Set(key, value []byte) (shimNs uint64, err error) {
	shimNs = c.bill(len(key) + len(value))
	resp, err := c.roundTrip(Request{Op: OpSet, Key: key, Value: value})
	if err != nil {
		return shimNs, err
	}
	if resp.Err != "" {
		return shimNs, errors.New(resp.Err)
	}
	return shimNs, nil
}

// Erase removes key through the shim.
func (c *Client) Erase(key []byte) error {
	c.bill(len(key))
	resp, err := c.roundTrip(Request{Op: OpErase, Key: key})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

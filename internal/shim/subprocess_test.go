package shim

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildShimHost compiles cmd/cmshimhost into a temp dir. Skips when the
// Go toolchain can't build (e.g. sandboxed environments).
func buildShimHost(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cmshimhost")
	cmd := exec.Command("go", "build", "-o", bin, "cliquemap/cmd/cmshimhost")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build cmshimhost: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Skipf("go env: %v", err)
	}
	dir := filepath.Dir(string(out[:len(out)-1]))
	if dir == "." || dir == "/" {
		t.Skip("module root not found")
	}
	return dir
}

// TestSubprocessShimEndToEnd launches the real shim host binary — a
// separate OS process embedding a full CliqueMap cell — and drives it over
// the pipe protocol, exactly as the production Java/Go/Python shims drive
// the C++ client subprocess (§6.2).
func TestSubprocessShimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildShimHost(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	prof, _ := ProfileFor("py")
	sp, err := Launch(ctx, prof, bin, "-shards", "3", "-mode", "r32")
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	if err := sp.Client.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := sp.Client.Set([]byte("cross-process"), []byte("works")); err != nil {
		t.Fatalf("set: %v", err)
	}
	v, found, shimNs, err := sp.Client.Get([]byte("cross-process"))
	if err != nil || !found || string(v) != "works" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
	if shimNs == 0 {
		t.Error("py profile should bill shim latency")
	}
	if err := sp.Client.Erase([]byte("cross-process")); err != nil {
		t.Fatalf("erase: %v", err)
	}
	if _, found, _, _ := sp.Client.Get([]byte("cross-process")); found {
		t.Error("erased key visible across the pipe")
	}
}

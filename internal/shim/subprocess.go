package shim

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"

	"cliquemap/internal/stats"
)

// Subprocess is a launched shim host process (the paper's "CliqueMap C++
// client in a subprocess") connected over a pipe pair.
type Subprocess struct {
	cmd    *exec.Cmd
	Client *Client
	stdin  io.WriteCloser
}

// Launch starts exe with args, wiring its stdin/stdout as the shim pipe
// pair and attaching a Client with the given language profile.
func Launch(ctx context.Context, profile Profile, exe string, args ...string) (*Subprocess, error) {
	cmd := exec.CommandContext(ctx, exe, args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shim: launching %s: %w", exe, err)
	}
	return &Subprocess{
		cmd:    cmd,
		stdin:  stdin,
		Client: NewClient(stdout, stdin, profile, nil),
	}, nil
}

// Close shuts the pipe down and reaps the subprocess.
func (s *Subprocess) Close() error {
	s.stdin.Close()
	return s.cmd.Wait()
}

// InProcess runs a shim host on OS pipes inside this process: the frame
// and syscall path is the real one (os.Pipe file descriptors), without a
// separate binary. Used by tests and the Figure 6 harness.
type InProcess struct {
	Client *Client
	done   chan error
	closeW *os.File
	files  []*os.File
}

// NewInProcess starts a host goroutine serving store over real OS pipes
// and returns the connected shim client. acct may be nil.
func NewInProcess(ctx context.Context, store Store, profile Profile, acct *stats.CPUAccount) (*InProcess, error) {
	// client→host pipe and host→client pipe.
	hostR, clientW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	clientR, hostW, err := os.Pipe()
	if err != nil {
		hostR.Close()
		clientW.Close()
		return nil, err
	}
	ip := &InProcess{
		Client: NewClient(clientR, clientW, profile, acct),
		done:   make(chan error, 1),
		closeW: clientW,
		files:  []*os.File{hostR, clientW, clientR, hostW},
	}
	go func() {
		ip.done <- Serve(ctx, hostR, hostW, store)
		hostW.Close()
	}()
	return ip, nil
}

// Close tears the pipes down and waits for the host loop.
func (ip *InProcess) Close() error {
	ip.closeW.Close()
	err := <-ip.done
	for _, f := range ip.files {
		f.Close()
	}
	return err
}

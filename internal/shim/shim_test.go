package shim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
)

// memStore is a trivial Store for protocol tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) Get(_ context.Context, key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[string(key)]
	return append([]byte(nil), v...), ok, nil
}

func (s *memStore) Set(_ context.Context, key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (s *memStore) Erase(_ context.Context, key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, string(key))
	return nil
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("frame-payload")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("frame = %q", got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(p []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, p); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4GiB length prefix
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("hello"))
	short := buf.Bytes()[:6]
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRequestResponseRoundTrip(t *testing.T) {
	req := Request{ID: 7, Op: OpSet, Key: []byte("k"), Value: []byte("v")}
	got, err := UnmarshalRequest(req.Marshal())
	if err != nil || got.ID != 7 || got.Op != OpSet || string(got.Key) != "k" || string(got.Value) != "v" {
		t.Errorf("request: %+v %v", got, err)
	}
	resp := Response{ID: 7, Found: true, Value: []byte("v"), Err: "boom"}
	r2, err := UnmarshalResponse(resp.Marshal())
	if err != nil || r2.ID != 7 || !r2.Found || string(r2.Value) != "v" || r2.Err != "boom" {
		t.Errorf("response: %+v %v", r2, err)
	}
}

func TestInProcessShimEndToEnd(t *testing.T) {
	store := newMemStore()
	p, _ := ProfileFor("go")
	ip, err := NewInProcess(context.Background(), store, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	cl := ip.Client

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Set([]byte("k"), []byte("shim-value")); err != nil {
		t.Fatal(err)
	}
	v, found, shimNs, err := cl.Get([]byte("k"))
	if err != nil || !found || string(v) != "shim-value" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
	if shimNs == 0 {
		t.Error("go shim should bill latency")
	}
	if err := cl.Erase([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, found, _, _ := cl.Get([]byte("k")); found {
		t.Error("erased key visible through shim")
	}
	if cl.OpsDone() < 4 {
		t.Errorf("ops done = %d", cl.OpsDone())
	}
}

func TestShimManyOps(t *testing.T) {
	store := newMemStore()
	p, _ := ProfileFor("java")
	ip, err := NewInProcess(context.Background(), store, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if _, err := ip.Client.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		v, found, _, err := ip.Client.Get(k)
		if err != nil || !found || !bytes.Equal(v, k) {
			t.Fatalf("k%d: %q %v %v", i, v, found, err)
		}
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 || ps[0].Name != "cpp" {
		t.Fatalf("profiles: %+v", ps)
	}
	if ps[0].PipeHop {
		t.Error("cpp must be native (no pipe hop)")
	}
	// Figure 6 ordering: python is the slowest, cpp free.
	var cpp, java, golang, py Profile
	for _, p := range ps {
		switch p.Name {
		case "cpp":
			cpp = p
		case "java":
			java = p
		case "go":
			golang = p
		case "py":
			py = p
		}
	}
	if !(cpp.ShimCPUNs < golang.ShimCPUNs && golang.ShimCPUNs < java.ShimCPUNs && java.ShimCPUNs < py.ShimCPUNs) {
		t.Errorf("CPU ordering wrong: cpp=%d go=%d java=%d py=%d", cpp.ShimCPUNs, golang.ShimCPUNs, java.ShimCPUNs, py.ShimCPUNs)
	}
	if _, err := ProfileFor("rust"); err == nil {
		t.Error("unknown language accepted")
	}
}

func TestServeUnknownOp(t *testing.T) {
	store := newMemStore()
	p, _ := ProfileFor("cpp")
	ip, err := NewInProcess(context.Background(), store, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	resp, err := ip.Client.roundTrip(Request{Op: Op(99)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("unknown op accepted")
	}
}

func TestServeStopsOnEOF(t *testing.T) {
	store := newMemStore()
	r, w := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(context.Background(), r, io.Discard, store) }()
	w.Close()
	if err := <-done; err != nil && !errors.Is(err, io.EOF) {
		t.Errorf("serve exit: %v", err)
	}
}

func BenchmarkShimGet(b *testing.B) {
	store := newMemStore()
	store.Set(context.Background(), []byte("k"), make([]byte, 1024))
	p, _ := ProfileFor("go")
	ip, err := NewInProcess(context.Background(), store, p, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer ip.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ip.Client.Get([]byte("k")); err != nil {
			b.Fatal(err)
		}
	}
}

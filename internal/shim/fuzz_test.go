package shim

import (
	"bytes"
	"testing"
)

// Frames arrive from another process; both directions must parse or fail
// cleanly.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("seed"))
	f.Add(buf.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadFrame(bytes.NewReader(data)) // must not panic
	})
}

func FuzzUnmarshalRequest(f *testing.F) {
	f.Add(Request{ID: 1, Op: OpGet, Key: []byte("k")}.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		UnmarshalRequest(data) // must not panic
	})
}

package rmem

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadWriteRoundTrip(t *testing.T) {
	r := NewRegion(1024, 4096)
	data := []byte("hello registered memory")
	if err := r.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
}

func TestBoundsChecking(t *testing.T) {
	r := NewRegion(128, 256)
	if _, err := r.Read(100, 100); err != ErrOutOfBounds {
		t.Errorf("read past populated: %v", err)
	}
	if err := r.Write(120, make([]byte, 20)); err != ErrOutOfBounds {
		t.Errorf("write past populated: %v", err)
	}
	if _, err := r.Read(-1, 4); err != ErrOutOfBounds {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := r.Read(0, -1); err != ErrOutOfBounds {
		t.Errorf("negative length: %v", err)
	}
	if err := r.WriteChunked(200, make([]byte, 100)); err != ErrOutOfBounds {
		t.Errorf("chunked write past populated: %v", err)
	}
}

func TestGrowPopulatesReservedRange(t *testing.T) {
	r := NewRegion(128, 1024)
	if err := r.Write(500, []byte{1}); err != ErrOutOfBounds {
		t.Fatal("write beyond populated should fail before grow")
	}
	if got := r.Grow(512); got != 640 {
		t.Errorf("Grow -> %d, want 640", got)
	}
	if err := r.Write(500, []byte{1}); err != nil {
		t.Errorf("write after grow: %v", err)
	}
	// Growth clamps at capacity.
	if got := r.Grow(1 << 20); got != 1024 {
		t.Errorf("over-grow -> %d, want 1024", got)
	}
	if r.Capacity() != 1024 {
		t.Errorf("capacity changed: %d", r.Capacity())
	}
}

func TestShrink(t *testing.T) {
	r := NewRegion(1024, 1024)
	r.Shrink(100)
	if r.Populated() != 100 {
		t.Errorf("populated = %d", r.Populated())
	}
	if _, err := r.Read(50, 100); err != ErrOutOfBounds {
		t.Error("read past shrunk extent should fail")
	}
	r.Shrink(-5)
	if r.Populated() != 0 {
		t.Errorf("negative shrink -> %d", r.Populated())
	}
}

// TestTornReadObservable proves the tearing model: a reader that races a
// chunked writer can observe a mix of old and new bytes. Tearing requires
// temporal overlap — the reader contends on the stripe locks in a tight
// loop, so on a single-CPU scheduler the mutex starvation-mode handoff
// interleaves it with the writer at chunk boundaries (the same mechanism
// a GET storm exercises against live SETs), while on multi-CPU the race
// is direct. The writer keeps alternating values until a tear is seen or
// a generous deadline proves the model broken.
func TestTornReadObservable(t *testing.T) {
	const size = 4 * WriteChunk
	r := NewRegion(size, size)
	old := bytes.Repeat([]byte{0xAA}, size)
	newv := bytes.Repeat([]byte{0xBB}, size)
	r.Write(0, old)

	var sawTorn atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			got, err := r.Read(0, size)
			if err != nil {
				t.Error(err)
				return
			}
			if bytes.Contains(got, []byte{0xAA}) && bytes.Contains(got, []byte{0xBB}) {
				sawTorn.Store(true)
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; !sawTorn.Load() && time.Now().Before(deadline); i++ {
		if i%2 == 0 {
			r.WriteChunked(0, newv)
		} else {
			r.WriteChunked(0, old)
		}
	}
	close(stop)
	wg.Wait()
	if !sawTorn.Load() {
		t.Error("chunked writes never produced an observable torn read; tearing model broken")
	}
}

// TestWriteChunkedNotStarvedByReaders pins the mutation-liveness fix: a
// closed-loop storm of readers over a hot entry's stripe must not starve
// a chunked writer. With the old per-chunk runtime.Gosched, the writer
// parked on the global run queue between every 256B chunk and a 24KB
// write took seconds on a single-CPU scheduler (SETs starved for as long
// as a GET storm lasted); with lock-handoff interleave it completes in
// milliseconds.
func TestWriteChunkedNotStarvedByReaders(t *testing.T) {
	r := NewRegion(1<<20, 1<<20)
	var stop atomic.Bool
	defer stop.Store(true)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for !stop.Load() {
				r.ReadInto(0, buf)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the storm establish
	data := make([]byte, 24<<10)
	start := time.Now()
	if err := r.WriteChunked(0, data); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	stop.Store(true)
	wg.Wait()
	if el > 2*time.Second {
		t.Fatalf("24KB chunked write starved under reader storm: took %v", el)
	}
	t.Logf("24KB chunked write under 12-reader storm: %v", el)
}

func TestAtomicWriteNeverTears(t *testing.T) {
	const size = 64 // single chunk: must be atomic
	r := NewRegion(size, size)
	old := bytes.Repeat([]byte{0xAA}, size)
	newv := bytes.Repeat([]byte{0xBB}, size)
	r.Write(0, old)

	stop := make(chan struct{})
	var fail bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			got, _ := r.Read(0, size)
			if bytes.Contains(got, []byte{0xAA}) && bytes.Contains(got, []byte{0xBB}) {
				fail = true
				return
			}
			runtime.Gosched()
		}
	}()
	for i := 0; i < 5000; i++ {
		if i%2 == 0 {
			r.Write(0, newv)
		} else {
			r.Write(0, old)
		}
	}
	close(stop)
	wg.Wait()
	if fail {
		t.Error("single-chunk Write tore")
	}
}

func TestReadInto(t *testing.T) {
	r := NewRegion(128, 128)
	r.Write(10, []byte{1, 2, 3})
	buf := make([]byte, 3)
	if err := r.ReadInto(10, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Errorf("ReadInto = %v", buf)
	}
	if err := r.ReadInto(127, make([]byte, 2)); err != ErrOutOfBounds {
		t.Error("ReadInto past extent should fail")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry()
	region := NewRegion(256, 256)
	region.Write(0, []byte("window data"))

	w := g.Register(region, 1)
	if w.ID == 0 {
		t.Fatal("window ID should be nonzero")
	}
	got, err := g.Read(w.ID, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "window data" {
		t.Errorf("read %q", got)
	}

	g.Revoke(w.ID)
	if _, err := g.Read(w.ID, 0, 11); err == nil {
		t.Error("read after revoke should fail")
	}
	if _, err := g.Lookup(w.ID); err == nil {
		t.Error("lookup after revoke should fail")
	}
}

func TestRegistryIDsNeverReused(t *testing.T) {
	g := NewRegistry()
	region := NewRegion(16, 16)
	seen := map[WindowID]bool{}
	for i := 0; i < 100; i++ {
		w := g.Register(region, uint64(i))
		if seen[w.ID] {
			t.Fatalf("window ID %d reused", w.ID)
		}
		seen[w.ID] = true
		g.Revoke(w.ID)
	}
}

// TestOverlappingWindows models data-region growth (§4.1): a second,
// larger window over the same region serves reads the old window cannot,
// while the old window keeps working during the transition.
func TestOverlappingWindows(t *testing.T) {
	g := NewRegistry()
	region := NewRegion(128, 1024)
	oldW := g.Register(region, 1)
	region.Grow(512)
	newW := g.Register(region, 2)

	region.Write(300, []byte{42})
	if _, err := g.Read(oldW.ID, 300, 1); err != nil {
		t.Errorf("old window should still serve in-bounds reads: %v", err)
	}
	got, err := g.Read(newW.ID, 300, 1)
	if err != nil || got[0] != 42 {
		t.Errorf("new window read = %v, %v", got, err)
	}
	if newW.Epoch <= oldW.Epoch {
		t.Error("new window must carry a later epoch")
	}

	g.Revoke(oldW.ID)
	if _, err := g.Read(oldW.ID, 0, 1); err == nil {
		t.Error("old window must fail after revocation")
	}
	if _, err := g.Read(newW.ID, 0, 1); err != nil {
		t.Errorf("new window unaffected by old revocation: %v", err)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	g := NewRegistry()
	region := NewRegion(1024, 1024)
	w := g.Register(region, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if _, err := g.Read(w.ID, 0, 64); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRegionRead4KB(b *testing.B) {
	r := NewRegion(1<<20, 1<<20)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(0, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteChunked4KB(b *testing.B) {
	r := NewRegion(1<<20, 1<<20)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		r.WriteChunked(0, data)
	}
}

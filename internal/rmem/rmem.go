// Package rmem models RMA-registered memory: the index and data regions a
// CliqueMap backend exposes for one-sided reads (§3, §4.1).
//
// Two properties of real registered memory matter to CliqueMap's design and
// are reproduced here:
//
//  1. RMA reads are not atomic with respect to CPU writes. A concurrent
//     SET can tear a GET's view of a DataEntry. In hardware this happens
//     because DMA and CPU stores interleave at cache-line granularity; here
//     writers apply mutations in bounded-size chunks and drop the region
//     lock between chunks, so concurrent readers observe genuinely torn
//     states without any Go-level data race. Self-validating checksums
//     (§3) are exercised for real.
//
//  2. Remote access is mediated by windows that can be revoked. Index
//     resizing (§4.1) revokes the old index window; in-flight client RMAs
//     then fail with a window error and the client retries via RPC,
//     learning the new geometry. Data-region growth registers a second,
//     larger window overlapping the first, and clients converge to it.
package rmem

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

var (
	// ErrRevoked reports an RMA against a revoked (or never-registered)
	// window. Clients respond by retrying over RPC (§4.1).
	ErrRevoked = errors.New("rmem: window revoked")
	// ErrOutOfBounds reports an RMA beyond the window's populated extent.
	ErrOutOfBounds = errors.New("rmem: access out of bounds")
)

// WriteChunk is the granularity at which writers publish bytes. Reads can
// interleave at chunk boundaries — this is the tearing window.
const WriteChunk = 256

// Region is a registered memory area. The backing array is reserved at
// maximum capacity up front (the paper's mmap(PROT_NONE) of a very large
// virtual range) but only `populated` bytes are usable; Grow populates
// more on demand.
type Region struct {
	mu        sync.Mutex
	buf       []byte
	populated int
}

// NewRegion reserves maxCap bytes and populates the first populated bytes.
func NewRegion(populated, maxCap int) *Region {
	if populated < 0 || maxCap < populated {
		panic(fmt.Sprintf("rmem: invalid region geometry %d/%d", populated, maxCap))
	}
	return &Region{buf: make([]byte, maxCap), populated: populated}
}

// Populated returns the usable extent.
func (r *Region) Populated() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.populated
}

// Capacity returns the reserved maximum.
func (r *Region) Capacity() int { return len(r.buf) }

// Grow populates additional bytes, up to capacity, returning the new
// populated extent. Growth is what data-region reshaping performs off the
// critical path (§4.1).
func (r *Region) Grow(additional int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.populated += additional
	if r.populated > len(r.buf) {
		r.populated = len(r.buf)
	}
	return r.populated
}

// Shrink reduces the populated extent (non-disruptive restart downsizing).
func (r *Region) Shrink(to int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if to < 0 {
		to = 0
	}
	if to < r.populated {
		r.populated = to
	}
}

// Read copies length bytes at off into a fresh slice. The read is atomic
// at chunk granularity only — matching DMA semantics — but since it holds
// the lock for the whole copy, a single Read is internally consistent
// *per call*. Tearing arises between a writer's chunks, i.e. a Read that
// lands between two WriteChunked sections of one logical entry.
func (r *Region) Read(off, length int) ([]byte, error) {
	if length < 0 || off < 0 {
		return nil, ErrOutOfBounds
	}
	out := make([]byte, length)
	r.mu.Lock()
	defer r.mu.Unlock()
	if off+length > r.populated {
		return nil, ErrOutOfBounds
	}
	copy(out, r.buf[off:off+length])
	return out, nil
}

// ReadInto copies into caller storage, avoiding allocation on hot paths.
func (r *Region) ReadInto(off int, dst []byte) error {
	if off < 0 {
		return ErrOutOfBounds
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if off+len(dst) > r.populated {
		return ErrOutOfBounds
	}
	copy(dst, r.buf[off:off+len(dst)])
	return nil
}

// Write stores data at off while holding the lock across the whole copy.
// Use for small metadata (an IndexEntry) whose publication must be
// single-chunk-atomic.
func (r *Region) Write(off int, data []byte) error {
	if off < 0 {
		return ErrOutOfBounds
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if off+len(data) > r.populated {
		return ErrOutOfBounds
	}
	copy(r.buf[off:], data)
	return nil
}

// WriteChunked stores data at off in WriteChunk-sized sections, dropping
// the lock between sections. Concurrent readers may observe a prefix of
// the new bytes and a suffix of the old — a torn entry. This is how all
// DataEntry bodies are written.
func (r *Region) WriteChunked(off int, data []byte) error {
	if off < 0 {
		return ErrOutOfBounds
	}
	r.mu.Lock()
	if off+len(data) > r.populated {
		r.mu.Unlock()
		return ErrOutOfBounds
	}
	r.mu.Unlock()
	for i := 0; i < len(data); i += WriteChunk {
		end := i + WriteChunk
		if end > len(data) {
			end = len(data)
		}
		if i > 0 {
			// Yield so concurrent RMA reads can land between chunks even on
			// a single-CPU scheduler — this is the DMA/CPU-store interleave
			// that makes tearing physically possible.
			runtime.Gosched()
		}
		r.mu.Lock()
		// Re-check: a concurrent Shrink could have raced us.
		if off+end > r.populated {
			r.mu.Unlock()
			return ErrOutOfBounds
		}
		copy(r.buf[off+i:], data[i:end])
		r.mu.Unlock()
	}
	return nil
}

// WindowID names a registered RMA window. IDs are never reused within a
// Registry, so a stale ID always fails closed.
type WindowID uint64

// Window describes one registered window: a view over a region.
type Window struct {
	ID     WindowID
	Region *Region
	// Epoch counts registrations for the same logical role (e.g. "index").
	// Clients compare epochs to detect that their cached window is old.
	Epoch uint64
}

// Registry is a backend's table of registered windows — what its NIC
// consults to serve inbound RMA.
type Registry struct {
	mu      sync.Mutex
	nextID  WindowID
	windows map[WindowID]*Window
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{nextID: 1, windows: make(map[WindowID]*Window)}
}

// Register exposes region under a fresh window ID at the given epoch.
func (g *Registry) Register(region *Region, epoch uint64) *Window {
	g.mu.Lock()
	defer g.mu.Unlock()
	w := &Window{ID: g.nextID, Region: region, Epoch: epoch}
	g.nextID++
	g.windows[w.ID] = w
	return w
}

// Revoke invalidates a window. Subsequent RMAs with its ID fail with
// ErrRevoked.
func (g *Registry) Revoke(id WindowID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.windows, id)
}

// Lookup resolves a window ID, failing if revoked.
func (g *Registry) Lookup(id WindowID) (*Window, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.windows[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrRevoked, id)
	}
	return w, nil
}

// Read serves a one-sided read against window id.
func (g *Registry) Read(id WindowID, off, length int) ([]byte, error) {
	w, err := g.Lookup(id)
	if err != nil {
		return nil, err
	}
	return w.Region.Read(off, length)
}

// Package rmem models RMA-registered memory: the index and data regions a
// CliqueMap backend exposes for one-sided reads (§3, §4.1).
//
// Two properties of real registered memory matter to CliqueMap's design and
// are reproduced here:
//
//  1. RMA reads are not atomic with respect to CPU writes. A concurrent
//     SET can tear a GET's view of a DataEntry. In hardware this happens
//     because DMA and CPU stores interleave at cache-line granularity; here
//     writers apply mutations in bounded-size chunks and drop the region
//     locks between chunks, so concurrent readers observe genuinely torn
//     states without any Go-level data race. Self-validating checksums
//     (§3) are exercised for real.
//
//  2. Remote access is mediated by windows that can be revoked. Index
//     resizing (§4.1) revokes the old index window; in-flight client RMAs
//     then fail with a window error and the client retries via RPC,
//     learning the new geometry. Data-region growth registers a second,
//     larger window overlapping the first, and clients converge to it.
//
// Regions are internally synchronized with an offset-striped lock: the
// byte range is divided into lockBlock-sized blocks, each guarded by its
// own mutex, and an access locks the blocks it covers in ascending order.
// Accesses to disjoint blocks — concurrent SET handlers writing different
// DataEntries, or RMA GETs against different buckets — do not contend.
// A single Read still locks its whole span at once, so each Read is
// internally consistent per call; tearing arises only between a writer's
// chunks, exactly as before.
package rmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

var (
	// ErrRevoked reports an RMA against a revoked (or never-registered)
	// window. Clients respond by retrying over RPC (§4.1).
	ErrRevoked = errors.New("rmem: window revoked")
	// ErrOutOfBounds reports an RMA beyond the window's populated extent.
	ErrOutOfBounds = errors.New("rmem: access out of bounds")
)

// WriteChunk is the granularity at which writers publish bytes. Reads can
// interleave at chunk boundaries — this is the tearing window.
const WriteChunk = 256

// lockBlock is the granularity of the region lock stripes. Large enough
// that a typical access (a bucket, a DataEntry chunk) covers one or two
// blocks; small enough that concurrent accesses to different entries
// rarely share one.
const lockBlock = 64 << 10

// Region is a registered memory area. The backing array is reserved at
// maximum capacity up front (the paper's mmap(PROT_NONE) of a very large
// virtual range) but only `populated` bytes are usable; Grow populates
// more on demand.
type Region struct {
	locks     []sync.Mutex // one per lockBlock of reserved capacity
	buf       []byte
	populated atomic.Int64
}

// NewRegion reserves maxCap bytes and populates the first populated bytes.
func NewRegion(populated, maxCap int) *Region {
	if populated < 0 || maxCap < populated {
		panic(fmt.Sprintf("rmem: invalid region geometry %d/%d", populated, maxCap))
	}
	r := &Region{
		locks: make([]sync.Mutex, (maxCap+lockBlock-1)/lockBlock+1),
		buf:   make([]byte, maxCap),
	}
	r.populated.Store(int64(populated))
	return r
}

// lockRange locks the stripes covering [off, off+n) in ascending order.
func (r *Region) lockRange(off, n int) (lo, hi int) {
	lo = off / lockBlock
	hi = lo
	if n > 0 {
		hi = (off + n - 1) / lockBlock
	}
	for i := lo; i <= hi; i++ {
		r.locks[i].Lock()
	}
	return lo, hi
}

func (r *Region) unlockRange(lo, hi int) {
	for i := hi; i >= lo; i-- {
		r.locks[i].Unlock()
	}
}

// Populated returns the usable extent.
func (r *Region) Populated() int { return int(r.populated.Load()) }

// Capacity returns the reserved maximum.
func (r *Region) Capacity() int { return len(r.buf) }

// Grow populates additional bytes, up to capacity, returning the new
// populated extent. Growth is what data-region reshaping performs off the
// critical path (§4.1).
func (r *Region) Grow(additional int) int {
	for {
		cur := r.populated.Load()
		next := cur + int64(additional)
		if next > int64(len(r.buf)) {
			next = int64(len(r.buf))
		}
		if r.populated.CompareAndSwap(cur, next) {
			return int(next)
		}
	}
}

// Shrink reduces the populated extent (non-disruptive restart downsizing).
func (r *Region) Shrink(to int) {
	if to < 0 {
		to = 0
	}
	for {
		cur := r.populated.Load()
		if int64(to) >= cur {
			return
		}
		if r.populated.CompareAndSwap(cur, int64(to)) {
			return
		}
	}
}

// Read copies length bytes at off into a fresh slice. The read is atomic
// at chunk granularity only — matching DMA semantics — but since it holds
// its span's locks for the whole copy, a single Read is internally
// consistent *per call*. Tearing arises between a writer's chunks, i.e. a
// Read that lands between two WriteChunked sections of one logical entry.
func (r *Region) Read(off, length int) ([]byte, error) {
	if length < 0 || off < 0 {
		return nil, ErrOutOfBounds
	}
	out := make([]byte, length)
	if err := r.ReadInto(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// View returns a zero-copy aliasing slice of [off, off+length). It takes
// no locks: the caller must order the view against writers of the same
// byte range externally (the backend reads its own index bucket this way
// under the bucket's stripe lock, which also serializes that bucket's
// writers). The slice stays valid while the region does — Grow never
// reallocates the backing array — but is invalidated by Shrink.
func (r *Region) View(off, length int) ([]byte, error) {
	if length < 0 || off < 0 || int64(off+length) > r.populated.Load() {
		return nil, ErrOutOfBounds
	}
	return r.buf[off : off+length : off+length], nil
}

// ReadInto copies into caller storage, avoiding allocation on hot paths.
func (r *Region) ReadInto(off int, dst []byte) error {
	if off < 0 {
		return ErrOutOfBounds
	}
	if int64(off+len(dst)) > r.populated.Load() {
		return ErrOutOfBounds
	}
	lo, hi := r.lockRange(off, len(dst))
	copy(dst, r.buf[off:off+len(dst)])
	r.unlockRange(lo, hi)
	return nil
}

// Write stores data at off while holding its span's locks across the whole
// copy. Use for small metadata (an IndexEntry) whose publication must be
// single-chunk-atomic.
func (r *Region) Write(off int, data []byte) error {
	if off < 0 {
		return ErrOutOfBounds
	}
	if int64(off+len(data)) > r.populated.Load() {
		return ErrOutOfBounds
	}
	lo, hi := r.lockRange(off, len(data))
	copy(r.buf[off:], data)
	r.unlockRange(lo, hi)
	return nil
}

// WriteChunked stores data at off in WriteChunk-sized sections, dropping
// the locks between sections. Concurrent readers may observe a prefix of
// the new bytes and a suffix of the old — a torn entry. This is how all
// DataEntry bodies are written.
func (r *Region) WriteChunked(off int, data []byte) error {
	if off < 0 {
		return ErrOutOfBounds
	}
	if int64(off+len(data)) > r.populated.Load() {
		return ErrOutOfBounds
	}
	for i := 0; i < len(data); i += WriteChunk {
		end := i + WriteChunk
		if end > len(data) {
			end = len(data)
		}
		// No explicit yield between chunks: dropping the stripe locks is the
		// interleave point. A reader contending on the stripe enters the
		// mutex's starvation-mode FIFO within ~1ms and is handed the lock at
		// the next chunk boundary, so overlapping reads observe genuinely
		// torn states — while a writer's latency stays bounded by its chunk
		// count, not by the reader arrival rate. (An unconditional
		// runtime.Gosched here parks the writer on the global run queue,
		// which a busy single-P scheduler drains so rarely that a hot-key
		// read storm starved SETs for entire seconds.)
		//
		// Re-check: a concurrent Shrink could have raced us.
		if int64(off+end) > r.populated.Load() {
			return ErrOutOfBounds
		}
		lo, hi := r.lockRange(off+i, end-i)
		copy(r.buf[off+i:], data[i:end])
		r.unlockRange(lo, hi)
	}
	return nil
}

// FlipBit XORs mask into the byte at off while holding the covering lock
// stripe — modelling a silent registered-memory corruption (a DRAM bit
// flip, a DMA scribble) that lands between legitimate accesses rather
// than racing them. The damage is indistinguishable from a torn write to
// readers, which is the point: it must be caught by the §3 self-validating
// checksums, never by a Go-level race.
func (r *Region) FlipBit(off int, mask byte) error {
	if off < 0 || mask == 0 {
		return ErrOutOfBounds
	}
	if int64(off) >= r.populated.Load() {
		return ErrOutOfBounds
	}
	lo, hi := r.lockRange(off, 1)
	r.buf[off] ^= mask
	r.unlockRange(lo, hi)
	return nil
}

// WindowID names a registered RMA window. IDs are never reused within a
// Registry, so a stale ID always fails closed.
type WindowID uint64

// Window describes one registered window: a view over a region.
type Window struct {
	ID     WindowID
	Region *Region
	// Epoch counts registrations for the same logical role (e.g. "index").
	// Clients compare epochs to detect that their cached window is old.
	Epoch uint64
}

// Registry is a backend's table of registered windows — what its NIC
// consults to serve inbound RMA. Lookups are lock-free: every one-sided
// read resolves a window, so the table must never contend with serving.
type Registry struct {
	nextID  atomic.Uint64
	windows sync.Map // WindowID -> *Window
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Register exposes region under a fresh window ID at the given epoch.
func (g *Registry) Register(region *Region, epoch uint64) *Window {
	w := &Window{ID: WindowID(g.nextID.Add(1)), Region: region, Epoch: epoch}
	g.windows.Store(w.ID, w)
	return w
}

// Revoke invalidates a window. Subsequent RMAs with its ID fail with
// ErrRevoked.
func (g *Registry) Revoke(id WindowID) {
	g.windows.Delete(id)
}

// Lookup resolves a window ID, failing if revoked.
func (g *Registry) Lookup(id WindowID) (*Window, error) {
	w, ok := g.windows.Load(id)
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrRevoked, id)
	}
	return w.(*Window), nil
}

// Read serves a one-sided read against window id.
func (g *Registry) Read(id WindowID, off, length int) ([]byte, error) {
	w, err := g.Lookup(id)
	if err != nil {
		return nil, err
	}
	return w.Region.Read(off, length)
}

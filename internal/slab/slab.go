// Package slab implements the slab-based allocator governing CliqueMap's
// data region (§4.1): "the memory pool for DataEntries is governed by a
// slab-based allocator and tuned to the deployment's workload. Slabs can be
// repurposed to different size classes as values come and go."
//
// The allocator carves a contiguous byte pool into fixed-size slabs; each
// slab is assigned to one size class and split into equal chunks. All
// allocation happens inside backend RPC handlers; with those handlers now
// dispatched concurrently, the fast path is synchronized per size class so
// SETs of different sizes never contend, and a central mutex serializes
// only the slow path (slab assignment, repurposing, pool growth).
//
// Lock ordering: central mu → class mu. The fast path takes a single class
// mutex and nothing else; the slow path takes the central mutex first and
// then individual class mutexes one at a time. A slab's classIdx can only
// change under both the central mutex and its current class's mutex, so
// holding a class mutex pins every slab of that class.
package slab

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNoCapacity reports that no chunk could be carved out; the caller (the
// backend's SET handler) responds by evicting (§4.2, capacity conflict) or
// by growing the data region (§4.1, reshaping).
var ErrNoCapacity = errors.New("slab: no capacity")

// Ref locates an allocated chunk inside the pool: the RMA-friendly pointer
// of §3 is built from this (region id, offset, size).
type Ref struct {
	Offset int // byte offset into the pool
	Size   int // chunk size (size class), ≥ requested length
}

// DefaultSizeClasses spans 64B to 128KB in powers of two, covering the
// object-size CDF of Figure 10 (most values ≤ a few KB, tail to ~100KB).
func DefaultSizeClasses() []int {
	var cs []int
	for c := 64; c <= 128*1024; c *= 2 {
		cs = append(cs, c)
	}
	return cs
}

type slabState struct {
	classIdx atomic.Int32 // -1 if unassigned; changes only under central mu + old class mu
	used     atomic.Int32 // allocated chunk count; mutated under class mu
	free     []int        // free chunk offsets within this slab; guarded by class mu
}

type classState struct {
	mu    sync.Mutex
	slabs []int // slab indices assigned to this class with free chunks (may be stale)
}

// Allocator manages a pool of poolSize bytes divided into slabSize slabs.
type Allocator struct {
	slabSize int
	classes  []int         // immutable after New
	states   []*classState // one per class, immutable slice

	mu        sync.Mutex // central: freeSlabs, slab assignment, growth
	freeSlabs []int      // indices of unassigned slabs

	slabs atomic.Pointer[[]*slabState] // grows under central mu; elements stable

	poolSize  atomic.Int64 // bytes in the pool
	allocated atomic.Int64 // bytes in allocated chunks (by size class)
	requested atomic.Int64 // bytes actually requested by callers
}

// New returns an allocator over poolSize bytes with the given slab size and
// size classes (DefaultSizeClasses if nil). poolSize is rounded down to a
// multiple of slabSize. Classes larger than slabSize are rejected.
func New(poolSize, slabSize int, classes []int) (*Allocator, error) {
	if slabSize <= 0 || poolSize < slabSize {
		return nil, fmt.Errorf("slab: pool %d / slab %d invalid", poolSize, slabSize)
	}
	if classes == nil {
		for _, c := range DefaultSizeClasses() {
			if c <= slabSize {
				classes = append(classes, c)
			}
		}
	}
	for i, c := range classes {
		if c <= 0 || c > slabSize {
			return nil, fmt.Errorf("slab: class %d (%dB) exceeds slab size %d", i, c, slabSize)
		}
		if i > 0 && classes[i] <= classes[i-1] {
			return nil, errors.New("slab: classes must be strictly increasing")
		}
	}
	n := poolSize / slabSize
	a := &Allocator{
		slabSize: slabSize,
		classes:  classes,
		states:   make([]*classState, len(classes)),
	}
	for i := range a.states {
		a.states[i] = &classState{}
	}
	slabs := make([]*slabState, n)
	for i := range slabs {
		slabs[i] = &slabState{}
		slabs[i].classIdx.Store(-1)
		a.freeSlabs = append(a.freeSlabs, i)
	}
	a.slabs.Store(&slabs)
	a.poolSize.Store(int64(n * slabSize))
	return a, nil
}

// classFor returns the smallest class index fitting size, or -1.
func (a *Allocator) classFor(size int) int {
	for i, c := range a.classes {
		if c >= size {
			return i
		}
	}
	return -1
}

// Alloc carves a chunk of at least size bytes. On success the returned Ref
// is stable until Free.
func (a *Allocator) Alloc(size int) (Ref, error) {
	if size <= 0 {
		return Ref{}, fmt.Errorf("slab: invalid size %d", size)
	}
	ci := a.classFor(size)
	if ci < 0 {
		return Ref{}, fmt.Errorf("slab: size %d exceeds largest class %d", size, a.classes[len(a.classes)-1])
	}

	// Fast path: a slab of this class with free chunks, under the class
	// mutex only.
	cs := a.states[ci]
	slabs := *a.slabs.Load()
	cs.mu.Lock()
	for len(cs.slabs) > 0 {
		si := cs.slabs[len(cs.slabs)-1]
		s := slabs[si]
		if int(s.classIdx.Load()) == ci && len(s.free) > 0 {
			r := a.take(s, ci, size)
			cs.mu.Unlock()
			return r, nil
		}
		// Stale entry (slab repurposed or exhausted): drop it.
		cs.slabs = cs.slabs[:len(cs.slabs)-1]
	}
	cs.mu.Unlock()

	// Slow path: assign a fresh slab to this class under the central mutex.
	a.mu.Lock()
	defer a.mu.Unlock()
	si, ok := a.takeFreeSlabLocked()
	if !ok {
		return Ref{}, ErrNoCapacity
	}
	slabs = *a.slabs.Load()
	s := slabs[si]
	// The slab is off every list, so no one else can touch it until it is
	// published into the class list below.
	chunk := a.classes[ci]
	n := a.slabSize / chunk
	s.free = make([]int, 0, n)
	base := si * a.slabSize
	for k := n - 1; k >= 0; k-- {
		s.free = append(s.free, base+k*chunk)
	}
	s.used.Store(0)
	s.classIdx.Store(int32(ci))
	cs.mu.Lock()
	cs.slabs = append(cs.slabs, si)
	r := a.take(s, ci, size)
	cs.mu.Unlock()
	return r, nil
}

// takeFreeSlabLocked pops an unassigned slab; central mu held.
func (a *Allocator) takeFreeSlabLocked() (int, bool) {
	// Reclaim any fully-empty assigned slabs first (repurposing, §4.1).
	if len(a.freeSlabs) == 0 {
		slabs := *a.slabs.Load()
		for si, s := range slabs {
			ci := int(s.classIdx.Load())
			if ci < 0 {
				continue
			}
			cs := a.states[ci]
			cs.mu.Lock()
			if int(s.classIdx.Load()) == ci && s.used.Load() == 0 {
				s.classIdx.Store(-1)
				s.free = nil
				a.freeSlabs = append(a.freeSlabs, si)
			}
			cs.mu.Unlock()
		}
	}
	if len(a.freeSlabs) == 0 {
		return 0, false
	}
	si := a.freeSlabs[len(a.freeSlabs)-1]
	a.freeSlabs = a.freeSlabs[:len(a.freeSlabs)-1]
	return si, true
}

// take pops a chunk from s; the class mutex for ci is held.
func (a *Allocator) take(s *slabState, ci, reqSize int) Ref {
	off := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.used.Add(1)
	a.allocated.Add(int64(a.classes[ci]))
	a.requested.Add(int64(reqSize))
	return Ref{Offset: off, Size: a.classes[ci]}
}

// Free returns a chunk to its slab. The ref must have come from Alloc and
// reqSize must be the size originally requested.
func (a *Allocator) Free(r Ref, reqSize int) error {
	slabs := *a.slabs.Load()
	si := r.Offset / a.slabSize
	if si < 0 || si >= len(slabs) {
		return fmt.Errorf("slab: ref offset %d out of pool", r.Offset)
	}
	s := slabs[si]
	for {
		ci := int(s.classIdx.Load())
		if ci < 0 || a.classes[ci] != r.Size {
			return fmt.Errorf("slab: ref size %d does not match slab class", r.Size)
		}
		cs := a.states[ci]
		cs.mu.Lock()
		if int(s.classIdx.Load()) != ci {
			// Repurposed between the load and the lock (only possible on a
			// bad ref — a live chunk pins its slab's class); retry.
			cs.mu.Unlock()
			continue
		}
		if (r.Offset-si*a.slabSize)%r.Size != 0 {
			cs.mu.Unlock()
			return fmt.Errorf("slab: ref offset %d misaligned for class %d", r.Offset, r.Size)
		}
		s.free = append(s.free, r.Offset)
		s.used.Add(-1)
		a.allocated.Add(-int64(r.Size))
		a.requested.Add(-int64(reqSize))
		if s.used.Load() > 0 {
			cs.slabs = append(cs.slabs, si)
		}
		cs.mu.Unlock()
		return nil
	}
}

// Stats describes allocator occupancy.
type Stats struct {
	PoolBytes      int     // total pool capacity
	AllocatedBytes int     // bytes held in allocated chunks (class-rounded)
	RequestedBytes int     // bytes the callers actually asked for
	FreeSlabs      int     // unassigned slabs
	Utilization    float64 // allocated / pool
	InternalFrag   float64 // 1 - requested/allocated
}

// Stats returns a snapshot.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	free := len(a.freeSlabs)
	a.mu.Unlock()
	slabs := *a.slabs.Load()
	for _, s := range slabs {
		if s.classIdx.Load() >= 0 && s.used.Load() == 0 {
			free++
		}
	}
	pool := int(a.poolSize.Load())
	alloc := int(a.allocated.Load())
	st := Stats{
		PoolBytes:      pool,
		AllocatedBytes: alloc,
		RequestedBytes: int(a.requested.Load()),
		FreeSlabs:      free,
	}
	if pool > 0 {
		st.Utilization = float64(alloc) / float64(pool)
	}
	if alloc > 0 {
		st.InternalFrag = 1 - float64(st.RequestedBytes)/float64(alloc)
	}
	return st
}

// AllocatedBytes returns bytes held in allocated chunks, lock-free. Hot
// paths (the backend's per-alloc growth check) use this instead of Stats.
func (a *Allocator) AllocatedBytes() int { return int(a.allocated.Load()) }

// Grow extends the pool by additional bytes (rounded down to whole slabs),
// modelling data-region reshaping (§4.1): the address range was reserved up
// front, and Grow populates more of it.
func (a *Allocator) Grow(additional int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := additional / a.slabSize
	if n <= 0 {
		return 0
	}
	old := *a.slabs.Load()
	slabs := make([]*slabState, len(old)+n)
	copy(slabs, old)
	for i := 0; i < n; i++ {
		s := &slabState{}
		s.classIdx.Store(-1)
		slabs[len(old)+i] = s
		a.freeSlabs = append(a.freeSlabs, len(old)+i)
	}
	a.slabs.Store(&slabs)
	a.poolSize.Add(int64(n * a.slabSize))
	return n * a.slabSize
}

// PoolBytes returns the current pool capacity.
func (a *Allocator) PoolBytes() int { return int(a.poolSize.Load()) }

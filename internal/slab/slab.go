// Package slab implements the slab-based allocator governing CliqueMap's
// data region (§4.1): "the memory pool for DataEntries is governed by a
// slab-based allocator and tuned to the deployment's workload. Slabs can be
// repurposed to different size classes as values come and go."
//
// The allocator carves a contiguous byte pool into fixed-size slabs; each
// slab is assigned to one size class and split into equal chunks. Because
// all allocation happens inside backend RPC handlers, the allocator is
// plain mutex-guarded code — exactly the "familiar programming abstraction"
// the paper credits RPC-side allocation for.
package slab

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoCapacity reports that no chunk could be carved out; the caller (the
// backend's SET handler) responds by evicting (§4.2, capacity conflict) or
// by growing the data region (§4.1, reshaping).
var ErrNoCapacity = errors.New("slab: no capacity")

// Ref locates an allocated chunk inside the pool: the RMA-friendly pointer
// of §3 is built from this (region id, offset, size).
type Ref struct {
	Offset int // byte offset into the pool
	Size   int // chunk size (size class), ≥ requested length
}

// DefaultSizeClasses spans 64B to 128KB in powers of two, covering the
// object-size CDF of Figure 10 (most values ≤ a few KB, tail to ~100KB).
func DefaultSizeClasses() []int {
	var cs []int
	for c := 64; c <= 128*1024; c *= 2 {
		cs = append(cs, c)
	}
	return cs
}

type slabState struct {
	classIdx int   // -1 if unassigned
	free     []int // free chunk offsets within this slab
	used     int   // allocated chunk count
}

// Allocator manages a pool of poolSize bytes divided into slabSize slabs.
type Allocator struct {
	mu         sync.Mutex
	slabSize   int
	classes    []int
	slabs      []slabState
	poolSize   int
	freeSlabs  []int   // indices of unassigned slabs
	classSlabs [][]int // per-class slab indices with free chunks (may be stale)

	allocated int // bytes in allocated chunks (by size class)
	requested int // bytes actually requested by callers
}

// New returns an allocator over poolSize bytes with the given slab size and
// size classes (DefaultSizeClasses if nil). poolSize is rounded down to a
// multiple of slabSize. Classes larger than slabSize are rejected.
func New(poolSize, slabSize int, classes []int) (*Allocator, error) {
	if slabSize <= 0 || poolSize < slabSize {
		return nil, fmt.Errorf("slab: pool %d / slab %d invalid", poolSize, slabSize)
	}
	if classes == nil {
		for _, c := range DefaultSizeClasses() {
			if c <= slabSize {
				classes = append(classes, c)
			}
		}
	}
	for i, c := range classes {
		if c <= 0 || c > slabSize {
			return nil, fmt.Errorf("slab: class %d (%dB) exceeds slab size %d", i, c, slabSize)
		}
		if i > 0 && classes[i] <= classes[i-1] {
			return nil, errors.New("slab: classes must be strictly increasing")
		}
	}
	n := poolSize / slabSize
	a := &Allocator{
		slabSize:   slabSize,
		classes:    classes,
		slabs:      make([]slabState, n),
		poolSize:   n * slabSize,
		classSlabs: make([][]int, len(classes)),
	}
	for i := range a.slabs {
		a.slabs[i].classIdx = -1
		a.freeSlabs = append(a.freeSlabs, i)
	}
	return a, nil
}

// classFor returns the smallest class index fitting size, or -1.
func (a *Allocator) classFor(size int) int {
	for i, c := range a.classes {
		if c >= size {
			return i
		}
	}
	return -1
}

// Alloc carves a chunk of at least size bytes. On success the returned Ref
// is stable until Free.
func (a *Allocator) Alloc(size int) (Ref, error) {
	if size <= 0 {
		return Ref{}, fmt.Errorf("slab: invalid size %d", size)
	}
	ci := a.classFor(size)
	if ci < 0 {
		return Ref{}, fmt.Errorf("slab: size %d exceeds largest class %d", size, a.classes[len(a.classes)-1])
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	// Fast path: a slab of this class with free chunks.
	list := a.classSlabs[ci]
	for len(list) > 0 {
		si := list[len(list)-1]
		s := &a.slabs[si]
		if s.classIdx == ci && len(s.free) > 0 {
			return a.take(si, ci, size), nil
		}
		// Stale entry (slab repurposed or exhausted): drop it.
		list = list[:len(list)-1]
		a.classSlabs[ci] = list
	}
	// Assign a fresh slab to this class.
	if si, ok := a.takeFreeSlab(); ok {
		a.assign(si, ci)
		return a.take(si, ci, size), nil
	}
	return Ref{}, ErrNoCapacity
}

func (a *Allocator) takeFreeSlab() (int, bool) {
	// Reclaim any fully-empty assigned slabs first (repurposing, §4.1).
	if len(a.freeSlabs) == 0 {
		for si := range a.slabs {
			s := &a.slabs[si]
			if s.classIdx >= 0 && s.used == 0 {
				s.classIdx = -1
				s.free = nil
				a.freeSlabs = append(a.freeSlabs, si)
			}
		}
	}
	if len(a.freeSlabs) == 0 {
		return 0, false
	}
	si := a.freeSlabs[len(a.freeSlabs)-1]
	a.freeSlabs = a.freeSlabs[:len(a.freeSlabs)-1]
	return si, true
}

func (a *Allocator) assign(si, ci int) {
	s := &a.slabs[si]
	chunk := a.classes[ci]
	s.classIdx = ci
	s.used = 0
	n := a.slabSize / chunk
	s.free = make([]int, 0, n)
	base := si * a.slabSize
	for k := n - 1; k >= 0; k-- {
		s.free = append(s.free, base+k*chunk)
	}
	a.classSlabs[ci] = append(a.classSlabs[ci], si)
}

func (a *Allocator) take(si, ci, reqSize int) Ref {
	s := &a.slabs[si]
	off := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.used++
	a.allocated += a.classes[ci]
	a.requested += reqSize
	return Ref{Offset: off, Size: a.classes[ci]}
}

// Free returns a chunk to its slab. The ref must have come from Alloc and
// reqSize must be the size originally requested.
func (a *Allocator) Free(r Ref, reqSize int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	si := r.Offset / a.slabSize
	if si < 0 || si >= len(a.slabs) {
		return fmt.Errorf("slab: ref offset %d out of pool", r.Offset)
	}
	s := &a.slabs[si]
	if s.classIdx < 0 || a.classes[s.classIdx] != r.Size {
		return fmt.Errorf("slab: ref size %d does not match slab class", r.Size)
	}
	if (r.Offset-si*a.slabSize)%r.Size != 0 {
		return fmt.Errorf("slab: ref offset %d misaligned for class %d", r.Offset, r.Size)
	}
	s.free = append(s.free, r.Offset)
	s.used--
	a.allocated -= r.Size
	a.requested -= reqSize
	if s.used > 0 {
		a.classSlabs[s.classIdx] = append(a.classSlabs[s.classIdx], si)
	}
	return nil
}

// Stats describes allocator occupancy.
type Stats struct {
	PoolBytes      int     // total pool capacity
	AllocatedBytes int     // bytes held in allocated chunks (class-rounded)
	RequestedBytes int     // bytes the callers actually asked for
	FreeSlabs      int     // unassigned slabs
	Utilization    float64 // allocated / pool
	InternalFrag   float64 // 1 - requested/allocated
}

// Stats returns a snapshot.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	free := len(a.freeSlabs)
	for si := range a.slabs {
		s := &a.slabs[si]
		if s.classIdx >= 0 && s.used == 0 {
			free++
		}
	}
	st := Stats{
		PoolBytes:      a.poolSize,
		AllocatedBytes: a.allocated,
		RequestedBytes: a.requested,
		FreeSlabs:      free,
	}
	if a.poolSize > 0 {
		st.Utilization = float64(a.allocated) / float64(a.poolSize)
	}
	if a.allocated > 0 {
		st.InternalFrag = 1 - float64(a.requested)/float64(a.allocated)
	}
	return st
}

// Grow extends the pool by additional bytes (rounded down to whole slabs),
// modelling data-region reshaping (§4.1): the address range was reserved up
// front, and Grow populates more of it.
func (a *Allocator) Grow(additional int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := additional / a.slabSize
	for i := 0; i < n; i++ {
		a.slabs = append(a.slabs, slabState{classIdx: -1})
		a.freeSlabs = append(a.freeSlabs, len(a.slabs)-1)
	}
	a.poolSize += n * a.slabSize
	return n * a.slabSize
}

// PoolBytes returns the current pool capacity.
func (a *Allocator) PoolBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.poolSize
}

package slab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, pool, slabSize int, classes []int) *Allocator {
	t.Helper()
	a, err := New(pool, slabSize, classes)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocBasic(t *testing.T) {
	a := mustNew(t, 1<<20, 1<<16, nil)
	r, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 128 {
		t.Errorf("size class = %d, want 128", r.Size)
	}
	if r.Offset%128 != 0 {
		t.Errorf("offset %d misaligned", r.Offset)
	}
	if err := a.Free(r, 100); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.AllocatedBytes != 0 || st.RequestedBytes != 0 {
		t.Errorf("stats after free: %+v", st)
	}
}

func TestAllocDistinctRefs(t *testing.T) {
	a := mustNew(t, 1<<20, 1<<16, nil)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		r, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.Offset] {
			t.Fatalf("duplicate offset %d", r.Offset)
		}
		seen[r.Offset] = true
	}
}

func TestAllocExhaustion(t *testing.T) {
	// 2 slabs of 1KB, class 1KB → exactly 2 chunks.
	a := mustNew(t, 2048, 1024, []int{1024})
	r1, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1000); err != ErrNoCapacity {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	a.Free(r1, 1000)
	if _, err := a.Alloc(1000); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestSlabRepurposing(t *testing.T) {
	// One slab only. Fill with small chunks, free all, then allocate a
	// large chunk: the slab must be repurposed to the new class.
	a := mustNew(t, 1024, 1024, []int{64, 512})
	var refs []Ref
	for {
		r, err := a.Alloc(64)
		if err != nil {
			break
		}
		refs = append(refs, r)
	}
	if len(refs) != 16 {
		t.Fatalf("filled %d chunks, want 16", len(refs))
	}
	if _, err := a.Alloc(512); err != ErrNoCapacity {
		t.Fatalf("full slab should reject other class: %v", err)
	}
	for _, r := range refs {
		a.Free(r, 64)
	}
	if _, err := a.Alloc(512); err != nil {
		t.Fatalf("repurposing failed: %v", err)
	}
}

func TestSizeClassSelection(t *testing.T) {
	a := mustNew(t, 1<<22, 1<<18, nil)
	cases := map[int]int{1: 64, 64: 64, 65: 128, 4096: 4096, 4097: 8192, 128 * 1024: 128 * 1024}
	for req, want := range cases {
		r, err := a.Alloc(req)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", req, err)
		}
		if r.Size != want {
			t.Errorf("Alloc(%d) class = %d, want %d", req, r.Size, want)
		}
	}
	if _, err := a.Alloc(128*1024 + 1); err == nil {
		t.Error("oversize alloc should fail")
	}
}

func TestAllocInvalidSize(t *testing.T) {
	a := mustNew(t, 1<<20, 1<<16, nil)
	if _, err := a.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Error("Alloc(-5) should fail")
	}
}

func TestFreeValidation(t *testing.T) {
	a := mustNew(t, 1<<20, 1<<16, nil)
	r, _ := a.Alloc(64)
	if err := a.Free(Ref{Offset: 1 << 21, Size: 64}, 64); err == nil {
		t.Error("out-of-pool free should fail")
	}
	if err := a.Free(Ref{Offset: r.Offset, Size: 4096}, 64); err == nil {
		t.Error("wrong-class free should fail")
	}
	if err := a.Free(Ref{Offset: r.Offset + 1, Size: 64}, 64); err == nil {
		t.Error("misaligned free should fail")
	}
	if err := a.Free(r, 64); err != nil {
		t.Error(err)
	}
}

func TestGrow(t *testing.T) {
	a := mustNew(t, 1024, 1024, []int{1024})
	if _, err := a.Alloc(1024); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1024); err != ErrNoCapacity {
		t.Fatal("expected exhaustion")
	}
	grew := a.Grow(2100)
	if grew != 2048 {
		t.Errorf("Grow(2100) = %d, want 2048 (whole slabs)", grew)
	}
	if a.PoolBytes() != 3072 {
		t.Errorf("pool = %d", a.PoolBytes())
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Errorf("alloc after grow: %v", err)
	}
}

func TestStatsFragmentation(t *testing.T) {
	a := mustNew(t, 1<<20, 1<<16, []int{128})
	a.Alloc(64) // 50% internal fragmentation
	st := a.Stats()
	if st.AllocatedBytes != 128 || st.RequestedBytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
	if st.InternalFrag != 0.5 {
		t.Errorf("frag = %v, want 0.5", st.InternalFrag)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 1024, nil); err == nil {
		t.Error("pool smaller than slab should fail")
	}
	if _, err := New(1<<20, 1024, []int{2048}); err == nil {
		t.Error("class larger than slab should fail")
	}
	if _, err := New(1<<20, 1024, []int{128, 128}); err == nil {
		t.Error("non-increasing classes should fail")
	}
	if _, err := New(1<<20, 0, nil); err == nil {
		t.Error("zero slab size should fail")
	}
}

// TestChurnProperty simulates value churn: random alloc/free sequences must
// preserve the no-overlap invariant and account bytes exactly.
func TestChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := New(1<<18, 1<<14, nil)
		type live struct {
			r   Ref
			req int
		}
		var alive []live
		occupied := map[int]int{} // offset -> size
		for step := 0; step < 2000; step++ {
			if len(alive) == 0 || rng.Intn(2) == 0 {
				req := 1 + rng.Intn(8192)
				r, err := a.Alloc(req)
				if err != nil {
					continue // exhaustion is fine
				}
				// Overlap check against all live chunks.
				for off, sz := range occupied {
					if r.Offset < off+sz && off < r.Offset+r.Size {
						return false
					}
				}
				occupied[r.Offset] = r.Size
				alive = append(alive, live{r, req})
			} else {
				i := rng.Intn(len(alive))
				l := alive[i]
				if err := a.Free(l.r, l.req); err != nil {
					return false
				}
				delete(occupied, l.r.Offset)
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
			}
		}
		// Accounting: allocated bytes == sum of live class sizes.
		var sum int
		for _, sz := range occupied {
			sum += sz
		}
		return a.Stats().AllocatedBytes == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a, _ := New(1<<24, 1<<18, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := a.Alloc(1024)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(r, 1024)
	}
}

// Package fleet is the scrape-and-merge half of the observability plane:
// a pull-based aggregator that polls every cell of a federation tier over
// the existing additive methods (Stats, Debug, Health, Tier), merges the
// per-cell answers into one fleet view — true merged latency percentiles
// (raw histogram buckets travel on the wire, so the merge is exact to
// bucket resolution rather than an average of quantiles), a fleet-wide
// SLO burn verdict, a global hot-key ranking from unioned per-backend
// sketches, and a routing-skew report comparing each cell's observed load
// share against the keyspace share its ring arcs own.
//
// The aggregator is transport-agnostic: anything with the rpc Call shape
// (in-process rpc.Client, TCP gateway rpc.TCPClient) scrapes a cell, so
// the same code serves tests, cmstat -fleet, and embedded monitors. Cells
// fail independently: a cell that stops answering keeps its last good
// scrape in the view, marked stale with the time it was last seen, rather
// than vanishing from the table.
package fleet

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
)

// Caller is the scrape transport: the Call shape shared by the in-process
// rpc.Client and the TCP gateway rpc.TCPClient.
type Caller interface {
	Call(ctx context.Context, addr, method string, req []byte) ([]byte, fabric.OpTrace, error)
}

// Target names one cell and how to reach it.
type Target struct {
	Name   string
	Caller Caller
}

// Options tunes the aggregator.
type Options struct {
	// Interval between scrape rounds for Run; 0 means 2s.
	Interval time.Duration

	// Now is the wall clock (test hook); nil means time.Now.
	Now func() time.Time
}

// CellScrape is one cell's most recent successfully scraped state. When
// the latest round failed, Stale is true and the fields are the last good
// scrape, captured at At ("stale as of").
type CellScrape struct {
	Name  string
	At    time.Time `json:"at"`
	Stale bool      `json:"stale,omitempty"`
	Err   string    `json:"err,omitempty"` // last failure, "" when healthy

	Config   proto.ConfigResp           `json:"config"`
	Stats    map[string]proto.StatsResp `json:"stats,omitempty"`
	Debug    proto.DebugResp            `json:"debug"`
	DebugOK  bool                       `json:"debugOk,omitempty"`
	Health   proto.HealthResp           `json:"health"`
	HealthOK bool                       `json:"healthOk,omitempty"`
	Tier     proto.TierResp             `json:"tier"`
	TierOK   bool                       `json:"tierOk,omitempty"`
	HotKeys  []proto.DebugHotKey        `json:"hotKeys,omitempty"` // unioned across the cell's shards

	// Ops is Σ Gets+Sets across shards (cumulative); Keys and Bytes sum
	// resident keys and memory.
	Ops   uint64 `json:"ops"`
	Keys  uint64 `json:"keys"`
	Bytes uint64 `json:"bytes"`
}

// MergedHist is one kind/transport latency distribution merged across
// every contributing cell.
type MergedHist struct {
	Kind      string
	Transport string
	Count     uint64
	MeanNs    uint64
	P50Ns     uint64
	P90Ns     uint64
	P99Ns     uint64
	P999Ns    uint64
	MaxNs     uint64
	Cells     int // cells contributing observations
}

// ClassVerdict rolls one SLO class across the fleet: worst state wins,
// burn rates take the fleet max, tallies sum.
type ClassVerdict struct {
	Class         string
	State         string // worst across cells: "page" > "warn" > "ok"
	FastBurnMilli uint64 // max across cells
	SlowBurnMilli uint64
	WindowGood    uint64 // summed
	WindowBad     uint64
	Pages         uint64
	Warns         uint64
	Cells         int
}

// CellSkew compares one cell's observed share of fleet load against the
// keyspace share its ring arcs own. Shares are parts-per-million;
// RatioMilli is observed/owned ×1000 (1000 = perfectly proportional; 0
// when the cell owns nothing).
type CellSkew struct {
	Name        string
	Ops         uint64 // ops observed this interval (cumulative on the first round)
	ObservedPpm uint64
	OwnedPpm    uint64
	RatioMilli  uint64
}

// View is one merged fleet snapshot.
type View struct {
	At      time.Time
	Round   uint64
	Cells   []CellScrape // target order
	Hists   []MergedHist
	Verdict string // fleet-wide worst SLO state: "ok" | "warn" | "page" | "unknown"
	Classes []ClassVerdict
	HotKeys []proto.DebugHotKey // global union, hottest first
	Skew    []CellSkew
	Ring    proto.TierResp // freshest ring snapshot seen (highest version)
	RingOK  bool
}

// Aggregator scrapes a set of cells and maintains the latest merged View.
type Aggregator struct {
	targets []Target
	opt     Options

	mu      sync.Mutex
	last    map[string]CellScrape // last good scrape per cell
	prevOps map[string]uint64     // previous round's cumulative ops (skew deltas)
	round   uint64

	view atomic.Pointer[View]
}

// New builds an aggregator over the given cells.
func New(targets []Target, opt Options) *Aggregator {
	if opt.Interval <= 0 {
		opt.Interval = 2 * time.Second
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	return &Aggregator{
		targets: targets,
		opt:     opt,
		last:    make(map[string]CellScrape, len(targets)),
		prevOps: make(map[string]uint64, len(targets)),
	}
}

// View returns the latest merged view, or nil before the first scrape.
func (a *Aggregator) View() *View { return a.view.Load() }

// Run scrapes on the configured interval until ctx is done. The first
// round fires immediately.
func (a *Aggregator) Run(ctx context.Context) {
	t := time.NewTicker(a.opt.Interval)
	defer t.Stop()
	for {
		a.ScrapeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ScrapeOnce polls every cell once (concurrently), merges, publishes and
// returns the new view. Unreachable cells contribute their last good
// scrape, marked stale.
func (a *Aggregator) ScrapeOnce(ctx context.Context) *View {
	now := a.opt.Now()
	type result struct {
		i  int
		cs CellScrape
		ok bool
	}
	results := make([]result, len(a.targets))
	var wg sync.WaitGroup
	for i, tgt := range a.targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			cs, err := scrapeCell(ctx, tgt, now)
			if err != nil {
				results[i] = result{i: i, cs: CellScrape{Name: tgt.Name, Err: err.Error()}, ok: false}
				return
			}
			results[i] = result{i: i, cs: cs, ok: true}
		}(i, tgt)
	}
	wg.Wait()

	a.mu.Lock()
	a.round++
	round := a.round
	cells := make([]CellScrape, 0, len(a.targets))
	opsDelta := make(map[string]uint64, len(a.targets))
	for _, r := range results {
		if r.ok {
			a.last[r.cs.Name] = r.cs
			opsDelta[r.cs.Name] = r.cs.Ops - minu(a.prevOps[r.cs.Name], r.cs.Ops)
			a.prevOps[r.cs.Name] = r.cs.Ops
			cells = append(cells, r.cs)
			continue
		}
		// Failed round: surface the last good scrape (if any) marked
		// stale-as-of its capture time, so -watch readers see the cell
		// drop out without losing its last known state.
		if prev, ok := a.last[r.cs.Name]; ok {
			prev.Stale = true
			prev.Err = r.cs.Err
			cells = append(cells, prev)
		} else {
			cells = append(cells, r.cs)
		}
	}
	a.mu.Unlock()

	v := merge(now, round, cells, opsDelta)
	a.view.Store(v)
	return v
}

func minu(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// scrapeCell polls one cell: config discovery, per-shard stats, the
// cell-wide debug/health/tier planes (any shard serves them), and the
// per-backend hot-key sketches unioned across shards.
func scrapeCell(ctx context.Context, tgt Target, now time.Time) (CellScrape, error) {
	cs := CellScrape{Name: tgt.Name, At: now, Stats: make(map[string]proto.StatsResp)}
	raw, _, err := tgt.Caller.Call(ctx, "backend-0", proto.MethodConfig, nil)
	if err != nil {
		return cs, fmt.Errorf("config: %w", err)
	}
	cfg, err := proto.UnmarshalConfigResp(raw)
	if err != nil {
		return cs, fmt.Errorf("config decode: %w", err)
	}
	cs.Config = cfg

	heat := make(map[string]*proto.DebugHotKey)
	reachable := false
	for _, addr := range cfg.ShardAddrs {
		if raw, _, err := tgt.Caller.Call(ctx, addr, proto.MethodStats, nil); err == nil {
			if st, serr := proto.UnmarshalStatsResp(raw); serr == nil {
				cs.Stats[addr] = st
				cs.Ops += st.Gets + st.Sets
				cs.Keys += st.ResidentKeys
				cs.Bytes += st.MemoryBytes
				reachable = true
			}
		}
		// The tracer is cell-wide (one snapshot per cell, take the
		// first); the heavy-hitter sketch is per-backend (union all).
		raw, _, err := tgt.Caller.Call(ctx, addr, proto.MethodDebug, proto.DebugReq{MaxSlow: 1}.Marshal())
		if err != nil {
			continue
		}
		dbg, derr := proto.UnmarshalDebugResp(raw)
		if derr != nil {
			continue
		}
		if !cs.DebugOK {
			cs.Debug, cs.DebugOK = dbg, true
		}
		for _, hk := range dbg.HotKeys {
			if got, ok := heat[hk.Key]; ok {
				got.Count += hk.Count
				got.Err += hk.Err
			} else {
				cp := hk
				heat[hk.Key] = &cp
			}
		}
	}
	if !reachable {
		return cs, fmt.Errorf("no shard of %s answered stats", tgt.Name)
	}
	cs.HotKeys = rankHeat(heat)

	for _, addr := range cfg.ShardAddrs {
		raw, _, err := tgt.Caller.Call(ctx, addr, proto.MethodHealth, proto.HealthReq{}.Marshal())
		if err != nil {
			continue
		}
		if hl, herr := proto.UnmarshalHealthResp(raw); herr == nil {
			cs.Health, cs.HealthOK = hl, true
		}
		break
	}
	for _, addr := range cfg.ShardAddrs {
		raw, _, err := tgt.Caller.Call(ctx, addr, proto.MethodTier, proto.TierReq{}.Marshal())
		if err != nil {
			continue
		}
		if ti, terr := proto.UnmarshalTierResp(raw); terr == nil {
			cs.Tier, cs.TierOK = ti, true
		}
		break
	}
	return cs, nil
}

func rankHeat(heat map[string]*proto.DebugHotKey) []proto.DebugHotKey {
	out := make([]proto.DebugHotKey, 0, len(heat))
	for _, hk := range heat {
		out = append(out, *hk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// MergeHotKeys unions several heavy-hitter rankings (per-backend or
// per-cell space-saving sketches) into one global ranking, hottest
// first. Counts and error bounds sum: each input's Count over-estimates
// by at most its Err, so the union's Count over-estimates by at most the
// summed Err and the ranking's trust interval stays computable.
func MergeHotKeys(rankings ...[]proto.DebugHotKey) []proto.DebugHotKey {
	heat := make(map[string]*proto.DebugHotKey)
	for _, ranking := range rankings {
		for _, hk := range ranking {
			if got, ok := heat[hk.Key]; ok {
				got.Count += hk.Count
				got.Err += hk.Err
			} else {
				cp := hk
				heat[hk.Key] = &cp
			}
		}
	}
	return rankHeat(heat)
}

// stateRank orders SLO states for worst-wins rollups.
func stateRank(s string) int {
	switch s {
	case "page":
		return 3
	case "warn":
		return 2
	case "ok":
		return 1
	}
	return 0
}

// merge folds the per-cell scrapes into one fleet view.
func merge(now time.Time, round uint64, cells []CellScrape, opsDelta map[string]uint64) *View {
	v := &View{At: now, Round: round, Cells: cells, Verdict: "unknown"}

	// Latency: rebuild one histogram per (kind, transport) from the raw
	// buckets each cell shipped, then read fleet percentiles off the
	// merged distribution. Quantile-only hists (old senders, empty
	// buckets) cannot be merged exactly and are skipped.
	type histKey struct{ kind, transport string }
	merged := make(map[histKey]*stats.Histogram)
	contrib := make(map[histKey]int)
	var order []histKey
	for _, cs := range cells {
		if !cs.DebugOK {
			continue
		}
		for _, h := range cs.Debug.Hists {
			if len(h.Buckets) == 0 {
				continue
			}
			k := histKey{h.Kind, h.Transport}
			mh, ok := merged[k]
			if !ok {
				mh = &stats.Histogram{}
				merged[k] = mh
				order = append(order, k)
			}
			mh.AddBuckets(h.Buckets, h.SumNs, h.MaxNs)
			contrib[k]++
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].kind != order[j].kind {
			return order[i].kind < order[j].kind
		}
		return order[i].transport < order[j].transport
	})
	for _, k := range order {
		h := merged[k]
		q := h.Quantiles(50, 90, 99, 99.9)
		v.Hists = append(v.Hists, MergedHist{
			Kind: k.kind, Transport: k.transport,
			Count: h.Count(), MeanNs: uint64(h.Mean()),
			P50Ns: q[0], P90Ns: q[1], P99Ns: q[2], P999Ns: q[3],
			MaxNs: h.Max(), Cells: contrib[k],
		})
	}

	// SLO verdict: per class, worst state across cells wins; burn rates
	// report the fleet max (the cell closest to its error budget), window
	// tallies and alert counts sum.
	classes := make(map[string]*ClassVerdict)
	var classOrder []string
	healthSeen := false
	for _, cs := range cells {
		if !cs.HealthOK {
			continue
		}
		healthSeen = true
		for _, c := range cs.Health.Classes {
			cv, ok := classes[c.Class]
			if !ok {
				cv = &ClassVerdict{Class: c.Class, State: "ok"}
				classes[c.Class] = cv
				classOrder = append(classOrder, c.Class)
			}
			if stateRank(c.State) > stateRank(cv.State) {
				cv.State = c.State
			}
			if c.FastBurnMilli > cv.FastBurnMilli {
				cv.FastBurnMilli = c.FastBurnMilli
			}
			if c.SlowBurnMilli > cv.SlowBurnMilli {
				cv.SlowBurnMilli = c.SlowBurnMilli
			}
			cv.WindowGood += c.WindowGood
			cv.WindowBad += c.WindowBad
			cv.Pages += c.Pages
			cv.Warns += c.Warns
			cv.Cells++
		}
	}
	sort.Strings(classOrder)
	worst := "ok"
	for _, name := range classOrder {
		cv := classes[name]
		v.Classes = append(v.Classes, *cv)
		if stateRank(cv.State) > stateRank(worst) {
			worst = cv.State
		}
	}
	if healthSeen {
		v.Verdict = worst
	}

	// Global heat: union the per-cell (already shard-unioned) sketches.
	perCell := make([][]proto.DebugHotKey, 0, len(cells))
	for _, cs := range cells {
		perCell = append(perCell, cs.HotKeys)
	}
	v.HotKeys = MergeHotKeys(perCell...)

	// Ring: the freshest tier snapshot any cell serves.
	for _, cs := range cells {
		if cs.TierOK && (!v.RingOK || cs.Tier.RingVersion > v.Ring.RingVersion) {
			v.Ring, v.RingOK = cs.Tier, true
		}
	}

	// Routing skew: each live cell's share of the interval's observed ops
	// against the keyspace share its arcs own on the freshest ring.
	owned := make(map[string]uint64)
	if v.RingOK {
		for _, c := range v.Ring.Cells {
			owned[c.Name] = c.OwnedPpm
		}
	}
	var totalOps uint64
	for _, cs := range cells {
		if !cs.Stale && cs.Err == "" {
			totalOps += opsDelta[cs.Name]
		}
	}
	for _, cs := range cells {
		if cs.Stale || cs.Err != "" {
			continue
		}
		sk := CellSkew{Name: cs.Name, Ops: opsDelta[cs.Name], OwnedPpm: owned[cs.Name]}
		if totalOps > 0 {
			sk.ObservedPpm = opsDelta[cs.Name] * 1_000_000 / totalOps
		}
		if sk.OwnedPpm > 0 {
			sk.RatioMilli = sk.ObservedPpm * 1000 / sk.OwnedPpm
		}
		v.Skew = append(v.Skew, sk)
	}
	return v
}

// MaxSkewMilli returns the largest observed/owned ratio across cells
// (1000 = proportional), or 0 with no skew data.
func (v *View) MaxSkewMilli() uint64 {
	var m uint64
	for _, s := range v.Skew {
		if s.RatioMilli > m {
			m = s.RatioMilli
		}
	}
	return m
}

// WriteProm renders the merged fleet view as Prometheus text exposition.
func (v *View) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# TYPE cliquemap_fleet_cells gauge\n")
	fmt.Fprintf(w, "cliquemap_fleet_cells %d\n", len(v.Cells))
	fmt.Fprintf(w, "# TYPE cliquemap_fleet_cell_up gauge\n")
	for _, cs := range v.Cells {
		up := 1
		if cs.Stale || cs.Err != "" {
			up = 0
		}
		fmt.Fprintf(w, "cliquemap_fleet_cell_up{cell=%s} %d\n", strconv.Quote(cs.Name), up)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_fleet_cell_ops_total counter\n")
	for _, cs := range v.Cells {
		fmt.Fprintf(w, "cliquemap_fleet_cell_ops_total{cell=%s} %d\n", strconv.Quote(cs.Name), cs.Ops)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_fleet_op_latency_ns summary\n")
	for _, h := range v.Hists {
		base := fmt.Sprintf("kind=%s,transport=%s", strconv.Quote(h.Kind), strconv.Quote(h.Transport))
		fmt.Fprintf(w, "cliquemap_fleet_op_latency_ns{%s,quantile=\"0.5\"} %d\n", base, h.P50Ns)
		fmt.Fprintf(w, "cliquemap_fleet_op_latency_ns{%s,quantile=\"0.9\"} %d\n", base, h.P90Ns)
		fmt.Fprintf(w, "cliquemap_fleet_op_latency_ns{%s,quantile=\"0.99\"} %d\n", base, h.P99Ns)
		fmt.Fprintf(w, "cliquemap_fleet_op_latency_ns{%s,quantile=\"0.999\"} %d\n", base, h.P999Ns)
		fmt.Fprintf(w, "cliquemap_fleet_op_latency_ns_count{%s} %d\n", base, h.Count)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_fleet_slo_state gauge\n")
	fmt.Fprintf(w, "cliquemap_fleet_slo_state %d\n", stateRank(v.Verdict))
	fmt.Fprintf(w, "# TYPE cliquemap_fleet_slo_burn gauge\n")
	for _, c := range v.Classes {
		fmt.Fprintf(w, "cliquemap_fleet_slo_burn{class=%s,window=\"fast\"} %g\n",
			strconv.Quote(c.Class), float64(c.FastBurnMilli)/1000)
		fmt.Fprintf(w, "cliquemap_fleet_slo_burn{class=%s,window=\"slow\"} %g\n",
			strconv.Quote(c.Class), float64(c.SlowBurnMilli)/1000)
	}
	if len(v.HotKeys) > 0 {
		fmt.Fprintf(w, "# TYPE cliquemap_fleet_hot_key_count gauge\n")
		n := len(v.HotKeys)
		if n > 16 {
			n = 16
		}
		for _, hk := range v.HotKeys[:n] {
			fmt.Fprintf(w, "cliquemap_fleet_hot_key_count{key=%s} %d\n", strconv.Quote(hk.Key), hk.Count)
		}
	}
	if len(v.Skew) > 0 {
		fmt.Fprintf(w, "# TYPE cliquemap_fleet_route_skew gauge\n")
		for _, s := range v.Skew {
			fmt.Fprintf(w, "cliquemap_fleet_route_skew{cell=%s} %g\n",
				strconv.Quote(s.Name), float64(s.RatioMilli)/1000)
		}
	}
}

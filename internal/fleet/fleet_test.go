package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
)

// fakeCell serves canned method responses through the Caller interface,
// so merge semantics are tested without spinning up real cells.
type fakeCell struct {
	cfg    proto.ConfigResp
	stats  map[string]proto.StatsResp
	debug  map[string]proto.DebugResp // per shard addr
	health *proto.HealthResp
	tier   *proto.TierResp
	fail   bool
}

var errDown = errors.New("unreachable")

func (f *fakeCell) Call(_ context.Context, addr, method string, _ []byte) ([]byte, fabric.OpTrace, error) {
	if f.fail {
		return nil, fabric.OpTrace{}, errDown
	}
	switch method {
	case proto.MethodConfig:
		return f.cfg.Marshal(), fabric.OpTrace{}, nil
	case proto.MethodStats:
		st, ok := f.stats[addr]
		if !ok {
			return nil, fabric.OpTrace{}, errDown
		}
		return st.Marshal(), fabric.OpTrace{}, nil
	case proto.MethodDebug:
		dbg, ok := f.debug[addr]
		if !ok {
			return nil, fabric.OpTrace{}, errDown
		}
		return dbg.Marshal(), fabric.OpTrace{}, nil
	case proto.MethodHealth:
		if f.health == nil {
			return nil, fabric.OpTrace{}, errDown
		}
		return f.health.Marshal(), fabric.OpTrace{}, nil
	case proto.MethodTier:
		if f.tier == nil {
			return nil, fabric.OpTrace{}, errDown
		}
		return f.tier.Marshal(), fabric.OpTrace{}, nil
	}
	return nil, fabric.OpTrace{}, errDown
}

// wireHist renders a histogram of the given observations as its DebugHist
// wire form, the way a backend's MethodDebug handler does.
func wireHist(kind, transport string, obs []uint64) proto.DebugHist {
	var h stats.Histogram
	for _, v := range obs {
		h.Record(v)
	}
	q := h.Quantiles(50, 90, 99, 99.9)
	return proto.DebugHist{
		Kind: kind, Transport: transport,
		Count: h.Count(), MeanNs: uint64(h.Mean()),
		P50Ns: q[0], P90Ns: q[1], P99Ns: q[2], P999Ns: q[3],
		MaxNs: h.Max(), SumNs: h.Sum(), Buckets: h.Buckets(),
	}
}

func simpleCell(name string, ops uint64, hists []proto.DebugHist, hot []proto.DebugHotKey) *fakeCell {
	return &fakeCell{
		cfg: proto.ConfigResp{ShardAddrs: []string{"backend-0"}},
		stats: map[string]proto.StatsResp{
			"backend-0": {Gets: ops, ResidentKeys: 10, MemoryBytes: 1 << 20},
		},
		debug: map[string]proto.DebugResp{
			"backend-0": {OpsTotal: ops, Hists: hists, HotKeys: hot},
		},
	}
}

func TestMergedPercentilesMatchUnion(t *testing.T) {
	// Two cells with disjoint latency populations; the fleet percentiles
	// must equal a single histogram fed the union, not an average of the
	// per-cell quantiles.
	var obsA, obsB []uint64
	for i := 0; i < 900; i++ {
		obsA = append(obsA, 1000) // fast cell: 1µs
	}
	for i := 0; i < 100; i++ {
		obsB = append(obsB, 1_000_000) // slow cell: 1ms
	}
	a := New([]Target{
		{Name: "a", Caller: simpleCell("a", 900, []proto.DebugHist{wireHist("GET", "2xR", obsA)}, nil)},
		{Name: "b", Caller: simpleCell("b", 100, []proto.DebugHist{wireHist("GET", "2xR", obsB)}, nil)},
	}, Options{})
	v := a.ScrapeOnce(context.Background())
	if len(v.Hists) != 1 {
		t.Fatalf("hists: %+v", v.Hists)
	}
	var union stats.Histogram
	for _, o := range append(append([]uint64{}, obsA...), obsB...) {
		union.Record(o)
	}
	h := v.Hists[0]
	if h.Count != 1000 || h.Cells != 2 {
		t.Fatalf("count=%d cells=%d", h.Count, h.Cells)
	}
	wantQ := union.Quantiles(50, 99)
	if h.P50Ns != wantQ[0] || h.P99Ns != wantQ[1] {
		t.Errorf("merged p50/p99 = %d/%d, want %d/%d", h.P50Ns, h.P99Ns, wantQ[0], wantQ[1])
	}
	// p99 of the union is in the slow cell's population — a quantile
	// average could never land there.
	if h.P99Ns < 900_000 {
		t.Errorf("p99 %d does not reflect the slow cell", h.P99Ns)
	}
	if h.MaxNs != union.Max() || h.MeanNs != uint64(union.Mean()) {
		t.Errorf("max/mean = %d/%d, want %d/%d", h.MaxNs, h.MeanNs, union.Max(), uint64(union.Mean()))
	}
}

func TestStaleCellKeepsLastGoodScrape(t *testing.T) {
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	b := simpleCell("b", 50, nil, nil)
	a := New([]Target{
		{Name: "a", Caller: simpleCell("a", 100, nil, nil)},
		{Name: "b", Caller: b},
	}, Options{Now: clock})
	v := a.ScrapeOnce(context.Background())
	if len(v.Cells) != 2 || v.Cells[1].Stale {
		t.Fatalf("first round: %+v", v.Cells)
	}
	firstAt := v.Cells[1].At

	// Cell b drops out; its row must stay, marked stale as of the last
	// good scrape, and must no longer contribute to skew.
	b.fail = true
	now = now.Add(5 * time.Second)
	v = a.ScrapeOnce(context.Background())
	bs := v.Cells[1]
	if !bs.Stale || bs.Err == "" {
		t.Fatalf("expected stale cell b: %+v", bs)
	}
	if !bs.At.Equal(firstAt) {
		t.Errorf("stale-as-of %v, want %v", bs.At, firstAt)
	}
	if bs.Ops != 50 {
		t.Errorf("stale row lost last good state: %+v", bs)
	}
	for _, s := range v.Skew {
		if s.Name == "b" {
			t.Errorf("stale cell in skew: %+v", v.Skew)
		}
	}
}

func TestBurnVerdictRollup(t *testing.T) {
	mk := func(state string, fast uint64, pages uint64) *proto.HealthResp {
		return &proto.HealthResp{Classes: []proto.HealthClass{{
			Class: "GET", State: state, FastBurnMilli: fast,
			WindowGood: 90, WindowBad: 10, Pages: pages,
		}}}
	}
	ca := simpleCell("a", 1, nil, nil)
	ca.health = mk("ok", 500, 0)
	cb := simpleCell("b", 1, nil, nil)
	cb.health = mk("page", 14500, 2)
	a := New([]Target{{Name: "a", Caller: ca}, {Name: "b", Caller: cb}}, Options{})
	v := a.ScrapeOnce(context.Background())
	if v.Verdict != "page" {
		t.Fatalf("verdict %q, want page", v.Verdict)
	}
	if len(v.Classes) != 1 {
		t.Fatalf("classes: %+v", v.Classes)
	}
	c := v.Classes[0]
	if c.State != "page" || c.FastBurnMilli != 14500 || c.Pages != 2 ||
		c.WindowGood != 180 || c.WindowBad != 20 || c.Cells != 2 {
		t.Errorf("rollup: %+v", c)
	}
}

func TestHotKeyUnionAcrossCells(t *testing.T) {
	a := New([]Target{
		{Name: "a", Caller: simpleCell("a", 1, nil, []proto.DebugHotKey{{Key: "k1", Count: 70}, {Key: "k2", Count: 10}})},
		{Name: "b", Caller: simpleCell("b", 1, nil, []proto.DebugHotKey{{Key: "k2", Count: 80}, {Key: "k3", Count: 5}})},
	}, Options{})
	v := a.ScrapeOnce(context.Background())
	if len(v.HotKeys) != 3 {
		t.Fatalf("hot keys: %+v", v.HotKeys)
	}
	if v.HotKeys[0].Key != "k2" || v.HotKeys[0].Count != 90 {
		t.Errorf("global hottest: %+v", v.HotKeys[0])
	}
	if v.HotKeys[1].Key != "k1" || v.HotKeys[2].Key != "k3" {
		t.Errorf("ranking: %+v", v.HotKeys)
	}
}

func TestSkewAgainstRingShares(t *testing.T) {
	ca := simpleCell("a", 300, nil, nil)
	ring := &proto.TierResp{RingVersion: 7, Cells: []proto.TierCell{
		{Name: "a", OwnedPpm: 750_000},
		{Name: "b", OwnedPpm: 250_000},
	}}
	ca.tier = ring
	cb := simpleCell("b", 100, nil, nil)
	a := New([]Target{{Name: "a", Caller: ca}, {Name: "b", Caller: cb}}, Options{})
	v := a.ScrapeOnce(context.Background())
	if !v.RingOK || v.Ring.RingVersion != 7 {
		t.Fatalf("ring: %+v", v.Ring)
	}
	if len(v.Skew) != 2 {
		t.Fatalf("skew: %+v", v.Skew)
	}
	// Cell a serves 75% of ops and owns 75% of the ring: ratio 1.0.
	sa := v.Skew[0]
	if sa.ObservedPpm != 750_000 || sa.RatioMilli != 1000 {
		t.Errorf("cell a skew: %+v", sa)
	}
	if v.MaxSkewMilli() != 1000 {
		t.Errorf("max skew: %d", v.MaxSkewMilli())
	}
}

func TestWritePromExposition(t *testing.T) {
	ca := simpleCell("a", 10, []proto.DebugHist{wireHist("GET", "2xR", []uint64{1000, 2000})},
		[]proto.DebugHotKey{{Key: "hot\"key", Count: 9}})
	ca.health = &proto.HealthResp{Classes: []proto.HealthClass{{Class: "GET", State: "warn", FastBurnMilli: 2500}}}
	a := New([]Target{{Name: "a", Caller: ca}}, Options{})
	v := a.ScrapeOnce(context.Background())
	var buf bytes.Buffer
	v.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"cliquemap_fleet_cells 1",
		`cliquemap_fleet_cell_up{cell="a"} 1`,
		`cliquemap_fleet_op_latency_ns{kind="GET",transport="2xR",quantile="0.99"}`,
		"cliquemap_fleet_slo_state 2",
		`cliquemap_fleet_slo_burn{class="GET",window="fast"} 2.5`,
		`cliquemap_fleet_hot_key_count{key="hot\"key"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// Resilience layer: the client-side hardening that turns §3's "retries
// are the universal hazard handler" into a production policy. Retries are
// paced by capped exponential backoff (billed as virtual time, so the
// latency model sees the pause), bounded by a token-bucket retry budget
// shared across the client's ops (so a brownout cannot amplify offered
// load without bound), and steered by per-replica health scores that
// demote browned-out backends from the preferred-read role until a probe
// succeeds. Slow data reads are hedged to a backup quorum member.
package client

import (
	"sync"
	"sync/atomic"
)

// BackoffPolicy paces retries: attempt n sleeps min(cap, base<<n) with
// proportional jitter. The sleep is virtual — it extends the op's
// modelled latency (SpanBackoff) rather than blocking the goroutine, so
// simulated experiments stay fast while the latency story stays honest.
type BackoffPolicy struct {
	BaseNs     uint64  // first retry's delay (default 20µs)
	CapNs      uint64  // ceiling (default 2ms)
	JitterFrac float64 // fraction of the delay randomized (default 0.5)
}

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.BaseNs == 0 {
		p.BaseNs = 20_000
	}
	if p.CapNs == 0 {
		p.CapNs = 2_000_000
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	return p
}

// delay computes attempt's backoff (attempt 1 = first retry).
func (p BackoffPolicy) delay(attempt int, rnd uint64) uint64 {
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseNs
	for i := 1; i < attempt && d < p.CapNs; i++ {
		d <<= 1
	}
	if d > p.CapNs {
		d = p.CapNs
	}
	jitter := uint64(float64(d) * p.JitterFrac)
	if jitter > 0 {
		// rnd is already well-mixed; fold it into [0, jitter).
		d = d - jitter + rnd%jitter
	}
	return d
}

// RetryBudget is a token bucket debited one token per retry and credited
// a fraction of a token per success, shared across every op the client
// runs (§9: unchecked retries turn a brownout into a self-inflicted
// outage). Tokens are tracked in milli-units so fractional credit stays
// integer and atomic.
type RetryBudget struct {
	milli  atomic.Int64
	cap    int64 // milli-tokens
	credit int64 // milli-tokens per success
}

// NewRetryBudget builds a budget holding capacity tokens, refilled by
// credit tokens per successful op. Zero values take the defaults
// (capacity 10, credit 0.1).
func NewRetryBudget(capacity, credit float64) *RetryBudget {
	if capacity <= 0 {
		capacity = 10
	}
	if credit <= 0 {
		credit = 0.1
	}
	b := &RetryBudget{cap: int64(capacity * 1000), credit: int64(credit * 1000)}
	b.milli.Store(b.cap)
	return b
}

// TryTake debits one retry token, reporting false when the budget is
// exhausted — the caller must fail promptly rather than retry.
func (b *RetryBudget) TryTake() bool {
	for {
		cur := b.milli.Load()
		if cur < 1000 {
			return false
		}
		if b.milli.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// Credit refills the bucket after a successful op, capped at capacity.
func (b *RetryBudget) Credit() {
	for {
		cur := b.milli.Load()
		next := cur + b.credit
		if next > b.cap {
			next = b.cap
		}
		if next == cur || b.milli.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Remaining reports whole tokens left (for tests and stats).
func (b *RetryBudget) Remaining() float64 { return float64(b.milli.Load()) / 1000 }

// Health-score constants. Scores live in milli-units 0..1000: failures
// pull the score up toward 1000 by healthFailStep, successes decay it
// multiplicatively. A replica at or above healthDemote is demoted from
// the preferred-read role; while demoted, one in healthProbeEvery
// selections is allowed through as a probe so recovery is observed.
const (
	healthFailStep   = 300
	healthDecayNum   = 7 // success: score = score*7/10
	healthDecayDen   = 10
	healthDemote     = 500
	healthRecover    = 250
	healthProbeEvery = 16
)

// replicaHealth is one backend's client-observed failure EWMA.
type replicaHealth struct {
	scoreMilli int64
	demoted    bool
	probes     uint64
}

// healthState holds per-replica scores behind a single atomic gate: while
// every replica is healthy (the steady state) the hot path pays one
// atomic load and never touches the mutex.
type healthState struct {
	active atomic.Int32 // number of addrs with nonzero score
	mu     sync.Mutex
	m      map[string]*replicaHealth
}

func (h *healthState) get(addr string) *replicaHealth {
	if h.m == nil {
		h.m = make(map[string]*replicaHealth)
	}
	r := h.m[addr]
	if r == nil {
		r = &replicaHealth{}
		h.m[addr] = r
	}
	return r
}

// noteFailure worsens addr's score, returning (score, demoted) so the
// caller can export the gauge outside the lock.
func (h *healthState) noteFailure(addr string) (int64, bool) {
	h.mu.Lock()
	r := h.get(addr)
	if r.scoreMilli == 0 {
		h.active.Add(1)
	}
	r.scoreMilli += healthFailStep
	if r.scoreMilli > 1000 {
		r.scoreMilli = 1000
	}
	if !r.demoted && r.scoreMilli >= healthDemote {
		r.demoted = true
	}
	score, dem := r.scoreMilli, r.demoted
	h.mu.Unlock()
	return score, dem
}

// noteSuccess decays addr's score. Cheap no-op while everything is
// healthy. Returns (score, demoted, changed).
func (h *healthState) noteSuccess(addr string) (int64, bool, bool) {
	if h.active.Load() == 0 {
		return 0, false, false
	}
	h.mu.Lock()
	r := h.m[addr]
	if r == nil || r.scoreMilli == 0 {
		h.mu.Unlock()
		return 0, false, false
	}
	r.scoreMilli = r.scoreMilli * healthDecayNum / healthDecayDen
	if r.scoreMilli < 10 {
		r.scoreMilli = 0
		h.active.Add(-1)
	}
	if r.demoted && r.scoreMilli < healthRecover {
		r.demoted = false
	}
	score, dem := r.scoreMilli, r.demoted
	h.mu.Unlock()
	return score, dem, true
}

// demoted reports whether addr should be passed over for preferred
// reads. Every healthProbeEvery-th call on a demoted replica answers
// false — a probe — so a recovered backend earns its score back.
func (h *healthState) demoted(addr string) bool {
	if h.active.Load() == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.m[addr]
	if r == nil || !r.demoted {
		return false
	}
	r.probes++
	return r.probes%healthProbeEvery != 0
}

// rand64 advances the client's xorshift state (same recurrence as the
// fabric's samplers; seeded per client so runs replay deterministically).
func (c *Client) rand64() uint64 {
	for {
		x := c.rngState.Load()
		n := x
		n ^= n << 13
		n ^= n >> 7
		n ^= n << 17
		if c.rngState.CompareAndSwap(x, n) {
			return n * 0x2545f4914f6cdd1d
		}
	}
}

// noteReplicaFailure feeds the health score and exports the gauge.
func (c *Client) noteReplicaFailure(addr string) {
	if c.opt.NoHealth || addr == "" {
		return
	}
	score, dem := c.health.noteFailure(addr)
	if c.opt.Tracer != nil {
		c.opt.Tracer.SetReplicaHealth(addr, float64(score)/1000, dem)
	}
}

// noteReplicaSuccess decays the health score and exports the gauge.
func (c *Client) noteReplicaSuccess(addr string) {
	if c.opt.NoHealth || addr == "" {
		return
	}
	score, dem, changed := c.health.noteSuccess(addr)
	if changed && c.opt.Tracer != nil {
		c.opt.Tracer.SetReplicaHealth(addr, float64(score)/1000, dem)
	}
}

// replicaDemoted reports whether the health layer wants addr skipped for
// preferred reads this time.
func (c *Client) replicaDemoted(addr string) bool {
	if c.opt.NoHealth {
		return false
	}
	return c.health.demoted(addr)
}

// observeDataNs feeds the rolling data-read latency estimate that sets
// the hedging threshold. A racy EWMA is fine: it only tunes a heuristic.
func (c *Client) observeDataNs(ns uint64) {
	old := c.dataEWMA.Load()
	if old == 0 {
		c.dataEWMA.Store(ns)
		return
	}
	c.dataEWMA.Store(old - old/8 + ns/8)
}

// hedgeAfterNs returns the virtual delay after which a data read should
// be hedged to a backup replica (≈ rolling p99: 4× the EWMA), or 0 when
// hedging is off or uncalibrated.
func (c *Client) hedgeAfterNs() uint64 {
	if c.opt.NoHedge {
		return 0
	}
	return 4 * c.dataEWMA.Load()
}

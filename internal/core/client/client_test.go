package client

import (
	"context"
	"fmt"
	"testing"

	"cliquemap/internal/core/backend"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/nic"
	"cliquemap/internal/pony"
	"cliquemap/internal/rmem"
	"cliquemap/internal/rpc"
	"cliquemap/internal/stats"
	"cliquemap/internal/truetime"
)

// rig assembles a 3-backend R=3.2 cell by hand (without internal/core/cell,
// which has its own tests) so client behaviours can be probed in isolation.
type rig struct {
	f        *fabric.Fabric
	net      *rpc.Network
	store    *config.Store
	backends []*backend.Backend
	nics     []*pony.NIC
	acct     *stats.CPUAccount
	clock    *truetime.SystemClock
}

const clientHost = 3

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		f:     fabric.New(5, fabric.Params{}),
		acct:  stats.NewCPUAccount(),
		clock: truetime.NewSystemClock(),
	}
	r.net = rpc.NewNetwork(r.f, rpc.CostModel{}, r.acct)
	cfg := config.CellConfig{Mode: config.R32, Shards: 3}
	for i := 0; i < 3; i++ {
		cfg.ShardAddrs = append(cfg.ShardAddrs, fmt.Sprintf("b%d", i))
		cfg.Backends = append(cfg.Backends, config.BackendInfo{Shard: i, Addr: fmt.Sprintf("b%d", i), HostID: i})
	}
	r.store = config.NewStore(cfg)
	for i := 0; i < 3; i++ {
		reg := rmem.NewRegistry()
		b, err := backend.New(backend.Options{
			Shard: i, HostID: i, Addr: fmt.Sprintf("b%d", i),
			Geometry:       layout.Geometry{Buckets: 32, Ways: 8},
			DataBytes:      1 << 20,
			DataMaxBytes:   4 << 20,
			SlabBytes:      64 << 10,
			ReshapeEnabled: true,
		}, r.store, reg, r.net, truetime.NewGenerator(r.clock, uint64(100+i)), r.acct)
		if err != nil {
			t.Fatal(err)
		}
		n := pony.New(r.f.Host(i), reg, pony.CostModel{}, pony.EngineConfig{}, r.acct)
		n.SetMsgHandler(b.HandleMsg)
		r.backends = append(r.backends, b)
		r.nics = append(r.nics, n)
	}
	return r
}

func (r *rig) newClient(opt Options) *Client {
	opt.HostID = clientHost
	local := pony.New(r.f.Host(clientHost), nil, pony.CostModel{}, pony.EngineConfig{}, r.acct)
	dial := func(host int) nic.RMA {
		return pony.Dial(r.f, local, r.nics[host])
	}
	msg := func(host int, at uint64, req []byte) ([]byte, fabric.OpTrace, error) {
		return pony.Dial(r.f, local, r.nics[host]).Message(at, req)
	}
	return New(opt, r.store, r.net.Client(clientHost, "test"), r.clock, dial, msg, r.f.NowNs, r.acct)
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{Strategy2xR: "2xR", StrategySCAR: "SCAR", StrategyMSG: "MSG", StrategyRPC: "RPC"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
}

func TestBasicOps(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR})
	ctx := context.Background()
	if err := cl.Set(ctx, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	got, found, err := cl.Get(ctx, []byte("a"))
	if err != nil || !found || string(got) != "1" {
		t.Fatalf("get: %q %v %v", got, found, err)
	}
	if cl.M.Gets.Value() != 1 || cl.M.Hits.Value() != 1 || cl.M.Sets.Value() != 1 {
		t.Errorf("metrics: gets=%d hits=%d sets=%d", cl.M.Gets.Value(), cl.M.Hits.Value(), cl.M.Sets.Value())
	}
	if cl.M.GetLatency.Count() != 1 {
		t.Error("latency not recorded")
	}
}

// TestPreferredBackendAvoidsLoaded is the Figure 11 mechanism: under an
// antagonist, the data fetch should come from an unloaded replica, keeping
// latency near the no-load baseline.
func TestPreferredBackendAvoidsLoaded(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR})
	ctx := context.Background()
	key := []byte("hot-key")
	if err := cl.Set(ctx, key, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	// Baseline median.
	var base []uint64
	for i := 0; i < 60; i++ {
		_, _, tr, err := cl.GetTraced(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, tr.Ns)
	}
	// Load one replica's host heavily.
	r.f.Host(0).SetExternalLoad(0.95)
	var loaded []uint64
	for i := 0; i < 60; i++ {
		_, _, tr, err := cl.GetTraced(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		loaded = append(loaded, tr.Ns)
	}
	if med(loaded) > 3*med(base) {
		t.Errorf("R=3.2 median under single-host load %dns vs baseline %dns: preferred backend not avoiding the antagonist", med(loaded), med(base))
	}
}

func med(xs []uint64) uint64 {
	s := append([]uint64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestNoFallbackSurfacesInquorate(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR, NoFallback: true, Retries: 1})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("v"))
	// Kill two backends: no quorum possible.
	for i := 0; i < 2; i++ {
		r.backends[i].Server().Stop()
		r.nics[i].SetDown(true)
	}
	_, _, err := cl.Get(ctx, []byte("k"))
	if err == nil {
		t.Fatal("expected failure with 2/3 backends down and no fallback")
	}
}

func TestRPCFallbackServesWithOneReplica(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("v"))
	for i := 0; i < 2; i++ {
		r.backends[i].Server().Stop()
		r.nics[i].SetDown(true)
	}
	got, found, err := cl.Get(ctx, []byte("k"))
	if err != nil || !found || string(got) != "v" {
		t.Fatalf("fallback get: %q %v %v", got, found, err)
	}
	if cl.M.RPCFallbacks.Value() == 0 {
		t.Error("fallback not counted")
	}
}

func TestWindowRevocationRecovery(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("v"))
	if _, found, _ := cl.Get(ctx, []byte("k")); !found {
		t.Fatal("warmup get failed")
	}
	// Force index resizes on every backend by filling them: windows get
	// revoked underneath the client's cached handshakes.
	for i := 0; i < 400; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("fill-%d", i)), []byte("x"))
	}
	// "k" may have been legitimately evicted by associativity conflicts;
	// the invariant is that the client's answer (after transparent window
	// recovery) matches the replicas' ground truth.
	resident := 0
	for _, b := range r.backends {
		resp, err := b.HandleMsg(proto.GetReq{Key: []byte("k")}.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if g, _ := proto.UnmarshalGetResp(resp); g.Found {
			resident++
		}
	}
	got, found, err := cl.Get(ctx, []byte("k"))
	if err != nil {
		t.Fatalf("get after revocations: %v", err)
	}
	wantFound := resident >= 2
	if found != wantFound {
		t.Fatalf("found=%v but %d/3 replicas hold the key", found, resident)
	}
	if found && string(got) != "v" {
		t.Fatalf("value corrupted: %q", got)
	}
}

func TestScarPiggybacksData(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: StrategySCAR})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("scar-value"))
	got, found, tr, err := cl.GetTraced(ctx, []byte("k"))
	if err != nil || !found || string(got) != "scar-value" {
		t.Fatalf("scar get: %q %v %v", got, found, err)
	}
	// SCAR under R=3.2 solicits three full copies: bytes moved must cover
	// at least 3 buckets + 3 data entries (§6.3's incast trade).
	bucketSize := uint64(layout.Geometry{Buckets: 32, Ways: 8}.BucketSize())
	minBytes := 3 * bucketSize // lower bound: three full bucket responses
	if tr.Bytes < minBytes {
		t.Errorf("scar moved only %d bytes", tr.Bytes)
	}
}

func TestMsgStrategyUsesHandler(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: StrategyMSG})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("msg-value"))
	got, found, err := cl.Get(ctx, []byte("k"))
	if err != nil || !found || string(got) != "msg-value" {
		t.Fatalf("msg get: %q %v %v", got, found, err)
	}
}

func TestTouchQueueFlushThreshold(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR, TouchBatch: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	for i := 0; i < 3; i++ {
		cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
	}
	var touches uint64
	for _, b := range r.backends {
		touches += b.CountersSnapshot().Touches
	}
	if touches == 0 {
		t.Error("touch batch never flushed at threshold")
	}
}

func TestVersionsAscendAcrossClients(t *testing.T) {
	r := newRig(t)
	c1 := r.newClient(Options{ID: 1})
	c2 := r.newClient(Options{ID: 2})
	ctx := context.Background()
	v1, err := c1.SetVersioned(ctx, []byte("k"), []byte("from-c1"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c2.SetVersioned(ctx, []byte("k"), []byte("from-c2"))
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Less(v2) && !v2.Less(v1) {
		t.Error("versions from distinct clients must be comparable and distinct")
	}
	// The later version's value must win on every replica.
	later := "from-c2"
	if v2.Less(v1) {
		later = "from-c1"
	}
	for _, b := range r.backends {
		resp, err := b.HandleMsg(proto.GetReq{Key: []byte("k")}.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		g, _ := proto.UnmarshalGetResp(resp)
		if string(g.Value) != later {
			t.Errorf("replica %s holds %q, want %q", b.Addr(), g.Value, later)
		}
	}
}

func TestClientCPUAccounting(t *testing.T) {
	r := newRig(t)
	cl := r.newClient(Options{Strategy: Strategy2xR})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("v"))
	cl.Get(ctx, []byte("k"))
	if r.acct.TotalNanos("client") == 0 {
		t.Error("client CPU not billed")
	}
}

func BenchmarkGet2xR(b *testing.B) {
	r := newRigB(b)
	cl := r.newClient(Options{Strategy: Strategy2xR})
	ctx := context.Background()
	cl.Set(ctx, []byte("bench"), make([]byte, 1024))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, []byte("bench")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetSCAR(b *testing.B) {
	r := newRigB(b)
	cl := r.newClient(Options{Strategy: StrategySCAR})
	ctx := context.Background()
	cl.Set(ctx, []byte("bench"), make([]byte, 1024))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, []byte("bench")); err != nil {
			b.Fatal(err)
		}
	}
}

func newRigB(b *testing.B) *rig {
	b.Helper()
	// Mirror of newRig for benchmarks.
	r := &rig{
		f:     fabric.New(5, fabric.Params{}),
		acct:  stats.NewCPUAccount(),
		clock: truetime.NewSystemClock(),
	}
	r.net = rpc.NewNetwork(r.f, rpc.CostModel{}, r.acct)
	cfg := config.CellConfig{Mode: config.R32, Shards: 3}
	for i := 0; i < 3; i++ {
		cfg.ShardAddrs = append(cfg.ShardAddrs, fmt.Sprintf("b%d", i))
		cfg.Backends = append(cfg.Backends, config.BackendInfo{Shard: i, Addr: fmt.Sprintf("b%d", i), HostID: i})
	}
	r.store = config.NewStore(cfg)
	for i := 0; i < 3; i++ {
		reg := rmem.NewRegistry()
		bk, err := backend.New(backend.Options{
			Shard: i, HostID: i, Addr: fmt.Sprintf("b%d", i),
			Geometry:       layout.Geometry{Buckets: 32, Ways: 8},
			DataBytes:      1 << 20,
			DataMaxBytes:   4 << 20,
			SlabBytes:      64 << 10,
			ReshapeEnabled: true,
		}, r.store, reg, r.net, truetime.NewGenerator(r.clock, uint64(100+i)), r.acct)
		if err != nil {
			b.Fatal(err)
		}
		n := pony.New(r.f.Host(i), reg, pony.CostModel{}, pony.EngineConfig{}, r.acct)
		n.SetMsgHandler(bk.HandleMsg)
		r.backends = append(r.backends, bk)
		r.nics = append(r.nics, n)
	}
	return r
}

package client

// Hot-key adaptive serving — the client half of the loop the server's
// promotion machinery (backend/hotset.go) drives:
//
//   - NEAR-CACHE: values of server-promoted (sketch-hot) keys are cached
//     client-side with their quorum-winning VersionNumber. A near-serve is
//     never blind: it first runs one index-only revalidation round — a
//     quorum of plain bucket reads, 1 RTT, no data leg even under SCAR —
//     and serves the cached value only if a read quorum still votes
//     exactly the cached version. An acked overwrite or erase therefore
//     invalidates the entry within one revalidation RTT, because any
//     read quorum intersects the mutation's ack quorum.
//   - PROMOTION LEARNING: the promoted-key set piggybacks on responses
//     the client already receives (Touch acks, §4.2); per-backend sets
//     are epoch-gated and merged into one atomic snapshot.
//   - STEERING: per-key transport choice. Promoted keys whose last
//     observed value size clears the Fig 20 crossover are fetched over
//     RPC (one round trip carrying the value beats index+data RMA reads
//     at large sizes); everything else keeps the configured strategy.
//   - SPREADING: promoted keys rotate the data-read candidate order
//     across the healthy quorum members instead of always hammering the
//     fastest replica, so a hot key's data reads load-balance R-ways.
//
// What the near-cache does NOT guarantee: a hit is as fresh as the
// revalidation quorum — a mutation acked after the revalidation round
// started may not be observed until the next GET. It never serves a
// value no quorum currently vouches for, and an erased key can never be
// resurrected from it (an agreed index miss drops the entry and serves
// the miss).

import (
	"context"
	"errors"
	"sync"

	"cliquemap/internal/fabric"
	"cliquemap/internal/truetime"
)

// hotRPCCrossoverBytes is the per-key steering threshold: Figure 20's
// value-size sweep has RPC lookups matching the RMA paths' latency in
// the tens-of-KB range while moving fewer NIC-engine bytes than a SCAR
// data piggyback, so promoted keys at least this large steer to RPC.
const hotRPCCrossoverBytes = 16 << 10

// errNearInconclusive reports a revalidation round that cannot decide
// (an overflowed bucket hides the key from index-only reads); the full
// GET path must run.
var errNearInconclusive = errors.New("client: near-cache revalidation inconclusive")

type nearEntry struct {
	val []byte
	ver truetime.Version
}

// nearCache is a small FIFO map of version-validated hot-key values.
// Admission is promotion-gated (nearStore), retention is cap-gated.
type nearCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]nearEntry
	order []string // FIFO; may hold stale keys, skipped on pop

	// sizes keeps last-observed value sizes for steering — advisory
	// only, so entries survive drops and are evicted on their own FIFO.
	sizes     map[string]int
	sizeOrder []string
}

func newNearCache(capacity int) *nearCache {
	return &nearCache{
		cap:   capacity,
		m:     make(map[string]nearEntry, capacity),
		sizes: make(map[string]int),
	}
}

func (n *nearCache) get(key []byte) (nearEntry, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.m[string(key)]
	return e, ok
}

func (n *nearCache) put(key, val []byte, ver truetime.Version) {
	k := string(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.sizes[k] != len(val) {
		if _, seen := n.sizes[k]; !seen {
			n.sizeOrder = append(n.sizeOrder, k)
			for len(n.sizeOrder) > 4*n.cap {
				victim := n.sizeOrder[0]
				n.sizeOrder = n.sizeOrder[1:]
				delete(n.sizes, victim)
			}
		}
		n.sizes[k] = len(val)
	}
	if _, ok := n.m[k]; ok {
		n.m[k] = nearEntry{val: append([]byte(nil), val...), ver: ver}
		return
	}
	for len(n.m) >= n.cap && len(n.order) > 0 {
		victim := n.order[0]
		n.order = n.order[1:]
		delete(n.m, victim)
	}
	n.m[k] = nearEntry{val: append([]byte(nil), val...), ver: ver}
	n.order = append(n.order, k)
}

func (n *nearCache) drop(key []byte) {
	n.mu.Lock()
	delete(n.m, string(key))
	n.mu.Unlock()
}

// sizeHint returns the last observed value size for key, if any — the
// steering input. Survives entry drops (it is advisory, not state).
func (n *nearCache) sizeHint(key []byte) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sz, ok := n.sizes[string(key)]
	return sz, ok
}

func (n *nearCache) len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.m)
}

// ----------------------------------------------------- promotion state --

// promoSet is the merged promoted-key set across all backends the client
// has heard from, swapped atomically.
type promoSet struct {
	keys map[string]struct{}
}

// isPromoted reports whether key is in any backend's promoted set, as
// last piggybacked to this client.
func (c *Client) isPromoted(key []byte) bool {
	p := c.promo.Load()
	if p == nil {
		return false
	}
	_, ok := p.keys[string(key)]
	return ok
}

// PromotedKeys returns the client's current view of the merged promoted
// set (tests, tooling).
func (c *Client) PromotedKeys() int {
	p := c.promo.Load()
	if p == nil {
		return 0
	}
	return len(p.keys)
}

// ingestPromo folds one backend's piggybacked promotion set into the
// merged snapshot. Epoch-gated per backend: replayed or unchanged
// responses are free. Epoch 0 (old servers, nothing promoted yet) is a
// no-op by construction.
func (c *Client) ingestPromo(addr string, epoch uint64, keys [][]byte) {
	if epoch == 0 {
		return
	}
	c.promoMu.Lock()
	defer c.promoMu.Unlock()
	if c.promoEpochs == nil {
		c.promoEpochs = make(map[string]uint64)
		c.promoSets = make(map[string]map[string]struct{})
	}
	if c.promoEpochs[addr] == epoch {
		return
	}
	c.promoEpochs[addr] = epoch
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[string(k)] = struct{}{}
	}
	c.promoSets[addr] = set
	merged := make(map[string]struct{})
	for _, s := range c.promoSets {
		for k := range s {
			merged[k] = struct{}{}
		}
	}
	c.promo.Store(&promoSet{keys: merged})
}

// ------------------------------------------------------- near-serving --

// nearStore records a quorum-validated GET result: the value size always
// feeds the steering hint, and promoted keys are admitted to the cache.
func (c *Client) nearStore(key, val []byte, ver truetime.Version) {
	if c.near == nil || ver.Zero() || !c.isPromoted(key) {
		return
	}
	c.near.put(key, val, ver)
}

// nearInvalidate drops key after one of this client's own mutations: its
// cached version is definitionally stale.
func (c *Client) nearInvalidate(key []byte) {
	if c.near != nil {
		c.near.drop(key)
	}
}

// nearGet tries to serve key from the near-cache behind one index-only
// revalidation round. Returns served=true when the round was conclusive
// (fresh hit, or an agreed miss that also drops the entry); otherwise
// the caller must run the full GET path — any revalidation legs already
// paid are returned in tr either way so latency accounting stays honest.
func (c *Client) nearGet(ctx context.Context, key []byte) (val []byte, found, served bool, tr fabric.OpTrace) {
	e, ok := c.near.get(key)
	if !ok {
		return nil, false, false, tr
	}
	ver, vfound, tr, err := c.revalidateIndex(ctx, key)
	if err != nil {
		c.M.NearRevalFails.Inc()
		return nil, false, false, tr
	}
	if vfound && ver == e.ver {
		c.M.NearHits.Inc()
		return append([]byte(nil), e.val...), true, true, tr
	}
	c.near.drop(key)
	if !vfound {
		// A read quorum agreed the key is absent: it was erased (or the
		// cached entry outlived the corpus). Serve the miss; never the
		// cached value — erased keys must not resurrect from here.
		c.M.NearInval.Inc()
		return nil, false, true, tr
	}
	// Version moved: the full path refreshes the entry.
	c.M.NearStale.Inc()
	return nil, false, false, tr
}

// revalidateIndex runs one quorum round of index-only bucket reads —
// plain Reads even under SCAR, so no data bytes move — and returns the
// quorum-winning version (found=false for an agreed miss). Any error
// means the round was inconclusive.
func (c *Client) revalidateIndex(ctx context.Context, key []byte) (ver truetime.Version, found bool, tr fabric.OpTrace, err error) {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	h := c.opt.Hash(key)
	rt := readRoute(cfg, h)
	quorumNeed := cfg.Mode.Quorum()

	var repArr [8]replica
	var errArr [8]error
	reps := repArr[:0]
	errs := errArr[:0]
	for i, shard := range rt.shards {
		rep, rerr := c.resolveReplica(ctx, cfg, shard, rt.addrs[i])
		reps = append(reps, rep)
		errs = append(errs, rerr)
	}
	at := c.opStart()

	type vote struct {
		ver   truetime.Version
		count int
	}
	var voteArr [8]vote
	votes := voteArr[:0]
	var legArr [8]uint64
	legNs := legArr[:0]
	tr.Spans = make([]fabric.Span, 0, 8)
	overflow := false
	for i := range reps {
		if errs[i] != nil {
			continue
		}
		v := c.fetchIndex(at, key, h, reps[i], cfg.ID, true)
		if v.err != nil {
			c.noteReplicaFailure(reps[i].addr)
			continue
		}
		c.noteReplicaSuccess(reps[i].addr)
		legNs = append(legNs, v.trace.Ns)
		tr.AddBytes(int(v.trace.Bytes))
		tr.Spans = append(tr.Spans, v.trace.Spans...)
		overflow = overflow || v.overflow
		vv := truetime.Version{}
		if v.present {
			vv = v.entry.Version
		}
		seen := false
		for j := range votes {
			if votes[j].ver == vv {
				votes[j].count++
				seen = true
				break
			}
		}
		if !seen && len(votes) < cap(votes) {
			votes = append(votes, vote{ver: vv, count: 1})
		}
	}
	if len(legNs) < quorumNeed {
		return truetime.Version{}, false, tr, ErrUnavailable
	}
	for i := 1; i < len(legNs); i++ {
		for j := i; j > 0 && legNs[j] < legNs[j-1]; j-- {
			legNs[j], legNs[j-1] = legNs[j-1], legNs[j]
		}
	}
	tr.Add(legNs[quorumNeed-1])

	var winner *vote
	for i := range votes {
		if votes[i].count >= quorumNeed && (winner == nil || winner.ver.Less(votes[i].ver)) {
			winner = &votes[i]
		}
	}
	if winner == nil {
		return truetime.Version{}, false, tr, ErrInquorate
	}
	if winner.ver.Zero() {
		if overflow {
			// The key may live in an RPC-only side table (§4.2): an
			// index miss proves nothing.
			return truetime.Version{}, false, tr, errNearInconclusive
		}
		return truetime.Version{}, false, tr, nil
	}
	return winner.ver, true, tr, nil
}

// steerStrategy decides whether this GET should leave the configured
// transport for RPC: promoted keys whose last observed value size clears
// the Fig 20 crossover move more bytes over the RMA paths (bucket + data
// or SCAR piggyback) than a single RPC round trip carrying the value.
func (c *Client) steerToRPC(key []byte) bool {
	if !c.opt.HotSteer || c.near == nil || c.opt.Strategy == StrategyRPC {
		return false
	}
	if !c.isPromoted(key) {
		return false
	}
	sz, ok := c.near.sizeHint(key)
	return ok && sz >= hotRPCCrossoverBytes
}

// Package client implements the CliqueMap client library (§3, §5): the
// only component that touches every transport.
//
// GETs run over one-sided RMA — 2×R (bucket fetch then data fetch), SCAR
// (single round trip on software NICs), MSG (two-sided messaging), or a
// pure RPC fallback — while every mutation is an RPC to all replicas with
// a client-nominated VersionNumber.
//
// Under R=3.2 the client fetches the index from all three replicas,
// speculatively reads data from the first responder (the preferred
// backend), and forms a per-KV majority quorum on {VersionNumber,
// KeyHash}; a GET is a hit only if the checksum validates, two replicas
// agree, the full key matches, and the data came from a quorum member
// (§5.1). Every hazard — torn reads, revoked windows, config changes,
// crashed backends, lost quorums — funnels into one mechanism: classify
// the failure, repair client state at the right layer (retry / re-
// handshake / config refresh), and try again (§3, §9).
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/nic"
	"cliquemap/internal/rpc"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
	"cliquemap/internal/truetime"
)

// Strategy selects the lookup path (§6.3, Figure 7).
type Strategy int

const (
	// Strategy2xR: two dependent RMA reads. Works on every transport.
	Strategy2xR Strategy = iota
	// StrategySCAR: single-round-trip scan-and-read (software NICs only).
	StrategySCAR
	// StrategyMSG: two-sided messaging through the NIC.
	StrategyMSG
	// StrategyRPC: full RPC lookups (WAN / no-RMA environments).
	StrategyRPC
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case Strategy2xR:
		return "2xR"
	case StrategySCAR:
		return "SCAR"
	case StrategyMSG:
		return "MSG"
	case StrategyRPC:
		return "RPC"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

var (
	// ErrInquorate reports a GET that could not assemble a quorum after
	// retries — surfaced as an error so callers can distinguish it from a
	// clean miss (§5.3: repeated mutations can starve GETs).
	ErrInquorate = errors.New("client: no quorum")
	// ErrExhausted reports an op that ran out of retries/deadline.
	ErrExhausted = errors.New("client: retries exhausted")
	// ErrUnavailable reports that too few replicas were reachable.
	ErrUnavailable = errors.New("client: replicas unavailable")
)

// Metrics aggregates client-observable behaviour for the experiments.
type Metrics struct {
	Gets, Hits, Misses     stats.Counter
	Sets, Erases, CasOps   stats.Counter
	TornRetries            stats.Counter // checksum failures (§3)
	WindowRetries          stats.Counter // revoked windows → re-handshake (§4.1)
	ConfigRetries          stats.Counter // config-ID mismatches → refresh (§6.1)
	QuorumRetries          stats.Counter // preferred backend outside quorum (§5.1)
	Inquorate              stats.Counter
	RPCFallbacks           stats.Counter // overflow-bit / final RPC lookups
	Hedges                 stats.Counter // backup data reads issued past the hedge delay
	HedgeWins              stats.Counter // hedged reads that beat the primary
	Failovers              stats.Counter // data reads absorbed by a backup quorum member
	BudgetDenied           stats.Counter // retries refused by the retry budget
	BackoffNs              stats.Counter // virtual ns spent backing off
	NearHits               stats.Counter // near-cache serves validated by an index quorum
	NearStale              stats.Counter // near entries dropped: version moved under us
	NearInval              stats.Counter // near entries dropped: quorum-agreed miss (erase)
	NearRevalFails         stats.Counter // inconclusive revalidation rounds → full path
	SteerRPC               stats.Counter // hot large-value GETs steered to RPC (Fig 20)
	SpreadReads            stats.Counter // hot data reads rotated off the fastest replica
	GetLatency, SetLatency stats.Histogram
}

// RetryCount sums retryable hazards observed.
func (m *Metrics) RetryCount() uint64 {
	return m.TornRetries.Value() + m.WindowRetries.Value() + m.ConfigRetries.Value() + m.QuorumRetries.Value()
}

// Options configures a client.
type Options struct {
	ID         uint64 // client identity for VersionNumbers
	HostID     int    // fabric host the client runs on
	Strategy   Strategy
	Retries    int  // per-op retry budget (default 5)
	TouchBatch int  // flush threshold for access records; 0 disables (§4.2)
	NoFallback bool // disable the final RPC lookup fallback
	Hash       hashring.HashFunc
	// Tracer, when set, records every completed op (kind, transport,
	// attempts, per-layer spans) into the cell's telemetry plane.
	Tracer *trace.Tracer
	// Backoff paces retries; zero fields take defaults (20µs base, 2ms
	// cap, 50% jitter). The pause is billed as virtual latency.
	Backoff BackoffPolicy
	// Budget bounds retry amplification across all of this client's ops;
	// nil gets a private default budget (10 tokens, 0.1 credit/success).
	Budget *RetryBudget
	// NoHedge disables backup-replica hedged/failover data reads.
	NoHedge bool
	// NoHealth disables per-replica health scoring and demotion.
	NoHealth bool
	// Observer, when set, receives every completed op's kind, transport,
	// modelled latency, and outcome (nil error = success, including clean
	// misses). The fleet health plane's E2E probers feed their SLO burn-
	// rate windows through this hook. Called synchronously on the op's
	// goroutine; implementations must be cheap and concurrency-safe.
	Observer func(kind trace.Kind, transport trace.Transport, ns uint64, err error)
	// Seed perturbs the client's jitter/probe randomness; 0 derives from
	// ID so distinct clients desynchronize by default.
	Seed uint64
	// NearCacheEntries sizes the client-side near-cache for server-
	// promoted hot keys; 0 disables it. Only the RMA lookup strategies
	// (2xR, SCAR) use it: their index-only revalidation round is what
	// makes a near-serve cheaper than the full path.
	NearCacheEntries int
	// HotSteer enables per-key transport steering: promoted keys whose
	// last observed value clears the Fig 20 size crossover fetch over RPC.
	HotSteer bool
	// HotSpread rotates hot keys' data reads across the healthy quorum
	// members instead of always reading from the fastest replica.
	HotSpread bool
}

func (o Options) withDefaults() Options {
	if o.Retries == 0 {
		o.Retries = 5
	}
	o.Hash = hashring.OrDefault(o.Hash)
	o.Backoff = o.Backoff.withDefaults()
	if o.Budget == nil {
		o.Budget = NewRetryBudget(0, 0)
	}
	if o.Seed == 0 {
		o.Seed = o.ID*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	}
	return o
}

// DialFunc opens a one-sided connection to a backend host.
type DialFunc func(hostID int) nic.RMA

// MsgFunc performs a two-sided NIC message exchange with a backend host;
// nil when the transport lacks messaging. at is the op's virtual start
// instant (0 = now).
type MsgFunc func(hostID int, at uint64, req []byte) ([]byte, fabric.OpTrace, error)

// NowFunc samples the fabric's virtual clock; nil means legs are not
// pinned to a common op start (acceptable for tests).
type NowFunc func() uint64

// Client is one CliqueMap client instance. Safe for concurrent use.
type Client struct {
	opt   Options
	store *config.Store
	rpcc  rpc.Caller
	gen   *truetime.Generator
	dial  DialFunc
	msg   MsgFunc
	now   NowFunc
	clock truetime.Clock
	acct  *stats.CPUAccount

	mu     sync.Mutex
	cfg    config.CellConfig
	conns  map[int]nic.RMA            // by host id
	hellos map[string]proto.HelloResp // by backend addr
	touchQ map[string][][]byte        // by backend addr

	health   healthState   // per-replica demotion scores
	rngState atomic.Uint64 // jitter/probe randomness (xorshift)
	dataEWMA atomic.Uint64 // rolling data-read latency, drives hedging

	// Hot-key adaptive serving state (nearcache.go). promo is the merged
	// promoted-key set piggybacked on Touch acks; promoMu guards the
	// per-backend epoch bookkeeping behind it.
	near        *nearCache
	promo       atomic.Pointer[promoSet]
	promoMu     sync.Mutex
	promoEpochs map[string]uint64
	promoSets   map[string]map[string]struct{}

	M Metrics
}

// Client-side CPU per lookup attempt by strategy (Figure 7 calibration).
const (
	cpu2xR  = 900
	cpuSCAR = 560
	cpuMSG  = 700
	cpuRPC  = 1200
)

// New builds a client. msg, now, and acct may be nil.
func New(opt Options, store *config.Store, rpcc rpc.Caller, clock truetime.Clock, dial DialFunc, msg MsgFunc, now NowFunc, acct *stats.CPUAccount) *Client {
	opt = opt.withDefaults()
	c := &Client{
		opt:    opt,
		store:  store,
		rpcc:   rpcc,
		gen:    truetime.NewGenerator(clock, opt.ID),
		dial:   dial,
		msg:    msg,
		now:    now,
		clock:  clock,
		acct:   acct,
		conns:  make(map[int]nic.RMA),
		hellos: make(map[string]proto.HelloResp),
		touchQ: make(map[string][][]byte),
	}
	c.rngState.Store(opt.Seed)
	c.cfg = store.Get()
	if opt.NearCacheEntries > 0 && (opt.Strategy == Strategy2xR || opt.Strategy == StrategySCAR) {
		c.near = newNearCache(opt.NearCacheEntries)
	}
	return c
}

// Config returns the client's cached cell configuration.
func (c *Client) Config() config.CellConfig {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

func (c *Client) chargeCPU(ns uint64) {
	if c.acct != nil {
		c.acct.Charge("client", ns)
	}
}

// Transport is the trace label of the configured lookup strategy — the
// tier edge uses it to attribute federated reads per transport.
func (c *Client) Transport() trace.Transport { return c.transport() }

// transport maps the configured lookup strategy to its trace label.
func (c *Client) transport() trace.Transport {
	switch c.opt.Strategy {
	case StrategySCAR:
		return trace.TransportSCAR
	case StrategyMSG:
		return trace.TransportMSG
	case StrategyRPC:
		return trace.TransportRPC
	}
	return trace.Transport2xR
}

// observe reports one completed op to the configured Observer.
func (c *Client) observe(kind trace.Kind, transport trace.Transport, ns uint64, err error) {
	if c.opt.Observer != nil {
		c.opt.Observer(kind, transport, ns, err)
	}
}

// traceOp opens a span context for one op, attaching it to ctx so every
// layer below (RPC framework, backend handlers, TCP gateway) attributes
// work to it. Returns (nil, ctx) when tracing is not wired — or when ctx
// already carries a span context opened by an enclosing op (a federation
// tier edge): then this op is one leg of that op, its spans ride the
// returned OpTrace under the enclosing op id, and only the enclosing
// layer records — one user op, one trace, even across cells.
func (c *Client) traceOp(ctx context.Context, k trace.Kind) (*trace.SpanContext, context.Context) {
	if c.opt.Tracer == nil || trace.FromContext(ctx) != nil {
		return nil, ctx
	}
	sc := &trace.SpanContext{OpID: c.opt.Tracer.NextID(), Kind: k}
	return sc, trace.NewContext(ctx, sc)
}

// refreshConfig re-reads the HA store and drops cached handshakes, the
// §6.1 recovery path for config-ID mismatches.
func (c *Client) refreshConfig() {
	c.mu.Lock()
	c.cfg = c.store.Get()
	c.hellos = make(map[string]proto.HelloResp)
	c.mu.Unlock()
}

// forgetHandshake drops one backend's cached geometry, forcing a fresh
// Hello on next use — the recovery path for revoked windows (§4.1).
func (c *Client) forgetHandshake(addr string) {
	c.mu.Lock()
	delete(c.hellos, addr)
	c.mu.Unlock()
}

// replica is the client's resolved view of one cohort member.
type replica struct {
	shard int
	addr  string
	host  int
	hello proto.HelloResp
	conn  nic.RMA
}

// route is the epoch-resolved fan-out for one key: cohort shard numbers
// with their serving addresses. Outside a resize transition it is simply
// the key's cohort; during one, reads come from whichever epoch is
// authoritative for the key and writes fan out to the union of both
// epochs' cohorts.
type route struct {
	shards  []int
	addrs   []string
	pending bool // this is the pending-epoch cohort
}

// readRoute resolves the authoritative cohort for GETs. The old epoch
// stays authoritative until enough of the key's old cohort has been
// sealed (and therefore drained to the pending owners) that the pending
// epoch is guaranteed to hold every acked write; then reads move over.
func readRoute(cfg config.CellConfig, h hashring.KeyHash) route {
	oldCohort := cfg.Cohort(int(h.Hi % uint64(cfg.Shards)))
	if cfg.Pending != nil && cfg.PendingAuthoritative(oldCohort) {
		pc := cfg.PendingCohort(int(h.Hi % uint64(cfg.Pending.Shards)))
		rt := route{shards: pc, addrs: make([]string, 0, len(pc)), pending: true}
		for _, s := range pc {
			rt.addrs = append(rt.addrs, cfg.Pending.AddrFor(s))
		}
		return rt
	}
	rt := route{shards: oldCohort, addrs: make([]string, 0, len(oldCohort))}
	for _, s := range oldCohort {
		rt.addrs = append(rt.addrs, cfg.AddrFor(s))
	}
	return rt
}

// mutLeg is one target of a mutation fan-out, tagged with the epoch(s)
// it represents for quorum accounting.
type mutLeg struct {
	addr      string
	inOld     bool
	inPending bool
}

// mutationLegs builds the union fan-out for a mutation: every old-epoch
// cohort member plus, mid-resize, every pending-epoch cohort member,
// deduplicated by address (a backend often serves a shard in both
// epochs; it gets one RPC, counted toward both quorums).
func mutationLegs(cfg config.CellConfig, h hashring.KeyHash) []mutLeg {
	legs := make([]mutLeg, 0, 6)
	for _, s := range cfg.Cohort(int(h.Hi % uint64(cfg.Shards))) {
		addr := cfg.AddrFor(s)
		if addr == "" {
			continue
		}
		dup := false
		for i := range legs {
			if legs[i].addr == addr {
				legs[i].inOld = true
				dup = true
				break
			}
		}
		if !dup {
			legs = append(legs, mutLeg{addr: addr, inOld: true})
		}
	}
	if cfg.Pending != nil {
		for _, s := range cfg.PendingCohort(int(h.Hi % uint64(cfg.Pending.Shards))) {
			addr := cfg.Pending.AddrFor(s)
			if addr == "" {
				continue
			}
			dup := false
			for i := range legs {
				if legs[i].addr == addr {
					legs[i].inPending = true
					dup = true
					break
				}
			}
			if !dup {
				legs = append(legs, mutLeg{addr: addr, inPending: true})
			}
		}
	}
	return legs
}

// resolveReplica produces a usable replica handle for the cohort member
// at addr, performing the Hello handshake if needed.
func (c *Client) resolveReplica(ctx context.Context, cfg config.CellConfig, shard int, addr string) (replica, error) {
	host := cfg.HostForAddr(addr)
	if addr == "" || host < 0 {
		return replica{}, fmt.Errorf("%w: shard %d unresolved", ErrUnavailable, shard)
	}

	c.mu.Lock()
	hello, haveHello := c.hellos[addr]
	conn, haveConn := c.conns[host]
	c.mu.Unlock()

	if !haveConn {
		conn = c.dial(host)
		c.mu.Lock()
		c.conns[host] = conn
		c.mu.Unlock()
	}
	if !haveHello {
		resp, _, err := c.rpcc.Call(ctx, addr, proto.MethodHello, nil)
		if err != nil {
			return replica{}, err
		}
		h, err := proto.UnmarshalHelloResp(resp)
		if err != nil {
			return replica{}, err
		}
		hello = h
		c.mu.Lock()
		c.hellos[addr] = h
		c.mu.Unlock()
	}
	return replica{shard: shard, addr: addr, host: host, hello: hello, conn: conn}, nil
}

// indexView is one replica's answer to the index-fetch phase.
type indexView struct {
	rep      replica
	entry    layout.IndexEntry
	present  bool
	overflow bool
	scarData []byte // SCAR only: piggybacked DataEntry bytes
	trace    fabric.OpTrace
	err      error
}

// Get looks up key, transparently retrying transient hazards.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	v, found, _, err := c.GetTraced(ctx, key)
	return v, found, err
}

// GetTraced is Get plus the op's modelled latency trace.
func (c *Client) GetTraced(ctx context.Context, key []byte) (value []byte, found bool, tr fabric.OpTrace, err error) {
	c.M.Gets.Inc()
	var total fabric.OpTrace
	if c.opt.Observer != nil {
		defer func() { c.observe(trace.KindGet, c.transport(), total.Ns, err) }()
	}
	sc, ctx := c.traceOp(ctx, trace.KindGet)
	if sc != nil {
		// One right-sized allocation up front; per-leg merges then append
		// without growth on the hot path.
		total.Spans = make([]fabric.Span, 0, 8)
	}
	// Near-cache fast path: a cached hot-key value serves after one
	// index-only revalidation round (1 RTT, no data leg). An inconclusive
	// round falls through to the full path with its legs already billed.
	if c.near != nil {
		nval, nfound, served, ntr := c.nearGet(ctx, key)
		total.Sequence(ntr)
		if served {
			if nfound {
				c.M.Hits.Inc()
				c.noteTouch(key)
			} else {
				c.M.Misses.Inc()
			}
			c.M.GetLatency.Record(total.Ns)
			if sc != nil {
				c.opt.Tracer.Record(sc.OpID, trace.KindGet, c.transport(), 1, total)
			}
			return nval, nfound, total, nil
		}
	}
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if ctx.Err() != nil {
			return nil, false, total, ErrExhausted
		}
		if attempt > 0 {
			// Retries spend from the shared budget and pace themselves
			// with jittered exponential backoff billed as virtual time.
			if !c.opt.Budget.TryTake() {
				c.M.BudgetDenied.Inc()
				return nil, false, total, fmt.Errorf("%w: retry budget empty", ErrExhausted)
			}
			ns := c.opt.Backoff.delay(attempt, c.rand64())
			total.AddSpan(trace.SpanBackoff, uint32(attempt), ns)
			c.M.BackoffNs.Add(ns)
		}
		if sc != nil {
			sc.Attempt = uint32(attempt)
		}
		attemptStart := total.Ns
		val, ok, wver, atr, aerr := c.attemptGet(ctx, key)
		total.Sequence(atr)
		if aerr == nil {
			c.opt.Budget.Credit()
			if ok {
				c.M.Hits.Inc()
				c.noteTouch(key)
				c.nearStore(key, val, wver)
			} else {
				c.M.Misses.Inc()
			}
			c.M.GetLatency.Record(total.Ns)
			if sc != nil {
				c.opt.Tracer.Record(sc.OpID, trace.KindGet, c.transport(), uint32(attempt+1), total)
			}
			return val, ok, total, nil
		}
		if sc != nil {
			total.Annotate(trace.SpanRetry, uint32(attempt), attemptStart, atr.Ns)
		}
		c.classifyAndRepair(ctx, key, aerr)
	}
	// Final fallback: a plain RPC lookup against any reachable replica —
	// CliqueMap always keeps an RPC path for lookups (§3, Table 1). The
	// fallback is itself another attempt, so it too costs a retry token.
	if !c.opt.NoFallback {
		if !c.opt.Budget.TryTake() {
			c.M.BudgetDenied.Inc()
			return nil, false, total, fmt.Errorf("%w: retry budget empty", ErrExhausted)
		}
		if val, ok, ftr, ferr := c.rpcGetAny(ctx, key); ferr == nil {
			total.Sequence(ftr)
			c.opt.Budget.Credit()
			c.M.RPCFallbacks.Inc()
			if ok {
				c.M.Hits.Inc()
			} else {
				c.M.Misses.Inc()
			}
			c.M.GetLatency.Record(total.Ns)
			if sc != nil {
				c.opt.Tracer.Record(sc.OpID, trace.KindGet, trace.TransportRPC, uint32(c.opt.Retries+2), total)
			}
			return val, ok, total, nil
		}
	}
	c.M.Inquorate.Inc()
	return nil, false, total, fmt.Errorf("%w for key %q", ErrInquorate, key)
}

// classifyAndRepair performs the layered retry policy (§3): each failure
// class repairs a different level of client state before the next attempt.
func (c *Client) classifyAndRepair(ctx context.Context, key []byte, err error) {
	var se errStale
	var staleAddr string
	if errors.As(err, &se) {
		staleAddr = se.addr
	}
	switch {
	case errors.Is(err, layout.ErrConfigChanged):
		c.M.ConfigRetries.Inc()
		c.refreshConfig()
	case errors.Is(err, proto.ErrShardSealed):
		// A sealed source bounced the mutation: a handoff or resize moved
		// the shard underneath us. Refresh config and re-fan-out; the new
		// epoch's owners (or the handoff target) take the write.
		c.M.ConfigRetries.Inc()
		c.refreshConfig()
	case errors.Is(err, rpc.ErrUnavailable) || errors.Is(err, nic.ErrUnreachable):
		c.M.WindowRetries.Inc()
		c.refreshConfig()
		// A cached one-sided conn can point at a NIC that no longer
		// exists (crash/restart replaces the node's engines); re-dial so
		// the RMA path recovers instead of leaning on the RPC fallback.
		c.forgetConns()
	case isWindowErr(err):
		c.M.WindowRetries.Inc()
		if staleAddr != "" {
			c.forgetHandshake(staleAddr)
		} else {
			c.forgetAll()
		}
	case errors.Is(err, proto.ErrRecovering):
		// A restarted replica is still self-validating: its misses are
		// withheld, not authoritative. No client state to repair — retry
		// and let the rest of the quorum carry the read.
		c.M.QuorumRetries.Inc()
	case errors.Is(err, layout.ErrTornRead) || errors.Is(err, layout.ErrKeyMismatch):
		c.M.TornRetries.Inc()
	case errors.Is(err, ErrInquorate):
		c.M.QuorumRetries.Inc()
	default:
		c.M.QuorumRetries.Inc()
	}
}

func (c *Client) forgetAll() {
	c.mu.Lock()
	c.hellos = make(map[string]proto.HelloResp)
	c.mu.Unlock()
}

// forgetConns drops cached one-sided connections; the next attempt
// re-dials against the hosts' current NICs.
func (c *Client) forgetConns() {
	c.mu.Lock()
	c.conns = make(map[int]nic.RMA)
	c.mu.Unlock()
}

// errStale wraps a window error with the backend it came from.
type errStale struct {
	addr string
	err  error
}

func (e errStale) Error() string { return fmt.Sprintf("stale state at %s: %v", e.addr, e.err) }
func (e errStale) Unwrap() error { return e.err }

func isWindowErr(err error) bool {
	var es errStale
	return errors.As(err, &es)
}

// attemptGet performs one lookup attempt under the configured strategy
// and replication mode. On a hit it also returns the quorum-winning
// version, which feeds the near-cache.
func (c *Client) attemptGet(ctx context.Context, key []byte) ([]byte, bool, truetime.Version, fabric.OpTrace, error) {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()

	h := c.opt.Hash(key)
	rt := readRoute(cfg, h)

	switch c.opt.Strategy {
	case StrategyRPC:
		return c.attemptGetRPC(ctx, key, cfg, rt)
	case StrategyMSG:
		return c.attemptGetMSG(ctx, key, cfg, rt)
	}
	// Per-key steering: a promoted key whose value is past the Fig 20
	// crossover moves fewer bytes (and fewer NIC ops) over one RPC than
	// over the RMA index+data legs.
	if c.steerToRPC(key) {
		c.M.SteerRPC.Inc()
		return c.attemptGetRPC(ctx, key, cfg, rt)
	}

	// Resolve replicas — first use pays a Hello RPC — before pinning the
	// op's virtual start. Connection setup is control-plane work; were it
	// inside the pinned window, the wall time it consumes would read as
	// downlink backlog for the op's own data-plane legs.
	var repArr [8]replica
	var errArr [8]error
	reps := repArr[:0]
	errs := errArr[:0]
	for i, shard := range rt.shards {
		rep, err := c.resolveReplica(ctx, cfg, shard, rt.addrs[i])
		reps = append(reps, rep)
		errs = append(errs, err)
	}

	at := c.opStart()

	// R=2/Immutable consults a single replica for most operations; the
	// second serves only when the first fails (§6.4).
	if cfg.Mode == config.R2Immutable {
		var lastErr error
		for i := range rt.shards {
			if errs[i] != nil {
				lastErr = errs[i]
				continue
			}
			v := c.fetchIndex(at, key, h, reps[i], cfg.ID, false)
			if v.err != nil {
				lastErr = v.err
				continue
			}
			return c.assembleGet(ctx, at, key, h, cfg, []indexView{v})
		}
		if lastErr == nil {
			lastErr = ErrUnavailable
		}
		return nil, false, truetime.Version{}, fabric.OpTrace{}, lastErr
	}

	// RMA strategies: fetch index views from every cohort member, all
	// pinned to one virtual op-start instant so their responses contend
	// for this client's downlink in the latency model.
	views := make([]indexView, 0, len(rt.shards))
	for i := range rt.shards {
		if errs[i] != nil {
			views = append(views, indexView{err: errs[i]})
			continue
		}
		v := c.fetchIndex(at, key, h, reps[i], cfg.ID, false)
		if v.err != nil {
			c.noteReplicaFailure(reps[i].addr)
		} else {
			c.noteReplicaSuccess(reps[i].addr)
		}
		views = append(views, v)
	}
	return c.assembleGet(ctx, at, key, h, cfg, views)
}

// opStart samples the op's virtual start instant.
func (c *Client) opStart() uint64 {
	if c.now == nil {
		return 0
	}
	return c.now()
}

// fetchIndex reads one replica's bucket (and, under SCAR, data). The
// replica must already be resolved: Hello traffic ahead of the pinned op
// start must not masquerade as data-plane queueing. cfgID is the config
// the client routed with; a bucket stamped differently means the fleet
// moved on (maintenance or resize) and the answer cannot be trusted.
// forcePlain forces a bucket-only Read even under SCAR — the near-cache
// revalidation path wants the index vote without moving data bytes.
func (c *Client) fetchIndex(at uint64, key []byte, h hashring.KeyHash, rep replica, cfgID uint64, forcePlain bool) indexView {
	v := indexView{rep: rep}
	geo := layout.Geometry{Buckets: rep.hello.Buckets, Ways: rep.hello.Ways}
	bucket := int(h.Lo % uint64(geo.Buckets))
	off := geo.BucketOffset(bucket)

	useScar := !forcePlain && c.opt.Strategy == StrategySCAR && rep.conn.SupportsScar()
	var raw []byte
	if useScar {
		c.chargeCPU(cpuSCAR)
		res, tr, serr := rep.conn.ScanAndRead(at, rep.hello.IndexWindow, off, geo.BucketSize(), h, geo.Ways)
		v.trace = tr
		if serr != nil {
			v.err = c.wrapTransportErr(rep, serr)
			return v
		}
		raw = res.Bucket
		if res.Found {
			v.scarData = res.Data
		}
	} else {
		c.chargeCPU(cpu2xR / 2) // per index leg; data leg bills the rest
		raw2, tr, rerr := rep.conn.Read(at, rep.hello.IndexWindow, off, geo.BucketSize())
		v.trace = tr
		if rerr != nil {
			v.err = c.wrapTransportErr(rep, rerr)
			return v
		}
		raw = raw2
	}

	dec, derr := layout.DecodeBucket(raw, geo.Ways)
	if derr != nil {
		v.err = derr
		return v
	}
	// Self-validation: the bucket's ConfigID must match the config the
	// client routed with (§6.1). Comparing against the routing config —
	// not the cached Hello, which a fresh handshake would already have
	// fast-forwarded — is what catches a stale client whose cohort no
	// longer holds the key after a resize: the absent votes it would
	// otherwise collect look exactly like a legitimate miss.
	if dec.ConfigID != cfgID {
		v.err = layout.ErrConfigChanged
		return v
	}
	v.overflow = dec.Overflowed()
	if e, _, ok := dec.Find(h); ok {
		v.entry = e
		v.present = true
	}
	return v
}

// wrapTransportErr tags window/unreachable failures with the backend so
// the retry layer can repair precisely.
func (c *Client) wrapTransportErr(rep replica, err error) error {
	if errors.Is(err, nic.ErrUnreachable) {
		return err
	}
	return errStale{addr: rep.addr, err: err}
}

// assembleGet forms the quorum, fetches data, and validates. On a hit the
// quorum-winning version rides along for the near-cache.
func (c *Client) assembleGet(ctx context.Context, at uint64, key []byte, h hashring.KeyHash, cfg config.CellConfig, views []indexView) ([]byte, bool, truetime.Version, fabric.OpTrace, error) {
	quorumNeed := cfg.Mode.Quorum()

	// Index-phase latency: the op can proceed once `quorumNeed` replicas
	// have responded, so the phase costs the k-th fastest leg.
	var legArr [8]uint64
	legNs := legArr[:0]
	var tr fabric.OpTrace
	tr.Spans = make([]fabric.Span, 0, 16)
	okViews := 0
	for _, v := range views {
		if v.err == nil {
			legNs = append(legNs, v.trace.Ns)
			tr.AddBytes(int(v.trace.Bytes))
			// Leg spans share the phase origin: the legs ran in parallel.
			tr.Spans = append(tr.Spans, v.trace.Spans...)
			okViews++
		}
	}
	if okViews < quorumNeed {
		// Not enough live replicas to even try: surface the first error.
		for _, v := range views {
			if v.err != nil {
				return nil, false, truetime.Version{}, tr, v.err
			}
		}
		return nil, false, truetime.Version{}, tr, ErrUnavailable
	}
	// Cohorts are tiny (≤ replication factor): insertion sort keeps the
	// leg latencies on the stack, off the reflection-based sort path.
	for i := 1; i < len(legNs); i++ {
		for j := i; j > 0 && legNs[j] < legNs[j-1]; j-- {
			legNs[j], legNs[j-1] = legNs[j-1], legNs[j]
		}
	}
	k := min(quorumNeed, len(legNs))
	phase := tr.Ns
	tr.Annotate(trace.SpanIndexFetch, uint32(len(legNs)), phase, legNs[0])
	if legNs[k-1] > legNs[0] {
		// The op sat waiting for the k-th quorum vote after the first
		// replica had already answered — the paper's tail story (§5.1).
		tr.Annotate(trace.SpanQuorumWait, uint32(k), phase+legNs[0], legNs[k-1]-legNs[0])
	}
	tr.Add(legNs[k-1])

	// Vote per §5.1: replicas vote their IndexEntry's (VersionNumber,
	// KeyHash); an absent entry votes the zero version (an agreed miss).
	// At most one distinct version per live view, so a fixed array holds
	// the full tally without a map.
	type vote struct {
		ver   truetime.Version
		count int
	}
	var voteArr [8]vote
	votes := voteArr[:0]
	for _, v := range views {
		if v.err != nil {
			continue
		}
		ver := truetime.Version{}
		if v.present {
			ver = v.entry.Version
		}
		found := false
		for i := range votes {
			if votes[i].ver == ver {
				votes[i].count++
				found = true
				break
			}
		}
		if !found && len(votes) < cap(votes) {
			votes = append(votes, vote{ver: ver, count: 1})
		}
	}
	var winner *vote
	for i := range votes {
		if votes[i].count >= quorumNeed && (winner == nil || winner.ver.Less(votes[i].ver)) {
			winner = &votes[i]
		}
	}
	if winner == nil {
		return nil, false, truetime.Version{}, tr, ErrInquorate
	}
	if winner.ver.Zero() {
		// Miss quorum. If any replica flagged overflow, the key may live
		// in a side table reachable only via RPC (§4.2).
		for _, v := range views {
			if v.err == nil && v.overflow {
				val, found, fver, ftr, ferr := c.rpcGetAt(ctx, v.rep.addr, key, cfg.ID)
				tr.Sequence(ftr)
				if ferr == nil {
					c.M.RPCFallbacks.Inc()
					return val, found, fver, tr, nil
				}
			}
		}
		return nil, false, truetime.Version{}, tr, nil
	}

	// Candidate data sources: quorum members holding the winning version,
	// fastest first (§5.1 — speculate on the first responder), with
	// health-demoted members sorted last so a browned-out backend serves
	// data only when no healthy member can.
	var candArr [8]indexView
	var demArr [8]bool
	cands := candArr[:0]
	for _, v := range views {
		if v.err == nil && v.present && v.entry.Version == winner.ver && len(cands) < len(candArr) {
			demArr[len(cands)] = c.replicaDemoted(v.rep.addr)
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil, false, truetime.Version{}, tr, ErrInquorate
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (!demArr[j] && demArr[j-1] ||
			demArr[j] == demArr[j-1] && cands[j].trace.Ns < cands[j-1].trace.Ns); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
			demArr[j], demArr[j-1] = demArr[j-1], demArr[j]
		}
	}
	// Hot-key spread: rotate the healthy prefix so a promoted key's data
	// reads load-balance across the quorum instead of always landing on
	// the fastest (soon to be hottest) replica. Demoted members keep
	// their sorted-last position; failover order is unchanged.
	if c.opt.HotSpread && len(cands) > 1 && c.isPromoted(key) {
		healthy := 0
		for healthy < len(cands) && !demArr[healthy] {
			healthy++
		}
		if healthy > 1 {
			if r := int(c.rand64() % uint64(healthy)); r > 0 {
				var rotArr [8]indexView
				copy(rotArr[:healthy], cands[:healthy])
				for i := 0; i < healthy; i++ {
					cands[i] = rotArr[(i+r)%healthy]
				}
				c.M.SpreadReads.Inc()
			}
		}
	}

	// Read the data, failing over along the candidate list: a torn,
	// corrupt, or unreachable copy costs one more dependent read instead
	// of a whole-op retry. The checksum (§3) is the only corruption
	// defense, so every absorbed failure is counted.
	var lastErr error = ErrInquorate
	for ci := range cands {
		cand := cands[ci]
		backup := ci == 0 && len(cands) > 1
		var raw []byte
		if cand.scarData != nil {
			raw = cand.scarData
		} else if c.opt.Strategy == StrategySCAR {
			// Scan missed on the wire (e.g. racing rewrite): retryable.
			lastErr = layout.ErrTornRead
			continue
		} else {
			c.chargeCPU(cpu2xR / 2)
			e := cand.entry
			dataAt := uint64(0)
			if at != 0 {
				dataAt = at + tr.Ns // the data fetch follows the index phase
			}
			dataStart := tr.Ns
			data, dtr, derr := cand.rep.conn.Read(dataAt, e.Ptr.Window, int(e.Ptr.Offset), int(e.Ptr.Size))
			if derr != nil {
				tr.Sequence(dtr)
				c.noteReplicaFailure(cand.rep.addr)
				lastErr = c.wrapTransportErr(cand.rep, derr)
				if ci < len(cands)-1 {
					c.M.Failovers.Inc()
				}
				continue
			}
			c.observeDataNs(dtr.Ns)
			// Hedge: the primary's read exceeded the rolling threshold, so
			// (in wall-time terms) a backup read launched at +hedgeAfter
			// may complete first; the op takes whichever finishes sooner.
			if hedgeAfter := c.hedgeAfterNs(); backup && hedgeAfter > 0 && dtr.Ns > hedgeAfter {
				c.M.Hedges.Inc()
				b := cands[1]
				hAt := uint64(0)
				if at != 0 {
					hAt = at + tr.Ns + hedgeAfter
				}
				hdata, htr, herr := b.rep.conn.Read(hAt, b.entry.Ptr.Window, int(b.entry.Ptr.Offset), int(b.entry.Ptr.Size))
				if herr == nil && hedgeAfter+htr.Ns < dtr.Ns {
					if hde, hderr := layout.DecodeDataEntry(hdata); hderr == nil && hde.ValidateAgainst(key, &winner.ver) == nil {
						if hval, hmerr := hde.MaterializeValue(); hmerr == nil {
							c.M.HedgeWins.Inc()
							tr.Annotate(trace.SpanHedge, uint32(b.rep.shard), dataStart+hedgeAfter, htr.Ns)
							tr.AddBytes(int(htr.Bytes))
							tr.Add(hedgeAfter + htr.Ns)
							return hval, true, winner.ver, tr, nil
						}
					}
				}
			}
			tr.Sequence(dtr)
			tr.Annotate(trace.SpanDataRead, uint32(cand.rep.shard), dataStart, dtr.Ns)
			raw = data
		}
		de, derr := layout.DecodeDataEntry(raw)
		if derr != nil {
			// ErrTornRead: checksum caught a race or a flipped bit.
			c.noteReplicaFailure(cand.rep.addr)
			lastErr = derr
			if ci < len(cands)-1 {
				c.M.TornRetries.Inc() // absorbed by failover, not a re-attempt
				c.M.Failovers.Inc()
			}
			continue
		}
		if err := de.ValidateAgainst(key, &winner.ver); err != nil {
			lastErr = err
			if ci < len(cands)-1 {
				c.M.TornRetries.Inc()
				c.M.Failovers.Inc()
			}
			continue
		}
		val, merr := de.MaterializeValue()
		if merr != nil {
			lastErr = merr
			continue
		}
		c.noteReplicaSuccess(cand.rep.addr)
		return val, true, winner.ver, tr, nil
	}
	return nil, false, truetime.Version{}, tr, lastErr
}

// attemptGetRPC queries replicas over full RPC and quorums on versions.
func (c *Client) attemptGetRPC(ctx context.Context, key []byte, cfg config.CellConfig, rt route) ([]byte, bool, truetime.Version, fabric.OpTrace, error) {
	c.chargeCPU(cpuRPC)
	return c.twoSidedQuorum(cfg, rt, func(i int) (proto.GetResp, fabric.OpTrace, error) {
		addr := rt.addrs[i]
		if addr == "" {
			return proto.GetResp{}, fabric.OpTrace{}, ErrUnavailable
		}
		resp, tr, err := c.rpcc.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: key, ConfigID: cfg.ID}.Marshal())
		if err != nil {
			return proto.GetResp{}, tr, err
		}
		g, gerr := proto.UnmarshalGetResp(resp)
		return g, tr, gerr
	})
}

// attemptGetMSG queries replicas via two-sided NIC messaging (Figure 7's
// MSG strategy).
func (c *Client) attemptGetMSG(ctx context.Context, key []byte, cfg config.CellConfig, rt route) ([]byte, bool, truetime.Version, fabric.OpTrace, error) {
	if c.msg == nil {
		return c.attemptGetRPC(ctx, key, cfg, rt)
	}
	c.chargeCPU(cpuMSG)
	at := c.opStart()
	req := proto.GetReq{Key: key, ConfigID: cfg.ID}.Marshal()
	return c.twoSidedQuorum(cfg, rt, func(i int) (proto.GetResp, fabric.OpTrace, error) {
		host := cfg.HostForAddr(rt.addrs[i])
		if host < 0 {
			return proto.GetResp{}, fabric.OpTrace{}, ErrUnavailable
		}
		resp, tr, err := c.msg(host, at, req)
		if err != nil {
			return proto.GetResp{}, tr, err
		}
		g, gerr := proto.UnmarshalGetResp(resp)
		return g, tr, gerr
	})
}

// twoSidedQuorum runs the version-quorum logic over any request/response
// lookup primitive.
func (c *Client) twoSidedQuorum(cfg config.CellConfig, rt route, fetch func(i int) (proto.GetResp, fabric.OpTrace, error)) ([]byte, bool, truetime.Version, fabric.OpTrace, error) {
	need := cfg.Mode.Quorum()
	type result struct {
		resp proto.GetResp
		ok   bool
		ns   uint64
	}
	var results []result
	var tr fabric.OpTrace
	var legNs []uint64
	for i := range rt.shards {
		resp, ltr, err := fetch(i)
		if err != nil {
			continue
		}
		results = append(results, result{resp: resp, ok: true, ns: ltr.Ns})
		legNs = append(legNs, ltr.Ns)
		tr.AddBytes(int(ltr.Bytes))
		tr.Spans = append(tr.Spans, ltr.Spans...)
	}
	if len(results) < need {
		return nil, false, truetime.Version{}, tr, ErrUnavailable
	}
	sort.Slice(legNs, func(i, j int) bool { return legNs[i] < legNs[j] })
	phase := tr.Ns
	tr.Annotate(trace.SpanIndexFetch, uint32(len(legNs)), phase, legNs[0])
	if legNs[need-1] > legNs[0] {
		tr.Annotate(trace.SpanQuorumWait, uint32(need), phase+legNs[0], legNs[need-1]-legNs[0])
	}
	tr.Add(legNs[need-1])

	votes := map[truetime.Version]int{}
	for _, r := range results {
		ver := truetime.Version{}
		if r.resp.Found {
			ver = r.resp.Version
		}
		votes[ver]++
	}
	var winner truetime.Version
	won := false
	for ver, n := range votes {
		if n >= need && (!won || winner.Less(ver)) {
			winner, won = ver, true
		}
	}
	if !won {
		return nil, false, truetime.Version{}, tr, ErrInquorate
	}
	if winner.Zero() {
		return nil, false, truetime.Version{}, tr, nil
	}
	for _, r := range results {
		if r.resp.Found && r.resp.Version == winner {
			return r.resp.Value, true, winner, tr, nil
		}
	}
	return nil, false, truetime.Version{}, tr, ErrInquorate
}

// rpcGetAny tries an RPC lookup on each cohort member until one answers.
func (c *Client) rpcGetAny(ctx context.Context, key []byte) ([]byte, bool, fabric.OpTrace, error) {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	h := c.opt.Hash(key)
	rt := readRoute(cfg, h)
	var tr fabric.OpTrace
	var lastErr error = ErrUnavailable
	for _, addr := range rt.addrs {
		if addr == "" {
			continue
		}
		val, found, _, ftr, err := c.rpcGetAt(ctx, addr, key, cfg.ID)
		tr.Sequence(ftr)
		if err == nil {
			return val, found, tr, nil
		}
		lastErr = err
	}
	return nil, false, tr, lastErr
}

// GetVersioned is a single-replica RPC lookup returning the stored value
// and its version. It is the federation tier's follower-read primitive:
// the version lets a non-owner cell revalidate a cached entry against
// the owner, and a single replica (no quorum) is acceptable because the
// tier bounds staleness and revalidates. Not a substitute for Get on the
// quorum read path.
func (c *Client) GetVersioned(ctx context.Context, key []byte) ([]byte, truetime.Version, bool, error) {
	v, ver, found, _, err := c.GetVersionedTraced(ctx, key)
	return v, ver, found, err
}

// GetVersionedTraced is GetVersioned plus the op's modelled latency
// trace, so a tier edge can fold the owner cell's revalidation legs into
// the federated op's single trace.
func (c *Client) GetVersionedTraced(ctx context.Context, key []byte) ([]byte, truetime.Version, bool, fabric.OpTrace, error) {
	var total fabric.OpTrace
	var lastErr error = ErrUnavailable
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			// Same layered repair as the quorum paths: a resize or handoff
			// bumps the config epoch underneath us and the backend bounces
			// the stale ConfigID; refresh and re-route before retrying.
			c.classifyAndRepair(ctx, key, lastErr)
		}
		c.mu.Lock()
		cfg := c.cfg
		c.mu.Unlock()
		rt := readRoute(cfg, c.opt.Hash(key))
		for _, addr := range rt.addrs {
			if addr == "" {
				continue
			}
			resp, tr, err := c.rpcc.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: key, ConfigID: cfg.ID}.Marshal())
			total.Sequence(tr)
			if err != nil {
				lastErr = err
				continue
			}
			g, gerr := proto.UnmarshalGetResp(resp)
			if gerr != nil {
				lastErr = gerr
				continue
			}
			return g.Value, g.Version, g.Found, total, nil
		}
	}
	return nil, truetime.Version{}, false, total, lastErr
}

func (c *Client) rpcGetAt(ctx context.Context, addr string, key []byte, cfgID uint64) ([]byte, bool, truetime.Version, fabric.OpTrace, error) {
	resp, tr, err := c.rpcc.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: key, ConfigID: cfgID}.Marshal())
	if err != nil {
		return nil, false, truetime.Version{}, tr, err
	}
	g, gerr := proto.UnmarshalGetResp(resp)
	if gerr != nil {
		return nil, false, truetime.Version{}, tr, gerr
	}
	return g.Value, g.Found, g.Version, tr, nil
}

// GetBatch looks up many keys as one logical op (§7.1: Ads/Geo fetches are
// highly batched). Lookups run concurrently with bounded fan-out; the
// batch trace is the slowest leg, and the shared client downlink makes
// large batches incast-bound, which the fabric model charges for.
func (c *Client) GetBatch(ctx context.Context, keys [][]byte) (values [][]byte, found []bool, tr fabric.OpTrace, err error) {
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, tr, nil
	}
	const fanout = 8
	sem := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			v, ok, ktr, kerr := c.GetTraced(ctx, k)
			mu.Lock()
			values[i], found[i] = v, ok
			if kerr != nil && firstErr == nil {
				firstErr = kerr
			}
			tr.Merge(ktr)
			mu.Unlock()
		}(i, k)
	}
	wg.Wait()
	return values, found, tr, firstErr
}

// ----------------------------------------------------------- mutations --

// Set installs key=value on every replica at a fresh client-nominated
// VersionNumber (§5.2). It succeeds when a write quorum acknowledges.
func (c *Client) Set(ctx context.Context, key, value []byte) error {
	_, err := c.SetVersioned(ctx, key, value)
	return err
}

// SetVersioned is Set returning the nominated version (for later CAS).
func (c *Client) SetVersioned(ctx context.Context, key, value []byte) (truetime.Version, error) {
	v, _, err := c.SetVersionedTraced(ctx, key, value)
	return v, err
}

// SetVersionedTraced is SetVersioned plus the op's modelled latency trace.
func (c *Client) SetVersionedTraced(ctx context.Context, key, value []byte) (truetime.Version, fabric.OpTrace, error) {
	c.M.Sets.Inc()
	v := c.gen.Next()
	build := func(pending bool, cfgID uint64) []byte {
		return proto.SetReq{Key: key, Value: value, Version: v, Pending: pending, ConfigID: cfgID}.Marshal()
	}
	sc, ctx := c.traceOp(ctx, trace.KindSet)
	tr, attempts, _, err := c.mutateAll(ctx, key, proto.MethodSet, build, v)
	// Even a failed fan-out may have applied somewhere: the cached copy is
	// unconditionally suspect after our own mutation.
	c.nearInvalidate(key)
	c.observe(trace.KindSet, trace.TransportRPC, tr.Ns, err)
	c.M.SetLatency.Record(tr.Ns)
	if sc != nil && err == nil {
		c.opt.Tracer.Record(sc.OpID, trace.KindSet, trace.TransportRPC, attempts, tr)
	}
	return v, tr, err
}

// Erase removes key on every replica, tombstoning the version (§5.2).
func (c *Client) Erase(ctx context.Context, key []byte) error {
	_, err := c.EraseTraced(ctx, key)
	return err
}

// EraseTraced is Erase plus the op's modelled latency trace.
func (c *Client) EraseTraced(ctx context.Context, key []byte) (fabric.OpTrace, error) {
	c.M.Erases.Inc()
	v := c.gen.Next()
	build := func(pending bool, cfgID uint64) []byte {
		return proto.EraseReq{Key: key, Version: v, Pending: pending, ConfigID: cfgID}.Marshal()
	}
	sc, ctx := c.traceOp(ctx, trace.KindErase)
	tr, attempts, _, err := c.mutateAll(ctx, key, proto.MethodErase, build, v)
	c.nearInvalidate(key)
	c.observe(trace.KindErase, trace.TransportRPC, tr.Ns, err)
	c.M.SetLatency.Record(tr.Ns)
	if sc != nil && err == nil {
		c.opt.Tracer.Record(sc.OpID, trace.KindErase, trace.TransportRPC, attempts, tr)
	}
	return tr, err
}

// Cas installs value only where the stored version equals expected (§5.2).
// It reports whether the swap applied. CAS rides the same hardened retry
// loop as Set/Erase; a retry after a partially-acknowledged attempt
// recognizes its own nominated version as applied, so the decision stays
// stable across attempts.
func (c *Client) Cas(ctx context.Context, key, value []byte, expected truetime.Version) (bool, error) {
	applied, _, err := c.CasTraced(ctx, key, value, expected)
	return applied, err
}

// CasTraced is Cas plus the op's modelled latency trace.
func (c *Client) CasTraced(ctx context.Context, key, value []byte, expected truetime.Version) (bool, fabric.OpTrace, error) {
	c.M.CasOps.Inc()
	v := c.gen.Next()
	build := func(pending bool, cfgID uint64) []byte {
		return proto.CasReq{Key: key, Value: value, Expected: expected, Version: v, Pending: pending, ConfigID: cfgID}.Marshal()
	}
	sc, ctx := c.traceOp(ctx, trace.KindCas)
	tr, attempts, applied, err := c.mutateAll(ctx, key, proto.MethodCas, build, v)
	c.nearInvalidate(key)
	c.observe(trace.KindCas, trace.TransportRPC, tr.Ns, err)
	if err != nil {
		return false, tr, err
	}
	if sc != nil {
		c.opt.Tracer.Record(sc.OpID, trace.KindCas, trace.TransportRPC, attempts, tr)
	}
	c.mu.Lock()
	q := c.cfg.Mode.Quorum()
	c.mu.Unlock()
	return applied >= q, tr, nil
}

// mutateAll sends a mutation to every cohort member, requiring a write
// quorum of acknowledgements (applied or superseded-by-newer both count:
// the mutation's ordering is settled either way, §5.2/§5.3). Failed
// fan-outs run through classifyAndRepair exactly like GETs — config
// refresh, re-handshake, budgeted backoff — replacing the old ad-hoc
// refresh-and-retry-once loop, so every mutation hazard shares the one
// §3 repair mechanism. Returns the trace, attempts used, and the count
// of replicas that reported the mutation applied (CAS semantics).
func (c *Client) mutateAll(ctx context.Context, key []byte, method string, build func(pending bool, cfgID uint64) []byte, nominated truetime.Version) (fabric.OpTrace, uint32, int, error) {
	var total fabric.OpTrace
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if ctx.Err() != nil {
			return total, uint32(attempt), 0, ErrExhausted
		}
		if attempt > 0 {
			if !c.opt.Budget.TryTake() {
				c.M.BudgetDenied.Inc()
				return total, uint32(attempt), 0, fmt.Errorf("%w: retry budget empty", ErrExhausted)
			}
			ns := c.opt.Backoff.delay(attempt, c.rand64())
			total.AddSpan(trace.SpanBackoff, uint32(attempt), ns)
			c.M.BackoffNs.Add(ns)
		}
		tr, applied, err := c.mutateOnce(ctx, key, method, build, nominated)
		total.Sequence(tr)
		if err == nil {
			c.opt.Budget.Credit()
			return total, uint32(attempt + 1), applied, nil
		}
		lastErr = err
		c.classifyAndRepair(ctx, key, err)
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return total, uint32(c.opt.Retries + 1), 0, lastErr
}

// mutateOnce is one fan-out to the cohort — mid-resize, to the union of
// both epochs' cohorts. A leg whose stored version already equals the
// nominated version counts as applied: a retry after a partially-
// acknowledged earlier attempt must recognize its own write (CAS would
// otherwise read as failed on the replicas it had won).
//
// Quorum is accounted per epoch: an ack from a sealed old-cohort member
// must NOT count toward the old-epoch quorum (its journal has drained —
// the write would exist only where handoff can no longer see it), so
// MutateResp.Sealed legs count only toward the pending epoch when they
// serve there. The mutation acks when either epoch reaches its quorum.
func (c *Client) mutateOnce(ctx context.Context, key []byte, method string, build func(pending bool, cfgID uint64) []byte, nominated truetime.Version) (fabric.OpTrace, int, error) {
	c.mu.Lock()
	cfg := c.cfg
	c.mu.Unlock()
	h := c.opt.Hash(key)
	legs := mutationLegs(cfg, h)

	var tr fabric.OpTrace
	var legArr [8]uint64
	legNs := legArr[:0]
	oldAcks, pendAcks, applied := 0, 0, 0
	// Requests are built per attempt so each fan-out stamps the client's
	// CURRENT ConfigID — backends reject stale stamps, which is what
	// forces a mutate-only client (no bucket reads to trip the §6.1
	// stamp) to refresh before writing into a superseded epoch.
	var plainBytes, pendingBytes []byte
	var lastErr error
	for _, leg := range legs {
		var body []byte
		if leg.inPending {
			// Pending-epoch legs carry the Pending flag so a sealed
			// backend that owns the key in the new epoch still accepts.
			if pendingBytes == nil {
				pendingBytes = build(true, cfg.ID)
			}
			body = pendingBytes
		} else {
			if plainBytes == nil {
				plainBytes = build(false, cfg.ID)
			}
			body = plainBytes
		}
		resp, ltr, err := c.rpcc.Call(ctx, leg.addr, method, body)
		if err != nil {
			c.noteReplicaFailure(leg.addr)
			lastErr = err
			continue
		}
		mr, merr := proto.UnmarshalMutateResp(resp)
		if merr != nil {
			lastErr = merr
			continue
		}
		c.noteReplicaSuccess(leg.addr)
		if leg.inOld && !mr.Sealed {
			oldAcks++
		}
		if leg.inPending {
			pendAcks++
		}
		if mr.Applied || mr.Stored == nominated {
			applied++
		}
		legNs = append(legNs, ltr.Ns)
		tr.AddBytes(int(ltr.Bytes))
		// Replica legs fan out from the op start; spans keep the
		// common origin.
		tr.Spans = append(tr.Spans, ltr.Spans...)
	}
	q := cfg.Mode.Quorum()
	// The pending-epoch quorum only DECIDES the ack once reads route to
	// the pending owners (readRoute's authority rule). Before that flip a
	// pending-only quorum would be invisible: readers still consult the
	// old cohort, so a write acked on pending legs alone — possible when
	// a restamp race bounces healthy old legs — reads as lost. Until
	// authority flips the old epoch must ack; its sealed members are
	// discounted by MutateResp.Sealed, and once R−Q+1 of the cohort are
	// sealed an old quorum is unreachable, forcing the refresh-and-retry
	// that lands the write under the authoritative epoch.
	pendingDecides := false
	if cfg.Pending != nil {
		pendingDecides = cfg.PendingAuthoritative(cfg.Cohort(int(h.Hi % uint64(cfg.Shards))))
	}
	if oldAcks < q && (!pendingDecides || pendAcks < q) {
		if lastErr == nil {
			lastErr = ErrUnavailable
		}
		return tr, applied, lastErr
	}
	// A mutation completes when the write quorum has acked: k-th fastest.
	// Cohorts are tiny, so insertion sort stays on the stack.
	for i := 1; i < len(legNs); i++ {
		for j := i; j > 0 && legNs[j] < legNs[j-1]; j-- {
			legNs[j], legNs[j-1] = legNs[j-1], legNs[j]
		}
	}
	if legNs[q-1] > legNs[0] {
		tr.Annotate(trace.SpanQuorumWait, uint32(q), tr.Ns+legNs[0], legNs[q-1]-legNs[0])
	}
	tr.Add(legNs[q-1])
	return tr, applied, nil
}

// --------------------------------------------------------------- touch --

// noteTouch queues an access record for the key's primary backend and
// flushes opportunistically (§4.2's batched background reporting).
func (c *Client) noteTouch(key []byte) {
	if c.opt.TouchBatch <= 0 {
		return
	}
	c.mu.Lock()
	cfg := c.cfg
	h := c.opt.Hash(key)
	var flush map[string][][]byte
	for _, shard := range cfg.Cohort(int(h.Hi % uint64(cfg.Shards))) {
		addr := cfg.AddrFor(shard)
		if addr == "" {
			continue
		}
		c.touchQ[addr] = append(c.touchQ[addr], append([]byte(nil), key...))
		if len(c.touchQ[addr]) >= c.opt.TouchBatch {
			if flush == nil {
				flush = map[string][][]byte{}
			}
			flush[addr] = c.touchQ[addr]
			c.touchQ[addr] = nil
		}
	}
	c.mu.Unlock()
	for addr, keys := range flush {
		c.sendTouches(context.Background(), addr, keys)
	}
}

// FlushTouches force-flushes all pending access records.
func (c *Client) FlushTouches(ctx context.Context) {
	c.mu.Lock()
	pending := c.touchQ
	c.touchQ = make(map[string][][]byte)
	c.mu.Unlock()
	for addr, keys := range pending {
		if len(keys) == 0 {
			continue
		}
		c.sendTouches(ctx, addr, keys)
	}
}

// sendTouches reports one batch of access records and folds the ack's
// piggybacked promotion set into the client's hot-key view (§4.2 made
// bidirectional): the same traffic that feeds the server's heat sketch
// carries its promotion decisions back.
func (c *Client) sendTouches(ctx context.Context, addr string, keys [][]byte) {
	resp, _, err := c.rpcc.Call(ctx, addr, proto.MethodTouch, proto.TouchReq{Keys: keys}.Marshal())
	if err != nil {
		return
	}
	if tr, terr := proto.UnmarshalTouchResp(resp); terr == nil {
		c.ingestPromo(addr, tr.HotEpoch, tr.HotKeys)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package config

import (
	"sync"
	"testing"
)

func sample() CellConfig {
	return CellConfig{
		Mode:       R32,
		Shards:     3,
		ShardAddrs: []string{"b0", "b1", "b2"},
		Backends: []BackendInfo{
			{Shard: 0, Addr: "b0", HostID: 0},
			{Shard: 1, Addr: "b1", HostID: 1},
			{Shard: 2, Addr: "b2", HostID: 2},
			{Shard: -1, Addr: "spare0", HostID: 3, Spare: true},
		},
	}
}

func TestModeProperties(t *testing.T) {
	cases := []struct {
		m        Mode
		replicas int
		quorum   int
		name     string
	}{
		{R1, 1, 1, "R=1"},
		{R2Immutable, 2, 1, "R=2/Immutable"},
		{R32, 3, 2, "R=3.2"},
	}
	for _, c := range cases {
		if c.m.Replicas() != c.replicas || c.m.Quorum() != c.quorum || c.m.String() != c.name {
			t.Errorf("%v: replicas=%d quorum=%d name=%q", c.m, c.m.Replicas(), c.m.Quorum(), c.m.String())
		}
	}
}

func TestCohortWraps(t *testing.T) {
	c := sample()
	got := c.Cohort(2)
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cohort(2) = %v, want %v", got, want)
		}
	}
	c.Mode = R1
	if len(c.Cohort(0)) != 1 {
		t.Error("R1 cohort should have 1 member")
	}
}

func TestCohortClampedToShards(t *testing.T) {
	c := CellConfig{Mode: R32, Shards: 2, ShardAddrs: []string{"a", "b"}}
	if got := len(c.Cohort(0)); got != 2 {
		t.Errorf("cohort on 2-shard cell = %d members", got)
	}
}

func TestAddrHostLookup(t *testing.T) {
	c := sample()
	if c.AddrFor(1) != "b1" {
		t.Errorf("AddrFor(1) = %q", c.AddrFor(1))
	}
	if c.AddrFor(9) != "" || c.AddrFor(-1) != "" {
		t.Error("out-of-range AddrFor should be empty")
	}
	if c.HostFor(2) != 2 {
		t.Errorf("HostFor(2) = %d", c.HostFor(2))
	}
	if c.HostFor(9) != -1 {
		t.Error("HostFor out of range should be -1")
	}
}

func TestStoreUpdateBumpsID(t *testing.T) {
	s := NewStore(sample())
	c0 := s.Get()
	if c0.ID != 1 {
		t.Fatalf("initial ID = %d", c0.ID)
	}
	c1 := s.Update(func(c *CellConfig) { c.ShardAddrs[0] = "spare0" })
	if c1.ID != 2 {
		t.Errorf("updated ID = %d", c1.ID)
	}
	if s.Get().AddrFor(0) != "spare0" {
		t.Error("update not visible")
	}
	if c0.AddrFor(0) != "b0" {
		t.Error("old snapshot mutated")
	}
}

func TestSnapshotsIsolated(t *testing.T) {
	s := NewStore(sample())
	c := s.Get()
	c.ShardAddrs[0] = "tampered"
	c.Backends[0].Addr = "tampered"
	if s.Get().AddrFor(0) == "tampered" {
		t.Error("Get returned aliased storage")
	}
}

func TestWatch(t *testing.T) {
	s := NewStore(sample())
	w := s.Watch()
	s.Update(func(c *CellConfig) { c.ShardAddrs[1] = "x" })
	got := <-w
	if got.ID != 2 || got.AddrFor(1) != "x" {
		t.Errorf("watched config = %+v", got)
	}
}

func TestWatchSlowConsumerNeverBlocks(t *testing.T) {
	s := NewStore(sample())
	_ = s.Watch() // never read
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.Update(func(c *CellConfig) {})
		}
		close(done)
	}()
	<-done // must not deadlock
	if s.Get().ID != 101 {
		t.Errorf("ID = %d", s.Get().ID)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	s := NewStore(sample())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Update(func(c *CellConfig) {})
			}
		}()
	}
	wg.Wait()
	if got := s.Get().ID; got != 401 {
		t.Errorf("final ID = %d, want 401 (every update counted exactly once)", got)
	}
}

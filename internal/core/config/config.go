// Package config models CliqueMap's cell configuration and the external
// high-availability configuration store clients refresh from (§6.1 cites
// Chubby/Spanner; here an in-process registry with the same watch/refresh
// semantics).
//
// Configuration is versioned by a monotonically increasing ConfigID that is
// also stamped into every Bucket header. A client that fetches a Bucket
// whose ConfigID differs from its expectation knows a migration or
// reconfiguration is in flight, refreshes its configuration, and "discovers
// all migrations in flight and (temporary) roles of any spare backends".
package config

import (
	"fmt"
	"sync"
)

// Mode selects the replication scheme (§5, §6.4).
type Mode int

const (
	// R1 stores one copy; availability comes from warm spares (§6.1).
	R1 Mode = iota
	// R2Immutable stores two copies of an immutable corpus; one replica is
	// consulted per GET, the second serves on failure (§6.4).
	R2Immutable
	// R32 stores three copies with a client-side quorum of two (§5.1).
	R32
)

// Replicas returns the copy count for the mode.
func (m Mode) Replicas() int {
	switch m {
	case R1:
		return 1
	case R2Immutable:
		return 2
	default:
		return 3
	}
}

// Quorum returns the agreement threshold for the mode.
func (m Mode) Quorum() int {
	if m == R32 {
		return 2
	}
	return 1
}

// String names the mode the way the paper does.
func (m Mode) String() string {
	switch m {
	case R1:
		return "R=1"
	case R2Immutable:
		return "R=2/Immutable"
	case R32:
		return "R=3.2"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// BackendInfo describes one backend task.
type BackendInfo struct {
	// Shard is the logical backend number keys hash to (-1 for an idle
	// spare).
	Shard int
	// Addr is the task's RPC address.
	Addr string
	// HostID is the fabric host the task runs on.
	HostID int
	// Spare marks a warm spare, possibly temporarily holding a shard.
	Spare bool
}

// PendingEpoch is the target shard map of an in-flight resize. While a
// CellConfig carries one, the cell is mid-transition: old-epoch shards
// hand their contents to their pending-epoch owners one source at a
// time, and SealedOld records which old shards have been sealed and
// drained. The epoch commits when the orchestrator folds it into the
// top-level Shards/ShardAddrs and clears Pending.
type PendingEpoch struct {
	// Shards is the target logical shard count.
	Shards int
	// ShardAddrs maps each pending shard to its serving address.
	ShardAddrs []string
	// SealedOld[s] is true once old shard s has been sealed and its
	// catch-up delta drained to the pending owners. It only ever grows
	// within one transition.
	SealedOld []bool
}

// clone deep-copies the epoch.
func (p *PendingEpoch) clone() *PendingEpoch {
	if p == nil {
		return nil
	}
	return &PendingEpoch{
		Shards:     p.Shards,
		ShardAddrs: append([]string(nil), p.ShardAddrs...),
		SealedOld:  append([]bool(nil), p.SealedOld...),
	}
}

// AddrFor returns the pending-epoch serving address of shard s.
func (p *PendingEpoch) AddrFor(s int) string {
	if p == nil || s < 0 || s >= len(p.ShardAddrs) {
		return ""
	}
	return p.ShardAddrs[s]
}

// SealedCount returns how many old-epoch shards are sealed.
func (p *PendingEpoch) SealedCount() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, s := range p.SealedOld {
		if s {
			n++
		}
	}
	return n
}

// CellConfig is a point-in-time view of the cell.
type CellConfig struct {
	// ID increases on every change and is stamped into bucket headers.
	ID uint64
	// Mode is the replication scheme.
	Mode Mode
	// Shards is the logical backend count (N in "mod N").
	Shards int
	// ShardAddrs maps each shard to the address currently serving it —
	// normally its primary task, or a spare during migration.
	ShardAddrs []string
	// Backends lists all tasks, including idle spares.
	Backends []BackendInfo
	// Pending is the target epoch of an in-flight resize, nil otherwise.
	Pending *PendingEpoch
}

// AddrFor returns the serving address of shard s.
func (c CellConfig) AddrFor(s int) string {
	if s < 0 || s >= len(c.ShardAddrs) {
		return ""
	}
	return c.ShardAddrs[s]
}

// HostFor returns the fabric host currently serving shard s, or -1.
func (c CellConfig) HostFor(s int) int {
	return c.HostForAddr(c.AddrFor(s))
}

// HostForAddr returns the fabric host of the task at addr, or -1.
func (c CellConfig) HostForAddr(addr string) int {
	for _, b := range c.Backends {
		if b.Addr == addr {
			return b.HostID
		}
	}
	return -1
}

// Cohort returns the shards hosting copies of a key whose primary shard is
// p: p, p+1, ..., mod Shards (§5.1).
func (c CellConfig) Cohort(p int) []int {
	return cohort(p, c.Mode.Replicas(), c.Shards)
}

// PendingCohort returns the pending-epoch cohort of a key whose
// pending-epoch primary shard is p, or nil outside a transition.
func (c CellConfig) PendingCohort(p int) []int {
	if c.Pending == nil {
		return nil
	}
	return cohort(p, c.Mode.Replicas(), c.Pending.Shards)
}

func cohort(p, r, shards int) []int {
	if r > shards {
		r = shards
	}
	out := make([]int, r)
	for i := range out {
		out[i] = (p + i) % shards
	}
	return out
}

// PendingAuthoritative reports whether the pending epoch is the read
// authority for a key with the given old-epoch cohort. The old epoch
// stays authoritative while enough of the cohort is unsealed that an
// old-epoch quorum of live (unsealed or just-sealed) replicas can still
// vouch for every acked write; once sealed ≥ R−Q+1 of the cohort, any
// acked old-epoch write's quorum intersects the sealed set — and each
// seal drained that member's holdings (bulk + journal delta) to the
// pending owners — so the pending epoch holds every acked version and
// becomes the authority.
func (c CellConfig) PendingAuthoritative(oldCohort []int) bool {
	if c.Pending == nil {
		return false
	}
	r := len(oldCohort)
	q := c.Mode.Quorum()
	sealed := 0
	for _, s := range oldCohort {
		if s < len(c.Pending.SealedOld) && c.Pending.SealedOld[s] {
			sealed++
		}
	}
	return sealed >= r-q+1
}

// clone deep-copies the slices so watchers never share storage.
func (c CellConfig) clone() CellConfig {
	c.ShardAddrs = append([]string(nil), c.ShardAddrs...)
	c.Backends = append([]BackendInfo(nil), c.Backends...)
	c.Pending = c.Pending.clone()
	return c
}

// Store is the high-availability configuration registry. Reads are cheap;
// updates bump the ConfigID and notify watchers.
type Store struct {
	mu       sync.Mutex
	cur      CellConfig
	stale    *CellConfig // pinned snapshot served to readers while set
	watchers []chan CellConfig
}

// NewStore initializes a store with cfg at ID 1.
func NewStore(cfg CellConfig) *Store {
	cfg.ID = 1
	return &Store{cur: cfg.clone()}
}

// Get returns the current configuration — or, while SetStale(true) is in
// effect, the snapshot pinned at that moment.
func (s *Store) Get() CellConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stale != nil {
		return s.stale.clone()
	}
	return s.cur.clone()
}

// SetStale models a lagging HA config store (the §6.1 hazard a Chubby /
// Spanner-backed registry can exhibit): while stale, Get keeps serving the
// configuration current at the SetStale(true) call even as Updates apply
// underneath, so refresh-based repair reads outdated shard placements.
// Watch deliveries are unaffected — staleness is a read-path property.
// SetStale(false) unpins and readers immediately see the latest config.
func (s *Store) SetStale(stale bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !stale {
		s.stale = nil
		return
	}
	pin := s.cur.clone()
	s.stale = &pin
}

// Update applies mutate to a copy of the configuration, bumps the ID, and
// publishes it. It returns the new configuration.
func (s *Store) Update(mutate func(*CellConfig)) CellConfig {
	s.mu.Lock()
	next := s.cur.clone()
	mutate(&next)
	next.ID = s.cur.ID + 1
	s.cur = next.clone()
	watchers := append([]chan CellConfig(nil), s.watchers...)
	s.mu.Unlock()
	for _, w := range watchers {
		select {
		case w <- next.clone():
		default: // a slow watcher drops intermediate updates, never blocks
		}
	}
	return next
}

// Watch returns a channel receiving subsequent configurations. The channel
// is buffered; slow consumers observe only the latest updates.
func (s *Store) Watch() <-chan CellConfig {
	ch := make(chan CellConfig, 4)
	s.mu.Lock()
	s.watchers = append(s.watchers, ch)
	s.mu.Unlock()
	return ch
}

package proto

import (
	"cliquemap/internal/wire"
)

// The Health method ships the fleet health plane's evaluated SLO state —
// per-op-class burn rates and alert states plus per-probe-target
// availability — to remote tooling (cmstat). Like MethodStats and
// MethodDebug it is additive: old servers answer ErrNoSuchMethod and
// tooling degrades gracefully.
//
// Alert states travel as display strings ("ok"/"warn"/"page") and
// fractional quantities as scaled integers (burn rates in milli-units,
// availability objectives in parts-per-million), keeping the wire
// contract integer-only and enum-renumbering-proof.

// HealthReq requests a health snapshot. It is currently empty; fields are
// additive.
type HealthReq struct{}

// Marshal encodes the request.
func (HealthReq) Marshal() []byte { return wire.NewEncoder().Encoded() }

// UnmarshalHealthReq decodes the request.
func UnmarshalHealthReq(b []byte) (HealthReq, error) {
	var r HealthReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
	}
	return r, d.Err()
}

// HealthClass is one op class's evaluated SLO state.
type HealthClass struct {
	Class           string
	State           string // "ok" | "warn" | "page"
	SinceNs         uint64 // virtual instant of the last state change
	AvailabilityPpm uint64 // objective, parts-per-million (999000 = 99.9%)
	LatencyTargetNs uint64 // objective latency threshold
	FastBurnMilli   uint64 // fast-window burn rate × 1000
	SlowBurnMilli   uint64 // slow-window burn rate × 1000
	WindowGood      uint64 // slow-window tallies
	WindowBad       uint64
	Good            uint64 // lifetime probe outcomes
	Bad             uint64
	ProbeP50Ns      uint64
	ProbeP99Ns      uint64
	Pages           uint64
	Warns           uint64
}

// HealthTarget is one probe target's lifetime availability.
type HealthTarget struct {
	Name      string
	Good, Bad uint64
}

// HealthResp is the health plane snapshot.
type HealthResp struct {
	GeneratedNs uint64 // virtual generation instant
	Rounds      uint64 // prober rounds completed
	Classes     []HealthClass
	Targets     []HealthTarget
	// Hot-key promotion piggyback (additive tags 5/6): the serving
	// backend's promoted-key set and its epoch, so health pollers learn
	// the hot set on a poll they already make. Zero/empty from
	// pre-promotion servers.
	HotEpoch uint64
	HotKeys  [][]byte
}

func encodeHealthClass(e *wire.Encoder, tag uint64, c HealthClass) {
	m := wire.NewRawEncoder()
	m.String(1, c.Class)
	m.String(2, c.State)
	m.Uint(3, c.SinceNs)
	m.Uint(4, c.AvailabilityPpm)
	m.Uint(5, c.LatencyTargetNs)
	m.Uint(6, c.FastBurnMilli)
	m.Uint(7, c.SlowBurnMilli)
	m.Uint(8, c.WindowGood)
	m.Uint(9, c.WindowBad)
	m.Uint(10, c.Good)
	m.Uint(11, c.Bad)
	m.Uint(12, c.ProbeP50Ns)
	m.Uint(13, c.ProbeP99Ns)
	m.Uint(14, c.Pages)
	m.Uint(15, c.Warns)
	e.Message(tag, m)
}

func decodeHealthClass(b []byte) HealthClass {
	var c HealthClass
	d := wire.NewRawDecoder(b)
	for d.Next() {
		switch d.Tag() {
		case 1:
			c.Class = d.String()
		case 2:
			c.State = d.String()
		case 3:
			c.SinceNs = d.Uint()
		case 4:
			c.AvailabilityPpm = d.Uint()
		case 5:
			c.LatencyTargetNs = d.Uint()
		case 6:
			c.FastBurnMilli = d.Uint()
		case 7:
			c.SlowBurnMilli = d.Uint()
		case 8:
			c.WindowGood = d.Uint()
		case 9:
			c.WindowBad = d.Uint()
		case 10:
			c.Good = d.Uint()
		case 11:
			c.Bad = d.Uint()
		case 12:
			c.ProbeP50Ns = d.Uint()
		case 13:
			c.ProbeP99Ns = d.Uint()
		case 14:
			c.Pages = d.Uint()
		case 15:
			c.Warns = d.Uint()
		}
	}
	return c
}

// Marshal encodes the snapshot.
func (r HealthResp) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.GeneratedNs)
	e.Uint(2, r.Rounds)
	for _, c := range r.Classes {
		encodeHealthClass(e, 3, c)
	}
	for _, t := range r.Targets {
		m := wire.NewRawEncoder()
		m.String(1, t.Name)
		m.Uint(2, t.Good)
		m.Uint(3, t.Bad)
		e.Message(4, m)
	}
	if r.HotEpoch != 0 {
		e.Uint(5, r.HotEpoch)
	}
	for _, k := range r.HotKeys {
		e.Bytes(6, k)
	}
	return e.Encoded()
}

// UnmarshalHealthResp decodes the snapshot.
func UnmarshalHealthResp(b []byte) (HealthResp, error) {
	var r HealthResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.GeneratedNs = d.Uint()
		case 2:
			r.Rounds = d.Uint()
		case 3:
			r.Classes = append(r.Classes, decodeHealthClass(d.Bytes()))
		case 4:
			var t HealthTarget
			nd := wire.NewRawDecoder(d.Bytes())
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					t.Name = nd.String()
				case 2:
					t.Good = nd.Uint()
				case 3:
					t.Bad = nd.Uint()
				}
			}
			r.Targets = append(r.Targets, t)
		case 5:
			r.HotEpoch = d.Uint()
		case 6:
			r.HotKeys = append(r.HotKeys, append([]byte(nil), d.Bytes()...))
		}
	}
	return r, d.Err()
}

package proto

import (
	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
	"cliquemap/internal/wire"
)

// The Debug method ships a backend's tracer snapshot — per-kind ×
// per-transport latency summaries, CPU accounts, retained slow-op traces,
// and reservoir exemplars — to remote tooling (cmstat -trace). Like
// MethodStats it is additive: old servers answer ErrNoSuchMethod.
//
// Kinds and transports travel as their display strings rather than the
// in-process enum values, so the wire contract survives enum renumbering
// and unknown values degrade to readable text.

// DebugReq bounds the reply.
type DebugReq struct {
	// MaxSlow caps the slow-op traces returned; 0 means all retained.
	MaxSlow int
}

// Marshal encodes the request.
func (r DebugReq) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, uint64(r.MaxSlow))
	return e.Encoded()
}

// UnmarshalDebugReq decodes the request.
func UnmarshalDebugReq(b []byte) (DebugReq, error) {
	var r DebugReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		if d.Tag() == 1 {
			r.MaxSlow = int(d.Uint())
		}
	}
	return r, d.Err()
}

// DebugHist summarizes one kind/transport latency histogram. SumNs and
// Buckets (added after initial deployment — additive tags, absent from
// old senders) carry the raw log-linear distribution so a fleet
// aggregator can merge per-cell histograms into true fleet percentiles
// instead of averaging quantiles.
type DebugHist struct {
	Kind      string
	Transport string
	Count     uint64
	MeanNs    uint64
	P50Ns     uint64
	P90Ns     uint64
	P99Ns     uint64
	P999Ns    uint64
	MaxNs     uint64
	SumNs     uint64
	Buckets   []stats.HistBucket
}

// DebugCPU is one component's CPU account.
type DebugCPU struct {
	Component string
	TotalNs   uint64
	Ops       uint64
}

// DebugOp is one retained op trace.
type DebugOp struct {
	ID        uint64
	Kind      string
	Transport string
	Attempts  uint32
	Ns        uint64
	Bytes     uint64
	WallNs    int64
	Spans     []fabric.Span
}

// DebugHazard is one chaos hazard class's injection count.
type DebugHazard struct {
	Name  string
	Count uint64
}

// DebugHealth is one backend's client-observed health gauge. Score
// travels in milli-units (0..1000) to stay integer on the wire.
type DebugHealth struct {
	Addr       string
	ScoreMilli uint64
	Demoted    bool
}

// DebugHotKey is one entry of the backend's space-saving top-k sketch:
// an (over-)estimated access count and the bound on the over-estimate
// (≤ N/k), so consumers can judge how trustworthy the ranking is.
type DebugHotKey struct {
	Key   string
	Count uint64
	Err   uint64
}

// DebugResp is the tracer snapshot.
type DebugResp struct {
	OpsTotal        uint64
	SlowTotal       uint64
	SlowThresholdNs uint64
	Hists           []DebugHist
	CPU             []DebugCPU
	SlowOps         []DebugOp
	Exemplars       []DebugOp
	Hazards         []DebugHazard
	Health          []DebugHealth
	// HotKeys is the backend's heavy-hitter sketch, hottest first;
	// StripeHeat is the per-lock-stripe op count, in stripe order — the
	// key-skew and stripe-imbalance telemetry of the health plane.
	HotKeys    []DebugHotKey
	StripeHeat []uint64
}

func encodeDebugHist(e *wire.Encoder, tag uint64, h DebugHist) {
	m := wire.NewRawEncoder()
	m.String(1, h.Kind)
	m.String(2, h.Transport)
	m.Uint(3, h.Count)
	m.Uint(4, h.MeanNs)
	m.Uint(5, h.P50Ns)
	m.Uint(6, h.P90Ns)
	m.Uint(7, h.P99Ns)
	m.Uint(8, h.P999Ns)
	m.Uint(9, h.MaxNs)
	m.Uint(10, h.SumNs)
	for _, b := range h.Buckets {
		bm := wire.NewRawEncoder()
		bm.Uint(1, uint64(b.Index))
		bm.Uint(2, b.Count)
		m.Message(11, bm)
	}
	e.Message(tag, m)
}

func decodeDebugHist(b []byte) DebugHist {
	var h DebugHist
	d := wire.NewRawDecoder(b)
	for d.Next() {
		switch d.Tag() {
		case 1:
			h.Kind = d.String()
		case 2:
			h.Transport = d.String()
		case 3:
			h.Count = d.Uint()
		case 4:
			h.MeanNs = d.Uint()
		case 5:
			h.P50Ns = d.Uint()
		case 6:
			h.P90Ns = d.Uint()
		case 7:
			h.P99Ns = d.Uint()
		case 8:
			h.P999Ns = d.Uint()
		case 9:
			h.MaxNs = d.Uint()
		case 10:
			h.SumNs = d.Uint()
		case 11:
			if len(h.Buckets) >= stats.NumBuckets {
				break // fabricated frame; a histogram has ≤ NumBuckets entries
			}
			var hb stats.HistBucket
			bd := wire.NewRawDecoder(d.Bytes())
			for bd.Next() {
				switch bd.Tag() {
				case 1:
					hb.Index = uint32(bd.Uint())
				case 2:
					hb.Count = bd.Uint()
				}
			}
			h.Buckets = append(h.Buckets, hb)
		}
	}
	return h
}

func encodeDebugOp(e *wire.Encoder, tag uint64, o DebugOp) {
	m := wire.NewRawEncoder()
	m.Uint(1, o.ID)
	m.String(2, o.Kind)
	m.String(3, o.Transport)
	m.Uint(4, uint64(o.Attempts))
	m.Uint(5, o.Ns)
	m.Uint(6, o.Bytes)
	m.Int(7, o.WallNs)
	trace.EncodeSpans(m, 8, o.Spans)
	e.Message(tag, m)
}

func decodeDebugOp(b []byte) DebugOp {
	var o DebugOp
	d := wire.NewRawDecoder(b)
	for d.Next() {
		switch d.Tag() {
		case 1:
			o.ID = d.Uint()
		case 2:
			o.Kind = d.String()
		case 3:
			o.Transport = d.String()
		case 4:
			o.Attempts = uint32(d.Uint())
		case 5:
			o.Ns = d.Uint()
		case 6:
			o.Bytes = d.Uint()
		case 7:
			o.WallNs = d.Int()
		case 8:
			if len(o.Spans) < trace.MaxWireSpans {
				o.Spans = append(o.Spans, trace.DecodeSpan(d.Bytes()))
			}
		}
	}
	return o
}

// Marshal encodes the snapshot.
func (r DebugResp) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.OpsTotal)
	e.Uint(2, r.SlowTotal)
	e.Uint(3, r.SlowThresholdNs)
	for _, h := range r.Hists {
		encodeDebugHist(e, 4, h)
	}
	for _, c := range r.CPU {
		m := wire.NewRawEncoder()
		m.String(1, c.Component)
		m.Uint(2, c.TotalNs)
		m.Uint(3, c.Ops)
		e.Message(5, m)
	}
	for _, o := range r.SlowOps {
		encodeDebugOp(e, 6, o)
	}
	for _, o := range r.Exemplars {
		encodeDebugOp(e, 7, o)
	}
	for _, h := range r.Hazards {
		m := wire.NewRawEncoder()
		m.String(1, h.Name)
		m.Uint(2, h.Count)
		e.Message(8, m)
	}
	for _, h := range r.Health {
		m := wire.NewRawEncoder()
		m.String(1, h.Addr)
		m.Uint(2, h.ScoreMilli)
		if h.Demoted {
			m.Uint(3, 1)
		}
		e.Message(9, m)
	}
	for _, h := range r.HotKeys {
		m := wire.NewRawEncoder()
		m.String(1, h.Key)
		m.Uint(2, h.Count)
		m.Uint(3, h.Err)
		e.Message(10, m)
	}
	for _, n := range r.StripeHeat {
		e.Uint(11, n)
	}
	return e.Encoded()
}

// UnmarshalDebugResp decodes the snapshot.
func UnmarshalDebugResp(b []byte) (DebugResp, error) {
	var r DebugResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.OpsTotal = d.Uint()
		case 2:
			r.SlowTotal = d.Uint()
		case 3:
			r.SlowThresholdNs = d.Uint()
		case 4:
			r.Hists = append(r.Hists, decodeDebugHist(d.Bytes()))
		case 5:
			var c DebugCPU
			nd := wire.NewRawDecoder(d.Bytes())
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					c.Component = nd.String()
				case 2:
					c.TotalNs = nd.Uint()
				case 3:
					c.Ops = nd.Uint()
				}
			}
			r.CPU = append(r.CPU, c)
		case 6:
			r.SlowOps = append(r.SlowOps, decodeDebugOp(d.Bytes()))
		case 7:
			r.Exemplars = append(r.Exemplars, decodeDebugOp(d.Bytes()))
		case 8:
			var h DebugHazard
			nd := wire.NewRawDecoder(d.Bytes())
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					h.Name = nd.String()
				case 2:
					h.Count = nd.Uint()
				}
			}
			r.Hazards = append(r.Hazards, h)
		case 9:
			var h DebugHealth
			nd := wire.NewRawDecoder(d.Bytes())
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					h.Addr = nd.String()
				case 2:
					h.ScoreMilli = nd.Uint()
				case 3:
					h.Demoted = nd.Uint() != 0
				}
			}
			r.Health = append(r.Health, h)
		case 10:
			var h DebugHotKey
			nd := wire.NewRawDecoder(d.Bytes())
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					h.Key = nd.String()
				case 2:
					h.Count = nd.Uint()
				case 3:
					h.Err = nd.Uint()
				}
			}
			r.HotKeys = append(r.HotKeys, h)
		case 11:
			r.StripeHeat = append(r.StripeHeat, d.Uint())
		}
	}
	return r, d.Err()
}

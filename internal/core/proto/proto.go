// Package proto defines CliqueMap's RPC message schemas over the
// versioned TLV encoding of internal/wire.
//
// Every message tolerates unknown fields, which is what let the production
// system ship "over a hundred changes to CliqueMap's protocol definitions"
// without lockstep client/backend upgrades (§6). Field tags are therefore
// stable and append-only.
package proto

import (
	"fmt"

	"cliquemap/internal/rmem"
	"cliquemap/internal/truetime"
	"cliquemap/internal/wire"
)

// Method names served by every backend.
const (
	MethodHello         = "CliqueMap.Hello"
	MethodGet           = "CliqueMap.Get"
	MethodSet           = "CliqueMap.Set"
	MethodErase         = "CliqueMap.Erase"
	MethodCas           = "CliqueMap.Cas"
	MethodTouch         = "CliqueMap.Touch"
	MethodScan          = "CliqueMap.Scan"
	MethodUpdateVersion = "CliqueMap.UpdateVersion"
	MethodMigrateStart  = "CliqueMap.MigrateStart"
	MethodMigrateBatch  = "CliqueMap.MigrateBatch"
	MethodAssumeShard   = "CliqueMap.AssumeShard"
	MethodRequestRepair = "CliqueMap.RequestRepair"
	// MethodStats was added after initial deployment — the kind of
	// additive protocol evolution §6 describes. Old clients simply never
	// call it; old servers answer ErrNoSuchMethod and new clients cope.
	MethodStats = "CliqueMap.Stats"
	// MethodConfig lets external (TCP/WAN) callers discover the cell's
	// shard map without access to the in-process config store.
	MethodConfig = "CliqueMap.Config"
	// MethodDebug ships the cell's op-tracing snapshot: latency
	// percentiles per kind/transport, CPU accounts, and retained slow-op
	// traces. Additive like MethodStats.
	MethodDebug = "CliqueMap.Debug"
	// MethodHealth ships the fleet health plane's evaluated SLO state:
	// per-op-class burn rates, alert states, and probe-target
	// availability. Additive like MethodStats.
	MethodHealth = "CliqueMap.Health"
	// MethodTier ships the federation router's weighted-ring snapshot:
	// member cells, live/base weights, demotion state, and ownership
	// shares. Additive like MethodStats; cells outside a tier answer an
	// empty snapshot.
	MethodTier = "CliqueMap.Tier"
	// MethodSeal toggles a backend's handoff seal: a sealed backend
	// rejects client mutations with ErrShardSealed (migration streams and
	// pending-epoch writes still land) so the handoff delta pass can drain
	// to a closed set. Additive: old servers answer ErrNoSuchMethod and
	// the resize orchestrator aborts rather than risking a lost write.
	MethodSeal = "CliqueMap.Seal"
	// MethodMigrateDelta streams the catch-up delta of a sealed handoff:
	// mutations journaled since the bulk stream, plus the source's live
	// tombstones and coarse tombstone summary. Same schema as
	// MigrateBatch; callers fall back to MethodMigrateBatch on
	// ErrNoSuchMethod (losing only the summary fold).
	MethodMigrateDelta = "CliqueMap.MigrateDelta"
)

// ErrShardSealed is returned by a handoff-sealed backend for client
// mutations. It is a config-mismatch-class error: the client refreshes
// its config (picking up the seal bitmap or the post-handoff flip) and
// retries against the current owners. Defined here so both client and
// backend can errors.Is against it without importing each other.
var ErrShardSealed = fmt.Errorf("proto: shard sealed for handoff")

// ErrRecovering is returned by a freshly-restarted backend for a GET that
// misses while the backend is still self-validating back into the quorum
// (§5.4): the replica cannot distinguish "never stored" from "acked
// before the crash, not yet recovered", so its miss must not count as an
// agreed-miss vote. Resident entries are served normally. Clients treat
// it like a transient replica fault: drop the vote and lean on the rest
// of the quorum.
var ErrRecovering = fmt.Errorf("proto: backend recovering, miss vote withheld")

// Version field tags, shared by every message embedding a VersionNumber.
func encodeVersion(e *wire.Encoder, base uint64, v truetime.Version) {
	e.Uint(base, uint64(v.Micros))
	e.Uint(base+1, v.ClientID)
	e.Uint(base+2, v.Seq)
}

type versionAcc struct{ m, c, s uint64 }

func (a versionAcc) version() truetime.Version {
	return truetime.Version{Micros: int64(a.m), ClientID: a.c, Seq: a.s}
}

// HelloResp is the connection handshake (§3's "established at
// connection-time alongside other RMA-relevant metadata"): everything a
// client needs to issue raw RMAs against this backend.
type HelloResp struct {
	ConfigID    uint64
	Shard       int
	Buckets     int
	Ways        int
	IndexWindow rmem.WindowID
	IndexEpoch  uint64
	DataWindows []rmem.WindowID
}

// Marshal encodes the handshake.
func (h HelloResp) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, h.ConfigID)
	e.Int(2, int64(h.Shard))
	e.Uint(3, uint64(h.Buckets))
	e.Uint(4, uint64(h.Ways))
	e.Uint(5, uint64(h.IndexWindow))
	e.Uint(6, h.IndexEpoch)
	for _, w := range h.DataWindows {
		e.Uint(7, uint64(w))
	}
	return e.Encoded()
}

// UnmarshalHelloResp decodes the handshake.
func UnmarshalHelloResp(b []byte) (HelloResp, error) {
	var h HelloResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return h, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			h.ConfigID = d.Uint()
		case 2:
			h.Shard = int(d.Int())
		case 3:
			h.Buckets = int(d.Uint())
		case 4:
			h.Ways = int(d.Uint())
		case 5:
			h.IndexWindow = rmem.WindowID(d.Uint())
		case 6:
			h.IndexEpoch = d.Uint()
		case 7:
			h.DataWindows = append(h.DataWindows, rmem.WindowID(d.Uint()))
		}
	}
	return h, d.Err()
}

// SetReq installs key=value at a client-nominated version (§5.2). Repair
// marks repair-driven SETs (§5.4) for observability. Pending marks a
// mutation leg addressed to a pending-epoch owner during a resize: it
// bypasses the handoff seal on backends that own the key in the pending
// shard map.
type SetReq struct {
	Key     []byte
	Value   []byte
	Version truetime.Version
	Repair  bool
	Pending bool
	// ConfigID is the sender's config view; a backend whose stamped ID
	// differs rejects with layout.ErrConfigChanged so stale clients
	// refresh instead of writing into a superseded epoch. 0 = unchecked
	// (repair traffic, old senders).
	ConfigID uint64
}

// Marshal encodes the request.
func (r SetReq) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(len(r.Key) + len(r.Value) + 48)
	e.Bytes(1, r.Key)
	e.Bytes(2, r.Value)
	encodeVersion(&e, 3, r.Version)
	e.Bool(6, r.Repair)
	e.Bool(7, r.Pending)
	e.Uint(8, r.ConfigID)
	return e.Encoded()
}

// UnmarshalSetReq decodes the request. Key and Value alias b: they are
// valid only while b is — fine for RPC handlers, which finish with the
// request before returning and copy anything they keep.
func UnmarshalSetReq(b []byte) (SetReq, error) {
	var r SetReq
	var v versionAcc
	var d wire.Decoder
	if err := d.Init(b); err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Key = d.Bytes()
		case 2:
			r.Value = d.Bytes()
		case 3:
			v.m = d.Uint()
		case 4:
			v.c = d.Uint()
		case 5:
			v.s = d.Uint()
		case 6:
			r.Repair = d.Bool()
		case 7:
			r.Pending = d.Bool()
		case 8:
			r.ConfigID = d.Uint()
		}
	}
	r.Version = v.version()
	return r, d.Err()
}

// MutateResp answers SET/ERASE/CAS: whether the mutation applied, the
// version now stored, and how many evictions it forced (§4.2 instruments
// eviction-to-SET ratios). Sealed reports that the answering backend is
// handoff-sealed: its mutation journal has already drained, so the ack
// must not count toward the old epoch's quorum (the write survives only
// through the backend's pending-epoch ownership).
type MutateResp struct {
	Applied   bool
	Stored    truetime.Version
	Evictions int
	Sealed    bool
}

// Marshal encodes the response.
func (r MutateResp) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(48)
	e.Bool(1, r.Applied)
	encodeVersion(&e, 2, r.Stored)
	e.Uint(5, uint64(r.Evictions))
	e.Bool(6, r.Sealed)
	return e.Encoded()
}

// UnmarshalMutateResp decodes the response.
func UnmarshalMutateResp(b []byte) (MutateResp, error) {
	var r MutateResp
	var v versionAcc
	var d wire.Decoder
	if err := d.Init(b); err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Applied = d.Bool()
		case 2:
			v.m = d.Uint()
		case 3:
			v.c = d.Uint()
		case 4:
			v.s = d.Uint()
		case 5:
			r.Evictions = int(d.Uint())
		case 6:
			r.Sealed = d.Bool()
		}
	}
	r.Stored = v.version()
	return r, d.Err()
}

// EraseReq removes key at a client-nominated version; the version is
// retained in the tombstone cache so late SETs cannot resurrect the value
// (§5.2).
type EraseReq struct {
	Key      []byte
	Version  truetime.Version
	Pending  bool   // see SetReq.Pending
	ConfigID uint64 // see SetReq.ConfigID
}

// Marshal encodes the request.
func (r EraseReq) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(len(r.Key) + 48)
	e.Bytes(1, r.Key)
	encodeVersion(&e, 2, r.Version)
	e.Bool(5, r.Pending)
	e.Uint(6, r.ConfigID)
	return e.Encoded()
}

// UnmarshalEraseReq decodes the request. Key aliases b (see
// UnmarshalSetReq).
func UnmarshalEraseReq(b []byte) (EraseReq, error) {
	var r EraseReq
	var v versionAcc
	var d wire.Decoder
	if err := d.Init(b); err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Key = d.Bytes()
		case 2:
			v.m = d.Uint()
		case 3:
			v.c = d.Uint()
		case 4:
			v.s = d.Uint()
		case 5:
			r.Pending = d.Bool()
		case 6:
			r.ConfigID = d.Uint()
		}
	}
	r.Version = v.version()
	return r, d.Err()
}

// CasReq installs Value only if the stored version equals Expected (§5.2).
type CasReq struct {
	Key      []byte
	Value    []byte
	Expected truetime.Version
	Version  truetime.Version // new version on success
	Pending  bool             // see SetReq.Pending
	ConfigID uint64           // see SetReq.ConfigID
}

// Marshal encodes the request.
func (r CasReq) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(len(r.Key) + len(r.Value) + 80)
	e.Bytes(1, r.Key)
	e.Bytes(2, r.Value)
	encodeVersion(&e, 3, r.Expected)
	encodeVersion(&e, 6, r.Version)
	e.Bool(9, r.Pending)
	e.Uint(10, r.ConfigID)
	return e.Encoded()
}

// UnmarshalCasReq decodes the request. Key and Value alias b (see
// UnmarshalSetReq).
func UnmarshalCasReq(b []byte) (CasReq, error) {
	var r CasReq
	var exp, nv versionAcc
	var d wire.Decoder
	if err := d.Init(b); err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Key = d.Bytes()
		case 2:
			r.Value = d.Bytes()
		case 3:
			exp.m = d.Uint()
		case 4:
			exp.c = d.Uint()
		case 5:
			exp.s = d.Uint()
		case 6:
			nv.m = d.Uint()
		case 7:
			nv.c = d.Uint()
		case 8:
			nv.s = d.Uint()
		case 9:
			r.Pending = d.Bool()
		case 10:
			r.ConfigID = d.Uint()
		}
	}
	r.Expected = exp.version()
	r.Version = nv.version()
	return r, d.Err()
}

// GetReq is the RPC lookup fallback (overflowed buckets, WAN access, MSG
// strategy, and retries after RMA failures).
type GetReq struct {
	Key []byte
	// ConfigID, when non-zero, is the §6.1 self-validation stamp on the
	// two-sided read path: the server rejects the lookup when its config
	// differs, so a stale-routed client refreshes instead of trusting an
	// answer from a backend that may no longer own the key.
	ConfigID uint64
}

// Marshal encodes the request.
func (r GetReq) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(len(r.Key) + 24)
	e.Bytes(1, r.Key)
	e.Uint(2, r.ConfigID)
	return e.Encoded()
}

// UnmarshalGetReq decodes the request. Key aliases b (see
// UnmarshalSetReq).
func UnmarshalGetReq(b []byte) (GetReq, error) {
	var r GetReq
	var d wire.Decoder
	if err := d.Init(b); err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Key = d.Bytes()
		case 2:
			r.ConfigID = d.Uint()
		}
	}
	return r, d.Err()
}

// GetResp carries the lookup result.
type GetResp struct {
	Found   bool
	Value   []byte
	Version truetime.Version
}

// Marshal encodes the response.
func (r GetResp) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(len(r.Value) + 48)
	e.Bool(1, r.Found)
	e.Bytes(2, r.Value)
	encodeVersion(&e, 3, r.Version)
	return e.Encoded()
}

// UnmarshalGetResp decodes the response.
func UnmarshalGetResp(b []byte) (GetResp, error) {
	var r GetResp
	var v versionAcc
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Found = d.Bool()
		case 2:
			r.Value = append([]byte(nil), d.Bytes()...)
		case 3:
			v.m = d.Uint()
		case 4:
			v.c = d.Uint()
		case 5:
			v.s = d.Uint()
		}
	}
	r.Version = v.version()
	return r, d.Err()
}

// TouchReq is the batched access-record report clients send so backends
// can run recency-based eviction despite never seeing RMA GETs (§4.2).
type TouchReq struct {
	Keys [][]byte
}

// Marshal encodes the request.
func (r TouchReq) Marshal() []byte {
	e := wire.NewEncoder()
	for _, k := range r.Keys {
		e.Bytes(1, k)
	}
	return e.Encoded()
}

// UnmarshalTouchReq decodes the request.
func UnmarshalTouchReq(b []byte) (TouchReq, error) {
	var r TouchReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		if d.Tag() == 1 {
			r.Keys = append(r.Keys, append([]byte(nil), d.Bytes()...))
		}
	}
	return r, d.Err()
}

// TouchResp acknowledges a batched access-record report and piggybacks
// the backend's hot-key promotion set: the keys this backend has promoted
// to all-replica residency plus the epoch that identifies the set. Touch
// flushes are the one RPC every heat-reporting client already sends, so
// riding the promotion set on the reply teaches clients to near-cache and
// spread hot reads without a new round trip. Additive: pre-promotion
// servers answered a bare Ack (an empty frame), which decodes as epoch 0
// with no keys, and pre-promotion clients ignore the body entirely.
type TouchResp struct {
	HotEpoch uint64
	HotKeys  [][]byte
}

// Marshal encodes the response.
func (r TouchResp) Marshal() []byte {
	e := wire.NewEncoder()
	if r.HotEpoch != 0 {
		e.Uint(1, r.HotEpoch)
	}
	for _, k := range r.HotKeys {
		e.Bytes(2, k)
	}
	return e.Encoded()
}

// UnmarshalTouchResp decodes the response.
func UnmarshalTouchResp(b []byte) (TouchResp, error) {
	var r TouchResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.HotEpoch = d.Uint()
		case 2:
			r.HotKeys = append(r.HotKeys, append([]byte(nil), d.Bytes()...))
		}
	}
	return r, d.Err()
}

// ScanItem is one KV summary in a cohort scan (§5.4): KeyHash + version,
// plus the key itself so the scanner can repair without a second lookup.
// Tombstone marks an erased key (§5.2): the scanner must see erases, or a
// dirty quorum would be "repaired" by resurrecting the erased value.
type ScanItem struct {
	HashHi, HashLo uint64
	Version        truetime.Version
	Key            []byte
	Tombstone      bool
}

// ScanReq asks a cohort member for its view of a shard's keys, paged by
// cursor.
type ScanReq struct {
	Shard  int
	Cursor uint64
	Limit  int
}

// Marshal encodes the request.
func (r ScanReq) Marshal() []byte {
	e := wire.NewEncoder()
	e.Int(1, int64(r.Shard))
	e.Uint(2, r.Cursor)
	e.Uint(3, uint64(r.Limit))
	return e.Encoded()
}

// UnmarshalScanReq decodes the request.
func UnmarshalScanReq(b []byte) (ScanReq, error) {
	var r ScanReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Shard = int(d.Int())
		case 2:
			r.Cursor = d.Uint()
		case 3:
			r.Limit = int(d.Uint())
		}
	}
	return r, d.Err()
}

// ScanResp returns a page of summaries. TombSummary is the replica's
// coarse tombstone-summary version (§5.2): an upper bound on erases whose
// exact tombstones were FIFO-evicted from the cache. Repair uses it to
// refuse settling a key upward past a replica whose summary dominates the
// candidate — absence there may be a summary-evicted erase, not a lag.
type ScanResp struct {
	Items       []ScanItem
	NextCursor  uint64
	Done        bool
	TombSummary truetime.Version
}

// Marshal encodes the response.
func (r ScanResp) Marshal() []byte {
	e := wire.NewEncoder()
	for _, it := range r.Items {
		m := wire.NewRawEncoder()
		m.Uint(1, it.HashHi)
		m.Uint(2, it.HashLo)
		encodeVersion(m, 3, it.Version)
		m.Bytes(6, it.Key)
		m.Bool(7, it.Tombstone)
		e.Message(1, m)
	}
	e.Uint(2, r.NextCursor)
	e.Bool(3, r.Done)
	encodeVersion(e, 4, r.TombSummary)
	return e.Encoded()
}

// UnmarshalScanResp decodes the response.
func UnmarshalScanResp(b []byte) (ScanResp, error) {
	var r ScanResp
	var sum versionAcc
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			nd := wire.NewRawDecoder(d.Bytes())
			var it ScanItem
			var v versionAcc
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					it.HashHi = nd.Uint()
				case 2:
					it.HashLo = nd.Uint()
				case 3:
					v.m = nd.Uint()
				case 4:
					v.c = nd.Uint()
				case 5:
					v.s = nd.Uint()
				case 6:
					it.Key = append([]byte(nil), nd.Bytes()...)
				case 7:
					it.Tombstone = nd.Bool()
				}
			}
			if err := nd.Err(); err != nil {
				return r, fmt.Errorf("proto: scan item: %w", err)
			}
			it.Version = v.version()
			r.Items = append(r.Items, it)
		case 2:
			r.NextCursor = d.Uint()
		case 3:
			r.Done = d.Bool()
		case 4:
			sum.m = d.Uint()
		case 5:
			sum.c = d.Uint()
		case 6:
			sum.s = d.Uint()
		}
	}
	r.TombSummary = sum.version()
	return r, d.Err()
}

// UpdateVersionReq bumps the stored version of key to Version without
// changing its value — step 2 of the §5.4 repair procedure, which settles
// all three replicas on one VersionNumber.
type UpdateVersionReq struct {
	Key     []byte
	Version truetime.Version
}

// Marshal encodes the request.
func (r UpdateVersionReq) Marshal() []byte {
	var e wire.Encoder
	e.InitSized(len(r.Key) + 48)
	e.Bytes(1, r.Key)
	encodeVersion(&e, 2, r.Version)
	return e.Encoded()
}

// UnmarshalUpdateVersionReq decodes the request.
func UnmarshalUpdateVersionReq(b []byte) (UpdateVersionReq, error) {
	var r UpdateVersionReq
	var v versionAcc
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Key = append([]byte(nil), d.Bytes()...)
		case 2:
			v.m = d.Uint()
		case 3:
			v.c = d.Uint()
		case 4:
			v.s = d.Uint()
		}
	}
	r.Version = v.version()
	return r, d.Err()
}

// MigrateItem is one KV pair streamed during warm-spare migration (§6.1).
// Tombstone marks an erased key (mirroring ScanItem tag 7): the receiver
// installs the version in its tombstone cache instead of its index, so an
// erase just before a handoff cannot resurrect on the new owner.
type MigrateItem struct {
	Key       []byte
	Value     []byte
	Version   truetime.Version
	Tombstone bool
}

// MigrateBatchReq streams a page of a shard's contents to a spare (or back
// to a restarted primary). TombSummary, carried on the final batch, is the
// source's coarse tombstone-summary version; the receiver folds it into
// its own summary so even FIFO-evicted erases keep their upper bound
// across the handoff.
type MigrateBatchReq struct {
	Shard       int
	Items       []MigrateItem
	Final       bool
	TombSummary truetime.Version
}

// Marshal encodes the request.
func (r MigrateBatchReq) Marshal() []byte {
	e := wire.NewEncoder()
	e.Int(1, int64(r.Shard))
	for _, it := range r.Items {
		m := wire.NewRawEncoder()
		m.Bytes(1, it.Key)
		m.Bytes(2, it.Value)
		encodeVersion(m, 3, it.Version)
		m.Bool(6, it.Tombstone)
		e.Message(2, m)
	}
	e.Bool(3, r.Final)
	encodeVersion(e, 4, r.TombSummary)
	return e.Encoded()
}

// UnmarshalMigrateBatchReq decodes the request.
func UnmarshalMigrateBatchReq(b []byte) (MigrateBatchReq, error) {
	var r MigrateBatchReq
	var sum versionAcc
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Shard = int(d.Int())
		case 2:
			nd := wire.NewRawDecoder(d.Bytes())
			var it MigrateItem
			var v versionAcc
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					it.Key = append([]byte(nil), nd.Bytes()...)
				case 2:
					it.Value = append([]byte(nil), nd.Bytes()...)
				case 3:
					v.m = nd.Uint()
				case 4:
					v.c = nd.Uint()
				case 5:
					v.s = nd.Uint()
				case 6:
					it.Tombstone = nd.Bool()
				}
			}
			if err := nd.Err(); err != nil {
				return r, fmt.Errorf("proto: migrate item: %w", err)
			}
			it.Version = v.version()
			r.Items = append(r.Items, it)
		case 3:
			r.Final = d.Bool()
		case 4:
			sum.m = d.Uint()
		case 5:
			sum.c = d.Uint()
		case 6:
			sum.s = d.Uint()
		}
	}
	r.TombSummary = sum.version()
	return r, d.Err()
}

// AssumeShardReq tells a spare to assume (or a primary to resume) serving
// a shard.
type AssumeShardReq struct {
	Shard int
}

// Marshal encodes the request.
func (r AssumeShardReq) Marshal() []byte {
	e := wire.NewEncoder()
	e.Int(1, int64(r.Shard))
	return e.Encoded()
}

// UnmarshalAssumeShardReq decodes the request.
func UnmarshalAssumeShardReq(b []byte) (AssumeShardReq, error) {
	var r AssumeShardReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		if d.Tag() == 1 {
			r.Shard = int(d.Int())
		}
	}
	return r, d.Err()
}

// SealReq toggles the handoff seal on a backend (MethodSeal). On=true
// seals; On=false unseals (after the config flip, for backends that
// survive into the new epoch).
type SealReq struct {
	On bool
}

// Marshal encodes the request.
func (r SealReq) Marshal() []byte {
	e := wire.NewEncoder()
	e.Bool(1, r.On)
	return e.Encoded()
}

// UnmarshalSealReq decodes the request.
func UnmarshalSealReq(b []byte) (SealReq, error) {
	var r SealReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		if d.Tag() == 1 {
			r.On = d.Bool()
		}
	}
	return r, d.Err()
}

// ConfigResp describes the cell to external callers: the replication
// mode's replica count and the address serving each shard. During a
// resize the pending-epoch fields carry the target shard map and the
// per-old-shard seal bitmap (for cmstat RESIZE progress); they are empty
// outside transitions.
type ConfigResp struct {
	ConfigID          uint64
	Replicas          int
	Quorum            int
	ShardAddrs        []string
	PendingShards     int
	PendingShardAddrs []string
	SealedOld         []bool
}

// Marshal encodes the config snapshot.
func (r ConfigResp) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.ConfigID)
	e.Uint(2, uint64(r.Replicas))
	e.Uint(3, uint64(r.Quorum))
	for _, a := range r.ShardAddrs {
		e.String(4, a)
	}
	e.Uint(5, uint64(r.PendingShards))
	for _, a := range r.PendingShardAddrs {
		e.String(6, a)
	}
	for _, s := range r.SealedOld {
		e.Bool(7, s)
	}
	return e.Encoded()
}

// UnmarshalConfigResp decodes the config snapshot.
func UnmarshalConfigResp(b []byte) (ConfigResp, error) {
	var r ConfigResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.ConfigID = d.Uint()
		case 2:
			r.Replicas = int(d.Uint())
		case 3:
			r.Quorum = int(d.Uint())
		case 4:
			r.ShardAddrs = append(r.ShardAddrs, d.String())
		case 5:
			r.PendingShards = int(d.Uint())
		case 6:
			r.PendingShardAddrs = append(r.PendingShardAddrs, d.String())
		case 7:
			r.SealedOld = append(r.SealedOld, d.Bool())
		}
	}
	return r, d.Err()
}

// StatsResp is a backend's introspection snapshot (a post-launch additive
// method; see MethodStats).
type StatsResp struct {
	Shard          int
	Sealed         bool
	ResidentKeys   uint64
	MemoryBytes    uint64
	Sets, Gets     uint64
	Evictions      uint64
	IndexResizes   uint64
	DataGrows      uint64
	RepairsIssued  uint64
	VersionRejects uint64
	// Stripes is the backend's lock-stripe count; StripeMaxOps is the op
	// count of the busiest stripe and StripeTotalOps the sum across
	// stripes, so dashboards can report max/mean stripe skew.
	Stripes        uint64
	StripeMaxOps   uint64
	StripeTotalOps uint64
	// HeatTracked is the number of keys currently in the backend's
	// space-saving top-k sketch; HeatTotal is the total accesses the
	// sketch has absorbed (the N of its N/k error bound).
	HeatTracked uint64
	HeatTotal   uint64
	// HandoffSealed reports the handoff seal (distinct from the
	// R2Immutable corpus seal in Sealed); PendingShards is the target
	// shard count of an in-flight resize as seen by this backend's
	// config snapshot, 0 outside transitions.
	HandoffSealed bool
	PendingShards uint64
	// Durable warm-restart telemetry (the cmstat RECOVERY columns).
	// CkptEpoch/CkptUnixNano identify the newest committed checkpoint
	// (zero when none this process lifetime); JournalRecords/JournalBytes
	// are the live write-ahead journal depth; RecoveredKeys is the corpus
	// size recovered at startup, ReplayedRecords the journal-tail records
	// replayed on top of the checkpoint, SelfValidated the recovered
	// entries that rejoined the quorum without needing a repair settle;
	// Recovering is the §5.4 self-validation window flag.
	CkptEpoch       uint64
	CkptUnixNano    uint64
	JournalRecords  uint64
	JournalBytes    uint64
	RecoveredKeys   uint64
	ReplayedRecords uint64
	SelfValidated   uint64
	Recovering      bool
	// Saturation telemetry (the cmstat SATURATION columns and the loadwall
	// limiting-resource probe). Stripe* cover lock contention on the
	// mutation path; RPC* cover the server's worker pool and modelled
	// admission queue; NIC* cover the serving NIC's engine queue. Gauges
	// (RPCWorkerLimit, RPCWorkersBusy, RPCRhoMilli, NICEngines,
	// NICRhoMilli) are instantaneous; the rest are cumulative and may
	// reset when a task restarts.
	StripeContended   uint64
	StripeWaitNs      uint64
	StripeHeldNs      uint64
	StripeHeldSampled uint64
	RPCWorkerLimit    uint64
	RPCWorkersBusy    uint64
	RPCQueuedSubmits  uint64
	RPCSubmitWaitNs   uint64
	RPCQueuedCalls    uint64
	RPCQueueNs        uint64
	RPCRhoMilli       uint64
	NICEngines        uint64
	NICRhoMilli       uint64
	NICQueueNs        uint64
	NICOps            uint64
	// Hot-key promotion set (the cmstat PROMOTED column): HotEpoch
	// identifies the set (bumped on every membership change), HotKeys are
	// the keys this backend currently holds at promoted (all-replica
	// residency, read-spread) status.
	HotEpoch uint64
	HotKeys  [][]byte
}

// Marshal encodes the stats snapshot.
func (r StatsResp) Marshal() []byte {
	e := wire.NewEncoder()
	e.Int(1, int64(r.Shard))
	e.Bool(2, r.Sealed)
	e.Uint(3, r.ResidentKeys)
	e.Uint(4, r.MemoryBytes)
	e.Uint(5, r.Sets)
	e.Uint(6, r.Gets)
	e.Uint(7, r.Evictions)
	e.Uint(8, r.IndexResizes)
	e.Uint(9, r.DataGrows)
	e.Uint(10, r.RepairsIssued)
	e.Uint(11, r.VersionRejects)
	e.Uint(12, r.Stripes)
	e.Uint(13, r.StripeMaxOps)
	e.Uint(14, r.StripeTotalOps)
	e.Uint(15, r.HeatTracked)
	e.Uint(16, r.HeatTotal)
	e.Bool(17, r.HandoffSealed)
	e.Uint(18, r.PendingShards)
	e.Uint(19, r.CkptEpoch)
	e.Uint(20, r.CkptUnixNano)
	e.Uint(21, r.JournalRecords)
	e.Uint(22, r.JournalBytes)
	e.Uint(23, r.RecoveredKeys)
	e.Uint(24, r.ReplayedRecords)
	e.Uint(25, r.SelfValidated)
	e.Bool(26, r.Recovering)
	e.Uint(27, r.StripeContended)
	e.Uint(28, r.StripeWaitNs)
	e.Uint(29, r.StripeHeldNs)
	e.Uint(30, r.StripeHeldSampled)
	e.Uint(31, r.RPCWorkerLimit)
	e.Uint(32, r.RPCWorkersBusy)
	e.Uint(33, r.RPCQueuedSubmits)
	e.Uint(34, r.RPCSubmitWaitNs)
	e.Uint(35, r.RPCQueuedCalls)
	e.Uint(36, r.RPCQueueNs)
	e.Uint(37, r.RPCRhoMilli)
	e.Uint(38, r.NICEngines)
	e.Uint(39, r.NICRhoMilli)
	e.Uint(40, r.NICQueueNs)
	e.Uint(41, r.NICOps)
	e.Uint(42, r.HotEpoch)
	for _, k := range r.HotKeys {
		e.Bytes(43, k)
	}
	return e.Encoded()
}

// UnmarshalStatsResp decodes the stats snapshot.
func UnmarshalStatsResp(b []byte) (StatsResp, error) {
	var r StatsResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Shard = int(d.Int())
		case 2:
			r.Sealed = d.Bool()
		case 3:
			r.ResidentKeys = d.Uint()
		case 4:
			r.MemoryBytes = d.Uint()
		case 5:
			r.Sets = d.Uint()
		case 6:
			r.Gets = d.Uint()
		case 7:
			r.Evictions = d.Uint()
		case 8:
			r.IndexResizes = d.Uint()
		case 9:
			r.DataGrows = d.Uint()
		case 10:
			r.RepairsIssued = d.Uint()
		case 11:
			r.VersionRejects = d.Uint()
		case 12:
			r.Stripes = d.Uint()
		case 13:
			r.StripeMaxOps = d.Uint()
		case 14:
			r.StripeTotalOps = d.Uint()
		case 15:
			r.HeatTracked = d.Uint()
		case 16:
			r.HeatTotal = d.Uint()
		case 17:
			r.HandoffSealed = d.Bool()
		case 18:
			r.PendingShards = d.Uint()
		case 19:
			r.CkptEpoch = d.Uint()
		case 20:
			r.CkptUnixNano = d.Uint()
		case 21:
			r.JournalRecords = d.Uint()
		case 22:
			r.JournalBytes = d.Uint()
		case 23:
			r.RecoveredKeys = d.Uint()
		case 24:
			r.ReplayedRecords = d.Uint()
		case 25:
			r.SelfValidated = d.Uint()
		case 26:
			r.Recovering = d.Bool()
		case 27:
			r.StripeContended = d.Uint()
		case 28:
			r.StripeWaitNs = d.Uint()
		case 29:
			r.StripeHeldNs = d.Uint()
		case 30:
			r.StripeHeldSampled = d.Uint()
		case 31:
			r.RPCWorkerLimit = d.Uint()
		case 32:
			r.RPCWorkersBusy = d.Uint()
		case 33:
			r.RPCQueuedSubmits = d.Uint()
		case 34:
			r.RPCSubmitWaitNs = d.Uint()
		case 35:
			r.RPCQueuedCalls = d.Uint()
		case 36:
			r.RPCQueueNs = d.Uint()
		case 37:
			r.RPCRhoMilli = d.Uint()
		case 38:
			r.NICEngines = d.Uint()
		case 39:
			r.NICRhoMilli = d.Uint()
		case 40:
			r.NICQueueNs = d.Uint()
		case 41:
			r.NICOps = d.Uint()
		case 42:
			r.HotEpoch = d.Uint()
		case 43:
			r.HotKeys = append(r.HotKeys, append([]byte(nil), d.Bytes()...))
		}
	}
	return r, d.Err()
}

// Ack is the empty success response.
type Ack struct{}

// Marshal encodes the ack.
func (Ack) Marshal() []byte { return wire.NewEncoder().Encoded() }

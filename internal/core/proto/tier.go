package proto

import (
	"cliquemap/internal/wire"
)

// The Tier method ships the federation router's view of the weighted
// consistent-hash ring — member cells, live vs base weights, alert-driven
// demotion state, and exact ownership shares — to remote tooling
// (cmstat -tier). Like MethodHealth it is additive: backends outside a
// tier answer an empty TierResp and tooling reports "not in a tier";
// pre-tier servers answer ErrNoSuchMethod and tooling degrades.
//
// Fractions travel integer-only per the wire conventions: weights in
// milli-units, ownership shares in parts-per-million.

// TierReq requests a tier routing snapshot. Currently empty; fields are
// additive.
type TierReq struct{}

// Marshal encodes the request.
func (TierReq) Marshal() []byte { return wire.NewEncoder().Encoded() }

// UnmarshalTierReq decodes the request.
func UnmarshalTierReq(b []byte) (TierReq, error) {
	var r TierReq
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
	}
	return r, d.Err()
}

// TierCell is one member cell's routing state.
type TierCell struct {
	Name        string
	WeightMilli uint64 // live routing weight × 1000
	BaseMilli   uint64 // configured weight × 1000 (pre-demotion)
	State       string // health alert state driving the weight: "ok" | "warn" | "page" | "dead"
	Demoted     bool   // router is holding the weight below base
	OwnedPpm    uint64 // exact keyspace share from ring arcs, parts-per-million
}

// TierResp is the router's ring snapshot. RingVersion increments on every
// rebuild (re-weight, demotion, death), so tooling can tell two
// structurally identical tables apart and clients can cheaply detect
// ownership churn.
type TierResp struct {
	RingVersion uint64
	Vnodes      uint64 // virtual nodes per unit weight
	Cells       []TierCell
}

// Marshal encodes the snapshot.
func (r TierResp) Marshal() []byte {
	e := wire.NewEncoder()
	e.Uint(1, r.RingVersion)
	e.Uint(2, r.Vnodes)
	for _, c := range r.Cells {
		m := wire.NewRawEncoder()
		m.String(1, c.Name)
		m.Uint(2, c.WeightMilli)
		m.Uint(3, c.BaseMilli)
		m.String(4, c.State)
		if c.Demoted {
			m.Uint(5, 1)
		}
		m.Uint(6, c.OwnedPpm)
		e.Message(3, m)
	}
	return e.Encoded()
}

// UnmarshalTierResp decodes the snapshot.
func UnmarshalTierResp(b []byte) (TierResp, error) {
	var r TierResp
	d, err := wire.NewDecoder(b)
	if err != nil {
		return r, err
	}
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.RingVersion = d.Uint()
		case 2:
			r.Vnodes = d.Uint()
		case 3:
			var c TierCell
			nd := wire.NewRawDecoder(d.Bytes())
			for nd.Next() {
				switch nd.Tag() {
				case 1:
					c.Name = nd.String()
				case 2:
					c.WeightMilli = nd.Uint()
				case 3:
					c.BaseMilli = nd.Uint()
				case 4:
					c.State = nd.String()
				case 5:
					c.Demoted = nd.Uint() != 0
				case 6:
					c.OwnedPpm = nd.Uint()
				}
			}
			r.Cells = append(r.Cells, c)
		}
	}
	return r, d.Err()
}

package proto

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"cliquemap/internal/fabric"
	"cliquemap/internal/rmem"
	"cliquemap/internal/stats"
	"cliquemap/internal/truetime"
	"cliquemap/internal/wire"
)

func v(m int64, c, s uint64) truetime.Version {
	return truetime.Version{Micros: m, ClientID: c, Seq: s}
}

func TestHelloRoundTrip(t *testing.T) {
	in := HelloResp{
		ConfigID: 9, Shard: 3, Buckets: 128, Ways: 14,
		IndexWindow: 5, IndexEpoch: 2, DataWindows: []rmem.WindowID{6, 7},
	}
	out, err := UnmarshalHelloResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.ConfigID != 9 || out.Shard != 3 || out.Buckets != 128 || out.Ways != 14 ||
		out.IndexWindow != 5 || out.IndexEpoch != 2 || len(out.DataWindows) != 2 || out.DataWindows[1] != 7 {
		t.Errorf("round trip: %+v", out)
	}
}

func TestSetReqRoundTrip(t *testing.T) {
	in := SetReq{Key: []byte("k"), Value: []byte("value"), Version: v(5, 6, 7), Repair: true}
	out, err := UnmarshalSetReq(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Key, in.Key) || !bytes.Equal(out.Value, in.Value) || out.Version != in.Version || !out.Repair {
		t.Errorf("round trip: %+v", out)
	}
}

func TestSetReqProperty(t *testing.T) {
	f := func(key, val []byte, m int64, c, s uint64, repair bool) bool {
		in := SetReq{Key: key, Value: val, Version: v(m, c, s), Repair: repair}
		out, err := UnmarshalSetReq(in.Marshal())
		return err == nil && bytes.Equal(out.Key, key) && bytes.Equal(out.Value, val) &&
			out.Version == in.Version && out.Repair == repair
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMutateRespRoundTrip(t *testing.T) {
	in := MutateResp{Applied: true, Stored: v(1, 2, 3), Evictions: 4}
	out, err := UnmarshalMutateResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("%+v != %+v", out, in)
	}
}

func TestEraseCasRoundTrip(t *testing.T) {
	e := EraseReq{Key: []byte("k"), Version: v(9, 8, 7)}
	eo, err := UnmarshalEraseReq(e.Marshal())
	if err != nil || !bytes.Equal(eo.Key, e.Key) || eo.Version != e.Version {
		t.Errorf("erase: %+v %v", eo, err)
	}
	c := CasReq{Key: []byte("k"), Value: []byte("nv"), Expected: v(1, 1, 1), Version: v(2, 2, 2)}
	co, err := UnmarshalCasReq(c.Marshal())
	if err != nil || !bytes.Equal(co.Value, c.Value) || co.Expected != c.Expected || co.Version != c.Version {
		t.Errorf("cas: %+v %v", co, err)
	}
}

func TestGetRoundTrip(t *testing.T) {
	rq, err := UnmarshalGetReq(GetReq{Key: []byte("gk")}.Marshal())
	if err != nil || string(rq.Key) != "gk" {
		t.Errorf("get req: %+v %v", rq, err)
	}
	rs := GetResp{Found: true, Value: []byte("val"), Version: v(3, 2, 1)}
	ro, err := UnmarshalGetResp(rs.Marshal())
	if err != nil || !ro.Found || !bytes.Equal(ro.Value, rs.Value) || ro.Version != rs.Version {
		t.Errorf("get resp: %+v %v", ro, err)
	}
}

func TestTouchRoundTrip(t *testing.T) {
	in := TouchReq{Keys: [][]byte{[]byte("a"), []byte("b"), []byte("c")}}
	out, err := UnmarshalTouchReq(in.Marshal())
	if err != nil || len(out.Keys) != 3 || string(out.Keys[2]) != "c" {
		t.Errorf("touch: %+v %v", out, err)
	}
}

func TestScanRoundTrip(t *testing.T) {
	req := ScanReq{Shard: 2, Cursor: 77, Limit: 100}
	rq, err := UnmarshalScanReq(req.Marshal())
	if err != nil || rq != req {
		t.Errorf("scan req: %+v %v", rq, err)
	}
	resp := ScanResp{
		Items: []ScanItem{
			{HashHi: 1, HashLo: 2, Version: v(3, 4, 5), Key: []byte("x")},
			{HashHi: 6, HashLo: 7, Version: v(8, 9, 10), Key: []byte("y")},
		},
		NextCursor: 200, Done: true,
	}
	ro, err := UnmarshalScanResp(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Items) != 2 || ro.Items[1].HashHi != 6 || string(ro.Items[0].Key) != "x" ||
		ro.Items[0].Version != v(3, 4, 5) || ro.NextCursor != 200 || !ro.Done {
		t.Errorf("scan resp: %+v", ro)
	}
}

func TestUpdateVersionRoundTrip(t *testing.T) {
	in := UpdateVersionReq{Key: []byte("k"), Version: v(4, 5, 6)}
	out, err := UnmarshalUpdateVersionReq(in.Marshal())
	if err != nil || !bytes.Equal(out.Key, in.Key) || out.Version != in.Version {
		t.Errorf("update version: %+v %v", out, err)
	}
}

func TestMigrateBatchRoundTrip(t *testing.T) {
	in := MigrateBatchReq{
		Shard: 1,
		Items: []MigrateItem{
			{Key: []byte("a"), Value: []byte("1"), Version: v(1, 1, 1)},
			{Key: []byte("b"), Value: []byte("2"), Version: v(2, 2, 2)},
		},
		Final: true,
	}
	out, err := UnmarshalMigrateBatchReq(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Shard != 1 || len(out.Items) != 2 || string(out.Items[1].Value) != "2" || !out.Final {
		t.Errorf("migrate: %+v", out)
	}
}

func TestAssumeShardRoundTrip(t *testing.T) {
	out, err := UnmarshalAssumeShardReq(AssumeShardReq{Shard: 5}.Marshal())
	if err != nil || out.Shard != 5 {
		t.Errorf("assume shard: %+v %v", out, err)
	}
}

// TestForwardCompat simulates a newer peer adding fields: old decoders
// must ignore them and still parse the known fields.
func TestForwardCompat(t *testing.T) {
	e := wire.NewEncoder()
	e.Bytes(1, []byte("key"))
	e.Bytes(2, []byte("val"))
	e.Uint(3, 1)
	e.Uint(4, 2)
	e.Uint(5, 3)
	e.Bool(6, false)
	e.String(99, "future-field")
	e.Uint(100, 12345)
	out, err := UnmarshalSetReq(e.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Key) != "key" || string(out.Value) != "val" {
		t.Errorf("forward compat parse: %+v", out)
	}
}

func TestGarbageRejected(t *testing.T) {
	if _, err := UnmarshalSetReq([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage decoded as SetReq")
	}
}

func TestDebugRoundTrip(t *testing.T) {
	in := DebugResp{
		OpsTotal: 100, SlowTotal: 3, SlowThresholdNs: 2_000_000,
		Hists: []DebugHist{
			{Kind: "GET", Transport: "SCAR", Count: 90, MeanNs: 7000,
				P50Ns: 6000, P90Ns: 9000, P99Ns: 12000, P999Ns: 15000, MaxNs: 20000,
				SumNs: 630000, Buckets: []stats.HistBucket{{Index: 196, Count: 50}, {Index: 205, Count: 40}}},
			{Kind: "SET", Transport: "RPC", Count: 10, MeanNs: 90000},
		},
		CPU: []DebugCPU{{Component: "client", TotalNs: 5_000_000, Ops: 100}},
		SlowOps: []DebugOp{{
			ID: 42, Kind: "GET", Transport: "2xR", Attempts: 2,
			Ns: 3_000_000, Bytes: 1024, WallNs: 1_700_000_000_000_000_000,
			Spans: []fabric.Span{
				{Code: 1, Arg: 3, Start: 0, Dur: 4200},
				{Code: 5, Arg: 0, Start: 4200, Dur: 900},
			},
		}},
		Exemplars: []DebugOp{{ID: 7, Kind: "CAS", Transport: "RPC", Attempts: 1, Ns: 50_000}},
	}
	out, err := UnmarshalDebugResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.OpsTotal != in.OpsTotal || out.SlowTotal != in.SlowTotal || out.SlowThresholdNs != in.SlowThresholdNs {
		t.Errorf("counters: %+v", out)
	}
	if len(out.Hists) != 2 || !reflect.DeepEqual(out.Hists, in.Hists) {
		t.Errorf("hists: %+v", out.Hists)
	}
	if len(out.CPU) != 1 || out.CPU[0] != in.CPU[0] {
		t.Errorf("cpu: %+v", out.CPU)
	}
	if len(out.SlowOps) != 1 {
		t.Fatalf("slow ops: %+v", out.SlowOps)
	}
	got, want := out.SlowOps[0], in.SlowOps[0]
	if got.ID != want.ID || got.Kind != want.Kind || got.Transport != want.Transport ||
		got.Attempts != want.Attempts || got.Ns != want.Ns || got.Bytes != want.Bytes ||
		got.WallNs != want.WallNs || len(got.Spans) != 2 ||
		got.Spans[0] != want.Spans[0] || got.Spans[1] != want.Spans[1] {
		t.Errorf("slow op: %+v", got)
	}
	if len(out.Exemplars) != 1 || out.Exemplars[0].ID != 7 || out.Exemplars[0].Kind != "CAS" {
		t.Errorf("exemplars: %+v", out.Exemplars)
	}

	req, err := UnmarshalDebugReq(DebugReq{MaxSlow: 16}.Marshal())
	if err != nil || req.MaxSlow != 16 {
		t.Errorf("req round trip: %+v err=%v", req, err)
	}
}

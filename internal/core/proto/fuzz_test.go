package proto

import (
	"reflect"
	"testing"

	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
	"cliquemap/internal/truetime"
	"cliquemap/internal/wire"
)

// MethodHealth and the heat extensions of MethodDebug are decoded by
// remote tooling (cmstat) straight off the gateway socket; malformed
// frames — truncated nested messages, absurd varints, garbage strings —
// must never panic the decoders, only error or degrade to zero values.

func TestHealthRespRoundTrip(t *testing.T) {
	in := HealthResp{
		GeneratedNs: 12345,
		Rounds:      7,
		Classes: []HealthClass{
			{Class: "GET", State: "page", SinceNs: 99, AvailabilityPpm: 999000,
				LatencyTargetNs: 1_000_000, FastBurnMilli: 14400, SlowBurnMilli: 14400,
				WindowGood: 10, WindowBad: 5, Good: 100, Bad: 6,
				ProbeP50Ns: 7000, ProbeP99Ns: 70000, Pages: 2, Warns: 1},
			{Class: "SET", State: "ok"},
		},
		Targets: []HealthTarget{{Name: "2xR", Good: 50, Bad: 1}, {Name: "RPC", Good: 49}},
	}
	out, err := UnmarshalHealthResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
	}
}

func TestDebugRespHeatRoundTrip(t *testing.T) {
	in := DebugResp{
		HotKeys:    []DebugHotKey{{Key: "k0", Count: 100, Err: 3}, {Key: "\x00probe/x", Count: 2}},
		StripeHeat: []uint64{5, 0, 17, 9},
	}
	out, err := UnmarshalDebugResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.HotKeys, out.HotKeys) || !reflect.DeepEqual(in.StripeHeat, out.StripeHeat) {
		t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
	}
}

func FuzzHealthResp(f *testing.F) {
	f.Add(HealthResp{GeneratedNs: 1, Rounds: 2,
		Classes:  []HealthClass{{Class: "GET", State: "warn", FastBurnMilli: 3000}},
		Targets:  []HealthTarget{{Name: "SCAR", Good: 9, Bad: 1}},
		HotEpoch: 4, HotKeys: [][]byte{[]byte("hot-h")},
	}.Marshal())
	// A class whose nested fields are hostile: non-UTF8 state, maxed
	// varints, and an extra unknown tag (forward compatibility).
	e := wire.NewEncoder()
	e.Uint(1, ^uint64(0))
	bad := wire.NewRawEncoder()
	bad.String(1, "\xff\xfeGET")
	bad.String(2, "not-a-state")
	bad.Uint(6, ^uint64(0))
	bad.Uint(99, 7)
	e.Message(3, bad)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalHealthResp(data)
		if err != nil {
			return
		}
		if len(r.Classes) > len(data) || len(r.Targets) > len(data) {
			t.Fatalf("decoder fabricated %d classes / %d targets from %d input bytes",
				len(r.Classes), len(r.Targets), len(data))
		}
		// Whatever decoded must re-marshal and re-decode identically.
		again, err := UnmarshalHealthResp(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("re-decode drift:\n first  %+v\n second %+v", r, again)
		}
	})
}

// The handoff-plane frames below cross trust boundaries during a resize
// or maintenance migration: SealReq and MigrateBatch/MigrateDelta bodies
// arrive at backends from whichever peer claims to run the handoff, and
// GetReq's ConfigID stamp is the self-validation gate on the two-sided
// read path. A malformed frame must error, never panic, and never
// fabricate state (items out of thin air, a seal bit from a truncated
// varint).

func FuzzSealReq(f *testing.F) {
	f.Add(SealReq{On: true}.Marshal())
	f.Add(SealReq{}.Marshal())
	// A seal frame with a hostile extra tag and a maxed varint where the
	// bool belongs.
	e := wire.NewEncoder()
	e.Uint(1, ^uint64(0))
	e.Uint(99, 7)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalSealReq(data)
		if err != nil {
			return
		}
		again, err := UnmarshalSealReq(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again != r {
			t.Fatalf("re-decode drift: first %+v second %+v", r, again)
		}
	})
}

func FuzzGetReq(f *testing.F) {
	f.Add(GetReq{Key: []byte("k"), ConfigID: 7}.Marshal())
	f.Add(GetReq{Key: []byte{0x00, 0xff}}.Marshal())
	// ConfigID at the varint ceiling (must round-trip, not truncate: the
	// stamp comparison is exact) and a key under an unknown tag.
	e := wire.NewEncoder()
	e.Bytes(1, []byte("key"))
	e.Uint(2, ^uint64(0))
	e.Bytes(9, []byte("stray"))
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalGetReq(data)
		if err != nil {
			return
		}
		if len(r.Key) > len(data) {
			t.Fatalf("decoder fabricated a %d-byte key from %d input bytes", len(r.Key), len(data))
		}
		again, err := UnmarshalGetReq(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.ConfigID != r.ConfigID || string(again.Key) != string(r.Key) {
			t.Fatalf("re-decode drift: first %+v second %+v", r, again)
		}
	})
}

func FuzzMigrateBatchReq(f *testing.F) {
	// Shared schema for MethodMigrateBatch and MethodMigrateDelta: the
	// delta stream additionally leans on tombstone items and the
	// final-frame summary fold, so both shapes seed the corpus.
	f.Add(MigrateBatchReq{
		Shard: 1,
		Items: []MigrateItem{
			{Key: []byte("live"), Value: []byte("v"), Version: truetime.Version{Micros: 5, ClientID: 2, Seq: 3}},
			{Key: []byte("dead"), Tombstone: true, Version: truetime.Version{Micros: 9}},
		},
	}.Marshal())
	f.Add(MigrateBatchReq{
		Shard: -1, Final: true,
		TombSummary: truetime.Version{Micros: 1 << 40, ClientID: 1},
	}.Marshal())
	// An item whose nested body is a truncated varint, plus version
	// fields at the ceiling.
	e := wire.NewEncoder()
	e.Int(1, -9)
	bad := wire.NewRawEncoder()
	bad.Bytes(1, []byte("k"))
	bad.Uint(3, ^uint64(0))
	e.Message(2, bad)
	e.Bytes(2, []byte{0x10})
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalMigrateBatchReq(data)
		if err != nil {
			return
		}
		if len(r.Items) > len(data) {
			t.Fatalf("decoder fabricated %d items from %d input bytes", len(r.Items), len(data))
		}
		for _, it := range r.Items {
			if len(it.Key)+len(it.Value) > len(data) {
				t.Fatalf("decoder fabricated a %d/%d-byte item from %d input bytes",
					len(it.Key), len(it.Value), len(data))
			}
		}
		// Whatever decoded must re-marshal and re-decode identically —
		// a tombstone dropped in transit would resurrect a deleted key
		// at the migration target.
		again, err := UnmarshalMigrateBatchReq(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("re-decode drift:\n first  %+v\n second %+v", r, again)
		}
	})
}

func FuzzDebugRespHeat(f *testing.F) {
	f.Add(DebugResp{
		HotKeys:    []DebugHotKey{{Key: "hot", Count: 42, Err: 1}},
		StripeHeat: []uint64{1, 2, 3},
	}.Marshal())
	// Hot-key message with a truncated varint body and stripe entries at
	// the varint ceiling.
	e := wire.NewEncoder()
	e.Bytes(10, []byte{0x10})
	e.Uint(11, ^uint64(0))
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalDebugResp(data)
		if err != nil {
			return
		}
		if len(r.HotKeys) > len(data) || len(r.StripeHeat) > len(data) {
			t.Fatalf("decoder fabricated %d hot keys / %d stripes from %d input bytes",
				len(r.HotKeys), len(r.StripeHeat), len(data))
		}
		_ = r.Marshal()
	})
}

// The tier routing snapshot is decoded by cmstat -tier straight off any
// member cell's gateway; same contract as MethodHealth: hostile frames
// error or zero out, never panic, never fabricate cells.

func TestTierRespRoundTrip(t *testing.T) {
	in := TierResp{
		RingVersion: 9,
		Vnodes:      128,
		Cells: []TierCell{
			{Name: "us", WeightMilli: 1000, BaseMilli: 1000, State: "ok", OwnedPpm: 333000},
			{Name: "eu", WeightMilli: 250, BaseMilli: 1000, State: "page", Demoted: true, OwnedPpm: 111000},
			{Name: "asia", State: "dead"},
		},
	}
	out, err := UnmarshalTierResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
	}
}

func FuzzTierResp(f *testing.F) {
	f.Add(TierResp{RingVersion: 1, Vnodes: 128,
		Cells: []TierCell{{Name: "us", WeightMilli: 1000, BaseMilli: 1000, State: "ok", OwnedPpm: 500000}},
	}.Marshal())
	// A cell whose nested fields are hostile: non-UTF8 name, maxed
	// varints, and an unknown tag (forward compatibility).
	e := wire.NewEncoder()
	e.Uint(1, ^uint64(0))
	bad := wire.NewRawEncoder()
	bad.String(1, "\xff\xfeus")
	bad.Uint(2, ^uint64(0))
	bad.String(4, "not-a-state")
	bad.Uint(99, 7)
	e.Message(3, bad)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalTierResp(data)
		if err != nil {
			return
		}
		if len(r.Cells) > len(data) {
			t.Fatalf("decoder fabricated %d cells from %d input bytes", len(r.Cells), len(data))
		}
		again, err := UnmarshalTierResp(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("re-decode drift:\n first  %+v\n second %+v", r, again)
		}
	})
}

// The fleet aggregator decodes DebugResp frames — now extended with raw
// histogram buckets (DebugHist tags 10/11) and tier span codes inside op
// frames — from every scraped cell's gateway. The extended decoder must
// uphold the same contract: hostile frames error or degrade, never
// panic, never fabricate buckets or spans, and whatever decodes
// re-marshals identically (a drifting bucket would corrupt every merged
// fleet percentile downstream).
func FuzzDebugRespExtended(f *testing.F) {
	f.Add(DebugResp{
		OpsTotal: 1000,
		Hists: []DebugHist{{
			Kind: "GET", Transport: "2xR", Count: 900, MeanNs: 8000,
			P50Ns: 7000, P99Ns: 20000, MaxNs: 40000, SumNs: 7_200_000,
			Buckets: []stats.HistBucket{{Index: 3, Count: 10}, {Index: 200, Count: 890}},
		}},
		SlowOps: []DebugOp{{
			ID: 9, Kind: "GET", Transport: "RPC", Attempts: 1, Ns: 90_000,
			Spans: []fabric.Span{
				{Code: 18, Arg: 1, Start: 0, Dur: 0},       // ring-lookup
				{Code: 17, Arg: 0, Start: 0, Dur: 0},       // tier-route
				{Code: 1, Arg: 2, Start: 0, Dur: 5000},     // follower-cell index fetch
				{Code: 21, Arg: 1, Start: 5000, Dur: 80e3}, // follower-revalidate
				{Code: 6, Arg: 1600, Start: 40e3, Dur: 39e3},
			},
		}},
	}.Marshal())
	// A hist whose bucket list is hostile: an index past the histogram
	// array, a count at the varint ceiling, a truncated nested bucket
	// body, and more bucket entries than any histogram has buckets.
	e := wire.NewEncoder()
	bad := wire.NewRawEncoder()
	bad.String(1, "GET")
	bad.Uint(10, ^uint64(0))
	bucket := wire.NewRawEncoder()
	bucket.Uint(1, ^uint64(0))
	bucket.Uint(2, ^uint64(0))
	bad.Message(11, bucket)
	bad.Bytes(11, []byte{0x08})
	e.Message(4, bad)
	f.Add(e.Encoded())
	flood := wire.NewEncoder()
	many := wire.NewRawEncoder()
	for i := 0; i < stats.NumBuckets+64; i++ {
		b := wire.NewRawEncoder()
		b.Uint(1, uint64(i))
		b.Uint(2, 1)
		many.Message(11, b)
	}
	flood.Message(4, many)
	f.Add(flood.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalDebugResp(data)
		if err != nil {
			return
		}
		for _, h := range r.Hists {
			if len(h.Buckets) > stats.NumBuckets {
				t.Fatalf("decoder kept %d buckets, cap is %d", len(h.Buckets), stats.NumBuckets)
			}
		}
		var spans int
		for _, op := range append(append([]DebugOp{}, r.SlowOps...), r.Exemplars...) {
			spans += len(op.Spans)
		}
		if spans > 0 && spans > len(data) {
			t.Fatalf("decoder fabricated %d spans from %d input bytes", spans, len(data))
		}
		// Whatever decoded must re-marshal and re-decode identically —
		// the merged-percentile path feeds every decoded bucket straight
		// into fleet histograms.
		again, err := UnmarshalDebugResp(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r.Hists, again.Hists) {
			t.Fatalf("hist re-decode drift:\n first  %+v\n second %+v", r.Hists, again.Hists)
		}
		if !reflect.DeepEqual(r.SlowOps, again.SlowOps) || !reflect.DeepEqual(r.Exemplars, again.Exemplars) {
			t.Fatalf("op re-decode drift:\n first  %+v\n second %+v", r.SlowOps, again.SlowOps)
		}
	})
}

// cmstat's SATURATION table and the loadwall limiting-resource probe
// decode StatsResp frames — now extended with the saturation tags
// (27–41: stripe contention, rpc admission queue, NIC engine queue) —
// straight off the gateway socket. The decoder must uphold the standing
// contract: hostile frames (maxed varints, unknown tags, truncation)
// error or degrade to zeros, never panic, never fabricate counters, and
// whatever decodes re-marshals identically (drift would make cmstat
// -watch deltas lie about where the knee came from).
func FuzzStatsResp(f *testing.F) {
	f.Add(StatsResp{
		Shard: 2, Sealed: true, ResidentKeys: 1000, MemoryBytes: 1 << 20,
		Sets: 500, Gets: 9000, Stripes: 16, StripeMaxOps: 900, StripeTotalOps: 9500,
		CkptEpoch: 3, JournalRecords: 44, Recovering: true,
		StripeContended: 17, StripeWaitNs: 81234, StripeHeldNs: 400000, StripeHeldSampled: 12,
		RPCWorkerLimit: 64, RPCWorkersBusy: 7, RPCQueuedSubmits: 3, RPCSubmitWaitNs: 55555,
		RPCQueuedCalls: 120, RPCQueueNs: 9_000_000, RPCRhoMilli: 870,
		NICEngines: 4, NICRhoMilli: 930, NICQueueNs: 1_234_567, NICOps: 88_000,
		HotEpoch: 5, HotKeys: [][]byte{[]byte("hot"), {0x00, 0x01}},
	}.Marshal())
	// Hostile saturation tags: every new field maxed, plus the hot-key
	// promotion tags (42/43) with a maxed epoch and a binary key, plus an
	// unknown tag beyond the current ceiling (forward compatibility).
	e := wire.NewEncoder()
	for tag := uint64(27); tag <= 41; tag++ {
		e.Uint(tag, ^uint64(0))
	}
	e.Uint(42, ^uint64(0))
	e.Bytes(43, []byte("\xff\xfekey"))
	e.Uint(99, 7)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalStatsResp(data)
		if err != nil {
			return
		}
		again, err := UnmarshalStatsResp(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("re-decode drift:\n first  %+v\n second %+v", r, again)
		}
	})
}

// TouchResp is decoded by every heat-reporting client off its Touch-flush
// ack — the promotion-learning channel of hot-key adaptive serving. The
// frame is additive over the old empty Ack, so the decoder must treat an
// empty body as "no promotion set" (epoch 0), and hostile bodies — maxed
// epochs, binary keys, truncated varints, unknown tags — must error or
// degrade, never panic, never fabricate keys. Drift matters doubly here:
// a fabricated key would be admitted to near-caches fleet-wide.
func FuzzTouchResp(f *testing.F) {
	f.Add(TouchResp{HotEpoch: 3, HotKeys: [][]byte{[]byte("hot-a"), {0x00, 0xff}}}.Marshal())
	f.Add(TouchResp{}.Marshal()) // the pre-promotion bare Ack
	e := wire.NewEncoder()
	e.Uint(1, ^uint64(0))
	e.Bytes(2, []byte("\xff\xfekey"))
	e.Uint(99, 7)
	f.Add(e.Encoded())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalTouchResp(data)
		if err != nil {
			return
		}
		if len(r.HotKeys) > len(data) {
			t.Fatalf("decoder fabricated %d hot keys from %d input bytes", len(r.HotKeys), len(data))
		}
		for _, k := range r.HotKeys {
			if len(k) > len(data) {
				t.Fatalf("decoder fabricated a %d-byte key from %d input bytes", len(k), len(data))
			}
		}
		again, err := UnmarshalTouchResp(r.Marshal())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatalf("re-decode drift:\n first  %+v\n second %+v", r, again)
		}
	})
}

func TestTouchRespRoundTrip(t *testing.T) {
	in := TouchResp{HotEpoch: 9, HotKeys: [][]byte{[]byte("a"), []byte("b")}}
	out, err := UnmarshalTouchResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
	}
	// The pre-promotion bare Ack (a header-only frame) decodes as "no
	// promotion set".
	empty, err := UnmarshalTouchResp(TouchResp{}.Marshal())
	if err != nil || empty.HotEpoch != 0 || len(empty.HotKeys) != 0 {
		t.Errorf("empty ack decoded to %+v, %v", empty, err)
	}
}

package backend

import (
	"context"
	"errors"
	"fmt"

	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/trace"
	"cliquemap/internal/truetime"
)

// ErrSealed rejects client mutations against an immutable corpus (§6.4).
var ErrSealed = errors.New("backend: corpus is sealed (R=2/Immutable)")

// Handler CPU costs (ns) billed per invocation, on top of the RPC
// framework cost. SETs dominate Figure 19's backend CPU at low GET
// fractions.
const (
	setHandlerCPU   = 2600
	eraseHandlerCPU = 1800
	getHandlerCPU   = 1600
	touchHandlerCPU = 300
	scanHandlerCPU  = 4000
)

// debugHotKeys caps the heavy-hitter list shipped per Debug snapshot.
const debugHotKeys = 32

// registerHandlers wires the RPC service surface.
func (b *Backend) registerHandlers() {
	s := b.srv
	s.Handle(proto.MethodHello, func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		return b.hello().Marshal(), nil
	})

	s.Handle(proto.MethodGet, func(ctx context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalGetReq(req)
		if err != nil {
			return nil, err
		}
		if r.ConfigID != 0 && r.ConfigID != b.configID.Load() {
			return nil, layout.ErrConfigChanged
		}
		value, ver, found := b.localGetTraced(trace.SinkFrom(ctx), r.Key)
		if !found && b.recovering.Load() {
			// A recovering replica cannot distinguish "never stored" from
			// "acked before the crash, not yet recovered": a clean miss
			// here could mint a lost-write quorum. Resident entries are
			// safe to serve (genuine acked writes at monotone versions);
			// misses bounce until the self-validation sweep ends.
			return nil, proto.ErrRecovering
		}
		return proto.GetResp{Found: found, Value: value, Version: ver}.Marshal(), nil
	})
	s.SetMethodCost(proto.MethodGet, getHandlerCPU)

	s.Handle(proto.MethodSet, func(ctx context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalSetReq(req)
		if err != nil {
			return nil, err
		}
		if b.Sealed() && !r.Repair {
			return nil, ErrSealed
		}
		// The §6.1 self-validation stamp, extended to the RPC write path:
		// a client whose config view lags (or leads a not-yet-restamped
		// backend) must refresh before its write lands in the wrong epoch.
		entryID := b.configID.Load()
		if r.ConfigID != 0 && r.ConfigID != entryID {
			return nil, layout.ErrConfigChanged
		}
		if b.handoffRejects(r.Pending) {
			return nil, proto.ErrShardSealed
		}
		applied, stored, ev := b.applySetTraced(trace.SinkFrom(ctx), r.Key, r.Value, r.Version)
		if applied && r.Repair {
			b.noteRecoverySettle()
		}
		return proto.MutateResp{Applied: applied, Stored: stored, Evictions: ev, Sealed: b.handoffStranded(entryID)}.Marshal(), nil
	})
	s.SetMethodCost(proto.MethodSet, setHandlerCPU)

	s.Handle(proto.MethodErase, func(ctx context.Context, _ string, req []byte) ([]byte, error) {
		if b.Sealed() {
			return nil, ErrSealed
		}
		r, err := proto.UnmarshalEraseReq(req)
		if err != nil {
			return nil, err
		}
		entryID := b.configID.Load()
		if r.ConfigID != 0 && r.ConfigID != entryID {
			return nil, layout.ErrConfigChanged
		}
		if b.handoffRejects(r.Pending) {
			return nil, proto.ErrShardSealed
		}
		applied, stored := b.applyEraseTraced(trace.SinkFrom(ctx), r.Key, r.Version)
		return proto.MutateResp{Applied: applied, Stored: stored, Sealed: b.handoffStranded(entryID)}.Marshal(), nil
	})
	s.SetMethodCost(proto.MethodErase, eraseHandlerCPU)

	s.Handle(proto.MethodCas, func(ctx context.Context, _ string, req []byte) ([]byte, error) {
		if b.Sealed() {
			return nil, ErrSealed
		}
		r, err := proto.UnmarshalCasReq(req)
		if err != nil {
			return nil, err
		}
		entryID := b.configID.Load()
		if r.ConfigID != 0 && r.ConfigID != entryID {
			return nil, layout.ErrConfigChanged
		}
		if b.handoffRejects(r.Pending) {
			return nil, proto.ErrShardSealed
		}
		applied, stored := b.applyCasTraced(trace.SinkFrom(ctx), r.Key, r.Value, r.Expected, r.Version)
		return proto.MutateResp{Applied: applied, Stored: stored, Sealed: b.handoffStranded(entryID)}.Marshal(), nil
	})
	s.SetMethodCost(proto.MethodCas, setHandlerCPU)

	s.Handle(proto.MethodTouch, func(_ context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalTouchReq(req)
		if err != nil {
			return nil, err
		}
		b.IngestTouches(r.Keys)
		b.maybeEvalHot()
		// Piggyback the hot-key promotion set on the ack clients already
		// wait for: touch batches are exactly the traffic that makes keys
		// hot, so their senders learn the promoted set with no extra
		// round trip. Old clients decode this as the empty Ack frame they
		// expect (additive tags).
		epoch, hot := b.HotSnapshot()
		return proto.TouchResp{HotEpoch: epoch, HotKeys: hot}.Marshal(), nil
	})
	s.SetMethodCost(proto.MethodTouch, touchHandlerCPU)

	s.Handle(proto.MethodScan, func(_ context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalScanReq(req)
		if err != nil {
			return nil, err
		}
		return b.scan(r).Marshal(), nil
	})
	s.SetMethodCost(proto.MethodScan, scanHandlerCPU)

	s.Handle(proto.MethodUpdateVersion, func(_ context.Context, _ string, req []byte) ([]byte, error) {
		if b.Shard() < 0 || b.handoffSealed.Load() {
			// Repair-only method; a failed leg is retried next sweep.
			// Shardless tasks bounce too: raising a stale resident copy's
			// version on a demoted spare would poison a later merge.
			return nil, proto.ErrShardSealed
		}
		r, err := proto.UnmarshalUpdateVersionReq(req)
		if err != nil {
			return nil, err
		}
		applied := b.applyUpdateVersion(r.Key, r.Version)
		if applied {
			b.noteRecoverySettle()
		}
		return proto.MutateResp{Applied: applied, Stored: r.Version}.Marshal(), nil
	})
	s.SetMethodCost(proto.MethodUpdateVersion, eraseHandlerCPU)

	// Migration streams bypass both seals: they preserve, rather than
	// originate, state. Tombstone-flagged items re-play as erases so the
	// receiver's tombstone cache records them; the version gate makes
	// every re-application idempotent.
	migrate := func(_ context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalMigrateBatchReq(req)
		if err != nil {
			return nil, err
		}
		for _, it := range r.Items {
			if it.Tombstone {
				b.applyErase(it.Key, it.Version)
			} else {
				b.applySet(it.Key, it.Value, it.Version)
			}
		}
		if r.Final {
			b.tombSummaryFold(r.TombSummary)
		}
		return proto.Ack{}.Marshal(), nil
	}
	s.Handle(proto.MethodMigrateBatch, migrate)
	s.SetMethodCost(proto.MethodMigrateBatch, setHandlerCPU)
	s.Handle(proto.MethodMigrateDelta, migrate)
	s.SetMethodCost(proto.MethodMigrateDelta, setHandlerCPU)

	s.Handle(proto.MethodSeal, func(_ context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalSealReq(req)
		if err != nil {
			return nil, err
		}
		if r.On {
			b.HandoffSeal()
		} else {
			b.HandoffUnseal()
		}
		return proto.Ack{}.Marshal(), nil
	})

	s.Handle(proto.MethodAssumeShard, func(_ context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalAssumeShardReq(req)
		if err != nil {
			return nil, err
		}
		b.stateMu.Lock()
		b.shard = r.Shard
		b.spare = r.Shard < 0
		b.stateMu.Unlock()
		return proto.Ack{}.Marshal(), nil
	})

	s.Handle(proto.MethodConfig, func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		cfg := b.store.Get()
		resp := proto.ConfigResp{
			ConfigID:   cfg.ID,
			Replicas:   cfg.Mode.Replicas(),
			Quorum:     cfg.Mode.Quorum(),
			ShardAddrs: append([]string(nil), cfg.ShardAddrs...),
		}
		if cfg.Pending != nil {
			resp.PendingShards = cfg.Pending.Shards
			resp.PendingShardAddrs = append([]string(nil), cfg.Pending.ShardAddrs...)
			resp.SealedOld = append([]bool(nil), cfg.Pending.SealedOld...)
		}
		return resp.Marshal(), nil
	})

	s.Handle(proto.MethodStats, func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		c := b.CountersSnapshot()
		stripeOps := b.StripeOps()
		var maxOps, totalOps uint64
		for _, ops := range stripeOps {
			totalOps += ops
			if ops > maxOps {
				maxOps = ops
			}
		}
		var pendingShards uint64
		if p := b.store.Get().Pending; p != nil {
			pendingShards = uint64(p.Shards)
		}
		rec := b.RecoveryStatsSnapshot()
		ssat := b.StripeSaturation()
		rsat := s.Saturation()
		nsat := b.NICSat()
		// Stats scrapes double as a promotion heartbeat for workloads
		// that never send touch batches (MSG/RPC-only clients).
		b.maybeEvalHot()
		hotEpoch, hotKeys := b.HotSnapshot()
		return proto.StatsResp{
			Shard:          b.Shard(),
			Sealed:         b.Sealed(),
			ResidentKeys:   uint64(b.Len()),
			MemoryBytes:    uint64(b.MemoryBytes()),
			Sets:           c.Sets,
			Gets:           c.Gets,
			Evictions:      c.CapacityEvictions + c.AssocEvictions,
			IndexResizes:   c.IndexResizes,
			DataGrows:      c.DataGrows,
			RepairsIssued:  c.RepairsIssued,
			VersionRejects: c.VersionRejects,
			Stripes:        uint64(len(stripeOps)),
			StripeMaxOps:   maxOps,
			StripeTotalOps: totalOps,
			HeatTracked:    uint64(b.heat.Tracked()),
			HeatTotal:      b.heat.Total(),
			HandoffSealed:  b.HandoffSealed(),
			PendingShards:  pendingShards,

			CkptEpoch:       rec.CkptEpoch,
			CkptUnixNano:    uint64(rec.CkptUnixNano),
			JournalRecords:  rec.JournalRecords,
			JournalBytes:    rec.JournalBytes,
			RecoveredKeys:   rec.RecoveredKeys,
			ReplayedRecords: rec.ReplayedRecords,
			SelfValidated:   rec.SelfValidated,
			Recovering:      rec.Recovering,

			StripeContended:   ssat.Contended,
			StripeWaitNs:      ssat.WaitNs,
			StripeHeldNs:      ssat.HeldNs,
			StripeHeldSampled: ssat.HeldSampled,
			RPCWorkerLimit:    rsat.WorkerLimit,
			RPCWorkersBusy:    rsat.WorkersBusy,
			RPCQueuedSubmits:  rsat.QueuedSubmits,
			RPCSubmitWaitNs:   rsat.SubmitWaitNs,
			RPCQueuedCalls:    rsat.QueuedCalls,
			RPCQueueNs:        rsat.QueueNs,
			RPCRhoMilli:       rsat.RhoMilli,
			NICEngines:        nsat.Engines,
			NICRhoMilli:       nsat.RhoMilli,
			NICQueueNs:        nsat.QueueNs,
			NICOps:            nsat.Ops,

			HotEpoch: hotEpoch,
			HotKeys:  hotKeys,
		}.Marshal(), nil
	})

	s.Handle(proto.MethodDebug, func(_ context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalDebugReq(req)
		if err != nil {
			return nil, err
		}
		var resp proto.DebugResp
		if t := b.tracer.Load(); t != nil {
			snap := t.Snapshot(r.MaxSlow)
			resp.OpsTotal = snap.Ops
			resp.SlowTotal = snap.SlowTotal
			resp.SlowThresholdNs = snap.SlowThresholdNs
			for _, h := range snap.Hists {
				resp.Hists = append(resp.Hists, proto.DebugHist{
					Kind: h.Kind.String(), Transport: h.Transport.String(),
					Count: h.Count, MeanNs: h.MeanNs,
					P50Ns: h.P50Ns, P90Ns: h.P90Ns,
					P99Ns: h.P99Ns, P999Ns: h.P999Ns, MaxNs: h.MaxNs,
					SumNs: h.SumNs, Buckets: h.Buckets,
				})
			}
			resp.SlowOps = debugOps(snap.Slow)
			resp.Exemplars = debugOps(snap.Exemplars)
			for _, hz := range snap.Hazards {
				resp.Hazards = append(resp.Hazards, proto.DebugHazard{Name: hz.Name, Count: hz.Count})
			}
			for _, rh := range snap.Health {
				resp.Health = append(resp.Health, proto.DebugHealth{
					Addr: rh.Addr, ScoreMilli: uint64(rh.Score * 1000), Demoted: rh.Demoted,
				})
			}
		}
		if b.acct != nil {
			for _, comp := range b.acct.Components() {
				resp.CPU = append(resp.CPU, proto.DebugCPU{
					Component: comp,
					TotalNs:   b.acct.TotalNanos(comp),
					Ops:       b.acct.OpCount(comp),
				})
			}
		}
		for _, hk := range b.heat.TopN(debugHotKeys) {
			resp.HotKeys = append(resp.HotKeys, proto.DebugHotKey{Key: hk.Key, Count: hk.Count, Err: hk.Err})
		}
		resp.StripeHeat = b.StripeOps()
		return resp.Marshal(), nil
	})

	s.Handle(proto.MethodHealth, func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		// The health plane is cell-wide state; the cell attaches a
		// marshalled-snapshot source after construction. A bare backend
		// (tests, spares before wiring) serves an empty snapshot rather
		// than an error so tooling can always poll. The serving backend's
		// hot-key promotion set rides along (additive tags), so health
		// pollers learn the hot set on a poll they already make.
		epoch, hot := b.HotSnapshot()
		if fn := b.healthSrc.Load(); fn != nil {
			body := (*fn)()
			if epoch == 0 {
				return body, nil
			}
			if hr, err := proto.UnmarshalHealthResp(body); err == nil {
				hr.HotEpoch, hr.HotKeys = epoch, hot
				return hr.Marshal(), nil
			}
			return body, nil
		}
		return proto.HealthResp{HotEpoch: epoch, HotKeys: hot}.Marshal(), nil
	})

	s.Handle(proto.MethodTier, func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		// Tier routing state lives in the federation router; a tier
		// attaches a marshalled-snapshot source to every member cell's
		// backends. A cell outside any tier serves an empty snapshot so
		// cmstat -tier can always poll and report "not in a tier".
		if fn := b.tierSrc.Load(); fn != nil {
			return (*fn)(), nil
		}
		return proto.TierResp{}.Marshal(), nil
	})

	s.Handle(proto.MethodRequestRepair, func(ctx context.Context, _ string, req []byte) ([]byte, error) {
		r, err := proto.UnmarshalAssumeShardReq(req) // carries just the shard
		if err != nil {
			return nil, err
		}
		if _, err := b.RepairShard(ctx, r.Shard); err != nil {
			return nil, err
		}
		return proto.Ack{}.Marshal(), nil
	})
}

// debugOps converts tracer records to their wire form.
func debugOps(recs []trace.OpRecord) []proto.DebugOp {
	out := make([]proto.DebugOp, 0, len(recs))
	for _, r := range recs {
		out = append(out, proto.DebugOp{
			ID: r.ID, Kind: r.Kind.String(), Transport: r.Transport.String(),
			Attempts: r.Attempts, Ns: r.Ns, Bytes: r.Bytes, WallNs: r.WallNs,
			Spans: r.Spans,
		})
	}
	return out
}

// HandleMsg serves the two-sided MSG lookup strategy (Figure 7) delivered
// through the software NIC: a GET that wakes a backend application thread.
func (b *Backend) HandleMsg(req []byte) ([]byte, error) {
	r, err := proto.UnmarshalGetReq(req)
	if err != nil {
		return nil, err
	}
	if r.ConfigID != 0 && r.ConfigID != b.configID.Load() {
		return nil, layout.ErrConfigChanged
	}
	value, ver, found := b.localGet(r.Key)
	if !found && b.recovering.Load() {
		// Same guard as the MethodGet handler: a recovering replica's
		// miss is not evidence of absence and must not feed a quorum.
		return nil, proto.ErrRecovering
	}
	return proto.GetResp{Found: found, Value: value, Version: ver}.Marshal(), nil
}

// scan returns a page of (KeyHash, Version, Key) summaries for keys whose
// primary shard matches — the §5.4 cohort-scan surface.
func (b *Backend) scan(r proto.ScanReq) proto.ScanResp {
	cfg := b.store.Get()
	shards := cfg.Shards
	limit := r.Limit
	if limit <= 0 {
		limit = 1024
	}

	b.lockAll()
	defer b.unlockAll()
	idx := b.idx.Load()
	var resp proto.ScanResp
	bucket := int(r.Cursor)
	for ; bucket < idx.geo.Buckets; bucket++ {
		if len(resp.Items) >= limit {
			resp.NextCursor = uint64(bucket)
			return resp
		}
		raw, err := idx.region.Read(idx.geo.BucketOffset(bucket), idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
		if err != nil {
			continue
		}
		for slot, e := range dec.Entries {
			if e.Empty() {
				continue
			}
			if shards > 0 && int(e.Hash.Hi%uint64(shards)) != r.Shard {
				continue
			}
			de, ok := b.readEntryQuarantining(idx, bucket, slot, e)
			if !ok {
				continue
			}
			resp.Items = append(resp.Items, proto.ScanItem{
				HashHi: e.Hash.Hi, HashLo: e.Hash.Lo,
				Version: e.Version,
				Key:     append([]byte(nil), de.Key...),
			})
		}
	}
	// Side-table entries are scanned too.
	for i := range b.stripes {
		for k, se := range b.stripes[i].side {
			h := b.opt.Hash([]byte(k))
			if shards > 0 && int(h.Hi%uint64(shards)) != r.Shard {
				continue
			}
			resp.Items = append(resp.Items, proto.ScanItem{
				HashHi: h.Hi, HashLo: h.Lo, Version: se.version, Key: []byte(k),
			})
		}
	}
	resp.Items = append(resp.Items, b.tombstoneScanItems(r.Shard, shards)...)
	// The coarse summary travels with the scan so repair peers can tell
	// "never saw this key" apart from "erased it, but the tombstone was
	// evicted into the summary" (§5.2).
	resp.TombSummary = b.tombSummary()
	resp.Done = true
	return resp
}

// tombstoneScanItems lists the enumerable tombstones for shard as scan
// items — the live cache plus the pending-settle queue of evicted
// tombstones — so repair sees erases as first-class versioned state and
// can fold evicted-but-unsettled erases back into cohort scans. Only
// tombstones that also overflow the pending queue collapse into the §5.2
// coarse summary, which still blocks stale SETs but is invisible here;
// that double-overflow-before-a-sweep window is the formally-bounded
// resurrection residual (see tombstoneCache).
func (b *Backend) tombstoneScanItems(shard, shards int) []proto.ScanItem {
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	var out []proto.ScanItem
	emit := func(k string, v truetime.Version) {
		h := b.opt.Hash([]byte(k))
		if shard >= 0 && shards > 0 && int(h.Hi%uint64(shards)) != shard {
			return
		}
		out = append(out, proto.ScanItem{
			HashHi: h.Hi, HashLo: h.Lo, Version: v,
			Key: []byte(k), Tombstone: true,
		})
	}
	for k, v := range b.tomb.entries {
		emit(k, v)
	}
	for k, v := range b.tomb.pending {
		if _, live := b.tomb.entries[k]; live {
			continue // the exact entry is newer-or-equal; don't clobber it
		}
		emit(k, v)
	}
	return out
}

// RepairShard runs the §5.4 repair procedure for shard s, which this
// backend should only do when it participates in s's cohort. For every key
// of shard s, it gathers the per-replica versions (its own view plus
// cohort scans over RPC), detects dirty quorums, and settles all replicas
// on a fresh VersionNumber N: SET to replicas missing the key,
// UpdateVersion to replicas holding it.
func (b *Backend) RepairShard(ctx context.Context, s int) (repaired int, err error) {
	cfg := b.store.Get()
	cohort := cfg.Cohort(s)

	type replicaView struct {
		addr    string
		local   bool
		items   map[string]proto.ScanItem
		summary truetime.Version // replica's coarse tombstone summary
	}
	views := make([]replicaView, 0, len(cohort))
	client := b.rpcClient()

	for _, shard := range cohort {
		addr := cfg.AddrFor(shard)
		view := replicaView{addr: addr, items: make(map[string]proto.ScanItem)}
		if addr == b.opt.Addr {
			view.local = true
			for _, it := range b.Items(s, cfg.Shards) {
				view.items[string(it.Key)] = proto.ScanItem{Key: it.Key, Version: it.Version}
			}
			for _, it := range b.tombstoneScanItems(s, cfg.Shards) {
				view.items[string(it.Key)] = it
			}
			view.summary = b.tombSummary()
		} else {
			cursor := uint64(0)
			for {
				resp, _, cerr := client.Call(ctx, addr, proto.MethodScan, proto.ScanReq{Shard: s, Cursor: cursor, Limit: 4096}.Marshal())
				if cerr != nil {
					// A down cohort member cannot be scanned; repair what
					// the reachable members show.
					break
				}
				page, perr := proto.UnmarshalScanResp(resp)
				if perr != nil {
					return repaired, perr
				}
				for _, it := range page.Items {
					view.items[string(it.Key)] = it
				}
				if view.summary.Less(page.TombSummary) {
					view.summary = page.TombSummary
				}
				if page.Done {
					break
				}
				cursor = page.NextCursor
			}
		}
		views = append(views, view)
	}

	// Union of keys across replicas.
	keys := map[string]bool{}
	for _, v := range views {
		for k := range v.items {
			keys[k] = true
		}
	}

	for k := range keys {
		var versions []truetime.Version
		bestIdx := -1
		var bestV truetime.Version
		bestTomb := false
		for i, v := range views {
			it, ok := v.items[k]
			if !ok {
				versions = append(versions, truetime.Version{})
				continue
			}
			versions = append(versions, it.Version)
			if bestIdx < 0 || bestV.Less(it.Version) {
				bestIdx, bestV, bestTomb = i, it.Version, it.Tombstone
			}
		}
		clean := true
		for _, v := range versions {
			if v != bestV {
				clean = false
				break
			}
		}
		if clean || bestIdx < 0 {
			if clean && bestTomb {
				// Every replica holds the tombstone at bestV: the erase
				// is cohort-settled, so a pending-settle copy of it can
				// retire.
				b.tombSettled(k, bestV)
			}
			continue
		}

		// Settle the laggards AT bestV — never a fresh dominating version.
		// Repair's view is a snapshot: a client mutation can land between
		// the scan and this settle, and a settle stamped with a version
		// above everything would clobber it (a lost acked write). At
		// bestV, every install re-validates version monotonicity under
		// the stripe lock, so a concurrent newer mutation wins and the
		// next sweep re-evaluates — repair converges without ever racing
		// ahead of the write path.
		if bestTomb {
			// Newest state is an ERASE: propagate the tombstone. Replicas
			// still holding the value missed the erase; re-erasing at the
			// tombstone's version completes it (§5.2) without resurrection.
			settledAll := true
			for i, v := range views {
				if versions[i] == bestV {
					continue
				}
				if v.local {
					if applied, _ := b.applyErase([]byte(k), bestV); applied {
						b.noteRecoverySettle()
					}
				} else if _, _, cerr := client.Call(ctx, v.addr, proto.MethodErase, proto.EraseReq{Key: []byte(k), Version: bestV}.Marshal()); cerr != nil {
					// Unreachable laggard: the erase was not delivered, so
					// a pending-settle tombstone must stay enumerable for
					// the next sweep.
					settledAll = false
				}
			}
			if settledAll {
				b.tombSettled(k, bestV)
			}
			repaired++
			continue
		}

		// Newest state is a value — but a replica that does NOT hold the
		// key and whose coarse tombstone summary dominates bestV may have
		// erased it at a version the summary swallowed (§5.2): the erase
		// is invisible to the scan, and settling the value upward would
		// resurrect it. Repair stays neutral on such keys; the summary
		// still blocks stale SETs and the window closes as the cohort
		// converges.
		dominated := false
		for _, v := range views {
			if _, ok := v.items[k]; ok {
				continue
			}
			if !v.summary.Less(bestV) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}

		// Newest state is a value: fetch it, requiring it still carries
		// bestV — if the holder moved on, a newer mutation is already
		// settling this key and the next sweep re-evaluates.
		var value []byte
		var found bool
		if views[bestIdx].local {
			var ver truetime.Version
			value, ver, found = b.localGet([]byte(k))
			found = found && ver == bestV
		} else {
			resp, _, cerr := client.Call(ctx, views[bestIdx].addr, proto.MethodGet, proto.GetReq{Key: []byte(k)}.Marshal())
			if cerr == nil {
				g, gerr := proto.UnmarshalGetResp(resp)
				if gerr == nil && g.Found && g.Version == bestV {
					value, found = g.Value, true
				}
			}
		}
		if !found {
			continue
		}
		for i, v := range views {
			if versions[i] == bestV {
				continue
			}
			if v.local {
				if applied, _, _ := b.applySet([]byte(k), value, bestV); applied {
					b.noteRecoverySettle()
				}
			} else {
				client.Call(ctx, v.addr, proto.MethodSet, proto.SetReq{Key: []byte(k), Value: value, Version: bestV, Repair: true}.Marshal())
			}
		}
		repaired++
	}

	b.stripes[0].ctr.repairsIssued.Add(uint64(repaired))
	return repaired, nil
}

// MigrateTo streams this backend's shard contents to target and hands the
// shard over — the planned-maintenance path of §6.1. The caller (cell
// orchestration) is responsible for the config update that points the
// shard at the target.
//
// Handoff is lossless for acked writes: a bulk pass copies the corpus
// while mutations keep landing (each journaled), then the source SEALS —
// a lockAll barrier after which new mutations bounce with ErrShardSealed
// and retry against the target once the client refreshes config — and a
// delta pass drains every journaled key. Only then does the target assume
// the shard. Tombstones (cached and summary) travel too, so erases
// survive the move.
func (b *Backend) MigrateTo(ctx context.Context, targetAddr string) error {
	shard := b.Shard()
	if shard < 0 {
		return fmt.Errorf("backend %s: no shard to migrate", b.opt.Addr)
	}
	cfg := b.store.Get()
	client := b.rpcClient()

	b.journalStart()
	defer b.journalStop()

	// Phase 1: bulk copy while writes continue (journaled as they land).
	items := b.Items(-1, cfg.Shards) // a backend holds copies for 3 shards; move them all
	if err := b.sendItems(ctx, client, targetAddr, shard, items, false); err != nil {
		return err
	}

	// Phase 2: seal, then drain the journal until dry. journalNote stops
	// recording once sealed (post-seal accepts are migrate/pending writes
	// already replicated elsewhere), so the loop terminates.
	b.HandoffSeal()
	defer b.HandoffUnseal() // source re-arms as a spare after handoff
	for {
		keys := b.journalSwap()
		if keys == nil {
			break
		}
		delta := b.snapshotKeys(keys)
		if err := b.sendItems(ctx, client, targetAddr, shard, delta, true); err != nil {
			return err
		}
	}

	// Phase 3: tombstones — the cached exact entries as first-class
	// migrate items, and the coarse summary folded on the final frame.
	tombs := b.tombstoneMigrateItems(-1, cfg.Shards)
	sum := b.tombSummary()
	if len(tombs) > 0 || !sum.Zero() {
		req := proto.MigrateBatchReq{Shard: shard, Items: tombs, Final: true, TombSummary: sum}
		if err := b.sendMigrate(ctx, client, targetAddr, req, true); err != nil {
			return err
		}
	}

	if _, _, err := client.Call(ctx, targetAddr, proto.MethodAssumeShard, proto.AssumeShardReq{Shard: shard}.Marshal()); err != nil {
		return err
	}
	b.stateMu.Lock()
	b.shard = -1
	b.spare = true
	b.stateMu.Unlock()
	return nil
}

package backend

import (
	"cliquemap/internal/truetime"
)

// tombstoneCache retains VersionNumbers of ERASEd keys (§5.2): late
// arriving SETs must not resurrect affirmatively-erased values, but erased
// versions cannot live in the index region without wasting RMA-accessible
// DRAM. The cache is a fully associative, fixed-size structure on the
// backend's heap; evicted entries are approximated (bounded above) by a
// single summary VersionNumber — coarse, but never inconsistent.
type tombstoneCache struct {
	cap     int
	entries map[string]truetime.Version
	order   []string // FIFO eviction order
	summary truetime.Version
}

func newTombstoneCache(capacity int) *tombstoneCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &tombstoneCache{cap: capacity, entries: make(map[string]truetime.Version)}
}

// insert records key as erased at v, evicting the oldest tombstone into
// the summary if full. A newer tombstone for the same key wins.
func (t *tombstoneCache) insert(key string, v truetime.Version) {
	if old, ok := t.entries[key]; ok {
		if old.Less(v) {
			t.entries[key] = v
		}
		return
	}
	for len(t.entries) >= t.cap && len(t.order) > 0 {
		victim := t.order[0]
		t.order = t.order[1:]
		if ev, ok := t.entries[victim]; ok {
			if t.summary.Less(ev) {
				t.summary = ev
			}
			delete(t.entries, victim)
		}
	}
	t.entries[key] = v
	t.order = append(t.order, key)
}

// drop removes key's tombstone (a newer SET superseded it). The summary is
// untouched — it only ever grows. Takes the raw key bytes so the hot SET
// path avoids a string conversion (delete with an inline string(k) compiles
// allocation-free).
func (t *tombstoneCache) drop(key []byte) {
	delete(t.entries, string(key))
}

// bound returns the highest version that could have erased key: the exact
// tombstone when cached, else the summary upper bound. Byte-keyed for the
// same reason as drop.
func (t *tombstoneCache) bound(key []byte) truetime.Version {
	if v, ok := t.entries[string(key)]; ok {
		return v
	}
	return t.summary
}

// len returns the cached tombstone count.
func (t *tombstoneCache) len() int { return len(t.entries) }

package backend

import (
	"cliquemap/internal/truetime"
)

// tombstoneCache retains VersionNumbers of ERASEd keys (§5.2): late
// arriving SETs must not resurrect affirmatively-erased values, but erased
// versions cannot live in the index region without wasting RMA-accessible
// DRAM. The cache is a fully associative, fixed-size structure on the
// backend's heap.
//
// Eviction is two-staged. A tombstone evicted from the exact cache first
// moves to the PENDING-SETTLE queue: it keeps its precise (key, version)
// and stays enumerable to cohort scans, so the next repair sweep can fold
// the erase back into cohort state (re-erasing any replica that missed
// it) and then retire the entry once the cohort is observed settled.
// Only when the pending queue itself overflows does a tombstone collapse
// into the single coarse summary VersionNumber — coarse, but never
// inconsistent. The summary blocks stale SETs but is invisible to repair
// (repair must stay neutral on summary-dominated keys, see RepairShard),
// so the resurrection residual is formally bounded to keys that fall out
// of BOTH stages before a repair sweep runs; overflow counts the times
// that bound was consumed.
type tombstoneCache struct {
	cap     int
	entries map[string]truetime.Version
	order   []string // FIFO eviction order
	summary truetime.Version

	// Pending-settle queue: evicted-but-not-yet-settled tombstones.
	pending      map[string]truetime.Version
	pendingOrder []string // FIFO; may hold stale keys, skipped on pop
	pendingCap   int
	overflow     uint64 // pending evictions folded into the summary
}

func newTombstoneCache(capacity int) *tombstoneCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &tombstoneCache{
		cap:        capacity,
		entries:    make(map[string]truetime.Version),
		pending:    make(map[string]truetime.Version),
		pendingCap: capacity,
	}
}

// insert records key as erased at v, evicting the oldest tombstone into
// the pending-settle queue if full. A newer tombstone for the same key
// wins.
func (t *tombstoneCache) insert(key string, v truetime.Version) {
	if old, ok := t.entries[key]; ok {
		if old.Less(v) {
			t.entries[key] = v
		}
		return
	}
	for len(t.entries) >= t.cap && len(t.order) > 0 {
		victim := t.order[0]
		t.order = t.order[1:]
		if ev, ok := t.entries[victim]; ok {
			t.pendingInsert(victim, ev)
			delete(t.entries, victim)
		}
	}
	t.entries[key] = v
	t.order = append(t.order, key)
	// The exact entry supersedes any older pending copy of the same key.
	delete(t.pending, key)
}

// pendingInsert parks an evicted tombstone in the pending-settle queue,
// folding the queue's own oldest entries into the coarse summary when it
// overflows — the formally-bounded residual.
func (t *tombstoneCache) pendingInsert(key string, v truetime.Version) {
	if old, ok := t.pending[key]; ok {
		if old.Less(v) {
			t.pending[key] = v
		}
		return
	}
	t.pending[key] = v
	t.pendingOrder = append(t.pendingOrder, key)
	for len(t.pending) > t.pendingCap && len(t.pendingOrder) > 0 {
		victim := t.pendingOrder[0]
		t.pendingOrder = t.pendingOrder[1:]
		if ev, ok := t.pending[victim]; ok {
			if t.summary.Less(ev) {
				t.summary = ev
			}
			delete(t.pending, victim)
			t.overflow++
		}
	}
}

// settled retires key's pending tombstone once a repair sweep has
// observed the cohort settled at version v (every replica holds the
// tombstone, or every laggard's re-erase was delivered). A pending entry
// newer than v stays — it still needs its own settle.
func (t *tombstoneCache) settled(key string, v truetime.Version) {
	if pv, ok := t.pending[key]; ok && !v.Less(pv) {
		delete(t.pending, key)
	}
}

// drop removes key's tombstone (a newer SET superseded it). The summary is
// untouched — it only ever grows. Takes the raw key bytes so the hot SET
// path avoids a string conversion (delete with an inline string(k) compiles
// allocation-free).
func (t *tombstoneCache) drop(key []byte) {
	delete(t.entries, string(key))
	delete(t.pending, string(key))
}

// bound returns the highest version that could have erased key: the exact
// tombstone when cached (live or pending), else the summary upper bound.
// Byte-keyed for the same reason as drop.
func (t *tombstoneCache) bound(key []byte) truetime.Version {
	if v, ok := t.entries[string(key)]; ok {
		return v
	}
	if v, ok := t.pending[string(key)]; ok {
		return v
	}
	return t.summary
}

// len returns the enumerable tombstone count: live entries plus the
// pending-settle queue (both feed bound and cohort scans, so both gate
// the tombLive fast-path shadow).
func (t *tombstoneCache) len() int { return len(t.entries) + len(t.pending) }

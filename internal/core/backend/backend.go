// Package backend implements a CliqueMap backend task (§4): the
// RMA-accessible index and data regions, and the RPC handlers that own all
// mutation — SET/ERASE/CAS with version monotonicity, eviction under
// capacity and associativity conflicts, access-record ingestion for
// recency policies, index resizing, data-region reshaping, cohort
// scanning, quorum repair, and warm-spare migration.
//
// The division of labour is the paper's core idea: GETs never run backend
// code (they are served by the NIC out of registered memory), so
// everything here is straightforward locked Go — and the self-validating
// formats in internal/core/layout make it safe for this code to rearrange
// memory underneath in-flight RMAs, because any client that observes an
// intermediate state fails validation and retries.
//
// # Concurrency model
//
// Mutations are synchronized by bucket-stripe locks rather than one global
// mutex. A key hashes to stripe h.Lo % nStripes, where nStripes divides
// the bucket count (and keeps dividing it across doubling resizes), so a
// stripe owns a fixed set of buckets, that set's side-table shard, a
// per-stripe eviction policy, and a per-stripe counter shard. Mutations on
// different stripes proceed fully in parallel.
//
// Lock-ordering rules (violations deadlock; see DESIGN.md):
//
//  1. Stripe locks are acquired in ascending index order. Single-key ops
//     take exactly one; cell-wide ops (resize, restamp, compact-restart,
//     scan, Items) take all of them, holding none on entry.
//  2. Leaf locks (tombMu, stateMu, the data region's wmu, the rmem region
//     stripes, the slab allocator's internal locks, a stripe's policy —
//     guarded by that stripe's own mutex) may be taken under stripe locks
//     but never the reverse.
//  3. Allocation that can evict (allocWithEviction) must be entered with
//     NO stripe lock held: eviction locks a victim's stripe. SET-style
//     paths therefore run as pre-check → unlock → allocate+write →
//     relock → re-validate → publish.
package backend

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/eviction"
	"cliquemap/internal/hashring"
	"cliquemap/internal/persist"
	"cliquemap/internal/rmem"
	"cliquemap/internal/rpc"
	"cliquemap/internal/slab"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
	"cliquemap/internal/truetime"
)

// SetTracer attaches the cell's op tracer so MethodDebug can serve
// snapshots. Safe to leave unset: the handler degrades to CPU accounts
// only.
func (b *Backend) SetTracer(t *trace.Tracer) { b.tracer.Store(t) }

// Tracer returns the attached op tracer, or nil.
func (b *Backend) Tracer() *trace.Tracer { return b.tracer.Load() }

// Heat returns the backend's key-heat sketch.
func (b *Backend) Heat() *stats.TopK { return b.heat }

// SetHealthSource attaches the marshalled-HealthResp provider behind
// MethodHealth. Safe to leave unset: the handler serves an empty
// snapshot.
func (b *Backend) SetHealthSource(fn func() []byte) { b.healthSrc.Store(&fn) }

// SetTierSource attaches the marshalled-TierResp provider behind
// MethodTier. Safe to leave unset: the handler serves an empty snapshot.
func (b *Backend) SetTierSource(fn func() []byte) { b.tierSrc.Store(&fn) }

// NICSaturation mirrors the serving NIC's queue-pressure snapshot
// (pony.Saturation) without importing the transport package.
type NICSaturation struct {
	Engines  uint64 // current engine count (gauge)
	RhoMilli uint64 // utilization at the last engine visit ×1000 (gauge)
	QueueNs  uint64 // cumulative modelled engine-queue ns
	Ops      uint64 // cumulative ops served
}

// SetNICSatSource attaches the serving NIC's saturation snapshot provider
// so MethodStats can report engine-queue pressure alongside the backend's
// own counters. Safe to leave unset (RPC-only cells): zeros are served.
func (b *Backend) SetNICSatSource(fn func() NICSaturation) { b.nicSatSrc.Store(&fn) }

// NICSat returns the serving NIC's saturation snapshot, or zeros.
func (b *Backend) NICSat() NICSaturation {
	if fn := b.nicSatSrc.Load(); fn != nil {
		return (*fn)()
	}
	return NICSaturation{}
}

// StripeSaturation aggregates the per-stripe lock-contention counters:
// how often mutations collided on a stripe, how long contended acquirers
// waited, and the sampled critical-section occupancy.
type StripeSaturation struct {
	Acquisitions uint64 // lockStripe acquisitions
	Contended    uint64 // acquisitions that found the lock held
	WaitNs       uint64 // wall-ns contended acquirers waited
	HeldNs       uint64 // wall-ns of sampled (1/heldSampleEvery) critical sections
	HeldSampled  uint64 // critical sections measured into HeldNs
}

// StripeSaturation snapshots the stripe-lock contention counters. The
// counters live under each stripe's mutex (keeping them off the hot
// path's pre-lock cache traffic), so the snapshot takes each lock
// briefly; it only runs on MethodStats.
func (b *Backend) StripeSaturation() StripeSaturation {
	var out StripeSaturation
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		out.Acquisitions += s.lockAcq
		out.Contended += s.lockContended
		out.WaitNs += s.lockWaitNs
		out.HeldNs += s.lockHeldNs
		out.HeldSampled += s.lockHeldSampled
		s.mu.Unlock()
	}
	return out
}

// noteHeat feeds one key access into the heat sketch, reusing the hash
// the hot path already computed. Probe-namespace canaries are excluded so
// the health plane's own synthetic traffic can never masquerade as a hot
// key, and the federation tier's follower-cache namespace is excluded so
// cached copies of remotely-owned keys don't re-count reads the owner
// cell already measured (follower traffic would otherwise self-amplify
// apparent heat and mis-drive the promotion loop).
func (b *Backend) noteHeat(key []byte, h hashring.KeyHash) {
	if !layout.IsProbeKey(key) && !layout.IsTierKey(key) {
		b.heat.Touch(key, h.Lo)
	}
}

// heldSampleEvery sets how many lockStripe acquisitions share one
// held-time measurement; sampling keeps the clock reads off all but
// 1/64th of hot-path critical sections.
const heldSampleEvery = 64

// lockStripe acquires s.mu, attributing contended waits to the op's span
// sink and to the stripe's contention counters. All counter writes happen
// after acquisition, inside the critical section the caller already owns —
// the uncontended path is a single TryLock CAS plus a plain increment on
// memory no other CPU is touching, so it pays (almost) nothing over a
// plain Lock and adds no shared-cache-line traffic before the lock.
// Sampled acquisitions additionally time their critical section, billed at
// release by stripe.unlock.
func lockStripe(s *stripe, sink *trace.SpanSink) {
	if !s.mu.TryLock() {
		t0 := time.Now()
		s.mu.Lock()
		wait := uint64(time.Since(t0))
		s.lockContended++
		s.lockWaitNs += wait
		if sink != nil {
			sink.Annotate(trace.SpanStripeWait, 0, wait)
		}
	}
	s.lockAcq++
	if s.lockAcq%heldSampleEvery == 0 {
		s.heldStart = time.Now()
	}
}

// unlock releases the stripe, billing a sampled critical section's held
// time. Every stripe unlock must come through here so a sampled section is
// always closed by its own release.
func (s *stripe) unlock() {
	if !s.heldStart.IsZero() {
		s.lockHeldNs += uint64(time.Since(s.heldStart))
		s.lockHeldSampled++
		s.heldStart = time.Time{}
	}
	s.mu.Unlock()
}

// maxStripes bounds the stripe count; the actual count is the largest
// power of two ≤ maxStripes that divides the initial bucket count, so a
// bucket's stripe is stable across doubling resizes.
const maxStripes = 16

// Options configures one backend task.
type Options struct {
	Shard  int    // primary shard served; -1 for an idle spare
	HostID int    // fabric host
	Addr   string // RPC address

	Geometry     layout.Geometry // initial index shape
	DataBytes    int             // initially populated data-region bytes
	DataMaxBytes int             // reserved ceiling for reshaping
	SlabBytes    int             // slab size for the data allocator

	Policy           string  // eviction policy name (internal/eviction)
	MaxLoadFactor    float64 // index resize trigger (§4.1)
	GrowWatermark    float64 // data-region growth trigger (§4.1)
	GrowStep         float64 // fraction of current size to grow by
	OverflowFallback bool    // RPC side-table on bucket overflow (§4.2)
	TombstoneCap     int     // tombstone cache capacity (§5.2)
	ReshapeEnabled   bool    // false = paper's "pre-allocate for peak" baseline
	// CompressThreshold enables DEFLATE compression of values at least
	// this many bytes (0 disables) — one of the post-launch features §9
	// credits to keeping mutations on RPC.
	CompressThreshold int
	// Hash overrides the key hash (§6.5 added customizable hash functions
	// for disaggregation users). Must match the clients'; nil means
	// hashring.DefaultHash.
	Hash hashring.HashFunc
	// HeatK sizes the key-heat top-k sketch (per-shard capacity; see
	// stats.TopK). 0 takes the sketch's default.
	HeatK int
	// HotK caps the hot-key promoted set (hotset.go): the top keys whose
	// traffic share clears the promotion bar are settled to all-replica
	// residency and advertised to clients via response piggybacks. 0
	// takes a default; negative disables promotion entirely.
	HotK int

	// DataDir, when non-empty, enables the durability plane (persist.go):
	// applied mutations tee into a write-ahead journal under DataDir,
	// checkpoints collapse the journal, and New recovers the corpus warm
	// from the newest checkpoint + journal tail before serving.
	DataDir string
	// CheckpointEvery is the journal depth (records) that triggers an
	// async checkpoint; 0 takes a default.
	CheckpointEvery int
	// Recovering starts the backend in the §5.4 self-validation window:
	// resident entries serve, misses bounce with proto.ErrRecovering, and
	// bucket headers carry a sentinel config stamp that diverts one-sided
	// readers to RPC, until EndRecovery. Set by restarts rejoining a
	// quorum whose corpus may be behind.
	Recovering bool
	// PersistHook and PersistSync pass through to persist.Options (crash
	// injection for tests; per-append fsync for power-loss durability —
	// kill -9 survival needs neither, the OS page cache persists).
	PersistHook func(point string) bool
	PersistSync bool
}

func (o Options) withDefaults() Options {
	o.Hash = hashring.OrDefault(o.Hash)
	if o.Geometry.Buckets == 0 {
		o.Geometry = layout.Geometry{Buckets: 256, Ways: layout.DefaultWays}
	}
	if o.Geometry.Ways == 0 {
		o.Geometry.Ways = layout.DefaultWays
	}
	if o.DataBytes == 0 {
		o.DataBytes = 4 << 20
	}
	if o.DataMaxBytes < o.DataBytes {
		o.DataMaxBytes = o.DataBytes * 16
	}
	if o.SlabBytes == 0 {
		o.SlabBytes = 256 << 10
	}
	if o.MaxLoadFactor == 0 {
		o.MaxLoadFactor = 0.70
	}
	if o.GrowWatermark == 0 {
		o.GrowWatermark = 0.85
	}
	if o.GrowStep == 0 {
		o.GrowStep = 0.5
	}
	if o.TombstoneCap == 0 {
		o.TombstoneCap = 8192
	}
	return o
}

// Counters aggregates the backend's observable behaviour.
type Counters struct {
	Sets, SetsApplied     uint64
	Erases, ErasesApplied uint64
	CasOps, CasApplied    uint64
	Gets                  uint64
	VersionRejects        uint64
	CapacityEvictions     uint64
	AssocEvictions        uint64
	Overflows             uint64
	Touches               uint64
	IndexResizes          uint64
	DataGrows             uint64
	RepairsIssued         uint64
	CorruptPurged         uint64
}

// counterShard is one stripe's share of the counters, updated lock-free so
// stats reads never contend with serving.
type counterShard struct {
	sets, setsApplied     atomic.Uint64
	erases, erasesApplied atomic.Uint64
	casOps, casApplied    atomic.Uint64
	gets                  atomic.Uint64
	versionRejects        atomic.Uint64
	capacityEvictions     atomic.Uint64
	assocEvictions        atomic.Uint64
	overflows             atomic.Uint64
	touches               atomic.Uint64
	indexResizes          atomic.Uint64
	dataGrows             atomic.Uint64
	repairsIssued         atomic.Uint64
	corruptPurged         atomic.Uint64
}

// ops returns the stripe's total op count (for skew reporting).
func (c *counterShard) ops() uint64 {
	return c.sets.Load() + c.erases.Load() + c.casOps.Load() + c.gets.Load() + c.touches.Load()
}

func (c *counterShard) addTo(out *Counters) {
	out.Sets += c.sets.Load()
	out.SetsApplied += c.setsApplied.Load()
	out.Erases += c.erases.Load()
	out.ErasesApplied += c.erasesApplied.Load()
	out.CasOps += c.casOps.Load()
	out.CasApplied += c.casApplied.Load()
	out.Gets += c.gets.Load()
	out.VersionRejects += c.versionRejects.Load()
	out.CapacityEvictions += c.capacityEvictions.Load()
	out.AssocEvictions += c.assocEvictions.Load()
	out.Overflows += c.overflows.Load()
	out.Touches += c.touches.Load()
	out.IndexResizes += c.indexResizes.Load()
	out.DataGrows += c.dataGrows.Load()
	out.RepairsIssued += c.repairsIssued.Load()
	out.CorruptPurged += c.corruptPurged.Load()
}

// indexRegion is the current RMA-accessible index.
type indexRegion struct {
	geo    layout.Geometry
	region *rmem.Region
	win    *rmem.Window
	epoch  uint64
	used   atomic.Int64 // occupied IndexEntries
}

// dataRegion is the slab-managed DataEntry pool.
type dataRegion struct {
	region *rmem.Region
	alloc  *slab.Allocator

	cur     atomic.Pointer[rmem.Window] // newest window; lock-free hot-path reads
	wmu     sync.Mutex                  // windows slice + growth serialization
	windows []*rmem.Window              // all live windows, oldest first
}

func (d *dataRegion) current() *rmem.Window { return d.cur.Load() }

func (d *dataRegion) windowIDs() []rmem.WindowID {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	out := make([]rmem.WindowID, len(d.windows))
	for i, w := range d.windows {
		out[i] = w.ID
	}
	return out
}

// sideEntry is an overflowed KV pair reachable only via RPC (§4.2).
type sideEntry struct {
	value   []byte
	version truetime.Version
}

// stripe owns an equivalence class of buckets (bucket % nStripes), that
// class's side-table shard, eviction-policy slots, and counter shard.
type stripe struct {
	mu     sync.Mutex
	policy eviction.Policy
	side   map[string]sideEntry
	ctr    counterShard

	// Lock-contention telemetry (the loadwall saturation plane). All of
	// it — counters included — is guarded by mu itself and mutated only
	// inside the critical section, so the hot path never touches a shared
	// cache line before it owns the stripe. StripeSaturation (MethodStats
	// only) takes each stripe's lock briefly to snapshot.
	lockAcq         uint64 // lockStripe acquisitions (sampling base)
	lockContended   uint64 // acquisitions that found the lock held
	lockWaitNs      uint64 // measured wall-ns contended acquirers waited
	lockHeldNs      uint64 // measured wall-ns of sampled critical sections
	lockHeldSampled uint64 // critical sections measured into lockHeldNs
	heldStart       time.Time
}

// Backend is one CliqueMap backend task.
type Backend struct {
	opt   Options
	store *config.Store
	reg   *rmem.Registry
	gen   *truetime.Generator
	net   *rpc.Network
	srv   *rpc.Server
	acct  *stats.CPUAccount

	// tracer, when set, serves Debug RPC snapshots; the cell attaches the
	// shared per-host tracer after construction.
	tracer atomic.Pointer[trace.Tracer]

	// heat is the always-on key-heat sketch behind the health plane's
	// hot-key telemetry. It sees every mutation and RPC/MSG lookup plus
	// the client-reported touch batches (which carry the keys of
	// one-sided RMA GETs the backend never executes), so heavy hitters
	// are visible on every transport.
	heat *stats.TopK

	// healthSrc, when set, serves MethodHealth snapshots; the cell
	// attaches a closure over its health plane after construction.
	healthSrc atomic.Pointer[func() []byte]

	stripes  []stripe
	nStripes uint64

	idx  atomic.Pointer[indexRegion] // swapped only under all stripe locks
	data atomic.Pointer[dataRegion]  // swapped only under all stripe locks

	tombMu sync.Mutex
	tomb   *tombstoneCache
	// tombLive and tombSummarySet shadow the cache's state so the hot
	// mutation path can skip tombMu entirely while the cache is empty (the
	// steady state: no recent ERASEs). Per-key correctness holds because a
	// key's tombstone insert and its later drop/bound are both serialized
	// by that key's stripe lock, which orders the shadow updates too.
	tombLive       atomic.Int64
	tombSummarySet atomic.Bool

	stateMu sync.Mutex // shard, spare
	shard   int
	spare   bool

	sealed   atomic.Bool
	configID atomic.Uint64

	// handoffSealed is the shard-handoff seal (distinct from the
	// R2Immutable corpus seal above): while set, client mutations bounce
	// with proto.ErrShardSealed unless they are pending-epoch writes this
	// backend owns. Sealing takes every stripe lock as a barrier; see
	// handoff.go.
	handoffSealed atomic.Bool

	// journal records keys of mutations published while a handoff is in
	// flight, so the post-seal delta pass can stream exactly what the
	// bulk snapshot missed. Notes are taken under the key's stripe lock;
	// journalMu is a leaf lock below it. journalActive keeps the
	// steady-state mutation path to one atomic load.
	journalActive atomic.Bool
	journalMu     sync.Mutex
	journal       map[string]struct{}

	evictCursor atomic.Uint64 // round-robin start stripe for capacity eviction

	// persist, when set, is the durable store behind warm restarts:
	// applied mutations tee into its journal under the key's stripe lock
	// (persist.go). Stored only after recovery replay completes, so
	// replayed records are not re-journaled. Memory-only backends keep it
	// nil and pay one atomic load per mutation.
	persist     atomic.Pointer[persist.Store]
	recovering  atomic.Bool
	ckptRunning atomic.Bool

	// Warm-restart telemetry behind the RECOVERY stats columns.
	recoveredKeys   atomic.Uint64
	replayedRecords atomic.Uint64
	recoverySettles atomic.Uint64
	selfValidated   atomic.Uint64

	// tierSrc, when set, serves MethodTier snapshots; the federation
	// tier attaches a closure over its router after construction. Kept
	// at the tail: it is cold, and the fields above it are hot-path.
	tierSrc atomic.Pointer[func() []byte]

	// nicSatSrc, when set, supplies the serving NIC's saturation snapshot
	// for MethodStats (cold; read only by stats scrapes).
	nicSatSrc atomic.Pointer[func() NICSaturation]

	// Hot-key promotion state (hotset.go). Cold: evaluated on touch
	// ingestion and stats scrapes, read via one atomic load everywhere
	// else.
	hotMu        sync.Mutex // serializes epoch bumps
	hot          atomic.Pointer[hotSet]
	hotEvalTotal atomic.Uint64 // sketch total at the last evaluation
	hotEpochs    atomic.Uint64 // promotion epoch changes (observability)
	hotSettles   atomic.Uint64 // residency settles issued by RepairHot
	hotResidency atomic.Bool   // a RepairHot sweep is in flight
}

// opBufs is per-call scratch: a bucket read buffer, an IndexEntry encode
// buffer, and a DataEntry encode buffer, pooled to keep the mutation path
// allocation-free.
type opBufs struct {
	bucket []byte
	entry  [layout.IndexEntrySize]byte
	data   []byte
}

var bufPool = sync.Pool{New: func() any { return &opBufs{} }}

func (o *opBufs) bucketBuf(n int) []byte {
	if cap(o.bucket) < n {
		o.bucket = make([]byte, n)
	}
	return o.bucket[:n]
}

func (o *opBufs) dataBuf(n int) []byte {
	if cap(o.data) < n {
		o.data = make([]byte, n+n/2)
	}
	return o.data[:n]
}

// zeroEntry is the wire form of an empty IndexEntry slot (read-only).
var zeroEntry = make([]byte, layout.IndexEntrySize)

// New builds and registers a backend task: its memory regions, RMA
// windows, and RPC service. The same registry must be attached to the
// host's NIC so inbound RMAs can be served.
func New(opt Options, store *config.Store, reg *rmem.Registry, net *rpc.Network, gen *truetime.Generator, acct *stats.CPUAccount) (*Backend, error) {
	opt = opt.withDefaults()
	if err := opt.Geometry.Validate(); err != nil {
		return nil, err
	}
	b := &Backend{
		opt:   opt,
		store: store,
		reg:   reg,
		gen:   gen,
		net:   net,
		acct:  acct,
		shard: opt.Shard,
		spare: opt.Shard < 0,
		tomb:  newTombstoneCache(opt.TombstoneCap),
		heat:  stats.NewTopK(opt.HeatK),
	}

	// Stripe count: largest power of two ≤ maxStripes dividing the initial
	// bucket count. Resizes double the bucket count, preserving
	// divisibility, so a bucket's stripe never changes.
	n := maxStripes
	for opt.Geometry.Buckets%n != 0 {
		n /= 2
	}
	b.nStripes = uint64(n)
	b.stripes = make([]stripe, n)
	perStripe := opt.Geometry.Buckets * opt.Geometry.Ways / n
	if perStripe < 1 {
		perStripe = 1
	}
	for i := range b.stripes {
		pol, err := eviction.New(opt.Policy, perStripe)
		if err != nil {
			return nil, err
		}
		b.stripes[i].policy = pol
		b.stripes[i].side = make(map[string]sideEntry)
	}
	if store != nil {
		b.configID.Store(store.Get().ID)
	}
	if opt.Recovering {
		b.recovering.Store(true) // before newIndex: buckets get the sentinel stamp
	}

	b.idx.Store(b.newIndex(opt.Geometry, 1))

	dataBytes := opt.DataBytes
	if !opt.ReshapeEnabled {
		dataBytes = opt.DataMaxBytes // pre-allocate for peak (the baseline)
	}
	region := rmem.NewRegion(dataBytes, opt.DataMaxBytes)
	alloc, err := slab.New(dataBytes, opt.SlabBytes, nil)
	if err != nil {
		return nil, fmt.Errorf("backend: data allocator: %w", err)
	}
	dr := &dataRegion{region: region, alloc: alloc}
	dr.windows = []*rmem.Window{reg.Register(region, 1)}
	dr.cur.Store(dr.windows[0])
	b.data.Store(dr)

	// Recover the durable corpus before the RPC service exists: replay
	// runs with zero concurrent traffic, and the journal tee activates
	// only once replay is done (persist.go).
	if opt.DataDir != "" {
		if err := b.openPersist(); err != nil {
			return nil, fmt.Errorf("backend: persist: %w", err)
		}
	}

	b.srv = net.Serve(opt.Addr, opt.HostID)
	b.registerHandlers()
	return b, nil
}

// newIndex builds a zeroed index region with configID-stamped buckets.
func (b *Backend) newIndex(geo layout.Geometry, epoch uint64) *indexRegion {
	region := rmem.NewRegion(geo.RegionBytes(), geo.RegionBytes())
	hdr := make([]byte, layout.BucketHeaderSize)
	for i := 0; i < geo.Buckets; i++ {
		layout.EncodeBucketHeader(hdr, b.stampID(), 0)
		region.Write(geo.BucketOffset(i), hdr)
	}
	return &indexRegion{geo: geo, region: region, win: b.reg.Register(region, epoch), epoch: epoch}
}

// stripeOf returns the stripe owning h's bucket. Because nStripes divides
// the bucket count, h.Lo % buckets % nStripes == h.Lo % nStripes.
func (b *Backend) stripeOf(h hashring.KeyHash) *stripe {
	return &b.stripes[h.Lo%b.nStripes]
}

// lockAll acquires every stripe in ascending order (cell-wide ops).
func (b *Backend) lockAll() {
	for i := range b.stripes {
		b.stripes[i].mu.Lock()
	}
}

func (b *Backend) unlockAll() {
	for i := len(b.stripes) - 1; i >= 0; i-- {
		b.stripes[i].mu.Unlock()
	}
}

// Addr returns the RPC address.
func (b *Backend) Addr() string { return b.opt.Addr }

// HostID returns the fabric host.
func (b *Backend) HostID() int { return b.opt.HostID }

// Shard returns the currently served shard (-1 for idle spare).
func (b *Backend) Shard() int {
	b.stateMu.Lock()
	defer b.stateMu.Unlock()
	return b.shard
}

// Server exposes the RPC server (for Stop/Start fault injection).
func (b *Backend) Server() *rpc.Server { return b.srv }

// CountersSnapshot merges the per-stripe counter shards.
func (b *Backend) CountersSnapshot() Counters {
	var out Counters
	for i := range b.stripes {
		b.stripes[i].ctr.addTo(&out)
	}
	return out
}

// StripeOps returns each stripe's total op count — the raw data behind the
// Stats RPC's stripe-skew fields.
func (b *Backend) StripeOps() []uint64 {
	out := make([]uint64, len(b.stripes))
	for i := range b.stripes {
		out[i] = b.stripes[i].ctr.ops()
	}
	return out
}

// MemoryBytes reports the backend's populated DRAM footprint: index region
// plus populated data region — the Figure 3 metric.
func (b *Backend) MemoryBytes() int {
	return b.idx.Load().geo.RegionBytes() + b.data.Load().region.Populated()
}

// DataUtilization returns allocated/populated for the data region.
func (b *Backend) DataUtilization() float64 {
	st := b.data.Load().alloc.Stats()
	if st.PoolBytes == 0 {
		return 0
	}
	return float64(st.AllocatedBytes) / float64(st.PoolBytes)
}

// SetConfigID restamps every bucket header with the new configuration ID.
// Clients holding the old ID fail validation on their next GET and refresh
// (§6.1).
func (b *Backend) SetConfigID(id uint64) {
	b.configID.Store(id)
	b.lockAll()
	defer b.unlockAll()
	b.restampLocked()
}

// restampLocked rewrites every bucket header; all stripe locks held.
func (b *Backend) restampLocked() {
	idx := b.idx.Load()
	hdr := make([]byte, layout.BucketHeaderSize)
	for i := 0; i < idx.geo.Buckets; i++ {
		off := idx.geo.BucketOffset(i)
		cur, err := idx.region.Read(off, layout.BucketHeaderSize)
		if err != nil {
			continue
		}
		flags := uint64(0)
		if len(cur) >= layout.BucketHeaderSize {
			dec, derr := layout.DecodeBucket(append(cur, make([]byte, idx.geo.BucketSize()-layout.BucketHeaderSize)...), idx.geo.Ways)
			if derr == nil {
				flags = dec.Flags
			}
		}
		layout.EncodeBucketHeader(hdr, b.stampID(), flags)
		idx.region.Write(off, hdr)
	}
}

// hello describes the backend's current RMA geometry for the client
// handshake.
func (b *Backend) hello() proto.HelloResp {
	idx := b.idx.Load()
	return proto.HelloResp{
		ConfigID:    b.configID.Load(),
		Shard:       b.Shard(),
		Buckets:     idx.geo.Buckets,
		Ways:        idx.geo.Ways,
		IndexWindow: idx.win.ID,
		IndexEpoch:  idx.epoch,
		DataWindows: b.data.Load().windowIDs(),
	}
}

// --------------------------------------------------------------- lookup --

// readBucketInto returns a zero-copy view of bucket's raw bytes, nil on
// any region error (treated as an empty bucket by callers). Aliasing is
// safe under the bucket's stripe lock: every writer of the bucket holds
// the same lock, and the index region's backing array is immutable for the
// region's lifetime (resizes build a whole new region).
func readBucketInto(idx *indexRegion, bucket int, _ *opBufs) []byte {
	raw, err := idx.region.View(idx.geo.BucketOffset(bucket), idx.geo.BucketSize())
	if err != nil {
		return nil
	}
	return raw
}

// rawFind scans a raw bucket for h without decoding every slot.
func rawFind(raw []byte, ways int, h hashring.KeyHash) (layout.IndexEntry, int, bool) {
	if raw == nil {
		return layout.IndexEntry{}, -1, false
	}
	for i := 0; i < ways; i++ {
		off := layout.BucketHeaderSize + i*layout.IndexEntrySize
		hi := binary.LittleEndian.Uint64(raw[off:])
		lo := binary.LittleEndian.Uint64(raw[off+8:])
		if hi == h.Hi && lo == h.Lo {
			e, err := layout.DecodeIndexEntry(raw[off:])
			if err != nil {
				return layout.IndexEntry{}, -1, false
			}
			return e, i, true
		}
	}
	return layout.IndexEntry{}, -1, false
}

// rawEmptySlot returns the first empty slot in a raw bucket.
func rawEmptySlot(raw []byte, ways int) (int, bool) {
	if raw == nil {
		return -1, false
	}
	for i := 0; i < ways; i++ {
		off := layout.BucketHeaderSize + i*layout.IndexEntrySize
		if binary.LittleEndian.Uint64(raw[off:]) == 0 && binary.LittleEndian.Uint64(raw[off+8:]) == 0 {
			return i, true
		}
	}
	return -1, false
}

// rawVictimSlot picks the occupied slot with the lowest VersionNumber.
func rawVictimSlot(raw []byte, ways int) (layout.IndexEntry, int, bool) {
	if raw == nil {
		return layout.IndexEntry{}, -1, false
	}
	best, found := -1, false
	var bestV truetime.Version
	for i := 0; i < ways; i++ {
		off := layout.BucketHeaderSize + i*layout.IndexEntrySize
		if binary.LittleEndian.Uint64(raw[off:]) == 0 && binary.LittleEndian.Uint64(raw[off+8:]) == 0 {
			continue
		}
		v := truetime.Version{
			Micros:   int64(binary.LittleEndian.Uint64(raw[off+16:])),
			ClientID: binary.LittleEndian.Uint64(raw[off+24:]),
			Seq:      binary.LittleEndian.Uint64(raw[off+32:]),
		}
		if !found || v.Less(bestV) {
			best, bestV, found = i, v, true
		}
	}
	if !found {
		return layout.IndexEntry{}, -1, false
	}
	e, err := layout.DecodeIndexEntry(raw[layout.BucketHeaderSize+best*layout.IndexEntrySize:])
	if err != nil {
		return layout.IndexEntry{}, -1, false
	}
	return e, best, true
}

// findEntry locates key's IndexEntry; the key's stripe lock must be held.
func (b *Backend) findEntry(idx *indexRegion, h hashring.KeyHash, bufs *opBufs) (bucket int, slot int, e layout.IndexEntry, ok bool) {
	bucket = int(h.Lo % uint64(idx.geo.Buckets))
	raw := readBucketInto(idx, bucket, bufs)
	e, slot, ok = rawFind(raw, idx.geo.Ways, h)
	return bucket, slot, e, ok
}

// readEntry materializes the DataEntry behind e.
func (b *Backend) readEntry(e layout.IndexEntry) (layout.DataEntry, error) {
	raw, err := b.reg.Read(e.Ptr.Window, int(e.Ptr.Offset), int(e.Ptr.Size))
	if err != nil {
		return layout.DataEntry{}, err
	}
	return layout.DecodeDataEntry(raw)
}

// localGet serves the RPC/MSG lookup path and repair reads.
func (b *Backend) localGet(key []byte) (value []byte, ver truetime.Version, found bool) {
	return b.localGetTraced(nil, key)
}

func (b *Backend) localGetTraced(sink *trace.SpanSink, key []byte) (value []byte, ver truetime.Version, found bool) {
	h := b.opt.Hash(key)
	s := b.stripeOf(h)
	s.ctr.gets.Add(1)
	b.noteHeat(key, h)
	bufs := bufPool.Get().(*opBufs)
	defer bufPool.Put(bufs)
	lockStripe(s, sink)
	defer s.unlock()
	if _, _, e, ok := b.findEntry(b.idx.Load(), h, bufs); ok {
		de, err := b.readEntry(e)
		if err == nil && string(de.Key) == string(key) {
			if val, merr := de.MaterializeValue(); merr == nil {
				return val, de.Version, true
			}
		}
	}
	if se, ok := s.side[string(key)]; ok {
		return append([]byte(nil), se.value...), se.version, true
	}
	return nil, truetime.Version{}, false
}

// ----------------------------------------------------------- tombstones --

// The tombstone cache stays global — its coarse summary bound (§5.2) is a
// whole-backend property (and TestTombstoneSummaryCoarseButConsistent pins
// that) — behind its own leaf mutex. Reads and drops first consult the
// atomic shadow state so that with no live tombstones (the common case)
// SETs never touch tombMu.

func (b *Backend) tombBound(key []byte) truetime.Version {
	if b.tombLive.Load() == 0 && !b.tombSummarySet.Load() {
		return truetime.Version{}
	}
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	return b.tomb.bound(key)
}

func (b *Backend) tombInsert(key []byte, v truetime.Version) {
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	b.tomb.insert(string(key), v)
	b.tombLive.Store(int64(b.tomb.len()))
	if !b.tomb.summary.Zero() {
		b.tombSummarySet.Store(true)
	}
}

func (b *Backend) tombDrop(key []byte) {
	if b.tombLive.Load() == 0 {
		return
	}
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	b.tomb.drop(key)
	b.tombLive.Store(int64(b.tomb.len()))
}

// tombSettled retires key's pending-settle tombstone after a repair sweep
// observed the erase cohort-settled at v (see tombstoneCache.settled).
func (b *Backend) tombSettled(key string, v truetime.Version) {
	if b.tombLive.Load() == 0 {
		return
	}
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	b.tomb.settled(key, v)
	b.tombLive.Store(int64(b.tomb.len()))
}

// tombPendingOverflow reports how many evicted tombstones fell out of the
// pending-settle queue into the coarse summary — each one consumed the
// bounded resurrection residual (tests, observability).
func (b *Backend) tombPendingOverflow() uint64 {
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	return b.tomb.overflow
}

// tombLen returns the cached tombstone count (tests).
func (b *Backend) tombLen() int {
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	return b.tomb.len()
}

// ------------------------------------------------------------- mutation --

// versionBoundRaw returns the threshold a mutation's version must exceed:
// the stored version when the key is resident (in raw's bucket or the side
// shard), else its tombstone bound (§5.2). The stripe lock is held.
func (b *Backend) versionBoundRaw(s *stripe, raw []byte, ways int, key []byte, h hashring.KeyHash) truetime.Version {
	if e, _, ok := rawFind(raw, ways, h); ok {
		return e.Version
	}
	if se, ok := s.side[string(key)]; ok {
		return se.version
	}
	return b.tombBound(key)
}

// writeEntry encodes and stores a DataEntry, compressing the value when
// configured and worthwhile, returning its pointer. Must be called with NO
// stripe lock held: allocation may evict, which locks a victim's stripe.
// The body is written in chunks — the §5.3 tearing window is real.
func (b *Backend) writeEntry(dr *dataRegion, bufs *opBufs, key, value []byte, v truetime.Version) (layout.Pointer, slab.Ref, int, int, error) {
	stored, compressed := value, false
	if b.opt.CompressThreshold > 0 && len(value) >= b.opt.CompressThreshold {
		stored, compressed = layout.CompressValue(value)
	}
	return b.writeStored(dr, bufs, key, stored, compressed, v)
}

// writeStored stores already-materialized entry bytes (used directly when
// relocating an entry whose stored form must be preserved). Returns the
// pointer, the slab ref, the encoded size, and the number of evictions the
// allocation performed.
func (b *Backend) writeStored(dr *dataRegion, bufs *opBufs, key, stored []byte, compressed bool, v truetime.Version) (layout.Pointer, slab.Ref, int, int, error) {
	need := layout.DataEntrySize(len(key), len(stored))
	ref, evictions, err := b.allocWithEviction(dr, need)
	if err != nil {
		return layout.Pointer{}, slab.Ref{}, need, evictions, err
	}
	buf := bufs.dataBuf(need)
	layout.EncodeDataEntryFlagged(buf, key, stored, v, compressed)
	if werr := dr.region.WriteChunked(ref.Offset, buf); werr != nil {
		dr.alloc.Free(ref, need)
		return layout.Pointer{}, slab.Ref{}, need, evictions, werr
	}
	return layout.Pointer{
		Window: dr.current().ID,
		Offset: uint64(ref.Offset),
		Size:   uint64(need),
	}, ref, need, evictions, nil
}

// allocWithEviction carves space, evicting under capacity conflicts and
// growing the data region at the §4.1 high watermark. No stripe lock may
// be held by the caller.
func (b *Backend) allocWithEviction(dr *dataRegion, need int) (slab.Ref, int, error) {
	evictions := 0
	for {
		ref, err := dr.alloc.Alloc(need)
		if err == nil {
			b.maybeGrow(dr)
			return ref, evictions, nil
		}
		if err != slab.ErrNoCapacity {
			return slab.Ref{}, evictions, err
		}
		// Prefer growth over eviction when reshaping is on and headroom
		// remains.
		if b.grow(dr) {
			continue
		}
		if !b.evictOne(false) {
			return slab.Ref{}, evictions, slab.ErrNoCapacity
		}
		evictions++
	}
}

// maybeGrow grows ahead of demand at the high watermark. Lock-free check;
// growth itself is serialized by the region's wmu.
func (b *Backend) maybeGrow(dr *dataRegion) {
	if !b.opt.ReshapeEnabled {
		return
	}
	pool := dr.alloc.PoolBytes()
	if pool > 0 && float64(dr.alloc.AllocatedBytes())/float64(pool) >= b.opt.GrowWatermark {
		b.grow(dr)
	}
}

// grow populates more of the reserved range and registers a new
// overlapping window (§4.1). Returns false at the ceiling or with
// reshaping disabled.
func (b *Backend) grow(dr *dataRegion) bool {
	if !b.opt.ReshapeEnabled {
		return false
	}
	dr.wmu.Lock()
	defer dr.wmu.Unlock()
	cur := dr.region.Populated()
	if cur >= b.opt.DataMaxBytes {
		return false
	}
	step := int(float64(cur) * b.opt.GrowStep)
	if step < b.opt.SlabBytes {
		step = b.opt.SlabBytes
	}
	if cur+step > b.opt.DataMaxBytes {
		step = b.opt.DataMaxBytes - cur
	}
	newPop := dr.region.Grow(step)
	grew := dr.alloc.Grow(newPop - cur)
	if grew <= 0 {
		return false
	}
	// Advertise a second, larger overlapping window; clients converge to
	// it over time. Old windows stay valid for existing pointers.
	w := b.reg.Register(dr.region, dr.windows[len(dr.windows)-1].Epoch+1)
	dr.windows = append(dr.windows, w)
	dr.cur.Store(w)
	b.stripes[0].ctr.dataGrows.Add(1)
	return true
}

// evictOne removes one policy-chosen victim (capacity conflict), trying
// stripes round-robin. Must be called with NO stripe lock held. Returns
// false if nothing is evictable.
func (b *Backend) evictOne(assoc bool) bool {
	start := b.evictCursor.Add(1)
	n := uint64(len(b.stripes))
	for i := uint64(0); i < n; i++ {
		s := &b.stripes[(start+i)%n]
		s.mu.Lock()
		key, ok := s.policy.Victim()
		if ok {
			b.removeKeyLocked(s, []byte(key))
			if assoc {
				s.ctr.assocEvictions.Add(1)
			} else {
				s.ctr.capacityEvictions.Add(1)
			}
			s.unlock()
			return true
		}
		s.unlock()
	}
	return false
}

// removeKeyLocked nullifies key's IndexEntry and frees its DataEntry; the
// key's stripe lock (s) is held. In-flight 2×R GETs may still complete
// against the old bytes; they are ordered-before the eviction (§4.2).
func (b *Backend) removeKeyLocked(s *stripe, key []byte) {
	h := b.opt.Hash(key)
	bufs := bufPool.Get().(*opBufs)
	idx := b.idx.Load()
	bucket, slot, e, ok := b.findEntry(idx, h, bufs)
	if ok {
		idx.region.Write(idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, zeroEntry)
		idx.used.Add(-1)
		b.data.Load().alloc.Free(slab.Ref{Offset: int(e.Ptr.Offset), Size: sizeClassOf(int(e.Ptr.Size))}, int(e.Ptr.Size))
	}
	delete(s.side, string(key))
	s.policy.RemoveBytes(key)
	bufPool.Put(bufs)
}

// defaultClasses is cached: sizeClassOf runs on every free/publish.
var defaultClasses = slab.DefaultSizeClasses()

// sizeClassOf recovers the slab class for an entry of encoded size n.
func sizeClassOf(n int) int {
	for _, c := range defaultClasses {
		if c >= n {
			return c
		}
	}
	return n
}

// ApplySet installs a KV pair directly (bulk loaders and tests); normal
// traffic arrives via the SET RPC handler.
func (b *Backend) ApplySet(key, value []byte, v truetime.Version) (applied bool, stored truetime.Version, evictions int) {
	return b.applySet(key, value, v)
}

// ApplyErase erases a key directly (model checking and tests); normal
// traffic arrives via the ERASE RPC handler.
func (b *Backend) ApplyErase(key []byte, v truetime.Version) (applied bool, stored truetime.Version) {
	return b.applyErase(key, v)
}

// ApplyCas compare-and-swaps directly (stress tests); normal traffic
// arrives via the CAS RPC handler.
func (b *Backend) ApplyCas(key, value []byte, expected, v truetime.Version) (applied bool, stored truetime.Version) {
	return b.applyCas(key, value, expected, v)
}

// applySet is the SET RPC's core (§3, §5.2): version-gated install with
// eviction under capacity and associativity conflicts.
//
// The striped flow is pre-check → unlock → allocate+write → relock →
// re-validate → publish: allocation can evict (locking other stripes) and
// performs the chunked body write, so it must not run under this key's
// stripe lock. The re-validation after relocking restores atomicity: if a
// concurrent mutation moved the version bound past v, the prepared entry
// is discarded exactly as if the first check had failed.
func (b *Backend) applySet(key, value []byte, v truetime.Version) (applied bool, stored truetime.Version, evictions int) {
	return b.applySetTraced(nil, key, value, v)
}

func (b *Backend) applySetTraced(sink *trace.SpanSink, key, value []byte, v truetime.Version) (applied bool, stored truetime.Version, evictions int) {
	h := b.opt.Hash(key)
	s := b.stripeOf(h)
	s.ctr.sets.Add(1)
	b.noteHeat(key, h)
	bufs := bufPool.Get().(*opBufs)
	defer bufPool.Put(bufs)

	for {
		lockStripe(s, sink)
		idx := b.idx.Load()
		ways := idx.geo.Ways
		bucket := int(h.Lo % uint64(idx.geo.Buckets))
		raw := readBucketInto(idx, bucket, bufs)
		bound := b.versionBoundRaw(s, raw, ways, key, h)
		if !bound.Less(v) {
			s.ctr.versionRejects.Add(1)
			s.unlock()
			return false, bound, evictions
		}
		dr := b.data.Load()
		s.unlock()

		// Allocate and write the DataEntry body with no stripe lock held.
		ptr, ref, need, ev, err := b.writeEntry(dr, bufs, key, value, v)
		evictions += ev
		if err != nil {
			return false, bound, evictions
		}

		lockStripe(s, sink)
		if b.data.Load() != dr {
			// A compact-restart swapped the data region underneath the
			// allocation; discard and redo against the new region.
			s.unlock()
			dr.alloc.Free(ref, need)
			continue
		}
		idx = b.idx.Load() // may have resized while unlocked
		ways = idx.geo.Ways
		bucket = int(h.Lo % uint64(idx.geo.Buckets))
		raw = readBucketInto(idx, bucket, bufs)

		// Re-validate: a concurrent mutation may have advanced the bound.
		bound2 := b.versionBoundRaw(s, raw, ways, key, h)
		if !bound2.Less(v) {
			s.unlock()
			dr.alloc.Free(ref, need)
			s.ctr.versionRejects.Add(1)
			return false, bound2, evictions
		}

		entryBuf := bufs.entry[:]
		layout.EncodeIndexEntry(entryBuf, layout.IndexEntry{Hash: h, Version: v, Ptr: ptr})
		slotOff := func(slot int) int {
			return idx.geo.BucketOffset(bucket) + layout.BucketHeaderSize + slot*layout.IndexEntrySize
		}

		overflowed := false
		if old, slot, exists := rawFind(raw, ways, h); exists {
			// Overwrite in place: the new pointer's publication is the
			// ordering point; then reclaim the old DataEntry.
			idx.region.Write(slotOff(slot), entryBuf)
			dr.alloc.Free(slab.Ref{Offset: int(old.Ptr.Offset), Size: sizeClassOf(int(old.Ptr.Size))}, int(old.Ptr.Size))
		} else if es, ok := rawEmptySlot(raw, ways); ok {
			idx.region.Write(slotOff(es), entryBuf)
			idx.used.Add(1)
		} else if b.opt.OverflowFallback {
			// Associativity conflict with RPC fallback: park in the side
			// shard and mark the bucket overflowed (§4.2).
			dr.alloc.Free(ref, need)
			s.side[string(key)] = sideEntry{value: append([]byte(nil), value...), version: v}
			b.setOverflowLocked(idx, bucket)
			s.ctr.overflows.Add(1)
			overflowed = true
		} else if victim, vs, vok := rawVictimSlot(raw, ways); vok {
			// Associativity conflict: evict the oldest-versioned entry in
			// this bucket (same stripe by construction) to admit the new.
			b.evictSlotLocked(s, idx, victim, bucket, vs)
			s.ctr.assocEvictions.Add(1)
			idx.region.Write(slotOff(vs), entryBuf)
			idx.used.Add(1)
		} else {
			s.unlock()
			dr.alloc.Free(ref, need)
			return false, bound2, evictions
		}

		s.policy.AddBytes(key)
		b.tombDrop(key)
		if !overflowed {
			delete(s.side, string(key))
		}
		s.ctr.setsApplied.Add(1)
		b.journalNote(key)
		b.persistNote(persist.OpSet, key, value, v)
		s.unlock()
		b.maybeResizeIndex()
		b.maybeCheckpoint()
		return true, v, evictions
	}
}

// evictSlotLocked removes the already-decoded entry at (bucket, slot); the
// bucket's stripe lock (s) is held.
func (b *Backend) evictSlotLocked(s *stripe, idx *indexRegion, e layout.IndexEntry, bucket, slot int) {
	if de, derr := b.readEntry(e); derr == nil {
		s.policy.RemoveBytes(de.Key)
	}
	idx.region.Write(idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, zeroEntry)
	idx.used.Add(-1)
	b.data.Load().alloc.Free(slab.Ref{Offset: int(e.Ptr.Offset), Size: sizeClassOf(int(e.Ptr.Size))}, int(e.Ptr.Size))
}

// readEntryQuarantining materializes the DataEntry behind e for a cohort
// scan or migration snapshot, where ALL stripe locks are held. Under
// lockAll no writer can be mid-body (publication of the index pointer
// happens after the body is fully written, under the stripe lock), so a
// checksum/decode failure here is durable §3 damage, not a §5.3 tear:
// the entry can never be served again, yet its index version would keep
// version-blocking repair settles at that version forever. Quarantine
// it — zero the slot and free the slab storage — so the cohort's repair
// sweep can re-install the authoritative bytes from a healthy replica
// (§5.4 convergence). Registry read errors are skipped without purging:
// they can be transient (e.g. a window revoked mid-reconfiguration).
func (b *Backend) readEntryQuarantining(idx *indexRegion, bucket, slot int, e layout.IndexEntry) (layout.DataEntry, bool) {
	raw, err := b.reg.Read(e.Ptr.Window, int(e.Ptr.Offset), int(e.Ptr.Size))
	if err != nil {
		return layout.DataEntry{}, false
	}
	de, err := layout.DecodeDataEntry(raw)
	if err != nil {
		idx.region.Write(idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, zeroEntry)
		idx.used.Add(-1)
		b.data.Load().alloc.Free(slab.Ref{Offset: int(e.Ptr.Offset), Size: sizeClassOf(int(e.Ptr.Size))}, int(e.Ptr.Size))
		b.stripes[0].ctr.corruptPurged.Add(1)
		return layout.DataEntry{}, false
	}
	return de, true
}

// setOverflowLocked marks bucket's header with the overflow flag; the
// bucket's stripe lock is held.
func (b *Backend) setOverflowLocked(idx *indexRegion, bucket int) {
	hdr := make([]byte, layout.BucketHeaderSize)
	layout.EncodeBucketHeader(hdr, b.stampID(), layout.OverflowFlag)
	idx.region.Write(idx.geo.BucketOffset(bucket), hdr)
}

// applyErase is the ERASE RPC's core (§5.2).
func (b *Backend) applyErase(key []byte, v truetime.Version) (applied bool, stored truetime.Version) {
	return b.applyEraseTraced(nil, key, v)
}

func (b *Backend) applyEraseTraced(sink *trace.SpanSink, key []byte, v truetime.Version) (applied bool, stored truetime.Version) {
	h := b.opt.Hash(key)
	s := b.stripeOf(h)
	s.ctr.erases.Add(1)
	b.noteHeat(key, h)
	bufs := bufPool.Get().(*opBufs)
	defer bufPool.Put(bufs)
	lockStripe(s, sink)
	defer s.unlock()
	idx := b.idx.Load()
	bucket := int(h.Lo % uint64(idx.geo.Buckets))
	raw := readBucketInto(idx, bucket, bufs)
	bound := b.versionBoundRaw(s, raw, idx.geo.Ways, key, h)
	if !bound.Less(v) {
		s.ctr.versionRejects.Add(1)
		return false, bound
	}
	if e, slot, ok := rawFind(raw, idx.geo.Ways, h); ok {
		idx.region.Write(idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, zeroEntry)
		idx.used.Add(-1)
		b.data.Load().alloc.Free(slab.Ref{Offset: int(e.Ptr.Offset), Size: sizeClassOf(int(e.Ptr.Size))}, int(e.Ptr.Size))
	}
	delete(s.side, string(key))
	s.policy.RemoveBytes(key)
	b.tombInsert(key, v)
	s.ctr.erasesApplied.Add(1)
	b.journalNote(key)
	b.persistNote(persist.OpErase, key, nil, v)
	b.maybeCheckpoint() // async; safe under the stripe lock
	return true, v
}

// applyCas is the CAS RPC's core (§5.2): install only when the stored
// version matches the expectation. The expectation is read under the
// stripe lock; applySet then re-gates on version monotonicity, so a racing
// mutation between the two phases can only cause a spurious CAS failure,
// never a lost update.
func (b *Backend) applyCas(key, value []byte, expected, v truetime.Version) (applied bool, stored truetime.Version) {
	return b.applyCasTraced(nil, key, value, expected, v)
}

func (b *Backend) applyCasTraced(sink *trace.SpanSink, key, value []byte, expected, v truetime.Version) (applied bool, stored truetime.Version) {
	h := b.opt.Hash(key)
	s := b.stripeOf(h)
	s.ctr.casOps.Add(1)
	b.noteHeat(key, h)
	bufs := bufPool.Get().(*opBufs)
	lockStripe(s, sink)
	idx := b.idx.Load()
	bucket := int(h.Lo % uint64(idx.geo.Buckets))
	raw := readBucketInto(idx, bucket, bufs)
	cur := b.versionBoundRaw(s, raw, idx.geo.Ways, key, h)
	if _, _, ok := rawFind(raw, idx.geo.Ways, h); !ok {
		if _, sideOK := s.side[string(key)]; !sideOK {
			// Key absent: CAS succeeds only against the zero version.
			cur = truetime.Version{}
			if t := b.tombBound(key); !t.Zero() {
				cur = t
			}
		}
	}
	s.unlock()
	bufPool.Put(bufs)

	if cur != expected {
		return false, cur
	}
	applied, stored, _ = b.applySetTraced(sink, key, value, v)
	if applied {
		s.ctr.casApplied.Add(1)
	}
	return applied, stored
}

// applyUpdateVersion rewrites key's stored version (repair step 2, §5.4).
func (b *Backend) applyUpdateVersion(key []byte, v truetime.Version) bool {
	h := b.opt.Hash(key)
	s := b.stripeOf(h)
	bufs := bufPool.Get().(*opBufs)
	defer bufPool.Put(bufs)

	s.mu.Lock()
	idx := b.idx.Load()
	_, _, e, ok := b.findEntry(idx, h, bufs)
	if !ok {
		if se, sok := s.side[string(key)]; sok && se.version.Less(v) {
			se.version = v
			s.side[string(key)] = se
			b.journalNote(key)
			b.persistNote(persist.OpSet, key, se.value, v)
			s.unlock()
			return true
		}
		s.unlock()
		return false
	}
	de, err := b.readEntry(e)
	if err != nil || string(de.Key) != string(key) || !e.Version.Less(v) {
		s.unlock()
		return false
	}
	stored := append([]byte(nil), de.Value...)
	compressed := de.Compressed
	dr := b.data.Load()
	s.unlock()

	// Re-encode at the new version with no stripe lock held (allocation
	// may evict), then re-validate and publish.
	ptr, ref, need, _, werr := b.writeStored(dr, bufs, key, stored, compressed, v)
	if werr != nil {
		return false
	}

	s.mu.Lock()
	defer s.unlock()
	if b.data.Load() != dr {
		dr.alloc.Free(ref, need)
		return false
	}
	idx = b.idx.Load()
	bucket, slot, old, ok := b.findEntry(idx, h, bufs)
	if !ok || !old.Version.Less(v) {
		// Concurrently erased, evicted, or superseded; discard.
		dr.alloc.Free(ref, need)
		return false
	}
	entryBuf := bufs.entry[:]
	layout.EncodeIndexEntry(entryBuf, layout.IndexEntry{Hash: h, Version: v, Ptr: ptr})
	idx.region.Write(idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, entryBuf)
	dr.alloc.Free(slab.Ref{Offset: int(old.Ptr.Offset), Size: sizeClassOf(int(old.Ptr.Size))}, int(old.Ptr.Size))
	b.journalNote(key)
	if val, merr := (layout.DataEntry{Value: stored, Compressed: compressed}).MaterializeValue(); merr == nil {
		b.persistNote(persist.OpSet, key, val, v)
	}
	return true
}

// ------------------------------------------------------------ reshaping --

// maybeResizeIndex upsizes the index past the target load factor (§4.1):
// build a new, larger index, repopulate it, revoke remote access to the
// original. All stripes are taken (mutations stall); client RMAs against
// the old window fail and retry via RPC, learning the new geometry.
func (b *Backend) maybeResizeIndex() {
	idx := b.idx.Load()
	capEntries := idx.geo.Buckets * idx.geo.Ways
	if float64(idx.used.Load())/float64(capEntries) < b.opt.MaxLoadFactor {
		return
	}
	b.lockAll()
	defer b.unlockAll()

	// Re-check under the locks: a concurrent mutation may have resized.
	oldIdx := b.idx.Load()
	capEntries = oldIdx.geo.Buckets * oldIdx.geo.Ways
	if float64(oldIdx.used.Load())/float64(capEntries) < b.opt.MaxLoadFactor {
		return
	}

	// Collect live entries once; rehash into progressively larger
	// geometries until every entry places (a target bucket can overflow
	// its ways, in which case we double again rather than drop data).
	var live []layout.IndexEntry
	for i := 0; i < oldIdx.geo.Buckets; i++ {
		raw, err := oldIdx.region.Read(oldIdx.geo.BucketOffset(i), oldIdx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, oldIdx.geo.Ways)
		if err != nil {
			continue
		}
		for _, e := range dec.Entries {
			if !e.Empty() {
				live = append(live, e)
			}
		}
	}

	entryBuf := make([]byte, layout.IndexEntrySize)
	buckets := oldIdx.geo.Buckets * 2
	var next *indexRegion
	for attempt := 0; attempt < 8; attempt++ {
		newGeo := layout.Geometry{Buckets: buckets, Ways: oldIdx.geo.Ways}
		candidate := b.newIndex(newGeo, oldIdx.epoch+1)
		ok := true
		for _, e := range live {
			nb := int(e.Hash.Lo % uint64(newGeo.Buckets))
			slot, found := emptySlotIn(candidate, nb)
			if !found {
				ok = false
				break
			}
			layout.EncodeIndexEntry(entryBuf, e)
			candidate.region.Write(newGeo.BucketOffset(nb)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, entryBuf)
		}
		if ok {
			next = candidate
			break
		}
		b.reg.Revoke(candidate.win.ID)
		buckets *= 2
	}
	if next == nil {
		return // pathological; keep the old index rather than lose data
	}
	next.used.Store(int64(len(live)))
	b.idx.Store(next)
	b.reg.Revoke(oldIdx.win.ID)
	b.stripes[0].ctr.indexResizes.Add(1)
}

func emptySlotIn(idx *indexRegion, bucket int) (int, bool) {
	raw, err := idx.region.Read(idx.geo.BucketOffset(bucket), idx.geo.BucketSize())
	if err != nil {
		return -1, false
	}
	dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
	if err != nil {
		return -1, false
	}
	for i, e := range dec.Entries {
		if e.Empty() {
			return i, true
		}
	}
	return -1, false
}

// CompactRestart models the paper's non-disruptive restart downsizing:
// rebuild the data region sized to current usage (plus slack), preserving
// contents. Used by the Figure 3 harness when the corpus shrinks.
func (b *Backend) CompactRestart(slack float64) {
	type kv struct {
		key, value []byte
		v          truetime.Version
	}
	b.lockAll()
	idx := b.idx.Load()
	var items []kv
	for i := 0; i < idx.geo.Buckets; i++ {
		raw, err := idx.region.Read(idx.geo.BucketOffset(i), idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
		if err != nil {
			continue
		}
		for _, e := range dec.Entries {
			if e.Empty() {
				continue
			}
			de, derr := b.readEntry(e)
			if derr != nil {
				continue
			}
			val, merr := de.MaterializeValue()
			if merr != nil {
				continue
			}
			items = append(items, kv{append([]byte(nil), de.Key...), val, de.Version})
		}
	}
	// Size the new pool to fit current usage plus slack.
	var need int
	for _, it := range items {
		need += sizeClassOf(layout.DataEntrySize(len(it.key), len(it.value)))
	}
	newBytes := int(float64(need) * (1 + slack))
	if newBytes < b.opt.SlabBytes*2 {
		newBytes = b.opt.SlabBytes * 2
	}
	newBytes = (newBytes/b.opt.SlabBytes + 1) * b.opt.SlabBytes
	if newBytes > b.opt.DataMaxBytes {
		newBytes = b.opt.DataMaxBytes
	}
	oldData := b.data.Load()
	for _, w := range oldData.windowIDs() {
		b.reg.Revoke(w)
	}
	region := rmem.NewRegion(newBytes, b.opt.DataMaxBytes)
	alloc, err := slab.New(newBytes, b.opt.SlabBytes, nil)
	if err != nil {
		b.unlockAll()
		return
	}
	dr := &dataRegion{region: region, alloc: alloc}
	dr.windows = []*rmem.Window{b.reg.Register(region, 1)}
	dr.cur.Store(dr.windows[0])
	b.data.Store(dr)

	// Rebuild a fresh index at the same geometry and reinstall entries.
	b.reg.Revoke(idx.win.ID)
	b.idx.Store(b.newIndex(idx.geo, idx.epoch+1))
	b.unlockAll()

	for _, it := range items {
		b.applySet(it.key, it.value, it.v)
	}
}

// Items snapshots all resident KV pairs of a shard (or every shard with
// shard < 0) — the migration and cohort-scan source.
func (b *Backend) Items(shard, shards int) []proto.MigrateItem {
	b.lockAll()
	defer b.unlockAll()
	idx := b.idx.Load()
	var out []proto.MigrateItem
	for i := 0; i < idx.geo.Buckets; i++ {
		raw, err := idx.region.Read(idx.geo.BucketOffset(i), idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
		if err != nil {
			continue
		}
		for slot, e := range dec.Entries {
			if e.Empty() {
				continue
			}
			if shard >= 0 && shards > 0 && int(e.Hash.Hi%uint64(shards)) != shard {
				continue
			}
			de, ok := b.readEntryQuarantining(idx, i, slot, e)
			if !ok {
				continue
			}
			val, merr := de.MaterializeValue()
			if merr != nil {
				continue
			}
			out = append(out, proto.MigrateItem{
				Key:     append([]byte(nil), de.Key...),
				Value:   val,
				Version: de.Version,
			})
		}
	}
	for i := range b.stripes {
		for k, se := range b.stripes[i].side {
			h := b.opt.Hash([]byte(k))
			if shard >= 0 && shards > 0 && int(h.Hi%uint64(shards)) != shard {
				continue
			}
			out = append(out, proto.MigrateItem{Key: []byte(k), Value: append([]byte(nil), se.value...), Version: se.version})
		}
	}
	return out
}

// Len returns the resident entry count.
func (b *Backend) Len() int {
	n := int(b.idx.Load().used.Load())
	for i := range b.stripes {
		s := &b.stripes[i]
		s.mu.Lock()
		n += len(s.side)
		s.unlock()
	}
	return n
}

// Seal marks the corpus immutable (§6.4, R=2/Immutable): client-facing
// mutations are rejected from now on. Repair and migration paths remain
// open — they preserve, rather than change, the corpus.
func (b *Backend) Seal() { b.sealed.Store(true) }

// Sealed reports whether client mutations are rejected.
func (b *Backend) Sealed() bool { return b.sealed.Load() }

// IngestTouches feeds batched access records to the eviction policy
// (§4.2). Each key is routed to its stripe's policy.
func (b *Backend) IngestTouches(keys [][]byte) {
	for _, k := range keys {
		h := b.opt.Hash(k)
		s := b.stripeOf(h)
		s.mu.Lock()
		s.policy.TouchBytes(k)
		s.unlock()
		s.ctr.touches.Add(1)
		// Touch batches carry the keys of one-sided RMA GETs the backend
		// never executes — without this feed, RMA-heavy hot keys would be
		// invisible to heat telemetry.
		b.noteHeat(k, h)
	}
}

// rpcClient builds the backend's outbound RPC identity (repairs,
// migrations).
func (b *Backend) rpcClient() *rpc.Client {
	return b.net.Client(b.opt.HostID, fmt.Sprintf("backend-%s", b.opt.Addr))
}

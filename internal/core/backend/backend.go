// Package backend implements a CliqueMap backend task (§4): the
// RMA-accessible index and data regions, and the RPC handlers that own all
// mutation — SET/ERASE/CAS with version monotonicity, eviction under
// capacity and associativity conflicts, access-record ingestion for
// recency policies, index resizing, data-region reshaping, cohort
// scanning, quorum repair, and warm-spare migration.
//
// The division of labour is the paper's core idea: GETs never run backend
// code (they are served by the NIC out of registered memory), so
// everything here can be straightforward locked Go — and the self-
// validating formats in internal/core/layout make it safe for this code to
// rearrange memory underneath in-flight RMAs, because any client that
// observes an intermediate state fails validation and retries.
package backend

import (
	"fmt"
	"sync"

	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/eviction"
	"cliquemap/internal/hashring"
	"cliquemap/internal/rmem"
	"cliquemap/internal/rpc"
	"cliquemap/internal/slab"
	"cliquemap/internal/stats"
	"cliquemap/internal/truetime"
)

// Options configures one backend task.
type Options struct {
	Shard  int    // primary shard served; -1 for an idle spare
	HostID int    // fabric host
	Addr   string // RPC address

	Geometry     layout.Geometry // initial index shape
	DataBytes    int             // initially populated data-region bytes
	DataMaxBytes int             // reserved ceiling for reshaping
	SlabBytes    int             // slab size for the data allocator

	Policy           string  // eviction policy name (internal/eviction)
	MaxLoadFactor    float64 // index resize trigger (§4.1)
	GrowWatermark    float64 // data-region growth trigger (§4.1)
	GrowStep         float64 // fraction of current size to grow by
	OverflowFallback bool    // RPC side-table on bucket overflow (§4.2)
	TombstoneCap     int     // tombstone cache capacity (§5.2)
	ReshapeEnabled   bool    // false = paper's "pre-allocate for peak" baseline
	// CompressThreshold enables DEFLATE compression of values at least
	// this many bytes (0 disables) — one of the post-launch features §9
	// credits to keeping mutations on RPC.
	CompressThreshold int
	// Hash overrides the key hash (§6.5 added customizable hash functions
	// for disaggregation users). Must match the clients'; nil means
	// hashring.DefaultHash.
	Hash hashring.HashFunc
}

func (o Options) withDefaults() Options {
	if o.Hash == nil {
		o.Hash = hashring.DefaultHash
	}
	if o.Geometry.Buckets == 0 {
		o.Geometry = layout.Geometry{Buckets: 256, Ways: layout.DefaultWays}
	}
	if o.Geometry.Ways == 0 {
		o.Geometry.Ways = layout.DefaultWays
	}
	if o.DataBytes == 0 {
		o.DataBytes = 4 << 20
	}
	if o.DataMaxBytes < o.DataBytes {
		o.DataMaxBytes = o.DataBytes * 16
	}
	if o.SlabBytes == 0 {
		o.SlabBytes = 256 << 10
	}
	if o.MaxLoadFactor == 0 {
		o.MaxLoadFactor = 0.70
	}
	if o.GrowWatermark == 0 {
		o.GrowWatermark = 0.85
	}
	if o.GrowStep == 0 {
		o.GrowStep = 0.5
	}
	if o.TombstoneCap == 0 {
		o.TombstoneCap = 8192
	}
	return o
}

// Counters aggregates the backend's observable behaviour.
type Counters struct {
	Sets, SetsApplied     uint64
	Erases, ErasesApplied uint64
	CasOps, CasApplied    uint64
	Gets                  uint64
	VersionRejects        uint64
	CapacityEvictions     uint64
	AssocEvictions        uint64
	Overflows             uint64
	Touches               uint64
	IndexResizes          uint64
	DataGrows             uint64
	RepairsIssued         uint64
}

// indexRegion is the current RMA-accessible index.
type indexRegion struct {
	geo    layout.Geometry
	region *rmem.Region
	win    *rmem.Window
	epoch  uint64
	used   int // occupied IndexEntries
}

// dataRegion is the slab-managed DataEntry pool.
type dataRegion struct {
	region  *rmem.Region
	windows []*rmem.Window // all live windows, oldest first
	alloc   *slab.Allocator
}

func (d *dataRegion) current() *rmem.Window { return d.windows[len(d.windows)-1] }

// sideEntry is an overflowed KV pair reachable only via RPC (§4.2).
type sideEntry struct {
	value   []byte
	version truetime.Version
}

// Backend is one CliqueMap backend task.
type Backend struct {
	opt   Options
	store *config.Store
	reg   *rmem.Registry
	gen   *truetime.Generator
	net   *rpc.Network
	srv   *rpc.Server
	acct  *stats.CPUAccount

	mu       sync.Mutex
	shard    int
	spare    bool
	sealed   bool
	configID uint64
	idx      *indexRegion
	data     *dataRegion
	policy   eviction.Policy
	tomb     *tombstoneCache
	side     map[string]sideEntry
	scratch  []byte
	ctr      Counters
}

// New builds and registers a backend task: its memory regions, RMA
// windows, and RPC service. The same registry must be attached to the
// host's NIC so inbound RMAs can be served.
func New(opt Options, store *config.Store, reg *rmem.Registry, net *rpc.Network, gen *truetime.Generator, acct *stats.CPUAccount) (*Backend, error) {
	opt = opt.withDefaults()
	if err := opt.Geometry.Validate(); err != nil {
		return nil, err
	}
	b := &Backend{
		opt:   opt,
		store: store,
		reg:   reg,
		gen:   gen,
		net:   net,
		acct:  acct,
		shard: opt.Shard,
		spare: opt.Shard < 0,
		side:  make(map[string]sideEntry),
		tomb:  newTombstoneCache(opt.TombstoneCap),
	}
	pol, err := eviction.New(opt.Policy, opt.Geometry.Buckets*opt.Geometry.Ways)
	if err != nil {
		return nil, err
	}
	b.policy = pol
	if store != nil {
		b.configID = store.Get().ID
	}

	b.idx = b.newIndex(opt.Geometry, 1)

	dataBytes := opt.DataBytes
	if !opt.ReshapeEnabled {
		dataBytes = opt.DataMaxBytes // pre-allocate for peak (the baseline)
	}
	region := rmem.NewRegion(dataBytes, opt.DataMaxBytes)
	alloc, err := slab.New(dataBytes, opt.SlabBytes, nil)
	if err != nil {
		return nil, fmt.Errorf("backend: data allocator: %w", err)
	}
	b.data = &dataRegion{region: region, alloc: alloc}
	b.data.windows = []*rmem.Window{reg.Register(region, 1)}

	b.srv = net.Serve(opt.Addr, opt.HostID)
	b.registerHandlers()
	return b, nil
}

// newIndex builds a zeroed index region with configID-stamped buckets.
func (b *Backend) newIndex(geo layout.Geometry, epoch uint64) *indexRegion {
	region := rmem.NewRegion(geo.RegionBytes(), geo.RegionBytes())
	hdr := make([]byte, layout.BucketHeaderSize)
	for i := 0; i < geo.Buckets; i++ {
		layout.EncodeBucketHeader(hdr, b.configID, 0)
		region.Write(geo.BucketOffset(i), hdr)
	}
	return &indexRegion{geo: geo, region: region, win: b.reg.Register(region, epoch), epoch: epoch}
}

// Addr returns the RPC address.
func (b *Backend) Addr() string { return b.opt.Addr }

// HostID returns the fabric host.
func (b *Backend) HostID() int { return b.opt.HostID }

// Shard returns the currently served shard (-1 for idle spare).
func (b *Backend) Shard() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shard
}

// Server exposes the RPC server (for Stop/Start fault injection).
func (b *Backend) Server() *rpc.Server { return b.srv }

// CountersSnapshot returns a copy of the counters.
func (b *Backend) CountersSnapshot() Counters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ctr
}

// MemoryBytes reports the backend's populated DRAM footprint: index region
// plus populated data region — the Figure 3 metric.
func (b *Backend) MemoryBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.idx.geo.RegionBytes() + b.data.region.Populated()
}

// DataUtilization returns allocated/populated for the data region.
func (b *Backend) DataUtilization() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.data.alloc.Stats()
	if st.PoolBytes == 0 {
		return 0
	}
	return float64(st.AllocatedBytes) / float64(st.PoolBytes)
}

// SetConfigID restamps every bucket header with the new configuration ID.
// Clients holding the old ID fail validation on their next GET and refresh
// (§6.1).
func (b *Backend) SetConfigID(id uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.configID = id
	b.restampLocked()
}

func (b *Backend) restampLocked() {
	hdr := make([]byte, layout.BucketHeaderSize)
	for i := 0; i < b.idx.geo.Buckets; i++ {
		off := b.idx.geo.BucketOffset(i)
		cur, err := b.idx.region.Read(off, layout.BucketHeaderSize)
		if err != nil {
			continue
		}
		flags := uint64(0)
		if len(cur) >= layout.BucketHeaderSize {
			dec, derr := layout.DecodeBucket(append(cur, make([]byte, b.idx.geo.BucketSize()-layout.BucketHeaderSize)...), b.idx.geo.Ways)
			if derr == nil {
				flags = dec.Flags
			}
		}
		layout.EncodeBucketHeader(hdr, b.configID, flags)
		b.idx.region.Write(off, hdr)
	}
}

// hello describes the backend's current RMA geometry for the client
// handshake.
func (b *Backend) hello() proto.HelloResp {
	b.mu.Lock()
	defer b.mu.Unlock()
	wins := make([]rmem.WindowID, len(b.data.windows))
	for i, w := range b.data.windows {
		wins[i] = w.ID
	}
	return proto.HelloResp{
		ConfigID:    b.configID,
		Shard:       b.shard,
		Buckets:     b.idx.geo.Buckets,
		Ways:        b.idx.geo.Ways,
		IndexWindow: b.idx.win.ID,
		IndexEpoch:  b.idx.epoch,
		DataWindows: wins,
	}
}

// --------------------------------------------------------------- lookup --

// findEntryLocked locates key's IndexEntry, returning its bucket, slot and
// decoded form.
func (b *Backend) findEntryLocked(h hashring.KeyHash) (bucket int, slot int, e layout.IndexEntry, ok bool) {
	bucket = int(h.Lo % uint64(b.idx.geo.Buckets))
	raw, err := b.idx.region.Read(b.idx.geo.BucketOffset(bucket), b.idx.geo.BucketSize())
	if err != nil {
		return bucket, -1, layout.IndexEntry{}, false
	}
	dec, err := layout.DecodeBucket(raw, b.idx.geo.Ways)
	if err != nil {
		return bucket, -1, layout.IndexEntry{}, false
	}
	e, slot, ok = dec.Find(h)
	return bucket, slot, e, ok
}

// readEntryLocked materializes the DataEntry behind e.
func (b *Backend) readEntryLocked(e layout.IndexEntry) (layout.DataEntry, error) {
	raw, err := b.reg.Read(e.Ptr.Window, int(e.Ptr.Offset), int(e.Ptr.Size))
	if err != nil {
		return layout.DataEntry{}, err
	}
	return layout.DecodeDataEntry(raw)
}

// localGet serves the RPC/MSG lookup path and repair reads.
func (b *Backend) localGet(key []byte) (value []byte, ver truetime.Version, found bool) {
	h := b.opt.Hash(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ctr.Gets++
	if _, _, e, ok := b.findEntryLocked(h); ok {
		de, err := b.readEntryLocked(e)
		if err == nil && string(de.Key) == string(key) {
			if val, merr := de.MaterializeValue(); merr == nil {
				return val, de.Version, true
			}
		}
	}
	if se, ok := b.side[string(key)]; ok {
		return append([]byte(nil), se.value...), se.version, true
	}
	return nil, truetime.Version{}, false
}

// ------------------------------------------------------------- mutation --

// versionBoundLocked returns the threshold a mutation's version must
// exceed: the stored version when the key is resident, else its tombstone
// bound (§5.2).
func (b *Backend) versionBoundLocked(key []byte, h hashring.KeyHash) truetime.Version {
	if _, _, e, ok := b.findEntryLocked(h); ok {
		return e.Version
	}
	if se, ok := b.side[string(key)]; ok {
		return se.version
	}
	return b.tomb.bound(string(key))
}

// writeEntryLocked encodes and stores a DataEntry, compressing the value
// when configured and worthwhile, returning its pointer. The body is
// written in chunks — the §5.3 tearing window is real.
func (b *Backend) writeEntryLocked(key, value []byte, v truetime.Version) (layout.Pointer, slab.Ref, error) {
	stored, compressed := value, false
	if b.opt.CompressThreshold > 0 && len(value) >= b.opt.CompressThreshold {
		stored, compressed = layout.CompressValue(value)
	}
	return b.writeStoredLocked(key, stored, compressed, v)
}

// writeStoredLocked stores already-materialized entry bytes (used directly
// when relocating an entry whose stored form must be preserved).
func (b *Backend) writeStoredLocked(key, stored []byte, compressed bool, v truetime.Version) (layout.Pointer, slab.Ref, error) {
	need := layout.DataEntrySize(len(key), len(stored))
	ref, err := b.allocLocked(need)
	if err != nil {
		return layout.Pointer{}, slab.Ref{}, err
	}
	if cap(b.scratch) < need {
		b.scratch = make([]byte, need*2)
	}
	buf := b.scratch[:need]
	layout.EncodeDataEntryFlagged(buf, key, stored, v, compressed)
	if err := b.data.region.WriteChunked(ref.Offset, buf); err != nil {
		b.data.alloc.Free(ref, need)
		return layout.Pointer{}, slab.Ref{}, err
	}
	return layout.Pointer{
		Window: b.data.current().ID,
		Offset: uint64(ref.Offset),
		Size:   uint64(need),
	}, ref, nil
}

// allocLocked carves space, evicting under capacity conflicts and growing
// the data region at the §4.1 high watermark.
func (b *Backend) allocLocked(need int) (slab.Ref, error) {
	for {
		ref, err := b.data.alloc.Alloc(need)
		if err == nil {
			b.maybeGrowLocked()
			return ref, nil
		}
		if err != slab.ErrNoCapacity {
			return slab.Ref{}, err
		}
		// Prefer growth over eviction when reshaping is on and headroom
		// remains.
		if b.growLocked() {
			continue
		}
		if !b.evictOneLocked(false) {
			return slab.Ref{}, slab.ErrNoCapacity
		}
	}
}

// maybeGrowLocked grows ahead of demand at the high watermark.
func (b *Backend) maybeGrowLocked() {
	if !b.opt.ReshapeEnabled {
		return
	}
	st := b.data.alloc.Stats()
	if st.PoolBytes > 0 && float64(st.AllocatedBytes)/float64(st.PoolBytes) >= b.opt.GrowWatermark {
		b.growLocked()
	}
}

// growLocked populates more of the reserved range and registers a new
// overlapping window (§4.1). Returns false at the ceiling or with
// reshaping disabled.
func (b *Backend) growLocked() bool {
	if !b.opt.ReshapeEnabled {
		return false
	}
	cur := b.data.region.Populated()
	if cur >= b.opt.DataMaxBytes {
		return false
	}
	step := int(float64(cur) * b.opt.GrowStep)
	if step < b.opt.SlabBytes {
		step = b.opt.SlabBytes
	}
	if cur+step > b.opt.DataMaxBytes {
		step = b.opt.DataMaxBytes - cur
	}
	newPop := b.data.region.Grow(step)
	grew := b.data.alloc.Grow(newPop - cur)
	if grew <= 0 {
		return false
	}
	// Advertise a second, larger overlapping window; clients converge to
	// it over time. Old windows stay valid for existing pointers.
	w := b.reg.Register(b.data.region, b.data.current().Epoch+1)
	b.data.windows = append(b.data.windows, w)
	b.ctr.DataGrows++
	return true
}

// evictOneLocked removes one policy-chosen victim anywhere in the pool
// (capacity conflict) or, with assoc=true, the caller handles bucket
// choice itself. Returns false if nothing is evictable.
func (b *Backend) evictOneLocked(assoc bool) bool {
	key, ok := b.policy.Victim()
	if !ok {
		return false
	}
	b.removeKeyLocked([]byte(key))
	if assoc {
		b.ctr.AssocEvictions++
	} else {
		b.ctr.CapacityEvictions++
	}
	return true
}

// removeKeyLocked nullifies key's IndexEntry and frees its DataEntry.
// In-flight 2×R GETs may still complete against the old bytes; they are
// ordered-before the eviction (§4.2).
func (b *Backend) removeKeyLocked(key []byte) {
	h := b.opt.Hash(key)
	bucket, slot, e, ok := b.findEntryLocked(h)
	if ok {
		empty := make([]byte, layout.IndexEntrySize)
		b.idx.region.Write(b.idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, empty)
		b.idx.used--
		b.data.alloc.Free(slab.Ref{Offset: int(e.Ptr.Offset), Size: sizeClassOf(int(e.Ptr.Size))}, int(e.Ptr.Size))
	}
	delete(b.side, string(key))
	b.policy.Remove(string(key))
}

// sizeClassOf recovers the slab class for an entry of encoded size n.
func sizeClassOf(n int) int {
	for _, c := range slab.DefaultSizeClasses() {
		if c >= n {
			return c
		}
	}
	return n
}

// ApplySet installs a KV pair directly (bulk loaders and tests); normal
// traffic arrives via the SET RPC handler.
func (b *Backend) ApplySet(key, value []byte, v truetime.Version) (applied bool, stored truetime.Version, evictions int) {
	return b.applySet(key, value, v)
}

// applySet is the SET RPC's core (§3, §5.2): version-gated install with
// eviction under capacity and associativity conflicts.
func (b *Backend) applySet(key, value []byte, v truetime.Version) (applied bool, stored truetime.Version, evictions int) {
	h := b.opt.Hash(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ctr.Sets++

	bound := b.versionBoundLocked(key, h)
	if !bound.Less(v) {
		b.ctr.VersionRejects++
		return false, bound, 0
	}

	before := b.ctr.CapacityEvictions + b.ctr.AssocEvictions

	ptr, ref, err := b.writeEntryLocked(key, value, v)
	if err != nil {
		return false, bound, int(b.ctr.CapacityEvictions + b.ctr.AssocEvictions - before)
	}

	bucket, slot, old, exists := b.findEntryLocked(h)
	entryBuf := make([]byte, layout.IndexEntrySize)
	layout.EncodeIndexEntry(entryBuf, layout.IndexEntry{Hash: h, Version: v, Ptr: ptr})

	overflowed := false
	if exists {
		// Overwrite in place: the new pointer's publication is the
		// ordering point; then reclaim the old DataEntry.
		b.idx.region.Write(b.idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, entryBuf)
		b.data.alloc.Free(slab.Ref{Offset: int(old.Ptr.Offset), Size: sizeClassOf(int(old.Ptr.Size))}, int(old.Ptr.Size))
	} else if s, ok := b.emptySlotLocked(bucket); ok {
		b.idx.region.Write(b.idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+s*layout.IndexEntrySize, entryBuf)
		b.idx.used++
	} else if b.opt.OverflowFallback {
		// Associativity conflict with RPC fallback: park in the side
		// table and mark the bucket overflowed (§4.2).
		b.data.alloc.Free(ref, layout.DataEntrySize(len(key), len(value)))
		b.side[string(key)] = sideEntry{value: append([]byte(nil), value...), version: v}
		b.setOverflowLocked(bucket)
		b.ctr.Overflows++
		overflowed = true
	} else {
		// Associativity conflict: evict the oldest-versioned entry in
		// this bucket to admit the new one.
		if vs, vok := b.bucketVictimLocked(bucket); vok {
			b.evictSlotLocked(bucket, vs)
			b.ctr.AssocEvictions++
			b.idx.region.Write(b.idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+vs*layout.IndexEntrySize, entryBuf)
			b.idx.used++
		} else {
			b.data.alloc.Free(ref, layout.DataEntrySize(len(key), len(value)))
			return false, bound, int(b.ctr.CapacityEvictions + b.ctr.AssocEvictions - before)
		}
	}

	b.policy.Add(string(key))
	b.tomb.drop(string(key))
	if !overflowed {
		delete(b.side, string(key))
	}
	b.ctr.SetsApplied++
	b.maybeResizeIndexLocked()
	return true, v, int(b.ctr.CapacityEvictions + b.ctr.AssocEvictions - before)
}

func (b *Backend) emptySlotLocked(bucket int) (int, bool) {
	raw, err := b.idx.region.Read(b.idx.geo.BucketOffset(bucket), b.idx.geo.BucketSize())
	if err != nil {
		return -1, false
	}
	dec, err := layout.DecodeBucket(raw, b.idx.geo.Ways)
	if err != nil {
		return -1, false
	}
	for i, e := range dec.Entries {
		if e.Empty() {
			return i, true
		}
	}
	return -1, false
}

// bucketVictimLocked picks the slot with the lowest VersionNumber.
func (b *Backend) bucketVictimLocked(bucket int) (int, bool) {
	raw, err := b.idx.region.Read(b.idx.geo.BucketOffset(bucket), b.idx.geo.BucketSize())
	if err != nil {
		return -1, false
	}
	dec, err := layout.DecodeBucket(raw, b.idx.geo.Ways)
	if err != nil {
		return -1, false
	}
	best, found := -1, false
	var bestV truetime.Version
	for i, e := range dec.Entries {
		if e.Empty() {
			continue
		}
		if !found || e.Version.Less(bestV) {
			best, bestV, found = i, e.Version, true
		}
	}
	return best, found
}

// evictSlotLocked removes the entry at (bucket, slot).
func (b *Backend) evictSlotLocked(bucket, slot int) {
	off := b.idx.geo.BucketOffset(bucket) + layout.BucketHeaderSize + slot*layout.IndexEntrySize
	raw, err := b.idx.region.Read(off, layout.IndexEntrySize)
	if err != nil {
		return
	}
	e, err := layout.DecodeIndexEntry(raw)
	if err != nil || e.Empty() {
		return
	}
	if de, derr := b.readEntryLocked(e); derr == nil {
		b.policy.Remove(string(de.Key))
	}
	empty := make([]byte, layout.IndexEntrySize)
	b.idx.region.Write(off, empty)
	b.idx.used--
	b.data.alloc.Free(slab.Ref{Offset: int(e.Ptr.Offset), Size: sizeClassOf(int(e.Ptr.Size))}, int(e.Ptr.Size))
}

func (b *Backend) setOverflowLocked(bucket int) {
	off := b.idx.geo.BucketOffset(bucket)
	hdr := make([]byte, layout.BucketHeaderSize)
	layout.EncodeBucketHeader(hdr, b.configID, layout.OverflowFlag)
	b.idx.region.Write(off, hdr)
}

// ApplyErase erases a key directly (model checking and tests); normal
// traffic arrives via the ERASE RPC handler.
func (b *Backend) ApplyErase(key []byte, v truetime.Version) (applied bool, stored truetime.Version) {
	return b.applyErase(key, v)
}

// applyErase is the ERASE RPC's core (§5.2).
func (b *Backend) applyErase(key []byte, v truetime.Version) (applied bool, stored truetime.Version) {
	h := b.opt.Hash(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ctr.Erases++
	bound := b.versionBoundLocked(key, h)
	if !bound.Less(v) {
		b.ctr.VersionRejects++
		return false, bound
	}
	b.removeKeyLocked(key)
	b.tomb.insert(string(key), v)
	b.ctr.ErasesApplied++
	return true, v
}

// applyCas is the CAS RPC's core (§5.2): install only when the stored
// version matches the expectation.
func (b *Backend) applyCas(key, value []byte, expected, v truetime.Version) (applied bool, stored truetime.Version) {
	h := b.opt.Hash(key)
	b.mu.Lock()
	cur := b.versionBoundLocked(key, h)
	if _, _, _, ok := b.findEntryLocked(h); !ok {
		if _, sideOK := b.side[string(key)]; !sideOK {
			// Key absent: CAS succeeds only against the zero version.
			cur = truetime.Version{}
			if t := b.tomb.bound(string(key)); !t.Zero() {
				cur = t
			}
		}
	}
	b.ctr.CasOps++
	b.mu.Unlock()

	if cur != expected {
		return false, cur
	}
	applied, stored, _ = b.applySet(key, value, v)
	if applied {
		b.mu.Lock()
		b.ctr.CasApplied++
		b.mu.Unlock()
	}
	return applied, stored
}

// applyUpdateVersion rewrites key's stored version (repair step 2, §5.4).
func (b *Backend) applyUpdateVersion(key []byte, v truetime.Version) bool {
	h := b.opt.Hash(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, _, e, ok := b.findEntryLocked(h); ok {
		de, err := b.readEntryLocked(e)
		if err != nil || string(de.Key) != string(key) {
			return false
		}
		if !e.Version.Less(v) {
			return false
		}
		stored := append([]byte(nil), de.Value...)
		ptr, _, werr := b.writeStoredLocked(key, stored, de.Compressed, v)
		if werr != nil {
			return false
		}
		bucket, slot, old, _ := b.findEntryLocked(h)
		buf := make([]byte, layout.IndexEntrySize)
		layout.EncodeIndexEntry(buf, layout.IndexEntry{Hash: h, Version: v, Ptr: ptr})
		b.idx.region.Write(b.idx.geo.BucketOffset(bucket)+layout.BucketHeaderSize+slot*layout.IndexEntrySize, buf)
		b.data.alloc.Free(slab.Ref{Offset: int(old.Ptr.Offset), Size: sizeClassOf(int(old.Ptr.Size))}, int(old.Ptr.Size))
		return true
	}
	if se, ok := b.side[string(key)]; ok && se.version.Less(v) {
		se.version = v
		b.side[string(key)] = se
		return true
	}
	return false
}

// ------------------------------------------------------------ reshaping --

// maybeResizeIndexLocked upsizes the index past the target load factor
// (§4.1): build a new, larger index, repopulate it, revoke remote access
// to the original. Mutations stall (we hold the lock); client RMAs against
// the old window fail and retry via RPC, learning the new geometry.
func (b *Backend) maybeResizeIndexLocked() {
	capEntries := b.idx.geo.Buckets * b.idx.geo.Ways
	if float64(b.idx.used)/float64(capEntries) < b.opt.MaxLoadFactor {
		return
	}
	oldIdx := b.idx

	// Collect live entries once; rehash into progressively larger
	// geometries until every entry places (a target bucket can overflow
	// its ways, in which case we double again rather than drop data).
	var live []layout.IndexEntry
	for i := 0; i < oldIdx.geo.Buckets; i++ {
		raw, err := oldIdx.region.Read(oldIdx.geo.BucketOffset(i), oldIdx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, oldIdx.geo.Ways)
		if err != nil {
			continue
		}
		for _, e := range dec.Entries {
			if !e.Empty() {
				live = append(live, e)
			}
		}
	}

	entryBuf := make([]byte, layout.IndexEntrySize)
	buckets := oldIdx.geo.Buckets * 2
	var next *indexRegion
	for attempt := 0; attempt < 8; attempt++ {
		newGeo := layout.Geometry{Buckets: buckets, Ways: oldIdx.geo.Ways}
		candidate := b.newIndex(newGeo, oldIdx.epoch+1)
		ok := true
		for _, e := range live {
			nb := int(e.Hash.Lo % uint64(newGeo.Buckets))
			s, found := emptySlotIn(candidate, nb)
			if !found {
				ok = false
				break
			}
			layout.EncodeIndexEntry(entryBuf, e)
			candidate.region.Write(newGeo.BucketOffset(nb)+layout.BucketHeaderSize+s*layout.IndexEntrySize, entryBuf)
		}
		if ok {
			next = candidate
			break
		}
		b.reg.Revoke(candidate.win.ID)
		buckets *= 2
	}
	if next == nil {
		return // pathological; keep the old index rather than lose data
	}
	next.used = len(live)
	b.idx = next
	b.reg.Revoke(oldIdx.win.ID)
	b.ctr.IndexResizes++
}

func emptySlotIn(idx *indexRegion, bucket int) (int, bool) {
	raw, err := idx.region.Read(idx.geo.BucketOffset(bucket), idx.geo.BucketSize())
	if err != nil {
		return -1, false
	}
	dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
	if err != nil {
		return -1, false
	}
	for i, e := range dec.Entries {
		if e.Empty() {
			return i, true
		}
	}
	return -1, false
}

// CompactRestart models the paper's non-disruptive restart downsizing:
// rebuild the data region sized to current usage (plus slack), preserving
// contents. Used by the Figure 3 harness when the corpus shrinks.
func (b *Backend) CompactRestart(slack float64) {
	type kv struct {
		key, value []byte
		v          truetime.Version
	}
	b.mu.Lock()
	var items []kv
	for i := 0; i < b.idx.geo.Buckets; i++ {
		raw, err := b.idx.region.Read(b.idx.geo.BucketOffset(i), b.idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, b.idx.geo.Ways)
		if err != nil {
			continue
		}
		for _, e := range dec.Entries {
			if e.Empty() {
				continue
			}
			de, derr := b.readEntryLocked(e)
			if derr != nil {
				continue
			}
			val, merr := de.MaterializeValue()
			if merr != nil {
				continue
			}
			items = append(items, kv{append([]byte(nil), de.Key...), val, de.Version})
		}
	}
	// Size the new pool to fit current usage plus slack.
	var need int
	for _, it := range items {
		need += sizeClassOf(layout.DataEntrySize(len(it.key), len(it.value)))
	}
	newBytes := int(float64(need) * (1 + slack))
	if newBytes < b.opt.SlabBytes*2 {
		newBytes = b.opt.SlabBytes * 2
	}
	newBytes = (newBytes/b.opt.SlabBytes + 1) * b.opt.SlabBytes
	if newBytes > b.opt.DataMaxBytes {
		newBytes = b.opt.DataMaxBytes
	}
	for _, w := range b.data.windows {
		b.reg.Revoke(w.ID)
	}
	region := rmem.NewRegion(newBytes, b.opt.DataMaxBytes)
	alloc, err := slab.New(newBytes, b.opt.SlabBytes, nil)
	if err != nil {
		b.mu.Unlock()
		return
	}
	b.data = &dataRegion{region: region, alloc: alloc}
	b.data.windows = []*rmem.Window{b.reg.Register(region, 1)}

	// Rebuild a fresh index at the same geometry and reinstall entries.
	oldGeoEpoch := b.idx.epoch + 1
	b.reg.Revoke(b.idx.win.ID)
	b.idx = b.newIndex(b.idx.geo, oldGeoEpoch)
	b.mu.Unlock()

	for _, it := range items {
		b.applySet(it.key, it.value, it.v)
	}
}

// Items snapshots all resident KV pairs of a shard (or every shard with
// shard < 0) — the migration and cohort-scan source.
func (b *Backend) Items(shard, shards int) []proto.MigrateItem {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []proto.MigrateItem
	for i := 0; i < b.idx.geo.Buckets; i++ {
		raw, err := b.idx.region.Read(b.idx.geo.BucketOffset(i), b.idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, b.idx.geo.Ways)
		if err != nil {
			continue
		}
		for _, e := range dec.Entries {
			if e.Empty() {
				continue
			}
			if shard >= 0 && shards > 0 && int(e.Hash.Hi%uint64(shards)) != shard {
				continue
			}
			de, derr := b.readEntryLocked(e)
			if derr != nil {
				continue
			}
			val, merr := de.MaterializeValue()
			if merr != nil {
				continue
			}
			out = append(out, proto.MigrateItem{
				Key:     append([]byte(nil), de.Key...),
				Value:   val,
				Version: de.Version,
			})
		}
	}
	for k, se := range b.side {
		h := b.opt.Hash([]byte(k))
		if shard >= 0 && shards > 0 && int(h.Hi%uint64(shards)) != shard {
			continue
		}
		out = append(out, proto.MigrateItem{Key: []byte(k), Value: append([]byte(nil), se.value...), Version: se.version})
	}
	return out
}

// Len returns the resident entry count.
func (b *Backend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.idx.used + len(b.side)
}

// Seal marks the corpus immutable (§6.4, R=2/Immutable): client-facing
// mutations are rejected from now on. Repair and migration paths remain
// open — they preserve, rather than change, the corpus.
func (b *Backend) Seal() {
	b.mu.Lock()
	b.sealed = true
	b.mu.Unlock()
}

// Sealed reports whether client mutations are rejected.
func (b *Backend) Sealed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sealed
}

// IngestTouches feeds batched access records to the eviction policy
// (§4.2).
func (b *Backend) IngestTouches(keys [][]byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range keys {
		b.policy.Touch(string(k))
		b.ctr.Touches++
	}
}

// rpcClient builds the backend's outbound RPC identity (repairs,
// migrations).
func (b *Backend) rpcClient() *rpc.Client {
	return b.net.Client(b.opt.HostID, fmt.Sprintf("backend-%s", b.opt.Addr))
}

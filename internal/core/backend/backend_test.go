package backend

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/rmem"
	"cliquemap/internal/rpc"
	"cliquemap/internal/slab"
	"cliquemap/internal/truetime"
)

type rig struct {
	store *config.Store
	net   *rpc.Network
	clk   *truetime.FakeClock
	gen   *truetime.Generator
	b     *Backend
}

func newRig(t *testing.T, opt Options) *rig {
	t.Helper()
	f := fabric.New(8, fabric.Params{})
	net := rpc.NewNetwork(f, rpc.CostModel{}, nil)
	store := config.NewStore(config.CellConfig{
		Mode: config.R32, Shards: 3,
		ShardAddrs: []string{"b0", "b1", "b2"},
	})
	clk := &truetime.FakeClock{}
	clk.Set(1000)
	gen := truetime.NewGenerator(clk, 99)
	if opt.Addr == "" {
		opt.Addr = "b0"
	}
	b, err := New(opt, store, rmem.NewRegistry(), net, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{store: store, net: net, clk: clk, gen: gen, b: b}
}

func (r *rig) v() truetime.Version {
	r.clk.Advance(1000)
	return r.gen.Next()
}

func TestSetGetRoundTrip(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v := r.v()
	applied, stored, _ := r.b.applySet([]byte("k1"), []byte("v1"), v)
	if !applied || stored != v {
		t.Fatalf("set: applied=%v stored=%v", applied, stored)
	}
	val, ver, found := r.b.localGet([]byte("k1"))
	if !found || string(val) != "v1" || ver != v {
		t.Errorf("get: %q %v %v", val, ver, found)
	}
	if r.b.Len() != 1 {
		t.Errorf("len = %d", r.b.Len())
	}
}

func TestGetMissing(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	if _, _, found := r.b.localGet([]byte("nope")); found {
		t.Error("missing key found")
	}
}

func TestVersionMonotonicity(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v1 := r.v()
	v2 := r.v()
	// Install at v2 first; v1 must be rejected as stale.
	if applied, _, _ := r.b.applySet([]byte("k"), []byte("new"), v2); !applied {
		t.Fatal("v2 set rejected")
	}
	applied, stored, _ := r.b.applySet([]byte("k"), []byte("old"), v1)
	if applied {
		t.Error("stale SET applied")
	}
	if stored != v2 {
		t.Errorf("stored = %v, want %v", stored, v2)
	}
	if val, _, _ := r.b.localGet([]byte("k")); string(val) != "new" {
		t.Errorf("value clobbered: %q", val)
	}
	if r.b.CountersSnapshot().VersionRejects != 1 {
		t.Error("version reject not counted")
	}
}

func TestSetEqualVersionRejected(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v := r.v()
	r.b.applySet([]byte("k"), []byte("a"), v)
	if applied, _, _ := r.b.applySet([]byte("k"), []byte("b"), v); applied {
		t.Error("same-version SET applied; must be strictly increasing")
	}
}

func TestEraseAndTombstone(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v1 := r.v()
	v2 := r.v()
	v3 := r.v()
	r.b.applySet([]byte("k"), []byte("v"), v1)
	if applied, _ := r.b.applyErase([]byte("k"), v2); !applied {
		t.Fatal("erase rejected")
	}
	if _, _, found := r.b.localGet([]byte("k")); found {
		t.Error("erased key still resident")
	}
	// Late SET at v1 < tombstone v2 must not resurrect (§5.2).
	if applied, _, _ := r.b.applySet([]byte("k"), []byte("zombie"), v1); applied {
		t.Error("late SET resurrected erased value")
	}
	// A genuinely newer SET succeeds.
	if applied, _, _ := r.b.applySet([]byte("k"), []byte("fresh"), v3); !applied {
		t.Error("fresh SET after erase rejected")
	}
}

func TestEraseOfAbsentKeyStillTombstones(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v1 := r.v()
	v2 := r.v()
	_ = v2
	if applied, _ := r.b.applyErase([]byte("ghost"), v2); !applied {
		t.Fatal("erase of absent key rejected")
	}
	if applied, _, _ := r.b.applySet([]byte("ghost"), []byte("x"), v1); applied {
		t.Error("SET below tombstone of never-present key applied")
	}
}

// TestTombstoneSummaryCoarseButConsistent: after a tombstone overflows
// BOTH the exact cache and the pending-settle queue into the summary,
// SETs below the summary are rejected even for unrelated keys — coarse,
// never inconsistent (§5.2).
func TestTombstoneSummaryCoarseButConsistent(t *testing.T) {
	r := newRig(t, Options{Shard: 0, TombstoneCap: 2})
	vOld := r.v()
	var eraseVs []truetime.Version
	for i := 0; i < 6; i++ {
		eraseVs = append(eraseVs, r.v())
	}
	for i := 0; i < 6; i++ {
		r.b.applyErase([]byte(fmt.Sprintf("e%d", i)), eraseVs[i])
	}
	// e0, e1 overflowed the pending queue (cap 2 each stage) into the
	// summary. A SET on e0 below the summary must be rejected.
	if applied, _, _ := r.b.applySet([]byte("e0"), []byte("x"), vOld); applied {
		t.Error("SET below summary bound applied")
	}
	// And even an unrelated never-erased key is bounded by the summary —
	// the documented coarseness.
	if applied, _, _ := r.b.applySet([]byte("unrelated"), []byte("x"), vOld); applied {
		t.Error("summary coarseness not enforced")
	}
	// New versions beyond the summary proceed.
	if applied, _, _ := r.b.applySet([]byte("e0"), []byte("y"), r.v()); !applied {
		t.Error("fresh SET rejected")
	}
}

// TestHeatExcludesReservedNamespaces: probe-canary and federation
// follower-cache keys must never register in the heat sketch — synthetic
// and echoed traffic masquerading as heat would mis-drive the hot-key
// promotion loop.
func TestHeatExcludesReservedNamespaces(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	user := []byte("user-key")
	probe := []byte(layout.ProbeKeyPrefix + "canary")
	tier := []byte(layout.TierKeyPrefix + "remote-key")
	for i := 0; i < 50; i++ {
		r.b.localGet(user)
		r.b.localGet(probe)
		r.b.localGet(tier)
	}
	if got := r.b.Heat().Total(); got != 50 {
		t.Errorf("heat total = %d, want 50 (user accesses only)", got)
	}
	for _, hk := range r.b.Heat().TopN(10) {
		if hk.Key != string(user) {
			t.Errorf("reserved-namespace key %q registered in heat sketch", hk.Key)
		}
	}
}

func TestCas(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v1 := r.v()
	r.b.applySet([]byte("k"), []byte("a"), v1)

	wrong := r.v()
	if applied, stored := r.b.applyCas([]byte("k"), []byte("b"), wrong, r.v()); applied {
		t.Errorf("CAS with wrong expectation applied (stored=%v)", stored)
	}
	if applied, _ := r.b.applyCas([]byte("k"), []byte("b"), v1, r.v()); !applied {
		t.Error("CAS with correct expectation rejected")
	}
	if val, _, _ := r.b.localGet([]byte("k")); string(val) != "b" {
		t.Errorf("after CAS: %q", val)
	}
}

func TestCasOnAbsentKeyZeroExpected(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	if applied, _ := r.b.applyCas([]byte("new"), []byte("v"), truetime.Version{}, r.v()); !applied {
		t.Error("CAS(zero) on absent key should create")
	}
}

func TestCapacityEviction(t *testing.T) {
	// Tiny data region, reshaping off: SETs beyond capacity force
	// policy-driven evictions rather than failures.
	r := newRig(t, Options{
		Shard: 0, DataBytes: 64 << 10, DataMaxBytes: 64 << 10, SlabBytes: 16 << 10,
		ReshapeEnabled: false,
	})
	val := make([]byte, 8000)
	for i := 0; i < 30; i++ {
		applied, _, _ := r.b.applySet([]byte(fmt.Sprintf("k%d", i)), val, r.v())
		if !applied {
			t.Fatalf("set %d not applied", i)
		}
	}
	c := r.b.CountersSnapshot()
	if c.CapacityEvictions == 0 {
		t.Error("no capacity evictions under pressure")
	}
	if r.b.Len() == 0 || r.b.Len() >= 30 {
		t.Errorf("resident = %d", r.b.Len())
	}
}

func TestDataRegionGrowth(t *testing.T) {
	r := newRig(t, Options{
		Shard: 0, DataBytes: 64 << 10, DataMaxBytes: 1 << 20, SlabBytes: 16 << 10,
		ReshapeEnabled: true,
	})
	before := r.b.MemoryBytes()
	val := make([]byte, 8000)
	for i := 0; i < 60; i++ {
		if applied, _, _ := r.b.applySet([]byte(fmt.Sprintf("k%d", i)), val, r.v()); !applied {
			t.Fatalf("set %d failed", i)
		}
	}
	c := r.b.CountersSnapshot()
	if c.DataGrows == 0 {
		t.Error("region never grew")
	}
	if c.CapacityEvictions != 0 {
		t.Error("grew-capable backend evicted instead of growing")
	}
	if r.b.MemoryBytes() <= before {
		t.Error("memory footprint did not expand")
	}
	if r.b.Len() != 60 {
		t.Errorf("resident = %d, want 60 (no evictions)", r.b.Len())
	}
}

func TestPreallocBaselineDoesNotGrow(t *testing.T) {
	r := newRig(t, Options{
		Shard: 0, DataBytes: 64 << 10, DataMaxBytes: 1 << 20,
		SlabBytes: 16 << 10, ReshapeEnabled: false,
	})
	// Baseline provisions for peak immediately.
	if got := r.b.MemoryBytes(); got < 1<<20 {
		t.Errorf("prealloc baseline populated only %d bytes", got)
	}
}

func TestIndexResize(t *testing.T) {
	r := newRig(t, Options{
		Shard:     0,
		Geometry:  layout.Geometry{Buckets: 4, Ways: 4}, // 16 entries
		DataBytes: 1 << 20, DataMaxBytes: 1 << 22, SlabBytes: 64 << 10,
		ReshapeEnabled: true,
	})
	helloBefore := r.b.hello()
	for i := 0; i < 40; i++ {
		if applied, _, _ := r.b.applySet([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), r.v()); !applied {
			t.Fatalf("set %d rejected", i)
		}
	}
	c := r.b.CountersSnapshot()
	if c.IndexResizes == 0 {
		t.Fatal("index never resized")
	}
	helloAfter := r.b.hello()
	if helloAfter.Buckets <= helloBefore.Buckets {
		t.Error("bucket count did not grow")
	}
	if helloAfter.IndexWindow == helloBefore.IndexWindow {
		t.Error("index window not re-registered")
	}
	if helloAfter.IndexEpoch <= helloBefore.IndexEpoch {
		t.Error("index epoch did not advance")
	}
	// Old window must be revoked.
	if _, err := r.b.reg.Lookup(helloBefore.IndexWindow); err == nil {
		t.Error("old index window still registered")
	}
	// Every key not legitimately evicted by a pre-resize associativity
	// conflict must survive the resize intact.
	lost := 0
	for i := 0; i < 40; i++ {
		if _, _, found := r.b.localGet([]byte(fmt.Sprintf("key-%d", i))); !found {
			lost++
		}
	}
	if uint64(lost) != c.AssocEvictions {
		t.Errorf("lost %d keys but only %d associativity evictions", lost, c.AssocEvictions)
	}
	if lost > 5 {
		t.Errorf("resize should make associativity conflicts rare; lost %d/40", lost)
	}
}

func TestAssociativityConflictEvicts(t *testing.T) {
	// One bucket, 2 ways, no overflow: the third key must evict the
	// lowest-versioned entry (§4.2 associativity conflict).
	r := newRig(t, Options{
		Shard:    0,
		Geometry: layout.Geometry{Buckets: 1, Ways: 2},
		// Load factor beyond 1.0 so no resize interferes.
		MaxLoadFactor: 10,
	})
	r.b.applySet([]byte("a"), []byte("1"), r.v())
	r.b.applySet([]byte("b"), []byte("2"), r.v())
	r.b.applySet([]byte("c"), []byte("3"), r.v())
	c := r.b.CountersSnapshot()
	if c.AssocEvictions != 1 {
		t.Errorf("assoc evictions = %d, want 1", c.AssocEvictions)
	}
	// Oldest version ("a") should be gone; b and c remain.
	if _, _, found := r.b.localGet([]byte("a")); found {
		t.Error("oldest entry survived associativity conflict")
	}
	for _, k := range []string{"b", "c"} {
		if _, _, found := r.b.localGet([]byte(k)); !found {
			t.Errorf("%s lost", k)
		}
	}
}

func TestOverflowSideTable(t *testing.T) {
	r := newRig(t, Options{
		Shard:            0,
		Geometry:         layout.Geometry{Buckets: 1, Ways: 2},
		MaxLoadFactor:    10,
		OverflowFallback: true,
	})
	r.b.applySet([]byte("a"), []byte("1"), r.v())
	r.b.applySet([]byte("b"), []byte("2"), r.v())
	r.b.applySet([]byte("c"), []byte("3"), r.v())
	c := r.b.CountersSnapshot()
	if c.Overflows != 1 || c.AssocEvictions != 0 {
		t.Errorf("overflows=%d assoc=%d", c.Overflows, c.AssocEvictions)
	}
	// All three keys must be servable (c via the side table).
	for _, k := range []string{"a", "b", "c"} {
		if _, _, found := r.b.localGet([]byte(k)); !found {
			t.Errorf("%s not servable", k)
		}
	}
	// The bucket must carry the overflow bit for clients.
	raw, err := r.b.idx.Load().region.Read(0, r.b.idx.Load().geo.BucketSize())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := layout.DecodeBucket(raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Overflowed() {
		t.Error("overflow bit not set")
	}
}

func TestSetConfigIDRestampsBuckets(t *testing.T) {
	r := newRig(t, Options{Shard: 0, Geometry: layout.Geometry{Buckets: 4, Ways: 2}})
	r.b.applySet([]byte("k"), []byte("v"), r.v())
	r.b.SetConfigID(42)
	for i := 0; i < 4; i++ {
		raw, err := r.b.idx.Load().region.Read(r.b.idx.Load().geo.BucketOffset(i), r.b.idx.Load().geo.BucketSize())
		if err != nil {
			t.Fatal(err)
		}
		dec, err := layout.DecodeBucket(raw, 2)
		if err != nil {
			t.Fatal(err)
		}
		if dec.ConfigID != 42 {
			t.Errorf("bucket %d config id = %d", i, dec.ConfigID)
		}
	}
	// The stored entry survives restamping.
	if _, _, found := r.b.localGet([]byte("k")); !found {
		t.Error("entry lost in restamp")
	}
}

func TestUpdateVersion(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	v1 := r.v()
	r.b.applySet([]byte("k"), []byte("v"), v1)
	n := r.v()
	if !r.b.applyUpdateVersion([]byte("k"), n) {
		t.Fatal("update version failed")
	}
	_, ver, _ := r.b.localGet([]byte("k"))
	if ver != n {
		t.Errorf("version = %v, want %v", ver, n)
	}
	// Downgrade attempts are rejected.
	if r.b.applyUpdateVersion([]byte("k"), v1) {
		t.Error("version downgrade applied")
	}
	if r.b.applyUpdateVersion([]byte("absent"), r.v()) {
		t.Error("update of absent key applied")
	}
}

func TestHelloReflectsState(t *testing.T) {
	r := newRig(t, Options{Shard: 2, Geometry: layout.Geometry{Buckets: 8, Ways: 4}})
	h := r.b.hello()
	if h.Shard != 2 || h.Buckets != 8 || h.Ways != 4 {
		t.Errorf("hello = %+v", h)
	}
	if h.IndexWindow == 0 || len(h.DataWindows) == 0 {
		t.Error("hello missing windows")
	}
	if h.ConfigID != r.store.Get().ID {
		t.Errorf("hello config id = %d", h.ConfigID)
	}
}

func TestRPCServiceSurface(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	client := r.net.Client(7, "test")
	ctx := context.Background()

	// SET over RPC.
	v := r.v()
	resp, _, err := client.Call(ctx, "b0", proto.MethodSet, proto.SetReq{Key: []byte("rk"), Value: []byte("rv"), Version: v}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	mr, err := proto.UnmarshalMutateResp(resp)
	if err != nil || !mr.Applied {
		t.Fatalf("rpc set: %+v %v", mr, err)
	}

	// GET over RPC.
	resp, _, err = client.Call(ctx, "b0", proto.MethodGet, proto.GetReq{Key: []byte("rk")}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	gr, err := proto.UnmarshalGetResp(resp)
	if err != nil || !gr.Found || string(gr.Value) != "rv" {
		t.Fatalf("rpc get: %+v %v", gr, err)
	}

	// Hello over RPC.
	resp, _, err = client.Call(ctx, "b0", proto.MethodHello, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.UnmarshalHelloResp(resp); err != nil {
		t.Fatal(err)
	}

	// Touch over RPC.
	if _, _, err = client.Call(ctx, "b0", proto.MethodTouch, proto.TouchReq{Keys: [][]byte{[]byte("rk")}}.Marshal()); err != nil {
		t.Fatal(err)
	}
	if r.b.CountersSnapshot().Touches != 1 {
		t.Error("touch not ingested")
	}

	// Scan over RPC.
	resp, _, err = client.Call(ctx, "b0", proto.MethodScan, proto.ScanReq{Shard: shardOf(r, "rk"), Limit: 10}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := proto.UnmarshalScanResp(resp)
	if err != nil || len(sr.Items) != 1 || string(sr.Items[0].Key) != "rk" {
		t.Fatalf("scan: %+v %v", sr, err)
	}
}

func shardOf(r *rig, key string) int {
	cfg := r.store.Get()
	return int(hashring.DefaultHash([]byte(key)).Hi % uint64(cfg.Shards))
}

func TestHandleMsg(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	r.b.applySet([]byte("mk"), []byte("mv"), r.v())
	resp, err := r.b.HandleMsg(proto.GetReq{Key: []byte("mk")}.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	g, err := proto.UnmarshalGetResp(resp)
	if err != nil || !g.Found || string(g.Value) != "mv" {
		t.Fatalf("msg get: %+v %v", g, err)
	}
}

func TestCompactRestartPreservesData(t *testing.T) {
	r := newRig(t, Options{
		Shard: 0, DataBytes: 1 << 20, DataMaxBytes: 4 << 20, SlabBytes: 64 << 10,
		ReshapeEnabled: true,
	})
	keys := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("value-%d", i)
		keys[k] = v
		r.b.applySet([]byte(k), []byte(v), r.v())
	}
	before := r.b.MemoryBytes()
	r.b.CompactRestart(0.2)
	after := r.b.MemoryBytes()
	if after >= before {
		t.Errorf("compact did not shrink: %d -> %d", before, after)
	}
	for k, want := range keys {
		val, _, found := r.b.localGet([]byte(k))
		if !found || string(val) != want {
			t.Errorf("%s lost or corrupted after compaction: %q %v", k, val, found)
		}
	}
}

func TestItemsFiltersByShard(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	cfg := r.store.Get()
	for i := 0; i < 60; i++ {
		r.b.applySet([]byte(fmt.Sprintf("k%d", i)), []byte("v"), r.v())
	}
	all := r.b.Items(-1, cfg.Shards)
	if len(all) != 60 {
		t.Fatalf("all items = %d", len(all))
	}
	var sum int
	for s := 0; s < cfg.Shards; s++ {
		sum += len(r.b.Items(s, cfg.Shards))
	}
	if sum != 60 {
		t.Errorf("shard-filtered sum = %d", sum)
	}
}

var _ = bytes.Equal
var _ = slab.ErrNoCapacity
var _ = rmem.ErrRevoked

func TestScanPagination(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	cfg := r.store.Get()
	// Install enough keys for one shard to need multiple pages.
	installed := 0
	for i := 0; installed < 30; i++ {
		k := []byte(fmt.Sprintf("scan-%d", i))
		if int(hashring.DefaultHash(k).Hi%uint64(cfg.Shards)) != 0 {
			continue
		}
		if applied, _, _ := r.b.applySet(k, []byte("v"), r.v()); applied {
			installed++
		}
	}
	// Page through with a small limit; every key must appear exactly once.
	seen := map[string]int{}
	cursor := uint64(0)
	pages := 0
	for {
		resp := r.b.scan(protoScan(0, cursor, 7))
		for _, it := range resp.Items {
			seen[string(it.Key)]++
		}
		pages++
		if resp.Done {
			break
		}
		if resp.NextCursor <= cursor && pages > 1 {
			t.Fatal("cursor did not advance")
		}
		cursor = resp.NextCursor
		if pages > 100 {
			t.Fatal("pagination never terminated")
		}
	}
	if pages < 2 {
		t.Fatalf("limit 7 with %d keys should paginate (pages=%d)", installed, pages)
	}
	if len(seen) != installed {
		t.Errorf("scanned %d distinct keys, want %d", len(seen), installed)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("%s appeared %d times", k, n)
		}
	}
}

func protoScan(shard int, cursor uint64, limit int) proto.ScanReq {
	return proto.ScanReq{Shard: shard, Cursor: cursor, Limit: limit}
}

func TestStatsHandlerDirect(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	r.b.applySet([]byte("k"), []byte("v"), r.v())
	client := r.net.Client(7, "t")
	resp, _, err := client.Call(context.Background(), "b0", proto.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proto.UnmarshalStatsResp(resp)
	if err != nil || st.Sets != 1 || st.ResidentKeys != 1 {
		t.Errorf("stats: %+v %v", st, err)
	}
}

func TestSealRejectsMutations(t *testing.T) {
	r := newRig(t, Options{Shard: 0})
	r.b.applySet([]byte("k"), []byte("v"), r.v())
	r.b.Seal()
	if !r.b.Sealed() {
		t.Fatal("Sealed() false")
	}
	client := r.net.Client(7, "t")
	ctx := context.Background()
	if _, _, err := client.Call(ctx, "b0", proto.MethodSet, proto.SetReq{Key: []byte("k"), Value: []byte("x"), Version: r.v()}.Marshal()); err == nil {
		t.Error("sealed backend accepted SET")
	}
	// Repair-flagged SETs stay open (quorum repair must work on immutable
	// corpora too).
	if _, _, err := client.Call(ctx, "b0", proto.MethodSet, proto.SetReq{Key: []byte("k2"), Value: []byte("x"), Version: r.v(), Repair: true}.Marshal()); err != nil {
		t.Errorf("repair SET rejected on sealed backend: %v", err)
	}
	// Reads unaffected.
	if _, _, err := client.Call(ctx, "b0", proto.MethodGet, proto.GetReq{Key: []byte("k")}.Marshal()); err != nil {
		t.Errorf("read on sealed backend: %v", err)
	}
}

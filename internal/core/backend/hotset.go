package backend

import (
	"context"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/truetime"
)

// Hot-key promotion: the server side of the hot-key adaptive serving loop.
//
// The heat sketch (stats.TopK) already sees every access on every
// transport — mutations, RPC/MSG lookups, and the touch batches clients
// report for one-sided RMA GETs. Promotion distills that telemetry into a
// small actionable set: the top-k keys whose estimated share of traffic
// clears a promotion bar are PROMOTED, and the set (with a monotonically
// increasing epoch) piggybacks on responses clients already receive
// (Touch acks, Stats and Health polls), so clients learn which keys are
// hot without a dedicated round trip.
//
// Promotion drives two server behaviours and two client behaviours:
//   - server: promoted keys are promptly settled to all-replica residency
//     (RepairHot), so R-way read spreading never hits a missing replica;
//   - server: the promotion epoch lets clients cheaply detect change;
//   - client: promoted keys become near-cache admission candidates and
//     get per-key transport steering / R-way data-read spreading.
//
// Hysteresis: a key promotes when its estimated count reaches the
// promote bar (a traffic share floor with an absolute minimum) and stays
// promoted until it falls below the lower demote bar, so keys oscillating
// around the threshold do not churn epochs.
const (
	hotDefaultK     = 8   // promoted-set capacity when Options.HotK == 0
	hotMinCount     = 64  // absolute floor: never promote on a tiny sample
	hotPromoteMilli = 20  // promote at ≥ 2.0% of the sketch's total traffic
	hotDemoteMilli  = 10  // demote below 1.0% (hysteresis)
	hotEvalEvery    = 256 // re-evaluate at most once per this many touches
)

// hotSet is an immutable promotion snapshot, swapped atomically.
type hotSet struct {
	epoch uint64
	keys  [][]byte // hottest first; shared read-only
	set   map[string]struct{}
}

// maybeEvalHot re-evaluates the promoted set if enough new traffic has
// accumulated since the last evaluation. Called from touch ingestion and
// stats scrapes (both off the per-op hot path); cheap when throttled.
func (b *Backend) maybeEvalHot() {
	if b.opt.HotK < 0 {
		return
	}
	total := b.heat.Total()
	last := b.hotEvalTotal.Load()
	if total < last+hotEvalEvery {
		return
	}
	if !b.hotEvalTotal.CompareAndSwap(last, total) {
		return // another caller is evaluating this window
	}
	b.evalHot(total)
}

func (b *Backend) evalHot(total uint64) {
	k := b.opt.HotK
	if k == 0 {
		k = hotDefaultK
	}
	promoteBar := total * hotPromoteMilli / 1000
	if promoteBar < hotMinCount {
		promoteBar = hotMinCount
	}
	demoteBar := total * hotDemoteMilli / 1000
	if demoteBar < hotMinCount/2 {
		demoteBar = hotMinCount / 2
	}
	cur := b.hot.Load()
	cand := b.heat.TopN(2 * k)
	keys := make([][]byte, 0, k)
	set := make(map[string]struct{}, k)
	for _, hk := range cand {
		if len(keys) >= k {
			break
		}
		bar := promoteBar
		if cur != nil {
			if _, ok := cur.set[hk.Key]; ok {
				bar = demoteBar
			}
		}
		if hk.Count >= bar {
			keys = append(keys, []byte(hk.Key))
			set[hk.Key] = struct{}{}
		}
	}

	b.hotMu.Lock()
	cur = b.hot.Load() // re-read: a concurrent eval may have won the swap
	if hotSameSet(cur, set) {
		b.hotMu.Unlock()
		return
	}
	epoch := uint64(1)
	if cur != nil {
		epoch = cur.epoch + 1
	}
	b.hot.Store(&hotSet{epoch: epoch, keys: keys, set: set})
	b.hotMu.Unlock()
	b.hotEpochs.Add(1)

	// Server-driven residency: settle freshly promoted keys to all
	// replicas now rather than waiting for the next full repair sweep, so
	// clients that start spreading reads R-ways never hit a replica that
	// is missing the key. One sweep in flight at a time; a promotion that
	// lands mid-sweep is picked up by the next epoch change or full
	// repair.
	if len(keys) > 0 && b.hotResidency.CompareAndSwap(false, true) {
		go func() {
			defer b.hotResidency.Store(false)
			b.RepairHot(context.Background())
		}()
	}
}

func hotSameSet(cur *hotSet, next map[string]struct{}) bool {
	curLen := 0
	if cur != nil {
		curLen = len(cur.set)
	}
	if curLen != len(next) {
		return false
	}
	for k := range next {
		if _, ok := cur.set[k]; !ok {
			return false
		}
	}
	return true
}

// HotSnapshot returns the promotion epoch and the promoted keys, hottest
// first. The slice and its elements are shared read-only snapshots;
// callers must not mutate them. Epoch 0 means nothing has ever promoted.
func (b *Backend) HotSnapshot() (uint64, [][]byte) {
	hs := b.hot.Load()
	if hs == nil {
		return 0, nil
	}
	return hs.epoch, hs.keys
}

// IsHot reports whether key is currently promoted on this backend.
func (b *Backend) IsHot(key []byte) bool {
	hs := b.hot.Load()
	if hs == nil {
		return false
	}
	_, ok := hs.set[string(key)]
	return ok
}

// RepairHot settles every currently promoted key to all-replica residency:
// the targeted, prompt complement of the full RepairShard sweep (whose
// all-views-agree clean check already converges divergent keys, just on
// sweep cadence rather than promotion cadence).
//
// Safety mirrors RepairShard's settle rule: a laggard is written AT the
// best observed version, and only when a read quorum already holds that
// version — so an incomplete (never-acked) erase on a minority cannot
// block residency, while a completed quorum erase leaves fewer than
// quorum value-holders and the key is skipped. Every install re-validates
// version monotonicity and the tombstone bound under the key's stripe
// lock, so a racing newer mutation or erase wins and the next sweep
// re-evaluates.
func (b *Backend) RepairHot(ctx context.Context) (settled int) {
	_, keys := b.HotSnapshot()
	if len(keys) == 0 {
		return 0
	}
	cfg := b.store.Get()
	if cfg.Shards == 0 {
		return 0
	}
	quorum := cfg.Mode.Quorum()
	client := b.rpcClient()

	type view struct {
		addr  string
		local bool
		found bool
		ver   truetime.Version
		val   []byte
	}
	for _, key := range keys {
		h := b.opt.Hash(key)
		cohort := cfg.Cohort(int(h.Hi % uint64(cfg.Shards)))
		views := make([]view, 0, len(cohort))
		for _, shard := range cohort {
			v := view{addr: cfg.AddrFor(shard)}
			if v.addr == b.opt.Addr {
				v.local = true
				v.val, v.ver, v.found = b.localGet(key)
			} else {
				resp, _, cerr := client.Call(ctx, v.addr, proto.MethodGet, proto.GetReq{Key: key}.Marshal())
				if cerr == nil {
					if g, gerr := proto.UnmarshalGetResp(resp); gerr == nil && g.Found {
						v.val, v.ver, v.found = g.Value, g.Version, true
					}
				}
			}
			views = append(views, v)
		}
		var bestV truetime.Version
		bestIdx, votes := -1, 0
		for i, v := range views {
			if v.found && (bestIdx < 0 || bestV.Less(v.ver)) {
				bestIdx, bestV = i, v.ver
			}
		}
		if bestIdx < 0 {
			continue
		}
		for _, v := range views {
			if v.found && v.ver == bestV {
				votes++
			}
		}
		if votes < quorum {
			// No read quorum at the best version: either an erase
			// completed (value holders are the minority that missed it)
			// or a write is still settling. Leave it to the full repair
			// sweep, which sees tombstones.
			continue
		}
		value := views[bestIdx].val
		for _, v := range views {
			if v.found && v.ver == bestV {
				continue
			}
			if v.local {
				if applied, _, _ := b.applySet(key, value, bestV); applied {
					settled++
				}
			} else {
				client.Call(ctx, v.addr, proto.MethodSet, proto.SetReq{Key: key, Value: value, Version: bestV, Repair: true}.Marshal())
				settled++
			}
		}
	}
	b.hotSettles.Add(uint64(settled))
	return settled
}

package backend

// Shard handoff: the seal/journal/delta machinery shared by planned
// maintenance (MigrateTo) and online resizing (ResizeHandoff).
//
// The protocol closes the lost-write window of snapshot-then-stream
// migration (§6.1): a SET acked by the source after the bulk snapshot but
// before the ownership flip used to be silently dropped. The hardened
// flow is
//
//	journal on → bulk snapshot+stream → SEAL → drain journal (delta
//	passes until dry) → tombstones + summary → AssumeShard / config flip
//
// with three invariants:
//
//  1. Every mutation published while the journal is active and the seal
//     is down is noted under its key's stripe lock. Sealing takes every
//     stripe lock as a barrier, so a drain after the seal observes every
//     such note.
//  2. A sealed backend rejects client mutations with proto.ErrShardSealed
//     (a config-mismatch-class error: clients refresh and retry), except
//     pending-epoch writes it owns during a resize — those are already
//     replicated across the new epoch and need no journaling.
//  3. Tombstones move as first-class MigrateItems and the coarse summary
//     is folded into the receiver, so an erase immediately before a
//     handoff cannot resurrect on the new owner (§5.2).

import (
	"context"
	"errors"
	"fmt"

	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/eviction"
	"cliquemap/internal/rmem"
	"cliquemap/internal/rpc"
	"cliquemap/internal/slab"
	"cliquemap/internal/truetime"
)

// migrateBatchSize is the per-frame item count of migration streams.
const migrateBatchSize = 256

// ----------------------------------------------------------------- seal --

// HandoffSeal sets the shard-handoff seal. It takes every stripe lock as
// a barrier: any mutation already past its handler's seal check either
// published (and journaled) before the barrier, or publishes after it and
// is skipped by the journal — in which case its surviving old-epoch
// cohort copies carry it into their own later handoffs (see DESIGN.md,
// "Shard handoff & resizing").
func (b *Backend) HandoffSeal() {
	b.lockAll()
	b.handoffSealed.Store(true)
	b.unlockAll()
}

// HandoffUnseal clears the shard-handoff seal (after the config flip, or
// when the source re-arms as a spare).
func (b *Backend) HandoffUnseal() { b.handoffSealed.Store(false) }

// HandoffSealed reports the shard-handoff seal (distinct from the
// R2Immutable corpus seal of Sealed).
func (b *Backend) HandoffSealed() bool { return b.handoffSealed.Load() }

// isPendingOwner reports whether this backend serves a shard in the
// pending epoch of an in-flight resize.
func (b *Backend) isPendingOwner() bool {
	if b.store == nil {
		return false
	}
	cfg := b.store.Get()
	if cfg.Pending == nil {
		return false
	}
	for _, a := range cfg.Pending.ShardAddrs {
		if a == b.opt.Addr {
			return true
		}
	}
	return false
}

// handoffRejects decides a mutation's fate under the handoff seal: sealed
// backends bounce everything except pending-epoch writes they own.
//
// A backend serving no shard at all bounces too. After a handoff the
// demoted source is an idle spare, yet clients whose config still names
// it keep routing writes its way; if it acked them, each ack would mint
// a quorum vote that leaves the cohort with the task — two such mixed
// quorums in a row is a silently lost acked write. The only mutations a
// shardless task may apply are pending-epoch writes it owns (a resize
// growth target holds shard -1 until the commit flip).
func (b *Backend) handoffRejects(pending bool) bool {
	if b.Shard() < 0 || b.handoffSealed.Load() {
		return !pending || !b.isPendingOwner()
	}
	return false
}

// handoffStranded is the response-time companion to handoffRejects: it
// reports whether a mutation that just published here may have missed the
// handoff (stamped into MutateResp.Sealed so the client discounts the
// ack). The seal check at handler entry races the seal barrier — a
// mutation can pass the check, stall, and publish after the journal has
// drained; by then the backend may even have been unsealed again (the
// maintenance source re-arms as a spare, a resize survivor unseals at the
// commit flip). Three response-time signals cover every such interleaving:
//
//   - still sealed: the drain may already be past this key;
//   - shard -1: the source was demoted to a spare (set before the
//     deferred unseal, and persisting after it);
//   - configID moved since handler entry: an epoch transition (resize
//     flip, maintenance config bump) completed mid-apply, so handoff
//     coverage is unprovable.
//
// Conversely a publish that entered before the seal and responded
// unsealed, serving the same shard under the same config, is provably
// covered by the bulk snapshot or the journal. A false positive merely
// discounts one ack; the client's idempotent, version-gated retry
// re-establishes quorum.
func (b *Backend) handoffStranded(entryID uint64) bool {
	return b.handoffSealed.Load() || b.Shard() < 0 || b.configID.Load() != entryID
}

// -------------------------------------------------------------- journal --

// journalStart arms the mutation journal; every key published from now on
// (until the seal goes up) is recorded for the delta pass.
func (b *Backend) journalStart() {
	b.journalMu.Lock()
	b.journal = make(map[string]struct{})
	b.journalMu.Unlock()
	b.journalActive.Store(true)
}

// journalStop disarms and discards the journal.
func (b *Backend) journalStop() {
	b.journalActive.Store(false)
	b.journalMu.Lock()
	b.journal = nil
	b.journalMu.Unlock()
}

// journalSwap returns the journaled keys and installs a fresh map, so
// delta passes can loop until a swap comes back dry. Notes stop once the
// seal is up (invariant 2 above), so the loop terminates.
func (b *Backend) journalSwap() []string {
	b.journalMu.Lock()
	defer b.journalMu.Unlock()
	if len(b.journal) == 0 {
		return nil
	}
	keys := make([]string, 0, len(b.journal))
	for k := range b.journal {
		keys = append(keys, k)
	}
	b.journal = make(map[string]struct{})
	return keys
}

// journalNote records a published mutation's key. Callers hold the key's
// stripe lock, which orders the note against the seal barrier; sealed
// publishes are intentionally skipped (they are pending-epoch or
// migration writes, already replicated in the new epoch).
func (b *Backend) journalNote(key []byte) {
	if !b.journalActive.Load() || b.handoffSealed.Load() {
		return
	}
	b.journalMu.Lock()
	if b.journal != nil {
		b.journal[string(key)] = struct{}{}
	}
	b.journalMu.Unlock()
}

// snapshotKeys re-reads journaled keys into migrate items: current value
// if resident, exact tombstone if erased, nothing if evicted (the version
// gate on the receiver makes every outcome safe to re-apply).
func (b *Backend) snapshotKeys(keys []string) []proto.MigrateItem {
	out := make([]proto.MigrateItem, 0, len(keys))
	for _, k := range keys {
		kb := []byte(k)
		if val, ver, ok := b.localGet(kb); ok {
			out = append(out, proto.MigrateItem{Key: kb, Value: val, Version: ver})
			continue
		}
		b.tombMu.Lock()
		v, ok := b.tomb.entries[k]
		if !ok {
			v, ok = b.tomb.pending[k]
		}
		b.tombMu.Unlock()
		if ok {
			out = append(out, proto.MigrateItem{Key: kb, Version: v, Tombstone: true})
		}
	}
	return out
}

// ----------------------------------------------------------- tombstones --

// tombSummary returns the coarse tombstone-summary version (§5.2).
func (b *Backend) tombSummary() truetime.Version {
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	return b.tomb.summary
}

// tombSummaryFold raises this backend's summary to at least v — the
// receiving half of a handoff's summary transfer. The summary only ever
// grows, so folding is monotone and idempotent.
func (b *Backend) tombSummaryFold(v truetime.Version) {
	if v.Zero() {
		return
	}
	b.tombMu.Lock()
	if b.tomb.summary.Less(v) {
		b.tomb.summary = v
	}
	b.tombMu.Unlock()
	b.tombSummarySet.Store(true)
}

// tombstoneMigrateItems lists enumerable tombstones (live cache plus the
// pending-settle queue) as Tombstone-flagged migrate items, mirroring
// tombstoneScanItems.
func (b *Backend) tombstoneMigrateItems(shard, shards int) []proto.MigrateItem {
	b.tombMu.Lock()
	defer b.tombMu.Unlock()
	var out []proto.MigrateItem
	emit := func(k string, v truetime.Version) {
		if shard >= 0 && shards > 0 {
			h := b.opt.Hash([]byte(k))
			if int(h.Hi%uint64(shards)) != shard {
				return
			}
		}
		out = append(out, proto.MigrateItem{Key: []byte(k), Version: v, Tombstone: true})
	}
	for k, v := range b.tomb.entries {
		emit(k, v)
	}
	for k, v := range b.tomb.pending {
		if _, live := b.tomb.entries[k]; live {
			continue
		}
		emit(k, v)
	}
	return out
}

// ------------------------------------------------------------ streaming --

// sendMigrate ships one frame, preferring MethodMigrateDelta for
// delta/tombstone frames and degrading to MethodMigrateBatch when the
// receiver predates it (§6's additive evolution). Tombstone items are
// dropped on fallback: an old receiver would decode them as empty-value
// installs, which is strictly worse than the old behavior of tombstones
// simply not migrating.
func (b *Backend) sendMigrate(ctx context.Context, client *rpc.Client, addr string, req proto.MigrateBatchReq, delta bool) error {
	method := proto.MethodMigrateBatch
	if delta {
		method = proto.MethodMigrateDelta
	}
	_, _, err := client.Call(ctx, addr, method, req.Marshal())
	if err != nil && delta && errors.Is(err, rpc.ErrNoSuchMethod) {
		kept := req.Items[:0:0]
		for _, it := range req.Items {
			if !it.Tombstone {
				kept = append(kept, it)
			}
		}
		req.Items = kept
		req.TombSummary = truetime.Version{}
		if len(req.Items) == 0 && !req.Final {
			return nil
		}
		_, _, err = client.Call(ctx, addr, proto.MethodMigrateBatch, req.Marshal())
	}
	return err
}

// sendItems streams items to one target in batches.
func (b *Backend) sendItems(ctx context.Context, client *rpc.Client, addr string, shard int, items []proto.MigrateItem, delta bool) error {
	for i := 0; i < len(items); i += migrateBatchSize {
		end := i + migrateBatchSize
		if end > len(items) {
			end = len(items)
		}
		req := proto.MigrateBatchReq{Shard: shard, Items: items[i:end]}
		if err := b.sendMigrate(ctx, client, addr, req, delta); err != nil {
			return err
		}
	}
	return nil
}

// routePending groups items by the pending-epoch owners of their keys
// (every member of the key's pending cohort), skipping this backend.
func (b *Backend) routePending(cfg config.CellConfig, items []proto.MigrateItem) map[string][]proto.MigrateItem {
	out := make(map[string][]proto.MigrateItem)
	for _, it := range items {
		h := b.opt.Hash(it.Key)
		p := int(h.Hi % uint64(cfg.Pending.Shards))
		for _, s := range cfg.PendingCohort(p) {
			addr := cfg.Pending.AddrFor(s)
			if addr == "" || addr == b.opt.Addr {
				continue
			}
			out[addr] = append(out[addr], it)
		}
	}
	return out
}

// streamRouted streams items to their pending-epoch owners in batches.
func (b *Backend) streamRouted(ctx context.Context, client *rpc.Client, cfg config.CellConfig, shard int, items []proto.MigrateItem, delta bool) error {
	for addr, its := range b.routePending(cfg, items) {
		if err := b.sendItems(ctx, client, addr, shard, its, delta); err != nil {
			return err
		}
	}
	return nil
}

// ResizeHandoff runs the source side of one resize step: stream this
// backend's full holdings to their pending-epoch owners, seal (via the
// caller's closure, normally a MethodSeal RPC so protocol degradation is
// visible), drain the journal, and move the tombstones. The caller flips
// SealedOld afterwards; the source stays sealed until the final config
// flip so no late old-epoch write can land on drained state.
func (b *Backend) ResizeHandoff(ctx context.Context, seal func(context.Context) error) error {
	cfg := b.store.Get()
	if cfg.Pending == nil {
		return fmt.Errorf("backend %s: resize handoff without a pending epoch", b.opt.Addr)
	}
	if b.Shard() < 0 {
		return fmt.Errorf("backend %s: no shard to hand off", b.opt.Addr)
	}
	shard := b.Shard()
	client := b.rpcClient()

	b.journalStart()
	defer b.journalStop()

	// Bulk: everything this backend holds, routed per the new epoch.
	if err := b.streamRouted(ctx, client, cfg, shard, b.Items(-1, cfg.Shards), false); err != nil {
		return err
	}
	if err := seal(ctx); err != nil {
		return err
	}
	// Catch-up: mutations that raced the bulk stream, until dry.
	for {
		keys := b.journalSwap()
		if len(keys) == 0 {
			break
		}
		if err := b.streamRouted(ctx, client, cfg, shard, b.snapshotKeys(keys), true); err != nil {
			return err
		}
	}
	// Tombstones as first-class items, then the coarse summary to every
	// pending owner (it is a whole-backend bound, so it travels wide).
	if err := b.streamRouted(ctx, client, cfg, shard, b.tombstoneMigrateItems(-1, cfg.Shards), true); err != nil {
		return err
	}
	return b.broadcastSummary(ctx, client, cfg, shard)
}

// broadcastSummary folds this backend's tombstone summary into every
// pending-epoch owner.
func (b *Backend) broadcastSummary(ctx context.Context, client *rpc.Client, cfg config.CellConfig, shard int) error {
	sum := b.tombSummary()
	if sum.Zero() {
		return nil
	}
	seen := map[string]bool{b.opt.Addr: true}
	for _, addr := range cfg.Pending.ShardAddrs {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		req := proto.MigrateBatchReq{Shard: shard, Final: true, TombSummary: sum}
		if err := b.sendMigrate(ctx, client, addr, req, true); err != nil {
			return err
		}
	}
	return nil
}

// --------------------------------------------------------- post-flip GC --

// DropForeign removes every resident entry, side-table entry, and exact
// tombstone whose post-resize cohort no longer includes this backend's
// shard — the post-flip GC of a resize. Returns how many were dropped.
func (b *Backend) DropForeign(shards, replicas int) int {
	my := b.Shard()
	if my < 0 || shards <= 0 {
		return 0
	}
	r := replicas
	if r > shards {
		r = shards
	}
	foreign := func(hi uint64) bool {
		p := int(hi % uint64(shards))
		return (my-p+shards)%shards >= r
	}

	b.lockAll()
	idx := b.idx.Load()
	var victims [][]byte
	for i := 0; i < idx.geo.Buckets; i++ {
		raw, err := idx.region.Read(idx.geo.BucketOffset(i), idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
		if err != nil {
			continue
		}
		for _, e := range dec.Entries {
			if e.Empty() || !foreign(e.Hash.Hi) {
				continue
			}
			de, derr := b.readEntry(e)
			if derr != nil {
				continue
			}
			victims = append(victims, append([]byte(nil), de.Key...))
		}
	}
	for i := range b.stripes {
		for k := range b.stripes[i].side {
			if foreign(b.opt.Hash([]byte(k)).Hi) {
				victims = append(victims, []byte(k))
			}
		}
	}
	for _, k := range victims {
		b.removeKeyLocked(b.stripeOf(b.opt.Hash(k)), k)
	}
	b.unlockAll()

	b.tombMu.Lock()
	for k := range b.tomb.entries {
		if foreign(b.opt.Hash([]byte(k)).Hi) {
			delete(b.tomb.entries, k)
		}
	}
	for k := range b.tomb.pending {
		if foreign(b.opt.Hash([]byte(k)).Hi) {
			delete(b.tomb.pending, k)
		}
	}
	b.tombLive.Store(int64(b.tomb.len()))
	b.tombMu.Unlock()
	if len(victims) > 0 && b.persist.Load() != nil {
		// Collapse the durable lineage to the trimmed corpus so a later
		// crash cannot resurrect the dropped foreign keys.
		_ = b.CheckpointNow()
	}
	return len(victims)
}

// Clear wipes the backend to an empty idle state (a shrink demoted it to
// a spare): fresh index and data regions, empty side tables, policies,
// and tombstone cache. Old windows are revoked so stale client handles
// fail validation and refresh.
func (b *Backend) Clear() {
	b.lockAll()
	oldIdx := b.idx.Load()
	oldData := b.data.Load()
	for _, w := range oldData.windowIDs() {
		b.reg.Revoke(w)
	}
	b.reg.Revoke(oldIdx.win.ID)

	dataBytes := b.opt.DataBytes
	if !b.opt.ReshapeEnabled {
		dataBytes = b.opt.DataMaxBytes
	}
	region := rmem.NewRegion(dataBytes, b.opt.DataMaxBytes)
	alloc, err := slab.New(dataBytes, b.opt.SlabBytes, nil)
	if err != nil {
		b.unlockAll()
		return
	}
	dr := &dataRegion{region: region, alloc: alloc}
	dr.windows = []*rmem.Window{b.reg.Register(region, 1)}
	dr.cur.Store(dr.windows[0])
	b.data.Store(dr)
	b.idx.Store(b.newIndex(oldIdx.geo, oldIdx.epoch+1))

	perStripe := oldIdx.geo.Buckets * oldIdx.geo.Ways / len(b.stripes)
	if perStripe < 1 {
		perStripe = 1
	}
	for i := range b.stripes {
		if pol, perr := eviction.New(b.opt.Policy, perStripe); perr == nil {
			b.stripes[i].policy = pol
		}
		b.stripes[i].side = make(map[string]sideEntry)
	}
	b.unlockAll()

	b.tombMu.Lock()
	b.tomb = newTombstoneCache(b.opt.TombstoneCap)
	b.tombMu.Unlock()
	b.tombLive.Store(0)
	b.tombSummarySet.Store(false)
	b.persistReset() // empty corpus; a crash must not resurrect the old one
}

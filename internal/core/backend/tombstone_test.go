package backend

import (
	"fmt"
	"testing"

	"cliquemap/internal/truetime"
)

func ver(n int64) truetime.Version { return truetime.Version{Micros: n, ClientID: 1, Seq: 1} }

func TestTombstoneExactLookup(t *testing.T) {
	tc := newTombstoneCache(4)
	tc.insert("a", ver(10))
	if got := tc.bound([]byte("a")); got != ver(10) {
		t.Errorf("bound(a) = %v", got)
	}
	if got := tc.bound([]byte("absent")); !got.Zero() {
		t.Errorf("bound(absent) = %v, want zero (empty summary)", got)
	}
}

func TestTombstoneNewerWins(t *testing.T) {
	tc := newTombstoneCache(4)
	tc.insert("a", ver(10))
	tc.insert("a", ver(5)) // older: ignored
	if got := tc.bound([]byte("a")); got != ver(10) {
		t.Errorf("bound = %v, want v10", got)
	}
	tc.insert("a", ver(20))
	if got := tc.bound([]byte("a")); got != ver(20) {
		t.Errorf("bound = %v, want v20", got)
	}
	if tc.len() != 1 {
		t.Errorf("len = %d", tc.len())
	}
}

// TestTombstonePendingKeepsExactBound: a tombstone evicted from the exact
// cache parks in the pending-settle queue, so its bound stays PRECISE (and
// enumerable to repair) instead of collapsing into the coarse summary.
func TestTombstonePendingKeepsExactBound(t *testing.T) {
	tc := newTombstoneCache(2)
	tc.insert("a", ver(10))
	tc.insert("b", ver(20))
	tc.insert("c", ver(5)) // evicts "a" (FIFO) into the pending queue
	if len(tc.entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(tc.entries))
	}
	if got := tc.bound([]byte("a")); got != ver(10) {
		t.Errorf("bound(a) = %v, want exact pending v10", got)
	}
	// Unrelated keys are NOT bounded until the pending queue itself
	// overflows — the summary is the second stage, not the first.
	if got := tc.bound([]byte("never-seen")); !got.Zero() {
		t.Errorf("bound(never-seen) = %v, want zero (summary unset)", got)
	}
	if tc.overflow != 0 {
		t.Errorf("overflow = %d, want 0", tc.overflow)
	}
}

// TestTombstoneSummaryUpperBound: tombstones overflowing BOTH stages are
// approximated by the summary — coarse (it bounds unrelated keys too) but
// never lower than the evicted version (§5.2: "bounded above... never
// inconsistent").
func TestTombstoneSummaryUpperBound(t *testing.T) {
	tc := newTombstoneCache(1) // pendingCap == cap == 1
	tc.insert("a", ver(10))
	tc.insert("b", ver(20)) // "a" → pending
	tc.insert("c", ver(5))  // "b" → pending, "a" overflows → summary v10
	if got := tc.bound([]byte("a")); got.Less(ver(10)) {
		t.Errorf("bound(a) = %v < evicted version", got)
	}
	if got := tc.bound([]byte("b")); got != ver(20) {
		t.Errorf("bound(b) = %v, want exact pending v20", got)
	}
	// The summary also bounds never-erased keys (documented coarseness).
	if got := tc.bound([]byte("never-seen")); got.Less(ver(10)) {
		t.Errorf("summary bound = %v", got)
	}
	if tc.overflow != 1 {
		t.Errorf("overflow = %d, want 1", tc.overflow)
	}
}

func TestTombstoneSummaryMonotone(t *testing.T) {
	tc := newTombstoneCache(1)
	var last truetime.Version
	for i := 1; i <= 50; i++ {
		tc.insert(fmt.Sprintf("k%d", i), ver(int64(i)))
		b := tc.bound([]byte("probe"))
		if b.Less(last) {
			t.Fatalf("summary regressed: %v after %v", b, last)
		}
		last = b
	}
	// With both stages at capacity 1, the 48 oldest overflowed into the
	// summary: summary >= v48 (k49 pending, k50 live).
	if tc.bound([]byte("probe")).Less(ver(48)) {
		t.Errorf("summary = %v, want >= v48", tc.bound([]byte("probe")))
	}
}

func TestTombstoneDrop(t *testing.T) {
	tc := newTombstoneCache(4)
	tc.insert("a", ver(10))
	tc.drop([]byte("a"))
	if got := tc.bound([]byte("a")); !got.Zero() {
		t.Errorf("after drop, bound = %v", got)
	}
	// Dropping one key must not shrink another key's pending bound.
	tc2 := newTombstoneCache(1)
	tc2.insert("x", ver(10))
	tc2.insert("y", ver(20)) // x evicted → pending v10
	tc2.drop([]byte("y"))
	if tc2.bound([]byte("x")).Less(ver(10)) {
		t.Error("drop shrank an unrelated pending bound")
	}
	// Nor the summary, once set by double overflow.
	tc3 := newTombstoneCache(1)
	tc3.insert("x", ver(10))
	tc3.insert("y", ver(20))
	tc3.insert("z", ver(30)) // x overflows → summary v10
	tc3.drop([]byte("z"))
	if tc3.bound([]byte("anything")).Less(ver(10)) {
		t.Error("drop shrank the summary")
	}
}

// TestTombstonePendingSettled: repair retires a pending tombstone only at
// a settle version at least as new as the parked erase.
func TestTombstonePendingSettled(t *testing.T) {
	tc := newTombstoneCache(1)
	tc.insert("a", ver(10))
	tc.insert("b", ver(20)) // a → pending v10
	tc.settled("a", ver(5)) // older settle: must NOT retire it
	if got := tc.bound([]byte("a")); got != ver(10) {
		t.Errorf("bound(a) = %v after stale settle, want v10", got)
	}
	tc.settled("a", ver(10))
	if got := tc.bound([]byte("a")); !got.Zero() {
		t.Errorf("bound(a) = %v after settle, want zero", got)
	}
	if tc.len() != 1 { // only "b" remains
		t.Errorf("len = %d, want 1", tc.len())
	}
}

func TestTombstoneZeroCapDefaults(t *testing.T) {
	tc := newTombstoneCache(0)
	if tc.cap <= 0 {
		t.Error("zero capacity not defaulted")
	}
}

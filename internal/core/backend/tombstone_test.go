package backend

import (
	"fmt"
	"testing"

	"cliquemap/internal/truetime"
)

func ver(n int64) truetime.Version { return truetime.Version{Micros: n, ClientID: 1, Seq: 1} }

func TestTombstoneExactLookup(t *testing.T) {
	tc := newTombstoneCache(4)
	tc.insert("a", ver(10))
	if got := tc.bound([]byte("a")); got != ver(10) {
		t.Errorf("bound(a) = %v", got)
	}
	if got := tc.bound([]byte("absent")); !got.Zero() {
		t.Errorf("bound(absent) = %v, want zero (empty summary)", got)
	}
}

func TestTombstoneNewerWins(t *testing.T) {
	tc := newTombstoneCache(4)
	tc.insert("a", ver(10))
	tc.insert("a", ver(5)) // older: ignored
	if got := tc.bound([]byte("a")); got != ver(10) {
		t.Errorf("bound = %v, want v10", got)
	}
	tc.insert("a", ver(20))
	if got := tc.bound([]byte("a")); got != ver(20) {
		t.Errorf("bound = %v, want v20", got)
	}
	if tc.len() != 1 {
		t.Errorf("len = %d", tc.len())
	}
}

// TestTombstoneSummaryUpperBound: evicted tombstones are approximated by
// the summary — coarse (it bounds unrelated keys too) but never lower
// than the evicted version (§5.2: "bounded above... never inconsistent").
func TestTombstoneSummaryUpperBound(t *testing.T) {
	tc := newTombstoneCache(2)
	tc.insert("a", ver(10))
	tc.insert("b", ver(20))
	tc.insert("c", ver(5)) // evicts "a" (FIFO) into the summary
	if tc.len() != 2 {
		t.Fatalf("len = %d, want 2", tc.len())
	}
	// "a" is gone from the cache; its bound must still be >= v10.
	if got := tc.bound([]byte("a")); got.Less(ver(10)) {
		t.Errorf("bound(a) = %v < evicted version", got)
	}
	// The summary also bounds never-erased keys (documented coarseness).
	if got := tc.bound([]byte("never-seen")); got.Less(ver(10)) {
		t.Errorf("summary bound = %v", got)
	}
}

func TestTombstoneSummaryMonotone(t *testing.T) {
	tc := newTombstoneCache(1)
	var last truetime.Version
	for i := 1; i <= 50; i++ {
		tc.insert(fmt.Sprintf("k%d", i), ver(int64(i)))
		b := tc.bound([]byte("probe"))
		if b.Less(last) {
			t.Fatalf("summary regressed: %v after %v", b, last)
		}
		last = b
	}
	// With capacity 1, the 49 oldest were evicted: summary >= v49.
	if tc.bound([]byte("probe")).Less(ver(49)) {
		t.Errorf("summary = %v, want >= v49", tc.bound([]byte("probe")))
	}
}

func TestTombstoneDrop(t *testing.T) {
	tc := newTombstoneCache(4)
	tc.insert("a", ver(10))
	tc.drop([]byte("a"))
	if got := tc.bound([]byte("a")); !got.Zero() {
		t.Errorf("after drop, bound = %v", got)
	}
	// Dropping must not shrink the summary.
	tc2 := newTombstoneCache(1)
	tc2.insert("x", ver(10))
	tc2.insert("y", ver(20)) // x evicted → summary v10
	tc2.drop([]byte("y"))
	if tc2.bound([]byte("anything")).Less(ver(10)) {
		t.Error("drop shrank the summary")
	}
}

func TestTombstoneZeroCapDefaults(t *testing.T) {
	tc := newTombstoneCache(0)
	if tc.cap <= 0 {
		t.Error("zero capacity not defaulted")
	}
}

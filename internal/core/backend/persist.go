package backend

// Durable warm restarts: the backend side of internal/persist.
//
// Every applied mutation is teed — under the key's stripe lock, right at
// its publication point — into the task's write-ahead journal, so the
// journal is always a superset of the acknowledged writes (the append
// happens before the RPC handler can reply). A periodic checkpoint
// collapses the journal: rotate the journal epoch under a brief all-stripe
// barrier, then scan the corpus stripe-by-stripe (mutations on other
// stripes keep flowing; anything concurrent lands in the new journal and
// re-applies idempotently on replay), and commit the image atomically.
//
// Recovery runs inside New, BEFORE the RPC service registers: the corpus
// is rebuilt from checkpoint + journal tail with zero concurrent traffic,
// then the tee activates and the backend starts serving in the
// "recovering" state — resident entries are served (they are genuine
// acked writes at monotone versions), but misses bounce with
// proto.ErrRecovering and the index's bucket headers carry a sentinel
// config stamp so one-sided RMA readers fail §6.1 validation and divert
// to RPC. A restarted replica therefore can never vote an "agreed miss"
// for a key it acked before the crash — the hole behind the rolling-crash
// lost-write flake. EndRecovery (after the §5.4 self-validation sweep)
// restamps the buckets and lifts the guard.

import (
	"cliquemap/internal/core/layout"
	"cliquemap/internal/persist"
	"cliquemap/internal/truetime"
)

// recoverStampBit is OR-ed into bucket-header config stamps while the
// backend is recovering. Real config IDs are small counters, so the high
// bit never collides; any RMA reader's §6.1 validation fails against it.
const recoverStampBit = uint64(1) << 63

// defaultCheckpointEvery collapses the journal after this many appended
// records when Options.CheckpointEvery is unset.
const defaultCheckpointEvery = 4096

// stampID is the config ID written into bucket headers: the real ID, or
// the sentinel-marked ID while recovering.
func (b *Backend) stampID() uint64 {
	id := b.configID.Load()
	if b.recovering.Load() {
		id |= recoverStampBit
	}
	return id
}

// Recovering reports whether the backend is in its post-restart
// self-validation window.
func (b *Backend) Recovering() bool { return b.recovering.Load() }

// StartRecovery (re-)enters the recovering state and restamps buckets
// with the sentinel. Normally set at construction via Options.Recovering;
// exposed for tests that flip a live backend.
func (b *Backend) StartRecovery() {
	if b.recovering.Swap(true) {
		return
	}
	b.lockAll()
	b.restampLocked()
	b.unlockAll()
}

// EndRecovery lifts the recovering guard after the self-validation sweep:
// computes how many recovered entries rejoined the quorum unchanged,
// restamps bucket headers with the true config ID, and resumes serving
// misses.
func (b *Backend) EndRecovery() {
	if !b.recovering.Swap(false) {
		return
	}
	rec, settles := b.recoveredKeys.Load(), b.recoverySettles.Load()
	if rec > settles {
		b.selfValidated.Store(rec - settles)
	} else {
		b.selfValidated.Store(0)
	}
	b.lockAll()
	b.restampLocked()
	b.unlockAll()
}

// noteRecoverySettle counts a repair-path write applied while recovering —
// a recovered entry (or hole) the quorum had to correct rather than
// confirm.
func (b *Backend) noteRecoverySettle() {
	if b.recovering.Load() {
		b.recoverySettles.Add(1)
	}
}

// openPersist opens the durable store, replays what it recovered into the
// in-memory corpus, and only then activates the journal tee. Called from
// New before the RPC service registers, so replay sees zero concurrent
// traffic.
func (b *Backend) openPersist() error {
	store, rec, err := persist.Open(b.opt.DataDir, b.opt.Shard, persist.Options{
		Hook: b.opt.PersistHook,
		Sync: b.opt.PersistSync,
	})
	if err != nil {
		return err
	}
	for _, r := range rec.Checkpoint {
		b.replayRecord(r)
	}
	for _, r := range rec.Journal {
		b.replayRecord(r)
	}
	b.replayedRecords.Store(uint64(len(rec.Journal)))
	b.recoveredKeys.Store(uint64(b.Len()))
	b.persist.Store(store) // tee active from here on
	return nil
}

// replayRecord re-applies one durable record. The version gate makes
// replay idempotent and order-tolerant across overlapping checkpoint and
// journal contents.
func (b *Backend) replayRecord(r persist.Record) {
	switch r.Op {
	case persist.OpSet:
		b.applySet(r.Key, r.Value, r.Version)
	case persist.OpErase:
		b.applyErase(r.Key, r.Version)
	}
}

// persistNote tees one applied mutation into the journal. Callers hold
// the key's stripe lock (the mutation's publication point), so the append
// is ordered before the ack and before any checkpoint rotation barrier.
// value must be the uncompressed bytes (what a client would read back).
func (b *Backend) persistNote(op byte, key, value []byte, v truetime.Version) {
	p := b.persist.Load()
	if p == nil {
		return
	}
	_ = p.Append(persist.Record{Op: op, Key: key, Value: value, Version: v})
}

// maybeCheckpoint spawns an async checkpoint when the journal is deep
// enough. Called with no stripe lock held.
func (b *Backend) maybeCheckpoint() {
	p := b.persist.Load()
	if p == nil {
		return
	}
	every := uint64(b.opt.CheckpointEvery)
	if every == 0 {
		every = defaultCheckpointEvery
	}
	if recs, _ := p.Depth(); recs < every {
		return
	}
	if !b.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer b.ckptRunning.Store(false)
		_ = b.CheckpointNow()
	}()
}

// CheckpointNow takes a full corpus checkpoint: rotate the journal epoch
// under the all-stripe barrier, then scan stripe-by-stripe and commit.
// Mutations are paused only for the rotation (a file create) — the scan
// holds one stripe at a time, and anything landing mid-scan is in the new
// journal, where version-gated replay makes the overlap idempotent.
func (b *Backend) CheckpointNow() error {
	p := b.persist.Load()
	if p == nil {
		return nil
	}
	b.lockAll()
	epoch, err := p.Rotate()
	b.unlockAll()
	if err != nil {
		return err
	}
	cw, err := p.BeginCheckpoint(epoch, b.configID.Load())
	if err != nil {
		return err
	}
	for si := range b.stripes {
		for _, r := range b.checkpointScanStripe(si) {
			if werr := cw.Write(r); werr != nil {
				return werr // leave ckpt.tmp as the crash left it
			}
		}
	}
	// Enumerable tombstones (live cache plus the pending-settle queue)
	// ride along as erase records so version bounds on recently-erased
	// keys survive the restart (the coarse summary does not; it re-forms
	// as the cache refills).
	b.tombMu.Lock()
	tombs := make([]persist.Record, 0, len(b.tomb.entries)+len(b.tomb.pending))
	for k, v := range b.tomb.entries {
		tombs = append(tombs, persist.Record{Op: persist.OpErase, Key: []byte(k), Version: v})
	}
	for k, v := range b.tomb.pending {
		if _, live := b.tomb.entries[k]; !live {
			tombs = append(tombs, persist.Record{Op: persist.OpErase, Key: []byte(k), Version: v})
		}
	}
	b.tombMu.Unlock()
	for _, r := range tombs {
		if werr := cw.Write(r); werr != nil {
			return werr
		}
	}
	return cw.Commit()
}

// checkpointScanStripe snapshots one stripe's resident entries (bucket
// i%nStripes == si, plus that stripe's side table) under its lock.
func (b *Backend) checkpointScanStripe(si int) []persist.Record {
	s := &b.stripes[si]
	s.mu.Lock()
	defer s.unlock()
	idx := b.idx.Load()
	var out []persist.Record
	for i := si; i < idx.geo.Buckets; i += int(b.nStripes) {
		raw, err := idx.region.Read(idx.geo.BucketOffset(i), idx.geo.BucketSize())
		if err != nil {
			continue
		}
		dec, err := layout.DecodeBucket(raw, idx.geo.Ways)
		if err != nil {
			continue
		}
		for slot, e := range dec.Entries {
			if e.Empty() {
				continue
			}
			de, ok := b.readEntryQuarantining(idx, i, slot, e)
			if !ok {
				continue
			}
			val, merr := de.MaterializeValue()
			if merr != nil {
				continue
			}
			out = append(out, persist.Record{
				Op:      persist.OpSet,
				Key:     append([]byte(nil), de.Key...),
				Value:   val,
				Version: de.Version,
			})
		}
	}
	for k, se := range s.side {
		out = append(out, persist.Record{
			Op:      persist.OpSet,
			Key:     []byte(k),
			Value:   append([]byte(nil), se.value...),
			Version: se.version,
		})
	}
	return out
}

// persistReset wipes the durable lineage when the in-memory corpus is
// discarded wholesale (Clear on a shrink demotion), so a later crash
// cannot resurrect dropped keys.
func (b *Backend) persistReset() {
	if p := b.persist.Load(); p != nil {
		_ = p.Reset()
	}
}

// PersistStore exposes the durable store (tests, telemetry); nil when the
// backend runs memory-only.
func (b *Backend) PersistStore() *persist.Store { return b.persist.Load() }

// RecoveryStats is the backend's durable-restart telemetry, served via
// MethodStats.
type RecoveryStats struct {
	CkptEpoch       uint64
	CkptUnixNano    int64
	JournalRecords  uint64
	JournalBytes    uint64
	RecoveredKeys   uint64
	ReplayedRecords uint64
	SelfValidated   uint64
	Recovering      bool
}

// RecoveryStatsSnapshot gathers the durable-restart telemetry.
func (b *Backend) RecoveryStatsSnapshot() RecoveryStats {
	rs := RecoveryStats{
		RecoveredKeys:   b.recoveredKeys.Load(),
		ReplayedRecords: b.replayedRecords.Load(),
		SelfValidated:   b.selfValidated.Load(),
		Recovering:      b.recovering.Load(),
	}
	if p := b.persist.Load(); p != nil {
		rs.CkptEpoch, rs.CkptUnixNano = p.CheckpointState()
		rs.JournalRecords, rs.JournalBytes = p.Depth()
	}
	return rs
}

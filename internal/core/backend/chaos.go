package backend

import (
	"math/rand"

	"cliquemap/internal/core/layout"
)

// CorruptEntries flips one random bit in up to n distinct live DataEntries
// and returns the keys of the entries it damaged. It is the chaos plane's
// registered-memory corruption actuator: the flip lands through the data
// region's stripe locks (rmem.FlipBit), so it models a silent DRAM/DMA
// corruption rather than a Go-level race, and the only defense is the §3
// self-validating checksum on the read path.
//
// Buckets are visited in a seeded random order, one victim entry per
// bucket, each selected and flipped under its bucket's stripe lock so the
// index entry cannot be freed or rewritten between selection and flip. An
// entry that is already undecodable is skipped (its key is unknowable);
// callers therefore get back exactly the set of keys whose stored bytes
// went from valid to corrupt in this call.
func (b *Backend) CorruptEntries(n int, seed uint64) [][]byte {
	if n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	bufs := bufPool.Get().(*opBufs)
	defer bufPool.Put(bufs)

	var keys [][]byte
	idx := b.idx.Load()
	for _, bucket := range rng.Perm(idx.geo.Buckets) {
		if len(keys) >= n {
			break
		}
		s := &b.stripes[uint64(bucket)%b.nStripes]
		s.mu.Lock()
		// Re-load under the lock: a concurrent resize swaps the index under
		// all stripe locks, so the bucket number may no longer be valid.
		cur := b.idx.Load()
		if cur != idx && bucket >= cur.geo.Buckets {
			s.unlock()
			continue
		}
		raw := readBucketInto(cur, bucket, bufs)
		key := b.corruptOneLocked(cur, raw, rng)
		s.unlock()
		if key != nil {
			keys = append(keys, key)
		}
	}
	return keys
}

// corruptOneLocked picks one decodable live entry in the raw bucket and
// flips a random bit inside its stored DataEntry. Caller holds the
// bucket's stripe lock. Returns the damaged entry's key, or nil.
func (b *Backend) corruptOneLocked(idx *indexRegion, raw []byte, rng *rand.Rand) []byte {
	if raw == nil {
		return nil
	}
	for _, slot := range rng.Perm(idx.geo.Ways) {
		e, err := layout.DecodeIndexEntry(raw[layout.BucketHeaderSize+slot*layout.IndexEntrySize:])
		if err != nil || e.Ptr.Nil() {
			continue
		}
		w, werr := b.reg.Lookup(e.Ptr.Window)
		if werr != nil {
			continue
		}
		stored, rerr := w.Region.Read(int(e.Ptr.Offset), int(e.Ptr.Size))
		if rerr != nil {
			continue
		}
		de, derr := layout.DecodeDataEntry(stored)
		if derr != nil {
			continue // already corrupt; key unknowable
		}
		off := int(e.Ptr.Offset) + rng.Intn(int(e.Ptr.Size))
		if w.Region.FlipBit(off, 1<<uint(rng.Intn(8))) != nil {
			continue
		}
		return append([]byte(nil), de.Key...)
	}
	return nil
}

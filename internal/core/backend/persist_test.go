package backend

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cliquemap/internal/core/proto"
	"cliquemap/internal/persist"
)

// TestWarmRestartRecoversCorpus: a backend restarted against its data
// directory rebuilds the full acked corpus — checkpointed entries,
// journal-tail entries, and tombstones — without any network repair.
func TestWarmRestartRecoversCorpus(t *testing.T) {
	dir := t.TempDir()
	r1 := newRig(t, Options{Shard: 0, DataDir: dir})
	vals := map[string]string{}
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i)
		if applied, _, _ := r1.b.applySet([]byte(k), []byte(v), r1.v()); !applied {
			t.Fatalf("set %s not applied", k)
		}
		vals[k] = v
	}
	if err := r1.b.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint tail: overwrites, new keys, and an erase — all of
	// this lives only in the journal.
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val2-%02d", i)
		if applied, _, _ := r1.b.applySet([]byte(k), []byte(v), r1.v()); !applied {
			t.Fatalf("overwrite %s not applied", k)
		}
		vals[k] = v
	}
	if applied, _ := r1.b.applyErase([]byte("key-20"), r1.v()); !applied {
		t.Fatal("erase not applied")
	}
	delete(vals, "key-20")

	// "Crash": abandon r1 and rebuild a backend over the same directory,
	// the way cell.RestartBegin does.
	r2 := newRig(t, Options{Shard: 0, DataDir: dir, Recovering: true})
	for k, want := range vals {
		got, _, found := r2.b.localGet([]byte(k))
		if !found {
			t.Fatalf("lost acked write %q after warm restart", k)
		}
		if string(got) != want {
			t.Fatalf("key %q = %q after warm restart, want %q", k, got, want)
		}
	}
	if _, _, found := r2.b.localGet([]byte("key-20")); found {
		t.Fatal("acked erase resurrected by warm restart")
	}
	if got := r2.b.Len(); got != len(vals) {
		t.Fatalf("recovered %d resident keys, want %d", got, len(vals))
	}
	rs := r2.b.RecoveryStatsSnapshot()
	if rs.RecoveredKeys != uint64(len(vals)) {
		t.Fatalf("RecoveredKeys = %d, want %d", rs.RecoveredKeys, len(vals))
	}
	if rs.ReplayedRecords == 0 {
		t.Fatal("ReplayedRecords = 0, journal tail was not replayed")
	}
	if !rs.Recovering {
		t.Fatal("backend not in recovering state after warm restart")
	}
	if rs.CkptEpoch == 0 {
		t.Fatal("checkpoint epoch not recovered")
	}
}

// TestRecoveringMissBounce: while recovering, resident keys serve over
// RPC but misses bounce with ErrRecovering — the replica withholds its
// miss vote so the quorum cannot agree-miss a key it acked pre-crash.
func TestRecoveringMissBounce(t *testing.T) {
	dir := t.TempDir()
	r1 := newRig(t, Options{Shard: 0, DataDir: dir})
	if applied, _, _ := r1.b.applySet([]byte("resident"), []byte("x"), r1.v()); !applied {
		t.Fatal("set not applied")
	}

	r2 := newRig(t, Options{Shard: 0, DataDir: dir, Recovering: true})
	ctx := context.Background()
	client := r2.net.Client(7, "t")
	resp, _, err := client.Call(ctx, "b0", proto.MethodGet, proto.GetReq{Key: []byte("resident")}.Marshal())
	if err != nil {
		t.Fatalf("resident GET bounced while recovering: %v", err)
	}
	gr, err := proto.UnmarshalGetResp(resp)
	if err != nil || !gr.Found || string(gr.Value) != "x" {
		t.Fatalf("resident GET = %+v, err=%v", gr, err)
	}
	_, _, err = client.Call(ctx, "b0", proto.MethodGet, proto.GetReq{Key: []byte("absent")}.Marshal())
	if !errors.Is(err, proto.ErrRecovering) {
		t.Fatalf("miss while recovering: err=%v, want ErrRecovering", err)
	}

	r2.b.EndRecovery()
	resp, _, err = client.Call(ctx, "b0", proto.MethodGet, proto.GetReq{Key: []byte("absent")}.Marshal())
	if err != nil {
		t.Fatalf("miss after EndRecovery: %v", err)
	}
	if gr, _ := proto.UnmarshalGetResp(resp); gr.Found {
		t.Fatal("absent key found after EndRecovery")
	}
	rs := r2.b.RecoveryStatsSnapshot()
	if rs.Recovering {
		t.Fatal("still recovering after EndRecovery")
	}
	// One recovered key, no repair-path settles: it self-validated.
	if rs.SelfValidated != 1 {
		t.Fatalf("SelfValidated = %d, want 1", rs.SelfValidated)
	}
}

// TestWarmRestartSurvivesMidCheckpointCrash: a crash torn mid-checkpoint
// falls back to the journal lineage — nothing acked is lost.
func TestWarmRestartSurvivesMidCheckpointCrash(t *testing.T) {
	for _, point := range []string{"checkpoint.record.torn", "checkpoint.rename", "checkpoint.footer.torn"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			r1 := newRig(t, Options{Shard: 0, DataDir: dir, PersistHook: func(p string) bool { return p == point }})
			vals := map[string]string{}
			for i := 0; i < 25; i++ {
				k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i)
				if applied, _, _ := r1.b.applySet([]byte(k), []byte(v), r1.v()); !applied {
					t.Fatalf("set %s not applied", k)
				}
				vals[k] = v
			}
			if err := r1.b.CheckpointNow(); !errors.Is(err, persist.ErrCrashed) {
				t.Fatalf("checkpoint survived crash point %s: %v", point, err)
			}
			r2 := newRig(t, Options{Shard: 0, DataDir: dir, Recovering: true})
			for k, want := range vals {
				got, _, found := r2.b.localGet([]byte(k))
				if !found || string(got) != want {
					t.Fatalf("lost acked write %q after crash at %s", k, point)
				}
			}
		})
	}
}

// TestJournalDepthTriggersCheckpoint: crossing CheckpointEvery collapses
// the journal into a checkpoint automatically.
func TestJournalDepthTriggersCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r := newRig(t, Options{Shard: 0, DataDir: dir, CheckpointEvery: 16})
	for i := 0; i < 64; i++ {
		r.b.applySet([]byte(fmt.Sprintf("k%03d", i)), []byte("v"), r.v())
	}
	// The trigger runs async; force completion deterministically.
	if err := r.b.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	rs := r.b.RecoveryStatsSnapshot()
	if rs.CkptEpoch == 0 {
		t.Fatal("no checkpoint after crossing the journal-depth trigger")
	}
	if rs.JournalRecords != 0 {
		t.Fatalf("journal depth %d after checkpoint, want 0", rs.JournalRecords)
	}
}

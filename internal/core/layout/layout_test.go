package layout

import (
	"bytes"
	"testing"
	"testing/quick"

	"cliquemap/internal/hashring"
	"cliquemap/internal/rmem"
	"cliquemap/internal/truetime"
)

func sampleVersion() truetime.Version {
	return truetime.Version{Micros: 123456789, ClientID: 42, Seq: 7}
}

func TestIndexEntryRoundTrip(t *testing.T) {
	e := IndexEntry{
		Hash:    hashring.KeyHash{Hi: 0xdead, Lo: 0xbeef},
		Version: sampleVersion(),
		Ptr:     Pointer{Window: 3, Offset: 4096, Size: 128},
	}
	buf := make([]byte, IndexEntrySize)
	EncodeIndexEntry(buf, e)
	got, err := DecodeIndexEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip: %+v != %+v", got, e)
	}
}

func TestIndexEntryRoundTripProperty(t *testing.T) {
	f := func(hi, lo, w, off, sz uint64, mic int64, cid, seq uint64) bool {
		e := IndexEntry{
			Hash:    hashring.KeyHash{Hi: hi, Lo: lo},
			Version: truetime.Version{Micros: mic, ClientID: cid, Seq: seq},
			Ptr:     Pointer{Window: rmem.WindowID(w), Offset: off, Size: sz},
		}
		buf := make([]byte, IndexEntrySize)
		EncodeIndexEntry(buf, e)
		got, err := DecodeIndexEntry(buf)
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeIndexEntryShort(t *testing.T) {
	if _, err := DecodeIndexEntry(make([]byte, IndexEntrySize-1)); err == nil {
		t.Error("short index entry decoded")
	}
}

func TestEmptyEntry(t *testing.T) {
	var e IndexEntry
	if !e.Empty() {
		t.Error("zero entry should be empty")
	}
	e.Hash = hashring.KeyHash{Hi: 1}
	if e.Empty() {
		t.Error("hashed entry should not be empty")
	}
	if !(Pointer{}).Nil() {
		t.Error("zero pointer should be nil")
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry{Buckets: 100, Ways: DefaultWays}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.BucketSize() != 1024 {
		t.Errorf("default bucket size = %d, want 1024 (paper's 1KB buckets)", g.BucketSize())
	}
	if g.RegionBytes() != 100*1024 {
		t.Errorf("region bytes = %d", g.RegionBytes())
	}
	if g.BucketOffset(3) != 3*1024 {
		t.Errorf("offset(3) = %d", g.BucketOffset(3))
	}
	if (Geometry{Buckets: 0, Ways: 1}).Validate() == nil {
		t.Error("zero buckets validated")
	}
	if (Geometry{Buckets: 1, Ways: 0}).Validate() == nil {
		t.Error("zero ways validated")
	}
}

func TestBucketEncodeDecodeFind(t *testing.T) {
	g := Geometry{Buckets: 1, Ways: 4}
	raw := make([]byte, g.BucketSize())
	EncodeBucketHeader(raw, 77, OverflowFlag)
	want := IndexEntry{
		Hash:    hashring.KeyHash{Hi: 5, Lo: 6},
		Version: sampleVersion(),
		Ptr:     Pointer{Window: 1, Offset: 64, Size: 32},
	}
	EncodeIndexEntry(raw[BucketHeaderSize+2*IndexEntrySize:], want)

	b, err := DecodeBucket(raw, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.ConfigID != 77 {
		t.Errorf("config id = %d", b.ConfigID)
	}
	if !b.Overflowed() {
		t.Error("overflow flag lost")
	}
	got, slot, ok := b.Find(want.Hash)
	if !ok || slot != 2 || got != want {
		t.Errorf("Find = %+v slot %d ok %v", got, slot, ok)
	}
	if _, _, ok := b.Find(hashring.KeyHash{Hi: 9, Lo: 9}); ok {
		t.Error("found absent hash")
	}
}

func TestDecodeBucketShort(t *testing.T) {
	if _, err := DecodeBucket(make([]byte, 100), 4); err == nil {
		t.Error("short bucket decoded")
	}
}

func TestDataEntryRoundTrip(t *testing.T) {
	key, val := []byte("user:1234"), []byte("profile-data-here")
	v := sampleVersion()
	buf := make([]byte, DataEntrySize(len(key), len(val)))
	n := EncodeDataEntry(buf, key, val, v)
	if n != len(buf) {
		t.Errorf("encoded %d, want %d", n, len(buf))
	}
	e, err := DecodeDataEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Key, key) || !bytes.Equal(e.Value, val) || e.Version != v {
		t.Errorf("decoded %+v", e)
	}
	if err := e.ValidateAgainst(key, &v); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestDataEntryRoundTripProperty(t *testing.T) {
	f := func(key, val []byte, mic int64, cid, seq uint64) bool {
		v := truetime.Version{Micros: mic, ClientID: cid, Seq: seq}
		buf := make([]byte, DataEntrySize(len(key), len(val)))
		EncodeDataEntry(buf, key, val, v)
		e, err := DecodeDataEntry(buf)
		return err == nil && bytes.Equal(e.Key, key) && bytes.Equal(e.Value, val) && e.Version == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTornDataEntryDetected flips bytes across the encoded entry and
// requires every flip to be caught — the self-validation property.
func TestTornDataEntryDetected(t *testing.T) {
	key, val := []byte("k"), make([]byte, 512)
	for i := range val {
		val[i] = byte(i * 7)
	}
	buf := make([]byte, DataEntrySize(len(key), len(val)))
	EncodeDataEntry(buf, key, val, sampleVersion())
	for i := 0; i < len(buf); i += 13 {
		buf[i] ^= 0xff
		if _, err := DecodeDataEntry(buf); err == nil {
			t.Fatalf("byte flip at %d undetected", i)
		}
		buf[i] ^= 0xff
	}
	if _, err := DecodeDataEntry(buf); err != nil {
		t.Fatalf("pristine entry failed: %v", err)
	}
}

// TestHalfOverwrittenEntryIsTornRead simulates the §5.3 race: an entry
// half-overwritten by a new value (prefix of new bytes, suffix of old)
// must decode as ErrTornRead.
func TestHalfOverwrittenEntryIsTornRead(t *testing.T) {
	key := []byte("contended-key")
	oldVal := bytes.Repeat([]byte{0xAA}, 1024)
	newVal := bytes.Repeat([]byte{0xBB}, 1024)
	v0, v1 := sampleVersion(), truetime.Version{Micros: 999999999, ClientID: 1, Seq: 1}

	oldBuf := make([]byte, DataEntrySize(len(key), len(oldVal)))
	EncodeDataEntry(oldBuf, key, oldVal, v0)
	newBuf := make([]byte, DataEntrySize(len(key), len(newVal)))
	EncodeDataEntry(newBuf, key, newVal, v1)

	for _, cut := range []int{1, DataEntryHeaderSize, DataEntryHeaderSize + 100, len(oldBuf) - 1} {
		torn := append(append([]byte{}, newBuf[:cut]...), oldBuf[cut:]...)
		if bytes.Equal(torn, oldBuf) || bytes.Equal(torn, newBuf) {
			continue // cut fell inside a byte-identical prefix/suffix: not torn
		}
		if _, err := DecodeDataEntry(torn); err != ErrTornRead {
			t.Errorf("cut at %d: got %v, want ErrTornRead", cut, err)
		}
	}
}

func TestTornLengthFieldIsTornRead(t *testing.T) {
	buf := make([]byte, DataEntrySize(1, 1))
	EncodeDataEntry(buf, []byte("k"), []byte("v"), sampleVersion())
	buf[0] = 0xff // keyLen now points far past the read
	if _, err := DecodeDataEntry(buf); err != ErrTornRead {
		t.Errorf("oversize length: got %v, want ErrTornRead", err)
	}
}

func TestDecodeDataEntryTooShort(t *testing.T) {
	if _, err := DecodeDataEntry(make([]byte, 10)); err == nil {
		t.Error("10-byte entry decoded")
	}
}

func TestValidateAgainst(t *testing.T) {
	key, val := []byte("real-key"), []byte("v")
	v := sampleVersion()
	buf := make([]byte, DataEntrySize(len(key), len(val)))
	EncodeDataEntry(buf, key, val, v)
	e, err := DecodeDataEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ValidateAgainst([]byte("other-key"), nil); err != ErrKeyMismatch {
		t.Errorf("key mismatch: got %v", err)
	}
	other := truetime.Version{Micros: 1}
	if err := e.ValidateAgainst(key, &other); err != ErrTornRead {
		t.Errorf("version mismatch: got %v", err)
	}
	if err := e.ValidateAgainst(key, nil); err != nil {
		t.Errorf("nil quorum should skip version check: %v", err)
	}
}

func TestEntryChecksumVersionSensitive(t *testing.T) {
	k, val := []byte("k"), []byte("v")
	a := EntryChecksum(k, val, truetime.Version{Micros: 1})
	b := EntryChecksum(k, val, truetime.Version{Micros: 2})
	if a == b {
		t.Error("checksum insensitive to version")
	}
}

func BenchmarkEncodeDataEntry4KB(b *testing.B) {
	key := []byte("bench-key")
	val := make([]byte, 4096)
	buf := make([]byte, DataEntrySize(len(key), len(val)))
	v := sampleVersion()
	b.SetBytes(int64(len(val)))
	for i := 0; i < b.N; i++ {
		EncodeDataEntry(buf, key, val, v)
	}
}

func BenchmarkDecodeDataEntry4KB(b *testing.B) {
	key := []byte("bench-key")
	val := make([]byte, 4096)
	buf := make([]byte, DataEntrySize(len(key), len(val)))
	EncodeDataEntry(buf, key, val, sampleVersion())
	b.SetBytes(int64(len(val)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDataEntry(buf); err != nil {
			b.Fatal(err)
		}
	}
}

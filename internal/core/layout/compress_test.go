package layout

import (
	"bytes"
	"testing"
	"testing/quick"

	"cliquemap/internal/truetime"
)

func compressible(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(i / 64) // long runs: compresses well
	}
	return v
}

func incompressible(n int) []byte {
	v := make([]byte, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range v {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[i] = byte(x)
	}
	return v
}

func TestCompressValueShrinks(t *testing.T) {
	v := compressible(4096)
	stored, ok := CompressValue(v)
	if !ok {
		t.Fatal("compressible value not compressed")
	}
	if len(stored) >= len(v) {
		t.Fatalf("stored %d >= original %d", len(stored), len(v))
	}
	back, err := DecompressValue(stored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, v) {
		t.Error("round trip mismatch")
	}
}

func TestCompressValueDeclines(t *testing.T) {
	if _, ok := CompressValue([]byte("tiny")); ok {
		t.Error("tiny value compressed")
	}
	v := incompressible(4096)
	stored, ok := CompressValue(v)
	if ok {
		t.Errorf("incompressible value 'compressed' to %d bytes", len(stored))
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(v []byte) bool {
		stored, ok := CompressValue(v)
		if !ok {
			return bytes.Equal(stored, v)
		}
		back, err := DecompressValue(stored)
		return err == nil && bytes.Equal(back, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressedEntryRoundTrip(t *testing.T) {
	key := []byte("ck")
	v := truetime.Version{Micros: 5, ClientID: 6, Seq: 7}
	val := compressible(2048)
	stored, ok := CompressValue(val)
	if !ok {
		t.Fatal("setup: not compressed")
	}
	buf := make([]byte, DataEntrySize(len(key), len(stored)))
	EncodeDataEntryFlagged(buf, key, stored, v, true)

	e, err := DecodeDataEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Compressed {
		t.Fatal("compressed flag lost")
	}
	if err := e.ValidateAgainst(key, &v); err != nil {
		t.Fatal(err)
	}
	got, err := e.MaterializeValue()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Error("materialized value mismatch")
	}
}

// TestCompressedFlagCoveredByChecksum: flipping just the compression bit
// must fail validation — otherwise a torn flag could make a client
// misinterpret raw bytes as DEFLATE or vice versa.
func TestCompressedFlagCoveredByChecksum(t *testing.T) {
	key := []byte("k")
	val := compressible(1024)
	stored, _ := CompressValue(val)
	v := truetime.Version{Micros: 1, ClientID: 1, Seq: 1}
	buf := make([]byte, DataEntrySize(len(key), len(stored)))
	EncodeDataEntryFlagged(buf, key, stored, v, true)
	buf[7] ^= 0x80 // clear the compressedBit (top bit of the length word)
	if _, err := DecodeDataEntry(buf); err != ErrTornRead {
		t.Errorf("flag flip: got %v, want ErrTornRead", err)
	}
}

func TestUncompressedMaterialize(t *testing.T) {
	key, val := []byte("k"), []byte("plain")
	v := truetime.Version{Micros: 1}
	buf := make([]byte, DataEntrySize(len(key), len(val)))
	EncodeDataEntry(buf, key, val, v)
	e, err := DecodeDataEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.Compressed {
		t.Error("plain entry marked compressed")
	}
	got, err := e.MaterializeValue()
	if err != nil || !bytes.Equal(got, val) {
		t.Errorf("materialize: %q %v", got, err)
	}
	// Must be a copy, not an alias into the entry buffer.
	got[0] = 'X'
	if e.Value[0] == 'X' {
		t.Error("MaterializeValue aliased entry storage")
	}
}

func BenchmarkCompress4KB(b *testing.B) {
	v := compressible(4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CompressValue(v)
	}
}

package layout

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// flateWriters pools DEFLATE encoders: flate.NewWriter allocates large
// internal tables, which would otherwise dominate SET cost.
var flateWriters = sync.Pool{
	New: func() interface{} {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// CompressValue DEFLATE-compresses value, returning (stored, true) when
// compression actually shrinks it, or (value, false) otherwise. Backends
// call this in the SET handler when compression is enabled — the whole
// feature lives on the RPC mutation path, which is exactly the agility
// argument of §9: the RMA read format only grew a flag bit.
func CompressValue(value []byte) ([]byte, bool) {
	if len(value) < 64 {
		return value, false // too small to be worth the header
	}
	var buf bytes.Buffer
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	_, werr := w.Write(value)
	cerr := w.Close()
	flateWriters.Put(w)
	if werr != nil || cerr != nil {
		return value, false
	}
	if buf.Len() >= len(value) {
		return value, false
	}
	return buf.Bytes(), true
}

// DecompressValue expands a compressed stored value. Readers call this
// only after checksum validation, so corrupt input here indicates a bug,
// not a torn read.
func DecompressValue(stored []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(stored))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("layout: decompress: %w", err)
	}
	return out, nil
}

// MaterializeValue returns the logical value of a validated entry,
// decompressing if needed.
func (e DataEntry) MaterializeValue() ([]byte, error) {
	if !e.Compressed {
		return append([]byte(nil), e.Value...), nil
	}
	return DecompressValue(e.Value)
}

package layout

import (
	"testing"

	"cliquemap/internal/truetime"
)

// Decoders parse bytes produced by raw RMA reads of remote memory — which
// can be torn, half-rewritten, or (after a window mix-up) arbitrary. They
// must never panic; every outcome is either a valid entry or a retryable
// error. `go test` runs the seed corpus; `go test -fuzz=FuzzDecodeDataEntry`
// explores further.

func FuzzDecodeDataEntry(f *testing.F) {
	good := make([]byte, DataEntrySize(3, 5))
	EncodeDataEntry(good, []byte("key"), []byte("value"), truetime.Version{Micros: 1, ClientID: 2, Seq: 3})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, DataEntryHeaderSize))
	torn := append([]byte(nil), good...)
	torn[DataEntryHeaderSize] ^= 0xff
	f.Add(torn)
	comp := make([]byte, DataEntrySize(1, 30))
	stored, ok := CompressValue(make([]byte, 4096))
	if ok && len(stored) <= 30 {
		EncodeDataEntryFlagged(comp[:DataEntrySize(1, len(stored))], []byte("k"), stored, truetime.Version{Micros: 9}, true)
		f.Add(comp)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeDataEntry(data)
		if err != nil {
			return // any error is fine; panics are not
		}
		// A decode that passes the checksum must also materialize without
		// panicking (decompression errors are allowed as errors).
		if _, merr := e.MaterializeValue(); merr != nil && !e.Compressed {
			t.Errorf("uncompressed materialize failed: %v", merr)
		}
	})
}

func FuzzDecodeBucket(f *testing.F) {
	g := Geometry{Buckets: 1, Ways: 4}
	raw := make([]byte, g.BucketSize())
	EncodeBucketHeader(raw, 1, 0)
	f.Add(raw, 4)
	f.Add([]byte{}, 4)
	f.Add(make([]byte, 10), 2)
	f.Fuzz(func(t *testing.T, data []byte, ways int) {
		if ways <= 0 || ways > 64 {
			return
		}
		b, err := DecodeBucket(data, ways)
		if err != nil {
			return
		}
		if len(b.Entries) != ways {
			t.Errorf("decoded %d entries, want %d", len(b.Entries), ways)
		}
	})
}

package layout

import (
	"testing"

	"cliquemap/internal/truetime"
)

// Decoders parse bytes produced by raw RMA reads of remote memory — which
// can be torn, half-rewritten, or (after a window mix-up) arbitrary. They
// must never panic; every outcome is either a valid entry or a retryable
// error. `go test` runs the seed corpus; `go test -fuzz=FuzzDecodeDataEntry`
// explores further.

func FuzzDecodeDataEntry(f *testing.F) {
	good := make([]byte, DataEntrySize(3, 5))
	EncodeDataEntry(good, []byte("key"), []byte("value"), truetime.Version{Micros: 1, ClientID: 2, Seq: 3})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, DataEntryHeaderSize))
	torn := append([]byte(nil), good...)
	torn[DataEntryHeaderSize] ^= 0xff
	f.Add(torn)
	comp := make([]byte, DataEntrySize(1, 30))
	stored, ok := CompressValue(make([]byte, 4096))
	if ok && len(stored) <= 30 {
		EncodeDataEntryFlagged(comp[:DataEntrySize(1, len(stored))], []byte("k"), stored, truetime.Version{Micros: 9}, true)
		f.Add(comp)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeDataEntry(data)
		if err != nil {
			return // any error is fine; panics are not
		}
		// A decode that passes the checksum must also materialize without
		// panicking (decompression errors are allowed as errors).
		if _, merr := e.MaterializeValue(); merr != nil && !e.Compressed {
			t.Errorf("uncompressed materialize failed: %v", merr)
		}
	})
}

// FuzzDataEntryBitFlip models the chaos plane's registered-memory
// corruption hazard: up to three single-bit flips anywhere in a valid
// encoded DataEntry. CRC32C has Hamming distance 4 over these entry
// lengths, so every such flip MUST fail the checksum — a decode that
// succeeds on damaged bytes would be a silent false-accept, the §3
// self-validation failing at its one job. (Heavier damage may collide;
// the ≤3-bit bound is where detection is a guarantee, not a likelihood.)
func FuzzDataEntryBitFlip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), uint16(0), uint16(9), uint16(40))
	f.Add([]byte("k"), []byte{}, uint16(3), uint16(3), uint16(3))
	f.Add([]byte("a-much-longer-key-name"), make([]byte, 2048), uint16(17), uint16(1999), uint16(64))

	f.Fuzz(func(t *testing.T, key, value []byte, p1, p2, p3 uint16) {
		if len(key) == 0 || len(key) > 256 || len(value) > 4096 {
			return
		}
		buf := make([]byte, DataEntrySize(len(key), len(value)))
		EncodeDataEntry(buf, key, value, truetime.Version{Micros: 7, ClientID: 1, Seq: 2})
		if _, err := DecodeDataEntry(buf); err != nil {
			t.Fatalf("pristine entry failed decode: %v", err)
		}
		// Distinct bit positions only: flipping one bit twice heals it.
		bits := map[uint64]bool{}
		for _, p := range []uint16{p1, p2, p3} {
			bits[uint64(p)%uint64(len(buf)*8)] = true
		}
		for b := range bits {
			buf[b/8] ^= 1 << (b % 8)
		}
		if _, err := DecodeDataEntry(buf); err == nil {
			t.Fatalf("false accept: %d flipped bits decoded clean (len=%d)", len(bits), len(buf))
		}
	})
}

// FuzzDecodeIndexEntry feeds arbitrary bytes (a torn or corrupted bucket
// slot) to the IndexEntry decoder: it must never panic, and any decode of
// a full-size slot must re-encode to the same bytes it consumed —
// corruption may yield a garbage entry (the quorum and data checksum
// reject it downstream) but never an unstable one.
func FuzzDecodeIndexEntry(f *testing.F) {
	var e IndexEntry
	good := make([]byte, IndexEntrySize)
	EncodeIndexEntry(good, e)
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, IndexEntrySize-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeIndexEntry(data)
		if err != nil {
			return
		}
		out := make([]byte, IndexEntrySize)
		EncodeIndexEntry(out, e)
		for i := 0; i < IndexEntrySize-8; i++ { // trailing word is reserved
			if out[i] != data[i] {
				t.Fatalf("round-trip unstable at byte %d: %#x != %#x", i, out[i], data[i])
			}
		}
	})
}

func FuzzDecodeBucket(f *testing.F) {
	g := Geometry{Buckets: 1, Ways: 4}
	raw := make([]byte, g.BucketSize())
	EncodeBucketHeader(raw, 1, 0)
	f.Add(raw, 4)
	f.Add([]byte{}, 4)
	f.Add(make([]byte, 10), 2)
	f.Fuzz(func(t *testing.T, data []byte, ways int) {
		if ways <= 0 || ways > 64 {
			return
		}
		b, err := DecodeBucket(data, ways)
		if err != nil {
			return
		}
		if len(b.Entries) != ways {
			t.Errorf("decoded %d entries, want %d", len(b.Entries), ways)
		}
	})
}

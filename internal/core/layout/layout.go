// Package layout defines CliqueMap's RMA-accessible memory formats
// (Figure 1 of the paper): the index region of fixed-size Buckets holding
// fixed-size IndexEntries, and the data region of variable-size DataEntries
// guarded by checksums.
//
// Everything here is byte-exact and position-independent because clients
// parse these structures out of raw RMA reads, with no server code running.
// The formats therefore carry everything a client needs to self-validate a
// response (§3): the KeyHash tag, the VersionNumber, the full key, and an
// end-to-end checksum over key + value + metadata.
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cliquemap/internal/checksum"
	"cliquemap/internal/hashring"
	"cliquemap/internal/rmem"
	"cliquemap/internal/truetime"
)

// IndexEntrySize is the fixed encoded size of one IndexEntry:
// KeyHash (16) + VersionNumber (24) + Pointer (window 8, offset 8, size 8).
const IndexEntrySize = 72

// BucketHeaderSize holds the bucket's ConfigID (8) and flags (8).
const BucketHeaderSize = 16

// DefaultWays is the bucket associativity. 14 ways of 72B plus the header
// is exactly 1KB — the paper's "3× 1KB Buckets" accounting in §7.2.2.
const DefaultWays = 14

// OverflowFlag marks a bucket that has spilled entries to the RPC-only
// side table (§4.2): clients may fall back to an RPC GET on a miss.
const OverflowFlag = 1 << 0

// DataEntryHeaderSize precedes the key and value bytes:
// keyLen (4) + dataLen (4, top bit = compressed flag) + VersionNumber (24)
// + checksum (8).
const DataEntryHeaderSize = 40

// compressedBit marks a DataEntry whose value bytes are DEFLATE-compressed
// (§9: compression was one of the features delivered post-launch through
// the RPC mutation path; old clients that predate it simply fail
// validation on such entries and fall back to RPC, where the backend
// decompresses for them).
const compressedBit = 1 << 31

// MaxValueLen bounds a value so the length field's top bit is free for the
// compression flag.
const MaxValueLen = 1<<31 - 1

// ProbeKeyPrefix reserves a key namespace for the fleet health plane's
// E2E prober canaries (§6). The leading NUL byte keeps the namespace
// disjoint from any printable user key, so synthetic probe traffic can
// never collide with (or evict meaning from) user data, and the backend's
// key-heat / top-k accounting excludes it via IsProbeKey so canaries
// never masquerade as hot keys.
const ProbeKeyPrefix = "\x00probe/"

// IsProbeKey reports whether key lies in the reserved prober namespace.
func IsProbeKey(key []byte) bool {
	return len(key) >= len(ProbeKeyPrefix) && string(key[:len(ProbeKeyPrefix)]) == ProbeKeyPrefix
}

// TierKeyPrefix reserves the federation tier's follower-cache namespace:
// a non-owner cell stores remotely-fetched entries under this prefix in
// its local cell. Like probe keys, the leading NUL keeps it disjoint from
// user keys; unlike user keys, follower-cache traffic is an echo of reads
// already counted at the owner cell, so the heat sketch and the hot-key
// promotion loop exclude it via IsTierKey — otherwise every follower hit
// would re-count as local heat and self-amplify into a phantom hot key.
const TierKeyPrefix = "\x00tier/"

// IsTierKey reports whether key lies in the follower-cache namespace.
func IsTierKey(key []byte) bool {
	return len(key) >= len(TierKeyPrefix) && string(key[:len(TierKeyPrefix)]) == TierKeyPrefix
}

// Validation failure taxonomy. The client retries at a layer chosen by the
// error (§3, §9): torn reads retry the RMA; config changes refresh config;
// window errors fall back to RPC.
var (
	// ErrTornRead is a checksum mismatch — the RMA observed a concurrent
	// mutation mid-write. Rare but normal; retry the lookup.
	ErrTornRead = errors.New("layout: checksum mismatch (torn read)")
	// ErrKeyMismatch means the 128-bit KeyHash matched but the stored key
	// differs — the "(very) rare" hash collision guard of §3 step 5b.
	ErrKeyMismatch = errors.New("layout: key mismatch (hash collision)")
	// ErrConfigChanged means the bucket's ConfigID differs from the
	// client's expectation: a migration or reconfiguration is in flight
	// (§6.1) and the client must refresh its configuration.
	ErrConfigChanged = errors.New("layout: bucket config id changed")
	// ErrCorrupt reports undecodable bytes.
	ErrCorrupt = errors.New("layout: corrupt entry")
)

// Pointer locates a DataEntry for RMA: a window id, offset, and size —
// "(a memory region identifier, offset, size)" per §3.
type Pointer struct {
	Window rmem.WindowID
	Offset uint64
	Size   uint64
}

// Nil reports whether the pointer is null (empty index slot target).
func (p Pointer) Nil() bool { return p == Pointer{} }

// IndexEntry is one slot in a bucket.
type IndexEntry struct {
	Hash    hashring.KeyHash
	Version truetime.Version
	Ptr     Pointer
}

// Empty reports whether the slot is unoccupied.
func (e IndexEntry) Empty() bool { return e.Hash.Zero() }

// EncodeIndexEntry writes e into dst (≥IndexEntrySize bytes).
func EncodeIndexEntry(dst []byte, e IndexEntry) {
	_ = dst[IndexEntrySize-1]
	binary.LittleEndian.PutUint64(dst[0:], e.Hash.Hi)
	binary.LittleEndian.PutUint64(dst[8:], e.Hash.Lo)
	binary.LittleEndian.PutUint64(dst[16:], uint64(e.Version.Micros))
	binary.LittleEndian.PutUint64(dst[24:], e.Version.ClientID)
	binary.LittleEndian.PutUint64(dst[32:], e.Version.Seq)
	binary.LittleEndian.PutUint64(dst[40:], uint64(e.Ptr.Window))
	binary.LittleEndian.PutUint64(dst[48:], e.Ptr.Offset)
	binary.LittleEndian.PutUint64(dst[56:], e.Ptr.Size)
	binary.LittleEndian.PutUint64(dst[64:], 0) // reserved
}

// DecodeIndexEntry parses an IndexEntry from src.
func DecodeIndexEntry(src []byte) (IndexEntry, error) {
	if len(src) < IndexEntrySize {
		return IndexEntry{}, fmt.Errorf("%w: index entry %d bytes", ErrCorrupt, len(src))
	}
	return IndexEntry{
		Hash: hashring.KeyHash{
			Hi: binary.LittleEndian.Uint64(src[0:]),
			Lo: binary.LittleEndian.Uint64(src[8:]),
		},
		Version: truetime.Version{
			Micros:   int64(binary.LittleEndian.Uint64(src[16:])),
			ClientID: binary.LittleEndian.Uint64(src[24:]),
			Seq:      binary.LittleEndian.Uint64(src[32:]),
		},
		Ptr: Pointer{
			Window: rmem.WindowID(binary.LittleEndian.Uint64(src[40:])),
			Offset: binary.LittleEndian.Uint64(src[48:]),
			Size:   binary.LittleEndian.Uint64(src[56:]),
		},
	}, nil
}

// Geometry describes an index region's shape; clients learn it at
// connection time and on config refresh.
type Geometry struct {
	Buckets int // number of buckets
	Ways    int // IndexEntries per bucket
}

// BucketSize returns the encoded size of one bucket.
func (g Geometry) BucketSize() int { return BucketHeaderSize + g.Ways*IndexEntrySize }

// RegionBytes returns the index region's total populated size.
func (g Geometry) RegionBytes() int { return g.Buckets * g.BucketSize() }

// BucketOffset returns the byte offset of bucket b.
func (g Geometry) BucketOffset(b int) int { return b * g.BucketSize() }

// Validate checks the geometry is usable.
func (g Geometry) Validate() error {
	if g.Buckets <= 0 || g.Ways <= 0 {
		return fmt.Errorf("layout: invalid geometry %+v", g)
	}
	return nil
}

// Bucket is the decoded form of one bucket.
type Bucket struct {
	ConfigID uint64
	Flags    uint64
	Entries  []IndexEntry
}

// Overflowed reports the RPC-fallback overflow bit (§4.2).
func (b Bucket) Overflowed() bool { return b.Flags&OverflowFlag != 0 }

// DecodeBucket parses a raw bucket of the given associativity.
func DecodeBucket(src []byte, ways int) (Bucket, error) {
	want := BucketHeaderSize + ways*IndexEntrySize
	if len(src) < want {
		return Bucket{}, fmt.Errorf("%w: bucket %d bytes, want %d", ErrCorrupt, len(src), want)
	}
	b := Bucket{
		ConfigID: binary.LittleEndian.Uint64(src[0:]),
		Flags:    binary.LittleEndian.Uint64(src[8:]),
		Entries:  make([]IndexEntry, ways),
	}
	for i := 0; i < ways; i++ {
		e, err := DecodeIndexEntry(src[BucketHeaderSize+i*IndexEntrySize:])
		if err != nil {
			return Bucket{}, err
		}
		b.Entries[i] = e
	}
	return b, nil
}

// Find returns the entry matching h and its slot, or ok=false on a miss.
func (b Bucket) Find(h hashring.KeyHash) (IndexEntry, int, bool) {
	for i, e := range b.Entries {
		if e.Hash == h {
			return e, i, true
		}
	}
	return IndexEntry{}, -1, false
}

// EncodeBucketHeader writes the header fields into dst.
func EncodeBucketHeader(dst []byte, configID, flags uint64) {
	_ = dst[BucketHeaderSize-1]
	binary.LittleEndian.PutUint64(dst[0:], configID)
	binary.LittleEndian.PutUint64(dst[8:], flags)
}

// DataEntry is the decoded form of a stored KV pair. Value holds the
// stored bytes: when Compressed is set they are DEFLATE-compressed and the
// reader must DecompressValue them after validation.
type DataEntry struct {
	Key        []byte
	Value      []byte
	Version    truetime.Version
	Checksum   uint64
	Compressed bool
}

// DataEntrySize returns the encoded size for the given key/value lengths.
func DataEntrySize(keyLen, valLen int) int {
	return DataEntryHeaderSize + keyLen + valLen
}

// EntryChecksum computes the self-validation checksum over key, value, and
// version metadata (uncompressed entries).
func EntryChecksum(key, value []byte, v truetime.Version) uint64 {
	return EntryChecksumF(key, value, v, 0)
}

// EntryChecksumF is EntryChecksum with the entry's flag word folded in, so
// a torn or flipped compression flag also fails validation.
func EntryChecksumF(key, value []byte, v truetime.Version, flags uint64) uint64 {
	return checksum.SumMeta(key, value, uint64(v.Micros), v.ClientID, v.Seq, flags)
}

// EncodeDataEntry serializes a KV pair with its checksum into dst, which
// must be at least DataEntrySize(len(key), len(value)) bytes. It returns
// the bytes written.
func EncodeDataEntry(dst []byte, key, value []byte, v truetime.Version) int {
	return EncodeDataEntryFlagged(dst, key, value, v, false)
}

// EncodeDataEntryFlagged is EncodeDataEntry for a possibly-compressed
// stored value.
func EncodeDataEntryFlagged(dst []byte, key, storedValue []byte, v truetime.Version, compressed bool) int {
	n := DataEntrySize(len(key), len(storedValue))
	_ = dst[n-1]
	lenWord := uint32(len(storedValue))
	var flags uint64
	if compressed {
		lenWord |= compressedBit
		flags = 1
	}
	binary.LittleEndian.PutUint32(dst[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(dst[4:], lenWord)
	binary.LittleEndian.PutUint64(dst[8:], uint64(v.Micros))
	binary.LittleEndian.PutUint64(dst[16:], v.ClientID)
	binary.LittleEndian.PutUint64(dst[24:], v.Seq)
	binary.LittleEndian.PutUint64(dst[32:], EntryChecksumF(key, storedValue, v, flags))
	copy(dst[DataEntryHeaderSize:], key)
	copy(dst[DataEntryHeaderSize+len(key):], storedValue)
	return n
}

// DecodeDataEntry parses and checksum-validates a DataEntry. A checksum
// failure returns ErrTornRead — the caller treats it as a retryable race,
// not corruption (§3).
func DecodeDataEntry(src []byte) (DataEntry, error) {
	if len(src) < DataEntryHeaderSize {
		return DataEntry{}, fmt.Errorf("%w: data entry %d bytes", ErrCorrupt, len(src))
	}
	keyLen := int(binary.LittleEndian.Uint32(src[0:]))
	lenWord := binary.LittleEndian.Uint32(src[4:])
	compressed := lenWord&compressedBit != 0
	valLen := int(lenWord &^ compressedBit)
	if keyLen < 0 || valLen < 0 || DataEntryHeaderSize+keyLen+valLen > len(src) {
		// Torn length fields can point past the read; that is a torn read,
		// not corruption, because the read raced a rewrite.
		return DataEntry{}, ErrTornRead
	}
	e := DataEntry{
		Version: truetime.Version{
			Micros:   int64(binary.LittleEndian.Uint64(src[8:])),
			ClientID: binary.LittleEndian.Uint64(src[16:]),
			Seq:      binary.LittleEndian.Uint64(src[24:]),
		},
		Checksum:   binary.LittleEndian.Uint64(src[32:]),
		Compressed: compressed,
	}
	var flags uint64
	if compressed {
		flags = 1
	}
	e.Key = src[DataEntryHeaderSize : DataEntryHeaderSize+keyLen]
	e.Value = src[DataEntryHeaderSize+keyLen : DataEntryHeaderSize+keyLen+valLen]
	if EntryChecksumF(e.Key, e.Value, e.Version, flags) != e.Checksum {
		return DataEntry{}, ErrTornRead
	}
	return e, nil
}

// ValidateAgainst performs the remaining client-side validation steps of
// §3/§5.1 once the checksum has passed: the stored key must equal the
// requested key (hash-collision guard) and, when a quorum version is
// supplied, the entry's version must match it (data-from-quorum-member
// guard).
func (e DataEntry) ValidateAgainst(key []byte, quorum *truetime.Version) error {
	if string(e.Key) != string(key) {
		return ErrKeyMismatch
	}
	if quorum != nil && e.Version != *quorum {
		return ErrTornRead // stale or racing data; retry
	}
	return nil
}

// Package cell orchestrates a CliqueMap cell: N backend tasks plus warm
// spares on a simulated fabric, the HA configuration store, per-host NICs
// (Pony Express or 1RMA), and client construction.
//
// The cell is also the fault-injection surface for the §7.2 experiments:
// planned maintenance via spare migration (§6.1, Figure 13), crashes and
// post-restart repairs (§5.4, Figure 14), antagonist load on individual
// hosts (§7.2.1, Figure 11), and cohort-scan repair sweeps.
package cell

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cliquemap/internal/chaos"
	"cliquemap/internal/core/backend"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/health"
	"cliquemap/internal/nic"
	"cliquemap/internal/onerma"
	"cliquemap/internal/pony"
	"cliquemap/internal/rmem"
	"cliquemap/internal/rpc"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
	"cliquemap/internal/truetime"
)

// Transport selects the RMA substrate (§7.2.4).
type Transport int

const (
	// TransportPony is the software NIC with SCAR and engine scale-out.
	TransportPony Transport = iota
	// Transport1RMA is the all-hardware NIC: 2×R only, low RTT.
	Transport1RMA
)

// Options configures a cell.
type Options struct {
	Shards      int
	Spares      int
	Mode        config.Mode
	Transport   Transport
	ClientHosts int // hosts reserved for clients (≥1)

	Fabric  fabric.Params
	Backend backend.Options // template; per-task fields are filled in
	// ACL, when set, gates every backend RPC by (principal, method) —
	// the per-RPC ACLs Table 1 credits to the RPC framework.
	ACL rpc.Authenticator
	// Hash overrides the cell-wide key hash (§6.5); backends and every
	// client constructed by this cell share it. nil = DefaultHash.
	Hash    hashring.HashFunc
	RPCCost rpc.CostModel
	// Health shapes the fleet health plane (SLO windows, burn thresholds);
	// zero values take the production defaults. See Cell.Health / Prober.
	Health health.Config

	Pony    pony.CostModel
	PonyEng pony.EngineConfig
	OneRMA  onerma.CostModel

	// DataDir, when non-empty, enables durable warm restarts: each task
	// journals and checkpoints its corpus under DataDir/<addr>, and a
	// restarted task recovers warm from that state instead of rejoining
	// empty (see internal/persist and RestartWarm).
	DataDir string
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = 3
	}
	if o.ClientHosts == 0 {
		o.ClientHosts = 1
	}
	return o
}

// node is one backend task and its host-side NIC state.
type node struct {
	info    config.BackendInfo
	b       *backend.Backend
	ponyNIC *pony.NIC
	oneNIC  *onerma.NIC
}

// Cell is a running CliqueMap cell.
type Cell struct {
	opt    Options
	Fabric *fabric.Fabric
	Net    *rpc.Network
	Store  *config.Store
	Acct   *stats.CPUAccount
	Clock  *truetime.SystemClock
	// HWHist collects 1RMA hardware timestamps (Figure 16).
	HWHist *stats.Histogram
	// Tracer is the cell-wide op tracer: every client built by NewClient
	// records into it, backends serve it over MethodDebug, and the TCP
	// gateway records remote ops into it.
	Tracer *trace.Tracer

	mu          sync.Mutex
	nodes       []*node // shards first, then spares
	byAddr      map[string]*node
	clientNICs  map[int]interface{} // host → *pony.NIC or *onerma.NIC
	nextClient  int
	clientIDSeq uint64
	repairStop  chan struct{}

	// maintMu serializes the shard-movement control plane: planned
	// maintenance, its completion, and resizes each stream whole shards
	// between tasks, and two concurrent movers racing on the same source
	// (or the same spare) would corrupt the handoff protocol's
	// seal/journal state. One mover at a time, cell-wide.
	maintMu sync.Mutex

	chaosOnce  sync.Once
	chaosPlane *chaos.Plane

	healthOnce  sync.Once
	healthPlane *health.Plane
	healthSrc   func() []byte // MethodHealth payload source, nil until Health()
	tierSrc     func() []byte // MethodTier payload source, nil outside a tier
	proberOnce  sync.Once
	prober      *health.Prober
}

// New builds and starts a cell.
func New(opt Options) (*Cell, error) {
	opt = opt.withDefaults()
	hosts := opt.Shards + opt.Spares + opt.ClientHosts
	c := &Cell{
		opt:        opt,
		Fabric:     fabric.New(hosts, opt.Fabric),
		Acct:       stats.NewCPUAccount(),
		Clock:      truetime.NewSystemClock(),
		HWHist:     &stats.Histogram{},
		Tracer:     trace.NewTracer(),
		byAddr:     make(map[string]*node),
		clientNICs: make(map[int]interface{}),
	}
	c.Net = rpc.NewNetwork(c.Fabric, opt.RPCCost, c.Acct)
	c.Net.SetTracer(c.Tracer)

	// Initial configuration: shard i on host i; spares idle after.
	cfg := config.CellConfig{Mode: opt.Mode, Shards: opt.Shards}
	for i := 0; i < opt.Shards; i++ {
		addr := fmt.Sprintf("backend-%d", i)
		cfg.ShardAddrs = append(cfg.ShardAddrs, addr)
		cfg.Backends = append(cfg.Backends, config.BackendInfo{Shard: i, Addr: addr, HostID: i})
	}
	for i := 0; i < opt.Spares; i++ {
		addr := fmt.Sprintf("spare-%d", i)
		cfg.Backends = append(cfg.Backends, config.BackendInfo{Shard: -1, Addr: addr, HostID: opt.Shards + i, Spare: true})
	}
	c.Store = config.NewStore(cfg)

	for _, info := range c.Store.Get().Backends {
		n, err := c.startNode(info, false)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.byAddr[info.Addr] = n
	}
	return c, nil
}

// startNode builds a backend task with its registry and NIC on its host.
// recovering starts the task in the §5.4 self-validation window (restarts
// rejoining a quorum; initial cell construction starts clean).
func (c *Cell) startNode(info config.BackendInfo, recovering bool) (*node, error) {
	reg := rmem.NewRegistry()
	bopt := c.opt.Backend
	if c.opt.Hash != nil {
		bopt.Hash = c.opt.Hash
	}
	bopt.Shard = info.Shard
	bopt.HostID = info.HostID
	bopt.Addr = info.Addr
	bopt.Recovering = recovering
	if c.opt.DataDir != "" {
		// Per-task subdir keyed by address: the durable lineage follows
		// the task across crash/restart and shard promotion alike.
		bopt.DataDir = filepath.Join(c.opt.DataDir, info.Addr)
	}
	gen := truetime.NewGenerator(c.Clock, uint64(1000+info.HostID))
	b, err := backend.New(bopt, c.Store, reg, c.Net, gen, c.Acct)
	if err != nil {
		return nil, err
	}
	if c.opt.ACL != nil {
		b.Server().SetAuthenticator(c.opt.ACL)
	}
	b.SetTracer(c.Tracer)
	c.mu.Lock()
	src := c.healthSrc
	tsrc := c.tierSrc
	c.mu.Unlock()
	if src != nil {
		b.SetHealthSource(src) // restarted tasks keep serving MethodHealth
	}
	if tsrc != nil {
		b.SetTierSource(tsrc) // restarted tasks keep serving MethodTier
	}
	n := &node{info: info, b: b}
	switch c.opt.Transport {
	case TransportPony:
		n.ponyNIC = pony.New(c.Fabric.Host(info.HostID), reg, c.opt.Pony, c.opt.PonyEng, c.Acct)
		n.ponyNIC.SetMsgHandler(b.HandleMsg)
		nic := n.ponyNIC
		b.SetNICSatSource(func() backend.NICSaturation {
			s := nic.Saturation()
			return backend.NICSaturation{Engines: s.Engines, RhoMilli: s.RhoMilli, QueueNs: s.QueueNs, Ops: s.Ops}
		})
	case Transport1RMA:
		n.oneNIC = onerma.New(c.Fabric.Host(info.HostID), reg, c.opt.OneRMA, c.Acct, nil)
	}
	return n, nil
}

// Backend returns the task currently serving shard s.
func (c *Cell) Backend(s int) *backend.Backend {
	addr := c.Store.Get().AddrFor(s)
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.byAddr[addr]; n != nil {
		return n.b
	}
	return nil
}

// BackendByAddr returns the task at addr.
func (c *Cell) BackendByAddr(addr string) *backend.Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.byAddr[addr]; n != nil {
		return n.b
	}
	return nil
}

// Nodes returns all backend tasks (shards then spares).
func (c *Cell) Nodes() []*backend.Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*backend.Backend, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.b
	}
	return out
}

// PonyEngines returns the engine count per backend node (Figure 15).
func (c *Cell) PonyEngines() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.ponyNIC != nil {
			out = append(out, n.ponyNIC.Engines())
		}
	}
	return out
}

// WriteSaturationProm renders every task's saturation plane as
// Prometheus text exposition: worker-pool occupancy and modelled
// admission ρ, stripe-lock contention, and serving-NIC engine queueing
// — the same telemetry MethodStats exports and the cmstat SATURATION
// table renders. Gauges are instantaneous; *_total counters are
// cumulative per task lifetime and reset when the task restarts.
func (c *Cell) WriteSaturationProm(w io.Writer) {
	c.mu.Lock()
	nodes := make([]*node, len(c.nodes))
	copy(nodes, c.nodes)
	c.mu.Unlock()
	fmt.Fprintf(w, "# TYPE cliquemap_rpc_workers gauge\n")
	for _, n := range nodes {
		s := n.b.Server().Saturation()
		fmt.Fprintf(w, "cliquemap_rpc_workers{task=%q,state=\"busy\"} %d\n", n.b.Addr(), s.WorkersBusy)
		fmt.Fprintf(w, "cliquemap_rpc_workers{task=%q,state=\"limit\"} %d\n", n.b.Addr(), s.WorkerLimit)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_rpc_utilization gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "cliquemap_rpc_utilization{task=%q} %g\n",
			n.b.Addr(), float64(n.b.Server().Saturation().RhoMilli)/1000)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_rpc_queue_seconds_total counter\n")
	for _, n := range nodes {
		s := n.b.Server().Saturation()
		fmt.Fprintf(w, "cliquemap_rpc_queue_seconds_total{task=%q} %g\n",
			n.b.Addr(), float64(s.SubmitWaitNs+s.QueueNs)/1e9)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_stripe_lock_contended_total counter\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "cliquemap_stripe_lock_contended_total{task=%q} %d\n",
			n.b.Addr(), n.b.StripeSaturation().Contended)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_stripe_lock_wait_seconds_total counter\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "cliquemap_stripe_lock_wait_seconds_total{task=%q} %g\n",
			n.b.Addr(), float64(n.b.StripeSaturation().WaitNs)/1e9)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_nic_engines gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "cliquemap_nic_engines{task=%q} %d\n", n.b.Addr(), n.b.NICSat().Engines)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_nic_utilization gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "cliquemap_nic_utilization{task=%q} %g\n",
			n.b.Addr(), float64(n.b.NICSat().RhoMilli)/1000)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_nic_queue_seconds_total counter\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "cliquemap_nic_queue_seconds_total{task=%q} %g\n",
			n.b.Addr(), float64(n.b.NICSat().QueueNs)/1e9)
	}
}

// TotalMemoryBytes sums every task's populated DRAM (Figure 3).
func (c *Cell) TotalMemoryBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.b.MemoryBytes()
	}
	return total
}

// clientHostID assigns client i to a host in the client range.
func (c *Cell) clientHostID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.opt.Shards + c.opt.Spares
	h := base + c.nextClient%c.opt.ClientHosts
	c.nextClient++
	return h
}

// clientNIC lazily builds the client-side NIC for a host.
func (c *Cell) clientNIC(host int) interface{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.clientNICs[host]; ok {
		return n
	}
	var n interface{}
	switch c.opt.Transport {
	case TransportPony:
		n = pony.New(c.Fabric.Host(host), nil, c.opt.Pony, c.opt.PonyEng, c.Acct)
	case Transport1RMA:
		n = onerma.New(c.Fabric.Host(host), nil, c.opt.OneRMA, c.Acct, c.HWHist)
	}
	c.clientNICs[host] = n
	return n
}

// servingNIC returns the NIC of the backend on the given host, or nil.
func (c *Cell) servingNIC(host int) *node {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.info.HostID == host {
			return n
		}
	}
	return nil
}

// NewClient constructs a client attached to a client host of this cell.
func (c *Cell) NewClient(copt client.Options) *client.Client {
	c.mu.Lock()
	c.clientIDSeq++
	if copt.ID == 0 {
		copt.ID = c.clientIDSeq
	}
	c.mu.Unlock()
	if copt.HostID == 0 {
		copt.HostID = c.clientHostID()
	}

	dial := func(host int) nic.RMA {
		local := c.clientNIC(copt.HostID)
		target := c.servingNIC(host)
		if target == nil {
			return deadConn{}
		}
		switch c.opt.Transport {
		case TransportPony:
			return pony.Dial(c.Fabric, local.(*pony.NIC), target.ponyNIC)
		default:
			return onerma.Dial(c.Fabric, local.(*onerma.NIC), target.oneNIC)
		}
	}
	var msg client.MsgFunc
	if c.opt.Transport == TransportPony {
		msg = func(host int, at uint64, req []byte) ([]byte, fabric.OpTrace, error) {
			local := c.clientNIC(copt.HostID).(*pony.NIC)
			target := c.servingNIC(host)
			if target == nil || target.ponyNIC == nil {
				return nil, fabric.OpTrace{}, nic.ErrUnreachable
			}
			return pony.Dial(c.Fabric, local, target.ponyNIC).Message(at, req)
		}
	}
	if c.opt.Hash != nil && copt.Hash == nil {
		copt.Hash = c.opt.Hash
	}
	if copt.Tracer == nil {
		copt.Tracer = c.Tracer
	}
	rpcc := c.Net.Client(copt.HostID, fmt.Sprintf("client-%d", copt.ID))
	return client.New(copt, c.Store, rpcc, c.Clock, dial, msg, c.Fabric.NowNs, c.Acct)
}

// ServeTCP exposes the cell's RPC surface on a real socket, so processes
// outside this address space (remote tools, other services, WAN callers)
// can drive the full protocol. Calls enter the fabric at the first client
// host.
func (c *Cell) ServeTCP(addr string) (*rpc.TCPGateway, error) {
	return rpc.ServeTCP(c.Net, addr, c.opt.Shards+c.opt.Spares)
}

// NewWANClient constructs a client in a remote region reaching this cell
// purely over RPC (Table 1: RMA protocols are not applicable over WAN, so
// lookups fall back to the RPC path). oneWay is the extra WAN latency
// added to every delivery at the client's host. The client's lookup
// strategy is forced to RPC.
func (c *Cell) NewWANClient(copt client.Options, oneWay time.Duration) *client.Client {
	copt.Strategy = client.StrategyRPC
	if copt.HostID == 0 {
		copt.HostID = c.clientHostID()
	}
	c.Fabric.Host(copt.HostID).SetExtraLatency(uint64(oneWay.Nanoseconds()))
	return c.NewClient(copt)
}

// deadConn fails every op — a target host with no serving backend.
type deadConn struct{}

func (deadConn) Read(uint64, rmem.WindowID, int, int) ([]byte, fabric.OpTrace, error) {
	return nil, fabric.OpTrace{}, nic.ErrUnreachable
}

func (deadConn) ScanAndRead(uint64, rmem.WindowID, int, int, hashring.KeyHash, int) (nic.ScarResult, fabric.OpTrace, error) {
	return nic.ScarResult{}, fabric.OpTrace{}, nic.ErrUnreachable
}

func (deadConn) SupportsScar() bool { return false }

// bumpConfig applies a mutation to the store and restamps every live
// backend's buckets with the new ID.
func (c *Cell) bumpConfig(mutate func(*config.CellConfig)) config.CellConfig {
	next := c.Store.Update(mutate)
	c.mu.Lock()
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		if !n.b.Server().Stopped() {
			n.b.SetConfigID(next.ID)
		}
	}
	return next
}

// The cell is the chaos plane's actuation surface: every hazard class the
// plane can inject maps to one of the methods below.
var _ chaos.Surface = (*Cell)(nil)

// Chaos returns the cell's unified fault-injection plane (lazily built,
// seeded from the fabric seed so a whole cell's fault behaviour replays
// from one number). Every ad-hoc injection should go through it; the
// legacy hooks below remain as the leaf actuators it drives.
func (c *Cell) Chaos() *chaos.Plane {
	c.chaosOnce.Do(func() {
		c.chaosPlane = chaos.NewPlane(c, c.Fabric.Params().Seed)
		c.chaosPlane.SetTracer(c.Tracer)
	})
	return c.chaosPlane
}

// ChaosEngine builds a schedule-driven engine over this cell for the
// named preset. The returned engine mirrors hazard counts into the cell
// tracer; drive it with Step from the workload loop.
func (c *Cell) ChaosEngine(preset string, seed uint64) (*chaos.Engine, error) {
	sched, err := chaos.Preset(preset, seed, c.opt.Shards)
	if err != nil {
		return nil, err
	}
	e := chaos.NewEngine(sched, c)
	e.SetTracer(c.Tracer)
	return e, nil
}

// Shards returns the current logical shard count (chaos.Surface). It
// reads the config store, not the construction-time option: resizes
// change it.
func (c *Cell) Shards() int { return c.Store.Get().Shards }

// SetRPCFailRate makes the server currently holding shard fail the given
// fraction of calls transiently (chaos.Surface actuator over
// rpc.Server.SetFailRate).
func (c *Cell) SetRPCFailRate(shard int, rate float64, seed int64) {
	b := c.Backend(shard)
	if b != nil {
		b.Server().SetFailRate(rate, seed)
	}
}

// PartitionShard cuts the host serving shard off from every other host
// (chaos.Surface actuator over fabric.IsolateHost).
func (c *Cell) PartitionShard(shard int) {
	if host := c.Store.Get().HostFor(shard); host >= 0 {
		c.Fabric.IsolateHost(host)
	}
}

// SetShardLinkLoss applies fractional symmetric packet loss between the
// shard's host and the rest of the cell; 0 heals those links.
func (c *Cell) SetShardLinkLoss(shard int, loss float64) {
	if host := c.Store.Get().HostFor(shard); host >= 0 {
		c.Fabric.SetHostLoss(host, loss)
	}
}

// HealPartitions removes every partition and loss rule from the fabric.
func (c *Cell) HealPartitions() { c.Fabric.HealLinks() }

// CorruptData flips one bit in up to n live DataEntries on the backend
// serving shard, returning the damaged keys (chaos.Surface actuator over
// backend.CorruptEntries).
func (c *Cell) CorruptData(shard int, n int, seed uint64) [][]byte {
	b := c.Backend(shard)
	if b == nil {
		return nil
	}
	return b.CorruptEntries(n, seed)
}

// SetConfigStale pins or unpins the config store's read snapshot
// (chaos.Surface actuator over config.Store.SetStale).
func (c *Cell) SetConfigStale(stale bool) { c.Store.SetStale(stale) }

// MaintainShard (chaos.Surface actuator) runs one full planned-
// maintenance cycle: the shard migrates to a warm spare and back to its
// original task, opening both handoff windows in sequence.
func (c *Cell) MaintainShard(ctx context.Context, shard int) error {
	orig := c.Store.Get().AddrFor(shard)
	if _, err := c.PlannedMaintenance(ctx, shard); err != nil {
		return err
	}
	return c.CompleteMaintenance(ctx, shard, orig)
}

// ResizeTo (chaos.Surface actuator) is Resize under the surface's
// basic-types contract.
func (c *Cell) ResizeTo(ctx context.Context, shards int) error { return c.Resize(ctx, shards) }

// SetEngineDelay injects extra per-command service time into the node
// serving shard s — the chaos plane's Brownout actuator (an overloaded
// or misbehaving serving engine). The delay covers the one-sided path
// (Pony Express or 1RMA engine visits) and the two-sided data RPCs, so
// GETs and mutation quorum legs both see it. Prefer injecting through
// Chaos().Brownout so the injection is seeded and counted.
func (c *Cell) SetEngineDelay(shard int, ns uint64) {
	host := c.Store.Get().HostFor(shard)
	if host < 0 {
		return
	}
	n := c.servingNIC(host)
	if n == nil {
		return
	}
	if n.ponyNIC != nil {
		n.ponyNIC.SetServiceDelay(ns)
	}
	if n.oneNIC != nil {
		n.oneNIC.SetServiceDelay(ns)
	}
	srv := n.b.Server()
	for _, m := range []string{proto.MethodGet, proto.MethodSet, proto.MethodErase, proto.MethodCas} {
		srv.SetMethodCost(m, ns)
	}
}

// SetAntagonist places external load on the host serving shard s
// (§7.2.1's ~95Gbps competing demand).
func (c *Cell) SetAntagonist(shard int, frac float64) {
	host := c.Store.Get().HostFor(shard)
	if host >= 0 {
		c.Fabric.Host(host).SetExternalLoad(frac)
	}
}

// SetClientLoad places external load on a client's host (Figure 12's
// incast exacerbation).
func (c *Cell) SetClientLoad(clientHost int, frac float64) {
	c.Fabric.Host(clientHost).SetExternalLoad(frac)
}

// Crash simulates an unplanned failure of the task serving shard s: RPC
// server stops and the NIC goes dark (§7.2.3, Figure 14).
func (c *Cell) Crash(shard int) {
	addr := c.Store.Get().AddrFor(shard)
	c.mu.Lock()
	n := c.byAddr[addr]
	c.mu.Unlock()
	if n == nil {
		return
	}
	n.b.Server().Stop()
	if n.ponyNIC != nil {
		n.ponyNIC.SetDown(true)
	}
	if n.oneNIC != nil {
		n.oneNIC.SetDown(true)
	}
}

// Restart brings shard s back as a fresh, empty task on its host (the
// paper restarts on another host; host identity is immaterial here) and
// runs the §5.4 post-restart repairs: the restarted backend requests
// repairs from the healthy members of every cohort it participates in.
// Any durable state the dead task left behind is discarded first — a
// replacement on another machine has no local disk history. Use
// RestartWarm to rejoin from checkpoint + journal instead.
func (c *Cell) Restart(ctx context.Context, shard int) error {
	if c.opt.DataDir != "" {
		os.RemoveAll(filepath.Join(c.opt.DataDir, c.Store.Get().AddrFor(shard)))
	}
	if _, err := c.RestartBegin(shard); err != nil {
		return err
	}
	return c.RestartComplete(ctx, shard)
}

// RestartWarm brings shard s back recovered from its durable checkpoint +
// journal (chaos.Surface): the replacement serves its pre-crash corpus
// immediately and self-validates back into the quorum, instead of being
// repaired key-by-key from an empty start. Falls back to Restart's cold
// behaviour when the cell has no data directory — minus the state wipe,
// which would be a no-op anyway.
func (c *Cell) RestartWarm(ctx context.Context, shard int) error {
	if _, err := c.RestartBegin(shard); err != nil {
		return err
	}
	return c.RestartComplete(ctx, shard)
}

// RestartBegin replaces the dead task at shard with a fresh one in the
// recovering state and returns its backend. With a data directory the
// replacement loads its corpus from the newest checkpoint plus journal
// tail before serving; without one it starts empty. Either way it serves
// resident entries but bounces misses with proto.ErrRecovering until
// RestartComplete — a replica that may be behind must not vote agreed
// misses (the rolling-crash lost-write hazard).
func (c *Cell) RestartBegin(shard int) (*backend.Backend, error) {
	cfg := c.Store.Get()
	addr := cfg.AddrFor(shard)
	c.mu.Lock()
	old := c.byAddr[addr]
	c.mu.Unlock()
	if old == nil {
		return nil, fmt.Errorf("cell: no task at %s", addr)
	}

	fresh, err := c.startNode(old.info, true) // re-Serve replaces the dead server
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for i, n := range c.nodes {
		if n == old {
			c.nodes[i] = fresh
		}
	}
	c.byAddr[addr] = fresh
	c.mu.Unlock()

	fresh.b.SetConfigID(cfg.ID)
	return fresh.b, nil
}

// RestartComplete runs the §5.4 post-restart repairs for shard's cohorts
// and, on success, ends the recovering window: the rejoined replica
// resumes voting misses. On repair failure the guard deliberately stays
// up — a replica that could not self-validate keeps withholding miss
// votes (safety over liveness); callers retry RestartComplete.
func (c *Cell) RestartComplete(ctx context.Context, shard int) error {
	if err := c.RepairCohortsOf(ctx, shard); err != nil {
		return err
	}
	if b := c.Backend(shard); b != nil {
		b.EndRecovery()
	}
	return nil
}

// RepairCohortsOf repairs every shard whose cohort includes shard s —
// what a restarted backend requests (§5.4).
func (c *Cell) RepairCohortsOf(ctx context.Context, s int) error {
	cfg := c.Store.Get()
	replicas := cfg.Mode.Replicas()
	for d := 0; d < replicas; d++ {
		target := ((s-d)%cfg.Shards + cfg.Shards) % cfg.Shards
		owner := c.BackendByAddr(cfg.AddrFor(target))
		if owner == nil || owner.Server().Stopped() {
			continue
		}
		if _, err := owner.RepairShard(ctx, target); err != nil {
			return err
		}
	}
	return nil
}

// RepairAll runs one cohort-scan repair sweep across every shard.
func (c *Cell) RepairAll(ctx context.Context) (int, error) {
	cfg := c.Store.Get()
	total := 0
	for s := 0; s < cfg.Shards; s++ {
		owner := c.BackendByAddr(cfg.AddrFor(s))
		if owner == nil || owner.Server().Stopped() {
			continue
		}
		n, err := owner.RepairShard(ctx, s)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// StartRepairLoop runs RepairAll on the given cadence until StopRepairLoop
// (the paper tunes the inter-scan interval per deployment; tens of
// seconds is typical).
func (c *Cell) StartRepairLoop(interval time.Duration) {
	c.mu.Lock()
	if c.repairStop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.repairStop = stop
	c.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.RepairAll(context.Background())
			}
		}
	}()
}

// StopRepairLoop halts the background repair sweep.
func (c *Cell) StopRepairLoop() {
	c.mu.Lock()
	if c.repairStop != nil {
		close(c.repairStop)
		c.repairStop = nil
	}
	c.mu.Unlock()
}

// PlannedMaintenance migrates shard s to an idle warm spare ahead of
// maintenance (§6.1, Figure 13), returning the spare's address. Clients
// discover the move via bucket ConfigID mismatch → config refresh.
func (c *Cell) PlannedMaintenance(ctx context.Context, shard int) (string, error) {
	c.maintMu.Lock()
	defer c.maintMu.Unlock()
	cfg := c.Store.Get()
	if cfg.Pending != nil {
		return "", fmt.Errorf("cell: resize in flight")
	}
	if shard < 0 || shard >= cfg.Shards {
		return "", fmt.Errorf("cell: shard %d out of range", shard)
	}
	var spare *node
	c.mu.Lock()
	for _, n := range c.nodes {
		// Any live task not serving a shard is spare capacity — born
		// spares and tasks a shrink demoted alike.
		if n.b.Shard() < 0 && !n.b.Server().Stopped() {
			spare = n
			break
		}
	}
	c.mu.Unlock()
	if spare == nil {
		return "", fmt.Errorf("cell: no idle spare")
	}
	primary := c.BackendByAddr(cfg.AddrFor(shard))
	if primary == nil {
		return "", fmt.Errorf("cell: shard %d has no task", shard)
	}
	if err := primary.MigrateTo(ctx, spare.info.Addr); err != nil {
		return "", err
	}
	c.bumpConfig(func(cc *config.CellConfig) {
		cc.ShardAddrs[shard] = spare.info.Addr
	})
	return spare.info.Addr, nil
}

// CompleteMaintenance returns shard s from its spare to the (restarted)
// primary task: the spare streams the data back and the config flips.
func (c *Cell) CompleteMaintenance(ctx context.Context, shard int, primaryAddr string) error {
	c.maintMu.Lock()
	defer c.maintMu.Unlock()
	cfg := c.Store.Get()
	if cfg.Pending != nil {
		return fmt.Errorf("cell: resize in flight")
	}
	spareAddr := cfg.AddrFor(shard)
	spare := c.BackendByAddr(spareAddr)
	if spare == nil {
		return fmt.Errorf("cell: shard %d spare missing", shard)
	}
	primary := c.BackendByAddr(primaryAddr)
	if primary == nil || primary.Server().Stopped() {
		return fmt.Errorf("cell: primary %s not ready", primaryAddr)
	}
	if err := spare.MigrateTo(ctx, primaryAddr); err != nil {
		return err
	}
	c.bumpConfig(func(cc *config.CellConfig) {
		cc.ShardAddrs[shard] = primaryAddr
	})
	return nil
}

// Resize changes the cell's logical shard count online, with GETs served
// on RMA throughout and no acked write lost. It runs the two-epoch
// protocol:
//
//  1. Publish a PendingEpoch (new shard count + placement) under a
//     bumped ConfigID. Clients discover it and union-fan mutations to
//     both epochs' cohorts; reads stay on the old epoch.
//  2. Drain each old shard's task in turn — bulk stream routed by the
//     new shard map, seal (mutations bounce to the new epoch), journal
//     delta until dry, tombstones + summary — and publish its seal.
//     As seals accumulate past R−Q+1 per cohort, read authority flips
//     to the pending owners key by key.
//  3. Commit: the pending map becomes THE map, survivors unseal and GC
//     keys their new cohorts no longer cover, dropped tasks wipe clean
//     and re-arm as warm spares.
//
// Growth claims idle spares for the new shards; a shrink returns the
// trailing shards' tasks to spare duty. The receiving tasks reuse their
// live corpora: surviving shards never re-stream data they already hold.
func (c *Cell) Resize(ctx context.Context, newShards int) error {
	c.maintMu.Lock()
	defer c.maintMu.Unlock()
	cfg := c.Store.Get()
	if cfg.Pending != nil {
		return fmt.Errorf("cell: resize already in flight")
	}
	if newShards < 1 {
		return fmt.Errorf("cell: cannot resize to %d shards", newShards)
	}
	oldShards := cfg.Shards
	if newShards == oldShards {
		return nil
	}
	oldAddrs := append([]string(nil), cfg.ShardAddrs...)
	replicas := cfg.Mode.Replicas()

	// Target placement: surviving shards stay on their current tasks;
	// growth shards claim idle spares (including tasks a prior shrink
	// demoted).
	newAddrs := make([]string, newShards)
	copy(newAddrs, oldAddrs)
	if newShards > oldShards {
		need := newShards - oldShards
		var spares []*node
		c.mu.Lock()
		for _, n := range c.nodes {
			if len(spares) == need {
				break
			}
			if n.b.Shard() < 0 && !n.b.Server().Stopped() {
				spares = append(spares, n)
			}
		}
		c.mu.Unlock()
		if len(spares) < need {
			return fmt.Errorf("cell: resize %d→%d needs %d idle spares, have %d", oldShards, newShards, need, len(spares))
		}
		for i := 0; i < need; i++ {
			newAddrs[oldShards+i] = spares[i].info.Addr
		}
	}

	// Phase 1: publish the pending epoch. From this bump on, refreshed
	// clients fan mutations to the union of both cohorts.
	c.bumpConfig(func(cc *config.CellConfig) {
		cc.Pending = &config.PendingEpoch{
			Shards:     newShards,
			ShardAddrs: append([]string(nil), newAddrs...),
			SealedOld:  make([]bool, oldShards),
		}
	})

	// Phase 2: drain old sources one at a time. The seal goes over the
	// wire (MethodSeal) like every other handoff step.
	for s := 0; s < oldShards; s++ {
		addr := oldAddrs[s]
		src := c.BackendByAddr(addr)
		if src == nil || src.Server().Stopped() {
			return fmt.Errorf("cell: resize source %s (shard %d) not serving", addr, s)
		}
		host := cfg.HostForAddr(addr)
		rc := c.Net.Client(host, "backend-"+addr)
		seal := func(sctx context.Context) error {
			_, _, err := rc.Call(sctx, addr, proto.MethodSeal, proto.SealReq{On: true}.Marshal())
			return err
		}
		if err := src.ResizeHandoff(ctx, seal); err != nil {
			return fmt.Errorf("cell: resize handoff of shard %d: %w", s, err)
		}
		// Invalidate the frozen source's buckets under the ID the seal
		// publication is about to carry, BEFORE publishing it. A sealed
		// task keeps serving RMA reads from a corpus frozen at its seal;
		// if its buckets stayed stamped with the pre-seal ID, two such
		// frozen members could form a valid-looking stale read quorum for
		// a client that has not refreshed yet. Pre-stamping strands the
		// frozen vote: readers on the old ID get a mismatch and refresh,
		// and any config that validates the new stamp already counts this
		// seal toward read authority. (maintMu serializes config bumps,
		// so ID+1 is exactly the ID bumpConfig will publish.)
		src.SetConfigID(c.Store.Get().ID + 1)
		shard := s
		c.bumpConfig(func(cc *config.CellConfig) {
			if cc.Pending != nil && shard < len(cc.Pending.SealedOld) {
				cc.Pending.SealedOld[shard] = true
			}
		})
	}

	// Growth tasks formally assume their shard numbers before the flip.
	for s := oldShards; s < newShards; s++ {
		addr := newAddrs[s]
		rc := c.Net.Client(cfg.HostForAddr(addr), "backend-"+addr)
		if _, _, err := rc.Call(ctx, addr, proto.MethodAssumeShard, proto.AssumeShardReq{Shard: s}.Marshal()); err != nil {
			return fmt.Errorf("cell: shard %d assume at %s: %w", s, addr, err)
		}
	}

	// Phase 3: commit the new epoch …
	c.bumpConfig(func(cc *config.CellConfig) {
		cc.Shards = newShards
		cc.ShardAddrs = append([]string(nil), newAddrs...)
		cc.Pending = nil
	})

	// … then unseal the survivors and collect garbage. Between the flip
	// and an unseal, non-pending mutations to that task bounce with
	// ErrShardSealed; the client retry loop refreshes and re-sends, so
	// the window costs a retry, never a write.
	kept := make(map[string]bool, len(newAddrs))
	for _, a := range newAddrs {
		kept[a] = true
	}
	for s := 0; s < oldShards; s++ {
		addr := oldAddrs[s]
		b := c.BackendByAddr(addr)
		if b == nil {
			continue
		}
		b.HandoffUnseal()
		if kept[addr] {
			// Survivor: drop the keys its new-epoch cohorts no longer
			// cover (they were streamed to their new owners in phase 2).
			b.DropForeign(newShards, replicas)
			continue
		}
		// Dropped by a shrink: wipe and re-arm as a warm spare.
		b.Clear()
		rc := c.Net.Client(cfg.HostForAddr(addr), "backend-"+addr)
		if _, _, err := rc.Call(ctx, addr, proto.MethodAssumeShard, proto.AssumeShardReq{Shard: -1}.Marshal()); err != nil {
			return fmt.Errorf("cell: demoting %s to spare: %w", addr, err)
		}
	}
	return nil
}

// CompactAll triggers the non-disruptive downsizing restart on every task
// (Figure 3's corpus-shrink response).
func (c *Cell) CompactAll(slack float64) {
	for _, b := range c.Nodes() {
		if !b.Server().Stopped() {
			b.CompactRestart(slack)
		}
	}
}

// LoadImmutable bulk-loads an immutable corpus (§6.4): every KV pair is
// installed on its replica set directly and the cell is then sealed —
// client mutations are rejected from that point on. Intended for
// R=2/Immutable cells, where the corpus comes from an external system of
// record.
func (c *Cell) LoadImmutable(ctx context.Context, items map[string][]byte) error {
	cfg := c.Store.Get()
	gen := truetime.NewGenerator(c.Clock, 999)
	for k, v := range items {
		hashFn := hashring.OrDefault(c.opt.Hash)
		h := hashFn([]byte(k))
		primary := int(h.Hi % uint64(cfg.Shards))
		ver := gen.Next()
		for _, shard := range cfg.Cohort(primary) {
			b := c.BackendByAddr(cfg.AddrFor(shard))
			if b == nil {
				return fmt.Errorf("cell: shard %d has no task", shard)
			}
			if applied, _, _ := b.ApplySet([]byte(k), v, ver); !applied {
				return fmt.Errorf("cell: immutable load of %q rejected", k)
			}
		}
	}
	for _, b := range c.Nodes() {
		b.Seal()
	}
	return nil
}

// AggregateCounters sums counters across tasks.
func (c *Cell) AggregateCounters() backend.Counters {
	var out backend.Counters
	for _, b := range c.Nodes() {
		s := b.CountersSnapshot()
		out.Sets += s.Sets
		out.SetsApplied += s.SetsApplied
		out.Erases += s.Erases
		out.ErasesApplied += s.ErasesApplied
		out.CasOps += s.CasOps
		out.CasApplied += s.CasApplied
		out.Gets += s.Gets
		out.VersionRejects += s.VersionRejects
		out.CapacityEvictions += s.CapacityEvictions
		out.AssocEvictions += s.AssocEvictions
		out.Overflows += s.Overflows
		out.Touches += s.Touches
		out.IndexResizes += s.IndexResizes
		out.DataGrows += s.DataGrows
		out.RepairsIssued += s.RepairsIssued
	}
	return out
}

package cell

import (
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/health"
)

// This file wires the fleet health plane (internal/health) into a cell:
// the plane runs on the fabric's virtual clock, every backend serves its
// evaluated snapshot over MethodHealth, and the prober drives canary
// clients — one per lookup strategy the transport supports — against the
// reserved probe-key namespace.

// Health returns the cell's health plane, lazily built on the fabric
// clock from Options.Health, and attaches its snapshot source to every
// live backend so MethodHealth serves the evaluated state.
func (c *Cell) Health() *health.Plane {
	c.healthOnce.Do(func() {
		plane := health.NewPlane(c.opt.Health, c.Fabric.NowNs)
		src := func() []byte { return HealthWire(plane.Evaluate()).Marshal() }
		c.mu.Lock()
		c.healthPlane = plane
		c.healthSrc = src
		nodes := append([]*node(nil), c.nodes...)
		c.mu.Unlock()
		for _, n := range nodes {
			n.b.SetHealthSource(src)
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthPlane
}

// SetTierSource attaches the federation tier's marshalled-TierResp
// provider to every live backend (and, via startNode, to any task
// restarted later), so MethodTier answers from any member cell's
// gateway.
func (c *Cell) SetTierSource(fn func() []byte) {
	c.mu.Lock()
	c.tierSrc = fn
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		n.b.SetTierSource(fn)
	}
}

// probeStrategies lists the lookup strategies the cell's transport can
// serve — each becomes one probe target, so a regression confined to a
// single protocol (say SCAR) still trips its own canary path.
func (c *Cell) probeStrategies() []client.Strategy {
	if c.opt.Transport == Transport1RMA {
		// 1RMA has no SCAR or MSG support: 2×R and the RPC fallback.
		return []client.Strategy{client.Strategy2xR, client.StrategyRPC}
	}
	return []client.Strategy{client.Strategy2xR, client.StrategySCAR, client.StrategyMSG, client.StrategyRPC}
}

// Prober returns the cell's E2E prober, lazily building one canary
// client per transport strategy. Each canary reports availability and
// latency into the health plane through its Observer hook; drive rounds
// from the workload loop (or a test) so probe cadence rides virtual time.
func (c *Cell) Prober() *health.Prober {
	plane := c.Health()
	c.proberOnce.Do(func() {
		var targets []health.Target
		for _, st := range c.probeStrategies() {
			name := st.String()
			cl := c.NewClient(client.Options{
				Strategy: st,
				Observer: plane.Observer(name),
			})
			targets = append(targets, health.Target{Name: name, Client: cl})
		}
		c.mu.Lock()
		c.prober = health.NewProber(plane, targets, nil)
		c.mu.Unlock()
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prober
}

// HealthWire converts an evaluated health snapshot into its MethodHealth
// wire frame: states as display strings, burn rates in milli-units,
// availability objectives in parts-per-million.
func HealthWire(s health.Snapshot) proto.HealthResp {
	r := proto.HealthResp{GeneratedNs: s.GeneratedNs, Rounds: s.Rounds}
	for _, cl := range s.Classes {
		r.Classes = append(r.Classes, proto.HealthClass{
			Class:           cl.Class,
			State:           cl.State.String(),
			SinceNs:         cl.SinceNs,
			AvailabilityPpm: uint64(cl.Availability*1e6 + 0.5),
			LatencyTargetNs: cl.LatencyNs,
			FastBurnMilli:   uint64(cl.FastBurn*1000 + 0.5),
			SlowBurnMilli:   uint64(cl.SlowBurn*1000 + 0.5),
			WindowGood:      cl.WindowGood,
			WindowBad:       cl.WindowBad,
			Good:            cl.Good,
			Bad:             cl.Bad,
			ProbeP50Ns:      cl.ProbeP50Ns,
			ProbeP99Ns:      cl.ProbeP99Ns,
			Pages:           cl.Pages,
			Warns:           cl.Warns,
		})
	}
	for _, t := range s.Targets {
		r.Targets = append(r.Targets, proto.HealthTarget{Name: t.Name, Good: t.Good, Bad: t.Bad})
	}
	return r
}

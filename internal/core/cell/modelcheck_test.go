package cell

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"cliquemap/internal/core/client"
	"cliquemap/internal/hashring"
	"cliquemap/internal/truetime"
)

// primaryShard recovers a key's primary shard (clients and backends share
// hashring.DefaultHash).
func primaryShard(c *Cell, key []byte) int {
	return int(hashring.DefaultHash(key).Hi % uint64(c.Store.Get().Shards))
}

// This file is a miniature model checker for the R=3.2 quorum protocol —
// the property the paper verified in TLA+ (§5, footnote 3: "We proved
// single failure tolerance"). It exhaustively enumerates interleavings of
// two concurrent SETs' per-replica applications (optionally with one
// crashed replica) and, after *every* prefix, runs a real client GET
// against the real backends, asserting:
//
//  1. Safety: a successful GET never returns a value that was not
//     written, and never reports a miss while the key exists.
//  2. Monotonicity: the version successful GETs observe never goes
//     backwards as the interleaving advances (replica versions are
//     monotone, so quorumed versions must be too).
//  3. Convergence: once all steps of both SETs have applied, every GET
//     succeeds with the higher-versioned SET's value — obstruction-free
//     progress once the competing SETs have quiesced (§5.3).
//
// Mid-race, a GET may legitimately fail to assemble a quorum: §5.3 notes
// that a GET racing *multiple* concurrent SETs "may subsequently fail to
// achieve quorum" and is retried. The model therefore tolerates
// ErrInquorate on incomplete prefixes but never a wrong answer.

// interleavings enumerates all merges of two sequences of lengths m and n
// as boolean step lists (false = first writer's next step, true = second).
func interleavings(m, n int) [][]bool {
	var out [][]bool
	var rec func(prefix []bool, remA, remB int)
	rec = func(prefix []bool, remA, remB int) {
		if remA == 0 && remB == 0 {
			out = append(out, append([]bool(nil), prefix...))
			return
		}
		if remA > 0 {
			rec(append(prefix, false), remA-1, remB)
		}
		if remB > 0 {
			rec(append(prefix, true), remA, remB-1)
		}
	}
	rec(nil, m, n)
	return out
}

func TestInterleavingsCount(t *testing.T) {
	if got := len(interleavings(3, 3)); got != 20 {
		t.Fatalf("C(6,3) = %d, want 20", got)
	}
}

// modelState drives one scenario.
type modelState struct {
	t       *testing.T
	c       *Cell
	cl      *client.Client
	key     []byte
	valueOf map[string]truetime.Version // value → version written with
	lastVer truetime.Version
	crashed int // crashed shard, or -1
}

func (m *modelState) get(step string) {
	got, found, err := m.cl.Get(context.Background(), m.key)
	if err != nil {
		// Inquorate mid-race is legal (§5.3): three replicas at three
		// distinct versions while two SETs are in flight.
		return
	}
	if !found {
		m.t.Fatalf("%s: GET missed an existing key", step)
	}
	ver, ok := m.valueOf[string(got)]
	if !ok {
		m.t.Fatalf("%s: GET returned a value that was never written: %q", step, got)
	}
	if ver.Less(m.lastVer) {
		m.t.Fatalf("%s: observed version went backwards: %v after %v", step, ver, m.lastVer)
	}
	m.lastVer = ver
}

// TestModelCheckConcurrentSets exhaustively explores two racing SETs under
// R=3.2, with and without a single crashed replica.
func TestModelCheckConcurrentSets(t *testing.T) {
	key := []byte("model-key")
	orders := interleavings(3, 3)

	for crash := -1; crash < 3; crash++ {
		for oi, order := range orders {
			name := fmt.Sprintf("crash%d/order%d", crash, oi)
			// Fresh cell per scenario: deterministic initial state.
			c := newTestCell(t, small32())
			// The RPC fallback reads one replica without a quorum; keep it
			// off so every answer the model sees is quorum-backed.
			cl := c.NewClient(client.Options{Strategy: client.Strategy2xR, NoFallback: true, Retries: 1})
			ctx := context.Background()

			// Initial value v0 fully installed.
			if err := cl.Set(ctx, key, []byte("v0")); err != nil {
				t.Fatal(err)
			}

			// Two writers with racing versions: ver1 < ver2 always, so the
			// converged value must be "v2".
			clk := &truetime.FakeClock{}
			clk.Set(time.Now().UnixMicro() + 1_000_000_000) // far above v0's wall-clock version
			g1 := truetime.NewGenerator(clk, 101)
			g2 := truetime.NewGenerator(clk, 102)
			ver1 := g1.Next()
			ver2 := g2.Next() // same micros, higher client id → ver1 < ver2

			ms := &modelState{
				t: t, c: c, cl: cl, key: key, crashed: crash,
				valueOf: map[string]truetime.Version{
					"v0": {}, "v1": ver1, "v2": ver2,
				},
			}
			if crash >= 0 {
				c.Crash(crash)
			}

			// The cohort of the key under 3 shards is all three backends;
			// apply order within each SET is replica 0,1,2 of the cohort.
			cfg := c.Store.Get()
			cohort := cfg.Cohort(primaryShard(c, key))
			i1, i2 := 0, 0
			ms.get("initial")
			for si, second := range order {
				var shard int
				var val []byte
				var ver truetime.Version
				if !second {
					shard = cohort[i1]
					val, ver = []byte("v1"), ver1
					i1++
				} else {
					shard = cohort[i2]
					val, ver = []byte("v2"), ver2
					i2++
				}
				if shard != crash {
					b := c.Backend(shard)
					b.ApplySet(key, val, ver)
				}
				ms.get(fmt.Sprintf("%s step %d", name, si))
			}
			// Converged: the higher version must win everywhere live.
			got, found, err := cl.Get(ctx, key)
			if err != nil || !found || !bytes.Equal(got, []byte("v2")) {
				t.Fatalf("%s converged on %q (found=%v err=%v), want v2", name, got, found, err)
			}
		}
	}
}

// TestModelCheckSetEraseRace explores a SET racing an ERASE step-by-step:
// the erase's tombstone must make the outcome deterministic per version
// order, and an erased value must never resurrect.
func TestModelCheckSetEraseRace(t *testing.T) {
	key := []byte("model-key")
	orders := interleavings(3, 3)

	for oi, order := range orders {
		c := newTestCell(t, small32())
		cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
		ctx := context.Background()
		if err := cl.Set(ctx, key, []byte("v0")); err != nil {
			t.Fatal(err)
		}

		clk := &truetime.FakeClock{}
		clk.Set(time.Now().UnixMicro() + 1_000_000_000)
		gSet := truetime.NewGenerator(clk, 101)
		gErase := truetime.NewGenerator(clk, 102)
		setVer := gSet.Next()
		eraseVer := gErase.Next() // eraseVer > setVer

		cfg := c.Store.Get()
		cohort := cfg.Cohort(primaryShard(c, key))
		iS, iE := 0, 0
		for _, second := range order {
			if !second {
				b := c.Backend(cohort[iS])
				b.ApplySet(key, []byte("v1"), setVer)
				iS++
			} else {
				b := c.Backend(cohort[iE])
				b.ApplyErase(key, eraseVer)
				iE++
			}
			// Mid-race GETs must never see a value that was never written.
			got, found, err := cl.Get(ctx, key)
			if err == nil && found {
				if string(got) != "v0" && string(got) != "v1" {
					t.Fatalf("order %d: phantom value %q", oi, got)
				}
			}
		}
		// Erase has the higher version: the key must be gone everywhere.
		if _, found, err := cl.Get(ctx, key); err != nil || found {
			t.Fatalf("order %d: erased key still visible (found=%v err=%v)", oi, found, err)
		}
		// And a stale late SET must not resurrect it (§5.2 tombstones).
		for _, shard := range cohort {
			c.Backend(shard).ApplySet(key, []byte("v1"), setVer)
		}
		if _, found, _ := cl.Get(ctx, key); found {
			t.Fatalf("order %d: stale SET resurrected erased key", oi)
		}
	}
}

package cell

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cliquemap/internal/core/backend"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/hashring"
	"cliquemap/internal/rpc"
	"cliquemap/internal/truetime"
)

func newTestCell(t *testing.T, opt Options) *Cell {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small32() Options {
	return Options{
		Shards: 3, Spares: 1, Mode: config.R32, Transport: TransportPony,
		Backend: backend.Options{
			Geometry:       layout.Geometry{Buckets: 64, Ways: 8},
			DataBytes:      1 << 20,
			DataMaxBytes:   8 << 20,
			SlabBytes:      64 << 10,
			ReshapeEnabled: true,
		},
	}
}

func TestSetGetAcrossStrategies(t *testing.T) {
	for _, strat := range []client.Strategy{client.Strategy2xR, client.StrategySCAR, client.StrategyMSG, client.StrategyRPC} {
		t.Run(strat.String(), func(t *testing.T) {
			c := newTestCell(t, small32())
			cl := c.NewClient(client.Options{Strategy: strat})
			ctx := context.Background()
			for i := 0; i < 20; i++ {
				k := []byte(fmt.Sprintf("key-%d", i))
				v := []byte(fmt.Sprintf("value-%d", i))
				if err := cl.Set(ctx, k, v); err != nil {
					t.Fatalf("set %d: %v", i, err)
				}
			}
			for i := 0; i < 20; i++ {
				k := []byte(fmt.Sprintf("key-%d", i))
				got, found, err := cl.Get(ctx, k)
				if err != nil || !found || string(got) != fmt.Sprintf("value-%d", i) {
					t.Fatalf("get %d: %q %v %v", i, got, found, err)
				}
			}
			if _, found, err := cl.Get(ctx, []byte("absent")); err != nil || found {
				t.Errorf("absent key: found=%v err=%v", found, err)
			}
		})
	}
}

func TestSetGetR1AndR2(t *testing.T) {
	for _, mode := range []config.Mode{config.R1, config.R2Immutable} {
		t.Run(mode.String(), func(t *testing.T) {
			opt := small32()
			opt.Mode = mode
			c := newTestCell(t, opt)
			cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
			ctx := context.Background()
			if err := cl.Set(ctx, []byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			got, found, err := cl.Get(ctx, []byte("k"))
			if err != nil || !found || string(got) != "v" {
				t.Fatalf("get: %q %v %v", got, found, err)
			}
		})
	}
}

func TestEraseNoResurrection(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.StrategySCAR})
	ctx := context.Background()
	cl.Set(ctx, []byte("k"), []byte("v"))
	if err := cl.Erase(ctx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, found, err := cl.Get(ctx, []byte("k")); err != nil || found {
		t.Errorf("after erase: found=%v err=%v", found, err)
	}
	// A later SET creates it anew.
	cl.Set(ctx, []byte("k"), []byte("v2"))
	got, found, _ := cl.Get(ctx, []byte("k"))
	if !found || string(got) != "v2" {
		t.Errorf("re-set: %q %v", got, found)
	}
}

func TestCas(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{})
	ctx := context.Background()
	v1, err := cl.SetVersioned(ctx, []byte("k"), []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cl.Cas(ctx, []byte("k"), []byte("b"), v1)
	if err != nil || !ok {
		t.Fatalf("cas with right version: %v %v", ok, err)
	}
	ok, err = cl.Cas(ctx, []byte("k"), []byte("c"), v1) // stale expectation
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cas with stale version applied")
	}
	got, _, _ := cl.Get(ctx, []byte("k"))
	if string(got) != "b" {
		t.Errorf("value = %q", got)
	}
}

// TestQuorumSurvivesSingleFailure is the §5.1 availability property the
// paper proved in TLA+: R=3.2 serves reads with any single backend down.
func TestQuorumSurvivesSingleFailure(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	ctx := context.Background()
	keys := make([][]byte, 30)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		if err := cl.Set(ctx, keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for down := 0; down < 3; down++ {
		c.Crash(down)
		for _, k := range keys {
			got, found, err := cl.Get(ctx, k)
			if err != nil || !found || string(got) != "v" {
				t.Fatalf("shard %d down, key %q: %q %v %v", down, k, got, found, err)
			}
		}
		// Writes also make progress (quorum of 2).
		if err := cl.Set(ctx, []byte(fmt.Sprintf("during-%d", down)), []byte("w")); err != nil {
			t.Fatalf("write with shard %d down: %v", down, err)
		}
		if err := c.Restart(ctx, down); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashRestartRepair(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(1)
	// Writes during the outage create dirty quorums involving shard 1.
	for i := 0; i < 20; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("dirty%d", i)), []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Restart(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// After repair, the restarted backend must hold every key it
	// replicates: all three replicas agree, so even a client preferring
	// backend 1 reads correctly.
	b1 := c.Backend(1)
	if b1.Len() == 0 {
		t.Fatal("restarted backend still empty after repair")
	}
	if c.AggregateCounters().RepairsIssued == 0 {
		t.Error("no repairs recorded")
	}
	for i := 0; i < 20; i++ {
		got, found, err := cl.Get(ctx, []byte(fmt.Sprintf("dirty%d", i)))
		if err != nil || !found || string(got) != "d" {
			t.Fatalf("dirty%d after repair: %q %v %v", i, got, found, err)
		}
	}
}

func TestPlannedMaintenanceSparing(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	// Warm the client's handshakes so the migration is discovered via
	// bucket ConfigID mismatch rather than a fresh Hello.
	for i := 0; i < 30; i++ {
		if _, found, err := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i))); err != nil || !found {
			t.Fatalf("pre-maintenance k%d: %v %v", i, found, err)
		}
	}
	primaryAddr := c.Store.Get().AddrFor(0)

	spareAddr, err := c.PlannedMaintenance(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spareAddr == primaryAddr {
		t.Fatal("maintenance did not move the shard")
	}
	// The old primary can now "restart" (it is idle); reads keep working
	// throughout via the spare + config refresh.
	for i := 0; i < 30; i++ {
		got, found, gerr := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
		if gerr != nil || !found || string(got) != "v" {
			t.Fatalf("during maintenance k%d: %q %v %v", i, got, found, gerr)
		}
	}
	if cl.M.ConfigRetries.Value() == 0 {
		t.Error("clients should have discovered the migration via config-ID mismatch")
	}
	// Return the shard to the primary.
	if err := c.CompleteMaintenance(ctx, 0, primaryAddr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		got, found, gerr := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
		if gerr != nil || !found || string(got) != "v" {
			t.Fatalf("after maintenance k%d: %q %v %v", i, got, found, gerr)
		}
	}
	if got := c.Backend(0).Addr(); got != primaryAddr {
		t.Errorf("shard 0 served by %s, want %s", got, primaryAddr)
	}
}

// TestFig5RaceTornRead reproduces the §5.3 race: a GET racing a SET either
// orders before (old value), after (new value), or retries internally —
// but never returns a torn or wrong value.
func TestFig5RaceTornRead(t *testing.T) {
	c := newTestCell(t, small32())
	ctx := context.Background()
	writer := c.NewClient(client.Options{})
	reader := c.NewClient(client.Options{Strategy: client.Strategy2xR})

	key := []byte("contended")
	// Values large enough to span many write chunks → real tear windows.
	valA := bytes.Repeat([]byte{'A'}, 8000)
	valB := bytes.Repeat([]byte{'B'}, 8000)
	if err := writer.Set(ctx, key, valA); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				writer.Set(ctx, key, valB)
			} else {
				writer.Set(ctx, key, valA)
			}
			i++
		}
	}()

	for i := 0; i < 300; i++ {
		got, found, err := reader.Get(ctx, key)
		if err != nil {
			continue // starved GET after retries: legal, rare
		}
		if !found {
			t.Error("key vanished mid-race")
			break
		}
		allA := bytes.Count(got, []byte{'A'}) == len(got)
		allB := bytes.Count(got, []byte{'B'}) == len(got)
		if !allA && !allB {
			t.Fatalf("torn value escaped validation: %d A / %d B",
				bytes.Count(got, []byte{'A'}), bytes.Count(got, []byte{'B'}))
		}
	}
	close(stop)
	wg.Wait()
	t.Logf("torn retries: %d, quorum retries: %d", reader.M.TornRetries.Value(), reader.M.QuorumRetries.Value())
}

// TestIndexResizeThroughClient drives enough inserts to force index
// resizes (window revocation) while a client keeps reading: the client
// must recover transparently via re-handshake.
func TestIndexResizeThroughClient(t *testing.T) {
	opt := small32()
	opt.Backend.Geometry = layout.Geometry{Buckets: 4, Ways: 4}
	c := newTestCell(t, opt)
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	ctx := context.Background()

	for i := 0; i < 120; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := cl.Set(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		// Interleave reads so some hit windows revoked by resizes.
		if _, _, err := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i/2))); err != nil {
			t.Fatalf("get during resizes: %v", err)
		}
	}
	agg := c.AggregateCounters()
	if agg.IndexResizes == 0 {
		t.Fatal("no index resizes happened; test ineffective")
	}
	// Keys may legitimately disappear only via pre-resize associativity
	// evictions; everything else must survive the window churn.
	missing := 0
	for i := 0; i < 120; i++ {
		_, found, err := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatalf("k%d after resizes: %v", i, err)
		}
		if !found {
			missing++
		}
	}
	if uint64(missing) > agg.AssocEvictions {
		t.Errorf("%d keys missing but only %d associativity evictions across the cell", missing, agg.AssocEvictions)
	}
	if missing > 20 {
		t.Errorf("too many keys lost to conflicts: %d/120", missing)
	}
}

func TestTouchReportingFeedsEviction(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR, TouchBatch: 4})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	for i := 0; i < 8; i++ {
		cl.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
	}
	cl.FlushTouches(ctx)
	if c.AggregateCounters().Touches == 0 {
		t.Error("no access records ingested")
	}
}

func TestAntagonistToggles(t *testing.T) {
	c := newTestCell(t, small32())
	c.SetAntagonist(1, 0.95)
	host := c.Store.Get().HostFor(1)
	if got := c.Fabric.Host(host).ExternalLoad(); got < 0.9 {
		t.Errorf("antagonist load = %v", got)
	}
	c.SetAntagonist(1, 0)
	if got := c.Fabric.Host(host).ExternalLoad(); got != 0 {
		t.Errorf("antagonist not cleared: %v", got)
	}
}

func TestOneRMATransportEndToEnd(t *testing.T) {
	opt := small32()
	opt.Transport = Transport1RMA
	c := newTestCell(t, opt)
	// SCAR requested but unsupported: the client must still work (2×R).
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := cl.Set(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		got, found, err := cl.Get(ctx, k)
		if err != nil || !found || string(got) != "v" {
			t.Fatalf("1rma get: %q %v %v", got, found, err)
		}
	}
}

// TestRetryRateUnderMixedLoad checks the §4 claim: self-validation
// retries are rare under a normal mixed workload — well under 1% here
// (the paper reports <0.01% at production scale).
func TestRetryRateUnderMixedLoad(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.StrategySCAR})
	ctx := context.Background()
	const keys = 50
	for i := 0; i < keys; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("value"))
	}
	ops := uint64(0)
	for round := 0; round < 40; round++ {
		for i := 0; i < keys; i++ {
			if i%10 == 0 {
				cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("value2"))
			}
			if _, _, err := cl.Get(ctx, []byte(fmt.Sprintf("k%d", i))); err != nil {
				t.Fatal(err)
			}
			ops++
		}
	}
	retries := cl.M.RetryCount()
	if float64(retries) > 0.01*float64(ops) {
		t.Errorf("retry rate %.4f%% (%d/%d) exceeds 1%%", 100*float64(retries)/float64(ops), retries, ops)
	}
}

// TestEvictionRate checks the §4.2 observation that evictions run at
// roughly half the SET rate once a cache at capacity churns — i.e. the
// same order of magnitude, not a pathology.
func TestEvictionRate(t *testing.T) {
	opt := small32()
	opt.Backend.DataBytes = 256 << 10
	opt.Backend.DataMaxBytes = 256 << 10
	opt.Backend.SlabBytes = 32 << 10
	opt.Backend.ReshapeEnabled = false
	c := newTestCell(t, opt)
	cl := c.NewClient(client.Options{})
	ctx := context.Background()
	val := bytes.Repeat([]byte{1}, 2000)
	const sets = 600
	for i := 0; i < sets; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	agg := c.AggregateCounters()
	evictions := agg.CapacityEvictions + agg.AssocEvictions
	ratio := float64(evictions) / float64(agg.SetsApplied)
	if ratio < 0.1 || ratio > 1.5 {
		t.Errorf("eviction/SET ratio = %.2f (evictions=%d sets=%d); expected same order as SETs", ratio, evictions, agg.SetsApplied)
	}
}

func TestGetBatch(t *testing.T) {
	c := newTestCell(t, small32())
	cl := c.NewClient(client.Options{Strategy: client.StrategySCAR})
	ctx := context.Background()
	var keys [][]byte
	for i := 0; i < 12; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		keys = append(keys, k)
		cl.Set(ctx, k, []byte(fmt.Sprintf("v%d", i)))
	}
	keys = append(keys, []byte("missing"))
	vals, found, tr, err := cl.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if !found[i] || string(vals[i]) != fmt.Sprintf("v%d", i) {
			t.Errorf("batch[%d] = %q %v", i, vals[i], found[i])
		}
	}
	if found[12] {
		t.Error("missing key reported found")
	}
	if tr.Ns == 0 {
		t.Error("batch trace empty")
	}
}

// TestCompressionEndToEnd exercises §9's post-launch compression feature:
// compressible values are stored compressed on the backends, every lookup
// strategy transparently decompresses, and the data region shrinks.
func TestCompressionEndToEnd(t *testing.T) {
	opt := small32()
	opt.Backend.CompressThreshold = 256
	c := newTestCell(t, opt)
	ctx := context.Background()

	// A highly compressible 8KB value.
	val := bytes.Repeat([]byte("cliquemap "), 800)
	writer := c.NewClient(client.Options{})
	if err := writer.Set(ctx, []byte("big"), val); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []client.Strategy{client.Strategy2xR, client.StrategySCAR, client.StrategyMSG, client.StrategyRPC} {
		cl := c.NewClient(client.Options{Strategy: strat})
		got, found, err := cl.Get(ctx, []byte("big"))
		if err != nil || !found {
			t.Fatalf("%v: %v %v", strat, found, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("%v: value corrupted (%d vs %d bytes)", strat, len(got), len(val))
		}
	}

	// Compare resident footprint against an uncompressed twin.
	plain := newTestCell(t, small32())
	pw := plain.NewClient(client.Options{})
	pw.Set(ctx, []byte("big"), val)
	compressedUtil := c.Backend(0).DataUtilization()
	plainUtil := plain.Backend(0).DataUtilization()
	if compressedUtil >= plainUtil {
		t.Errorf("compression did not shrink storage: %.4f vs %.4f", compressedUtil, plainUtil)
	}
}

// TestCompressionSurvivesMaintenance: compressed entries migrate, repair,
// and version-bump without corruption.
func TestCompressionSurvivesMaintenance(t *testing.T) {
	opt := small32()
	opt.Backend.CompressThreshold = 128
	c := newTestCell(t, opt)
	ctx := context.Background()
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	val := bytes.Repeat([]byte("zip"), 1000)
	for i := 0; i < 20; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("c%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	// Crash + restart: repairs stream values and re-install them.
	c.Crash(2)
	if err := c.Restart(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Migration to a spare and back.
	primary := c.Store.Get().AddrFor(0)
	if _, err := c.PlannedMaintenance(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CompleteMaintenance(ctx, 0, primary); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, found, err := cl.Get(ctx, []byte(fmt.Sprintf("c%d", i)))
		if err != nil || !found || !bytes.Equal(got, val) {
			t.Fatalf("c%d after maintenance: found=%v err=%v len=%d", i, found, err, len(got))
		}
	}
}

// TestImmutableR2 exercises §6.4: a bulk-loaded, sealed corpus serves GETs
// from a single replica, fails over to the second when the first dies,
// and rejects all client mutations.
func TestImmutableR2(t *testing.T) {
	opt := small32()
	opt.Mode = config.R2Immutable
	c := newTestCell(t, opt)
	ctx := context.Background()

	corpus := map[string][]byte{}
	for i := 0; i < 40; i++ {
		corpus[fmt.Sprintf("imm%d", i)] = []byte(fmt.Sprintf("val%d", i))
	}
	if err := c.LoadImmutable(ctx, corpus); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	for k, want := range corpus {
		got, found, err := cl.Get(ctx, []byte(k))
		if err != nil || !found || !bytes.Equal(got, want) {
			t.Fatalf("%s: %q %v %v", k, got, found, err)
		}
	}

	// Mutations are rejected on a sealed cell.
	if err := cl.Set(ctx, []byte("imm0"), []byte("tamper")); err == nil {
		t.Error("SET accepted on sealed corpus")
	}
	if err := cl.Erase(ctx, []byte("imm0")); err == nil {
		t.Error("ERASE accepted on sealed corpus")
	}
	if got, _, _ := cl.Get(ctx, []byte("imm0")); !bytes.Equal(got, corpus["imm0"]) {
		t.Error("sealed value changed")
	}

	// Single-backend failure: the second replica serves (§6.4 tolerates
	// single-backend failures).
	c.Crash(0)
	served := 0
	for k, want := range corpus {
		got, found, err := cl.Get(ctx, []byte(k))
		if err == nil && found && bytes.Equal(got, want) {
			served++
		}
	}
	if served != len(corpus) {
		t.Errorf("with one replica down, served %d/%d", served, len(corpus))
	}
}

// TestImmutableR2SingleReplicaTraffic: most R=2 GETs touch one replica,
// not two — roughly half the index-fetch traffic of a quorum read.
func TestImmutableR2SingleReplicaTraffic(t *testing.T) {
	opt := small32()
	opt.Mode = config.R2Immutable
	c := newTestCell(t, opt)
	ctx := context.Background()
	if err := c.LoadImmutable(ctx, map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	var before uint64
	for _, b := range c.Nodes() {
		before += b.CountersSnapshot().Gets
	}
	const gets = 50
	for i := 0; i < gets; i++ {
		if _, found, err := cl.Get(ctx, []byte("k")); err != nil || !found {
			t.Fatal(found, err)
		}
	}
	// RMA GETs don't touch backend counters at all; what we can assert is
	// cheaper: the op's byte traffic. One replica consulted ⇒ roughly one
	// bucket per GET rather than two.
	_, _, tr, err := cl.GetTraced(ctx, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	bucket := uint64(opt.Backend.Geometry.BucketSize())
	if tr.Bytes > bucket+2048 {
		t.Errorf("R=2 GET moved %d bytes; single-replica read should be ~1 bucket (%d) + data", tr.Bytes, bucket)
	}
	_ = before
}

// TestQuorumRepairClearsDirtyQuorums builds dirty quorums by hand (a key
// applied on only two of three replicas — what §5.4 attributes to task
// failures, uncoordinated eviction, and RPC failures) and verifies that
// one repair sweep settles all replicas on a single VersionNumber.
func TestQuorumRepairClearsDirtyQuorums(t *testing.T) {
	c := newTestCell(t, small32())
	ctx := context.Background()
	cl := c.NewClient(client.Options{})

	// A healthy key for contrast.
	if err := cl.Set(ctx, []byte("healthy"), []byte("h")); err != nil {
		t.Fatal(err)
	}

	// Dirty quorum: install on just two replicas of the cohort.
	key := []byte("dirty-key")
	cfg := c.Store.Get()
	cohort := cfg.Cohort(primaryShard(c, key))
	gen := c.Clock
	_ = gen
	v := cl.Config() // silence; version comes from a direct generator below
	_ = v
	ver := truetimeVersionForTest()
	for _, shard := range cohort[:2] {
		if applied, _, _ := c.Backend(shard).ApplySet(key, []byte("dv"), ver); !applied {
			t.Fatal("setup apply rejected")
		}
	}

	agreeCount := func() int {
		versions := map[string]int{}
		for _, shard := range cohort {
			resp, err := c.Backend(shard).HandleMsg(proto.GetReq{Key: key}.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			g, _ := proto.UnmarshalGetResp(resp)
			if g.Found {
				versions[g.Version.String()]++
			} else {
				versions["absent"]++
			}
		}
		max := 0
		for _, n := range versions {
			if n > max {
				max = n
			}
		}
		return max
	}
	if agreeCount() == 3 {
		t.Fatal("setup failed: quorum not dirty")
	}

	repaired, err := c.RepairAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("repair sweep found nothing")
	}
	if agreeCount() != 3 {
		t.Error("replicas still disagree after repair")
	}
	// The repaired value is intact and quorum-readable.
	got, found, err := cl.Get(ctx, key)
	if err != nil || !found || !bytes.Equal(got, []byte("dv")) {
		t.Errorf("after repair: %q %v %v", got, found, err)
	}
	// A second sweep is a no-op: repair converges.
	again, err := c.RepairAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("repair did not converge: second sweep fixed %d more", again)
	}
}

func truetimeVersionForTest() truetime.Version {
	return truetime.Version{Micros: time.Now().UnixMicro() + 1_000_000, ClientID: 7, Seq: 1}
}

// TestRepairLoopHealsContinuously: the background sweep (§5.4's periodic
// cohort scans) picks up divergence without explicit triggers.
func TestRepairLoopHealsContinuously(t *testing.T) {
	c := newTestCell(t, small32())
	ctx := context.Background()
	key := []byte("loop-key")
	cohort := c.Store.Get().Cohort(primaryShard(c, key))
	c.Backend(cohort[0]).ApplySet(key, []byte("x"), truetimeVersionForTest())

	c.StartRepairLoop(5 * time.Millisecond)
	defer c.StopRepairLoop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, _ := c.Backend(cohort[2]).HandleMsg(proto.GetReq{Key: key}.Marshal())
		if g, _ := proto.UnmarshalGetResp(resp); g.Found {
			return // healed
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = ctx
	t.Fatal("repair loop never healed the dirty key")
}

// TestWANClient exercises Table 1's WAN access path: a remote-region
// client reaches the cell purely over RPC, works correctly, and pays the
// WAN distance on every op.
func TestWANClient(t *testing.T) {
	opt := small32()
	opt.ClientHosts = 2 // separate hosts for local and WAN clients
	c := newTestCell(t, opt)
	ctx := context.Background()

	local := c.NewClient(client.Options{Strategy: client.StrategySCAR})
	wan := c.NewWANClient(client.Options{}, 30*time.Millisecond)

	if err := wan.Set(ctx, []byte("wk"), []byte("wv")); err != nil {
		t.Fatal(err)
	}
	got, found, err := wan.Get(ctx, []byte("wk"))
	if err != nil || !found || !bytes.Equal(got, []byte("wv")) {
		t.Fatalf("wan get: %q %v %v", got, found, err)
	}
	// The corpus is shared: the local client sees WAN-written data.
	got, found, err = local.Get(ctx, []byte("wk"))
	if err != nil || !found || !bytes.Equal(got, []byte("wv")) {
		t.Fatalf("local get of wan write: %q %v %v", got, found, err)
	}
	// WAN latency dominates: the op's modelled latency carries the 30ms.
	// (histogram buckets report lower bounds with ≤6.25% error)
	if p50 := wan.M.GetLatency.Percentile(50); p50 < 28_000_000 {
		t.Errorf("wan GET p50 = %dns, want >= one-way WAN latency", p50)
	}
	if localP50 := local.M.GetLatency.Percentile(50); localP50 > 1_000_000 {
		t.Errorf("local client affected by WAN latency: p50 = %dns", localP50)
	}
}

// TestStatsRPC exercises the post-launch Stats method (§6-style additive
// evolution): new clients can introspect backends; the data matches the
// backend's own counters.
func TestStatsRPC(t *testing.T) {
	c := newTestCell(t, small32())
	ctx := context.Background()
	cl := c.NewClient(client.Options{})
	for i := 0; i < 10; i++ {
		cl.Set(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	rpcc := c.Net.Client(0, "ops-dashboard")
	resp, _, err := rpcc.Call(ctx, "backend-1", proto.MethodStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proto.UnmarshalStatsResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != 1 || st.Sealed {
		t.Errorf("stats: %+v", st)
	}
	if st.ResidentKeys != 10 || st.Sets != 10 {
		t.Errorf("stats counters: resident=%d sets=%d", st.ResidentKeys, st.Sets)
	}
	if st.MemoryBytes == 0 {
		t.Error("stats memory zero")
	}
}

// TestCellACL: per-RPC ACLs (Table 1) gate the whole service surface.
func TestCellACL(t *testing.T) {
	opt := small32()
	opt.ACL = func(principal, method string) error {
		if method == proto.MethodSet && principal != "client-writer" {
			return fmt.Errorf("principal %q may not SET", principal)
		}
		return nil
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	reader := c.Net.Client(0, "client-reader")
	writer := c.Net.Client(0, "client-writer")
	req := proto.SetReq{Key: []byte("k"), Value: []byte("v"), Version: truetimeVersionForTest()}.Marshal()
	if _, _, err := reader.Call(ctx, "backend-0", proto.MethodSet, req); err == nil {
		t.Error("unauthorized SET accepted")
	}
	if _, _, err := writer.Call(ctx, "backend-0", proto.MethodSet, req); err != nil {
		t.Errorf("authorized SET rejected: %v", err)
	}
	// Reads remain open to both.
	if _, _, err := reader.Call(ctx, "backend-0", proto.MethodGet, proto.GetReq{Key: []byte("k")}.Marshal()); err != nil {
		t.Errorf("read blocked: %v", err)
	}
}

// TestClientResilientToTransientRPCFailures: sporadic RPC drops (a §5.4
// dirty-quorum source) are absorbed by client retries — mutations still
// reach a write quorum and reads keep answering.
func TestClientResilientToTransientRPCFailures(t *testing.T) {
	c := newTestCell(t, small32())
	ctx := context.Background()
	// 20% of RPCs to backend-1 fail transiently.
	c.BackendByAddr("backend-1").Server().SetFailRate(0.2, 42)

	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	okSets := 0
	for i := 0; i < 60; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("t%d", i)), []byte("v")); err == nil {
			okSets++
		}
	}
	// Quorum (2/3) tolerates one flaky member entirely.
	if okSets != 60 {
		t.Errorf("only %d/60 SETs reached a write quorum", okSets)
	}
	for i := 0; i < 60; i++ {
		got, found, err := cl.Get(ctx, []byte(fmt.Sprintf("t%d", i)))
		if err != nil || !found || string(got) != "v" {
			t.Fatalf("t%d: %q %v %v", i, got, found, err)
		}
	}
	// The flaky backend missed some SETs: dirty quorums exist. A repair
	// sweep (run by a healthy member) heals them.
	c.BackendByAddr("backend-1").Server().SetFailRate(0, 0)
	repaired, err := c.RepairAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("repaired %d dirty quorums caused by transient RPC failures", repaired)
	if again, _ := c.RepairAll(ctx); again != 0 {
		t.Errorf("repair not converged: %d more", again)
	}
}

// TestTouchFeedbackKeepsHotKeys closes the §4.2 loop end-to-end: clients
// report touches, backends ingest them into LRU, and capacity evictions
// then prefer cold keys — the hot key survives pressure.
func TestTouchFeedbackKeepsHotKeys(t *testing.T) {
	opt := small32()
	opt.Backend.DataBytes = 128 << 10
	opt.Backend.DataMaxBytes = 128 << 10 // fixed: force capacity evictions
	opt.Backend.SlabBytes = 16 << 10
	opt.Backend.ReshapeEnabled = false
	opt.Backend.Policy = "lru"
	c := newTestCell(t, opt)
	ctx := context.Background()
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR, TouchBatch: 4})

	hot := []byte("hot-key")
	if err := cl.Set(ctx, hot, bytes.Repeat([]byte{1}, 2000)); err != nil {
		t.Fatal(err)
	}
	// Interleave cold inserts with hot-key reads (each read reports
	// touches, keeping the hot key at the LRU front).
	val := bytes.Repeat([]byte{2}, 2000)
	for i := 0; i < 120; i++ {
		if err := cl.Set(ctx, []byte(fmt.Sprintf("cold%d", i)), val); err != nil {
			t.Fatal(err)
		}
		if _, found, err := cl.Get(ctx, hot); err != nil || !found {
			t.Fatalf("hot key evicted at step %d (err=%v)", i, err)
		}
	}
	agg := c.AggregateCounters()
	if agg.CapacityEvictions == 0 {
		t.Fatal("no capacity pressure; test ineffective")
	}
	if agg.Touches == 0 {
		t.Fatal("no touches ingested; feedback loop broken")
	}
}

// TestTCPGatewayFullProtocol drives the complete CliqueMap protocol from
// outside the cell's address space: an external caller over a real TCP
// socket discovers the shard map, writes to every replica with a
// client-nominated version, and reads back with a version quorum.
func TestTCPGatewayFullProtocol(t *testing.T) {
	c := newTestCell(t, small32())
	gw, err := c.ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	tc, err := rpc.DialTCP(gw.Addr(), "external-process")
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	ctx := context.Background()

	// Discover the cell.
	raw, _, err := tc.Call(ctx, "backend-0", proto.MethodConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := proto.UnmarshalConfigResp(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 3 || cfg.Quorum != 2 || len(cfg.ShardAddrs) != 3 {
		t.Fatalf("config: %+v", cfg)
	}

	// Write: SET to the key's whole cohort at one nominated version.
	key := []byte("tcp-key")
	h := hashring.DefaultHash(key)
	primary := int(h.Hi % uint64(len(cfg.ShardAddrs)))
	ver := truetimeVersionForTest()
	acks := 0
	for i := 0; i < cfg.Replicas; i++ {
		addr := cfg.ShardAddrs[(primary+i)%len(cfg.ShardAddrs)]
		resp, _, cerr := tc.Call(ctx, addr, proto.MethodSet,
			proto.SetReq{Key: key, Value: []byte("tcp-value"), Version: ver}.Marshal())
		if cerr != nil {
			continue
		}
		if mr, merr := proto.UnmarshalMutateResp(resp); merr == nil && mr.Applied {
			acks++
		}
	}
	if acks < cfg.Quorum {
		t.Fatalf("write quorum not reached: %d acks", acks)
	}

	// Read: quorum on versions across replicas.
	votes := map[string]int{}
	var value []byte
	for i := 0; i < cfg.Replicas; i++ {
		addr := cfg.ShardAddrs[(primary+i)%len(cfg.ShardAddrs)]
		resp, _, cerr := tc.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: key}.Marshal())
		if cerr != nil {
			continue
		}
		g, gerr := proto.UnmarshalGetResp(resp)
		if gerr != nil || !g.Found {
			continue
		}
		votes[g.Version.String()]++
		if votes[g.Version.String()] >= cfg.Quorum {
			value = g.Value
		}
	}
	if !bytes.Equal(value, []byte("tcp-value")) {
		t.Fatalf("quorum read over TCP got %q (votes %v)", value, votes)
	}

	// The in-process view agrees.
	local := c.NewClient(client.Options{})
	got, found, err := local.Get(ctx, key)
	if err != nil || !found || !bytes.Equal(got, []byte("tcp-value")) {
		t.Fatalf("local view: %q %v %v", got, found, err)
	}
}

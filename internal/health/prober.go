package health

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"cliquemap/internal/core/layout"
	"cliquemap/internal/truetime"
)

// Canary is the client surface the prober exercises — *client.Client
// satisfies it. Availability and latency are reported out-of-band through
// the client's Observer hook (see Plane.Observer); the prober itself only
// adds correctness checks on top.
type Canary interface {
	Get(ctx context.Context, key []byte) ([]byte, bool, error)
	SetVersioned(ctx context.Context, key, value []byte) (truetime.Version, error)
	Cas(ctx context.Context, key, value []byte, expected truetime.Version) (bool, error)
	Erase(ctx context.Context, key []byte) error
}

// Target is one probe path: a canary client pinned to a transport (and,
// through replica selection, to the full cohort fan-out). Name labels it
// in telemetry, e.g. "2xR" or "RPC".
type Target struct {
	Name   string
	Client Canary
}

// ProbeKeys returns n canary keys inside the reserved probe namespace
// (layout.ProbeKeyPrefix). Spreading n well past the shard count makes
// every shard own at least one probe key with high probability, so a
// single sick replica cannot hide from the prober.
func ProbeKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%scanary-%04d", layout.ProbeKeyPrefix, i))
	}
	return keys
}

// Prober sweeps every target × probe key with the full op mix. Rounds are
// driven explicitly (by cmcell's workload loop or a test) so probe
// cadence rides the same virtual clock as the cell.
type Prober struct {
	plane   *Plane
	targets []Target
	keys    [][]byte
	round   uint64
}

// NewProber builds a prober feeding plane. Keys defaults to ProbeKeys(8)
// when nil.
func NewProber(plane *Plane, targets []Target, keys [][]byte) *Prober {
	if len(keys) == 0 {
		keys = ProbeKeys(8)
	}
	return &Prober{plane: plane, targets: targets, keys: keys}
}

// Targets returns the probe target names, for display.
func (p *Prober) Targets() []string {
	names := make([]string, len(p.targets))
	for i, t := range p.targets {
		names[i] = t.Name
	}
	return names
}

// value derives the deterministic canary payload for (round, key, gen).
func probeValue(round uint64, key []byte, gen byte) []byte {
	v := make([]byte, 16+len(key))
	binary.LittleEndian.PutUint64(v, round)
	v[8] = gen
	copy(v[16:], key)
	return v
}

// Round performs one full sweep: for every target and probe key, SET a
// fresh payload, GET it back (verifying the bytes), CAS it forward at the
// SET's version, and ERASE it. Op availability and latency flow into the
// plane through each client's Observer; Round adds the correctness
// verdicts (wrong value, lost CAS) and finishes with an Evaluate so alert
// states track probe cadence.
func (p *Prober) Round(ctx context.Context) Snapshot {
	p.round++
	for _, t := range p.targets {
		for _, key := range p.keys {
			val := probeValue(p.round, key, 0)
			v, err := t.Client.SetVersioned(ctx, key, val)
			if err == nil {
				got, found, gerr := t.Client.Get(ctx, key)
				if gerr == nil && (!found || !bytes.Equal(got, val)) {
					p.plane.RecordViolation("GET")
				}
				applied, cerr := t.Client.Cas(ctx, key, probeValue(p.round, key, 1), v)
				if cerr == nil && !applied {
					p.plane.RecordViolation("CAS")
				}
			}
			_ = t.Client.Erase(ctx, key)
		}
	}
	p.plane.noteRound()
	return p.plane.Evaluate()
}

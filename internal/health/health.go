// Package health is CliqueMap's fleet health plane (§6): the black-box
// qualification signal that decides whether a cell is serving its users.
// It combines three pieces:
//
//   - E2E probers (prober.go): synthetic canary clients that continuously
//     issue GET/SET/CAS/ERASE against reserved probe keys (the
//     layout.ProbeKeyPrefix namespace) over every configured transport,
//     measuring availability and latency from the client edge — the same
//     path users take, chaos and all.
//   - An SLO engine (this file): per-op-class objectives (availability +
//     latency threshold) evaluated with multi-window burn-rate alerting.
//     Probe outcomes land in a ring of virtual-time buckets; the burn
//     rate — observed bad fraction divided by the error budget — is read
//     over a fast (~5m) and a slow (~1h) window, and an ok → warn → page
//     state machine with hysteresis turns the pair into an operator
//     signal. Paging on burn rate rather than raw error rate makes the
//     alert scale-free: a 0.1%-budget SLO pages at the same severity
//     whether the cell serves 1k or 1M QPS.
//   - Key-heat telemetry (stats.TopK + per-stripe counters, fed by the
//     backend), surfaced over MethodDebug/cmstat.
//
// All windows run on the fabric's virtual clock, so chaos-induced
// brownouts trip alerts deterministically under a fixed seed and tests
// can cover hours of SLO algebra in milliseconds.
package health

import (
	"fmt"
	"io"
	"sync"

	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
)

// NowFunc samples the fabric's virtual clock in nanoseconds.
type NowFunc func() uint64

// State is the alert severity for one SLO class.
type State int

const (
	// Ok: burn rates below the warn threshold.
	Ok State = iota
	// Warn: the error budget is burning faster than sustainable (ticket
	// severity).
	Warn
	// Page: budget exhaustion is imminent on both windows (wake a human).
	Page
)

// String names the state for wire frames and display.
func (s State) String() string {
	switch s {
	case Warn:
		return "warn"
	case Page:
		return "page"
	}
	return "ok"
}

// StateOf parses a state name; unknown names map to Ok.
func StateOf(s string) State {
	switch s {
	case "warn":
		return Warn
	case "page":
		return Page
	}
	return Ok
}

// Objective is one op class's SLO: an availability target and a latency
// threshold above which a successful op still counts against the budget.
type Objective struct {
	Class        string  // op class, e.g. "GET"
	Availability float64 // e.g. 0.999 → 0.1% error budget
	LatencyNs    uint64  // ops slower than this are budget-bad
}

// DefaultObjectives returns the stock per-op-class SLOs, calibrated to
// the modelled fabric: RMA GETs complete in ~10µs and RPC mutations in
// ~100µs, so a 1ms/5ms latency threshold only trips under injected
// degradation (e.g. the brownout preset's 2ms NIC delay).
func DefaultObjectives() []Objective {
	return []Objective{
		{Class: "GET", Availability: 0.999, LatencyNs: 1_000_000},
		{Class: "SET", Availability: 0.999, LatencyNs: 5_000_000},
		{Class: "CAS", Availability: 0.999, LatencyNs: 5_000_000},
		{Class: "ERASE", Availability: 0.999, LatencyNs: 5_000_000},
	}
}

// Config shapes the SLO engine. Zero fields take defaults.
type Config struct {
	FastWindowNs uint64 // default 5 virtual minutes
	SlowWindowNs uint64 // default 1 virtual hour
	BucketNs     uint64 // window bucket width; default 5 virtual seconds
	// PageBurn is the burn rate (on both windows) that enters Page;
	// default 14.4 — the classic "2% of a 30-day budget in one hour".
	PageBurn float64
	// WarnBurn enters Warn; default 3.
	WarnBurn float64
	// ClearFactor scales the enter thresholds into exit thresholds for
	// hysteresis; default 0.5 (an alert holds until burn halves).
	ClearFactor float64
	Objectives  []Objective
}

func (c Config) withDefaults() Config {
	if c.FastWindowNs == 0 {
		c.FastWindowNs = 5 * 60 * 1e9
	}
	if c.SlowWindowNs == 0 {
		c.SlowWindowNs = 60 * 60 * 1e9
	}
	if c.BucketNs == 0 {
		c.BucketNs = 5 * 1e9
	}
	if c.SlowWindowNs < c.FastWindowNs {
		c.SlowWindowNs = c.FastWindowNs
	}
	if c.BucketNs > c.FastWindowNs {
		c.BucketNs = c.FastWindowNs
	}
	if c.PageBurn == 0 {
		c.PageBurn = 14.4
	}
	if c.WarnBurn == 0 {
		c.WarnBurn = 3
	}
	if c.ClearFactor == 0 {
		c.ClearFactor = 0.5
	}
	if len(c.Objectives) == 0 {
		c.Objectives = DefaultObjectives()
	}
	return c
}

// winBucket is one virtual-time slice of probe outcomes.
type winBucket struct {
	good, bad uint64
}

// classState is one SLO class's live accounting. The bucket ring spans
// the slow window; both window tallies read from it.
type classState struct {
	obj       Objective
	ring      []winBucket
	head      int    // ring index of the current bucket
	headStart uint64 // virtual start of the current bucket
	started   bool

	good, bad uint64 // lifetime
	lat       stats.Histogram

	state   State
	sinceNs uint64
	pages   uint64 // lifetime ok/warn → page transitions
	warns   uint64
}

// Plane is one cell's health plane: the SLO engine plus prober
// bookkeeping. Safe for concurrent use.
type Plane struct {
	cfg Config
	now NowFunc

	mu      sync.Mutex
	classes map[string]*classState
	order   []string
	targets map[string]*targetState
	torder  []string
	rounds  uint64
}

// targetState tracks availability per probe target (replica/transport
// combination), the "which path is failing" drill-down under a class
// alert.
type targetState struct {
	good, bad uint64
}

// NewPlane builds a health plane on the given virtual clock.
func NewPlane(cfg Config, now NowFunc) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:     cfg,
		now:     now,
		classes: make(map[string]*classState),
		targets: make(map[string]*targetState),
	}
	n := int(cfg.SlowWindowNs/cfg.BucketNs) + 1
	for _, obj := range cfg.Objectives {
		p.classes[obj.Class] = &classState{obj: obj, ring: make([]winBucket, n)}
		p.order = append(p.order, obj.Class)
	}
	return p
}

// Config returns the resolved configuration.
func (p *Plane) Config() Config { return p.cfg }

// advance rotates the ring so the current bucket covers now, zeroing any
// buckets skipped since the last sample. Caller holds p.mu.
func (c *classState) advance(now, bucketNs uint64) {
	if !c.started {
		c.headStart = now - now%bucketNs
		c.started = true
		return
	}
	if now < c.headStart {
		return // virtual clock cannot go backwards; tolerate anyway
	}
	steps := (now - c.headStart) / bucketNs
	if steps == 0 {
		return
	}
	if steps >= uint64(len(c.ring)) {
		for i := range c.ring {
			c.ring[i] = winBucket{}
		}
		c.head = 0
		c.headStart = now - now%bucketNs
		return
	}
	for i := uint64(0); i < steps; i++ {
		c.head = (c.head + 1) % len(c.ring)
		c.ring[c.head] = winBucket{}
		c.headStart += bucketNs
	}
}

// tally sums the most recent windowNs of outcomes. Caller holds p.mu and
// has advanced the ring.
func (c *classState) tally(windowNs, bucketNs uint64) (good, bad uint64) {
	nb := int(windowNs / bucketNs)
	if nb < 1 {
		nb = 1
	}
	if nb > len(c.ring) {
		nb = len(c.ring)
	}
	for i := 0; i < nb; i++ {
		b := c.ring[(c.head-i+len(c.ring))%len(c.ring)]
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// burn converts a window tally into a burn rate: bad fraction divided by
// the error budget. An empty window burns nothing.
func burn(good, bad uint64, availability float64) float64 {
	total := good + bad
	if total == 0 || bad == 0 {
		return 0
	}
	budget := 1 - availability
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// Record lands one probe outcome in its class windows. failed marks an op
// error; a slow success (above the class latency threshold) is also
// budget-bad. Unknown classes are dropped.
func (p *Plane) Record(class string, ns uint64, failed bool) {
	now := p.now()
	p.mu.Lock()
	c, ok := p.classes[class]
	if !ok {
		p.mu.Unlock()
		return
	}
	c.advance(now, p.cfg.BucketNs)
	bad := failed || ns > c.obj.LatencyNs
	if bad {
		c.bad++
		c.ring[c.head].bad++
	} else {
		c.good++
		c.ring[c.head].good++
	}
	p.mu.Unlock()
	if !failed {
		c.lat.Record(ns) // histogram is internally synchronized
	}
}

// recordTarget lands one probe outcome against a prober target.
func (p *Plane) recordTarget(name string, failed bool) {
	p.mu.Lock()
	t, ok := p.targets[name]
	if !ok {
		t = &targetState{}
		p.targets[name] = t
		p.torder = append(p.torder, name)
	}
	if failed {
		t.bad++
	} else {
		t.good++
	}
	p.mu.Unlock()
}

// Observer returns a client op observer that feeds this plane, tagging
// availability by probe target. Wire it as the canary client's
// Options.Observer.
func (p *Plane) Observer(target string) func(kind trace.Kind, transport trace.Transport, ns uint64, err error) {
	return func(kind trace.Kind, transport trace.Transport, ns uint64, err error) {
		p.Record(kind.String(), ns, err != nil)
		p.recordTarget(target, err != nil)
	}
}

// RecordViolation charges one correctness violation (wrong value read,
// CAS lost against its own expected version) to a class: availability is
// meaningless if the data is wrong.
func (p *Plane) RecordViolation(class string) {
	p.Record(class, 0, true)
}

// nextState applies the alert state machine with hysteresis: entering a
// severity requires both windows above the enter threshold; leaving it
// requires either window below ClearFactor × that threshold. The fast
// window recovers within FastWindowNs of a heal, so a page deterministically
// clears well inside one slow window.
func nextState(cur State, bf, bs float64, cfg Config) State {
	pageEnter := bf >= cfg.PageBurn && bs >= cfg.PageBurn
	pageHold := bf >= cfg.PageBurn*cfg.ClearFactor && bs >= cfg.PageBurn*cfg.ClearFactor
	warnEnter := bf >= cfg.WarnBurn && bs >= cfg.WarnBurn
	warnHold := bf >= cfg.WarnBurn*cfg.ClearFactor && bs >= cfg.WarnBurn*cfg.ClearFactor
	switch cur {
	case Page:
		if pageHold {
			return Page
		}
		if warnHold {
			return Warn
		}
		return Ok
	case Warn:
		if pageEnter {
			return Page
		}
		if warnHold {
			return Warn
		}
		return Ok
	default:
		if pageEnter {
			return Page
		}
		if warnEnter {
			return Warn
		}
		return Ok
	}
}

// ClassStatus is one class's evaluated SLO state.
type ClassStatus struct {
	Class        string
	Availability float64 // objective
	LatencyNs    uint64  // objective
	State        State
	SinceNs      uint64 // virtual instant of the last state change
	FastBurn     float64
	SlowBurn     float64
	WindowGood   uint64 // slow-window tallies
	WindowBad    uint64
	Good         uint64 // lifetime
	Bad          uint64
	ProbeP50Ns   uint64
	ProbeP99Ns   uint64
	Pages        uint64
	Warns        uint64
}

// TargetStatus is one probe target's lifetime availability.
type TargetStatus struct {
	Name      string
	Good, Bad uint64
}

// Snapshot is the health plane's evaluated state: the MethodHealth
// payload.
type Snapshot struct {
	GeneratedNs uint64 // virtual generation instant
	Rounds      uint64 // prober rounds completed
	Classes     []ClassStatus
	Targets     []TargetStatus
}

// Worst returns the most severe class state.
func (s Snapshot) Worst() State {
	w := Ok
	for _, c := range s.Classes {
		if c.State > w {
			w = c.State
		}
	}
	return w
}

// Class returns the named class status, or ok=false.
func (s Snapshot) Class(name string) (ClassStatus, bool) {
	for _, c := range s.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return ClassStatus{}, false
}

// Evaluate advances every class to the current virtual instant, applies
// the burn-rate state machine, and returns the snapshot. Alert states
// only move when Evaluate runs — the prober evaluates after every round,
// so the signal tracks probe cadence.
func (p *Plane) Evaluate() Snapshot {
	now := p.now()
	s := Snapshot{GeneratedNs: now}
	p.mu.Lock()
	s.Rounds = p.rounds
	for _, name := range p.order {
		c := p.classes[name]
		c.advance(now, p.cfg.BucketNs)
		fg, fb := c.tally(p.cfg.FastWindowNs, p.cfg.BucketNs)
		sg, sb := c.tally(p.cfg.SlowWindowNs, p.cfg.BucketNs)
		bf := burn(fg, fb, c.obj.Availability)
		bs := burn(sg, sb, c.obj.Availability)
		next := nextState(c.state, bf, bs, p.cfg)
		if next != c.state {
			if next == Page {
				c.pages++
			} else if next == Warn && c.state == Ok {
				c.warns++
			}
			c.state = next
			c.sinceNs = now
		}
		lat := c.lat.Snapshot()
		s.Classes = append(s.Classes, ClassStatus{
			Class:        name,
			Availability: c.obj.Availability,
			LatencyNs:    c.obj.LatencyNs,
			State:        c.state,
			SinceNs:      c.sinceNs,
			FastBurn:     bf,
			SlowBurn:     bs,
			WindowGood:   sg,
			WindowBad:    sb,
			Good:         c.good,
			Bad:          c.bad,
			ProbeP50Ns:   lat.Percentile(50),
			ProbeP99Ns:   lat.Percentile(99),
			Pages:        c.pages,
			Warns:        c.warns,
		})
	}
	for _, name := range p.torder {
		t := p.targets[name]
		s.Targets = append(s.Targets, TargetStatus{Name: name, Good: t.good, Bad: t.bad})
	}
	p.mu.Unlock()
	return s
}

// noteRound counts one completed prober round.
func (p *Plane) noteRound() {
	p.mu.Lock()
	p.rounds++
	p.mu.Unlock()
}

// WriteProm renders the evaluated health plane as Prometheus text
// exposition: per-class burn-rate and alert-state gauges plus probe
// outcome counters.
func (p *Plane) WriteProm(w io.Writer) {
	s := p.Evaluate()
	fmt.Fprintf(w, "# TYPE cliquemap_slo_burn_rate gauge\n")
	for _, c := range s.Classes {
		fmt.Fprintf(w, "cliquemap_slo_burn_rate{class=%q,window=\"fast\"} %g\n", c.Class, c.FastBurn)
		fmt.Fprintf(w, "cliquemap_slo_burn_rate{class=%q,window=\"slow\"} %g\n", c.Class, c.SlowBurn)
	}
	fmt.Fprintf(w, "# TYPE cliquemap_slo_alert_state gauge\n")
	for _, c := range s.Classes {
		fmt.Fprintf(w, "cliquemap_slo_alert_state{class=%q} %d\n", c.Class, int(c.State))
	}
	fmt.Fprintf(w, "# TYPE cliquemap_probe_ops_total counter\n")
	for _, c := range s.Classes {
		fmt.Fprintf(w, "cliquemap_probe_ops_total{class=%q,outcome=\"good\"} %d\n", c.Class, c.Good)
		fmt.Fprintf(w, "cliquemap_probe_ops_total{class=%q,outcome=\"bad\"} %d\n", c.Class, c.Bad)
	}
	if len(s.Targets) > 0 {
		fmt.Fprintf(w, "# TYPE cliquemap_probe_target_ops_total counter\n")
		for _, t := range s.Targets {
			fmt.Fprintf(w, "cliquemap_probe_target_ops_total{target=%q,outcome=\"good\"} %d\n", t.Name, t.Good)
			fmt.Fprintf(w, "cliquemap_probe_target_ops_total{target=%q,outcome=\"bad\"} %d\n", t.Name, t.Bad)
		}
	}
	fmt.Fprintf(w, "# TYPE cliquemap_probe_rounds_total counter\n")
	fmt.Fprintf(w, "cliquemap_probe_rounds_total %d\n", s.Rounds)
}

package health

import (
	"strings"
	"testing"
)

// fakeClock is a settable virtual clock.
type fakeClock struct{ ns uint64 }

func (f *fakeClock) now() uint64 { return f.ns }

func testConfig() Config {
	return Config{
		FastWindowNs: 100,
		SlowWindowNs: 1000,
		BucketNs:     10,
		PageBurn:     14.4,
		WarnBurn:     3,
		ClearFactor:  0.5,
		Objectives: []Objective{
			{Class: "GET", Availability: 0.999, LatencyNs: 1000},
		},
	}
}

func classOf(t *testing.T, s Snapshot, name string) ClassStatus {
	t.Helper()
	c, ok := s.Class(name)
	if !ok {
		t.Fatalf("class %s missing from snapshot %+v", name, s)
	}
	return c
}

// TestBurnRateWindows checks the window algebra: with both windows seeing
// the same (partially filled) history the burn rates agree; once the fast
// window slides past an incident, the slow window still remembers it.
func TestBurnRateWindows(t *testing.T) {
	clk := &fakeClock{}
	p := NewPlane(testConfig(), clk.now)

	// 30% failures over 50ns: both windows see the identical samples, so
	// their burn rates must be equal — burn = 0.30 / 0.001 = 300.
	for i := 0; i < 100; i++ {
		clk.ns = uint64(i) / 2
		p.Record("GET", 10, i%10 < 3)
	}
	clk.ns = 50
	c := classOf(t, p.Evaluate(), "GET")
	if c.FastBurn != c.SlowBurn {
		t.Fatalf("partially filled windows disagree: fast %g, slow %g", c.FastBurn, c.SlowBurn)
	}
	if c.FastBurn < 250 || c.FastBurn > 350 {
		t.Fatalf("burn = %g, want ≈300", c.FastBurn)
	}

	// Heal: pure successes for one fast window. Fast burn drops to zero;
	// slow burn stays elevated because the slow window still covers the
	// incident.
	for i := 0; i < 100; i++ {
		clk.ns = 50 + uint64(i)*2
		p.Record("GET", 10, false)
	}
	clk.ns = 260 // the fast window [160,260] is entirely post-incident
	c = classOf(t, p.Evaluate(), "GET")
	if c.FastBurn != 0 {
		t.Fatalf("fast burn = %g after clean fast window, want 0", c.FastBurn)
	}
	if c.SlowBurn == 0 {
		t.Fatalf("slow burn forgot the incident inside its window")
	}

	// Slide past the slow window too: everything clears.
	clk.ns = 2000
	p.Record("GET", 10, false)
	c = classOf(t, p.Evaluate(), "GET")
	if c.FastBurn != 0 || c.SlowBurn != 0 {
		t.Fatalf("burns = %g/%g after full window slide, want 0/0", c.FastBurn, c.SlowBurn)
	}
}

// TestAlertStateMachine walks ok → warn → page → clear and checks the
// hysteresis: a page holds until burn falls below ClearFactor×PageBurn,
// and it must clear within one fast window of a heal (hence well inside
// one slow window).
func TestAlertStateMachine(t *testing.T) {
	clk := &fakeClock{}
	p := NewPlane(testConfig(), clk.now)

	// Healthy baseline.
	for i := 0; i < 50; i++ {
		clk.ns = uint64(i)
		p.Record("GET", 10, false)
	}
	clk.ns = 50
	if c := classOf(t, p.Evaluate(), "GET"); c.State != Ok {
		t.Fatalf("healthy state = %v, want ok", c.State)
	}

	// Brownout: 50% failures — burn 500 on both windows → page.
	for i := 0; i < 40; i++ {
		clk.ns = 50 + uint64(i)
		p.Record("GET", 10, i%2 == 0)
	}
	clk.ns = 90
	c := classOf(t, p.Evaluate(), "GET")
	if c.State != Page {
		t.Fatalf("brownout state = %v (burns %g/%g), want page", c.State, c.FastBurn, c.SlowBurn)
	}
	if c.Pages != 1 {
		t.Fatalf("pages = %d, want 1", c.Pages)
	}
	pagedAt := c.SinceNs

	// Immediately after heal the fast window still covers the incident:
	// the page must hold (hysteresis, no flapping).
	for i := 0; i < 20; i++ {
		clk.ns = 90 + uint64(i)
		p.Record("GET", 10, false)
	}
	clk.ns = 110
	c = classOf(t, p.Evaluate(), "GET")
	if c.State != Page {
		t.Fatalf("state = %v just after heal (fast window still dirty), want page held", c.State)
	}
	if c.SinceNs != pagedAt {
		t.Fatalf("page SinceNs moved from %d to %d without a transition", pagedAt, c.SinceNs)
	}

	// One fast window after the heal the fast burn is clean → page exits.
	for i := 0; i < 30; i++ {
		clk.ns = 110 + uint64(i)*4
		p.Record("GET", 10, false)
	}
	clk.ns = 230
	c = classOf(t, p.Evaluate(), "GET")
	if c.State == Page {
		t.Fatalf("page still held one fast window after heal (burns %g/%g)", c.FastBurn, c.SlowBurn)
	}
	if c.State != Ok {
		t.Fatalf("state = %v after clean fast window, want ok", c.State)
	}
}

// TestWarnBeforePage checks the intermediate severity: a burn above
// WarnBurn but below PageBurn warns without paging.
func TestWarnBeforePage(t *testing.T) {
	clk := &fakeClock{}
	p := NewPlane(testConfig(), clk.now)
	// 0.5% failures: burn = 0.005/0.001 = 5 — above warn (3), below page
	// (14.4).
	for i := 0; i < 1000; i++ {
		clk.ns = uint64(i) / 20
		p.Record("GET", 10, i%200 == 0)
	}
	clk.ns = 50
	c := classOf(t, p.Evaluate(), "GET")
	if c.State != Warn {
		t.Fatalf("state = %v (burns %g/%g), want warn", c.State, c.FastBurn, c.SlowBurn)
	}
	if c.Pages != 0 || c.Warns != 1 {
		t.Fatalf("pages/warns = %d/%d, want 0/1", c.Pages, c.Warns)
	}
}

// TestLatencySLO checks that slow successes burn budget: ops above the
// class latency threshold count as bad even with no errors at all.
func TestLatencySLO(t *testing.T) {
	clk := &fakeClock{}
	p := NewPlane(testConfig(), clk.now)
	for i := 0; i < 100; i++ {
		clk.ns = uint64(i)
		p.Record("GET", 5000, false) // 5µs > 1µs threshold
	}
	clk.ns = 100
	c := classOf(t, p.Evaluate(), "GET")
	if c.State != Page {
		t.Fatalf("all-slow state = %v, want page", c.State)
	}
	if c.Bad != 100 || c.Good != 0 {
		t.Fatalf("good/bad = %d/%d, want 0/100", c.Good, c.Bad)
	}
}

// TestEmptyWindowsStayOk checks the degenerate cases: no samples at all,
// and a clock jump far past the ring.
func TestEmptyWindowsStayOk(t *testing.T) {
	clk := &fakeClock{}
	p := NewPlane(testConfig(), clk.now)
	if c := classOf(t, p.Evaluate(), "GET"); c.State != Ok || c.FastBurn != 0 {
		t.Fatalf("empty plane: %+v", c)
	}
	p.Record("GET", 10, true)
	clk.ns = 1 << 40 // jump far past the ring span
	p.Record("GET", 10, false)
	c := classOf(t, p.Evaluate(), "GET")
	if c.SlowBurn != 0 {
		t.Fatalf("ancient failure leaked into the window: %+v", c)
	}
}

// TestWriteProm smoke-checks the exposition format.
func TestWriteProm(t *testing.T) {
	clk := &fakeClock{}
	p := NewPlane(testConfig(), clk.now)
	p.Record("GET", 10, false)
	p.recordTarget("2xR", false)
	var b strings.Builder
	p.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		`cliquemap_slo_burn_rate{class="GET",window="fast"}`,
		`cliquemap_slo_alert_state{class="GET"} 0`,
		`cliquemap_probe_ops_total{class="GET",outcome="good"} 1`,
		`cliquemap_probe_target_ops_total{target="2xR",outcome="good"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
}

package pony

import (
	"testing"

	"cliquemap/internal/core/layout"
	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/nic"
	"cliquemap/internal/rmem"
	"cliquemap/internal/stats"
	"cliquemap/internal/truetime"
)

// testRig wires a client NIC and a backend NIC with one bucket and one
// stored KV pair.
type testRig struct {
	f       *fabric.Fabric
	conn    *Conn
	idxWin  *rmem.Window
	dataWin *rmem.Window
	geo     layout.Geometry
	hash    hashring.KeyHash
	acct    *stats.CPUAccount
}

func newRig(t *testing.T, key, value []byte) *testRig {
	t.Helper()
	return newRigCfg(t, key, value, EngineConfig{})
}

func newRigCfg(t *testing.T, key, value []byte, ecfg EngineConfig) *testRig {
	t.Helper()
	f := fabric.New(2, fabric.Params{})
	acct := stats.NewCPUAccount()
	reg := rmem.NewRegistry()

	geo := layout.Geometry{Buckets: 8, Ways: 4}
	idx := rmem.NewRegion(geo.RegionBytes(), geo.RegionBytes())
	data := rmem.NewRegion(1<<16, 1<<16)
	idxWin := reg.Register(idx, 1)
	dataWin := reg.Register(data, 1)

	// Store the entry: DataEntry at offset 0, IndexEntry in its bucket.
	v := truetime.Version{Micros: 1, ClientID: 1, Seq: 1}
	entry := make([]byte, layout.DataEntrySize(len(key), len(value)))
	layout.EncodeDataEntry(entry, key, value, v)
	if err := data.Write(0, entry); err != nil {
		t.Fatal(err)
	}
	h := hashring.DefaultHash(key)
	b := int(h.Lo % uint64(geo.Buckets))
	ie := make([]byte, layout.IndexEntrySize)
	layout.EncodeIndexEntry(ie, layout.IndexEntry{
		Hash:    h,
		Version: v,
		Ptr:     layout.Pointer{Window: dataWin.ID, Offset: 0, Size: uint64(len(entry))},
	})
	if err := idx.Write(geo.BucketOffset(b)+layout.BucketHeaderSize, ie); err != nil {
		t.Fatal(err)
	}

	server := New(f.Host(1), reg, CostModel{}, ecfg, acct)
	client := New(f.Host(0), nil, CostModel{}, EngineConfig{}, acct)
	return &testRig{
		f: f, conn: Dial(f, client, server),
		idxWin: idxWin, dataWin: dataWin, geo: geo, hash: h, acct: acct,
	}
}

func (r *testRig) bucketOff() int {
	return r.geo.BucketOffset(int(r.hash.Lo % uint64(r.geo.Buckets)))
}

func TestReadReturnsRegisteredBytes(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("hello-pony"))
	got, tr, err := rig.conn.Read(0, rig.dataWin.ID, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("read %d bytes", len(got))
	}
	e, err := layout.DecodeDataEntry(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Value) != "hello-pony" {
		t.Errorf("value = %q", e.Value)
	}
	if tr.Ns == 0 || tr.Bytes == 0 {
		t.Error("trace not populated")
	}
}

func TestReadRevokedWindow(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	rig.conn.Target().Registry().Revoke(rig.dataWin.ID)
	_, _, err := rig.conn.Read(0, rig.dataWin.ID, 0, 64)
	if err == nil {
		t.Fatal("read of revoked window succeeded")
	}
}

func TestScarHit(t *testing.T) {
	rig := newRig(t, []byte("scar-key"), []byte("scar-value"))
	res, tr, err := rig.conn.ScanAndRead(0, rig.idxWin.ID, rig.bucketOff(), rig.geo.BucketSize(), rig.hash, rig.geo.Ways)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("SCAR did not find the entry")
	}
	e, err := layout.DecodeDataEntry(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Value) != "scar-value" {
		t.Errorf("value = %q", e.Value)
	}
	if len(res.Bucket) != rig.geo.BucketSize() {
		t.Errorf("bucket %d bytes", len(res.Bucket))
	}
	if tr.Bytes < uint64(rig.geo.BucketSize()) {
		t.Error("trace bytes must include bucket")
	}
}

func TestScarMissReturnsBucketOnly(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	other := hashring.DefaultHash([]byte("absent"))
	// Force same bucket but different hash so the scan runs and misses.
	other.Lo = rig.hash.Lo
	res, _, err := rig.conn.ScanAndRead(0, rig.idxWin.ID, rig.bucketOff(), rig.geo.BucketSize(), other, rig.geo.Ways)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Data != nil {
		t.Error("miss returned data")
	}
	if res.Bucket == nil {
		t.Error("miss must still return the bucket")
	}
}

// TestScarSingleRoundTrip verifies SCAR's latency advantage: a SCAR is
// materially faster than 2×R's two dependent round trips for small values.
func TestScarSingleRoundTrip(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("small"))
	var scar, twoR uint64
	const n = 50
	for i := 0; i < n; i++ {
		_, tr, err := rig.conn.ScanAndRead(0, rig.idxWin.ID, rig.bucketOff(), rig.geo.BucketSize(), rig.hash, rig.geo.Ways)
		if err != nil {
			t.Fatal(err)
		}
		scar += tr.Ns

		_, tr1, err := rig.conn.Read(0, rig.idxWin.ID, rig.bucketOff(), rig.geo.BucketSize())
		if err != nil {
			t.Fatal(err)
		}
		_, tr2, err := rig.conn.Read(0, rig.dataWin.ID, 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		twoR += tr1.Ns + tr2.Ns
	}
	if scar >= twoR {
		t.Errorf("SCAR (%d) not faster than 2xR (%d) for small values", scar/n, twoR/n)
	}
}

func TestCPUBilled(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	rig.conn.Read(0, rig.dataWin.ID, 0, 64)
	if rig.acct.TotalNanos("pony") == 0 {
		t.Error("no pony CPU billed")
	}
}

// TestScarCheaperCPUThan2xR is Figure 7's core claim: SCAR halves the
// per-GET pony CPU relative to 2×R because it removes a full second RMA op.
func TestScarCheaperCPUThan2xR(t *testing.T) {
	rigA := newRig(t, []byte("k"), []byte("v"))
	for i := 0; i < 100; i++ {
		rigA.conn.ScanAndRead(0, rigA.idxWin.ID, rigA.bucketOff(), rigA.geo.BucketSize(), rigA.hash, rigA.geo.Ways)
	}
	scarCPU := rigA.acct.TotalNanos("pony")

	rigB := newRig(t, []byte("k"), []byte("v"))
	for i := 0; i < 100; i++ {
		rigB.conn.Read(0, rigB.idxWin.ID, rigB.bucketOff(), rigB.geo.BucketSize())
		rigB.conn.Read(0, rigB.dataWin.ID, 0, 64)
	}
	twoRCPU := rigB.acct.TotalNanos("pony")
	if scarCPU >= twoRCPU {
		t.Errorf("SCAR CPU %d ≥ 2xR CPU %d", scarCPU, twoRCPU)
	}
}

func TestDownNICUnreachable(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	rig.conn.Target().SetDown(true)
	if _, _, err := rig.conn.Read(0, rig.dataWin.ID, 0, 64); err != nic.ErrUnreachable {
		t.Errorf("down NIC: got %v", err)
	}
	if _, _, err := rig.conn.ScanAndRead(0, rig.idxWin.ID, 0, rig.geo.BucketSize(), rig.hash, rig.geo.Ways); err != nic.ErrUnreachable {
		t.Errorf("down NIC SCAR: got %v", err)
	}
	rig.conn.Target().SetDown(false)
	if _, _, err := rig.conn.Read(0, rig.dataWin.ID, 0, 64); err != nil {
		t.Errorf("after recovery: %v", err)
	}
}

func TestClientOnlyNICCannotServe(t *testing.T) {
	f := fabric.New(2, fabric.Params{})
	a := New(f.Host(0), nil, CostModel{}, EngineConfig{}, nil)
	b := New(f.Host(1), nil, CostModel{}, EngineConfig{}, nil)
	conn := Dial(f, a, b)
	if _, _, err := conn.Read(0, 1, 0, 16); err != nic.ErrUnreachable {
		t.Errorf("client-only target: got %v", err)
	}
}

func TestEngineScaleOutUnderLoad(t *testing.T) {
	// The rate estimator measures real inter-arrival gaps, so how hard a
	// tight loop drives utilization depends on host speed and
	// instrumentation (the race detector slows ops ~10x). Use a threshold
	// low enough that any machine hammering back-to-back crosses it; the
	// default 0.70 calibration is exercised by the Figure 15 ramp.
	ecfg := EngineConfig{MaxEngines: 4, ScaleOutAt: 0.002, ScaleInAt: 0.0005}
	rig := newRigCfg(t, []byte("k"), []byte("v"), ecfg)
	server := rig.conn.Target()
	if server.Engines() != 1 {
		t.Fatalf("initial engines = %d", server.Engines())
	}
	// Hammer the server; the EWMA rate estimator should push utilization
	// over the scale-out threshold.
	for i := 0; i < 20000; i++ {
		rig.conn.Read(0, rig.dataWin.ID, 0, 64)
	}
	if server.Engines() < 2 {
		t.Errorf("engines = %d after sustained load; scale-out broken", server.Engines())
	}
	if server.OpsServed() == 0 {
		t.Error("ops not counted")
	}
}

func TestSupportsScar(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	if !rig.conn.SupportsScar() {
		t.Error("pony must support SCAR")
	}
}

func BenchmarkPonyRead(b *testing.B) {
	f := fabric.New(2, fabric.Params{})
	reg := rmem.NewRegistry()
	region := rmem.NewRegion(1<<16, 1<<16)
	w := reg.Register(region, 1)
	server := New(f.Host(1), reg, CostModel{}, EngineConfig{}, nil)
	client := New(f.Host(0), nil, CostModel{}, EngineConfig{}, nil)
	conn := Dial(f, client, server)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := conn.Read(0, w.ID, 0, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	rig.conn.Target().SetMsgHandler(func(req []byte) ([]byte, error) {
		return append([]byte("pong:"), req...), nil
	})
	resp, tr, err := rig.conn.Message(0, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pong:ping" {
		t.Errorf("resp = %q", resp)
	}
	if tr.Ns == 0 || tr.Bytes == 0 {
		t.Error("trace empty")
	}
}

func TestMessageNoHandler(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	if _, _, err := rig.conn.Message(0, []byte("x")); err != nic.ErrUnreachable {
		t.Errorf("no handler: %v", err)
	}
}

func TestMessageHandlerError(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	boom := errSentinel("boom")
	rig.conn.Target().SetMsgHandler(func([]byte) ([]byte, error) { return nil, boom })
	if _, _, err := rig.conn.Message(0, nil); err != boom {
		t.Errorf("handler error: %v", err)
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// TestMessageCostlierThanRead: a two-sided message pays the thread wakeup
// a one-sided read avoids (the Figure 7 MSG premium).
func TestMessageCostlierThanRead(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	rig.conn.Target().SetMsgHandler(func(req []byte) ([]byte, error) { return req, nil })

	acct := rig.acct
	base := acct.TotalNanos("pony")
	for i := 0; i < 50; i++ {
		rig.conn.Read(0, rig.dataWin.ID, 0, 64)
	}
	readCPU := acct.TotalNanos("pony") - base

	base = acct.TotalNanos("pony")
	for i := 0; i < 50; i++ {
		rig.conn.Message(0, make([]byte, 64))
	}
	msgCPU := acct.TotalNanos("pony") - base
	if msgCPU <= readCPU {
		t.Errorf("MSG CPU %d not above one-sided read CPU %d", msgCPU, readCPU)
	}
}

func TestMessageDownNIC(t *testing.T) {
	rig := newRig(t, []byte("k"), []byte("v"))
	rig.conn.Target().SetMsgHandler(func(req []byte) ([]byte, error) { return req, nil })
	rig.conn.Target().SetDown(true)
	if _, _, err := rig.conn.Message(0, nil); err != nic.ErrUnreachable {
		t.Errorf("down NIC message: %v", err)
	}
}

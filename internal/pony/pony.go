// Package pony models Pony Express, Google's software-defined NIC (Snap),
// as CliqueMap uses it: single-threaded engines own registered memory and
// serve one-sided ops without waking server application threads, and the
// engine pool scales out with load (§7.2.4, Figure 15).
//
// Two properties drive the paper's results and are reproduced:
//
//   - SCAR (Scan-and-Read, §6.3): a custom RMA-like op that scans a Bucket
//     server-side inside the NIC and returns Bucket + DataEntry in one
//     round trip, halving both RTTs and per-op fixed CPU relative to 2×R.
//
//   - Engine scale-out: engines are single-threaded and either time-share
//     a core or fan out to more cores as load rises. Scale-out reduces
//     tail latency because receive parallelism grows (Figure 15's bands).
//
// CPU costs are billed to a stats.CPUAccount under the "pony" component,
// with constants calibrated to Figure 7 (CPU-ns/op around 10²–10³).
package pony

import (
	"sync"
	"time"

	"cliquemap/internal/core/layout"
	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/nic"
	"cliquemap/internal/rmem"
	"cliquemap/internal/stats"
	"cliquemap/internal/trace"
)

// CostModel carries the calibrated per-op CPU costs in nanoseconds.
// Defaults approximate Figure 7: an individual SCAR costs about as much as
// a normal RMA read, and two-sided messaging pays thread wakeups that
// dwarf both.
type CostModel struct {
	EngineServiceNs uint64 // fixed engine cost to issue or serve one RMA op
	ScanPerEntryNs  uint64 // SCAR's per-IndexEntry scan cost
	PerKBNs         uint64 // payload handling cost per KB moved
	MsgWakeupNs     uint64 // server thread wakeup for two-sided messaging
}

// DefaultCostModel returns the Figure 7 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		EngineServiceNs: 440,
		ScanPerEntryNs:  18,
		PerKBNs:         42,
		MsgWakeupNs:     1500,
	}
}

// EngineConfig controls the scale-out model.
type EngineConfig struct {
	MaxEngines int     // paper: four engines per task
	ScaleOutAt float64 // per-engine utilization that triggers scale-out
	ScaleInAt  float64 // utilization that releases an engine
}

// DefaultEngineConfig matches the §7.2.4 setup (four engines).
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{MaxEngines: 4, ScaleOutAt: 0.70, ScaleInAt: 0.25}
}

// NIC is one host's Pony Express instance. A backend host passes its
// window registry so inbound one-sided ops can be served; a client-only
// host passes nil.
type NIC struct {
	host *fabric.Host
	reg  *rmem.Registry
	cost CostModel
	ecfg EngineConfig
	acct *stats.CPUAccount

	mu         sync.Mutex
	engines    int
	rateEWMA   float64 // ops/sec estimate (windowed, smoothed)
	winStart   time.Time
	winOps     int
	down       bool
	opCounter  uint64
	extraNs    uint64 // injected per-visit engine delay (fault injection)
	msgHandler MsgHandler

	// Saturation telemetry, maintained under mu by service(): cumulative
	// modelled engine-queue wait and the last computed utilization. They
	// cost two stores under an already-held lock.
	queueNs uint64  // cumulative modelled queue-wait ns across ops
	lastRho float64 // utilization at the most recent engine visit
}

// New builds a NIC on host. reg may be nil for client-only hosts; acct may
// be nil to skip CPU accounting.
func New(host *fabric.Host, reg *rmem.Registry, cost CostModel, ecfg EngineConfig, acct *stats.CPUAccount) *NIC {
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	if ecfg == (EngineConfig{}) {
		ecfg = DefaultEngineConfig()
	}
	return &NIC{host: host, reg: reg, cost: cost, ecfg: ecfg, acct: acct, engines: 1}
}

// Host returns the fabric host this NIC is attached to.
func (n *NIC) Host() *fabric.Host { return n.host }

// Registry returns the window registry (nil on client-only hosts).
func (n *NIC) Registry() *rmem.Registry { return n.reg }

// SetDown simulates a host/NIC failure; subsequent inbound ops fail with
// nic.ErrUnreachable until SetDown(false).
func (n *NIC) SetDown(down bool) {
	n.mu.Lock()
	n.down = down
	n.mu.Unlock()
}

// SetServiceDelay injects ns of extra engine latency into every service
// visit on this NIC — a degraded engine (overloaded core, antagonist VM)
// for fault-injection tests. 0 restores normal service.
//
// This is the leaf actuator behind the internal/chaos plane's Brownout
// hazard; prefer driving it through the plane so injections share one
// master seed and are tallied in the hazard counters.
func (n *NIC) SetServiceDelay(ns uint64) {
	n.mu.Lock()
	n.extraNs = ns
	n.mu.Unlock()
}

// Engines returns the current engine count (the Figure 15 heatmap metric).
func (n *NIC) Engines() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.engines
}

// OpsServed returns the cumulative op count.
func (n *NIC) OpsServed() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.opCounter
}

// service accounts one engine visit: updates the load estimate, adapts the
// engine count, and returns the modelled service + queue latency.
func (n *NIC) service(opCost uint64) (uint64, error) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, nic.ErrUnreachable
	}
	n.opCounter++
	// Windowed op-rate estimate: ops per wall second over ≥5ms windows,
	// EWMA-smoothed. Averaging inverse inter-arrival gaps instead would
	// diverge under concurrent callers — clustered arrivals make E[1/gap]
	// unbounded, so the estimate pegs at burst rate no matter how low the
	// offered load is, and rho saturates spuriously.
	if n.winStart.IsZero() {
		n.winStart = now
	}
	n.winOps++
	if el := now.Sub(n.winStart).Seconds(); el >= 0.005 {
		inst := float64(n.winOps) / el
		n.rateEWMA = 0.7*n.rateEWMA + 0.3*inst
		n.winStart, n.winOps = now, 0
	}
	// Per-engine utilization: offered CPU-seconds per wall second.
	rho := n.rateEWMA * float64(opCost) / 1e9 / float64(n.engines)
	switch {
	case rho > n.ecfg.ScaleOutAt && n.engines < n.ecfg.MaxEngines:
		n.engines++
	case rho < n.ecfg.ScaleInAt && n.engines > 1:
		n.engines--
	}
	rho = n.rateEWMA * float64(opCost) / 1e9 / float64(n.engines)
	q := fabric.QueueModel(float64(opCost), fabric.Clamp01(rho))
	n.queueNs += q
	n.lastRho = rho
	return opCost + q + n.extraNs, nil
}

// Saturation is a point-in-time snapshot of the NIC's engine-queue
// pressure: how many engines are spun up, the utilization the adaptive
// scaler last saw, and the cumulative modelled queue wait ops have eaten.
type Saturation struct {
	Engines  uint64 // current engine count (gauge)
	RhoMilli uint64 // utilization at the last engine visit ×1000 (gauge)
	QueueNs  uint64 // cumulative modelled engine-queue ns across ops
	Ops      uint64 // cumulative ops served
}

// Saturation snapshots the NIC's queue-pressure telemetry.
func (n *NIC) Saturation() Saturation {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Saturation{
		Engines:  uint64(n.engines),
		RhoMilli: uint64(fabric.Clamp01(n.lastRho) * 1000),
		QueueNs:  n.queueNs,
		Ops:      n.opCounter,
	}
}

func (n *NIC) charge(ns uint64) {
	if n.acct != nil {
		n.acct.Charge("pony", ns)
	}
}

func (n *NIC) chargeOnly(ns uint64) {
	if n.acct != nil {
		n.acct.ChargeOnly("pony", ns)
	}
}

func (n *NIC) payloadCost(bytes int) uint64 {
	return uint64(bytes) * n.cost.PerKBNs / 1024
}

// Conn is a client-side handle from an initiating NIC to a serving NIC —
// the unit the CliqueMap client holds per backend. It implements nic.RMA.
type Conn struct {
	from *NIC
	to   *NIC
	f    *fabric.Fabric
}

// Dial connects an initiator NIC to a target NIC over fabric f.
func Dial(f *fabric.Fabric, from, to *NIC) *Conn {
	return &Conn{from: from, to: to, f: f}
}

// Target returns the serving-side NIC.
func (c *Conn) Target() *NIC { return c.to }

// linkUp / linkBack report whether the request / response direction of
// this conn is passing traffic — a single atomic load unless chaos has
// installed partition or loss rules on the fabric.
func (c *Conn) linkUp() bool   { return c.f.Linked(c.from.host.ID(), c.to.host.ID()) }
func (c *Conn) linkBack() bool { return c.f.Linked(c.to.host.ID(), c.from.host.ID()) }

// SupportsScar reports true: SCAR is Pony Express's differentiator.
func (c *Conn) SupportsScar() bool { return true }

// deliverAt routes a delivery through the host's downlink model at the
// op-relative virtual instant (at + latency so far), or "now" when the
// caller did not pin an op start.
func deliverAt(h *fabric.Host, at uint64, tr *fabric.OpTrace, sz int) uint64 {
	var t uint64
	if at != 0 {
		t = at + tr.Ns
	}
	return h.DeliverAt(t, sz)
}

// Read performs a one-sided read: client engine issues, request crosses
// the fabric, server engine reads registered memory, response returns.
// No server application thread is involved — only NIC engine CPU is
// billed. at is the op's virtual start instant (0 = now).
func (c *Conn) Read(at uint64, win rmem.WindowID, off, length int) ([]byte, fabric.OpTrace, error) {
	var tr fabric.OpTrace
	tr.Spans = make([]fabric.Span, 0, 4)

	issue, err := c.from.service(c.from.cost.EngineServiceNs)
	if err != nil {
		return nil, tr, err
	}
	c.from.charge(c.from.cost.EngineServiceNs)
	tr.AddSpan(trace.SpanEngineIssue, 0, issue)

	const reqBytes = 64 // op descriptor
	tr.Add(deliverAt(c.to.host, at, &tr, reqBytes))
	tr.AddBytes(reqBytes)

	if c.to.reg == nil || !c.linkUp() {
		return nil, tr, nic.ErrUnreachable
	}
	serveCost := c.to.cost.EngineServiceNs + c.to.payloadCost(length)
	serve, err := c.to.service(serveCost)
	if err != nil {
		return nil, tr, err
	}
	c.to.charge(serveCost)
	tr.AddSpan(trace.SpanEngineService, uint32(length), serve)

	data, rerr := c.to.reg.Read(win, off, length)
	if rerr != nil {
		// The error response still crosses the fabric back.
		tr.Add(deliverAt(c.from.host, at, &tr, 64))
		return nil, tr, rerr
	}
	if !c.linkBack() {
		return nil, tr, nic.ErrUnreachable
	}

	tr.Add(deliverAt(c.from.host, at, &tr, length))
	tr.AddBytes(length)
	recvCost := c.from.cost.EngineServiceNs/2 + c.from.payloadCost(length)
	c.from.chargeOnly(recvCost)
	tr.AddSpan(trace.SpanEngineRecv, 0, recvCost)
	return data, tr, nil
}

// ScanAndRead executes SCAR (§6.3): one request, a server-NIC-side bucket
// scan, and one response carrying bucket + matched DataEntry. Exactly one
// fabric round trip.
func (c *Conn) ScanAndRead(at uint64, idxWin rmem.WindowID, bucketOff, bucketLen int, hash hashring.KeyHash, ways int) (nic.ScarResult, fabric.OpTrace, error) {
	var tr fabric.OpTrace
	tr.Spans = make([]fabric.Span, 0, 4)
	var res nic.ScarResult

	issue, err := c.from.service(c.from.cost.EngineServiceNs)
	if err != nil {
		return res, tr, err
	}
	c.from.charge(c.from.cost.EngineServiceNs)
	tr.AddSpan(trace.SpanEngineIssue, 0, issue)

	const reqBytes = 96 // descriptor + hash + geometry
	tr.Add(deliverAt(c.to.host, at, &tr, reqBytes))
	tr.AddBytes(reqBytes)

	if c.to.reg == nil || !c.linkUp() {
		return res, tr, nic.ErrUnreachable
	}
	// Server engine: read bucket, scan it, optionally follow the pointer.
	scanCost := c.to.cost.EngineServiceNs + uint64(ways)*c.to.cost.ScanPerEntryNs
	bucket, rerr := c.to.reg.Read(idxWin, bucketOff, bucketLen)
	if rerr != nil {
		serve, serr := c.to.service(scanCost)
		if serr != nil {
			return res, tr, serr
		}
		c.to.charge(scanCost)
		tr.Add(serve)
		tr.Add(deliverAt(c.from.host, at, &tr, 64))
		return res, tr, rerr
	}
	res.Bucket = bucket

	decoded, derr := layout.DecodeBucket(bucket, ways)
	respBytes := bucketLen
	if derr == nil {
		if e, _, ok := decoded.Find(hash); ok && !e.Ptr.Nil() {
			data, dataErr := c.to.reg.Read(e.Ptr.Window, int(e.Ptr.Offset), int(e.Ptr.Size))
			if dataErr == nil {
				res.Data = data
				res.Found = true
				respBytes += len(data)
				scanCost += c.to.payloadCost(len(data))
			}
			// A failed pointer chase (window revoked mid-op) returns just
			// the bucket; the client validates and retries via RPC.
		}
	}
	serve, serr := c.to.service(scanCost)
	if serr != nil {
		return nic.ScarResult{}, tr, serr
	}
	c.to.charge(scanCost)
	tr.AddSpan(trace.SpanEngineService, uint32(respBytes), serve)

	if !c.linkBack() {
		return nic.ScarResult{}, tr, nic.ErrUnreachable
	}
	tr.Add(deliverAt(c.from.host, at, &tr, respBytes))
	tr.AddBytes(respBytes)
	recvCost := c.from.cost.EngineServiceNs/2 + c.from.payloadCost(respBytes)
	c.from.chargeOnly(recvCost)
	tr.AddSpan(trace.SpanEngineRecv, 0, recvCost)
	return res, tr, nil
}

// MsgHandler serves two-sided messages delivered up to the application —
// the MSG lookup strategy of Figure 7. Unlike Read/ScanAndRead, handling a
// message requires waking a server application thread, which is exactly
// the CPU cost SCAR avoids.
type MsgHandler func(req []byte) ([]byte, error)

// SetMsgHandler installs the application's message handler on this NIC.
func (n *NIC) SetMsgHandler(h MsgHandler) {
	n.mu.Lock()
	n.msgHandler = h
	n.mu.Unlock()
}

func (n *NIC) msgHandlerLocked() MsgHandler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgHandler
}

// Message performs a two-sided exchange: the request crosses the fabric,
// the server NIC wakes an application thread to run the handler, and the
// response returns. One round trip, but with the thread-wakeup CPU the
// one-sided ops avoid.
func (c *Conn) Message(at uint64, req []byte) ([]byte, fabric.OpTrace, error) {
	var tr fabric.OpTrace
	tr.Spans = make([]fabric.Span, 0, 4)

	issue, err := c.from.service(c.from.cost.EngineServiceNs)
	if err != nil {
		return nil, tr, err
	}
	c.from.charge(c.from.cost.EngineServiceNs)
	tr.AddSpan(trace.SpanEngineIssue, 0, issue)

	tr.Add(deliverAt(c.to.host, at, &tr, len(req)+64))
	tr.AddBytes(len(req) + 64)

	h := c.to.msgHandlerLocked()
	if h == nil || !c.linkUp() {
		return nil, tr, nic.ErrUnreachable
	}
	// Server: engine receive + application thread wakeup + handler run.
	serveCost := c.to.cost.EngineServiceNs + c.to.cost.MsgWakeupNs + c.to.payloadCost(len(req))
	serve, err := c.to.service(serveCost)
	if err != nil {
		return nil, tr, err
	}
	c.to.charge(serveCost)
	tr.AddSpan(trace.SpanMsgWakeup, uint32(len(req)), serve)

	resp, herr := h(req)
	if herr != nil {
		tr.Add(deliverAt(c.from.host, at, &tr, 64))
		return nil, tr, herr
	}
	if !c.linkBack() {
		return nil, tr, nic.ErrUnreachable
	}

	tr.Add(deliverAt(c.from.host, at, &tr, len(resp)+64))
	tr.AddBytes(len(resp) + 64)
	recvCost := c.from.cost.EngineServiceNs/2 + c.from.payloadCost(len(resp))
	c.from.chargeOnly(recvCost)
	tr.AddSpan(trace.SpanEngineRecv, 0, recvCost)
	return resp, tr, nil
}

// Package truetime substitutes for Google's TrueTime in VersionNumber
// generation (§5.2 of the paper).
//
// CliqueMap mutations carry a client-nominated VersionNumber — a tuple
// {TrueTime, ClientID, SequenceNumber} — that is globally unique and
// monotonic per client. Backends apply a mutation only if its proposed
// VersionNumber exceeds the stored one, so all replicas independently agree
// on the final mutation order without coordinating. Using a coarse global
// clock in the uppermost bits means a retrying client eventually nominates
// the highest VersionNumber, which is what guarantees per-client forward
// progress.
//
// The substitute here is a monotonic wall-clock with bounded uncertainty.
// The paper only needs (a) global uniqueness, (b) per-client monotonicity,
// and (c) rough global ordering so retries win; all three hold.
package truetime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Interval is a TrueTime-style time interval [Earliest, Latest] bracketing
// real time.
type Interval struct {
	Earliest int64 // microseconds since epoch
	Latest   int64
}

// Clock yields intervals. Implementations must be monotonic in Latest.
type Clock interface {
	Now() Interval
}

// SystemClock derives intervals from the machine clock with a fixed
// uncertainty bound, and enforces monotonicity even if the wall clock steps
// backwards.
type SystemClock struct {
	// UncertaintyMicros is the half-width of the interval (TrueTime's
	// epsilon). Production TrueTime keeps this under ~7ms; we default to
	// 1ms.
	UncertaintyMicros int64

	last atomic.Int64
}

// NewSystemClock returns a SystemClock with a 1ms uncertainty bound.
func NewSystemClock() *SystemClock { return &SystemClock{UncertaintyMicros: 1000} }

// Now returns the current interval. Latest never decreases.
func (c *SystemClock) Now() Interval {
	now := time.Now().UnixMicro()
	for {
		prev := c.last.Load()
		if now <= prev {
			now = prev + 1 // monotonicity under clock steps
		}
		if c.last.CompareAndSwap(prev, now) {
			break
		}
	}
	eps := c.UncertaintyMicros
	if eps <= 0 {
		eps = 1000
	}
	return Interval{Earliest: now - eps, Latest: now}
}

// FakeClock is a manually advanced clock for deterministic tests.
type FakeClock struct {
	micros atomic.Int64
}

// Now returns the interval at the current fake time (zero uncertainty).
func (c *FakeClock) Now() Interval {
	m := c.micros.Load()
	return Interval{Earliest: m, Latest: m}
}

// Advance moves the fake clock forward.
func (c *FakeClock) Advance(d time.Duration) { c.micros.Add(d.Microseconds()) }

// Set positions the fake clock.
func (c *FakeClock) Set(micros int64) { c.micros.Store(micros) }

// Version is the CliqueMap VersionNumber: globally unique, monotonic within
// a key, and monotonic in the sequence emitted by a single client. The
// zero Version is "no version" and compares below every real version.
type Version struct {
	Micros   int64  // TrueTime latest bound at nomination (uppermost bits)
	ClientID uint64 // tie-break between clients in the same microsecond
	Seq      uint64 // per-client sequence, tie-break for one client
}

// Zero reports whether v is the absent version.
func (v Version) Zero() bool { return v == Version{} }

// Less orders versions: time, then client, then sequence.
func (v Version) Less(o Version) bool {
	if v.Micros != o.Micros {
		return v.Micros < o.Micros
	}
	if v.ClientID != o.ClientID {
		return v.ClientID < o.ClientID
	}
	return v.Seq < o.Seq
}

// String renders a compact debugging form.
func (v Version) String() string {
	return fmt.Sprintf("v{%d.%d.%d}", v.Micros, v.ClientID, v.Seq)
}

// Generator nominates VersionNumbers for one client.
type Generator struct {
	clock    Clock
	clientID uint64
	seq      atomic.Uint64
	lastUs   atomic.Int64
}

// NewGenerator returns a version generator bound to clock and client ID.
func NewGenerator(clock Clock, clientID uint64) *Generator {
	return &Generator{clock: clock, clientID: clientID}
}

// Next nominates a fresh VersionNumber. Successive calls from one client
// are strictly increasing even if the clock stalls, because Seq always
// advances and Micros never decreases.
func (g *Generator) Next() Version {
	us := g.clock.Now().Latest
	for {
		prev := g.lastUs.Load()
		if us < prev {
			us = prev
		}
		if g.lastUs.CompareAndSwap(prev, us) {
			break
		}
	}
	return Version{Micros: us, ClientID: g.clientID, Seq: g.seq.Add(1)}
}

// ClientID returns the generator's client identity.
func (g *Generator) ClientID() uint64 { return g.clientID }

package truetime

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSystemClockMonotonic(t *testing.T) {
	c := NewSystemClock()
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		cur := c.Now()
		if cur.Latest <= prev.Latest {
			t.Fatalf("clock went backwards: %d after %d", cur.Latest, prev.Latest)
		}
		if cur.Earliest > cur.Latest {
			t.Fatalf("interval inverted: [%d,%d]", cur.Earliest, cur.Latest)
		}
		prev = cur
	}
}

func TestSystemClockConcurrentMonotonic(t *testing.T) {
	c := NewSystemClock()
	const g, n = 8, 2000
	results := make([][]int64, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([]int64, n)
			for j := 0; j < n; j++ {
				out[j] = c.Now().Latest
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, r := range results {
		for j := 1; j < len(r); j++ {
			if r[j] <= r[j-1] {
				t.Fatal("per-goroutine sequence not strictly increasing")
			}
		}
		for _, v := range r {
			if seen[v] {
				t.Fatal("duplicate timestamp across goroutines")
			}
			seen[v] = true
		}
	}
}

func TestFakeClock(t *testing.T) {
	var c FakeClock
	c.Set(100)
	if got := c.Now().Latest; got != 100 {
		t.Errorf("Now = %d, want 100", got)
	}
	c.Advance(3 * time.Millisecond)
	if got := c.Now().Latest; got != 3100 {
		t.Errorf("after Advance, Now = %d, want 3100", got)
	}
}

func TestVersionOrdering(t *testing.T) {
	vs := []Version{
		{},
		{Micros: 1, ClientID: 0, Seq: 0},
		{Micros: 1, ClientID: 0, Seq: 5},
		{Micros: 1, ClientID: 2, Seq: 0},
		{Micros: 2, ClientID: 0, Seq: 0},
	}
	for i := range vs {
		for j := range vs {
			want := i < j
			if got := vs[i].Less(vs[j]); got != want {
				t.Errorf("vs[%d].Less(vs[%d]) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestVersionZeroIsLowest(t *testing.T) {
	f := func(m int64, c, s uint64) bool {
		v := Version{Micros: m, ClientID: c, Seq: s}
		if v.Zero() {
			return true
		}
		// Zero must be less than any non-zero version with non-negative time.
		if m < 0 {
			return true
		}
		return (Version{}).Less(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVersionLessIsStrictTotalOrder(t *testing.T) {
	f := func(a, b Version) bool {
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a) // exactly one direction
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorMonotonicPerClient(t *testing.T) {
	var fc FakeClock
	g := NewGenerator(&fc, 7)
	prev := g.Next()
	for i := 0; i < 1000; i++ {
		// Clock deliberately never advances: Seq must carry monotonicity.
		cur := g.Next()
		if !prev.Less(cur) {
			t.Fatalf("generator not monotonic: %v then %v", prev, cur)
		}
		if cur.ClientID != 7 {
			t.Fatalf("ClientID = %d", cur.ClientID)
		}
		prev = cur
	}
}

func TestGeneratorClockRegression(t *testing.T) {
	var fc FakeClock
	fc.Set(1000)
	g := NewGenerator(&fc, 1)
	v1 := g.Next()
	fc.Set(500) // wall clock steps backwards
	v2 := g.Next()
	if !v1.Less(v2) {
		t.Errorf("version regressed with clock: %v then %v", v1, v2)
	}
	if v2.Micros < v1.Micros {
		t.Errorf("Micros regressed: %d -> %d", v1.Micros, v2.Micros)
	}
}

func TestGeneratorsGloballyUnique(t *testing.T) {
	clock := NewSystemClock()
	const clients, per = 16, 500
	var mu sync.Mutex
	all := make([]Version, 0, clients*per)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := NewGenerator(clock, uint64(c))
			local := make([]Version, per)
			for i := range local {
				local[i] = g.Next()
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate version %v", all[i])
		}
	}
}

// TestRetryNominatesHigher models the paper's forward-progress argument: a
// client that retries a mutation after real time passes nominates a version
// that exceeds any version nominated earlier by any client.
func TestRetryNominatesHigher(t *testing.T) {
	var fc FakeClock
	fc.Set(1000)
	a := NewGenerator(&fc, 1)
	b := NewGenerator(&fc, 2)
	first := b.Next()
	fc.Advance(time.Millisecond)
	retry := a.Next()
	if !first.Less(retry) {
		t.Errorf("retry after time advance must dominate: %v vs %v", first, retry)
	}
}

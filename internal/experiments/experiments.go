// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) against the simulated substrate. Each FigNN function is
// self-contained: it builds the cell(s) the paper describes, drives the
// workload, and returns a Result whose rows mirror the figure's series.
//
// cmd/cmbench prints these; the repository-root benchmarks exercise each
// figure's core operation under `go test -bench`. Absolute values are
// calibrated-model outputs (see DESIGN.md); the comparisons and crossovers
// are the reproduction targets.
package experiments

import (
	"fmt"
	"strings"
)

// Col is one measured value. The json tags are the cmbench -json wire
// shape, committed as BENCH_PRn.json perf-trajectory seeds — keep them
// stable and additive.
type Col struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Noisy tags a wall-clock-denominated measurement (rates, cpu-s per
	// wall-s) that swings with machine load across otherwise-identical
	// runs; benchdiff reports noisy columns informationally instead of
	// gating on them.
	Noisy bool `json:"noisy,omitempty"`
	// Text, when non-empty, makes this a categorical column (e.g. the
	// loadwall limiting resource); Value is ignored by the formatter and
	// benchdiff never gates on it.
	Text string `json:"text,omitempty"`
}

// Row is one labelled series point (a bar, an interval, a sweep setting).
type Row struct {
	Label string `json:"label"`
	Cols  []Col  `json:"cols"`
}

// Result is one regenerated figure.
type Result struct {
	Name  string `json:"name"` // e.g. "fig11"
	Title string `json:"title"`
	Notes string `json:"notes,omitempty"`
	Rows  []Row  `json:"rows"`
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.Name, r.Title)
	if len(r.Rows) == 0 {
		b.WriteString("(no rows)\n")
		return b.String()
	}
	// Header from the first row's column names.
	labelW := 5
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "")
	for _, c := range r.Rows[0].Cols {
		fmt.Fprintf(&b, "%18s", c.Name)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, row.Label)
		for _, c := range row.Cols {
			fmt.Fprintf(&b, "%18s", formatCol(c))
		}
		b.WriteString("\n")
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Notes)
	}
	return b.String()
}

func formatCol(c Col) string {
	switch {
	case c.Text != "":
		return c.Text
	case c.Unit == "":
		return fmt.Sprintf("%.3g", c.Value)
	case c.Value >= 1e6 && (c.Unit == "ops/s" || c.Unit == "B/s" || c.Unit == "B" || c.Unit == "qps"):
		return fmt.Sprintf("%.2fM%s", c.Value/1e6, strings.TrimPrefix(c.Unit, ""))
	case c.Value >= 1e3 && (c.Unit == "ops/s" || c.Unit == "B/s" || c.Unit == "B" || c.Unit == "qps"):
		return fmt.Sprintf("%.1fK%s", c.Value/1e3, c.Unit)
	default:
		return fmt.Sprintf("%.3g%s", c.Value, c.Unit)
	}
}

// All returns every experiment in figure order.
func All() []func() Result {
	return []func() Result{
		Fig3Reshaping,
		Fig6Languages,
		Fig7LookupCPU,
		Fig8Ads,
		Fig9Geo,
		Fig10SizeCDF,
		Fig11Preferred,
		Fig12Incast,
		Fig13Planned,
		Fig14Unplanned,
		FigWarmRestart,
		Fig15PonyRamp,
		Fig16OneRMAHW,
		Fig17OneRMAGet,
		Fig18Mix,
		Fig19MixCPU,
		Fig20ValueSize,
		FigResize,
		FigTier,
		FigLoadWall,
		FigHotKey,
	}
}

// ByName resolves an experiment by figure id ("3", "fig3", ...) or by
// the name of a non-figure experiment ("resize").
func ByName(name string) (func() Result, bool) {
	name = strings.TrimPrefix(strings.ToLower(name), "fig")
	m := map[string]func() Result{
		"3": Fig3Reshaping, "6": Fig6Languages, "7": Fig7LookupCPU,
		"8": Fig8Ads, "9": Fig9Geo, "10": Fig10SizeCDF,
		"11": Fig11Preferred, "12": Fig12Incast, "13": Fig13Planned,
		"14": Fig14Unplanned, "15": Fig15PonyRamp, "16": Fig16OneRMAHW,
		"17": Fig17OneRMAGet, "18": Fig18Mix, "19": Fig19MixCPU,
		"20": Fig20ValueSize, "resize": FigResize, "tier": FigTier,
		"14warm": FigWarmRestart, "warmrestart": FigWarmRestart,
		"loadwall": FigLoadWall, "hotkey": FigHotKey,
	}
	f, ok := m[name]
	return f, ok
}

package experiments

import (
	"fmt"
	"time"

	"cliquemap/internal/core/client"
	"cliquemap/internal/stats"
	"cliquemap/internal/workload"
)

// mixRun drives a GET/SET mix at a fixed value size and returns latency
// histograms plus the backend CPU consumed per wall second.
func mixRun(getFrac float64, valSize, ops int) (getHist, setHist *stats.Histogram, cpuPerSec float64) {
	c := std32()
	cl := c.NewClient(client.Options{Strategy: client.StrategySCAR})
	keys := preload(cl, 200, valSize)

	mix := workload.NewMix(getFrac, 42)
	getHist = &stats.Histogram{}
	cl.M.SetLatency.Reset() // isolate the mix from preload SETs
	startCPU := c.Acct.TotalNanos("rpc-server") + c.Acct.TotalNanos("handler") + c.Acct.TotalNanos("pony")
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := keys[i%len(keys)]
		if mix.NextIsGet() {
			if _, _, tr, err := cl.GetTraced(ctx, k); err == nil {
				getHist.Record(tr.Ns)
			}
		} else {
			cl.Set(ctx, k, workload.ValueGen(uint64(i%len(keys)), valSize))
		}
	}
	wall := time.Since(start).Seconds()
	endCPU := c.Acct.TotalNanos("rpc-server") + c.Acct.TotalNanos("handler") + c.Acct.TotalNanos("pony")
	cpuPerSec = float64(endCPU-startCPU) / 1e9 / wall
	return getHist, cl.M.SetLatency.Snapshot(), cpuPerSec
}

// Fig18Mix regenerates Figure 18: GET and SET latencies at 5/50/95% GET
// fractions with 4KB values — more RPC-based SETs mean higher typical
// latency for the mix.
func Fig18Mix() Result {
	res := Result{
		Name:  "fig18",
		Title: "Latencies under varying GET/SET mixes (4KB values)",
	}
	for _, frac := range []float64{0.05, 0.50, 0.95} {
		g, s, _ := mixRun(frac, 4096, 1200)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d%% GETs", int(frac*100)),
			Cols: []Col{
				{Name: "get_p50", Value: float64(g.Percentile(50)) / 1000, Unit: "us"},
				{Name: "get_p99", Value: float64(g.Percentile(99)) / 1000, Unit: "us"},
				{Name: "set_p50", Value: float64(s.Percentile(50)) / 1000, Unit: "us"},
				{Name: "set_p99", Value: float64(s.Percentile(99)) / 1000, Unit: "us"},
			},
		})
	}
	return res
}

// Fig19MixCPU regenerates Figure 19: backend CPU consumed per wall second
// across the same mixes — greater SET percentages cost more, as
// progressively more of the workload cannot use RMA.
func Fig19MixCPU() Result {
	res := Result{
		Name:  "fig19",
		Title: "Backend CPU cost under varying GET/SET mixes (CPU-s per wall-s, 4KB values)",
	}
	for _, frac := range []float64{0.05, 0.50, 0.95} {
		_, _, cpu := mixRun(frac, 4096, 1200)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d%% GETs", int(frac*100)),
			// Modelled cpu-s over wall-s: the denominator makes it swing
			// with machine load, so benchdiff treats it as informational.
			Cols: []Col{{Name: "cpu", Value: cpu, Unit: "cpu-s/s", Noisy: true}},
		})
	}
	return res
}

// Fig20ValueSize regenerates Figure 20: latency across value sizes at a
// fixed GET rate — for production-typical sizes, per-op fixed costs
// dominate and latency is insensitive until sizes grow large.
func Fig20ValueSize() Result {
	res := Result{
		Name:  "fig20",
		Title: "Performance under varying value sizes (95% GETs)",
	}
	for _, sz := range []int{32, 256, 2048, 16384} {
		g, s, _ := mixRun(0.95, sz, 900)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%dB", sz),
			Cols: []Col{
				{Name: "get_p50", Value: float64(g.Percentile(50)) / 1000, Unit: "us"},
				{Name: "get_p99", Value: float64(g.Percentile(99)) / 1000, Unit: "us"},
				{Name: "set_p50", Value: float64(s.Percentile(50)) / 1000, Unit: "us"},
				{Name: "set_p99", Value: float64(s.Percentile(99)) / 1000, Unit: "us"},
			},
		})
	}
	return res
}

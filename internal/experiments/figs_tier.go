package experiments

import (
	"fmt"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/config"
	"cliquemap/internal/hashring"
	"cliquemap/internal/tier"
)

// FigTier is the multi-cell federation scenario: three cells behind the
// weighted consistent-hash router, a mixed GET/SET workload, then one
// cell killed outright. Reported per phase: throughput through the tier
// client, the keyspace fraction the ring remapped (must stay ≤ 1/N +
// slack), and the acked writes lost to the failover (must be zero — the
// tier client re-routes before acking).
func FigTier() Result {
	const (
		keyCount = 300
		rounds   = 4
	)
	names := []string{"us", "eu", "asia"}
	var refs []tier.CellRef
	for _, n := range names {
		refs = append(refs, tier.CellRef{Name: n, Cell: mustCell(cell.Options{
			Shards: 3, Spares: 1, Mode: config.R32,
			Transport: cell.TransportPony,
			Backend:   smallBackend(),
		})})
	}
	t, err := tier.New(tier.Options{Cells: refs})
	if err != nil {
		panic(fmt.Sprintf("experiments: building tier: %v", err))
	}
	cl, err := t.NewClient(tier.ClientOptions{})
	if err != nil {
		panic(fmt.Sprintf("experiments: tier client: %v", err))
	}

	keys := make([][]byte, keyCount)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("tier-key-%05d", i))
	}
	acked := map[int]string{} // key index → last acked value

	// phase runs `rounds` full write+read sweeps and returns ops/s on
	// the tier's virtual-ish wall clock plus the failed-op count.
	phase := func(label string) Row {
		var ops, fails int
		startNs := t.Cell("us").Fabric.NowNs()
		for r := 0; r < rounds; r++ {
			for i, k := range keys {
				v := fmt.Sprintf("%s-r%d-%d", label, r, i)
				if err := cl.Set(ctx, k, []byte(v)); err == nil {
					acked[i] = v
				} else {
					fails++
				}
				if _, _, err := cl.Get(ctx, k); err != nil {
					fails++
				}
				ops += 2
			}
		}
		elapsed := float64(t.Cell("us").Fabric.NowNs()-startNs) / 1e9
		row := Row{Label: label, Cols: []Col{
			{Name: "ops/s", Value: float64(ops) / elapsed, Unit: "ops/s", Noisy: true},
			{Name: "op errors", Value: float64(fails)},
		}}
		return row
	}

	steady := phase("steady")

	// Kill asia and measure the failover through the same workload.
	ringBefore := t.Router().Ring()
	for s := 0; s < 3; s++ {
		t.Cell("asia").Crash(s)
	}
	failover := phase("post-kill")
	ringAfter := t.Router().Ring()

	// Remapped fraction over the working keyset.
	moved := 0
	for _, k := range keys {
		if ringBefore.OwnerName(hashring.DefaultHash(k)) != ringAfter.OwnerName(hashring.DefaultHash(k)) {
			moved++
		}
	}
	remap := float64(moved) / float64(keyCount)

	// Lost-acked-writes audit: every key's last acked value must read
	// back exactly.
	lost := 0
	for i, want := range acked {
		val, found, err := cl.Get(ctx, keys[i])
		if err != nil || !found || string(val) != want {
			lost++
		}
	}

	steady.Cols = append(steady.Cols, Col{Name: "remapped", Value: 0}, Col{Name: "lost acked", Value: 0})
	failover.Cols = append(failover.Cols, Col{Name: "remapped", Value: remap}, Col{Name: "lost acked", Value: float64(lost)})

	return Result{
		Name:  "tier",
		Title: "3-cell federation: steady state vs one cell killed and rerouted around",
		Notes: "remapped is the keyspace fraction the ring moved (bound ~1/3); lost acked must be 0",
		Rows:  []Row{steady, failover},
	}
}

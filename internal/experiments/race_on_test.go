//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. Figure harnesses that calibrate load against wall-clock op
// rates can't hit their targets under the detector's ~10x slowdown.
const raceEnabled = true

package experiments

import (
	"fmt"
	"os"
	"time"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/hashring"
	"cliquemap/internal/stats"
)

// Fig11Preferred regenerates Figure 11: preferred-backend selection under
// a single overloaded server. A 3-backend R=3.2 cell and an R=1 baseline
// repeatedly GET one 4KB pair while an antagonist drives ~95% of one
// backend host's NIC. R=3.2's quorum ignores the slow replica; R=1 has no
// choice. Values are normalized to each mode's no-load latency.
func Fig11Preferred() Result {
	const ops = 800
	run := func(mode config.Mode, load bool) (p50, p99 float64) {
		c := mustCell(cell.Options{
			Shards: 3, Mode: mode, Transport: cell.TransportPony,
			Backend: smallBackend(),
		})
		cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
		keys := preload(cl, 1, 4096)
		if load {
			// Load the host of the key's primary replica so R=1 cannot
			// avoid it.
			c.SetAntagonist(primaryShardOf(c, keys[0]), 0.95)
		}
		var hist stats.Histogram
		driveGets(cl, keys, ops, 0, &hist)
		return float64(hist.Percentile(50)), float64(hist.Percentile(99))
	}

	res := Result{
		Name:  "fig11",
		Title: "Preferred backend selection under server host load (normalized to no-load)",
		Notes: "R=3.2 tolerates a single slow server; R=1 is obliged to use it (§7.2.1)",
	}
	for _, mode := range []config.Mode{config.R32, config.R1} {
		base50, base99 := run(mode, false)
		load50, load99 := run(mode, true)
		for _, v := range []struct {
			label    string
			p50, p99 float64
		}{
			{fmt.Sprintf("%s no-load", mode), 1, 1},
			{fmt.Sprintf("%s loaded", mode), load50 / base50, load99 / base99},
		} {
			res.Rows = append(res.Rows, Row{
				Label: v.label,
				Cols: []Col{
					{Name: "p50_norm", Value: v.p50, Unit: "x"},
					{Name: "p99_norm", Value: v.p99, Unit: "x"},
				},
			})
		}
	}
	return res
}

// primaryShardOf recovers the primary shard of a key in a cell; clients
// and backends share hashring.DefaultHash.
func primaryShardOf(c *cell.Cell, key []byte) int {
	cfg := c.Store.Get()
	return int(hashring.DefaultHash(key).Hi % uint64(cfg.Shards))
}

// maintenanceRun drives a steady GET load while an event (planned or
// unplanned maintenance) is injected mid-run, sampling latency and RPC
// byte rates per interval — Figures 13 and 14.
func maintenanceRun(name, title string, inject func(c *cell.Cell, interval int)) Result {
	const (
		intervals   = 6
		intervalLen = 400 * time.Millisecond
		opsPerIntvl = 600
		keyCount    = 200
	)
	c := mustCell(cell.Options{
		Shards: 3, Spares: 1, Mode: config.R32,
		Transport: cell.TransportPony,
		Backend:   smallBackend(),
	})
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	keys := preload(cl, keyCount, 1024)

	res := Result{Name: name, Title: title}
	lastBytes := c.Net.BytesSent()
	for iv := 0; iv < intervals; iv++ {
		inject(c, iv)
		var hist stats.Histogram
		start := time.Now()
		pace := intervalLen / opsPerIntvl
		driveGets(cl, keys, opsPerIntvl, pace, &hist)
		wall := time.Since(start).Seconds()
		bytes := c.Net.BytesSent()
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("t%d", iv),
			Cols: append(latCols(&hist, 50, 99.9),
				Col{Name: "rpc_rate", Value: float64(bytes-lastBytes) / wall, Unit: "B/s", Noisy: true},
			),
		})
		lastBytes = bytes
	}
	return res
}

// Fig13Planned regenerates Figure 13: planned maintenance hidden by warm
// spares. The shard migrates at t2 and returns at t4; client latency
// barely moves while RPC bytes spike during each transfer.
func Fig13Planned() Result {
	var primaryAddr string
	return maintenanceRun("fig13",
		"Planned maintenance via spares under steady GET load",
		func(c *cell.Cell, iv int) {
			switch iv {
			case 2:
				primaryAddr = c.Store.Get().AddrFor(1)
				if _, err := c.PlannedMaintenance(ctx, 1); err != nil {
					panic(err)
				}
			case 4:
				if err := c.CompleteMaintenance(ctx, 1, primaryAddr); err != nil {
					panic(err)
				}
			}
		})
}

// Fig14Unplanned regenerates Figure 14: a forced crash at t2, restart and
// repair burst at t3. Latency stays nominal (quorum masks the loss; the
// repair traffic shows up as an RPC byte burst).
func Fig14Unplanned() Result {
	return maintenanceRun("fig14",
		"Unplanned crash with post-restart repairs under steady GET load",
		func(c *cell.Cell, iv int) {
			switch iv {
			case 2:
				c.Crash(1)
			case 3:
				if err := c.Restart(ctx, 1); err != nil {
					panic(err)
				}
			}
		})
}

// FigWarmRestart is the Figure-14 scenario re-run with durable warm
// restarts: the crashed task recovers its corpus from checkpoint+journal
// instead of arriving empty and repair-bound. Each variant preloads, force
// crashes a replica, restarts it, and then — BEFORE any repair runs —
// probes the restarted replica directly for every pre-crash key. The warm
// task serves essentially the whole corpus from its own disk lineage
// (journal-replay-bound recovery), so the subsequent self-validation sweep
// finds almost nothing to push; the cold task must re-learn every key from
// its cohort (repair-bound recovery).
func FigWarmRestart() Result {
	const keyCount = 400
	run := func(dataDir string) (servedFrac float64, repairs, recovered uint64) {
		c := mustCell(cell.Options{
			Shards: 3, Spares: 1, Mode: config.R32,
			Transport: cell.TransportPony,
			Backend:   smallBackend(),
			DataDir:   dataDir,
		})
		cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
		keys := preload(cl, keyCount, 1024)

		c.Crash(1)
		if _, err := c.RestartBegin(1); err != nil {
			panic(err)
		}
		// Per-replica probe inside the recovery window: what can the
		// restarted task serve before a single repair has run? A bounced
		// miss (the recovering guard) counts as not-served.
		addr := c.Store.Get().AddrFor(1)
		probe := c.Net.Client(c.Fabric.NumHosts()-1, "warm-probe")
		served := 0
		for _, k := range keys {
			resp, _, err := probe.Call(ctx, addr, proto.MethodGet, proto.GetReq{Key: k}.Marshal())
			if err != nil {
				continue
			}
			if g, gerr := proto.UnmarshalGetResp(resp); gerr == nil && g.Found {
				served++
			}
		}
		before := c.AggregateCounters().RepairsIssued
		if err := c.RestartComplete(ctx, 1); err != nil {
			panic(err)
		}
		repairs = c.AggregateCounters().RepairsIssued - before
		recovered = c.Backend(1).RecoveryStatsSnapshot().RecoveredKeys
		return float64(served) / float64(len(keys)), repairs, recovered
	}

	coldFrac, coldRepairs, _ := run("")
	warmDir, err := os.MkdirTemp("", "cmwarm-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(warmDir)
	warmFrac, warmRepairs, warmRecovered := run(warmDir)

	return Result{
		Name:  "fig14warm",
		Title: "Unplanned crash: cold (repair-bound) vs durable warm restart (journal-replay-bound)",
		Notes: "pre-repair corpus served by the restarted replica itself; repairs = keys its cohort had to push afterward",
		Rows: []Row{
			{Label: "cold-restart", Cols: []Col{
				{Name: "precrash_served", Value: coldFrac * 100, Unit: "%"},
				{Name: "repairs", Value: float64(coldRepairs), Unit: ""},
				{Name: "recovered_from_disk", Value: 0, Unit: ""},
			}},
			{Label: "warm-restart", Cols: []Col{
				{Name: "precrash_served", Value: warmFrac * 100, Unit: "%"},
				{Name: "repairs", Value: float64(warmRepairs), Unit: ""},
				{Name: "recovered_from_disk", Value: float64(warmRecovered), Unit: ""},
			}},
		},
	}
}

package experiments

import (
	"fmt"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/workload"
)

// Fig3Reshaping regenerates Figure 3: backend DRAM over thirteen "weeks".
// Weeks 1–3 run the pre-reshaping world (provision for peak); reshaping
// launches in week 4 and footprint drops to demand (the paper saw ~10%);
// around week 8 the corpus itself shrinks and, without human intervention,
// the fleet's footprint follows (the paper saw ~50%).
func Fig3Reshaping() Result {
	const (
		shards = 3
		// Sized so demand sits near ~75% of the peak provisioning: with
		// the growth-step overshoot, the reshaping launch lands ~10%
		// below peak, as in the paper.
		keyCount = 4600
		valSize  = 7800
	)
	bopt := smallBackend()
	bopt.DataBytes = 4 << 20
	bopt.DataMaxBytes = 48 << 20
	bopt.GrowStep = 0.35

	// Pre-launch baseline: reshaping disabled = populate for peak.
	pre := bopt
	pre.ReshapeEnabled = false
	baseCell := mustCell(cell.Options{Shards: shards, Mode: config.R32, Backend: pre})
	baseCl := baseCell.NewClient(client.Options{})
	for i := 0; i < keyCount; i++ {
		baseCl.Set(ctx, []byte(workload.Key(uint64(i))), workload.ValueGen(uint64(i), valSize))
	}
	baseline := baseCell.TotalMemoryBytes()

	// Post-launch: reshaping on, footprint tracks demand.
	reCell := mustCell(cell.Options{Shards: shards, Mode: config.R32, Backend: bopt})
	reCl := reCell.NewClient(client.Options{})
	for i := 0; i < keyCount; i++ {
		reCl.Set(ctx, []byte(workload.Key(uint64(i))), workload.ValueGen(uint64(i), valSize))
	}
	reshaped := reCell.TotalMemoryBytes()

	// Corpus shrink: half the keys are erased; backends downsize on their
	// next non-disruptive restart.
	for i := keyCount / 2; i < keyCount; i++ {
		reCl.Erase(ctx, []byte(workload.Key(uint64(i))))
	}
	reCell.CompactAll(0.15)
	shrunk := reCell.TotalMemoryBytes()

	res := Result{
		Name:  "fig3",
		Title: "Memory reshaping and subsequent DRAM savings (per-cell bytes; paper: TB fleet-wide)",
		Notes: fmt.Sprintf("reshaping launch saves %.0f%%; corpus shrink drops to %.0f%% of baseline (paper: ~10%% then ~50%%)",
			100*(1-float64(reshaped)/float64(baseline)),
			100*float64(shrunk)/float64(baseline)),
	}
	for week := 1; week <= 13; week++ {
		var mem int
		switch {
		case week < 4:
			mem = baseline
		case week < 8:
			mem = reshaped
		default:
			mem = shrunk
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("week%02d", week),
			Cols:  []Col{{Name: "memory", Value: float64(mem), Unit: "B"}},
		})
	}
	return res
}

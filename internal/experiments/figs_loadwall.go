package experiments

import (
	"runtime/debug"
	"time"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/proto"
	"cliquemap/internal/fabric"
	"cliquemap/internal/health"
	"cliquemap/internal/loadwall"
	"cliquemap/internal/pony"
	"cliquemap/internal/stats"
	"cliquemap/internal/workload"
)

// loadwallCase is one row of the load-wall sweep: a lookup strategy, a
// value size, a GET fraction, and the cell shaping that determines which
// resource should hit the wall first.
type loadwallCase struct {
	label    string
	strategy client.Strategy
	valSize  int
	getFrac  float64

	// Cell shaping. Each case deliberately narrows one resource so the
	// knee lands at a wall-clock-feasible QPS and the saturation plane has
	// a distinct wall to name; the *relationships* between rows (SCAR vs
	// 2xR vs RPC, small vs large values) are the reproduction target.
	slowNIC  bool // 40µs single-engine Pony: NIC engine is the wall
	slowWire bool // 2 Gbps hosts: the downlink drain clock is the wall
	rpcTight bool // 4 RPC workers + costly GET handler: the pool is the wall

	latObjNs    uint64 // SLO latency objective gating each step
	startQPS    float64
	maxQPS      float64
	clientHosts int
}

// loadwallCases is the published sweep: {SCAR, 2xR, RPC} × {128B, 16KB}
// plus a mixed-write row.
func loadwallCases() []loadwallCase {
	return []loadwallCase{
		{label: "SCAR 128B", strategy: client.StrategySCAR, valSize: 128, getFrac: 1,
			slowNIC: true, latObjNs: 4_000_000, startQPS: 2000, maxQPS: 64_000, clientHosts: 8},
		{label: "2xR 128B", strategy: client.Strategy2xR, valSize: 128, getFrac: 1,
			slowNIC: true, latObjNs: 4_000_000, startQPS: 2000, maxQPS: 64_000, clientHosts: 8},
		{label: "RPC 128B", strategy: client.StrategyRPC, valSize: 128, getFrac: 1,
			rpcTight: true, latObjNs: 4_000_000, startQPS: 1500, maxQPS: 64_000, clientHosts: 8},
		{label: "SCAR 16KB", strategy: client.StrategySCAR, valSize: 16 << 10, getFrac: 1,
			slowWire: true, latObjNs: 6_000_000, startQPS: 2000, maxQPS: 64_000, clientHosts: 2},
		{label: "RPC 16KB", strategy: client.StrategyRPC, valSize: 16 << 10, getFrac: 1,
			slowWire: true, latObjNs: 6_000_000, startQPS: 1000, maxQPS: 32_000, clientHosts: 2},
		{label: "SCAR 128B 80/20", strategy: client.StrategySCAR, valSize: 128, getFrac: 0.8,
			slowNIC: true, latObjNs: 4_000_000, startQPS: 2000, maxQPS: 64_000, clientHosts: 8},
	}
}

// loadwallProfile sizes the knee search. The full profile is what cmbench
// publishes; tests use a cheaper one.
type loadwallProfile struct {
	stepDurNs uint64
	bisect    int
	workers   int
}

func loadwallFullProfile() loadwallProfile {
	return loadwallProfile{stepDurNs: 250e6, bisect: 3, workers: 16}
}

// mix64 is a splitmix-style finalizer used to derive the per-op GET/SET
// coin from the op's schedule index, so the mix is deterministic per seed
// yet uncorrelated with key choice.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ x>>33
}

// loadwallProbe builds the saturation probe for a cell: each call returns
// per-resource scores (queue-seconds accrued per wall-second, or backlog
// fraction for the downlink gauge) as deltas since the previous call, so
// the knee search sees each step's own saturation rather than the ramp's
// cumulative history.
func loadwallProbe(c *cell.Cell, clients []*client.Client, stepDurNs uint64) loadwall.Probe {
	type snap struct {
		stripeWait uint64
		rpcQueue   uint64
		nicQueue   uint64
		backoff    uint64
		wall       time.Time
	}
	collect := func() snap {
		s := snap{wall: time.Now()}
		for _, b := range c.Nodes() {
			ss := b.StripeSaturation()
			s.stripeWait += ss.WaitNs
			rs := b.Server().Saturation()
			s.rpcQueue += rs.QueueNs + rs.SubmitWaitNs
			s.nicQueue += b.NICSat().QueueNs
		}
		for _, cl := range clients {
			s.backoff += cl.M.BackoffNs.Value()
		}
		return s
	}
	prev := collect()
	return func() map[string]float64 {
		cur := collect()
		wall := cur.wall.Sub(prev.wall).Seconds()
		if wall <= 0 {
			wall = 1e-9
		}
		// The downlink drain clock is a gauge, not a counter: report the
		// worst per-host backlog as a fraction of the step window.
		var worst uint64
		for h := 0; h < c.Fabric.NumHosts(); h++ {
			if b := c.Fabric.Host(h).Backlog(); b > worst {
				worst = b
			}
		}
		m := map[string]float64{
			"stripe-locks": float64(cur.stripeWait-prev.stripeWait) / 1e9 / wall,
			"rpc-workers":  float64(cur.rpcQueue-prev.rpcQueue) / 1e9 / wall,
			"nic-engines":  float64(cur.nicQueue-prev.nicQueue) / 1e9 / wall,
			"retry-budget": float64(cur.backoff-prev.backoff) / 1e9 / wall,
			"downlink":     float64(worst) / float64(stepDurNs),
		}
		prev = cur
		return m
	}
}

// runLoadwallCase builds the case's cell and searches for its knee.
func runLoadwallCase(rc loadwallCase, prof loadwallProfile) *loadwall.Report {
	opt := cell.Options{
		Shards: 3, Spares: 1, Mode: config.R32,
		Transport:   cell.TransportPony,
		ClientHosts: rc.clientHosts,
		Backend:     smallBackend(),
	}
	if rc.slowNIC {
		opt.Pony = pony.CostModel{EngineServiceNs: 40_000, ScanPerEntryNs: 18, PerKBNs: 42, MsgWakeupNs: 1500}
		opt.PonyEng = pony.EngineConfig{MaxEngines: 1, ScaleOutAt: 0.70, ScaleInAt: 0.25}
	}
	if rc.slowWire {
		opt.Fabric = fabric.Params{HostGbps: 2}
	}
	c := mustCell(opt)
	if rc.rpcTight {
		for _, b := range c.Nodes() {
			srv := b.Server()
			srv.SetWorkerLimit(4)
			srv.SetMethodCost(proto.MethodGet, 400_000)
		}
	}

	nKeys := 512
	if rc.valSize >= 8<<10 {
		nKeys = 256 // keep the large-value corpus within the data segment
	}
	keys := preload(c.NewClient(client.Options{}), nKeys, rc.valSize)

	// One client per generator worker, checked out through a pool so an op
	// always holds its client exclusively; NewClient round-robins them
	// over the cell's client hosts.
	clients := make([]*client.Client, prof.workers)
	pool := make(chan *client.Client, prof.workers)
	for i := range clients {
		clients[i] = c.NewClient(client.Options{Strategy: rc.strategy})
		pool <- clients[i]
	}

	getCut := uint64(rc.getFrac * float64(uint64(1)<<32))
	op := func(seq uint64) (uint64, error) {
		cl := <-pool
		defer func() { pool <- cl }()
		k := keys[seq%uint64(len(keys))]
		if mix64(seq)&0xffffffff < getCut {
			_, _, tr, err := cl.GetTraced(ctx, k)
			return tr.Ns, err
		}
		_, tr, err := cl.SetVersionedTraced(ctx, k, workload.ValueGen(seq, rc.valSize))
		return tr.Ns, err
	}

	cfg := loadwall.Config{
		StartQPS:       rc.startQPS,
		MaxQPS:         rc.maxQPS,
		Bisect:         prof.bisect,
		StepDurationNs: prof.stepDurNs,
		Seed:           42,
		Workers:        prof.workers,
		WarmupNs:       prof.stepDurNs,
		Class:          "GET",
		Objective:      health.Objective{Availability: 0.999, LatencyNs: rc.latObjNs},
	}
	return loadwall.FindKnee(loadwall.NewWallClock(), cfg, op, loadwallProbe(c, clients, prof.stepDurNs))
}

// figLoadWallWith runs a set of cases under a profile; FigLoadWall is the
// published full sweep, tests pass a cheaper profile.
func figLoadWallWith(cases []loadwallCase, prof loadwallProfile) Result {
	res := Result{
		Name:  "loadwall",
		Title: "Load wall: max sustainable QPS per lookup strategy and value size, with the limiting resource",
		Notes: "open-loop knee search (coordinated-omission-correct); limit = argmax saturation score at the failing step nearest the knee",
	}
	// GC assist pauses of several ms land squarely in the measured tail at
	// these step durations; relax the GC target for the sweep so the knee
	// reflects the modelled system, not the generator's own allocator.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	for _, rc := range cases {
		rep := runLoadwallCase(rc, prof)
		h := &stats.Histogram{}
		if ks, ok := rep.KneeStep(); ok {
			h = ks.Latency
		}
		limit := rep.Limiting
		if limit == "" {
			limit = "none"
		}
		// The knee is a capacity (higher is better); it moves with
		// machine load like every wall-clock-denominated number, so
		// benchdiff reports it informationally. The percentile columns
		// are measured AT the knee — a drifting operating point — so
		// they inherit its noise (two identical-code runs differ by
		// ±50% on p99.9-at-knee) and are tagged the same way.
		lats := latCols(h, 50, 99, 99.9)
		for i := range lats {
			lats[i].Noisy = true
		}
		res.Rows = append(res.Rows, Row{
			Label: rc.label,
			Cols: append(append([]Col{{Name: "knee", Value: rep.KneeQPS, Unit: "qps", Noisy: true}},
				lats...),
				Col{Name: "limit", Text: limit}),
		})
	}
	return res
}

// FigLoadWall sweeps lookup strategy × value size × GET:SET mix and
// reports, per configuration, the highest offered QPS that holds the SLO
// (the knee), the latency percentiles measured at that load, and which
// resource hit the wall — the capacity answer §7 stops short of.
func FigLoadWall() Result {
	return figLoadWallWith(loadwallCases(), loadwallFullProfile())
}

package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/stats"
)

// FigResize is the online-resizing companion to Figure 13: where the
// paper's planned-maintenance figure moves one shard to a spare, this
// run changes the cell's logical shard count under mixed load. A
// 4-shard cell grows to 6 at t2 and shrinks back at t4 while a steady
// paced GET stream samples latency per interval and a concurrent writer
// keeps mutating the corpus. GET p50 should stay flat across the
// resizes (reads stay on RMA throughout; only the tail sees the config
// refreshes), RPC bytes spike during each transfer, and — the hard
// invariant — every SET acked during the churn must remain readable
// afterwards. A lost acked write panics: that is a correctness bug, not
// a data point.
func FigResize() Result {
	const (
		intervals   = 6
		intervalLen = 400 * time.Millisecond
		opsPerIntvl = 600
		keyCount    = 200
	)
	c := mustCell(cell.Options{
		Shards: 4, Spares: 2, Mode: config.R32,
		Transport: cell.TransportPony,
		Backend:   smallBackend(),
	})
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	keys := preload(cl, keyCount, 1024)

	// The mixed-load writer: round-robin SETs with a monotone sequence
	// baked into the value, recording the highest acked sequence per key
	// so the post-run check can detect a lost acked write.
	var stop atomic.Bool
	acked := make([]atomic.Uint64, keyCount)
	var sets atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := c.NewClient(client.Options{
			Strategy: client.StrategySCAR, NoFallback: true,
			Retries: 8, Budget: client.NewRetryBudget(5000, 1),
		})
		for seq := uint64(1); !stop.Load(); seq++ {
			i := int(seq % keyCount)
			if err := w.Set(ctx, keys[i], []byte(fmt.Sprintf("rs%d", seq))); err == nil {
				acked[i].Store(seq)
				sets.Add(1)
			}
		}
	}()

	res := Result{
		Name:  "resize",
		Title: "Online resize 4 -> 6 -> 4 shards under mixed GET/SET load",
	}
	lastBytes := c.Net.BytesSent()
	for iv := 0; iv < intervals; iv++ {
		switch iv {
		case 2:
			if err := c.Resize(ctx, 6); err != nil {
				panic(fmt.Sprintf("experiments: resize to 6: %v", err))
			}
		case 4:
			if err := c.Resize(ctx, 4); err != nil {
				panic(fmt.Sprintf("experiments: resize to 4: %v", err))
			}
		}
		var hist stats.Histogram
		start := time.Now()
		pace := intervalLen / opsPerIntvl
		driveGets(cl, keys, opsPerIntvl, pace, &hist)
		wall := time.Since(start).Seconds()
		bytes := c.Net.BytesSent()
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("t%d", iv),
			Cols: append(latCols(&hist, 50, 99.9),
				Col{Name: "rpc_rate", Value: float64(bytes-lastBytes) / wall, Unit: "B/s", Noisy: true},
			),
		})
		lastBytes = bytes
	}

	stop.Store(true)
	wg.Wait()
	check := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	lost := 0
	for i := range keys {
		want := acked[i].Load()
		if want == 0 {
			continue
		}
		v, ok, err := check.Get(ctx, keys[i])
		if err != nil {
			panic(fmt.Sprintf("experiments: resize check get: %v", err))
		}
		var got uint64
		if ok {
			fmt.Sscanf(string(v), "rs%d", &got)
		}
		if !ok || got < want {
			lost++
		}
	}
	if lost > 0 {
		panic(fmt.Sprintf("experiments: resize lost %d acked writes", lost))
	}
	res.Notes = fmt.Sprintf("grew 4->6 at t2, shrank back at t4; %d SETs acked during churn, 0 lost", sets.Load())
	return res
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"cliquemap/internal/core/backend"
	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/core/layout"
	"cliquemap/internal/stats"
	"cliquemap/internal/workload"
)

// ctx is the shared experiment context.
var ctx = context.Background()

// smallBackend is the common backend template for controlled experiments:
// enough headroom that the workload, not allocator pressure, dominates.
func smallBackend() backend.Options {
	return backend.Options{
		Geometry:       layout.Geometry{Buckets: 512, Ways: layout.DefaultWays},
		DataBytes:      8 << 20,
		DataMaxBytes:   64 << 20,
		SlabBytes:      256 << 10,
		ReshapeEnabled: true,
	}
}

// mustCell builds a cell or panics (experiments are programs, not servers).
func mustCell(opt cell.Options) *cell.Cell {
	c, err := cell.New(opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: building cell: %v", err))
	}
	return c
}

// std32 is the default controlled-experiment cell: 3 backends R=3.2 over
// Pony Express.
func std32() *cell.Cell {
	return mustCell(cell.Options{
		Shards: 3, Spares: 1, Mode: config.R32,
		Transport: cell.TransportPony,
		Backend:   smallBackend(),
	})
}

// preload installs n keys of fixed value size and returns them.
func preload(cl *client.Client, n, valSize int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(workload.Key(uint64(i)))
		if err := cl.Set(ctx, keys[i], workload.ValueGen(uint64(i), valSize)); err != nil {
			panic(fmt.Sprintf("experiments: preload set: %v", err))
		}
	}
	return keys
}

// driveGets performs count lookups round-robin over keys, recording each
// op's modelled latency. pace > 0 throttles the offered rate.
func driveGets(cl *client.Client, keys [][]byte, count int, pace time.Duration, hist *stats.Histogram) {
	next := time.Now()
	for i := 0; i < count; i++ {
		if pace > 0 {
			next = next.Add(pace)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		_, _, tr, err := cl.GetTraced(ctx, keys[i%len(keys)])
		if err != nil {
			continue
		}
		if hist != nil {
			hist.Record(tr.Ns)
		}
	}
}

// latCols renders the standard latency percentile columns in µs.
func latCols(h *stats.Histogram, ps ...float64) []Col {
	if len(ps) == 0 {
		ps = []float64{50, 99}
	}
	cols := make([]Col, 0, len(ps))
	for _, p := range ps {
		cols = append(cols, Col{
			Name:  fmt.Sprintf("p%g", p),
			Value: float64(h.Percentile(p)) / 1000,
			Unit:  "us",
		})
	}
	return cols
}

package experiments

import (
	"strings"
	"testing"

	"cliquemap/internal/core/client"
)

func TestResultFormat(t *testing.T) {
	r := Result{
		Name: "figX", Title: "test",
		Rows: []Row{
			{Label: "a", Cols: []Col{{Name: "v", Value: 1.5, Unit: "us"}}},
			{Label: "bbbb", Cols: []Col{{Name: "v", Value: 2000, Unit: "ops/s"}}},
		},
		Notes: "note",
	}
	out := r.Format()
	for _, want := range []string{"figX", "test", "a", "bbbb", "note", "1.5us", "2.0Kops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains((Result{Name: "e", Title: "t"}).Format(), "(no rows)") {
		t.Error("empty result format")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"3", "fig3", "FIG11", "20", "resize", "tier", "loadwall", "hotkey"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("99"); ok {
		t.Error("bogus figure resolved")
	}
	if len(All()) != 21 {
		t.Errorf("All() = %d experiments", len(All()))
	}
}

// TestFig10 runs the cheapest experiment end-to-end and checks Figure 10's
// qualitative shape: CDFs are monotone, Geo skews smaller than Ads.
func TestFig10(t *testing.T) {
	r := Fig10SizeCDF()
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	prevAds, prevGeo := 0.0, 0.0
	for _, row := range r.Rows {
		ads, geo := row.Cols[0].Value, row.Cols[1].Value
		if ads < prevAds || geo < prevGeo {
			t.Errorf("CDF not monotone at %s", row.Label)
		}
		prevAds, prevGeo = ads, geo
	}
	// At 1KB Geo should be further along than Ads.
	for _, row := range r.Rows {
		if row.Label == "1024B" && row.Cols[1].Value <= row.Cols[0].Value {
			t.Errorf("Geo CDF at 1KB (%v) should exceed Ads (%v)", row.Cols[1].Value, row.Cols[0].Value)
		}
	}
}

// TestFig7Shape checks Figure 7's ordering claims without running the full
// harness elsewhere: SCAR is cheaper than 2×R on pony CPU; MSG is the most
// expensive pony path.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig7LookupCPU()
	vals := map[string]map[string]float64{}
	for _, row := range r.Rows {
		vals[row.Label] = map[string]float64{}
		for _, c := range row.Cols {
			vals[row.Label][c.Name] = c.Value
		}
	}
	if !(vals["SCAR"]["pony"] < vals["2xR"]["pony"]) {
		t.Errorf("SCAR pony CPU %v not below 2xR %v", vals["SCAR"]["pony"], vals["2xR"]["pony"])
	}
	if !(vals["MSG"]["pony"] > vals["SCAR"]["pony"]) {
		t.Errorf("MSG pony CPU %v not above SCAR %v", vals["MSG"]["pony"], vals["SCAR"]["pony"])
	}
}

// TestFig11Shape: R=3.2 stays near 1x under single-server load; R=1
// inflates.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig11Preferred()
	var r32, r1 float64
	for _, row := range r.Rows {
		if strings.HasPrefix(row.Label, "R=3.2 loaded") {
			r32 = row.Cols[0].Value
		}
		if strings.HasPrefix(row.Label, "R=1 loaded") {
			r1 = row.Cols[0].Value
		}
	}
	if r32 == 0 || r1 == 0 {
		t.Fatalf("missing rows: %+v", r.Rows)
	}
	if r1 <= r32 {
		t.Errorf("R=1 loaded p50 (%.2fx) should exceed R=3.2 loaded (%.2fx)", r1, r32)
	}
	if r32 > 2.0 {
		t.Errorf("R=3.2 loaded p50 = %.2fx; preferred backend should nearly hide the antagonist", r32)
	}
}

// TestFigWarmRestartShape: the durable warm restart must be
// journal-replay-bound, not repair-bound — the restarted task serves
// ≥99% of its pre-crash corpus before any repair runs, and the repair
// traffic its cohort pushes drops ≥10× versus a cold restart.
func TestFigWarmRestartShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := FigWarmRestart()
	var cold, warm *Row
	for i := range r.Rows {
		switch r.Rows[i].Label {
		case "cold-restart":
			cold = &r.Rows[i]
		case "warm-restart":
			warm = &r.Rows[i]
		}
	}
	if cold == nil || warm == nil {
		t.Fatalf("missing rows: %+v", r.Rows)
	}
	col := func(row *Row, name string) float64 {
		for _, c := range row.Cols {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("row %s missing col %s", row.Label, name)
		return 0
	}
	if served := col(warm, "precrash_served"); served < 99 {
		t.Errorf("warm restart served %.1f%% of pre-crash corpus pre-repair, want >= 99%%", served)
	}
	if served := col(cold, "precrash_served"); served != 0 {
		t.Errorf("cold restart served %.1f%% pre-repair; an empty task should serve nothing", served)
	}
	coldRep, warmRep := col(cold, "repairs"), col(warm, "repairs")
	if coldRep == 0 {
		t.Fatal("cold restart issued zero repairs; the baseline is broken")
	}
	if coldRep < 10*(warmRep+1) {
		t.Errorf("repair traffic: cold=%v warm=%v, want >= 10x drop", coldRep, warmRep)
	}
	if col(warm, "recovered_from_disk") == 0 {
		t.Error("warm restart recovered nothing from disk")
	}
}

// TestFig12Shape: with 64KB values SCAR loses its advantage (the incast
// crossover).
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig12Incast()
	vals := map[string]float64{}
	for _, row := range r.Rows {
		vals[row.Label] = row.Cols[0].Value
	}
	if !(vals["SCAR no-load"] > vals["2xR no-load"]) {
		t.Errorf("64KB values: SCAR p50 (%v) should lag 2xR (%v)", vals["SCAR no-load"], vals["2xR no-load"])
	}
}

// TestFig3Shape: reshaping saves memory at launch and tracks the corpus
// shrink.
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig3Reshaping()
	if len(r.Rows) != 13 {
		t.Fatalf("weeks = %d", len(r.Rows))
	}
	week1 := r.Rows[0].Cols[0].Value
	week5 := r.Rows[4].Cols[0].Value
	week13 := r.Rows[12].Cols[0].Value
	if !(week5 < week1) {
		t.Errorf("reshaping launch did not save memory: %v -> %v", week1, week5)
	}
	if !(week13 < week5) {
		t.Errorf("corpus shrink did not reduce memory: %v -> %v", week5, week13)
	}
	if week13 > 0.7*week1 {
		t.Errorf("total savings too small: %v of %v", week13, week1)
	}
}

// TestFig6Shape: the language ordering of Figure 6 — cpp dominates; python
// is an order of magnitude behind go/java.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig6Languages()
	rate := map[string]float64{}
	cpu := map[string]float64{}
	for _, row := range r.Rows {
		for _, c := range row.Cols {
			switch c.Name {
			case "op_rate":
				rate[row.Label] = c.Value
			case "cpu/op":
				cpu[row.Label] = c.Value
			}
		}
	}
	if !(rate["cpp"] > rate["go"] && rate["go"] > rate["py"]) {
		t.Errorf("op rate ordering wrong: %v", rate)
	}
	if rate["cpp"] < 5*rate["go"] {
		t.Errorf("cpp (%f) should be far ahead of go (%f)", rate["cpp"], rate["go"])
	}
	if cpu["py"] < 5*cpu["java"] {
		t.Errorf("python CPU (%f) should dwarf java (%f)", cpu["py"], cpu["java"])
	}
}

// TestFig15Shape: engines scale out as the ramp progresses.
func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	if raceEnabled {
		// The ramp's "max" step relies on real wall-clock op rates crossing
		// the engine scale-out threshold; the race detector's slowdown keeps
		// even the max step below it. Scale-out mechanics are covered by
		// internal/pony under -race.
		t.Skip("load ramp is calibrated to wall-clock rates")
	}
	r := Fig15PonyRamp()
	first := r.Rows[0].Cols[len(r.Rows[0].Cols)-1].Value
	last := r.Rows[len(r.Rows)-1].Cols[len(r.Rows[len(r.Rows)-1].Cols)-1].Value
	if last <= first {
		t.Errorf("engines did not scale out: %v -> %v", first, last)
	}
	if last < 2 {
		t.Errorf("peak engines %v; expected multi-engine scale-out", last)
	}
}

// TestFig16and17Shape: 1RMA hardware latency is load-insensitive while
// end-to-end latency is worst at the idle rate (C-states).
func TestFig16and17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	hw := Fig16OneRMAHW()
	lo := hw.Rows[0].Cols[0].Value
	hi := hw.Rows[len(hw.Rows)-1].Cols[0].Value
	if hi > 2*lo {
		t.Errorf("hw latency doubled across the ramp: %v -> %v", lo, hi)
	}
	get := Fig17OneRMAGet()
	idle := get.Rows[0].Cols[0].Value
	warm := get.Rows[len(get.Rows)-1].Cols[0].Value
	if idle <= warm {
		t.Errorf("C-state inversion missing: idle p50 %v <= warm p50 %v", idle, warm)
	}
}

// TestFig19Shape: backend CPU falls as the GET fraction rises.
func TestFig19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig19MixCPU()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	a, b, c := r.Rows[0].Cols[0].Value, r.Rows[1].Cols[0].Value, r.Rows[2].Cols[0].Value
	if !(a > b && b > c) {
		t.Errorf("CPU not monotone in GET fraction: %v %v %v", a, b, c)
	}
	if a < 2*c {
		t.Errorf("write-heavy CPU (%v) should far exceed read-heavy (%v)", a, c)
	}
}

// TestFigResizeShape: GET p50 stays flat while the cell resizes 4->6->4
// under mixed load — reads stay on RMA throughout; only the tail pays
// for config refreshes. The zero-lost-acked-writes invariant is checked
// inside FigResize itself (a loss panics the run).
func TestFigResizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := FigResize()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := r.Rows[0].Cols[0].Value
	if v := r.Rows[1].Cols[0].Value; v < base {
		base = v
	}
	for _, row := range r.Rows {
		if row.Cols[0].Value > 1.5*base {
			t.Errorf("GET p50 not flat across resize: %s = %.1fus vs baseline %.1fus",
				row.Label, row.Cols[0].Value, base)
		}
	}
}

// TestFig20Shape: latency flat for small values, rising at 16KB.
func TestFig20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := Fig20ValueSize()
	p50 := func(i int) float64 { return r.Rows[i].Cols[0].Value }
	if p50(2) > 1.5*p50(0) {
		t.Errorf("small-value latency not flat: %v vs %v", p50(0), p50(2))
	}
	if p50(3) < 1.3*p50(0) {
		t.Errorf("16KB latency (%v) should exceed 32B (%v)", p50(3), p50(0))
	}
}

// TestFigLoadWallShape: the knee search finds a wall above the starting
// load for both an RMA strategy and the RPC path, and the saturation
// plane names a limiting resource. A cheap profile (short steps, fewer
// bisections) keeps this in unit-test budget; the published figure uses
// the full profile.
func TestFigLoadWallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	prof := loadwallProfile{stepDurNs: 100e6, bisect: 2, workers: 8}
	cases := []loadwallCase{
		{label: "SCAR 128B", strategy: client.StrategySCAR, valSize: 128, getFrac: 1,
			slowNIC: true, latObjNs: 4_000_000, startQPS: 2000, maxQPS: 64_000, clientHosts: 8},
		{label: "RPC 128B", strategy: client.StrategyRPC, valSize: 128, getFrac: 1,
			rpcTight: true, latObjNs: 4_000_000, startQPS: 1500, maxQPS: 64_000, clientHosts: 8},
	}
	r := figLoadWallWith(cases, prof)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The search runs against the wall clock; on a box busy with other
	// test packages (or under -race) scheduler starvation can fail even
	// the floor step twice. One whole-row retry keeps the test about the
	// harness's shape, not the CI machine's load average.
	for i, row := range r.Rows {
		if len(row.Cols) > 0 && row.Cols[0].Value <= 0 {
			retry := figLoadWallWith(cases[i:i+1], prof)
			if len(retry.Rows) == 1 {
				r.Rows[i] = retry.Rows[0]
			}
		}
	}
	for _, row := range r.Rows {
		if len(row.Cols) != 5 {
			t.Fatalf("%s: cols = %d, want 5", row.Label, len(row.Cols))
		}
		knee := row.Cols[0]
		if knee.Name != "knee" || knee.Unit != "qps" {
			t.Fatalf("%s: first col = %+v, want knee/qps", row.Label, knee)
		}
		if knee.Value <= 0 {
			t.Errorf("%s: no sustainable load found (knee=%.0f)", row.Label, knee.Value)
		}
		if p50, p999 := row.Cols[1].Value, row.Cols[3].Value; p999 < p50 {
			t.Errorf("%s: p99.9 %.1fus < p50 %.1fus", row.Label, p999, p50)
		}
		if lim := row.Cols[4]; lim.Name != "limit" || lim.Text == "" || lim.Text == "none" {
			t.Errorf("%s: wall not named: %+v", row.Label, lim)
		}
	}
}

// TestFigHotKeyShape pins the hot-key adaptive-serving acceptance gate on
// the demonstrating pair (24K values, past the Fig 20 steering crossover):
// adaptive GET p99.9 must be at most half the fixed-SCAR baseline's, every
// row must report zero lost acked writes, the near-cache and promotion
// machinery must actually engage on adaptive rows, and steering must fire
// only past the crossover. The 4K pair's baseline tail is collision-driven
// and not reliably present, so the latency gate anchors on 24K.
func TestFigHotKeyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure run")
	}
	r := FigHotKey()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	col := func(row Row, name string) float64 {
		for _, c := range row.Cols {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("%s: no column %q", row.Label, name)
		return 0
	}
	for _, row := range r.Rows {
		if lost := col(row, "lost"); lost != 0 {
			t.Errorf("%s: %v lost acked writes", row.Label, lost)
		}
		adaptive := strings.HasPrefix(row.Label, "adaptive")
		if adaptive {
			if col(row, "nearhit%") <= 0 {
				t.Errorf("%s: near-cache never served", row.Label)
			}
			if col(row, "promoted") <= 0 {
				t.Errorf("%s: no keys promoted", row.Label)
			}
		} else {
			if col(row, "nearhit%") != 0 || col(row, "steered") != 0 {
				t.Errorf("%s: fixed row used adaptive machinery: %+v", row.Label, row.Cols)
			}
		}
	}
	if v := col(r.Rows[1], "steered"); v != 0 {
		t.Errorf("adaptive-4K steered %v reads below the crossover", v)
	}
	if v := col(r.Rows[3], "steered"); v <= 0 {
		t.Error("adaptive-24K never steered past the crossover")
	}
	// The latency gate, with one whole-pair retry: the baseline tail is a
	// real collision phenomenon, so a quiet machine-load fluke on a single
	// rep should not fail the shape test.
	gate := func(fixed, adaptive Row) bool {
		return col(adaptive, "p99.9") <= 0.5*col(fixed, "p99.9")
	}
	if !gate(r.Rows[2], r.Rows[3]) {
		retry := FigHotKey()
		if !gate(retry.Rows[2], retry.Rows[3]) {
			t.Errorf("adaptive-24K p99.9 %vus not <= 0.5x fixed %vus (retry: %vus vs %vus)",
				col(r.Rows[3], "p99.9"), col(r.Rows[2], "p99.9"),
				col(retry.Rows[3], "p99.9"), col(retry.Rows[2], "p99.9"))
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/pony"
	"cliquemap/internal/stats"
)

// Fig12Incast regenerates Figure 12: SCAR versus 2×R when values are large
// (64KB) relative to NIC speed, with and without competing load on the
// client host. SCAR solicits three full copies of the datum (≈195KB/op),
// 2×R one copy plus three 1KB buckets (≈67KB/op), so SCAR's single-RTT
// advantage inverts once the client downlink becomes the bottleneck.
func Fig12Incast() Result {
	const (
		valSize = 64 << 10
		ops     = 250
	)
	run := func(strat client.Strategy, clientLoad bool) float64 {
		c := mustCell(cell.Options{
			Shards: 3, Mode: config.R32, Transport: cell.TransportPony,
			Backend: smallBackend(),
		})
		cl := c.NewClient(client.Options{Strategy: strat})
		keys := preload(cl, 4, valSize)
		if clientLoad {
			// Competing demand through the client's own NIC exacerbates
			// the incast condition (§7.2.2).
			clientHost := 4 // shards 3 + spare 0 ⇒ first client host is 3... resolved below
			_ = clientHost
			c.SetClientLoad(c.Fabric.NumHosts()-1, 0.6)
		}
		var hist stats.Histogram
		// Pace ops so each GET's latency reflects its own response incast
		// (three simultaneous 64KB copies) rather than cross-op backlog.
		driveGets(cl, keys, ops, time.Millisecond, &hist)
		return float64(hist.Percentile(50)) / 1000
	}

	res := Result{
		Name:  "fig12",
		Title: "SCAR vs 2xR median GET latency, 64KB values (us)",
		Notes: "SCAR transfers ~195KB/op (3 values + 3 buckets) vs 2xR's ~67KB; deploy SCAR when values/batches are small relative to NIC speed (§7.2.2)",
	}
	for _, load := range []bool{false, true} {
		label := "no-load"
		if load {
			label = "client-loaded"
		}
		res.Rows = append(res.Rows,
			Row{Label: "2xR " + label, Cols: []Col{{Name: "p50", Value: run(client.Strategy2xR, load), Unit: "us"}}},
			Row{Label: "SCAR " + label, Cols: []Col{{Name: "p50", Value: run(client.StrategySCAR, load), Unit: "us"}}},
		)
	}
	return res
}

// rampCell builds the §7.2.4 deployment in miniature: an R=1 cell whose
// engine model is scaled so the achievable single-process op rates sweep
// the same utilization range the 950-host testbed swept.
func rampCell(tp cell.Transport) *cell.Cell {
	return mustCell(cell.Options{
		Shards: 5, Mode: config.R1, Transport: tp,
		ClientHosts: 2,
		Backend:     smallBackend(),
		// Inflate engine service cost and lower the scale-out threshold so
		// single-process op rates sweep the same utilization range 800K
		// ops/s/backend swept in the paper's testbed. The thresholds are
		// calibrated to the NIC's windowed op-rate estimate: a single
		// sequential driver reaches a few thousand ops/s per serving NIC,
		// so the ramp's top steps sit a few percent of an engine-second
		// per second above these marks.
		Pony:    pony.CostModel{EngineServiceNs: 40000, ScanPerEntryNs: 18, PerKBNs: 42, MsgWakeupNs: 1500},
		PonyEng: pony.EngineConfig{MaxEngines: 4, ScaleOutAt: 0.05, ScaleInAt: 0.01},
	})
}

// rampStep drives lookups at a target rate and samples percentiles.
func rampStep(cl *client.Client, keys [][]byte, rate float64, wall time.Duration) *stats.Histogram {
	var hist stats.Histogram
	ops := int(rate * wall.Seconds())
	if ops < 50 {
		ops = 50
	}
	pace := time.Duration(0)
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	driveGets(cl, keys, ops, pace, &hist)
	return &hist
}

// Fig15PonyRamp regenerates Figure 15: GET latency percentiles and Pony
// Express engine scale-out as load ramps. Backend (co-tenant) hosts scale
// out first; client hosts follow at higher load; the client-side scale-out
// reduces tails even as load keeps rising.
func Fig15PonyRamp() Result {
	c := rampCell(cell.TransportPony)
	cl := c.NewClient(client.Options{Strategy: client.StrategySCAR})
	keys := preload(cl, 100, 4096)

	res := Result{
		Name:  "fig15",
		Title: "Pony Express load ramp: latency percentiles and engine scale-out",
		Notes: "engines per host: backends (co-tenant) scale out before client-only hosts (§7.2.4)",
	}
	for _, rate := range []float64{500, 2000, 8000, 0 /* max */} {
		hist := rampStep(cl, keys, rate, 600*time.Millisecond)
		engines := c.PonyEngines()
		var sum int
		for _, e := range engines {
			sum += e
		}
		backendEng := float64(sum) / float64(len(engines))
		label := fmt.Sprintf("%gops/s", rate)
		if rate == 0 {
			label = "max"
		}
		res.Rows = append(res.Rows, Row{
			Label: label,
			Cols: append(latCols(hist, 50, 90, 99),
				Col{Name: "backend_eng", Value: backendEng, Unit: ""},
			),
		})
	}
	return res
}

// oneRMARamp shares the ramp harness for Figures 16 and 17.
func oneRMARamp() (hwRows, getRows []Row) {
	c := rampCell(cell.Transport1RMA)
	cl := c.NewClient(client.Options{Strategy: client.Strategy2xR})
	keys := preload(cl, 100, 4096)

	for _, rate := range []float64{200, 2000, 10000, 0} {
		c.HWHist.Reset()
		hist := rampStep(cl, keys, rate, 600*time.Millisecond)
		label := fmt.Sprintf("%gops/s", rate)
		if rate == 0 {
			label = "max"
		}
		hwRows = append(hwRows, Row{
			Label: label,
			Cols: []Col{
				{Name: "hw_p50", Value: float64(c.HWHist.Percentile(50)) / 1000, Unit: "us"},
				{Name: "hw_p99", Value: float64(c.HWHist.Percentile(99)) / 1000, Unit: "us"},
				{Name: "hw_p99.9", Value: float64(c.HWHist.Percentile(99.9)) / 1000, Unit: "us"},
			},
		})
		getRows = append(getRows, Row{Label: label, Cols: latCols(hist, 50, 90, 99)})
	}
	return hwRows, getRows
}

var oneRMACache struct {
	hw, get []Row
	done    bool
}

func oneRMARows() ([]Row, []Row) {
	if !oneRMACache.done {
		oneRMACache.hw, oneRMACache.get = oneRMARamp()
		oneRMACache.done = true
	}
	return oneRMACache.hw, oneRMACache.get
}

// Fig16OneRMAHW regenerates Figure 16: 1RMA command-executor (fabric +
// PCIe) timestamps during the ramp — hardware latency rises only
// marginally with load.
func Fig16OneRMAHW() Result {
	hw, _ := oneRMARows()
	return Result{
		Name:  "fig16",
		Title: "1RMA ramp: fabric+PCIe hardware timestamps",
		Notes: "all-hardware serving path: latency rises only marginally with load (§7.2.4)",
		Rows:  hw,
	}
}

// Fig17OneRMAGet regenerates Figure 17: end-to-end 1RMA GET latency —
// dominated by client CPU, with the highest latency at the lowest load
// (C-state wake penalties), disappearing by a few hundred Kops.
func Fig17OneRMAGet() Result {
	_, get := oneRMARows()
	return Result{
		Name:  "fig17",
		Title: "1RMA ramp: end-to-end GET latencies",
		Notes: "highest latency at lowest load: power-saving C-state transitions when idle (§7.2.4)",
		Rows:  get,
	}
}

package experiments

import (
	"fmt"
	"time"

	"cliquemap/internal/core/client"
	"cliquemap/internal/stats"
	"cliquemap/internal/workload"
)

// produceWorkloadWeek drives a compressed "week" of traffic against a cell
// and samples latency percentiles and op rates per synthetic day. Shared
// by the Ads (Figure 8) and Geo (Figure 9) reproductions.
func produceWorkloadWeek(name, title string, diurnal workload.Diurnal, setWave workload.Wave, sizes *workload.SizeDist, batches *workload.BatchDist, backfill bool) Result {
	const (
		days     = 7
		dayWall  = 700 * time.Millisecond // one compressed day
		keySpace = 600
		baseGets = 220 // batched lookups per day at peak
	)
	c := std32()
	cl := c.NewClient(client.Options{Strategy: client.StrategySCAR, TouchBatch: 64})
	kg := workload.NewZipfKeys(keySpace, 1.1, 7)

	// Backfill the corpus.
	for i := uint64(0); i < keySpace; i++ {
		cl.Set(ctx, []byte(workload.Key(i)), workload.ValueGen(i, sizes.Next()))
	}

	res := Result{Name: name, Title: title}
	writer := c.NewClient(client.Options{})
	start := time.Now()
	for day := 0; day < days; day++ {
		var getHist stats.Histogram
		gets, sets, backfills := 0, 0, 0
		dayStart := time.Now()
		elapsedAtDay := time.Duration(day) * 24 * time.Hour
		// Sample a different phase of the diurnal cycle each row so the
		// 7 rows trace the swing the paper's week-long plot shows.
		rate := diurnal.Rate(time.Duration(day) * 4 * time.Hour)
		nBatches := int(float64(baseGets) * rate / diurnal.Base)
		if nBatches < 10 {
			nBatches = 10
		}
		for i := 0; i < nBatches; i++ {
			// Batched GET (§7.1: fetches are highly batched).
			bs := batches.Next()
			keys := make([][]byte, 0, bs)
			for j := 0; j < bs; j++ {
				keys = append(keys, []byte(workload.Key(kg.Next())))
			}
			_, _, tr, err := cl.GetBatch(ctx, keys)
			if err == nil {
				getHist.Record(tr.Ns)
				gets += bs
			}
			// Interleaved SETs per the wave (writes + backfill bursts).
			w := setWave.Rate(elapsedAtDay)
			nSets := int(w / setWave.Base)
			if nSets < 1 {
				nSets = 1
			}
			if i%4 == 0 {
				for s := 0; s < nSets; s++ {
					k := kg.Next()
					writer.Set(ctx, []byte(workload.Key(k)), workload.ValueGen(k, sizes.Next()))
					// During a backfill burst the steady write stream
					// continues underneath (Figure 8 plots both).
					if backfill && nSets > 1 && s > 0 {
						backfills++
					} else {
						sets++
					}
				}
			}
		}
		wall := time.Since(dayStart).Seconds()
		row := Row{
			Label: fmt.Sprintf("day%d", day+1),
			// The rates divide by wall time, so they swing with machine
			// load across interleaved reps (±16% observed); Noisy keeps
			// benchdiff from gating on them.
			Cols: append(latCols(&getHist, 50, 90, 99, 99.9),
				Col{Name: "get_rate", Value: float64(gets) / wall, Unit: "ops/s", Noisy: true},
				Col{Name: "set_rate", Value: float64(sets) / wall, Unit: "ops/s", Noisy: true},
			),
		}
		if backfill {
			row.Cols = append(row.Cols, Col{Name: "backfill", Value: float64(backfills) / wall, Unit: "ops/s", Noisy: true})
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = fmt.Sprintf("7 compressed days in %.1fs wall; batch latencies include response incast", time.Since(start).Seconds())
	return res
}

// Fig8Ads regenerates Figure 8: the Ads serving week — read-dominated,
// heavily batched GETs with a steady write trickle plus backfill waves.
func Fig8Ads() Result {
	return produceWorkloadWeek(
		"fig8",
		"Ads workload: latency percentiles, GET rate, SET (writes) and SET (backfill) rates",
		workload.Diurnal{Base: 1, PeakRatio: 1}, // Ads GETs are not strongly diurnal
		workload.Wave{Base: 1, Burst: 5, Period: 48 * time.Hour, Duty: 0.25},
		workload.AdsSizes(1),
		workload.AdsBatches(2),
		true,
	)
}

// Fig9Geo regenerates Figure 9: the Geo week — strongly diurnal GETs (3×
// swing) over a steady model-update SET stream.
func Fig9Geo() Result {
	return produceWorkloadWeek(
		"fig9",
		"Geo workload: diurnal GETs (3x swing) with steady update SETs",
		workload.Diurnal{Base: 1.5, PeakRatio: 3, Day: 24 * time.Hour},
		workload.Wave{Base: 1},
		workload.GeoSizes(3),
		workload.GeoBatches(4),
		false,
	)
}

// Fig10SizeCDF regenerates Figure 10: the Ads and Geo object-size CDFs.
func Fig10SizeCDF() Result {
	points := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	ads := workload.AdsSizes(11).CDF(points, 40000)
	geo := workload.GeoSizes(12).CDF(points, 40000)
	res := Result{
		Name:  "fig10",
		Title: "Ads and Geo object size CDF",
		Notes: "objects are typically at most a few KB with a tail of larger objects (§7.1)",
	}
	for i, p := range points {
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%dB", p),
			Cols: []Col{
				{Name: "ads_cdf", Value: ads[i]},
				{Name: "geo_cdf", Value: geo[i]},
			},
		})
	}
	return res
}

package experiments

import (
	"context"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/shim"
	"cliquemap/internal/stats"
)

// clientStore adapts the CliqueMap client to the shim's Store interface —
// the primary client library living inside the shim subprocess.
type clientStore struct{ cl *client.Client }

func (s clientStore) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	return s.cl.Get(ctx, key)
}
func (s clientStore) Set(ctx context.Context, key, value []byte) error {
	return s.cl.Set(ctx, key, value)
}
func (s clientStore) Erase(ctx context.Context, key []byte) error { return s.cl.Erase(ctx, key) }

// Fig6Languages regenerates Figure 6: GET op rate (a), CPU-µs/op (b), and
// median op latency (c) by client language. cpp is the native client;
// java/go/py run through the real pipe shim with calibrated per-language
// costs (§6.2: 64B objects, random keys).
func Fig6Languages() Result {
	const (
		keys = 300
		ops  = 1500
	)
	res := Result{
		Name:  "fig6",
		Title: "Performance by client language (64B objects)",
		Notes: "cpp native; others via subprocess shim over OS pipes (§6.2)",
	}

	for _, prof := range shim.Profiles() {
		c := std32()
		cl := c.NewClient(client.Options{Strategy: client.StrategySCAR})
		kk := preload(cl, keys, 64)

		var hist stats.Histogram
		var cpuNs float64

		if !prof.PipeHop {
			// Native path: the client library directly.
			for i := 0; i < ops; i++ {
				_, _, tr, err := cl.GetTraced(ctx, kk[i%len(kk)])
				if err != nil {
					continue
				}
				hist.Record(tr.Ns)
			}
			cpuNs = c.Acct.PerOpNanos("client")
		} else {
			ip, err := shim.NewInProcess(ctx, clientStore{cl: cl}, prof, c.Acct)
			if err != nil {
				panic(err)
			}
			for i := 0; i < ops; i++ {
				_, _, shimNs, gerr := ip.Client.Get(kk[i%len(kk)])
				if gerr != nil {
					continue
				}
				// Op latency = native op latency + the shim hop.
				hist.Record(cl.M.GetLatency.Percentile(50) + shimNs)
			}
			ip.Close()
			cpuNs = c.Acct.PerOpNanos("client") + c.Acct.PerOpNanos("shim-"+prof.Name)
		}

		// Throughput is CPU-bound per client: ops/sec = 1e9 / CPU-ns.
		rate := 0.0
		if cpuNs > 0 {
			rate = 1e9 / cpuNs
		}
		res.Rows = append(res.Rows, Row{
			Label: prof.Name,
			Cols: []Col{
				{Name: "op_rate", Value: rate, Unit: "ops/s", Noisy: true},
				{Name: "cpu/op", Value: cpuNs / 1000, Unit: "us"},
				{Name: "p50_lat", Value: float64(hist.Percentile(50)) / 1000, Unit: "us"},
			},
		})
	}
	return res
}

// Fig7LookupCPU regenerates Figure 7: CliqueMap-client and Pony Express
// CPU per GET under 2×R, SCAR, and two-sided messaging. SCAR roughly
// halves pony CPU versus 2×R; MSG's thread wakeups dwarf both.
func Fig7LookupCPU() Result {
	const (
		keys = 200
		ops  = 2000
	)
	res := Result{
		Name:  "fig7",
		Title: "Client and Pony Express CPU efficiency by lookup strategy (CPU-ns/op)",
	}
	for _, strat := range []client.Strategy{client.Strategy2xR, client.StrategySCAR, client.StrategyMSG} {
		c := mustCell(cell.Options{
			Shards: 3, Mode: config.R1, // single replica isolates per-op cost
			Transport: cell.TransportPony,
			Backend:   smallBackend(),
		})
		cl := c.NewClient(client.Options{Strategy: strat})
		kk := preload(cl, keys, 64)
		// Per-op accounting: divide total CPU by completed GETs.
		startClient := c.Acct.TotalNanos("client")
		startPony := c.Acct.TotalNanos("pony")
		done := 0
		for i := 0; i < ops; i++ {
			if _, _, err := cl.Get(ctx, kk[i%len(kk)]); err == nil {
				done++
			}
		}
		if done == 0 {
			done = 1
		}
		clientNs := float64(c.Acct.TotalNanos("client")-startClient) / float64(done)
		ponyNs := float64(c.Acct.TotalNanos("pony")-startPony) / float64(done)
		res.Rows = append(res.Rows, Row{
			Label: strat.String(),
			Cols: []Col{
				{Name: "client", Value: clientNs, Unit: "ns"},
				{Name: "pony", Value: ponyNs, Unit: "ns"},
			},
		})
	}
	return res
}

package experiments

// FigHotKey — hot-key adaptive serving under a skewed workload. A Zipf
// s=1.2 GET storm (plus a writer churning the hottest keys) runs twice
// against identical cells: once with fixed SCAR lookups, once with the
// full adaptive loop — server-side promotion piggybacked on Touch acks,
// client near-cache with index-only quorum revalidation, hot-key data-
// read spreading, and Fig 20 value-size steering to RPC. The fixed
// client pays every hot GET's full data bytes on the servers' NICs; the
// adaptive client serves most hot GETs after a bucket-sized revalidation
// round, so the queueing tail collapses. The writer's acked mutations
// are the safety oracle: every key must read back at its last acked
// sequence after the storm (the near-cache must never hide or resurrect
// a write).

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"cliquemap/internal/core/cell"
	"cliquemap/internal/core/client"
	"cliquemap/internal/core/config"
	"cliquemap/internal/stats"
	"cliquemap/internal/workload"
)

// hotkeyCase is one fixed-vs-adaptive pairing at a value size.
type hotkeyCase struct {
	label    string
	valSize  int
	nKeys    int
	adaptive bool
}

const (
	hotkeyWorkers   = 12
	hotkeyOpsPerWkr = 2500
	hotkeyHotSet    = 8 // keys the writer churns (the Zipf head)
)

// FigHotKey regenerates the hot-key adaptive-serving comparison.
func FigHotKey() Result {
	res := Result{
		Name:  "hotkey",
		Title: "Hot-key adaptive serving: Zipf s=1.2, fixed SCAR vs near-cache+steer+spread",
		Notes: "lost must be 0; steer engages only past the Fig 20 crossover (24K rows)",
	}
	for _, hc := range []hotkeyCase{
		{label: "scar-4K", valSize: 4 << 10, nKeys: 512},
		{label: "adaptive-4K", valSize: 4 << 10, nKeys: 512, adaptive: true},
		{label: "scar-24K", valSize: 24 << 10, nKeys: 192},
		{label: "adaptive-24K", valSize: 24 << 10, nKeys: 192, adaptive: true},
	} {
		res.Rows = append(res.Rows, runHotkeyCase(hc))
	}
	return res
}

func runHotkeyCase(hc hotkeyCase) Row {
	bopt := smallBackend()
	bopt.DataBytes = 16 << 20
	bopt.DataMaxBytes = 64 << 20
	c := mustCell(cell.Options{
		Shards: 3, Spares: 1, Mode: config.R32,
		Transport:   cell.TransportPony,
		ClientHosts: hotkeyWorkers,
		Backend:     bopt,
	})
	keys := preload(c.NewClient(client.Options{}), hc.nKeys, hc.valSize)

	copt := client.Options{Strategy: client.StrategySCAR, TouchBatch: 64}
	if hc.adaptive {
		copt.NearCacheEntries = 128
		copt.HotSteer = true
		copt.HotSpread = true
	}
	clients := make([]*client.Client, hotkeyWorkers)
	for i := range clients {
		clients[i] = c.NewClient(copt)
	}

	// Precompute the Zipf access sequence so the skew is identical across
	// the fixed and adaptive runs (ZipfKeys is not concurrency-safe).
	totalOps := hotkeyWorkers * hotkeyOpsPerWkr
	zg := workload.NewZipfKeys(uint64(hc.nKeys), 1.2, 11)
	seq := make([]uint32, totalOps)
	for i := range seq {
		seq[i] = uint32(zg.Next())
	}

	// Writes ride worker 0's closed loop: the substrate models closed-loop
	// clients, so a free-running writer goroutine would starve behind the
	// GET storm instead of interleaving with it. Worker 0 owns the hot set
	// sequentially, so "last acked sequence" is exact per key.
	wcl := c.NewClient(client.Options{})
	acked := make([]uint64, hotkeyHotSet)
	var wseq uint64

	var hist stats.Histogram
	var histMu sync.Mutex
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < hotkeyWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			var local stats.Histogram
			for {
				i := next.Add(1) - 1
				if i >= uint64(totalOps) {
					break
				}
				if w == 0 && i%4 == 0 {
					wseq++
					k := int(wseq) % hotkeyHotSet
					if err := wcl.Set(ctx, keys[k], hotkeyVal(k, wseq, hc.valSize)); err == nil {
						acked[k] = wseq
					}
				}
				_, _, tr, err := cl.GetTraced(ctx, keys[seq[i]])
				if err == nil {
					local.Record(tr.Ns)
				}
			}
			histMu.Lock()
			hist.Merge(&local)
			histMu.Unlock()
		}(w)
	}
	wg.Wait()

	// Safety oracle: with the writer quiet, every hot key must read back
	// at (at least) its last acked sequence — an older value is a lost
	// acked write, a value for an erased/never-written seq is a phantom.
	lost := 0
	check := c.NewClient(client.Options{})
	for k := 0; k < hotkeyHotSet; k++ {
		if acked[k] == 0 {
			continue
		}
		v, ok, err := check.Get(ctx, keys[k])
		if err != nil || !ok || !bytes.HasPrefix(v, hotkeyValPrefix(k, acked[k])) {
			lost++
		}
	}

	var gets, nearHits, steered, spread uint64
	for _, cl := range clients {
		gets += cl.M.Gets.Value()
		nearHits += cl.M.NearHits.Value()
		steered += cl.M.SteerRPC.Value()
		spread += cl.M.SpreadReads.Value()
	}
	promoted := 0
	for _, b := range c.Nodes() {
		if _, hot := b.HotSnapshot(); len(hot) > promoted {
			promoted = len(hot)
		}
	}

	// Scheduling-sensitive columns are tagged noisy: the fixed-SCAR tails
	// are torn-retry collision artifacts (µs or tens of ms depending on
	// who wins the race), and near-hit/steer/spread counts move with
	// promotion timing. benchdiff reports their drift informationally.
	// `promoted` and `lost` stay gated: the promoted-set size is
	// deterministic and lost must be exactly zero.
	cols := latCols(&hist, 50, 99, 99.9)
	for i := range cols {
		cols[i].Noisy = true
	}
	cols = append(cols,
		Col{Name: "nearhit%", Value: 100 * float64(nearHits) / float64(gets), Unit: "%", Noisy: true},
		Col{Name: "promoted", Value: float64(promoted)},
		Col{Name: "steered", Value: float64(steered), Noisy: true},
		Col{Name: "spread", Value: float64(spread), Noisy: true},
		Col{Name: "lost", Value: float64(lost)},
	)
	return Row{Label: hc.label, Cols: cols}
}

// hotkeyVal builds a hot-set value: parseable sequence header, padded to
// size with deterministic filler.
func hotkeyVal(k int, seq uint64, size int) []byte {
	v := workload.ValueGen(uint64(k)*1e9+seq, size)
	copy(v, hotkeyValPrefix(k, seq))
	return v
}

func hotkeyValPrefix(k int, seq uint64) []byte {
	return []byte(fmt.Sprintf("hk%d.s%d|", k, seq))
}

package workload

import (
	"math"
	"testing"
	"time"
)

func TestUniformKeysInRange(t *testing.T) {
	g := NewUniformKeys(1000, 1)
	for i := 0; i < 10000; i++ {
		if k := g.Next(); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if g.N() != 1000 {
		t.Errorf("N = %d", g.N())
	}
}

func TestUniformKeysCoverage(t *testing.T) {
	g := NewUniformKeys(10, 2)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[g.Next()] = true
	}
	if len(seen) != 10 {
		t.Errorf("covered %d/10 keys", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipfKeys(100000, 1.2, 3)
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Zipf: key 0 must be far more popular than uniform share.
	if counts[0] < n/1000 {
		t.Errorf("hottest key hit %d times of %d; not skewed", counts[0], n)
	}
	if g.N() != 100000 {
		t.Errorf("N = %d", g.N())
	}
}

func TestZipfBadSkewClamped(t *testing.T) {
	// s <= 1 is invalid for rand.Zipf; constructor must clamp, not panic.
	g := NewZipfKeys(100, 0.5, 1)
	for i := 0; i < 100; i++ {
		if k := g.Next(); k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestKeyFormatting(t *testing.T) {
	if Key(0) == Key(1) {
		t.Error("distinct indices produced identical keys")
	}
	if len(Key(42)) != len(Key(1<<40)) {
		t.Error("keys not fixed width")
	}
}

func TestSizeDistBounds(t *testing.T) {
	d := NewSizeDist(1000, 2.0, 100, 5000, 1)
	for i := 0; i < 10000; i++ {
		v := d.Next()
		if v < 100 || v > 5000 {
			t.Fatalf("size %d out of [100,5000]", v)
		}
	}
}

// TestFig10Shapes checks the qualitative claims behind Figure 10: objects
// are typically at most a few KB, Geo skews smaller than Ads, and both
// have tails of larger objects.
func TestFig10Shapes(t *testing.T) {
	ads, geo := AdsSizes(1), GeoSizes(1)
	points := []int{1024, 4096, 1 << 20}
	adsCDF := ads.CDF(points, 20000)
	geoCDF := geo.CDF(points, 20000)

	if adsCDF[1] < 0.80 {
		t.Errorf("Ads P(size<=4KB) = %.2f; paper: typically at most a few KB", adsCDF[1])
	}
	if geoCDF[0] < 0.90 {
		t.Errorf("Geo P(size<=1KB) = %.2f; Geo stores compact records", geoCDF[0])
	}
	if geoCDF[0] <= adsCDF[0] {
		t.Errorf("Geo (%.2f) should skew smaller than Ads (%.2f) at 1KB", geoCDF[0], adsCDF[0])
	}
	if adsCDF[0] > 0.95 {
		t.Errorf("Ads P(size<=1KB)=%.2f leaves no tail", adsCDF[0])
	}
	for _, cdf := range [][]float64{adsCDF, geoCDF} {
		for j := 1; j < len(cdf); j++ {
			if cdf[j] < cdf[j-1] {
				t.Error("CDF not monotone")
			}
		}
	}
}

func TestBatchDistTail(t *testing.T) {
	b := AdsBatches(1)
	var over30 int
	const n = 100000
	maxSeen := 0
	for i := 0; i < n; i++ {
		v := b.Next()
		if v < 1 || v > 300 {
			t.Fatalf("batch %d out of range", v)
		}
		if v >= 30 {
			over30++
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	// §7.1: batch sizes reach 30–300 in the 99.9th percentile tail.
	frac := float64(over30) / n
	if frac < 0.0005 || frac > 0.35 {
		t.Errorf("P(batch>=30) = %.4f; tail mis-shaped", frac)
	}
	if maxSeen < 50 {
		t.Errorf("max batch %d; tail should reach deep", maxSeen)
	}
}

func TestDiurnalSwing(t *testing.T) {
	d := Diurnal{Base: 300, PeakRatio: 3, Day: 24 * time.Hour}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i <= 96; i++ {
		r := d.Rate(time.Duration(i) * 15 * time.Minute)
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if hi/lo < 2.5 || hi/lo > 3.5 {
		t.Errorf("diurnal swing = %.2fx, want ~3x (Geo)", hi/lo)
	}
	if hi > 301 || lo < 99 {
		t.Errorf("range [%f,%f] outside expected", lo, hi)
	}
}

func TestDiurnalDegenerate(t *testing.T) {
	d := Diurnal{Base: 100}
	if d.Rate(time.Hour) != 100 {
		t.Error("zero-day diurnal must be flat")
	}
}

func TestWave(t *testing.T) {
	w := Wave{Base: 10, Burst: 90, Period: time.Hour, Duty: 0.25}
	if got := w.Rate(5 * time.Minute); got != 100 {
		t.Errorf("in-burst rate = %v", got)
	}
	if got := w.Rate(30 * time.Minute); got != 10 {
		t.Errorf("off-burst rate = %v", got)
	}
	flat := Wave{Base: 7}
	if flat.Rate(time.Minute) != 7 {
		t.Error("flat wave broken")
	}
}

func TestMixFraction(t *testing.T) {
	m := NewMix(0.95, 1)
	gets := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.NextIsGet() {
			gets++
		}
	}
	frac := float64(gets) / n
	if math.Abs(frac-0.95) > 0.01 {
		t.Errorf("GET fraction = %.3f, want 0.95", frac)
	}
}

func TestValueGenDeterministic(t *testing.T) {
	a := ValueGen(7, 128)
	b := ValueGen(7, 128)
	if string(a) != string(b) {
		t.Error("ValueGen not deterministic")
	}
	c := ValueGen(8, 128)
	if string(a) == string(c) {
		t.Error("different keys produced identical values")
	}
	if len(ValueGen(1, 0)) != 0 {
		t.Error("zero-size value")
	}
}

func BenchmarkZipfNext(b *testing.B) {
	g := NewZipfKeys(1<<20, 1.1, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkValueGen4KB(b *testing.B) {
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		ValueGen(uint64(i), 4096)
	}
}

// Package workload generates the synthetic traffic used throughout the
// evaluation, substituting for the production Ads and Geo traces of §7.1.
//
// What the figures actually depend on is reproduced: the object-size CDFs
// of Figure 10 (lognormal bodies, most values at most a few KB, a tail of
// larger objects), Ads' heavy GET batching with a background backfill SET
// wave (Figure 8), Geo's strongly diurnal GET rate over a steady update
// stream (Figure 9), plus the generic knobs the controlled experiments
// sweep: key popularity (uniform/zipf), value size, GET/SET mix, and batch
// size.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// KeyGen produces key indices in [0, N).
type KeyGen interface {
	Next() uint64
	N() uint64
}

// UniformKeys samples keys uniformly.
type UniformKeys struct {
	rng *rand.Rand
	n   uint64
}

// NewUniformKeys returns a uniform generator over n keys.
func NewUniformKeys(n uint64, seed int64) *UniformKeys {
	return &UniformKeys{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next implements KeyGen.
func (u *UniformKeys) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// N implements KeyGen.
func (u *UniformKeys) N() uint64 { return u.n }

// ZipfKeys samples keys with Zipfian popularity (s > 1).
type ZipfKeys struct {
	z *rand.Zipf
	n uint64
}

// NewZipfKeys returns a zipf generator over n keys with skew s (>1).
func NewZipfKeys(n uint64, s float64, seed int64) *ZipfKeys {
	if s <= 1 {
		s = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfKeys{z: rand.NewZipf(rng, s, 1, n-1), n: n}
}

// Next implements KeyGen.
func (z *ZipfKeys) Next() uint64 { return z.z.Uint64() }

// N implements KeyGen.
func (z *ZipfKeys) N() uint64 { return z.n }

// Key renders key index i as the canonical workload key string.
func Key(i uint64) string { return fmt.Sprintf("key-%016x", i) }

// SizeDist samples object sizes from a capped lognormal.
type SizeDist struct {
	rng   *rand.Rand
	mu    float64 // log-space mean
	sigma float64 // log-space stddev
	minSz int
	maxSz int
}

// NewSizeDist builds a lognormal size distribution with the given median
// and shape, clamped to [minSz, maxSz].
func NewSizeDist(median float64, sigma float64, minSz, maxSz int, seed int64) *SizeDist {
	return &SizeDist{
		rng: rand.New(rand.NewSource(seed)), mu: math.Log(median), sigma: sigma,
		minSz: minSz, maxSz: maxSz,
	}
}

// AdsSizes approximates the Ads curve of Figure 10: median ≈ 700B with a
// fat tail into the hundreds of KB.
func AdsSizes(seed int64) *SizeDist { return NewSizeDist(700, 1.5, 64, 512*1024, seed) }

// GeoSizes approximates the Geo curve of Figure 10: compact road-segment
// records, median ≈ 150B, rarely beyond a few KB.
func GeoSizes(seed int64) *SizeDist { return NewSizeDist(150, 0.9, 32, 64*1024, seed) }

// Next samples one object size in bytes.
func (s *SizeDist) Next() int {
	v := int(math.Exp(s.mu + s.sigma*s.rng.NormFloat64()))
	if v < s.minSz {
		v = s.minSz
	}
	if v > s.maxSz {
		v = s.maxSz
	}
	return v
}

// CDF evaluates the empirical CDF of the distribution by sampling — used
// to regenerate Figure 10.
func (s *SizeDist) CDF(points []int, samples int) []float64 {
	counts := make([]int, len(points))
	for i := 0; i < samples; i++ {
		v := s.Next()
		for j, p := range points {
			if v <= p {
				counts[j]++
			}
		}
	}
	out := make([]float64, len(points))
	for j := range points {
		out[j] = float64(counts[j]) / float64(samples)
	}
	return out
}

// BatchDist samples GET batch sizes: lognormal with the paper's Ads tail
// (99.9th percentile reaching 30–300 keys).
type BatchDist struct {
	rng   *rand.Rand
	mu    float64
	sigma float64
	maxB  int
}

// NewBatchDist builds a batch-size distribution with the given median.
func NewBatchDist(median float64, sigma float64, maxB int, seed int64) *BatchDist {
	return &BatchDist{rng: rand.New(rand.NewSource(seed)), mu: math.Log(median), sigma: sigma, maxB: maxB}
}

// AdsBatches matches §7.1: highly batched fetches, tens typical, 30–300 at
// the 99.9th percentile.
func AdsBatches(seed int64) *BatchDist { return NewBatchDist(12, 1.1, 300, seed) }

// GeoBatches matches §7.1: "usually consisting of tens of segments".
func GeoBatches(seed int64) *BatchDist { return NewBatchDist(20, 0.7, 150, seed) }

// Next samples one batch size (≥1).
func (b *BatchDist) Next() int {
	v := int(math.Exp(b.mu + b.sigma*b.rng.NormFloat64()))
	if v < 1 {
		v = 1
	}
	if v > b.maxB {
		v = b.maxB
	}
	return v
}

// Diurnal modulates a base rate over a synthetic day: rate(t) swings
// between base/peakRatio and base, sinusoidally. Geo's GET traffic shows a
// 3× swing (§7.1).
type Diurnal struct {
	Base      float64       // peak rate
	PeakRatio float64       // peak/trough ratio (3 for Geo)
	Day       time.Duration // length of one synthetic day
	Phase     float64       // fraction of a day to offset
}

// Rate returns the modulated rate at elapsed time t.
func (d Diurnal) Rate(t time.Duration) float64 {
	if d.Day <= 0 || d.PeakRatio <= 1 {
		return d.Base
	}
	// Sinusoid between trough and peak.
	trough := d.Base / d.PeakRatio
	mid := (d.Base + trough) / 2
	amp := (d.Base - trough) / 2
	x := 2 * math.Pi * (float64(t)/float64(d.Day) + d.Phase)
	return mid + amp*math.Sin(x)
}

// Wave models Ads' backfill SETs (Figure 8): a baseline write rate plus
// periodic bursts when the corpus is re-ingested.
type Wave struct {
	Base   float64       // steady rate
	Burst  float64       // additional rate during a burst
	Period time.Duration // burst cadence
	Duty   float64       // fraction of each period spent bursting
}

// Rate returns the wave's rate at elapsed time t.
func (w Wave) Rate(t time.Duration) float64 {
	if w.Period <= 0 || w.Duty <= 0 {
		return w.Base
	}
	frac := math.Mod(float64(t)/float64(w.Period), 1)
	if frac < w.Duty {
		return w.Base + w.Burst
	}
	return w.Base
}

// Mix draws op kinds with a fixed GET fraction.
type Mix struct {
	rng     *rand.Rand
	getFrac float64
}

// NewMix returns a mix with the given GET probability.
func NewMix(getFrac float64, seed int64) *Mix {
	return &Mix{rng: rand.New(rand.NewSource(seed)), getFrac: getFrac}
}

// NextIsGet reports whether the next op is a GET.
func (m *Mix) NextIsGet() bool { return m.rng.Float64() < m.getFrac }

// ValueGen deterministically materializes value bytes for a key index and
// size, so any replica can regenerate and verify payloads.
func ValueGen(keyIdx uint64, size int) []byte {
	out := make([]byte, size)
	x := keyIdx*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// Package nic defines the one-sided operation surface CliqueMap clients
// hold toward each backend, independent of the underlying RMA transport.
//
// The paper stresses that datacenters are heterogeneous (§6.3, §7.2.4):
// CliqueMap runs 2×R fetches over any transport (Pony Express, 1RMA,
// RDMA), uses the custom SCAR op where the software NIC offers it, and
// falls back to RPC where no RMA protocol applies. This interface is the
// seam that makes the lookup strategy swappable.
package nic

import (
	"errors"

	"cliquemap/internal/fabric"
	"cliquemap/internal/hashring"
	"cliquemap/internal/rmem"
)

var (
	// ErrNotSupported reports that the transport lacks the requested op
	// (e.g. SCAR on 1RMA); callers fall back to 2×R.
	ErrNotSupported = errors.New("nic: operation not supported by transport")
	// ErrUnreachable reports that the target NIC is down (crashed backend
	// host); clients retry on other replicas.
	ErrUnreachable = errors.New("nic: target unreachable")
)

// ScarResult is the combined response of a Scan-and-Read (§6.3): the full
// Bucket plus, when the scan matched, the DataEntry bytes it pointed at.
type ScarResult struct {
	Bucket []byte // raw bucket bytes
	Data   []byte // raw DataEntry bytes; nil if the scan found no match
	Found  bool
}

// RMA is the per-target one-sided op surface. The `at` argument is the
// op's virtual start instant (fabric nanoseconds; 0 = now): parallel legs
// of one logical op pass a common value so their responses contend for the
// initiator's downlink in the latency model.
type RMA interface {
	// Read performs a one-sided read of length bytes at off in window win
	// on the target, returning the bytes and the op's modelled latency.
	Read(at uint64, win rmem.WindowID, off, length int) ([]byte, fabric.OpTrace, error)

	// ScanAndRead executes the SCAR primitive: read the bucket at
	// [bucketOff, bucketOff+bucketLen) in idxWin, scan it NIC-side for
	// hash, follow the matching IndexEntry's pointer into the data region,
	// and return bucket plus data in a single round trip.
	ScanAndRead(at uint64, idxWin rmem.WindowID, bucketOff, bucketLen int, hash hashring.KeyHash, ways int) (ScarResult, fabric.OpTrace, error)

	// SupportsScar reports whether ScanAndRead is available.
	SupportsScar() bool
}

// Package trace is CliqueMap's always-on, low-overhead operation tracing
// plane. Every client op carries a span context (op id, kind, transport,
// attempt #) through context.Context and the RPC wire frames; each layer
// it crosses — client quorum assembly, the RPC framework, backend stripe
// locks, the Pony Express / 1RMA NIC models — attributes its share of the
// latency as fabric.Spans riding on the op's fabric.OpTrace. Completed
// ops are recorded into a per-cell Tracer: per-kind × per-transport
// latency histograms, a fixed-size ring of recent ops, reservoir-sampled
// exemplars per kind, and a retained log of slow ops (latency above a
// rolling p99-derived threshold). The proto.MethodDebug RPC serializes a
// Tracer snapshot for remote inspection (cmstat -trace), and WriteProm
// renders it as Prometheus text exposition (cmcell -http).
package trace

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
)

// Span codes: the layer/event namespace for fabric.Span.Code. Codes are
// append-only; remote tooling receives them numerically and names them
// via CodeName.
const (
	SpanIndexFetch    uint16 = 1  // client: index-lookup phase (fastest leg); Arg = live legs
	SpanQuorumWait    uint16 = 2  // client: extra wait for the k-th quorum leg; Arg = k
	SpanDataRead      uint16 = 3  // client: dependent data fetch; Arg = shard
	SpanRetry         uint16 = 4  // client: a failed attempt; Arg = attempt #
	SpanRPCClient     uint16 = 5  // rpc: client-side framework CPU + fixed latency
	SpanRPCServer     uint16 = 6  // rpc: server-side framework + handler CPU
	SpanFabric        uint16 = 7  // fabric delivery leg; Arg = bytes
	SpanStripeWait    uint16 = 8  // backend: measured wall-ns wait on a contended stripe lock
	SpanEngineIssue   uint16 = 9  // NIC: initiating engine issue (service + queue)
	SpanEngineService uint16 = 10 // NIC: serving engine service (scan/read/payload); Arg = bytes
	SpanEngineRecv    uint16 = 11 // NIC: initiating engine receive
	SpanMsgWakeup     uint16 = 12 // pony MSG: server thread wakeup + handler
	SpanHWService     uint16 = 13 // 1rma: hardware fabric + PCIe command time
	SpanCStateWake    uint16 = 14 // 1rma: C-state wake penalty after idle
	SpanBackoff       uint16 = 15 // client: capped exponential backoff before a retry; Arg = attempt #
	SpanHedge         uint16 = 16 // client: hedged/failover data read on a backup replica; Arg = shard
	SpanTierRoute     uint16 = 17 // tier: one routing decision; Arg = tier-level attempt #
	SpanRingLookup    uint16 = 18 // tier: weighted-ring owner resolution; Arg = ring version (low 32 bits)
	SpanTierForward   uint16 = 19 // tier: op forwarded to a remote owner cell; Arg = owner cell index
	SpanFollowerHit   uint16 = 20 // tier: follower cache served inside the staleness bound; Arg = age µs
	SpanFollowerReval uint16 = 21 // tier: stale follower entry revalidated by owner version; Arg = 0 confirmed, 1 refreshed, 2 erased
	SpanRPCQueue      uint16 = 22 // rpc: modelled admission-queue wait at a loaded server; Arg = utilization ‰
)

// CodeName names a span code for display; unknown codes render
// numerically so old tools survive new codes.
func CodeName(c uint16) string {
	switch c {
	case SpanIndexFetch:
		return "index-fetch"
	case SpanQuorumWait:
		return "quorum-wait"
	case SpanDataRead:
		return "data-read"
	case SpanRetry:
		return "retry"
	case SpanRPCClient:
		return "rpc-client"
	case SpanRPCServer:
		return "rpc-server"
	case SpanFabric:
		return "fabric"
	case SpanStripeWait:
		return "stripe-wait"
	case SpanEngineIssue:
		return "engine-issue"
	case SpanEngineService:
		return "engine-service"
	case SpanEngineRecv:
		return "engine-recv"
	case SpanMsgWakeup:
		return "msg-wakeup"
	case SpanHWService:
		return "hw-service"
	case SpanCStateWake:
		return "cstate-wake"
	case SpanBackoff:
		return "backoff"
	case SpanHedge:
		return "hedge"
	case SpanTierRoute:
		return "tier-route"
	case SpanRingLookup:
		return "ring-lookup"
	case SpanTierForward:
		return "tier-forward"
	case SpanFollowerHit:
		return "follower-cache-hit"
	case SpanFollowerReval:
		return "follower-revalidate"
	case SpanRPCQueue:
		return "rpc-queue"
	}
	return fmt.Sprintf("span-%d", c)
}

// Kind classifies an operation.
type Kind uint8

const (
	KindGet Kind = iota
	KindSet
	KindErase
	KindCas
	KindOther
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "GET"
	case KindSet:
		return "SET"
	case KindErase:
		return "ERASE"
	case KindCas:
		return "CAS"
	}
	return "OTHER"
}

// KindOf parses a kind name (the inverse of String); unknown names map
// to KindOther.
func KindOf(s string) Kind {
	switch s {
	case "GET":
		return KindGet
	case "SET":
		return KindSet
	case "ERASE":
		return KindErase
	case "CAS":
		return KindCas
	}
	return KindOther
}

// Transport classifies the path an op took — the paper's lookup-strategy
// axis (Figure 7) plus the RPC mutation path.
type Transport uint8

const (
	Transport2xR Transport = iota
	TransportSCAR
	TransportMSG
	TransportRPC
	numTransports
)

// String names the transport as the paper does.
func (t Transport) String() string {
	switch t {
	case Transport2xR:
		return "2xR"
	case TransportSCAR:
		return "SCAR"
	case TransportMSG:
		return "MSG"
	}
	return "RPC"
}

// TransportOf parses a transport name; unknown names map to TransportRPC.
func TransportOf(s string) Transport {
	switch s {
	case "2xR":
		return Transport2xR
	case "SCAR":
		return TransportSCAR
	case "MSG":
		return TransportMSG
	}
	return TransportRPC
}

// SpanContext identifies one in-flight op as it crosses layers. The
// client creates one per op and carries it in the context; the TCP
// gateway reconstructs one from the wire frame's trace fields so remote
// ops stay attributable inside the cell.
type SpanContext struct {
	OpID    uint64
	Kind    Kind
	Attempt uint32
}

type ctxKey int

const (
	spanContextKey ctxKey = iota
	sinkKey
)

// NewContext attaches sc to ctx.
func NewContext(ctx context.Context, sc *SpanContext) context.Context {
	return context.WithValue(ctx, spanContextKey, sc)
}

// FromContext returns the span context attached to ctx, or nil.
func FromContext(ctx context.Context) *SpanContext {
	sc, _ := ctx.Value(spanContextKey).(*SpanContext)
	return sc
}

// SpanSink collects spans recorded by a handler goroutine on behalf of
// the RPC layer: the framework plants a sink in the handler's context,
// the backend deposits measured costs (stripe lock waits), and the
// framework folds them into the call's OpTrace. One goroutine writes at
// a time; the framework reads only after the handler returns.
type SpanSink struct {
	spans []fabric.Span
}

// Annotate deposits one span. Start offsets are resolved by the RPC
// layer when folding, so callers pass only code/arg/duration.
func (s *SpanSink) Annotate(code uint16, arg uint32, dur uint64) {
	s.spans = append(s.spans, fabric.Span{Code: code, Arg: arg, Dur: dur})
}

// Take returns the deposited spans.
func (s *SpanSink) Take() []fabric.Span { return s.spans }

var sinkPool = sync.Pool{New: func() any { return &SpanSink{} }}

// GetSink leases a sink from the shared pool.
func GetSink() *SpanSink { return sinkPool.Get().(*SpanSink) }

// PutSink returns a sink to the pool.
func PutSink(s *SpanSink) {
	s.spans = s.spans[:0]
	sinkPool.Put(s)
}

// WithSink attaches a sink to ctx for the handler side of a call.
func WithSink(ctx context.Context, s *SpanSink) context.Context {
	return context.WithValue(ctx, sinkKey, s)
}

// SinkFrom returns the sink attached to ctx, or nil.
func SinkFrom(ctx context.Context) *SpanSink {
	s, _ := ctx.Value(sinkKey).(*SpanSink)
	return s
}

// OpRecord is one completed operation as retained by the Tracer.
type OpRecord struct {
	ID        uint64
	Seq       uint64 // completion order within this tracer
	Kind      Kind
	Transport Transport
	Attempts  uint32
	Ns        uint64
	Bytes     uint64
	WallNs    int64 // unix ns at retention; stamped for slow ops only
	Spans     []fabric.Span
}

// Tracer sizing and promotion policy.
const (
	ringSize         = 512 // recent-op ring
	slowSize         = 64  // retained slow-op log
	exemplarsPerKind = 4   // reservoir size per op kind
	// thresholdEvery refreshes the rolling slow threshold every 2^12 ops.
	thresholdEvery = 1 << 12
	// SlowFactor scales the rolling p99 into the promotion threshold.
	SlowFactor = 2
	// MinSlowNs floors the promotion threshold so a healthy cell (modeled
	// GETs ~10µs, RPC mutations ~100µs) retains only genuine outliers.
	MinSlowNs = 1_000_000
)

// Tracer is a cell-wide op recorder. All methods are safe for concurrent
// use; Record is the hot path and costs one histogram insert plus one
// short critical section.
type Tracer struct {
	hists   [numKinds][numTransports]stats.Histogram
	overall stats.Histogram

	ids      atomic.Uint64
	seq      atomic.Uint64
	slowNs   atomic.Uint64 // rolling threshold; 0 until first refresh
	fixedNs  atomic.Uint64 // SetSlowThreshold override; 0 = rolling
	slowSeen atomic.Uint64

	mu        sync.Mutex
	ring      [ringSize]OpRecord
	slow      [slowSize]OpRecord
	slowN     uint64
	exemplars [numKinds][]OpRecord
	rng       uint64 // xorshift state for reservoir sampling

	// Hazard counters and per-replica health gauges are written off the op
	// hot path — hazards when the chaos plane injects (rare), health on
	// demotion/recovery transitions (rarer) — so a plain mutex-guarded map
	// is the right cost profile.
	auxMu   sync.Mutex
	hazards map[string]uint64
	health  map[string]ReplicaHealth
}

// ReplicaHealth is one backend's client-observed health gauge: a failure
// EWMA in [0,1] and whether the client currently demotes it from
// preferred-replica selection.
type ReplicaHealth struct {
	Addr    string
	Score   float64
	Demoted bool
}

// HazardCount is one hazard class's cumulative injection count.
type HazardCount struct {
	Name  string
	Count uint64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{rng: 0x9e3779b97f4a7c15}
}

// NextID allocates a fresh op id.
func (t *Tracer) NextID() uint64 { return t.ids.Add(1) }

// SetSlowThreshold pins the slow-op promotion threshold to ns; 0 restores
// the rolling p99-derived policy. Intended for tests and debugging.
func (t *Tracer) SetSlowThreshold(ns uint64) { t.fixedNs.Store(ns) }

// SlowThreshold returns the current promotion threshold.
func (t *Tracer) SlowThreshold() uint64 {
	if f := t.fixedNs.Load(); f != 0 {
		return f
	}
	if th := t.slowNs.Load(); th != 0 {
		return th
	}
	return MinSlowNs
}

// Ops returns the number of ops recorded.
func (t *Tracer) Ops() uint64 { return t.seq.Load() }

// SlowOpsSeen returns the cumulative count of promoted slow ops.
func (t *Tracer) SlowOpsSeen() uint64 { return t.slowSeen.Load() }

// Hist returns the live histogram for one kind/transport cell.
func (t *Tracer) Hist(k Kind, tp Transport) *stats.Histogram {
	return &t.hists[k][tp]
}

// Overall returns the live all-ops histogram.
func (t *Tracer) Overall() *stats.Histogram { return &t.overall }

// Record retains one completed op: its latency feeds the kind/transport
// and overall histograms, the op enters the recent ring and the kind's
// exemplar reservoir, and ops above the slow threshold are promoted to
// the retained slow log with a wall-clock stamp.
func (t *Tracer) Record(id uint64, kind Kind, transport Transport, attempts uint32, tr fabric.OpTrace) {
	if kind >= numKinds {
		kind = KindOther
	}
	if transport >= numTransports {
		transport = TransportRPC
	}
	t.hists[kind][transport].Record(tr.Ns)
	t.overall.Record(tr.Ns)
	seq := t.seq.Add(1)
	if seq%thresholdEvery == 0 && t.fixedNs.Load() == 0 {
		th := t.overall.Percentile(99) * SlowFactor
		if th < MinSlowNs {
			th = MinSlowNs
		}
		t.slowNs.Store(th)
	}
	rec := OpRecord{
		ID: id, Seq: seq, Kind: kind, Transport: transport,
		Attempts: attempts, Ns: tr.Ns, Bytes: tr.Bytes, Spans: tr.Spans,
	}
	slow := tr.Ns >= t.SlowThreshold()
	if slow {
		rec.WallNs = time.Now().UnixNano()
		t.slowSeen.Add(1)
	}

	t.mu.Lock()
	t.ring[seq%ringSize] = rec
	ex := t.exemplars[kind]
	if len(ex) < exemplarsPerKind {
		t.exemplars[kind] = append(ex, rec)
	} else {
		// Reservoir: the n-th op of this kind replaces a kept exemplar
		// with probability k/n, giving every op an equal chance.
		n := t.hists[kind][0].Count() + t.hists[kind][1].Count() +
			t.hists[kind][2].Count() + t.hists[kind][3].Count()
		if j := t.randn(n); j < uint64(len(ex)) {
			ex[j] = rec
		}
	}
	if slow {
		t.slow[t.slowN%slowSize] = rec
		t.slowN++
	}
	t.mu.Unlock()
}

// randn returns a pseudo-random value in [0, n). Caller holds t.mu.
func (t *Tracer) randn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return x % n
}

// HazardInc adds delta to the named hazard counter — called by the chaos
// plane as it applies scheduled events, so telemetry shows what was
// injected next to what the ops experienced.
func (t *Tracer) HazardInc(name string, delta uint64) {
	t.auxMu.Lock()
	if t.hazards == nil {
		t.hazards = make(map[string]uint64)
	}
	t.hazards[name] += delta
	t.auxMu.Unlock()
}

// SetReplicaHealth publishes one backend's client-side health gauge.
func (t *Tracer) SetReplicaHealth(addr string, score float64, demoted bool) {
	t.auxMu.Lock()
	if t.health == nil {
		t.health = make(map[string]ReplicaHealth)
	}
	t.health[addr] = ReplicaHealth{Addr: addr, Score: score, Demoted: demoted}
	t.auxMu.Unlock()
}

// HistStat is one kind/transport histogram summary. SumNs and Buckets
// carry the raw distribution so fleet-level consumers can merge
// histograms exactly instead of averaging quantiles.
type HistStat struct {
	Kind      Kind
	Transport Transport
	Count     uint64
	MeanNs    uint64
	P50Ns     uint64
	P90Ns     uint64
	P99Ns     uint64
	P999Ns    uint64
	MaxNs     uint64
	SumNs     uint64
	Buckets   []stats.HistBucket
}

// Snapshot is a point-in-time view of the tracer, the payload behind the
// Debug RPC.
type Snapshot struct {
	Ops             uint64
	SlowThresholdNs uint64
	SlowTotal       uint64
	Hists           []HistStat // non-empty cells only
	Slow            []OpRecord // newest first
	Exemplars       []OpRecord
	Hazards         []HazardCount   // sorted by name
	Health          []ReplicaHealth // sorted by addr
}

// Snapshot captures current state. maxSlow bounds the slow-op log
// returned (≤ 0 means all retained).
func (t *Tracer) Snapshot(maxSlow int) Snapshot {
	s := Snapshot{
		Ops:             t.seq.Load(),
		SlowThresholdNs: t.SlowThreshold(),
		SlowTotal:       t.slowSeen.Load(),
	}
	for k := Kind(0); k < numKinds; k++ {
		for tp := Transport(0); tp < numTransports; tp++ {
			h := t.hists[k][tp].Snapshot()
			if h.Count() == 0 {
				continue
			}
			q := h.Quantiles(50, 90, 99, 99.9)
			s.Hists = append(s.Hists, HistStat{
				Kind: k, Transport: tp, Count: h.Count(),
				MeanNs: uint64(h.Mean()),
				P50Ns:  q[0], P90Ns: q[1], P99Ns: q[2], P999Ns: q[3],
				MaxNs: h.Max(), SumNs: h.Sum(), Buckets: h.Buckets(),
			})
		}
	}

	t.mu.Lock()
	n := t.slowN
	if n > slowSize {
		n = slowSize
	}
	if maxSlow > 0 && uint64(maxSlow) < n {
		n = uint64(maxSlow)
	}
	for i := uint64(0); i < n; i++ {
		s.Slow = append(s.Slow, t.slow[(t.slowN-1-i)%slowSize])
	}
	for k := Kind(0); k < numKinds; k++ {
		s.Exemplars = append(s.Exemplars, t.exemplars[k]...)
	}
	t.mu.Unlock()

	t.auxMu.Lock()
	for name, n := range t.hazards {
		s.Hazards = append(s.Hazards, HazardCount{Name: name, Count: n})
	}
	for _, h := range t.health {
		s.Health = append(s.Health, h)
	}
	t.auxMu.Unlock()
	sort.Slice(s.Hazards, func(i, j int) bool { return s.Hazards[i].Name < s.Hazards[j].Name })
	sort.Slice(s.Health, func(i, j int) bool { return s.Health[i].Addr < s.Health[j].Addr })
	return s
}

// Recent returns up to max recent ops, newest first — in-process
// debugging and tests; the wire plane ships Slow + Exemplars.
func (t *Tracer) Recent(max int) []OpRecord {
	if max <= 0 || max > ringSize {
		max = ringSize
	}
	seq := t.seq.Load()
	var out []OpRecord
	t.mu.Lock()
	for i := uint64(0); i < uint64(max) && i < seq; i++ {
		r := t.ring[(seq-i)%ringSize]
		if r.Seq == 0 {
			break
		}
		out = append(out, r)
	}
	t.mu.Unlock()
	return out
}

// WriteProm renders the tracer as Prometheus text exposition: op counts,
// latency quantile gauges per kind/transport, and slow-op totals. acct,
// when non-nil, adds per-component CPU counters.
func (t *Tracer) WriteProm(w io.Writer, acct *stats.CPUAccount) {
	s := t.Snapshot(0)
	fmt.Fprintf(w, "# TYPE cliquemap_ops_total counter\n")
	fmt.Fprintf(w, "cliquemap_ops_total %d\n", s.Ops)
	fmt.Fprintf(w, "# TYPE cliquemap_slow_ops_total counter\n")
	fmt.Fprintf(w, "cliquemap_slow_ops_total %d\n", s.SlowTotal)
	fmt.Fprintf(w, "# TYPE cliquemap_slow_threshold_ns gauge\n")
	fmt.Fprintf(w, "cliquemap_slow_threshold_ns %d\n", s.SlowThresholdNs)
	fmt.Fprintf(w, "# TYPE cliquemap_op_latency_ns summary\n")
	for _, h := range s.Hists {
		l := fmt.Sprintf("kind=%q,transport=%q", h.Kind, h.Transport)
		fmt.Fprintf(w, "cliquemap_op_latency_ns{%s,quantile=\"0.5\"} %d\n", l, h.P50Ns)
		fmt.Fprintf(w, "cliquemap_op_latency_ns{%s,quantile=\"0.9\"} %d\n", l, h.P90Ns)
		fmt.Fprintf(w, "cliquemap_op_latency_ns{%s,quantile=\"0.99\"} %d\n", l, h.P99Ns)
		fmt.Fprintf(w, "cliquemap_op_latency_ns{%s,quantile=\"0.999\"} %d\n", l, h.P999Ns)
		fmt.Fprintf(w, "cliquemap_op_latency_ns_count{%s} %d\n", l, h.Count)
		fmt.Fprintf(w, "cliquemap_op_latency_ns_sum{%s} %d\n", l, h.Count*h.MeanNs)
	}
	if len(s.Hazards) > 0 {
		fmt.Fprintf(w, "# TYPE cliquemap_hazard_injections_total counter\n")
		for _, h := range s.Hazards {
			fmt.Fprintf(w, "cliquemap_hazard_injections_total{hazard=%q} %d\n", h.Name, h.Count)
		}
	}
	if len(s.Health) > 0 {
		fmt.Fprintf(w, "# TYPE cliquemap_replica_health_score gauge\n")
		for _, h := range s.Health {
			demoted := 0
			if h.Demoted {
				demoted = 1
			}
			fmt.Fprintf(w, "cliquemap_replica_health_score{replica=%q} %g\n", h.Addr, h.Score)
			fmt.Fprintf(w, "cliquemap_replica_demoted{replica=%q} %d\n", h.Addr, demoted)
		}
	}
	if acct != nil {
		fmt.Fprintf(w, "# TYPE cliquemap_cpu_ns_total counter\n")
		for _, comp := range acct.Components() {
			fmt.Fprintf(w, "cliquemap_cpu_ns_total{component=%q} %d\n", comp, acct.TotalNanos(comp))
		}
	}
}

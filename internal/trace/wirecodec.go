package trace

import (
	"cliquemap/internal/fabric"
	"cliquemap/internal/wire"
)

// Span wire codec, shared by the TCP gateway frames and the Debug RPC.
// Each span is a raw nested message {1: code, 2: arg, 3: start, 4: dur}
// repeated on the caller's chosen tag.

// MaxWireSpans caps the spans accepted from one message — spans are
// diagnostic freight, so a malformed or hostile frame must not balloon
// memory.
const MaxWireSpans = 4096

// EncodeSpans appends spans as repeated nested messages under tag.
func EncodeSpans(e *wire.Encoder, tag uint64, spans []fabric.Span) {
	for _, s := range spans {
		m := wire.NewRawEncoder()
		m.Uint(1, uint64(s.Code))
		m.Uint(2, uint64(s.Arg))
		m.Uint(3, s.Start)
		m.Uint(4, s.Dur)
		e.Message(tag, m)
	}
}

// DecodeSpan parses one nested span message. Malformed input degrades to
// zero fields rather than failing: span ids wider than 16 bits truncate,
// and a decode error yields whatever fields parsed — trace freight must
// never take down the RPC decoder around it.
func DecodeSpan(b []byte) fabric.Span {
	var s fabric.Span
	d := wire.NewRawDecoder(b)
	for d.Next() {
		switch d.Tag() {
		case 1:
			s.Code = uint16(d.Uint())
		case 2:
			s.Arg = uint32(d.Uint())
		case 3:
			s.Start = d.Uint()
		case 4:
			s.Dur = d.Uint()
		}
	}
	return s
}

package trace

import (
	"context"
	"strings"
	"sync"
	"testing"

	"cliquemap/internal/fabric"
	"cliquemap/internal/stats"
	"cliquemap/internal/wire"
)

func opTrace(ns uint64, spans ...fabric.Span) fabric.OpTrace {
	return fabric.OpTrace{Ns: ns, Spans: spans}
}

func TestKindTransportRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if got := KindOf(k.String()); got != k {
			t.Errorf("KindOf(%q) = %v, want %v", k.String(), got, k)
		}
	}
	for tp := Transport(0); tp < numTransports; tp++ {
		if got := TransportOf(tp.String()); got != tp {
			t.Errorf("TransportOf(%q) = %v, want %v", tp.String(), got, tp)
		}
	}
	if KindOf("garbage") != KindOther {
		t.Error("unknown kind must map to KindOther")
	}
	if TransportOf("garbage") != TransportRPC {
		t.Error("unknown transport must map to TransportRPC")
	}
}

func TestCodeNameCoversAllCodes(t *testing.T) {
	for c := uint16(1); c <= SpanCStateWake; c++ {
		if name := CodeName(c); strings.HasPrefix(name, "span-") {
			t.Errorf("code %d has no name", c)
		}
	}
	if CodeName(999) != "span-999" {
		t.Errorf("unknown code rendering = %q", CodeName(999))
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	sc := &SpanContext{OpID: 7, Kind: KindSet, Attempt: 2}
	ctx := NewContext(context.Background(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("FromContext = %p, want %p", got, sc)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil")
	}
}

func TestSinkCollectsAndRecycles(t *testing.T) {
	s := GetSink()
	s.Annotate(SpanStripeWait, 3, 1500)
	s.Annotate(SpanEngineService, 0, 200)
	got := s.Take()
	if len(got) != 2 || got[0].Code != SpanStripeWait || got[0].Dur != 1500 {
		t.Fatalf("sink spans = %+v", got)
	}
	PutSink(s)
	s2 := GetSink()
	if len(s2.Take()) != 0 {
		t.Fatal("pooled sink not reset")
	}
	ctx := WithSink(context.Background(), s2)
	if SinkFrom(ctx) != s2 {
		t.Fatal("SinkFrom lost the sink")
	}
}

func TestTracerRecordsHistogramsPerKindTransport(t *testing.T) {
	tr := NewTracer()
	tr.Record(tr.NextID(), KindGet, TransportSCAR, 1, opTrace(7_000))
	tr.Record(tr.NextID(), KindGet, TransportSCAR, 1, opTrace(9_000))
	tr.Record(tr.NextID(), KindSet, TransportRPC, 1, opTrace(100_000))
	if got := tr.Hist(KindGet, TransportSCAR).Count(); got != 2 {
		t.Errorf("GET/SCAR count = %d", got)
	}
	if got := tr.Hist(KindSet, TransportRPC).Count(); got != 1 {
		t.Errorf("SET/RPC count = %d", got)
	}
	if got := tr.Overall().Count(); got != 3 {
		t.Errorf("overall count = %d", got)
	}
	if tr.Ops() != 3 {
		t.Errorf("ops = %d", tr.Ops())
	}
}

func TestSlowPromotionUsesThreshold(t *testing.T) {
	tr := NewTracer()
	tr.SetSlowThreshold(10_000)
	tr.Record(tr.NextID(), KindGet, Transport2xR, 1, opTrace(9_999))
	if tr.SlowOpsSeen() != 0 {
		t.Fatal("below-threshold op promoted")
	}
	spans := []fabric.Span{{Code: SpanEngineService, Dur: 11_000}}
	tr.Record(77, KindGet, Transport2xR, 2, opTrace(11_000, spans...))
	if tr.SlowOpsSeen() != 1 {
		t.Fatal("above-threshold op not promoted")
	}
	snap := tr.Snapshot(0)
	if len(snap.Slow) != 1 {
		t.Fatalf("slow log = %d entries", len(snap.Slow))
	}
	s := snap.Slow[0]
	if s.ID != 77 || s.Attempts != 2 || s.WallNs == 0 {
		t.Errorf("slow record = %+v", s)
	}
	if len(s.Spans) != 1 || s.Spans[0].Code != SpanEngineService {
		t.Errorf("slow record spans = %+v", s.Spans)
	}
}

func TestRollingThresholdRefreshes(t *testing.T) {
	tr := NewTracer()
	// Saturate past a refresh boundary with 10µs ops; the rolling
	// threshold should settle near max(2×p99, MinSlowNs) = MinSlowNs.
	for i := 0; i < thresholdEvery+1; i++ {
		tr.Record(tr.NextID(), KindGet, Transport2xR, 1, opTrace(10_000))
	}
	if th := tr.SlowThreshold(); th != MinSlowNs {
		t.Errorf("threshold = %d, want floor %d", th, MinSlowNs)
	}
	// With a genuinely slow p99 the threshold scales with it.
	tr2 := NewTracer()
	for i := 0; i < thresholdEvery; i++ {
		tr2.Record(tr2.NextID(), KindGet, Transport2xR, 1, opTrace(2_000_000))
	}
	if th := tr2.SlowThreshold(); th < 2*1_800_000 {
		t.Errorf("threshold = %d, want ≈2×p99 of 2ms", th)
	}
}

func TestExemplarReservoirBounded(t *testing.T) {
	tr := NewTracer()
	tr.SetSlowThreshold(1 << 62)
	for i := 0; i < 10_000; i++ {
		tr.Record(tr.NextID(), KindGet, TransportSCAR, 1, opTrace(uint64(1000+i)))
	}
	snap := tr.Snapshot(0)
	if len(snap.Exemplars) > exemplarsPerKind {
		t.Fatalf("exemplars = %d, cap %d", len(snap.Exemplars), exemplarsPerKind)
	}
	if len(snap.Exemplars) != exemplarsPerKind {
		t.Fatalf("reservoir not filled: %d", len(snap.Exemplars))
	}
}

func TestRecentNewestFirst(t *testing.T) {
	tr := NewTracer()
	for i := 1; i <= 5; i++ {
		tr.Record(uint64(i), KindGet, Transport2xR, 1, opTrace(uint64(i*100)))
	}
	recent := tr.Recent(3)
	if len(recent) != 3 || recent[0].ID != 5 || recent[2].ID != 3 {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const g, per = 8, 2000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				k := Kind(j % int(numKinds))
				tp := Transport(j % int(numTransports))
				tr.Record(tr.NextID(), k, tp, 1, opTrace(uint64(j+1)))
			}
		}(i)
	}
	wg.Wait()
	if tr.Ops() != g*per {
		t.Fatalf("ops = %d, want %d", tr.Ops(), g*per)
	}
	var hist uint64
	snap := tr.Snapshot(0)
	for _, h := range snap.Hists {
		hist += h.Count
	}
	if hist != g*per {
		t.Fatalf("histogram counts sum to %d, want %d", hist, g*per)
	}
}

func TestWireSpanRoundTrip(t *testing.T) {
	in := []fabric.Span{
		{Code: SpanIndexFetch, Arg: 3, Start: 0, Dur: 4200},
		{Code: SpanQuorumWait, Arg: 2, Start: 4200, Dur: 900},
		{Code: SpanDataRead, Arg: 1, Start: 5100, Dur: 3100},
	}
	e := wire.NewRawEncoder()
	EncodeSpans(e, 8, in)
	d := wire.NewRawDecoder(e.Encoded())
	var out []fabric.Span
	for d.Next() {
		if d.Tag() == 8 {
			out = append(out, DecodeSpan(d.Bytes()))
		}
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("span %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestDecodeSpanMalformedDegradesToZero(t *testing.T) {
	// Garbage bytes, truncated varints, and wide ids must never panic and
	// never error — trace freight is best-effort.
	cases := [][]byte{
		nil,
		{},
		{0xff},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{0x08}, // tag 1 varint, missing value
	}
	for _, b := range cases {
		_ = DecodeSpan(b)
	}
	// A span id wider than 16 bits truncates rather than corrupting
	// neighbours.
	e := wire.NewRawEncoder()
	e.Uint(1, 0xABCDE)
	e.Uint(4, 5)
	s := DecodeSpan(e.Encoded())
	if s.Code != uint16(0xABCDE&0xFFFF) || s.Dur != 5 {
		t.Errorf("wide-id span = %+v", s)
	}
}

func TestWritePromExposition(t *testing.T) {
	tr := NewTracer()
	tr.Record(tr.NextID(), KindGet, TransportSCAR, 1, opTrace(7_000))
	acct := stats.NewCPUAccount()
	acct.Charge("client", 2_000)
	var sb strings.Builder
	tr.WriteProm(&sb, acct)
	out := sb.String()
	for _, want := range []string{
		"cliquemap_ops_total 1",
		`kind="GET"`,
		`transport="SCAR"`,
		`quantile="0.99"`,
		`cliquemap_cpu_ns_total{component="client"} 2000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
